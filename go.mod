module udt

go 1.22
