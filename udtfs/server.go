// Package udtfs is a resumable file-transfer service on top of UDT
// connections. A Server exposes a registry of named files and answers
// fetch requests with length-framed bodies — whole regular files go
// through the connection's zero-copy SendFileZC path; ranged requests
// stream the requested section. A Fetcher retrieves files resumably: it
// folds every received byte into a running SHA-256 and, when a
// connection dies mid-transfer, re-dials and re-requests from the byte
// offset already verified, so an interrupted fetch completes
// byte-identical over a fresh connection (including one established by
// rendezvous — the service is transport-agnostic and runs over any
// fabric a Conn does).
//
// Server-side housekeeping follows the repository's no-per-X-timer
// discipline: connection idle timeouts are intrusive timers on one
// shared timer wheel advanced by a single housekeeping goroutine, and
// per-peer concurrent-transfer caps bound the work any one peer can pin.
package udtfs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"udt"
	"udt/internal/timerwheel"
	"udt/internal/timing"
)

// ServerConfig shapes a Server. The zero value is ready to use.
type ServerConfig struct {
	// MaxPerPeer caps concurrent transfers per peer address (across all
	// that peer's connections); excess requests are answered StatusBusy.
	// Default 4.
	MaxPerPeer int
	// IdleTimeout closes connections with no request activity for this
	// long. Timeouts ride one shared timer wheel — no per-connection
	// runtime timers. Default 30s.
	IdleTimeout time.Duration
}

// Server answers udtfs requests over UDT connections.
type Server struct {
	cfg   ServerConfig
	clock *timing.SysClock // wheel deadlines; origin at server start

	mu      sync.Mutex
	files   map[string]string // registered name → filesystem path
	perPeer map[string]int    // peer address → active transfers
	wheel   *timerwheel.Wheel // idle timers; guarded by mu
	active  map[*connState]struct{}
	closed  bool
	done    chan struct{}
	wake    chan struct{} // nudges the housekeeper after (re)scheduling
	wg      sync.WaitGroup
}

// connState is one served connection's seat on the idle wheel.
type connState struct {
	c     *udt.Conn
	timer timerwheel.Timer
}

// NewServer builds a Server and starts its housekeeping goroutine.
func NewServer(cfg ServerConfig) *Server {
	if cfg.MaxPerPeer <= 0 {
		cfg.MaxPerPeer = 4
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 30 * time.Second
	}
	s := &Server{
		cfg:     cfg,
		clock:   timing.NewSysClock(),
		files:   make(map[string]string),
		perPeer: make(map[string]int),
		wheel:   timerwheel.New(),
		active:  make(map[*connState]struct{}),
		done:    make(chan struct{}),
		wake:    make(chan struct{}, 1),
	}
	s.wg.Add(1)
	go s.housekeeper()
	return s
}

// Register exposes path under name. Re-registering a name replaces its
// path. The file is opened per request, so it may appear later — a
// request meanwhile is answered StatusErr.
func (s *Server) Register(name, path string) {
	s.mu.Lock()
	s.files[name] = path
	s.mu.Unlock()
}

// Unregister removes a name from the registry.
func (s *Server) Unregister(name string) {
	s.mu.Lock()
	delete(s.files, name)
	s.mu.Unlock()
}

// Serve accepts connections from ln and serves each until it closes or
// idles out. It returns when the listener closes. Serve may be called on
// several listeners concurrently; ServeConn serves connections
// established some other way (e.g. rendezvous).
func (s *Server) Serve(ln *udt.Listener) error {
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.ServeConn(c) //nolint:errcheck
	}
}

// ServeConn serves udtfs requests on one established connection until
// the connection dies, the peer desynchronizes, or the idle timeout
// fires. It closes c before returning.
func (s *Server) ServeConn(c *udt.Conn) error {
	st := &connState{c: c}
	st.timer.Owner = st
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		c.Close() //nolint:errcheck
		return udt.ErrClosed
	}
	s.active[st] = struct{}{}
	s.mu.Unlock()
	defer func() {
		c.Close() //nolint:errcheck
		s.mu.Lock()
		delete(s.active, st)
		s.wheel.Cancel(&st.timer)
		s.mu.Unlock()
	}()
	peer := c.RemoteAddr().String()
	for {
		s.touch(st)
		req, err := ReadRequest(c)
		if err != nil {
			return err
		}
		s.touch(st)
		if err := s.handle(c, peer, req); err != nil {
			return err
		}
	}
}

// touch re-arms st's idle timer one IdleTimeout from now.
func (s *Server) touch(st *connState) {
	s.mu.Lock()
	if !s.closed {
		s.wheel.Schedule(&st.timer, s.clock.Now()+s.cfg.IdleTimeout.Microseconds())
	}
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// housekeeper is the single goroutine that advances the idle wheel,
// closing connections whose timers fire. Closing unblocks the
// connection's ServeConn goroutine, which does the bookkeeping.
func (s *Server) housekeeper() {
	defer s.wg.Done()
	const maxSleep = 500 * time.Millisecond
	for {
		now := s.clock.Now()
		s.mu.Lock()
		var idle []*udt.Conn
		s.wheel.Advance(now, func(t *timerwheel.Timer) {
			idle = append(idle, t.Owner.(*connState).c)
		})
		next := s.wheel.Next()
		s.mu.Unlock()
		for _, c := range idle {
			c.Close() //nolint:errcheck
		}
		sleep := maxSleep
		if next != timerwheel.NoDeadline {
			if d := time.Duration(next-now) * time.Microsecond; d < sleep {
				sleep = d
			}
			if sleep < time.Millisecond {
				sleep = time.Millisecond
			}
		}
		t := time.NewTimer(sleep)
		select {
		case <-s.done:
			t.Stop()
			return
		case <-s.wake:
			t.Stop()
		case <-t.C:
		}
	}
}

// handle answers one request on c. A returned error means the
// connection is unusable (send failure mid-frame); protocol-level
// refusals are answered in-band and return nil.
func (s *Server) handle(c *udt.Conn, peer string, req *Request) error {
	if req.Op != OpFetch {
		return WriteResponse(c, &Response{Status: StatusErr})
	}
	s.mu.Lock()
	path, known := s.files[req.Name]
	if known && s.perPeer[peer] >= s.cfg.MaxPerPeer {
		s.mu.Unlock()
		return WriteResponse(c, &Response{Status: StatusBusy})
	}
	if known {
		s.perPeer[peer]++
	}
	s.mu.Unlock()
	if !known {
		return WriteResponse(c, &Response{Status: StatusNotFound})
	}
	defer func() {
		s.mu.Lock()
		if s.perPeer[peer]--; s.perPeer[peer] == 0 {
			delete(s.perPeer, peer)
		}
		s.mu.Unlock()
	}()
	return s.sendFile(c, path, req)
}

// sendFile streams the requested range. A whole regular file takes the
// zero-copy SendFileZC path (its wire framing is identical to
// SendFile's); a range streams through a section reader.
func (s *Server) sendFile(c *udt.Conn, path string, req *Request) error {
	f, err := os.Open(path)
	if err != nil {
		return WriteResponse(c, &Response{Status: StatusErr})
	}
	defer f.Close() //nolint:errcheck
	fi, err := f.Stat()
	if err != nil {
		return WriteResponse(c, &Response{Status: StatusErr})
	}
	size := fi.Size()
	if req.Offset > size {
		return WriteResponse(c, &Response{Status: StatusBadRange, Size: size})
	}
	want := size - req.Offset
	if req.Limit > 0 && req.Limit < want {
		want = req.Limit
	}
	if err := WriteResponse(c, &Response{Status: StatusOK, Size: size}); err != nil {
		return err
	}
	if req.Offset == 0 && want == size && fi.Mode().IsRegular() {
		_, err = c.SendFileZC(f)
		return err
	}
	_, err = c.SendFile(io.NewSectionReader(f, req.Offset, want), want)
	return err
}

// Close stops the housekeeper and closes every connection the server is
// serving. In-flight ServeConn calls return as their connections die.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*udt.Conn, 0, len(s.active))
	for st := range s.active {
		conns = append(conns, st.c)
	}
	s.mu.Unlock()
	close(s.done)
	for _, c := range conns {
		c.Close() //nolint:errcheck
	}
	s.wg.Wait()
	return nil
}

// errShortBody reports a body that ended before the advertised length —
// the signature of a connection dying mid-transfer.
func errShortBody(got, want int64) error {
	return fmt.Errorf("udtfs: body truncated at %d of %d bytes: %w", got, want, io.ErrUnexpectedEOF)
}
