package udtfs

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"udt"
	"udt/fabric"
)

// harness wires a Server to a client Mux over an in-process fabric pipe,
// tracking served connections so tests can kill them mid-transfer.
type harness struct {
	t   *testing.T
	srv *Server
	m   *udt.Mux

	mu    sync.Mutex
	conns []*udt.Conn // server-side connections, in accept order
}

func newHarness(t *testing.T, scfg ServerConfig, ucfg *udt.Config) *harness {
	t.Helper()
	cEnd, sEnd := fabric.NewPipe(fabric.PipeConfig{Depth: 1 << 14})
	ln, err := udt.ListenOn(sEnd, ucfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := udt.NewMux(cEnd, ucfg)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, srv: NewServer(scfg), m: m}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			h.mu.Lock()
			h.conns = append(h.conns, c)
			h.mu.Unlock()
			go h.srv.ServeConn(c) //nolint:errcheck
		}
	}()
	t.Cleanup(func() {
		h.srv.Close() //nolint:errcheck
		m.Close()     //nolint:errcheck
		ln.Close()    //nolint:errcheck
	})
	return h
}

func (h *harness) dial() (*udt.Conn, error) {
	return h.m.Dial(fabric.Addr("pipe-b"))
}

// killLatest closes the most recently accepted server-side connection.
func (h *harness) killLatest() {
	h.mu.Lock()
	var c *udt.Conn
	if n := len(h.conns); n > 0 {
		c = h.conns[n-1]
	}
	h.mu.Unlock()
	if c != nil {
		c.Close() //nolint:errcheck
	}
}

// tempFile writes n pseudo-random bytes under t.TempDir and returns the
// path, the content, and its digest.
func tempFile(t *testing.T, n int) (string, []byte, [sha256.Size]byte) {
	t.Helper()
	data := make([]byte, n)
	rand.New(rand.NewSource(int64(n))).Read(data) //nolint:errcheck
	path := filepath.Join(t.TempDir(), "payload.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, data, sha256.Sum256(data)
}

func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := &Request{Op: OpFetch, Name: "some/file.bin", Offset: 1 << 40, Limit: 12345}
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *req {
		t.Fatalf("request round trip: got %+v want %+v", got, req)
	}
	resp := &Response{Status: StatusOK, Size: 1 << 50}
	if err := WriteResponse(&buf, resp); err != nil {
		t.Fatal(err)
	}
	rgot, err := ReadResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *rgot != *resp {
		t.Fatalf("response round trip: got %+v want %+v", rgot, resp)
	}
	// Corrupt magic must surface desync, not garbage fields.
	if _, err := ReadRequest(bytes.NewReader([]byte("XXXXxxxxxxxxxxxxxxxxxxxx"))); !errors.Is(err, ErrDesync) {
		t.Fatalf("bad magic: err = %v, want ErrDesync", err)
	}
}

func TestFetchWholeFile(t *testing.T) {
	h := newHarness(t, ServerConfig{}, nil)
	path, data, digest := tempFile(t, 2<<20)
	h.srv.Register("payload", path)

	var out bytes.Buffer
	f := &Fetcher{Dial: h.dial}
	res, err := f.Fetch("payload", &out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != int64(len(data)) || res.Size != int64(len(data)) {
		t.Fatalf("bytes=%d size=%d want %d", res.Bytes, res.Size, len(data))
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("payload corrupted in transit")
	}
	if res.SHA256 != digest {
		t.Fatal("digest mismatch")
	}
}

func TestFetchRange(t *testing.T) {
	h := newHarness(t, ServerConfig{}, nil)
	path, data, _ := tempFile(t, 1<<20)
	h.srv.Register("payload", path)
	f := &Fetcher{Dial: h.dial}

	var out bytes.Buffer
	res, err := f.FetchRange("payload", &out, 1000, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != int64(len(data)) {
		t.Fatalf("size = %d, want %d", res.Size, len(data))
	}
	if !bytes.Equal(out.Bytes(), data[1000:1000+4096]) {
		t.Fatal("range bytes wrong")
	}
	// Tail range with limit 0 runs to EOF.
	out.Reset()
	res, err = f.FetchRange("payload", &out, int64(len(data))-500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 500 || !bytes.Equal(out.Bytes(), data[len(data)-500:]) {
		t.Fatal("tail range wrong")
	}
	// Offset beyond EOF is refused in-band.
	if _, err := f.FetchRange("payload", io.Discard, int64(len(data))+1, 0); !errors.Is(err, ErrBadRange) {
		t.Fatalf("err = %v, want ErrBadRange", err)
	}
}

func TestFetchNotFound(t *testing.T) {
	h := newHarness(t, ServerConfig{}, nil)
	f := &Fetcher{Dial: h.dial}
	if _, err := f.Fetch("nope", io.Discard); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

// blockWriter signals on the first write and then blocks until released,
// pinning its transfer active (flow control stops the sender once the
// receive buffer fills behind the blocked reader).
type blockWriter struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
	n       int64
}

func (b *blockWriter) Write(p []byte) (int, error) {
	b.once.Do(func() { close(b.started) })
	<-b.release
	b.n += int64(len(p))
	return len(p), nil
}

// TestFetchBusy pins the per-peer cap: with MaxPerPeer=1 and one
// transfer pinned mid-flight, a second fetch from the same peer address
// is refused StatusBusy, and succeeds once the first drains.
func TestFetchBusy(t *testing.T) {
	// Small protocol buffers so the pinned transfer cannot be absorbed
	// into fly-by buffering and complete early.
	ucfg := &udt.Config{SndBuf: 64, RcvBuf: 64}
	h := newHarness(t, ServerConfig{MaxPerPeer: 1}, ucfg)
	path, data, _ := tempFile(t, 2<<20)
	h.srv.Register("payload", path)
	f := &Fetcher{Dial: h.dial}

	bw := &blockWriter{started: make(chan struct{}), release: make(chan struct{})}
	firstDone := make(chan error, 1)
	go func() {
		_, err := f.Fetch("payload", bw)
		firstDone <- err
	}()
	<-bw.started
	if _, err := f.Fetch("payload", io.Discard); !errors.Is(err, ErrBusy) {
		t.Fatalf("second fetch: err = %v, want ErrBusy", err)
	}
	close(bw.release)
	if err := <-firstDone; err != nil {
		t.Fatalf("pinned fetch failed after release: %v", err)
	}
	if bw.n != int64(len(data)) {
		t.Fatalf("pinned fetch moved %d bytes, want %d", bw.n, len(data))
	}
	// Cap released: a fresh fetch succeeds.
	if _, err := f.Fetch("payload", io.Discard); err != nil {
		t.Fatalf("fetch after drain: %v", err)
	}
}

// killWriter kills the serving connection once threshold bytes arrived.
type killWriter struct {
	out       bytes.Buffer
	threshold int64
	kill      func()
	killed    bool
}

func (k *killWriter) Write(p []byte) (int, error) {
	k.out.Write(p)
	if !k.killed && int64(k.out.Len()) >= k.threshold {
		k.killed = true
		k.kill()
	}
	return len(p), nil
}

// TestFetchResume is the tentpole's acceptance path in miniature: the
// serving connection is killed mid-transfer, the Fetcher re-dials and
// re-requests from the verified offset, and the assembled file is
// byte-identical with the whole-file digest intact.
func TestFetchResume(t *testing.T) {
	h := newHarness(t, ServerConfig{}, nil)
	path, data, digest := tempFile(t, 4<<20)
	h.srv.Register("payload", path)

	kw := &killWriter{threshold: 1 << 20, kill: h.killLatest}
	f := &Fetcher{Dial: h.dial, Backoff: 20 * time.Millisecond}
	res, err := f.Fetch("payload", kw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumes == 0 {
		t.Fatal("transfer was never interrupted; the test exercised nothing")
	}
	if !bytes.Equal(kw.out.Bytes(), data) {
		t.Fatal("resumed assembly is not byte-identical")
	}
	if res.SHA256 != digest {
		t.Fatal("whole-file digest mismatch after resume")
	}
}

// TestResumeFetchFromPrefix resumes from bytes already on disk (the
// .part convention): the stored prefix is re-hashed, only the remainder
// crosses the wire, and the digest covers the whole file.
func TestResumeFetchFromPrefix(t *testing.T) {
	h := newHarness(t, ServerConfig{}, nil)
	path, data, digest := tempFile(t, 1<<20)
	h.srv.Register("payload", path)
	f := &Fetcher{Dial: h.dial}

	prefix := data[:300000]
	var rest bytes.Buffer
	res, err := f.ResumeFetch("payload", bytes.NewReader(prefix), &rest)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != int64(len(data)-len(prefix)) {
		t.Fatalf("fetched %d bytes, want %d", res.Bytes, len(data)-len(prefix))
	}
	if res.SHA256 != digest {
		t.Fatal("digest does not cover prefix + remainder")
	}
	if !bytes.Equal(append(append([]byte{}, prefix...), rest.Bytes()...), data) {
		t.Fatal("assembled file differs")
	}
}

// TestIdleTimeout: a connection with no request activity is closed by
// the shared-wheel housekeeper, not left pinned forever.
func TestIdleTimeout(t *testing.T) {
	h := newHarness(t, ServerConfig{IdleTimeout: 150 * time.Millisecond}, nil)
	c, err := h.dial()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	// The server should close us without any request ever sent.
	done := make(chan error, 1)
	go func() {
		_, err := ReadResponse(c)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read returned data on an idle connection")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("idle connection was never closed")
	}
}
