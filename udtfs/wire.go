package udtfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire protocol. Every transfer is one request/response exchange on an
// established UDT connection, followed on success by one length-framed
// body bit-identical to Conn.SendFile's framing — which is what lets the
// server push whole files through the zero-copy SendFileZC path.
//
//	request:  magic(4) | op(1) | nameLen(2, BE) | name | offset(8, BE) | limit(8, BE)
//	response: magic(4) | status(1) | size(8, BE)
//	body:     length(8, BE) | payload   (StatusOK only)
//
// size is always the file's total size, whatever the requested range —
// it is how a resuming client knows how much remains.

// Magic opens every udtfs frame; a mismatch means the peer is not
// speaking udtfs and the connection is torn down rather than resynced.
var Magic = [4]byte{'U', 'F', 'S', '1'}

// Request operations.
const (
	// OpFetch asks for limit bytes of the named file starting at offset;
	// limit 0 means "to end of file".
	OpFetch = 1
)

// Response statuses.
const (
	StatusOK       = 0 // body follows
	StatusNotFound = 1 // name not registered
	StatusBusy     = 2 // per-peer concurrent-transfer cap reached
	StatusBadRange = 3 // offset beyond end of file
	StatusErr      = 4 // server-side I/O failure
)

// maxNameLen bounds the file identifier; longer names are an encode-time
// error, and a decoded header claiming more is treated as a desync.
const maxNameLen = 4096

// Request is one client→server transfer request.
type Request struct {
	Op     byte
	Name   string
	Offset int64
	Limit  int64 // 0 = to end of file
}

// Response is the server's header answering one request. Size is the
// file's total size (not the range length) so a partial fetch knows the
// whole, and is 0 on any non-OK status.
type Response struct {
	Status byte
	Size   int64
}

// ErrDesync reports bytes on the connection that are not a udtfs frame.
var ErrDesync = errors.New("udtfs: connection desynchronized (bad magic)")

// WriteRequest encodes and sends one request.
func WriteRequest(w io.Writer, req *Request) error {
	if len(req.Name) == 0 || len(req.Name) > maxNameLen {
		return fmt.Errorf("udtfs: file name length %d out of range [1,%d]", len(req.Name), maxNameLen)
	}
	if req.Offset < 0 || req.Limit < 0 {
		return fmt.Errorf("udtfs: negative range offset=%d limit=%d", req.Offset, req.Limit)
	}
	buf := make([]byte, 0, 4+1+2+len(req.Name)+16)
	buf = append(buf, Magic[:]...)
	buf = append(buf, req.Op)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(req.Name)))
	buf = append(buf, req.Name...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(req.Offset))
	buf = binary.BigEndian.AppendUint64(buf, uint64(req.Limit))
	_, err := w.Write(buf)
	return err
}

// ReadRequest decodes one request from the stream.
func ReadRequest(r io.Reader) (*Request, error) {
	var hdr [7]byte // magic + op + nameLen
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if [4]byte(hdr[:4]) != Magic {
		return nil, ErrDesync
	}
	nameLen := int(binary.BigEndian.Uint16(hdr[5:7]))
	if nameLen == 0 || nameLen > maxNameLen {
		return nil, ErrDesync
	}
	rest := make([]byte, nameLen+16)
	if _, err := io.ReadFull(r, rest); err != nil {
		return nil, err
	}
	req := &Request{
		Op:     hdr[4],
		Name:   string(rest[:nameLen]),
		Offset: int64(binary.BigEndian.Uint64(rest[nameLen:])),
		Limit:  int64(binary.BigEndian.Uint64(rest[nameLen+8:])),
	}
	if req.Offset < 0 || req.Limit < 0 {
		return nil, ErrDesync
	}
	return req, nil
}

// WriteResponse encodes and sends one response header.
func WriteResponse(w io.Writer, resp *Response) error {
	var buf [13]byte
	copy(buf[:4], Magic[:])
	buf[4] = resp.Status
	binary.BigEndian.PutUint64(buf[5:], uint64(resp.Size))
	_, err := w.Write(buf[:])
	return err
}

// ReadResponse decodes one response header from the stream.
func ReadResponse(r io.Reader) (*Response, error) {
	var buf [13]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return nil, err
	}
	if [4]byte(buf[:4]) != Magic {
		return nil, ErrDesync
	}
	resp := &Response{Status: buf[4], Size: int64(binary.BigEndian.Uint64(buf[5:]))}
	if resp.Size < 0 {
		return nil, ErrDesync
	}
	return resp, nil
}

// statusErr turns a non-OK response status into the sentinel error the
// client API surfaces.
func statusErr(status byte) error {
	switch status {
	case StatusNotFound:
		return ErrNotFound
	case StatusBusy:
		return ErrBusy
	case StatusBadRange:
		return ErrBadRange
	default:
		return ErrServer
	}
}

// Sentinel errors mapping the wire statuses.
var (
	ErrNotFound = errors.New("udtfs: file not registered on server")
	ErrBusy     = errors.New("udtfs: per-peer transfer limit reached")
	ErrBadRange = errors.New("udtfs: requested offset beyond end of file")
	ErrServer   = errors.New("udtfs: server-side I/O failure")
)
