package udtfs

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"
	"time"

	"udt"
)

// Fetcher retrieves files from a udtfs server, resuming across dropped
// connections: every received byte folds into a running SHA-256, and
// when the connection dies mid-body the fetch re-dials and re-requests
// from the byte offset already verified into the hash. The caller
// supplies Dial, so resume works over any way of reaching the server — a
// plain dial, a shared Mux, or a fresh rendezvous crossing.
type Fetcher struct {
	// Dial opens a connection to the server. It is called for the first
	// attempt and again after each mid-transfer connection death.
	Dial func() (*udt.Conn, error)
	// Retries bounds consecutive failed resume attempts (a re-dial or
	// re-request that moves the transfer forward resets the count).
	// Default 5.
	Retries int
	// Backoff is the delay before each re-dial. Default 200 ms.
	Backoff time.Duration
}

// FetchResult describes a completed fetch.
type FetchResult struct {
	// Bytes is the number of payload bytes this call wrote.
	Bytes int64
	// Size is the file's total size as reported by the server.
	Size int64
	// SHA256 digests the fetched range plus any resumed prefix: a fetch
	// from offset 0 (or a ResumeFetch over the stored prefix) yields the
	// whole file's digest.
	SHA256 [sha256.Size]byte
	// Resumes counts mid-transfer connection deaths survived.
	Resumes int
}

// Fetch retrieves the whole named file into w.
func (f *Fetcher) Fetch(name string, w io.Writer) (FetchResult, error) {
	return f.fetch(name, w, 0, 0, sha256.New())
}

// FetchRange retrieves limit bytes starting at offset (limit 0 = to end
// of file). The result digest covers the fetched range only.
func (f *Fetcher) FetchRange(name string, w io.Writer, offset, limit int64) (FetchResult, error) {
	if offset < 0 || limit < 0 {
		return FetchResult{}, fmt.Errorf("udtfs: negative range offset=%d limit=%d", offset, limit)
	}
	return f.fetch(name, w, offset, limit, sha256.New())
}

// ResumeFetch continues an interrupted whole-file fetch whose first
// bytes are already stored locally: prefix re-reads them (they are
// folded into the digest, verifying what is on disk is what the final
// hash covers), and the server is asked for everything after them. The
// result digest is the whole file's.
func (f *Fetcher) ResumeFetch(name string, prefix io.Reader, w io.Writer) (FetchResult, error) {
	h := sha256.New()
	off, err := io.Copy(h, prefix)
	if err != nil {
		return FetchResult{}, fmt.Errorf("udtfs: hashing stored prefix: %w", err)
	}
	return f.fetch(name, w, off, 0, h)
}

// fetch runs the resume loop: request [offset+got, …) on a fresh
// connection each round until the advertised range is complete.
func (f *Fetcher) fetch(name string, w io.Writer, offset, limit int64, h hash.Hash) (FetchResult, error) {
	if f.Dial == nil {
		return FetchResult{}, errors.New("udtfs: Fetcher.Dial is nil")
	}
	retries := f.Retries
	if retries <= 0 {
		retries = 5
	}
	backoff := f.Backoff
	if backoff <= 0 {
		backoff = 200 * time.Millisecond
	}
	var res FetchResult
	var got int64     // payload bytes received so far
	want := int64(-1) // total bytes this fetch owes; fixed by the first response
	fails := 0
	for {
		var lim int64 // what is left of the caller's limit; 0 = to EOF
		if limit > 0 {
			lim = limit - got
		}
		n, size, err := f.fetchOnce(name, w, h, offset+got, lim)
		got += n
		res.Bytes = got
		if n > 0 {
			fails = 0
		}
		if size >= 0 {
			if want < 0 {
				// The first response fixes the contract: total size, and
				// from it the range length this fetch owes.
				want = size - offset
				if limit > 0 && limit < want {
					want = limit
				}
				if want < 0 {
					return res, ErrBadRange
				}
				res.Size = size
			} else if size != res.Size {
				return res, fmt.Errorf("udtfs: file size changed mid-fetch (%d → %d)", res.Size, size)
			}
		}
		if want >= 0 && got >= want {
			h.Sum(res.SHA256[:0])
			return res, nil
		}
		if err == nil {
			// Clean response but short range: the file shrank server-side.
			return res, errShortBody(got, want)
		}
		// In-band refusals are final; only transport deaths are retried.
		if errors.Is(err, ErrNotFound) || errors.Is(err, ErrBusy) ||
			errors.Is(err, ErrBadRange) || errors.Is(err, ErrServer) || errors.Is(err, ErrDesync) {
			return res, err
		}
		fails++
		if fails > retries {
			return res, fmt.Errorf("udtfs: fetch of %q stalled at byte %d after %d attempts: %w",
				name, offset+got, fails, err)
		}
		res.Resumes++
		time.Sleep(backoff)
	}
}

// fetchOnce runs one connection's worth of transfer: dial, request,
// stream the body into w and h until it completes or the connection
// dies. It returns the bytes received, the server-advertised total size
// (-1 if no response arrived), and the error that stopped it.
func (f *Fetcher) fetchOnce(name string, w io.Writer, h hash.Hash, offset, limit int64) (int64, int64, error) {
	c, err := f.Dial()
	if err != nil {
		return 0, -1, err
	}
	defer c.Close() //nolint:errcheck
	if err := WriteRequest(c, &Request{Op: OpFetch, Name: name, Offset: offset, Limit: limit}); err != nil {
		return 0, -1, err
	}
	resp, err := ReadResponse(c)
	if err != nil {
		return 0, -1, err
	}
	if resp.Status != StatusOK {
		// A refusal's Size (meaningful only for BadRange) must not fix the
		// fetch contract — report "no size learned" alongside the error.
		return 0, -1, statusErr(resp.Status)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return 0, resp.Size, err
	}
	bodyLen := int64(binary.BigEndian.Uint64(hdr[:]))
	if bodyLen < 0 {
		return 0, resp.Size, ErrDesync
	}
	n, err := io.CopyN(io.MultiWriter(w, h), c, bodyLen)
	if err == nil && n < bodyLen {
		err = io.ErrUnexpectedEOF
	}
	return n, resp.Size, err
}
