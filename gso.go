package udt

import (
	"net"
	"sync/atomic"
	"time"
)

// UDP segmentation offload (Linux UDP_SEGMENT / UDP_GRO).
//
// The per-packet syscall is the dominant cost of a user-space transport on
// a fast link (§4.1); sendmmsg amortizes the syscall over a batch but the
// kernel still traverses its whole output path once per datagram. With
// UDP_SEGMENT the sender submits one super-datagram — a train of up to 44
// MSS-sized packets — and the kernel (or NIC) segments it at the very
// bottom of the stack; with UDP_GRO the receiver reads back coalesced
// trains and the transport splits them in user space. Both are transparent
// on the wire: every segment is an ordinary UDT datagram, bit-identical to
// the unoffloaded path, so peers, the netem fabric and the chaos matrix
// never see GSO framing.
//
// The capability is probed once per socket when the batch I/O paths are
// set up (see mmsg_linux.go); kernels or transports without support fall
// back to plain sendmmsg/recvmmsg, and non-Linux builds compile the stub
// (mmsg_stub.go) with no offload at all.

// segWriter is an optional sockWriter upgrade: transports that can submit
// a whole train of equal-size datagrams as one kernel-segmented
// super-datagram (UDP_SEGMENT) implement it. All bufs must be exactly
// segSize bytes except the last, which may be shorter. writeSegments
// reports ok=false — without consuming the batch — when the transport
// cannot offload (probe failed, offload disabled, or the kernel rejected
// the train); the caller then falls back to the sendmmsg path.
type segWriter interface {
	writeSegments(bufs [][]byte, segSize int, addr net.Addr) (ok bool, err error)
	// offloadActive reports the cached probe verdict: whether
	// writeSegments can currently reach the kernel offload.
	offloadActive() bool
}

// groCounterSource lets multiplexed flows surface their shared socket's
// receive-offload counters in Stats.
type groCounterSource interface {
	groCounters() (reads, segments uint64)
}

// offloadStats holds one socket's receive-offload state: whether UDP_GRO
// is active, and running totals of coalesced deliveries and the packets
// recovered from them. The read loop writes, Stats snapshots read.
type offloadStats struct {
	groOn       atomic.Bool
	groReads    atomic.Uint64
	groSegments atomic.Uint64
}

// forceOffloadOff is a test hook: when set, every capability probe fails,
// forcing the bare sendmmsg/recvmmsg paths even on capable kernels. The
// probe-fallback tests flip it to prove the degraded path carries
// identical wire bytes.
var forceOffloadOff atomic.Bool

// maxUDPPayload is the largest UDP datagram payload (65535 minus IP and
// UDP headers): the ceiling on one GSO super-datagram.
const maxUDPPayload = 65507

// maxGSOSegments is the kernel's UDP_MAX_SEGMENTS: the most segments one
// UDP_SEGMENT send may carry.
const maxGSOSegments = 44

// splitSegments slices a kernel-coalesced receive train back into the
// original datagrams: every segment is exactly segSize bytes except the
// last, which carries the remainder. A non-positive segSize, or one at or
// above the train length, means no coalescing happened and the buffer is
// delivered whole. Zero-length segments are never emitted, so a corrupt
// control message cannot inject empty packets into the demultiplexer.
// All segments of one train share at, the train's arrival stamp: the
// kernel coalesced them before timestamping, so no finer-grained arrival
// information exists.
func splitSegments(raw []byte, segSize int, from net.Addr, at time.Time, deliver func([]byte, net.Addr, time.Time)) {
	if len(raw) == 0 {
		return
	}
	if segSize <= 0 || segSize >= len(raw) {
		deliver(raw, from, at)
		return
	}
	for off := 0; off < len(raw); off += segSize {
		end := off + segSize
		if end > len(raw) {
			end = len(raw)
		}
		deliver(raw[off:end], from, at)
	}
}
