package udt

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// The sendfile/recvfile protocol frames each transfer with an 8-byte
// big-endian length so the receiver knows where the file ends within the
// byte stream (UDT is a stream transport; §4.7 adds file semantics on top).

// SendFile streams exactly n bytes from r to the peer, preceded by a length
// header, and returns the number of payload bytes sent. It is the paper's
// sendfile analogue (§4.7): the read loop feeds the protocol buffer
// directly, so disk-to-network transfers need no application staging.
func (c *Conn) SendFile(r io.Reader, n int64) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("udt: sendfile: negative length %d", n)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(n))
	if _, err := c.Write(hdr[:]); err != nil {
		return 0, err
	}
	written, err := io.CopyN(c, r, n)
	if err != nil {
		return written, fmt.Errorf("udt: sendfile: %w", err)
	}
	return written, nil
}

// SendFileZC sends f's entire contents as one length-framed transfer
// without copying the payload: the file is mapped read-only and the send
// buffer's packet slots alias the mapping, so bytes move from the page
// cache to the socket with zero intermediate copies — the send-side dual
// of the overlapped receive path (§4.3). The wire stream is identical to
// SendFile's, so the receiver always uses plain RecvFile.
//
// When the platform or the file rules out mapping (non-regular file,
// empty file, mmap failure), SendFileZC transparently falls back to the
// copying SendFile loop. The mapping is released once every payload byte
// is acknowledged; if the connection dies mid-drain, teardown is
// deferred to Close so in-flight packet slots never dangle.
func (c *Conn) SendFileZC(f *os.File) (int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("udt: sendfile: %w", err)
	}
	size := fi.Size()
	if !fi.Mode().IsRegular() || size == 0 {
		return c.SendFile(f, size)
	}
	m, err := mmapFile(f.Fd(), size)
	if err != nil {
		return c.SendFile(f, size)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(size))
	if _, err := c.Write(hdr[:]); err != nil {
		munmapFile(m) //nolint:errcheck // nothing queued yet; mapping unreferenced
		return 0, err
	}
	written, werr := c.writeZC(m)
	if derr := c.waitAcked(); derr == nil && werr == nil {
		if err := munmapFile(m); err != nil {
			return int64(written), fmt.Errorf("udt: sendfile: %w", err)
		}
		return int64(written), nil
	} else if werr == nil {
		werr = derr
	}
	// The connection failed with mapped bytes possibly still referenced
	// by send-buffer slots; let Close unmap after the sender loop exits.
	c.adoptMapping(m)
	return int64(written), fmt.Errorf("udt: sendfile: %w", werr)
}

// RecvFile receives one length-framed transfer into w, returning the number
// of payload bytes received. It is the paper's recvfile analogue (§4.7):
// data flows from the protocol buffer straight to the writer (typically a
// file), using the overlapped read path.
func (c *Conn) RecvFile(w io.Writer) (int64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return 0, fmt.Errorf("udt: recvfile: %w", err)
	}
	n := int64(binary.BigEndian.Uint64(hdr[:]))
	if n < 0 {
		return 0, fmt.Errorf("udt: recvfile: bad length %d", n)
	}
	got, err := io.CopyN(w, c, n)
	if err != nil {
		return got, fmt.Errorf("udt: recvfile: %w", err)
	}
	return got, nil
}
