package udt

import (
	"encoding/binary"
	"fmt"
	"io"
)

// The sendfile/recvfile protocol frames each transfer with an 8-byte
// big-endian length so the receiver knows where the file ends within the
// byte stream (UDT is a stream transport; §4.7 adds file semantics on top).

// SendFile streams exactly n bytes from r to the peer, preceded by a length
// header, and returns the number of payload bytes sent. It is the paper's
// sendfile analogue (§4.7): the read loop feeds the protocol buffer
// directly, so disk-to-network transfers need no application staging.
func (c *Conn) SendFile(r io.Reader, n int64) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("udt: sendfile: negative length %d", n)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(n))
	if _, err := c.Write(hdr[:]); err != nil {
		return 0, err
	}
	written, err := io.CopyN(c, r, n)
	if err != nil {
		return written, fmt.Errorf("udt: sendfile: %w", err)
	}
	return written, nil
}

// RecvFile receives one length-framed transfer into w, returning the number
// of payload bytes received. It is the paper's recvfile analogue (§4.7):
// data flows from the protocol buffer straight to the writer (typically a
// file), using the overlapped read path.
func (c *Conn) RecvFile(w io.Writer) (int64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return 0, fmt.Errorf("udt: recvfile: %w", err)
	}
	n := int64(binary.BigEndian.Uint64(hdr[:]))
	if n < 0 {
		return 0, fmt.Errorf("udt: recvfile: bad length %d", n)
	}
	got, err := io.CopyN(w, c, n)
	if err != nil {
		return got, fmt.Errorf("udt: recvfile: %w", err)
	}
	return got, nil
}
