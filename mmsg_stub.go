//go:build !linux || !(amd64 || arm64)

package udt

// Platforms without the recvmmsg/sendmmsg fast path: the Mux falls back
// to the portable single-datagram read loop and a WriteTo send loop, and
// segmentation offload (GSO/GRO) is unavailable — writeSegments is never
// offered, so every caller takes the portable path. The batch size and
// offload knobs are accepted and ignored.

func newBatchReader(PacketConn, int, bool, *offloadStats) batchReader { return nil }

func newBatchSender(PacketConn, bool) batchWriter { return nil }
