//go:build !linux || !(amd64 || arm64)

package udt

// Platforms without the recvmmsg/sendmmsg fast path: the Mux falls back
// to the portable single-datagram read loop and a WriteTo send loop.

func newBatchReader(PacketConn) batchReader { return nil }

func newBatchSender(PacketConn) batchWriter { return nil }
