// Command simbench regenerates every table and figure of the paper's
// evaluation on the deterministic network simulator and prints the series
// in paper-style rows.
//
// Usage:
//
//	simbench [-full] [-seed N] [-run id[,id...]] [-trace DIR]
//
// Experiment ids: table1 table2 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8
// fig9 fig11 fig12 fig13 syn mimd pacing highspeed multibottleneck, or "all".
// -full runs the paper-scale parameters (1 Gb/s, 100 s, up to 400 flows);
// the default quick scale shrinks rate and duration ~10× while preserving
// every qualitative shape. Real-transport experiments (Table 3, Fig. 14,
// Fig. 15) live in the repository benchmarks: go test -bench 'Table3|Fig14|Fig15'.
//
// With -trace DIR the time-series experiments (fig2, fig4, fig5) rerun with
// per-flow telemetry attached and write one trace CSV per flow per scenario
// into DIR (e.g. fig2_rtt0010ms_udt_f03.csv — see trace.CSVHeader for the
// columns); the printed indices are then recomputed from those traces. The
// traced runs use the same seeds and are behaviourally identical to the
// untraced ones.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"udt/internal/experiments"
	"udt/internal/trace"
)

// traceDir is the -trace destination; empty disables trace dumping.
var traceDir string

// traceEvery is the telemetry cadence in SYN intervals for -trace runs:
// 100 SYN = 1 s at the default 10 ms SYN, matching the FlowMeter cadence.
const traceEvery = 100

func main() {
	full := flag.Bool("full", false, "paper-scale parameters (slow: minutes)")
	seed := flag.Int64("seed", 1, "simulation seed")
	run := flag.String("run", "all", "comma-separated experiment ids")
	flag.StringVar(&traceDir, "trace", "", "dump per-flow trace CSVs for fig2/fig4/fig5 into this directory")
	flag.Parse()

	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			os.Exit(1)
		}
	}

	scale := experiments.Quick
	label := "quick (100 Mb/s, 30 s)"
	if *full {
		scale = experiments.Full
		label = "full (1 Gb/s, 100 s)"
	}
	fmt.Printf("# UDT evaluation reproduction — scale: %s, seed %d\n", label, *seed)

	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	ran := 0
	for _, e := range experimentList {
		if !all && !want[e.id] {
			continue
		}
		ran++
		start := time.Now()
		fmt.Printf("\n== %s — %s ==\n", e.id, e.title)
		e.fn(scale, *seed)
		fmt.Printf("-- %s done in %v\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches -run=%s\n", *run)
		os.Exit(2)
	}
}

type experiment struct {
	id    string
	title string
	fn    func(experiments.Scale, int64)
}

var experimentList = []experiment{
	{"table1", "Table 1: rate-control increase parameter", runTable1},
	{"table2", "Table 2: disk-to-disk transfer matrix", runTable2},
	{"fig1", "Fig. 1/§5.3: streaming join, TCP vs UDT", runFig1},
	{"fig2", "Fig. 2: Jain fairness index vs RTT", runFig2},
	{"fig3", "Fig. 3: per-flow spread vs concurrency", runFig3},
	{"fig4", "Fig. 4: stability index vs RTT", runFig4},
	{"fig5", "Fig. 5: TCP friendliness index vs RTT", runFig5},
	{"fig6", "Fig. 6: RTT fairness of two UDT flows", runFig6},
	{"fig7", "Fig. 7: flow-control ablation", runFig7},
	{"fig8", "Fig. 8: loss pattern under bursty congestion", runFig8},
	{"fig9", "Fig. 9: loss-list access time", runFig9},
	{"fig11", "Fig. 11: single-flow WAN throughput", runFig11},
	{"fig12", "Fig. 12: three flows sharing one link", runFig12},
	{"fig13", "Fig. 13: small TCP flows vs background UDT", runFig13},
	{"syn", "Ablation: SYN interval trade-off (§3.7)", runSYN},
	{"mimd", "Ablation: UDT AIMD vs SABUL MIMD (§2.3)", runMIMD},
	{"pacing", "Ablation: pacing vs window bursts (§3.2)", runPacing},
	{"highspeed", "Ablation: RTT bias of high-speed TCPs (§5.2)", runHighSpeed},
	{"multibottleneck", "Footnote 3: max-min share across two bottlenecks", runMultiBottleneck},
}

func runMultiBottleneck(s experiments.Scale, seed int64) {
	r := experiments.MultiBottleneck(s, seed)
	fmt.Printf("two-hop UDT flow: %.1f Mb/s (max-min share %.1f, floor = half of that)\n", r.LongFlowMbps, r.MaxMinMbps)
	fmt.Printf("single-hop cross flows: %.1f and %.1f Mb/s\n", r.CrossAMbps, r.CrossBMbps)
}

func runTable1(s experiments.Scale, seed int64) {
	fmt.Printf("%14s  %12s\n", "B (Mb/s)", "inc (pkts)")
	for _, r := range experiments.Table1() {
		fmt.Printf("%14.2f  %12.5f\n", r.BandwidthMbps, r.IncPackets)
	}
}

func runTable2(s experiments.Scale, seed int64) {
	cells := experiments.Table2DiskDisk(s, seed)
	fmt.Printf("%10s %12s  %10s  %14s\n", "from", "to", "Mb/s", "disk limit")
	for _, c := range cells {
		fmt.Printf("%10s %12s  %10.1f  %14.1f\n", c.From, c.To, c.Mbps, c.DiskLimit)
	}
}

func runFig1(s experiments.Scale, seed int64) {
	r := experiments.Fig1StreamJoin(s, seed)
	fmt.Printf("TCP streams: A(100ms)=%.1f Mb/s, B(1ms)=%.1f Mb/s → join %.1f Mb/s\n",
		r.TCPStreamMbps[0], r.TCPStreamMbps[1], r.TCPJoinMbps)
	fmt.Printf("UDT streams: A(100ms)=%.1f Mb/s, B(1ms)=%.1f Mb/s → join %.1f Mb/s\n",
		r.UDTStreamMbps[0], r.UDTStreamMbps[1], r.UDTJoinMbps)
}

func runFig2(s experiments.Scale, seed int64) {
	fmt.Printf("%10s  %8s  %8s\n", "RTT (ms)", "UDT", "TCP")
	if traceDir != "" {
		for _, p := range experiments.Fig24Traced(s, seed, traceEvery) {
			fmt.Printf("%10.0f  %8.3f  %8.3f\n", p.RTTms, p.UDTJain, p.TCPJain)
			dumpRings("fig2", p.RTTms, "udt", p.UDTTraces)
			dumpRings("fig2", p.RTTms, "tcp", p.TCPTraces)
		}
		return
	}
	for _, p := range experiments.Fig2Fairness(s, seed) {
		fmt.Printf("%10.0f  %8.3f  %8.3f\n", p.RTTms, p.UDT, p.TCP)
	}
}

// dumpRings writes one CSV per flow ring into traceDir, named
// <figure>_rtt<RTT>ms_<proto>_f<flow>.csv.
func dumpRings(fig string, rttMs float64, proto string, rings []*trace.Ring) {
	for i, g := range rings {
		name := fmt.Sprintf("%s_rtt%04.0fms_%s_f%02d.csv", fig, rttMs, proto, i)
		f, err := os.Create(filepath.Join(traceDir, name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			os.Exit(1)
		}
		if err := trace.WriteCSV(f, g.Snapshot()); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: write %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

func runFig3(s experiments.Scale, seed int64) {
	fmt.Printf("%8s  %10s  %14s  %8s\n", "flows", "RTT (ms)", "stddev (Mb/s)", "util %")
	for _, p := range experiments.Fig3Concurrency(s, seed) {
		fmt.Printf("%8d  %10.0f  %14.2f  %8.1f\n", p.Flows, p.RTTms, p.StdDevMbps, p.UtilPct)
	}
}

func runFig4(s experiments.Scale, seed int64) {
	fmt.Printf("%10s  %8s  %8s\n", "RTT (ms)", "UDT", "TCP")
	if traceDir != "" {
		for _, p := range experiments.Fig24Traced(s, seed, traceEvery) {
			fmt.Printf("%10.0f  %8.3f  %8.3f\n", p.RTTms, p.UDTStability, p.TCPStability)
			dumpRings("fig4", p.RTTms, "udt", p.UDTTraces)
			dumpRings("fig4", p.RTTms, "tcp", p.TCPTraces)
		}
		return
	}
	for _, p := range experiments.Fig4Stability(s, seed) {
		fmt.Printf("%10.0f  %8.3f  %8.3f\n", p.RTTms, p.UDT, p.TCP)
	}
}

func runFig5(s experiments.Scale, seed int64) {
	fmt.Printf("%10s  %8s  %14s  %12s\n", "RTT (ms)", "T", "TCP w/ UDT", "fair share")
	if traceDir != "" {
		for _, p := range experiments.Fig5Traced(s, seed, traceEvery) {
			fmt.Printf("%10.0f  %8.3f  %14.2f  %12.2f\n", p.RTTms, p.T, p.TCPWithMbps, p.FairMbps)
			dumpRings("fig5", p.RTTms, "mixed", p.WithTraces)
			dumpRings("fig5", p.RTTms, "tcponly", p.AloneTraces)
		}
		return
	}
	for _, p := range experiments.Fig5Friendliness(s, seed) {
		fmt.Printf("%10.0f  %8.3f  %14.2f  %12.2f\n", p.RTTms, p.T, p.TCPWithMbps, p.FairMbps)
	}
}

func runFig6(s experiments.Scale, seed int64) {
	fmt.Printf("%10s  %10s\n", "RTT2 (ms)", "ratio")
	for _, p := range experiments.Fig6RTTFairness(s, seed) {
		fmt.Printf("%10.0f  %10.3f\n", p.RTT2ms, p.Ratio)
	}
}

func runFig7(s experiments.Scale, seed int64) {
	r := experiments.Fig7FlowControl(s, seed)
	fmt.Printf("loss with FC: %d pkts; without FC: %d pkts\n", r.LossWithFC, r.LossWithoutFC)
	fmt.Printf("%6s  %10s  %12s\n", "t (s)", "with FC", "without FC")
	for i := range r.WithFC {
		wo := 0.0
		if i < len(r.WithoutFC) {
			wo = r.WithoutFC[i]
		}
		fmt.Printf("%6d  %10.1f  %12.1f\n", i+1, r.WithFC[i], wo)
	}
}

func runFig8(s experiments.Scale, seed int64) {
	sizes := experiments.Fig8LossPattern(s, seed)
	var max, total int64
	for _, n := range sizes {
		total += n
		if n > max {
			max = n
		}
	}
	fmt.Printf("%d loss events, %d packets lost, largest event %d packets\n", len(sizes), total, max)
	fmt.Printf("first events: ")
	for i, n := range sizes {
		if i >= 20 {
			fmt.Printf("...")
			break
		}
		fmt.Printf("%d ", n)
	}
	fmt.Println()
}

func runFig9(s experiments.Scale, seed int64) {
	st := experiments.Fig9LossListAccess(experiments.Fig8LossPattern(s, seed))
	fmt.Printf("%d operations: median %.0f ns, p99 %.0f ns, max %.0f ns\n",
		st.Ops, st.MedianNs, st.P99Ns, st.MaxNs)
}

func runFig11(s experiments.Scale, seed int64) {
	fmt.Printf("%20s  %10s  %10s  %12s\n", "path", "UDT Mb/s", "TCP Mb/s", "paper UDT")
	for _, p := range experiments.Fig11SingleFlow(s, seed) {
		fmt.Printf("%20s  %10.1f  %10.1f  %12.0f\n", p.Path.Name, p.UDTMbps, p.TCPMbps, p.PaperScaled(s))
	}
}

func runFig12(s experiments.Scale, seed int64) {
	r := experiments.Fig12SharedLink(s, seed)
	fmt.Printf("UDT: local=%.1f, 16ms=%.1f, 110ms=%.1f Mb/s (paper ≈325 each)\n",
		r.UDTMbps[0], r.UDTMbps[1], r.UDTMbps[2])
	fmt.Printf("TCP: local=%.1f, 16ms=%.1f, 110ms=%.1f Mb/s (paper 754/150/27)\n",
		r.TCPMbps[0], r.TCPMbps[1], r.TCPMbps[2])
}

func runFig13(s experiments.Scale, seed int64) {
	fmt.Printf("%10s  %16s\n", "UDT flows", "TCP agg (Mb/s)")
	for _, p := range experiments.Fig13SmallTCP(s, seed) {
		fmt.Printf("%10d  %16.1f\n", p.UDTFlows, p.TCPAggMbps)
	}
}

func runSYN(s experiments.Scale, seed int64) {
	fmt.Printf("%10s  %12s  %14s\n", "SYN (ms)", "solo Mb/s", "friendliness")
	for _, p := range experiments.AblationSYN(s, seed) {
		fmt.Printf("%10.0f  %12.1f  %14.3f\n", p.SYNms, p.SoloMbps, p.Friendliness)
	}
}

func runMIMD(s experiments.Scale, seed int64) {
	r := experiments.AblationMIMD(s, seed)
	fmt.Printf("late-joiner fairness (Jain): AIMD=%.3f, MIMD=%.3f\n", r.AIMDJain, r.MIMDJain)
}

func runPacing(s experiments.Scale, seed int64) {
	r := experiments.AblationPacing(s, seed)
	fmt.Printf("UDT (paced):  queue %.1f pkts, drops %.3f%%, %.1f Mb/s\n", r.UDTMeanQueue, r.UDTDropPct, r.UDTMbps)
	fmt.Printf("TCP (bursty): queue %.1f pkts, drops %.3f%%, %.1f Mb/s\n", r.TCPMeanQueue, r.TCPDropPct, r.TCPMbps)
}

func runHighSpeed(s experiments.Scale, seed int64) {
	fmt.Printf("%12s  %22s\n", "protocol", "long/short RTT ratio")
	for _, p := range experiments.AblationHighSpeed(s, seed) {
		fmt.Printf("%12s  %22.3f\n", p.Protocol, p.Ratio)
	}
}
