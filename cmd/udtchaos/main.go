// Command udtchaos runs the UDT fault-injection matrix: full transfers of
// checksummed payloads through netem-impaired paths, driven by the real
// protocol engines under a deterministic virtual clock (and optionally the
// full concurrent stack under the wall clock).
//
// Usage:
//
//	udtchaos [-seed N] [-determinism] [-ccmatrix] [-campaign] [-real] [-v]
//	         [-kv] [-metrics FILE] [-report DIR]
//
// Exit status is non-zero if any matrix cell fails. With -determinism each
// cell runs twice and the two results must be bit-identical — the replay
// guarantee the virtual clock provides. With -ccmatrix the congestion-control
// matrix runs instead of the impairment matrix: every pluggable law carries
// a transfer through loss, and fairness cells race two laws over one shared
// rate-capped link. With -campaign the CI campaign set runs instead: the
// 100-flow mixed-law dumbbell and the 32-flow flash-crowd star over multi-hop
// netem topologies (-kv prints flat benchdiff metric lines, -metrics writes
// them as JSON, -report writes per-campaign JSONL reports). With -real a
// smoke subset also runs over the production Dial/Listen stack — one
// transfer per congestion controller.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"

	"udt"
	"udt/internal/campaign"
	"udt/internal/netem"
	"udt/internal/netem/chaos"
)

func main() {
	seed := flag.Int64("seed", 1, "PRNG seed for payloads, handshakes and impairments")
	determinism := flag.Bool("determinism", false, "run every cell twice and require bit-identical results")
	ccmatrix := flag.Bool("ccmatrix", false, "run the congestion-control matrix instead of the impairment matrix")
	camp := flag.Bool("campaign", false, "run the CI campaign set (multi-flow topologies) instead of the impairment matrix")
	real := flag.Bool("real", false, "also run a smoke subset over the concurrent udt stack")
	kv := flag.Bool("kv", false, "with -campaign: print flat 'key value' metric lines for the bench history")
	metricsFile := flag.String("metrics", "", "with -campaign: write flat metrics JSON to this file")
	reportDir := flag.String("report", "", "with -campaign: write per-campaign JSONL reports into this directory")
	verbose := flag.Bool("v", false, "print per-cell protocol counters")
	flag.Parse()

	if *camp {
		os.Exit(runCampaigns(*determinism, *kv, *metricsFile, *reportDir, *verbose))
	}

	failed := 0
	cases := chaos.QuickMatrix()
	if *ccmatrix {
		cases = chaos.CCMatrix()
	}
	results := chaos.RunMatrix(*seed, cases)
	var second []chaos.CaseResult
	if *determinism {
		second = chaos.RunMatrix(*seed, cases)
	}
	for i, cr := range results {
		status := "ok"
		if !cr.Pass {
			status = "FAIL"
			failed++
		}
		det := ""
		if *determinism {
			identical := reflect.DeepEqual(cr.Result, second[i].Result) &&
				reflect.DeepEqual(cr.Mux, second[i].Mux) &&
				realIdentical(cr.Real, second[i].Real) &&
				fsIdentical(cr.FS, second[i].FS)
			if identical {
				det = " replay=identical"
			} else {
				det = " replay=DIVERGED"
				failed++
			}
		}
		if cr.Real != nil {
			r := cr.Real
			fmt.Printf("%-22s %-4s wall=%8.3fs recv=%d retrans=%d%s\n",
				cr.Case.Name, status, r.Elapsed.Seconds(), r.RecvBytes, r.Client.PktsRetrans, det)
			if *verbose {
				fmt.Printf("    client: %+v\n    server: %+v\n", r.Client, r.Server)
			}
			continue
		}
		if cr.FS != nil {
			f := cr.FS
			fmt.Printf("%-22s %-4s wall=%8.3fs bytes=%d killed=%v resumes=%d%s\n",
				cr.Case.Name, status, f.Elapsed.Seconds(), f.Bytes, f.Killed, f.Resumes, det)
			if *verbose {
				fmt.Printf("    c->s: %+v\n    s->c: %+v\n", f.PathCS, f.PathSC)
			}
			continue
		}
		if cr.Mux != nil {
			m := cr.Mux
			fmt.Printf("%-22s %-4s virtual=%8.3fs flows=%d/%d demux-drops a=(%d,%d) b=(%d,%d)%s\n",
				cr.Case.Name, status, float64(m.Elapsed)/1e6,
				m.FlowsOK, len(m.Flows),
				m.UnknownDestA, m.ShortA, m.UnknownDestB, m.ShortB, det)
			if len(cr.Case.CCs) > 0 {
				// Fairness cell: show how the shared link split per law.
				for j, f := range m.Flows {
					fmt.Printf("    flow %d %-9s goodput a=%.2f Mb/s b=%.2f Mb/s\n",
						j, f.CC, f.GoodputAMbps, f.GoodputBMbps)
				}
			}
			if *verbose {
				fmt.Printf("    a->b: %+v\n    b->a: %+v\n", m.PathAB, m.PathBA)
			}
			continue
		}
		r := cr.Result
		fmt.Printf("%-22s %-4s virtual=%8.3fs a{recv=%s dead=%v} b{recv=%s dead=%v}%s\n",
			cr.Case.Name, status, float64(r.Elapsed)/1e6,
			okStr(r.A.RecvOK), r.A.Broken, okStr(r.B.RecvOK), r.B.Broken, det)
		if *verbose {
			fmt.Printf("    a: %+v\n    b: %+v\n    a->b: %+v\n    b->a: %+v\n",
				r.A.Stats, r.B.Stats, r.PathAB, r.PathBA)
		}
	}

	if *real {
		smokes := []struct {
			name string
			link netem.LinkConfig
			cc   string
		}{
			{"real-clean", netem.LinkConfig{Delay: 1000}, ""},
			{"real-loss-1pct", netem.LinkConfig{Delay: 2000, Jitter: 2000, Loss: 0.01, Dup: 0.001}, ""},
		}
		// One impaired transfer per congestion controller over the full
		// concurrent stack — the paper's §5.2 laws moving real bytes.
		for _, name := range udt.CongestionControls() {
			smokes = append(smokes, struct {
				name string
				link netem.LinkConfig
				cc   string
			}{"real-cc-" + name, netem.LinkConfig{Delay: 2000, Jitter: 1000, Loss: 0.005}, name})
		}
		for _, rc := range smokes {
			ucfg := udt.Config{}
			if rc.cc != "" {
				cc, err := udt.CongestionControl(rc.cc)
				if err != nil {
					fmt.Printf("%-22s FAIL error=%v\n", rc.name, err)
					failed++
					continue
				}
				ucfg.CC = cc
			}
			res, err := chaos.RunReal(chaos.RealConfig{Seed: *seed, Payload: 1 << 20, Link: rc.link, UDT: ucfg})
			switch {
			case err != nil:
				fmt.Printf("%-22s FAIL error=%v\n", rc.name, err)
				failed++
			case !res.OK:
				fmt.Printf("%-22s FAIL recv=%d hash mismatch\n", rc.name, res.RecvBytes)
				failed++
			default:
				fmt.Printf("%-22s ok   wall=%8.3fs retrans=%d cc=%s\n",
					rc.name, res.Elapsed.Seconds(), res.Client.PktsRetrans, res.Client.CCName)
			}
		}
	}

	if failed > 0 {
		fmt.Printf("udtchaos: %d failure(s)\n", failed)
		os.Exit(1)
	}
}

// runCampaigns executes the CI campaign set and returns the process exit
// code. With determinism each campaign runs twice and the two reports must
// hash identically — the replay guarantee, now over whole topologies.
func runCampaigns(determinism, kv bool, metricsFile, reportDir string, verbose bool) int {
	failed := 0
	metrics := make(map[string]float64)
	for _, spec := range campaign.CISet() {
		rep, _, err := campaign.Run(spec)
		if err != nil {
			fmt.Printf("%-12s FAIL error=%v\n", spec.Name, err)
			failed++
			continue
		}
		det := ""
		if determinism {
			rep2, _, err := campaign.Run(spec)
			switch {
			case err != nil:
				det = " replay=ERROR"
				failed++
			case rep.Digest() != rep2.Digest():
				det = " replay=DIVERGED"
				failed++
			default:
				det = " replay=identical"
			}
		}
		if !rep.OK {
			failed++
		}
		fmt.Printf("%s%s\n", rep, det)
		if verbose {
			for _, l := range rep.Links {
				if l.DroppedQueue > 0 || l.Lost > 0 {
					fmt.Printf("    link %s→%s offered=%d delivered=%d dropq=%d maxq=%d\n",
						l.From, l.To, l.Offered, l.Delivered, l.DroppedQueue, l.MaxQueuePkts)
				}
			}
		}
		for k, v := range rep.Metrics() {
			metrics[k] = v
		}
		if reportDir != "" {
			if err := writeReport(reportDir, spec.Name, rep); err != nil {
				fmt.Printf("%-12s FAIL report: %v\n", spec.Name, err)
				failed++
			}
		}
	}
	keys := make([]string, 0, len(metrics))
	for k := range metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if kv {
		for _, k := range keys {
			fmt.Printf("%s %g\n", k, metrics[k])
		}
	}
	if metricsFile != "" {
		b, err := json.MarshalIndent(metrics, "", "  ")
		if err == nil {
			err = os.WriteFile(metricsFile, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Printf("udtchaos: write metrics: %v\n", err)
			failed++
		}
	}
	if failed > 0 {
		fmt.Printf("udtchaos: %d failure(s)\n", failed)
		return 1
	}
	return 0
}

// writeReport writes one campaign's JSONL report to dir/<name>.jsonl.
func writeReport(dir, name string, rep *campaign.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".jsonl"))
	if err != nil {
		return err
	}
	if err := rep.WriteJSONL(f); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	return f.Close()
}

func okStr(ok bool) string {
	if ok {
		return "ok"
	}
	return "bad"
}

// realIdentical and fsIdentical compare only the seed-deterministic
// outcome of the wall-clock cells: wall time, protocol counters and the
// exact resume count legitimately vary between runs.
func realIdentical(a, b *chaos.RealResult) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.OK == b.OK && a.SentHash == b.SentHash && a.RecvHash == b.RecvHash && a.RecvBytes == b.RecvBytes
}

func fsIdentical(a, b *chaos.FSResult) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.OK == b.OK && a.WantHash == b.WantHash && a.GotHash == b.GotHash &&
		a.Bytes == b.Bytes && a.Killed == b.Killed && (a.Resumes > 0) == (b.Resumes > 0)
}
