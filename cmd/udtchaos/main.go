// Command udtchaos runs the UDT fault-injection matrix: full transfers of
// checksummed payloads through netem-impaired paths, driven by the real
// protocol engines under a deterministic virtual clock (and optionally the
// full concurrent stack under the wall clock).
//
// Usage:
//
//	udtchaos [-seed N] [-determinism] [-real] [-v]
//
// Exit status is non-zero if any matrix cell fails. With -determinism each
// cell runs twice and the two results must be bit-identical — the replay
// guarantee the virtual clock provides. With -real a smoke subset also
// runs over the production Dial/Listen stack.
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"

	"udt/internal/netem"
	"udt/internal/netem/chaos"
)

func main() {
	seed := flag.Int64("seed", 1, "PRNG seed for payloads, handshakes and impairments")
	determinism := flag.Bool("determinism", false, "run every cell twice and require bit-identical results")
	real := flag.Bool("real", false, "also run a smoke subset over the concurrent udt stack")
	verbose := flag.Bool("v", false, "print per-cell protocol counters")
	flag.Parse()

	failed := 0
	cases := chaos.QuickMatrix()
	results := chaos.RunMatrix(*seed, cases)
	var second []chaos.CaseResult
	if *determinism {
		second = chaos.RunMatrix(*seed, cases)
	}
	for i, cr := range results {
		status := "ok"
		if !cr.Pass {
			status = "FAIL"
			failed++
		}
		det := ""
		if *determinism {
			identical := reflect.DeepEqual(cr.Result, second[i].Result) &&
				reflect.DeepEqual(cr.Mux, second[i].Mux)
			if identical {
				det = " replay=identical"
			} else {
				det = " replay=DIVERGED"
				failed++
			}
		}
		if cr.Mux != nil {
			m := cr.Mux
			fmt.Printf("%-22s %-4s virtual=%8.3fs flows=%d/%d demux-drops a=(%d,%d) b=(%d,%d)%s\n",
				cr.Case.Name, status, float64(m.Elapsed)/1e6,
				m.FlowsOK, len(m.Flows),
				m.UnknownDestA, m.ShortA, m.UnknownDestB, m.ShortB, det)
			if *verbose {
				fmt.Printf("    a->b: %+v\n    b->a: %+v\n", m.PathAB, m.PathBA)
			}
			continue
		}
		r := cr.Result
		fmt.Printf("%-22s %-4s virtual=%8.3fs a{recv=%s dead=%v} b{recv=%s dead=%v}%s\n",
			cr.Case.Name, status, float64(r.Elapsed)/1e6,
			okStr(r.A.RecvOK), r.A.Broken, okStr(r.B.RecvOK), r.B.Broken, det)
		if *verbose {
			fmt.Printf("    a: %+v\n    b: %+v\n    a->b: %+v\n    b->a: %+v\n",
				r.A.Stats, r.B.Stats, r.PathAB, r.PathBA)
		}
	}

	if *real {
		for _, rc := range []struct {
			name string
			link netem.LinkConfig
		}{
			{"real-clean", netem.LinkConfig{Delay: 1000}},
			{"real-loss-1pct", netem.LinkConfig{Delay: 2000, Jitter: 2000, Loss: 0.01, Dup: 0.001}},
		} {
			res, err := chaos.RunReal(chaos.RealConfig{Seed: *seed, Payload: 1 << 20, Link: rc.link})
			switch {
			case err != nil:
				fmt.Printf("%-22s FAIL error=%v\n", rc.name, err)
				failed++
			case !res.OK:
				fmt.Printf("%-22s FAIL recv=%d hash mismatch\n", rc.name, res.RecvBytes)
				failed++
			default:
				fmt.Printf("%-22s ok   wall=%8.3fs retrans=%d\n",
					rc.name, res.Elapsed.Seconds(), res.Client.PktsRetrans)
			}
		}
	}

	if failed > 0 {
		fmt.Printf("udtchaos: %d failure(s)\n", failed)
		os.Exit(1)
	}
}

func okStr(ok bool) string {
	if ok {
		return "ok"
	}
	return "bad"
}
