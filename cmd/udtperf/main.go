// Command udtperf is an iperf-style memory-to-memory throughput tool for
// the UDT library.
//
// Server:  udtperf -s [-addr :9000]
// Client:  udtperf -c host:9000 [-t 10s] [-mss 1472] [-interval 1s]
//
// The client streams random data for the duration and prints periodic and
// final throughput plus protocol statistics (retransmissions, RTT, loss).
//
// With -monitor the client instead prints a live perfmon readout: one line
// per telemetry sample straight from the connection's PerfRecord stream
// (sending period, paced and measured rates, flow window, in-flight, RTT,
// bandwidth estimate, loss counters). With -expvar ADDR it also serves the
// rolling history as JSON at http://ADDR/perf and via expvar /debug/vars.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"time"

	"udt"
	"udt/internal/trace"
)

func main() {
	server := flag.Bool("s", false, "run as server (sink)")
	client := flag.String("c", "", "run as client, connecting to host:port")
	addr := flag.String("addr", ":9000", "server listen address")
	dur := flag.Duration("t", 10*time.Second, "client transfer duration")
	mss := flag.Int("mss", 1472, "packet size (UDP payload bytes)")
	interval := flag.Duration("interval", time.Second, "client report interval")
	monitor := flag.Bool("monitor", false, "print a live one-line-per-interval perfmon readout")
	expAddr := flag.String("expvar", "", "serve perf history as JSON on this HTTP address (/perf, /debug/vars)")
	flag.Parse()

	switch {
	case *server:
		runServer(*addr, *mss)
	case *client != "":
		runClient(*client, *dur, *mss, *interval, *monitor, *expAddr)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runServer(addr string, mss int) {
	ln, err := udt.Listen(addr, &udt.Config{MSS: mss})
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	log.Printf("udtperf server listening on %s", ln.Addr())
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			start := time.Now()
			n, _ := io.Copy(io.Discard, c)
			el := time.Since(start)
			st := c.Stats()
			log.Printf("%s: received %.1f MB in %v = %.1f Mb/s (loss events %d, dups %d)",
				c.RemoteAddr(), float64(n)/1e6, el.Round(time.Millisecond),
				float64(n*8)/el.Seconds()/1e6, st.LossEvents, st.PktsDup)
			c.Close()
		}()
	}
}

func runClient(addr string, dur time.Duration, mss int, interval time.Duration, monitor bool, expAddr string) {
	cfg := &udt.Config{MSS: mss}
	if monitor {
		// One perf sample per report interval: sample every
		// interval/SYN rate ticks (default SYN is 10 ms).
		every := int(interval / (10 * time.Millisecond))
		if every < 1 {
			every = 1
		}
		cfg.PerfEverySYN = every
	}
	c, err := udt.Dial(addr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	st0 := c.Stats()
	log.Printf("connected to %s (mss %d, udp buffers rcv=%d snd=%d bytes)",
		addr, mss, st0.UDPRcvBufBytes, st0.UDPSndBufBytes)

	if expAddr != "" {
		trace.Publish("udtperf.perf", c.Perf)
		http.Handle("/perf", trace.Handler(c.Perf))
		go func() {
			if err := http.ListenAndServe(expAddr, nil); err != nil {
				log.Printf("expvar server: %v", err)
			}
		}()
		log.Printf("perf history at http://%s/perf", expAddr)
	}

	buf := make([]byte, 1<<20)
	rand.New(rand.NewSource(time.Now().UnixNano())).Read(buf)
	stop := time.Now().Add(dur)
	start := time.Now()
	var total int64
	lastBytes, lastAt := int64(0), time.Now()
	nextReport := time.Now().Add(interval)
	if monitor {
		fmt.Println(monitorHeader)
	}
	var lastSample int64 = -1
	for time.Now().Before(stop) {
		n, err := c.Write(buf)
		total += int64(n)
		if err != nil {
			log.Fatalf("write: %v", err)
		}
		now := time.Now()
		if monitor {
			if r, ok := c.LastPerf(); ok && r.T != lastSample {
				lastSample = r.T
				fmt.Println(monitorLine(&r))
			}
			continue
		}
		if now.After(nextReport) {
			st := c.Stats()
			fmt.Printf("%6.1fs  %8.1f Mb/s  rtt %8v  retrans %6d  rate %7.1f Mb/s\n",
				now.Sub(start).Seconds(),
				float64((total-lastBytes)*8)/now.Sub(lastAt).Seconds()/1e6,
				st.RTT.Round(10*time.Microsecond), st.PktsRetrans, st.SendRateMbps)
			lastBytes, lastAt = total, now
			nextReport = now.Add(interval)
		}
	}
	// Drain before closing.
	for !c.Drained() {
		time.Sleep(10 * time.Millisecond)
	}
	st := c.Stats()
	el := dur.Seconds()
	fmt.Printf("----\nsent %.1f MB in %.1fs = %.1f Mb/s; pkts %d (+%d retrans), ACKs %d, NAKs %d, freezes %d\n",
		float64(total)/1e6, el, float64(total*8)/el/1e6,
		st.PktsSent, st.PktsRetrans, st.ACKsRecv, st.NAKsRecv, st.SndFreezes)
}

// monitorHeader labels the -monitor columns.
const monitorHeader = "      t     period      pace      wire    win  inflight      rtt    bw-est  retrans   naks"

// monitorLine formats one PerfRecord as a perfmon readout line:
// time, sending period, paced target rate, measured wire rate, flow window,
// packets in flight, smoothed RTT, estimated link bandwidth, cumulative
// retransmissions and NAKs received.
func monitorLine(r *udt.PerfRecord) string {
	return fmt.Sprintf("%6.1fs %7.1fµs %6.1fMb/s %6.1fMb/s %6d %9d %7.2fms %6.1fMb/s %8d %6d",
		float64(r.T)/1e6, r.PeriodUs, r.SendRateMbps, r.SendMbps,
		r.FlowWindow, r.InFlight, float64(r.RTTUs)/1e3, r.BandwidthMbps,
		r.PktsRetrans, r.NAKsRecv)
}
