// Command udtperf is an iperf-style memory-to-memory throughput tool for
// the UDT library.
//
// Server:  udtperf -s [-addr :9000]
// Client:  udtperf -c host:9000 [-t 10s] [-mss 1472] [-interval 1s]
//
// The client streams random data for the duration and prints periodic and
// final throughput plus protocol statistics (retransmissions, RTT, loss).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"time"

	"udt"
)

func main() {
	server := flag.Bool("s", false, "run as server (sink)")
	client := flag.String("c", "", "run as client, connecting to host:port")
	addr := flag.String("addr", ":9000", "server listen address")
	dur := flag.Duration("t", 10*time.Second, "client transfer duration")
	mss := flag.Int("mss", 1472, "packet size (UDP payload bytes)")
	interval := flag.Duration("interval", time.Second, "client report interval")
	flag.Parse()

	switch {
	case *server:
		runServer(*addr, *mss)
	case *client != "":
		runClient(*client, *dur, *mss, *interval)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runServer(addr string, mss int) {
	ln, err := udt.Listen(addr, &udt.Config{MSS: mss})
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	log.Printf("udtperf server listening on %s", ln.Addr())
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			start := time.Now()
			n, _ := io.Copy(io.Discard, c)
			el := time.Since(start)
			st := c.Stats()
			log.Printf("%s: received %.1f MB in %v = %.1f Mb/s (loss events %d, dups %d)",
				c.RemoteAddr(), float64(n)/1e6, el.Round(time.Millisecond),
				float64(n*8)/el.Seconds()/1e6, st.LossEvents, st.PktsDup)
			c.Close()
		}()
	}
}

func runClient(addr string, dur time.Duration, mss int, interval time.Duration) {
	c, err := udt.Dial(addr, &udt.Config{MSS: mss})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	log.Printf("connected to %s (mss %d)", addr, mss)

	buf := make([]byte, 1<<20)
	rand.New(rand.NewSource(time.Now().UnixNano())).Read(buf)
	stop := time.Now().Add(dur)
	var total int64
	lastBytes, lastAt := int64(0), time.Now()
	nextReport := time.Now().Add(interval)
	for time.Now().Before(stop) {
		n, err := c.Write(buf)
		total += int64(n)
		if err != nil {
			log.Fatalf("write: %v", err)
		}
		if now := time.Now(); now.After(nextReport) {
			st := c.Stats()
			fmt.Printf("%6.1fs  %8.1f Mb/s  rtt %8v  retrans %6d  rate %7.1f Mb/s\n",
				time.Until(stop.Add(-dur)).Abs().Seconds(),
				float64((total-lastBytes)*8)/now.Sub(lastAt).Seconds()/1e6,
				st.RTT.Round(10*time.Microsecond), st.PktsRetrans, st.SendRateMbps)
			lastBytes, lastAt = total, now
			nextReport = now.Add(interval)
		}
	}
	// Drain before closing.
	for !c.Drained() {
		time.Sleep(10 * time.Millisecond)
	}
	st := c.Stats()
	el := dur.Seconds()
	fmt.Printf("----\nsent %.1f MB in %.1fs = %.1f Mb/s; pkts %d (+%d retrans), ACKs %d, NAKs %d, freezes %d\n",
		float64(total)/1e6, el, float64(total*8)/el/1e6,
		st.PktsSent, st.PktsRetrans, st.ACKsRecv, st.NAKsRecv, st.SndFreezes)
}
