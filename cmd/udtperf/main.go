// Command udtperf is an iperf-style memory-to-memory throughput tool for
// the UDT library.
//
// Server:  udtperf -s [-addr :9000]
// Client:  udtperf -c host:9000 [-t 10s] [-mss 1472] [-interval 1s] [-streams 4] [-cc ctcp]
//
// The client streams random data for the duration and prints periodic and
// final throughput plus protocol statistics (retransmissions, RTT, loss).
// With -streams N the client multiplexes N concurrent UDT flows over one
// shared UDP socket (udt.Mux) and reports aggregate throughput — the
// listener side always accepts multiplexed flows.
//
// With -psk (both sides, min 16 bytes) the handshake is authenticated and
// unauthenticated peers are refused; -aead additionally seals every data
// packet with ChaCha20-Poly1305. The monitor's authrej/cookie columns
// surface the corresponding Stats counters.
//
// With -monitor the client instead prints a live perfmon readout: one line
// per telemetry sample straight from the first flow's PerfRecord stream
// (sending period, paced and measured rates, flow window, in-flight, RTT,
// bandwidth estimate, loss counters), plus the shared socket's demux drop
// counters when -streams is in play. With -expvar ADDR it also serves the
// rolling history as JSON at http://ADDR/perf and via expvar /debug/vars.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"udt"
	"udt/internal/trace"
)

func main() {
	server := flag.Bool("s", false, "run as server (sink)")
	client := flag.String("c", "", "run as client, connecting to host:port")
	addr := flag.String("addr", ":9000", "server listen address")
	dur := flag.Duration("t", 10*time.Second, "client transfer duration")
	mss := flag.Int("mss", 1472, "packet size (UDP payload bytes)")
	interval := flag.Duration("interval", time.Second, "client report interval")
	streams := flag.Int("streams", 1, "concurrent flows multiplexed over one UDP socket")
	monitor := flag.Bool("monitor", false, "print a live one-line-per-interval perfmon readout")
	expAddr := flag.String("expvar", "", "serve perf history as JSON on this HTTP address (/perf, /debug/vars)")
	ccName := flag.String("cc", "", fmt.Sprintf("congestion controller for the sending side %v; default native", udt.CongestionControls()))
	noOffload := flag.Bool("no-offload", false, "disable UDP GSO/GRO segmentation offload (Config.DisableOffload)")
	batch := flag.Int("batch", 0, "send/receive batch size in packets (Config.BatchSize; 0 = default)")
	shards := flag.Int("shards", 0, "server: SO_REUSEPORT socket group size (Config.ReusePortShards; 0 = one socket)")
	psk := flag.String("psk", "", "pre-shared key: authenticate the handshake (Config.PSK; min 16 bytes, both sides)")
	aead := flag.Bool("aead", false, "seal data packets with ChaCha20-Poly1305 (Config.AEAD; requires -psk)")
	flag.Parse()

	switch {
	case *server:
		runServer(*addr, *mss, *noOffload, *batch, *shards, *psk, *aead)
	case *client != "":
		if *streams < 1 {
			log.Fatalf("-streams %d: need at least one flow", *streams)
		}
		runClient(*client, *dur, *mss, *interval, *streams, *monitor, *expAddr, *ccName, *noOffload, *batch, *psk, *aead)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runServer(addr string, mss int, noOffload bool, batch, shards int, psk string, aead bool) {
	ln, err := udt.Listen(addr, &udt.Config{MSS: mss, DisableOffload: noOffload, BatchSize: batch,
		ReusePortShards: shards, PSK: []byte(psk), AEAD: aead})
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	log.Printf("udtperf server listening on %s", ln.Addr())
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			start := time.Now()
			n, _ := io.Copy(io.Discard, c)
			el := time.Since(start)
			st := c.Stats()
			log.Printf("%s: received %.1f MB in %v = %.1f Mb/s (loss events %d, dups %d)",
				c.RemoteAddr(), float64(n)/1e6, el.Round(time.Millisecond),
				float64(n*8)/el.Seconds()/1e6, st.LossEvents, st.PktsDup)
			c.Close()
		}()
	}
}

// dialFlows establishes the client flows: one private-socket connection,
// or N flows multiplexed over one shared UDP socket. The second return is
// the Mux when one is in play (for its demux drop counters).
func dialFlows(addr string, cfg *udt.Config, streams int) ([]*udt.Conn, *udt.Mux) {
	if streams == 1 {
		c, err := udt.Dial(addr, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return []*udt.Conn{c}, nil
	}
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		log.Fatal(err)
	}
	pc, err := net.ListenUDP("udp", nil)
	if err != nil {
		log.Fatal(err)
	}
	m, err := udt.NewMux(pc, cfg)
	if err != nil {
		log.Fatal(err)
	}
	conns := make([]*udt.Conn, streams)
	for i := range conns {
		if conns[i], err = m.Dial(raddr); err != nil {
			log.Fatalf("stream %d: %v", i, err)
		}
	}
	return conns, m
}

func runClient(addr string, dur time.Duration, mss int, interval time.Duration, streams int, monitor bool, expAddr, ccName string, noOffload bool, batch int, psk string, aead bool) {
	cc, err := udt.CongestionControl(ccName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := &udt.Config{MSS: mss, CC: cc, DisableOffload: noOffload, BatchSize: batch,
		PSK: []byte(psk), AEAD: aead}
	if monitor {
		// One perf sample per report interval: sample every
		// interval/SYN rate ticks (default SYN is 10 ms).
		every := int(interval / (10 * time.Millisecond))
		if every < 1 {
			every = 1
		}
		cfg.PerfEverySYN = every
	}
	conns, m := dialFlows(addr, cfg, streams)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
		if m != nil {
			m.Close()
		}
	}()
	c := conns[0] // stats/monitor anchor
	st0 := c.Stats()
	log.Printf("connected to %s (mss %d, %d stream(s), cc %s, udp buffers rcv=%d snd=%d bytes)",
		addr, mss, streams, st0.CCName, st0.UDPRcvBufBytes, st0.UDPSndBufBytes)
	if m != nil {
		gso, gro := m.Offload()
		log.Printf("offload probe: UDP_SEGMENT(GSO)=%v UDP_GRO=%v", gso, gro)
	} else {
		log.Printf("offload probe: UDP_SEGMENT(GSO)=%v (private socket; GRO applies to listener groups)", st0.GSOEnabled)
	}

	if expAddr != "" {
		trace.Publish("udtperf.perf", c.Perf)
		http.Handle("/perf", trace.Handler(c.Perf))
		go func() {
			if err := http.ListenAndServe(expAddr, nil); err != nil {
				log.Printf("expvar server: %v", err)
			}
		}()
		log.Printf("perf history at http://%s/perf", expAddr)
	}

	stop := time.Now().Add(dur)
	start := time.Now()
	var total, failed atomic.Int64
	var wg sync.WaitGroup
	for _, c := range conns {
		wg.Add(1)
		go func(c *udt.Conn) {
			defer wg.Done()
			buf := make([]byte, 1<<20)
			rand.New(rand.NewSource(time.Now().UnixNano())).Read(buf)
			for time.Now().Before(stop) {
				n, err := c.Write(buf)
				total.Add(int64(n))
				if err != nil {
					log.Printf("write: %v", err)
					failed.Add(1)
					return
				}
			}
		}(c)
	}

	lastBytes, lastAt := int64(0), time.Now()
	if monitor {
		fmt.Println(monitorHeader)
	}
	var lastSample int64 = -1
	tick := time.NewTicker(interval / 10)
	defer tick.Stop()
	for now := range tick.C {
		if !now.Before(stop) {
			break
		}
		if failed.Load() == int64(len(conns)) {
			break // every stream is dead; stop reporting zeros
		}
		if monitor {
			if r, ok := c.LastPerf(); ok && r.T != lastSample {
				lastSample = r.T
				fmt.Println(monitorLine(&r, c.Stats()))
			}
			continue
		}
		if now.Sub(lastAt) >= interval {
			st := c.Stats()
			cur := total.Load()
			fmt.Printf("%6.1fs  %8.1f Mb/s  rtt %8v  retrans %6d  rate %7.1f Mb/s\n",
				now.Sub(start).Seconds(),
				float64((cur-lastBytes)*8)/now.Sub(lastAt).Seconds()/1e6,
				st.RTT.Round(10*time.Microsecond), st.PktsRetrans, st.SendRateMbps)
			lastBytes, lastAt = cur, now
		}
	}
	wg.Wait()
	// Drain before closing, but give up after a bound: when the run ends in
	// a congestion collapse the buffered backlog can take longer to drain at
	// the ratcheted-down recovery rate than the whole measurement took, and
	// the exit path must not hang on it.
	deadline := time.Now().Add(10 * time.Second)
	drained := true
	for _, c := range conns {
		for c.Drained() != true && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		drained = drained && c.Drained()
	}
	if !drained {
		log.Printf("drain cut short after 10s; discarding unsent backlog")
	}
	var sent, retrans, acks, naks, freezes int64
	for _, c := range conns {
		st := c.Stats()
		sent += st.PktsSent
		retrans += st.PktsRetrans
		acks += st.ACKsRecv
		naks += st.NAKsRecv
		freezes += st.SndFreezes
	}
	el := dur.Seconds()
	tot := total.Load()
	fst := c.Stats()
	fmt.Printf("----\nsent %.1f MB in %.1fs = %.1f Mb/s; pkts %d (+%d retrans), ACKs %d, NAKs %d, freezes %d\n",
		float64(tot)/1e6, el, float64(tot*8)/el/1e6,
		sent, retrans, acks, naks, freezes)
	fmt.Printf("cc %s: period %.1fµs, cwnd %.0f pkts\n", fst.CCName, fst.CCPeriodUs, fst.CCWindowPkts)
	if m != nil {
		unknown, short := m.Counters()
		fmt.Printf("mux: %d flows on one socket; demux drops: unknown-dest %d, short %d\n",
			streams, unknown, short)
	}
	if failed.Load() == int64(len(conns)) {
		log.Fatalf("all %d stream(s) failed", len(conns))
	}
}

// monitorHeader labels the -monitor columns.
const monitorHeader = "      t       cc     period     cwnd      pace      wire    win  inflight      rtt    bw-est  retrans   naks  sys/pkt  mux-unk  mux-short  authrej  cookie"

// monitorLine formats one PerfRecord as a perfmon readout line:
// time, congestion controller and its sending period and window, paced
// target rate, measured wire rate, flow window, packets in flight, smoothed
// RTT, estimated link bandwidth, cumulative retransmissions and NAKs
// received, the cumulative send-syscall amortization (syscalls per data
// packet: 1.0 bare, ~1/batch with sendmmsg, down to ~1/44 with GSO), the
// shared socket's demux drop counters (zero on a private socket), and the
// Secure UDT counters — authentication rejects and cookie challenges sent
// (both zero on cleartext runs). The PerfRecord stream itself is unchanged
// — the extra columns come from Stats, so recorded telemetry stays
// byte-identical.
func monitorLine(r *udt.PerfRecord, st udt.Stats) string {
	sysPerPkt := 0.0
	if st.PktsSent > 0 {
		sysPerPkt = float64(st.SendSyscalls) / float64(st.PktsSent)
	}
	return fmt.Sprintf("%6.1fs %8s %7.1fµs %8.0f %6.1fMb/s %6.1fMb/s %6d %9d %7.2fms %6.1fMb/s %8d %6d %8.3f %8d %10d %8d %7d",
		float64(r.T)/1e6, r.CCName, r.PeriodUs, r.Cwnd, r.SendRateMbps, r.SendMbps,
		r.FlowWindow, r.InFlight, float64(r.RTTUs)/1e3, r.BandwidthMbps,
		r.PktsRetrans, r.NAKsRecv, sysPerPkt, st.MuxUnknownDest, st.MuxShortDatagram,
		st.AuthRejects, st.CookieSent)
}
