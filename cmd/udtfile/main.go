// Command udtfile transfers files over UDT using the sendfile/recvfile API
// (paper §4.7).
//
// Receive side:  udtfile -recv -addr :9001 -out dir/ [-once]
// Send side:     udtfile -send path/to/file -to host:9001 [-cc ctcp]
//
// With -psk (both sides, min 16 bytes) the handshake is authenticated and
// unauthenticated peers are refused; -aead additionally seals every data
// packet with ChaCha20-Poly1305.
//
// Both sides print the connection's final protocol statistics (congestion
// controller, retransmissions, loss, RTT) and exit nonzero when a transfer
// fails — -once makes the receiver serve exactly one transfer so scripts
// can check its exit status.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"udt"
)

func main() {
	recv := flag.Bool("recv", false, "receive files")
	addr := flag.String("addr", ":9001", "receive listen address")
	out := flag.String("out", ".", "receive output directory")
	once := flag.Bool("once", false, "receive exactly one transfer, then exit (nonzero if it failed)")
	send := flag.String("send", "", "file to send")
	to := flag.String("to", "", "destination host:port")
	ccName := flag.String("cc", "", fmt.Sprintf("congestion controller for the sending side %v; default native", udt.CongestionControls()))
	psk := flag.String("psk", "", "pre-shared key: authenticate the handshake (Config.PSK; min 16 bytes, both sides)")
	aead := flag.Bool("aead", false, "seal data packets with ChaCha20-Poly1305 (Config.AEAD; requires -psk)")
	flag.Parse()

	switch {
	case *recv:
		runRecv(*addr, *out, *once, *psk, *aead)
	case *send != "" && *to != "":
		runSend(*send, *to, *ccName, *psk, *aead)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// statsLine summarizes a connection's final protocol counters — the same
// fields udtperf reports, so the two tools' outputs line up.
func statsLine(st udt.Stats) string {
	return fmt.Sprintf("cc %s, retrans %d, loss events %d, dups %d, rtt %v, mux drops %d/%d, auth rejects %d, cookies %d",
		st.CCName, st.PktsRetrans, st.LossEvents, st.PktsDup,
		st.RTT.Round(10*time.Microsecond), st.MuxUnknownDest, st.MuxShortDatagram,
		st.AuthRejects, st.CookieSent)
}

func runRecv(addr, dir string, once bool, psk string, aead bool) {
	ln, err := udt.Listen(addr, &udt.Config{PSK: []byte(psk), AEAD: aead})
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	log.Printf("udtfile receiving on %s into %s", ln.Addr(), dir)
	for i := 0; ; i++ {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		name := filepath.Join(dir, time.Now().Format("udtfile-20060102-150405.000"))
		f, err := os.Create(name)
		if err != nil {
			log.Printf("create: %v", err)
			c.Close()
			if once {
				os.Exit(1)
			}
			continue
		}
		start := time.Now()
		n, err := c.RecvFile(f)
		st := c.Stats()
		f.Close()
		c.Close()
		if err != nil {
			log.Printf("recv %s failed after %.1f MB: %v (%s)", name, float64(n)/1e6, err, statsLine(st))
			if once {
				os.Exit(1)
			}
			continue
		}
		el := time.Since(start)
		log.Printf("received %s: %.1f MB in %v = %.1f Mb/s (%s)",
			name, float64(n)/1e6, el.Round(time.Millisecond), float64(n*8)/el.Seconds()/1e6, statsLine(st))
		if once {
			return
		}
	}
}

func runSend(path, to, ccName, psk string, aead bool) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	cc, err := udt.CongestionControl(ccName)
	if err != nil {
		log.Fatal(err)
	}
	c, err := udt.Dial(to, &udt.Config{CC: cc, PSK: []byte(psk), AEAD: aead})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	// Regular files take the zero-copy path: SendFileZC maps the file and
	// sends packets straight out of the page cache, falling back to the
	// copying loop by itself when the platform or file rules mapping out.
	var n int64
	if fi.Mode().IsRegular() {
		n, err = c.SendFileZC(f)
	} else {
		n, err = c.SendFile(f, fi.Size())
	}
	if err != nil {
		log.Fatalf("send %s failed after %.1f MB: %v (%s)", path, float64(n)/1e6, err, statsLine(c.Stats()))
	}
	if n != fi.Size() {
		log.Fatalf("send %s: short transfer, %d of %d bytes (%s)", path, n, fi.Size(), statsLine(c.Stats()))
	}
	for !c.Drained() {
		time.Sleep(10 * time.Millisecond)
	}
	el := time.Since(start)
	st := c.Stats()
	log.Printf("sent %s: %.1f MB in %v = %.1f Mb/s (%s)",
		path, float64(n)/1e6, el.Round(time.Millisecond),
		float64(n*8)/el.Seconds()/1e6, statsLine(st))
}
