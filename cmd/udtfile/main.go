// Command udtfile transfers files over UDT using the sendfile/recvfile API
// (paper §4.7).
//
// Receive side:  udtfile -recv -addr :9001 -out dir/
// Send side:     udtfile -send path/to/file -to host:9001
package main

import (
	"flag"
	"log"
	"os"
	"path/filepath"
	"time"

	"udt"
)

func main() {
	recv := flag.Bool("recv", false, "receive files")
	addr := flag.String("addr", ":9001", "receive listen address")
	out := flag.String("out", ".", "receive output directory")
	send := flag.String("send", "", "file to send")
	to := flag.String("to", "", "destination host:port")
	flag.Parse()

	switch {
	case *recv:
		runRecv(*addr, *out)
	case *send != "" && *to != "":
		runSend(*send, *to)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runRecv(addr, dir string) {
	ln, err := udt.Listen(addr, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	log.Printf("udtfile receiving on %s into %s", ln.Addr(), dir)
	for i := 0; ; i++ {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		name := filepath.Join(dir, time.Now().Format("udtfile-20060102-150405.000"))
		f, err := os.Create(name)
		if err != nil {
			log.Printf("create: %v", err)
			c.Close()
			continue
		}
		start := time.Now()
		n, err := c.RecvFile(f)
		f.Close()
		c.Close()
		if err != nil {
			log.Printf("recv: %v", err)
			continue
		}
		el := time.Since(start)
		log.Printf("received %s: %.1f MB in %v = %.1f Mb/s",
			name, float64(n)/1e6, el.Round(time.Millisecond), float64(n*8)/el.Seconds()/1e6)
	}
}

func runSend(path, to string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	c, err := udt.Dial(to, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	n, err := c.SendFile(f, fi.Size())
	if err != nil {
		log.Fatal(err)
	}
	for !c.Drained() {
		time.Sleep(10 * time.Millisecond)
	}
	el := time.Since(start)
	st := c.Stats()
	log.Printf("sent %s: %.1f MB in %v = %.1f Mb/s (retrans %d, rtt %v)",
		path, float64(n)/1e6, el.Round(time.Millisecond),
		float64(n*8)/el.Seconds()/1e6, st.PktsRetrans, st.RTT.Round(10*time.Microsecond))
}
