// Command udtfile transfers files over UDT using the sendfile/recvfile API
// (paper §4.7) and, in -serve/-fetch mode, the resumable udtfs service.
//
// Receive side:  udtfile -recv -addr :9001 -out dir/ [-once]
// Send side:     udtfile -send path/to/file -to host:9001 [-cc ctcp]
//
// Serve side:    udtfile -serve dir-or-file -addr :9001
// Fetch side:    udtfile -fetch name -to host:9001 -out dir/ [-resume]
// Range fetch:   udtfile -fetch name -to host:9001 [-offset N] [-limit N]
//
// A fetch writes to <out>/<name>.part and renames on completion, so a
// partial file never masquerades as a finished one; -resume picks an
// existing .part back up, re-hashing the stored prefix and asking the
// server only for the remainder. The fetch survives dropped connections
// by re-dialing and resuming from the verified byte offset by itself.
//
// With -rendezvous LADDR both peers connect simultaneously through
// symmetric firewalls — no listener: the fetch side re-crosses for every
// resume, and a -serve -rendezvous peer answers one crossing per
// connection (loop with -once off, single transfer with -once on).
//
// With -psk (both sides, min 16 bytes) the handshake is authenticated and
// unauthenticated peers are refused; -aead additionally seals every data
// packet with ChaCha20-Poly1305.
//
// Both sides print the connection's final protocol statistics (congestion
// controller, retransmissions, loss, RTT) and exit nonzero when a transfer
// fails — -once makes the receiver serve exactly one transfer so scripts
// can check its exit status.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"udt"
	"udt/udtfs"
)

func main() {
	recv := flag.Bool("recv", false, "receive files")
	addr := flag.String("addr", ":9001", "receive/serve listen address")
	out := flag.String("out", ".", "receive/fetch output directory")
	once := flag.Bool("once", false, "receive exactly one transfer, then exit (nonzero if it failed)")
	send := flag.String("send", "", "file to send")
	to := flag.String("to", "", "destination host:port")
	serve := flag.String("serve", "", "serve a file or directory over udtfs")
	fetch := flag.String("fetch", "", "fetch the named file from a udtfs server (-to)")
	resume := flag.Bool("resume", false, "fetch: continue from an existing .part file")
	offset := flag.Int64("offset", 0, "fetch: start at this byte offset")
	limit := flag.Int64("limit", 0, "fetch: stop after this many bytes (0 = to end of file)")
	rendezvous := flag.String("rendezvous", "", "local address for rendezvous connect (both sides dial, no listener)")
	ccName := flag.String("cc", "", fmt.Sprintf("congestion controller for the sending side %v; default native", udt.CongestionControls()))
	psk := flag.String("psk", "", "pre-shared key: authenticate the handshake (Config.PSK; min 16 bytes, both sides)")
	aead := flag.Bool("aead", false, "seal data packets with ChaCha20-Poly1305 (Config.AEAD; requires -psk)")
	flag.Parse()

	switch {
	case *recv:
		runRecv(*addr, *out, *once, *psk, *aead)
	case *send != "" && *to != "":
		runSend(*send, *to, *ccName, *psk, *aead)
	case *serve != "":
		runServe(*serve, *addr, *rendezvous, *to, *once, *psk, *aead)
	case *fetch != "" && *to != "":
		runFetch(*fetch, *to, *rendezvous, *out, *resume, *offset, *limit, *psk, *aead)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// statsLine summarizes a connection's final protocol counters — the same
// fields udtperf reports, so the two tools' outputs line up.
func statsLine(st udt.Stats) string {
	return fmt.Sprintf("cc %s, retrans %d, loss events %d, dups %d, rtt %v, mux drops %d/%d, auth rejects %d, cookies %d",
		st.CCName, st.PktsRetrans, st.LossEvents, st.PktsDup,
		st.RTT.Round(10*time.Microsecond), st.MuxUnknownDest, st.MuxShortDatagram,
		st.AuthRejects, st.CookieSent)
}

func runRecv(addr, dir string, once bool, psk string, aead bool) {
	ln, err := udt.Listen(addr, &udt.Config{PSK: []byte(psk), AEAD: aead})
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	log.Printf("udtfile receiving on %s into %s", ln.Addr(), dir)
	for i := 0; ; i++ {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		name := filepath.Join(dir, time.Now().Format("udtfile-20060102-150405.000"))
		f, err := os.Create(name)
		if err != nil {
			log.Printf("create: %v", err)
			c.Close()
			if once {
				os.Exit(1)
			}
			continue
		}
		start := time.Now()
		n, err := c.RecvFile(f)
		st := c.Stats()
		f.Close()
		c.Close()
		if err != nil {
			log.Printf("recv %s failed after %.1f MB: %v (%s)", name, float64(n)/1e6, err, statsLine(st))
			if once {
				os.Exit(1)
			}
			continue
		}
		el := time.Since(start)
		log.Printf("received %s: %.1f MB in %v = %.1f Mb/s (%s)",
			name, float64(n)/1e6, el.Round(time.Millisecond), float64(n*8)/el.Seconds()/1e6, statsLine(st))
		if once {
			return
		}
	}
}

// runServe registers root (one file, or every regular file directly in a
// directory, by base name) with a udtfs server and serves it — from a
// listener, or one rendezvous crossing per connection when -rendezvous is
// set.
func runServe(root, addr, rdvAddr, to string, once bool, psk string, aead bool) {
	cfg := &udt.Config{PSK: []byte(psk), AEAD: aead}
	srv := udtfs.NewServer(udtfs.ServerConfig{})
	fi, err := os.Stat(root)
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	if fi.IsDir() {
		ents, err := os.ReadDir(root)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range ents {
			if e.Type().IsRegular() {
				srv.Register(e.Name(), filepath.Join(root, e.Name()))
				count++
			}
		}
	} else {
		srv.Register(filepath.Base(root), root)
		count++
	}
	if count == 0 {
		log.Fatalf("serve %s: no regular files to register", root)
	}
	if rdvAddr != "" {
		if to == "" {
			log.Fatal("-serve with -rendezvous needs -to (the peer's address)")
		}
		// No listener: answer one crossing per served connection. The fetch
		// side re-crosses on every resume, so serve in a loop unless -once.
		for {
			c, err := udt.RendezvousUDP(rdvAddr, to, cfg)
			if err != nil {
				log.Fatalf("rendezvous: %v", err)
			}
			log.Printf("udtfile serving %d file(s) to %s over rendezvous", count, c.RemoteAddr())
			srv.ServeConn(c) //nolint:errcheck // connection death is how serving ends
			if once {
				return
			}
		}
	}
	ln, err := udt.Listen(addr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("udtfile serving %d file(s) on %s", count, ln.Addr())
	log.Fatal(srv.Serve(ln))
}

// runFetch retrieves one named file into dir using the .part convention:
// bytes land in <name>.part and the file is renamed only when complete, so
// an interrupted fetch leaves a resumable partial, never a corrupt final.
func runFetch(name, to, rdvAddr, dir string, resume bool, offset, limit int64, psk string, aead bool) {
	cfg := &udt.Config{PSK: []byte(psk), AEAD: aead}
	dial := func() (*udt.Conn, error) { return udt.Dial(to, cfg) }
	if rdvAddr != "" {
		dial = func() (*udt.Conn, error) { return udt.RendezvousUDP(rdvAddr, to, cfg) }
	}
	f := &udtfs.Fetcher{Dial: dial}
	final := filepath.Join(dir, filepath.Base(name))
	part := final + ".part"
	var res udtfs.FetchResult
	var err error
	start := time.Now()
	switch {
	case offset > 0 || limit > 0:
		if resume {
			log.Fatal("-resume applies to whole-file fetches; it cannot combine with -offset/-limit")
		}
		out, cerr := os.Create(part)
		if cerr != nil {
			log.Fatal(cerr)
		}
		res, err = f.FetchRange(name, out, offset, limit)
		out.Close() //nolint:errcheck
	case resume:
		// One O_RDWR handle plays both roles: ResumeFetch reads it to EOF
		// re-hashing the stored prefix, then the remainder appends at the
		// resulting file offset.
		pf, oerr := os.OpenFile(part, os.O_RDWR|os.O_CREATE, 0o644)
		if oerr != nil {
			log.Fatal(oerr)
		}
		res, err = f.ResumeFetch(name, pf, pf)
		pf.Close() //nolint:errcheck
	default:
		out, cerr := os.Create(part)
		if cerr != nil {
			log.Fatal(cerr)
		}
		res, err = f.Fetch(name, out)
		out.Close() //nolint:errcheck
	}
	if err != nil {
		log.Fatalf("fetch %s failed after %.1f MB (kept %s for -resume): %v",
			name, float64(res.Bytes)/1e6, part, err)
	}
	if err := os.Rename(part, final); err != nil {
		log.Fatal(err)
	}
	el := time.Since(start)
	log.Printf("fetched %s: %.1f MB of %.1f MB in %v = %.1f Mb/s, %d resume(s), sha256 %x",
		final, float64(res.Bytes)/1e6, float64(res.Size)/1e6, el.Round(time.Millisecond),
		float64(res.Bytes*8)/el.Seconds()/1e6, res.Resumes, res.SHA256)
}

func runSend(path, to, ccName, psk string, aead bool) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	cc, err := udt.CongestionControl(ccName)
	if err != nil {
		log.Fatal(err)
	}
	c, err := udt.Dial(to, &udt.Config{CC: cc, PSK: []byte(psk), AEAD: aead})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	// Regular files take the zero-copy path: SendFileZC maps the file and
	// sends packets straight out of the page cache, falling back to the
	// copying loop by itself when the platform or file rules mapping out.
	var n int64
	if fi.Mode().IsRegular() {
		n, err = c.SendFileZC(f)
	} else {
		n, err = c.SendFile(f, fi.Size())
	}
	if err != nil {
		log.Fatalf("send %s failed after %.1f MB: %v (%s)", path, float64(n)/1e6, err, statsLine(c.Stats()))
	}
	if n != fi.Size() {
		log.Fatalf("send %s: short transfer, %d of %d bytes (%s)", path, n, fi.Size(), statsLine(c.Stats()))
	}
	for !c.Drained() {
		time.Sleep(10 * time.Millisecond)
	}
	el := time.Since(start)
	st := c.Stats()
	log.Printf("sent %s: %.1f MB in %v = %.1f Mb/s (%s)",
		path, float64(n)/1e6, el.Round(time.Millisecond),
		float64(n*8)/el.Seconds()/1e6, statsLine(st))
}
