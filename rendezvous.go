package udt

import (
	"errors"
	"fmt"
	"net"
	"strconv"

	"udt/internal/mux"
	"udt/internal/packet"
	"udt/internal/secure"
	"udt/internal/seqno"
)

// Rendezvous connects to a peer that is simultaneously rendezvousing with
// us: both sides call Rendezvous at roughly the same time, each sends the
// other a handshake request, and the crossing itself establishes the
// connection — no listener on either side. This is the UDT rendezvous
// connect mode, the standard way to traverse NATs whose bindings only
// admit traffic to addresses already sent to.
//
// Rendezvous takes ownership of pc — the transport is closed when the
// returned Conn closes, and on failure — and works over any PacketConn
// fabric: a UDP socket punched through a NAT, a fabric.Pipe in tests, a
// fabric.Framed overlay stream. cfg may be nil for defaults; with a PSK
// both requests and the crossing response are authenticated exactly like
// an ordinary secure dial.
func Rendezvous(pc PacketConn, raddr net.Addr, cfg *Config) (*Conn, error) {
	m, err := NewMux(pc, cfg)
	if err != nil {
		return nil, err
	}
	c, err := m.Rendezvous(raddr)
	if err != nil {
		m.Close() //nolint:errcheck
		return nil, err
	}
	c.mu.Lock()
	c.ownMux = m
	c.mu.Unlock()
	return c, nil
}

// RendezvousUDP is Rendezvous over a fresh UDP socket bound to laddr
// ("host:port"; the port both peers exchanged out of band) connecting to
// raddr. cfg may be nil for defaults.
func RendezvousUDP(laddr, raddr string, cfg *Config) (*Conn, error) {
	la, err := net.ResolveUDPAddr("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("udt: rendezvous %s: %w", laddr, err)
	}
	ra, err := net.ResolveUDPAddr("udp", raddr)
	if err != nil {
		return nil, fmt.Errorf("udt: rendezvous %s: %w", raddr, err)
	}
	sock, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("udt: rendezvous %s: %w", laddr, err)
	}
	return Rendezvous(sock, ra, cfg)
}

// Rendezvous opens a UDT connection to a peer that is concurrently
// rendezvousing with this Mux's address. Both sides send handshake
// requests carrying the rendezvous option; when the requests cross, a
// deterministic tie-break on (cookie, rendezvous nonce, connection ID)
// picks exactly one side to answer, and both sides surface exactly one
// established connection. A rendezvous request reaching a Mux with a
// plain listener (no rendezvous pending for that peer) is served as an
// ordinary accept, so a rendezvous dialer interoperates with listeners.
//
// At most one rendezvous per remote address may be in flight on a Mux;
// ordinary dials and a listener coexist freely alongside it.
func (m *Mux) Rendezvous(raddr net.Addr) (*Conn, error) {
	if raddr == nil {
		return nil, errors.New("udt: rendezvous: nil remote address")
	}
	cfg := m.cfg
	// Both sides speak the extended (socket-ID-prefixed) wire format;
	// leave room for the destination prefix, as in Mux.Dial.
	cfg.MSS -= mux.DestPrefix
	if cfg.MSS < 96 {
		cfg.MSS = 96
	}

	flow := &muxFlow{m: m, raddr: cloneAddr(raddr)}
	id := m.core.AllocID(m.randInt31, flow)
	flow.id = id
	isn := m.randInt31() & seqno.Max
	connID := m.randInt31()
	rdvNonce := uint64(uint32(m.randInt31()))<<32 | uint64(uint32(m.randInt31()))
	shard := m.pool.shard()
	rdvKey := flow.raddr.String()
	pd := &pendingDial{
		connID: connID, raddr: flow.raddr, resp: make(chan hsResp, 1),
		m: m, shard: shard,
		deadline: shard.clock.Now() + cfg.HandshakeTimeout.Microseconds(),
		dead:     make(chan error, 1),
		rdvKey:   rdvKey, rdvNonce: rdvNonce, isn: isn, flow: flow,
		estab: make(chan *Conn, 1),
	}

	// The read loop's tie-break reads pd.req the moment pd is visible in
	// the rendezvous table (the peer's crossing request can land before we
	// send ours), so the request must be fully built — and signed — before
	// pd is published.
	req := packet.Handshake{
		Version:    packet.Version,
		InitSeq:    isn,
		MSS:        int32(cfg.MSS),
		FlowWindow: int32(cfg.MaxFlowWindow),
		ReqType:    packet.HSRequest,
		ConnID:     connID,
		SockID:     id,
		RdvFlags:   packet.RdvDial,
		RdvNonce:   rdvNonce,
	}
	if m.keys != nil {
		req.SecFlags = cfg.secFlags()
		fillNonce(&req.Nonce, m.randInt31)
		if err := signHandshakeHS(m.keys, &req, nil); err != nil {
			m.core.Unregister(id)
			return nil, err
		}
	}
	pd.req = req
	buf := make([]byte, hsBufSize)
	n, err := packet.EncodeHandshake(buf, &req, 0)
	if err != nil {
		m.core.Unregister(id)
		return nil, err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.core.Unregister(id)
		return nil, ErrClosed
	}
	if m.rdv[rdvKey] != nil {
		m.mu.Unlock()
		m.core.Unregister(id)
		return nil, fmt.Errorf("udt: a rendezvous with %s is already in progress", rdvKey)
	}
	m.pending[id] = pd
	m.rdv[rdvKey] = pd
	m.mu.Unlock()

	// claim removes the dial from the rendezvous table, deciding who owns
	// its fate: this goroutine, or a crossing the read loop accepted. A
	// false return means the accept won — the established connection is in
	// (or is guaranteed to arrive in) pd.estab.
	claim := func() bool {
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.rdv[rdvKey] == pd {
			delete(m.rdv, rdvKey)
			return true
		}
		return false
	}
	fail := func(err error) (*Conn, error) {
		if !claim() {
			return <-pd.estab, nil
		}
		m.mu.Lock()
		delete(m.pending, id)
		m.mu.Unlock()
		m.core.Unregister(id)
		return nil, err
	}

	// Send the request and park on the shard wheel's 250 ms retransmission
	// cadence, exactly like Mux.Dial. Establishment arrives one of two
	// ways: the peer's request crosses ours and loses the tie-break — the
	// read loop answers it and delivers the connection through pd.estab —
	// or the peer (a crossing winner, or a plain listener) answers our
	// request and the response routes through pd.resp.
	if _, err := m.sock.WriteTo(buf[:n], raddr); err != nil {
		return fail(fmt.Errorf("udt: handshake: %w", err))
	}
	pd.buf = buf[:n]
	shard.attach(pd)
	shard.sleep(pd, shard.clock.Now()+hsRetryUS)
	var r hsResp
	var won *Conn
wait:
	for {
		select {
		case won = <-pd.estab:
			break wait
		case r = <-pd.resp:
		case err := <-pd.dead:
			shard.detach(pd)
			return fail(err)
		case <-m.done:
			shard.detach(pd)
			return fail(ErrClosed)
		}
		if m.keys == nil {
			break
		}
		hs := r.hs
		if hs.ReqType == packet.HSCookie {
			// A plain listener's stateless challenge (rendezvous→listener
			// interop): restart the request with the cookie echoed.
			req.Cookie = hs.Cookie
			if err := signHandshakeHS(m.keys, &req, nil); err != nil {
				shard.detach(pd)
				return fail(err)
			}
			n, err := packet.EncodeHandshake(buf, &req, 0)
			if err != nil {
				shard.detach(pd)
				return fail(err)
			}
			shard.detach(pd)
			pd.buf = buf[:n]
			if _, err := m.sock.WriteTo(pd.buf, raddr); err != nil {
				return fail(fmt.Errorf("udt: handshake: %w", err))
			}
			shard.attach(pd)
			shard.sleep(pd, shard.clock.Now()+hsRetryUS)
			continue
		}
		if !hs.Sec() {
			if m.cfg.AllowUnauth {
				break
			}
			shard.detach(pd)
			return fail(errAuthRequired)
		}
		if !verifyHandshakeHS(m.keys, &hs, req.Nonce[:]) {
			m.authRejects.Add(1)
			continue // forged or corrupt; keep waiting for the real one
		}
		break
	}
	shard.detach(pd)
	if won == nil && !claim() {
		// The read loop accepted a crossing concurrently with this
		// response; the accepted connection is the one both sides already
		// committed to, so the stray response is dropped.
		won = <-pd.estab
	}
	m.mu.Lock()
	delete(m.pending, id)
	m.mu.Unlock()
	if won != nil {
		return won, nil
	}

	hs := r.hs
	// Negotiate downwards, as in Mux.Dial.
	if int(hs.MSS) < cfg.MSS && hs.MSS >= 96 {
		cfg.MSS = int(hs.MSS)
	}
	if int(hs.FlowWindow) < cfg.MaxFlowWindow && hs.FlowWindow > 0 {
		cfg.MaxFlowWindow = int(hs.FlowWindow)
	}
	flow.peerID = hs.SockID
	if flow.peerID == 0 {
		// Old peer: its datagrams arrive bare; route them by address.
		flow.addrKey = r.fromKey
		m.core.RegisterAddr(flow.addrKey, flow)
	}
	cfg.sockID = id
	var sec *secure.Session
	if m.keys != nil && hs.Sec() {
		sec = secure.NewSession(m.keys, req.Nonce[:], hs.Nonce[:], true, isn, hs.InitSeq,
			grantAEAD(req.SecFlags, hs.SecFlags))
	}
	conn := newConn(cfg, flow, func() { m.release(flow) }, m.sock.LocalAddr(), flow.raddr, isn, hs.InitSeq, m.pool.shard(), sec)
	conn.mu.Lock()
	conn.udpRcvBuf, conn.udpSndBuf = m.udpRcvBuf, m.udpSndBuf
	conn.mu.Unlock()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		conn.Close() //nolint:errcheck
		return nil, ErrClosed
	}
	m.conns[conn] = struct{}{}
	m.mu.Unlock()
	flow.conn.Store(conn)
	return conn, nil
}

// rdvWins decides the crossing tie-break: whether our pending request
// beats the peer's. The comparison is on (cookie, rendezvous nonce,
// connection ID) as unsigned tuples — both sides compute it on the same
// two requests and reach opposite conclusions, so exactly one side
// answers. An exact tie (astronomically unlikely with independent
// randomness) leaves both sides quiet until their handshake deadlines.
func rdvWins(ours, theirs *packet.Handshake) bool {
	if ours.Cookie != theirs.Cookie {
		return ours.Cookie > theirs.Cookie
	}
	if ours.RdvNonce != theirs.RdvNonce {
		return ours.RdvNonce > theirs.RdvNonce
	}
	return uint32(ours.ConnID) > uint32(theirs.ConnID)
}

// rendezvousCross handles a handshake request carrying the rendezvous
// option, on the read-loop goroutine. Unlike answerRequest there is no
// stateless-cookie challenge: both sides have already committed local
// state by calling Rendezvous, and the reply targets an address we are
// ourselves actively transmitting to, so there is no amplification to
// prevent — but with a PSK the request authenticator must still verify.
func (m *Mux) rendezvousCross(hs packet.Handshake, from net.Addr, raw []byte) {
	key := from.String() + "|" + strconv.FormatInt(int64(hs.ConnID), 10) +
		"|" + strconv.FormatInt(int64(hs.SockID), 10)
	m.mu.Lock()
	closed := m.closed
	e := m.accepted[key]
	pd := m.rdv[from.String()]
	m.mu.Unlock()
	if closed {
		return
	}
	aead := false
	if m.keys != nil {
		if !hs.Sec() {
			if !m.cfg.AllowUnauth {
				m.authRejects.Add(1)
				return
			}
		} else if !verifyHandshakeRaw(m.keys, raw, nil) {
			m.authRejects.Add(1)
			return
		} else {
			aead = grantAEAD(m.cfg.secFlags(), hs.SecFlags)
		}
	}
	if e != nil {
		// Duplicate of a crossing we already answered (our response was
		// lost): re-answer bit-identically, as answerRequest does.
		out := make([]byte, hsBufSize)
		if n, err := packet.EncodeHandshake(out, &e.resp, 0); err == nil {
			m.sock.WriteTo(out[:n], from) //nolint:errcheck
		}
		return
	}
	if pd == nil {
		// No rendezvous pending with this peer: a listener, if any, serves
		// the request like an ordinary dial (answerRequest re-runs the full
		// gate, cookie challenge included).
		m.answerRequest(hs, from, raw)
		return
	}
	if !rdvWins(&pd.req, &hs) {
		// We lost the tie-break: stay quiet and keep retransmitting our own
		// request; the winner answers it.
		return
	}
	m.rdvAccept(pd, hs, from, key, aead)
}

// rdvAccept answers the losing side of a crossing: build the connection
// on the pending dial's already-allocated flow, pin the response for
// duplicate requests, and hand the connection to the goroutine parked in
// Mux.Rendezvous. Runs on the read-loop goroutine.
func (m *Mux) rdvAccept(pd *pendingDial, hs packet.Handshake, from net.Addr, key string, aead bool) {
	m.mu.Lock()
	if m.closed || m.rdv[pd.rdvKey] != pd {
		// The dial resolved (response path, timeout, or teardown) between
		// the crossing lookup and now; retransmits of an accepted crossing
		// are re-answered from the accepted table instead.
		m.mu.Unlock()
		return
	}
	cfg := m.cfg
	cfg.MSS -= mux.DestPrefix
	if cfg.MSS < 96 {
		cfg.MSS = 96
	}
	if int(hs.MSS) < cfg.MSS && hs.MSS >= 96 {
		cfg.MSS = int(hs.MSS)
	}
	if int(hs.FlowWindow) < cfg.MaxFlowWindow && hs.FlowWindow > 0 {
		cfg.MaxFlowWindow = int(hs.FlowWindow)
	}
	flow := pd.flow
	flow.peerID = hs.SockID
	flow.acceptKey = key
	cfg.sockID = flow.id
	// The response reuses the ISN our retransmitting request advertises,
	// so the peer computes the same sequence state from either packet.
	resp := packet.Handshake{
		Version:    packet.Version,
		InitSeq:    pd.isn,
		MSS:        int32(cfg.MSS),
		FlowWindow: int32(cfg.MaxFlowWindow),
		ReqType:    packet.HSResponse,
		ConnID:     hs.ConnID,
		SockID:     flow.id,
		PeerSockID: hs.SockID,
		RdvFlags:   packet.RdvDial,
		RdvNonce:   pd.rdvNonce,
	}
	var sec *secure.Session
	if m.keys != nil && hs.Sec() {
		resp.SecFlags = secure.FlagAuth
		if aead {
			resp.SecFlags |= secure.FlagAEAD
		}
		fillNonce(&resp.Nonce, m.randInt31)
		if err := signHandshakeHS(m.keys, &resp, hs.Nonce[:]); err != nil {
			m.mu.Unlock()
			return
		}
		sec = secure.NewSession(m.keys, hs.Nonce[:], resp.Nonce[:], false, pd.isn, hs.InitSeq, aead)
	}
	conn := newConn(cfg, flow, func() { m.release(flow) }, m.sock.LocalAddr(), flow.raddr, pd.isn, hs.InitSeq, m.pool.shard(), sec)
	conn.mu.Lock()
	conn.udpRcvBuf, conn.udpSndBuf = m.udpRcvBuf, m.udpSndBuf
	conn.mu.Unlock()
	m.accepted[key] = &acceptEntry{resp: resp, conn: conn}
	m.conns[conn] = struct{}{}
	flow.conn.Store(conn)
	delete(m.rdv, pd.rdvKey)   // claim: the crossing resolved this dial
	delete(m.pending, flow.id) // stray responses can no longer race in
	m.mu.Unlock()

	out := make([]byte, hsBufSize)
	if n, err := packet.EncodeHandshake(out, &resp, 0); err == nil {
		m.sock.WriteTo(out[:n], from) //nolint:errcheck // the peer's retries are re-answered above
	}
	pd.estab <- conn // buffered; sent exactly once, guarded by the claim
}
