package udt

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"udt/internal/core"
	"udt/internal/packet"
	"udt/internal/secure"
	"udt/internal/seqno"
	"udt/internal/timing"
	"udt/internal/trace"
)

// Connection errors.
var (
	ErrClosed     = errors.New("udt: connection closed")
	ErrPeerDead   = errors.New("udt: peer stopped responding")
	ErrTimeout    = errors.New("udt: handshake timeout")
	errBufferFull = errors.New("udt: receive buffer overrun") // internal

	// errAuthRequired fails a secure dial whose peer answered with the
	// clear protocol while AllowUnauth is off.
	errAuthRequired = errors.New("udt: handshake: peer did not authenticate (set Config.AllowUnauth to permit clear fallback)")
)

// sockWriter abstracts the datagram transport: a dialed Conn owns its
// socket; a multiplexed Conn shares its Mux's.
//
// headroom is the number of bytes the transport needs reserved at the
// front of every datagram buffer, ahead of the encoded UDT packet — a
// multiplexed flow stamps the peer's destination socket ID there. The
// connection reserves it when sizing and encoding, and passes the whole
// buffer (headroom included) to writeTo.
type sockWriter interface {
	writeTo(b []byte, addr net.Addr) (int, error)
	headroom() int
}

// batchWriter is an optional sockWriter upgrade: transports that can
// submit many datagrams to the kernel in one syscall (sendmmsg) implement
// it. writeBatch sends every buffer or returns the first error.
type batchWriter interface {
	writeBatch(bufs [][]byte, addr net.Addr) error
}

// Conn is a UDT connection: a reliable duplex byte stream over UDP.
// It implements net.Conn semantics for Read/Write/Close (deadlines are not
// supported; use Close from another goroutine to abort).
type Conn struct {
	cfg    Config
	raddr  net.Addr
	laddr  net.Addr
	sock   sockWriter
	bw     batchWriter // non-nil when sock supports batched sends
	sw     segWriter   // non-nil when sock supports GSO segment trains
	hr     int         // sock.headroom(), cached: bytes reserved per datagram
	burst  int         // data packets one sender-lock acquisition may claim
	closer func()      // tears down socket/listener registration

	// shard is the scheduler seat: the connection is a passive poolTask
	// run by its shard's worker, parked on the shard's timing wheel
	// between services. clock is the shard's clock — every deadline the
	// connection reports must be on the wheel's timeline. ownPool is
	// non-nil for dialed connections with a private socket, which own a
	// degenerate one-shard pool torn down on Close.
	shard   *poolShard
	schedSt schedState
	ownPool *connPool
	ownMux  *Mux // non-nil for rendezvous connections with a private socket; guarded by mu

	clock  *timing.SysClock
	ledger *timing.Ledger

	// sec is the connection's Secure UDT sealing state, nil on a clear
	// connection. Its send-side methods run under mu (drainOutboxLocked,
	// claimBurstLocked); its receive-side methods run on the single
	// datagram-delivery goroutine. aead caches sec.AEAD() for the per-
	// packet checks.
	sec  *secure.Session
	aead bool

	mu       sync.Mutex
	core     *core.Conn
	perfRing *trace.Ring // telemetry history behind Perf; nil when disabled
	snd      *core.SndBuffer
	rcv      *core.RcvBuffer
	rdReady  *sync.Cond // receive buffer has data / state change
	wrReady  *sync.Cond // send buffer has room / state change
	closed   chan struct{}
	err      error
	overlap  bool    // a reader's buffer is attached to the receive buffer
	sendCost float64 // EWMA of µs per UDP send (§4.4)

	// rcvBatch is the receive path's control-send batch. handleDatagram is
	// only ever invoked from one goroutine (the dialed socket's reader or
	// the listener's demultiplexer), so one reusable batch suffices; the
	// sender path (runTask) and Close keep their own.
	rcvBatch sendBatch

	// Sender-service working set, touched only by runTask (the shard
	// worker serializes services, so no lock is needed beyond mu inside
	// runTask itself). scratch/lens/burstBufs are the data-burst encode
	// arena, allocated lazily on the first service that has data to send —
	// a receive-only or idle flow never pays for them (at 100k flows the
	// difference is gigabytes).
	sndBatch  sendBatch
	scratch   []byte
	lens      []int
	burstBufs [][]byte

	bytesSent int64
	bytesRecv int64

	// Send-path offload counters. They are atomics, not mu-guarded: the
	// sender loop updates them outside the lock and Stats snapshots them
	// from any goroutine.
	gsoSends     atomic.Int64
	gsoSegments  atomic.Int64
	sendSyscalls atomic.Int64

	// mmaps are file mappings adopted by SendFileZC whose teardown had to
	// be deferred (the connection failed while packets could still alias
	// the mapped region); Close unmaps them once the sender loop is done.
	mmaps [][]byte

	// udpRcvBuf and udpSndBuf are the kernel socket buffer sizes the OS
	// actually granted (0 when the transport is not a UDP socket).
	udpRcvBuf, udpSndBuf int
}

// newConn wires an established connection (post-handshake) onto a
// scheduler shard. The connection is passive: its sender state machine
// runs only when the shard's worker services it — there is no goroutine
// or runtime timer per connection.
func newConn(cfg Config, sock sockWriter, closer func(), laddr, raddr net.Addr, isn, peerISN int32, shard *poolShard, sec *secure.Session) *Conn {
	c := &Conn{
		cfg:    cfg,
		raddr:  raddr,
		laddr:  laddr,
		sock:   sock,
		closer: closer,
		shard:  shard,
		clock:  shard.clock,
		ledger: cfg.Ledger,
		closed: make(chan struct{}),
		sec:    sec,
	}
	c.aead = sec != nil && sec.AEAD()
	c.hr = sock.headroom()
	c.bw, _ = sock.(batchWriter)
	c.sw, _ = sock.(segWriter)
	c.burst = burstSize(cfg.BatchSize, c.hr+cfg.MSS)
	c.core = core.NewConn(cfg.coreConfig(isn), peerISN)
	payload := cfg.MSS - packet.DataHeaderSize
	if c.aead {
		// The Poly1305 tag rides inside the packet's payload budget, so a
		// sealed full packet is still exactly MSS on the wire (GSO trains
		// stay uniform).
		payload -= secure.Overhead
	}
	c.snd = core.NewSndBuffer(cfg.SndBuf, payload, isn)
	c.rcv = core.NewRcvBuffer(cfg.RcvBuf, payload, peerISN)
	c.core.AvailBuf = c.rcv.Free
	var ringSink trace.Sink
	if cfg.PerfHistory > 0 {
		c.perfRing = trace.NewRing(cfg.PerfHistory)
		ringSink = c.perfRing
	}
	if sink := trace.Multi(ringSink, cfg.Trace); sink != nil {
		label := "udt"
		if name := c.core.Controller().Name(); name != "native" {
			label = "udt-" + name
		}
		c.core.SetPerfSink(sink, cfg.PerfEverySYN, cfg.sockID, label, trace.RoleFlow)
	}
	c.rdReady = sync.NewCond(&c.mu)
	c.wrReady = sync.NewCond(&c.mu)
	c.core.Start(c.clock.Now())
	shard.attach(c)
	shard.wake(c) // first service arms the protocol timers on the wheel
	return c
}

// LocalAddr returns the local UDP address.
func (c *Conn) LocalAddr() net.Addr { return c.laddr }

// RemoteAddr returns the peer's UDP address.
func (c *Conn) RemoteAddr() net.Addr { return c.raddr }

// kickSender asks the shard to service this connection: new data to send,
// freed receive buffer, arrived control packet — anything that may change
// what the state machine wants to do next. Safe under c.mu (the shard
// lock nests inside connection locks). Nil-safe for test harnesses that
// drive the send path synchronously without a scheduler.
func (c *Conn) kickSender() {
	if c.shard != nil {
		c.shard.wake(c)
	}
}

// fail records a fatal error and wakes everyone. Callers hold mu.
func (c *Conn) failLocked(err error) {
	if c.err == nil {
		c.err = err
	}
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	c.rdReady.Broadcast()
	c.wrReady.Broadcast()
	c.kickSender()
}

// Close shuts the connection down, notifying the peer.
func (c *Conn) Close() error {
	c.mu.Lock()
	alreadyClosed := c.core.Closed()
	c.core.Close()
	var batch sendBatch
	c.drainOutboxLocked(&batch)
	c.failLocked(ErrClosed)
	c.mu.Unlock()
	for _, b := range batch.msgs {
		c.sock.writeTo(b, c.raddr) //nolint:errcheck // best-effort shutdown notice
	}
	if !alreadyClosed && c.closer != nil {
		c.closer()
	}
	// Leave the scheduler: after detach the shard guarantees no service
	// run is in flight or will ever start. A dialed connection also owns
	// its one-shard pool; stop that worker too.
	if c.shard != nil {
		c.shard.detach(c)
	}
	if c.ownPool != nil {
		c.ownPool.close()
	}
	// With sender service finished, nothing can reference a mapped file
	// region anymore; release mappings whose teardown SendFileZC deferred.
	c.mu.Lock()
	mms := c.mmaps
	c.mmaps = nil
	om := c.ownMux
	c.ownMux = nil
	c.mu.Unlock()
	if om != nil {
		// A rendezvous connection owns its whole Mux (udt.Rendezvous built
		// one just for it). The closer above already released this flow from
		// the mux tables, so Close here only reaps the socket and read loop.
		om.Close() //nolint:errcheck
	}
	for _, m := range mms {
		munmapFile(m) //nolint:errcheck // best-effort address-space release
	}
	return nil
}

// Write queues p on the send buffer, blocking while it is full. It returns
// len(p) unless the connection dies.
func (c *Conn) Write(p []byte) (int, error) {
	written := 0
	c.mu.Lock()
	defer c.mu.Unlock()
	for written < len(p) {
		if c.err != nil && c.core.Closed() {
			return written, c.err
		}
		n := c.snd.Write(p[written:])
		if n > 0 {
			written += n
			c.kickSender()
			continue
		}
		c.wrReady.Wait()
	}
	return written, nil
}

// writeZC queues p on the send buffer without copying: packet slots alias
// sub-slices of p, which therefore must stay valid and unmodified until
// every queued byte has been acknowledged (SendFileZC waits for exactly
// that before releasing its file mapping). Like Write it blocks while the
// buffer is full and returns len(p) unless the connection dies.
func (c *Conn) writeZC(p []byte) (int, error) {
	written := 0
	c.mu.Lock()
	defer c.mu.Unlock()
	for written < len(p) {
		if c.err != nil && c.core.Closed() {
			return written, c.err
		}
		n := c.snd.WriteZC(p[written:])
		if n > 0 {
			written += n
			c.kickSender()
			continue
		}
		c.wrReady.Wait()
	}
	return written, nil
}

// waitAcked blocks until every queued byte has been acknowledged by the
// peer, or the connection fails. A non-nil return means the drain did
// not complete: packet slots may still alias caller memory somewhere in
// the teardown path.
func (c *Conn) waitAcked() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.err == nil && c.snd.Pending() > 0 {
		c.wrReady.Wait()
	}
	return c.err
}

// adoptMapping hands a file mapping to the connection for teardown at
// Close, used when SendFileZC cannot prove the sender loop is done with
// the mapped region.
func (c *Conn) adoptMapping(m []byte) {
	c.mu.Lock()
	c.mmaps = append(c.mmaps, m)
	c.mu.Unlock()
}

// Read copies received stream bytes into p, blocking until at least one
// byte is available. When the buffer is empty, p itself is attached to the
// protocol buffer so arriving packets land in it directly — the overlapped
// IO of §4.3.
func (c *Conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if n := c.rcv.Available(); n > 0 {
			got := c.rcv.Read(p)
			// Freed buffer space reopens the advertised window; service the
			// engine so the reopening ACK goes out now rather than at the
			// next scheduled wake — a parked idle flow sleeps all the way to
			// its EXP deadline, far too late to unstall the peer.
			c.kickSender()
			return got, nil
		}
		if c.err != nil || c.core.Closed() {
			err := c.err
			if err == nil || err == ErrClosed {
				err = io.EOF
			}
			return 0, err
		}
		attached := !c.overlap && c.rcv.AttachUser(p)
		if attached {
			c.overlap = true
		}
		c.rdReady.Wait()
		if attached {
			c.overlap = false
			direct := c.rcv.DetachUser()
			if direct > 0 {
				n := direct
				if rest := c.rcv.Read(p[direct:]); rest > 0 {
					n += rest
				}
				c.kickSender() // window may have reopened; see above
				return n, nil
			}
		}
	}
}

// muxCounterSource lets multiplexed flows surface their shared socket's
// demultiplexer drop counters in Stats.
type muxCounterSource interface {
	muxCounters() (unknownDest, shortDatagram uint64)
}

// secCounterSource lets multiplexed flows surface their shared socket's
// pre-connection authentication counters in Stats.
type secCounterSource interface {
	secCounters() (authRejects, cookieSent uint64)
}

// Stats returns a snapshot of the connection's protocol counters.
func (c *Conn) Stats() Stats {
	c.mu.Lock()
	ctrl := c.core.Controller()
	var rate float64
	if p := ctrl.Period(); p > 0 {
		rate = float64(c.cfg.MSS) * 8 / p // bits/µs ≡ Mb/s
	}
	s := Stats{
		Stats:          c.core.Stats,
		RTT:            time.Duration(c.core.RTT()) * time.Microsecond,
		SendRateMbps:   rate,
		BytesSent:      c.bytesSent,
		BytesRecv:      c.bytesRecv,
		UDPRcvBufBytes: c.udpRcvBuf,
		UDPSndBufBytes: c.udpSndBuf,
		CCName:         ctrl.Name(),
		CCPeriodUs:     ctrl.Period(),
		CCWindowPkts:   ctrl.Window(),
	}
	c.mu.Unlock()
	if mc, ok := c.sock.(muxCounterSource); ok {
		s.MuxUnknownDest, s.MuxShortDatagram = mc.muxCounters()
	}
	if c.sec != nil {
		af, rp := c.sec.Drops()
		s.AuthRejects += af
		s.ReplayDrops = rp
	}
	if sc, ok := c.sock.(secCounterSource); ok {
		ar, cs := sc.secCounters()
		s.AuthRejects += ar
		s.CookieSent = cs
	}
	if gc, ok := c.sock.(groCounterSource); ok {
		s.GROReads, s.GROSegments = gc.groCounters()
	}
	s.GSOEnabled = c.sw != nil && c.sw.offloadActive()
	s.GSOSends = c.gsoSends.Load()
	s.GSOSegments = c.gsoSegments.Load()
	s.SendSyscalls = c.sendSyscalls.Load()
	s.Goroutines = noteGoroutines()
	s.PeakGoroutines = int(peakGoroutines.Load())
	return s
}

// Perf returns the connection's recent telemetry history, oldest to newest:
// one PerfRecord per PerfEverySYN SYN intervals, up to the PerfHistory most
// recent. It returns nil when telemetry is disabled (PerfHistory < 0). The
// returned slice is a snapshot; feed it to trace.WriteCSV/WriteJSONL or
// serve it with trace.Handler.
func (c *Conn) Perf() []PerfRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.perfRing == nil {
		return nil
	}
	return c.perfRing.Snapshot()
}

// LastPerf returns the most recent telemetry sample, if any — the cheap way
// to poll a live connection without copying the whole history.
func (c *Conn) LastPerf() (PerfRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.perfRing == nil {
		return PerfRecord{}, false
	}
	return c.perfRing.Last()
}

// sendBatch accumulates encoded control datagrams in a reusable arena.
// Once the arena and message list have grown to their working-set size, a
// drain-and-send pass allocates nothing.
type sendBatch struct {
	arena []byte
	msgs  [][]byte // aliases into arena, one per datagram
}

func (b *sendBatch) reset() {
	b.arena = b.arena[:0]
	b.msgs = b.msgs[:0]
}

// grab reserves n bytes of arena. If the arena must grow, messages already
// recorded keep aliasing the old block — they remain valid until reset.
func (b *sendBatch) grab(n int) []byte {
	off := len(b.arena)
	if off+n > cap(b.arena) {
		grown := make([]byte, off, 2*(off+n)+64)
		copy(grown, b.arena)
		b.arena = grown
	}
	b.arena = b.arena[:off+n]
	return b.arena[off : off+n]
}

// drainOutboxLocked encodes all queued control emissions into b, each
// sized exactly per emission kind (a bare control header for
// ACK2/keep-alive/shutdown, header+24 for a full ACK, the compressed
// loss-list length for a NAK) plus the transport's headroom, into which a
// multiplexed flow later stamps the destination socket ID. Callers hold
// mu; the batch is transmitted after unlock so the socket write never runs
// under the connection lock.
func (c *Conn) drainOutboxLocked(b *sendBatch) {
	now32 := int32(c.clock.Now())
	hr := c.hr
	for {
		o, ok := c.core.PopOut()
		if !ok {
			return
		}
		var size int
		switch o.Kind {
		case core.OutACK:
			size = packet.CtrlHeaderSize + packet.FullACKBody
		case core.OutNAK:
			size = packet.NAKSize(o.Losses)
		default: // ACK2, keep-alive, shutdown: bare control header
			size = packet.CtrlHeaderSize
		}
		if c.sec != nil {
			size += secure.CtrlOverhead
		}
		buf := b.grab(hr + size)
		var n int
		var err error
		switch o.Kind {
		case core.OutACK:
			n, err = packet.EncodeACK(buf[hr:], &o.ACK, now32)
		case core.OutNAK:
			n, err = packet.EncodeNAK(buf[hr:], o.Losses, now32)
		case core.OutACK2:
			n, err = packet.EncodeACK2(buf[hr:], o.AckID, now32)
		case core.OutKeepAlive:
			n, err = packet.EncodeSimple(buf[hr:], packet.TypeKeepAlive, now32)
		case core.OutShutdown:
			n, err = packet.EncodeSimple(buf[hr:], packet.TypeShutdown, now32)
		}
		if err == nil && n > 0 {
			end := hr + n
			if c.sec != nil {
				// Seal in place; the grab above reserved the trailer room.
				// The full-capacity reslice is load-bearing: buf's spare
				// capacity aliases the arena's free tail.
				end = hr + len(c.sec.SealCtrl(buf[hr:end:len(buf)]))
			}
			b.msgs = append(b.msgs, buf[:end])
		}
	}
}

// burstSize bounds the data burst one sender-lock acquisition may claim:
// the configured batch size (clamped in Config.fill), further capped so a
// full train of stride-sized datagrams fits one 64 KB GSO super-datagram
// and the kernel's per-send segment limit.
func burstSize(batch, stride int) int {
	if batch < 1 {
		batch = 1
	}
	if batch > maxGSOSegments {
		batch = maxGSOSegments
	}
	if m := maxUDPPayload / stride; batch > m {
		batch = m
	}
	if batch < 1 {
		batch = 1
	}
	return batch
}

// claimBurstLocked claims and encodes up to c.burst data packets into
// scratch (packet i at offset i*(headroom+MSS), encoded after the
// transport's headroom bytes, encoded length in lens[i]). The first
// packet follows §4.1's one-packet-per-iteration rule; further packets are
// claimed only while the pacing schedule is already due within the measured
// cost of one UDP send — at that point the syscall, not the pacer, is the
// bottleneck, and splitting the burst across lock round-trips would only
// add overhead. It returns the claim count, the next wakeup deadline and
// the last engine decision (meaningful when n == 0). Callers hold mu.
func (c *Conn) claimBurstLocked(now int64, scratch []byte, lens []int) (n int, wake int64, d core.SendDecision) {
	// NextWake, not NextTimer: a quiescent flow parks until its EXP
	// keep-alive deadline instead of every ACK/NAK/SYN period — the ~30×
	// wakeup reduction that lets one shard hold tens of thousands of idle
	// flows. Any event that ends quiescence (app write, arriving packet)
	// kicks the connection, which re-derives an earlier wake here.
	wake = c.core.NextWake()
	stride := c.hr + c.cfg.MSS
	for n < c.burst {
		newAvail := seqno.Cmp(c.snd.NextWriteSeq(), seqno.Inc(c.core.CurSeq())) > 0
		seq, decision := c.core.NextSend(now, newAvail)
		d = decision
		if decision != core.SendData && decision != core.SendRetrans {
			switch decision {
			case core.WaitPacing:
				if t := c.core.NextSendTime(); t < wake {
					wake = t
				}
			case core.WaitFrozen:
				if t := c.core.Controller().FreezeEnd(); t < wake {
					wake = t
				}
			}
			return n, wake, decision
		}
		pl, ok := c.snd.Packet(seq)
		if !ok {
			// The engine committed seq but the buffer cannot serve it;
			// reconsider immediately.
			return n, now, decision
		}
		buf := scratch[n*stride+c.hr : (n+1)*stride]
		c.ledger.Time(timing.BucketPack, func() {
			m, _ := packet.EncodeData(buf, &packet.Data{Seq: seq, Timestamp: int32(now), Payload: pl})
			if c.aead {
				// Seal in the burst arena: payload encrypted in place, tag
				// appended. A full packet grows back to exactly MSS, so the
				// GSO all-MSS train check downstream is unaffected; a
				// retransmission re-seals byte-identically (the timestamp is
				// outside AEAD coverage), so the reused nonce carries the
				// same message.
				m = len(c.sec.SealData(buf[:m]))
			}
			lens[n] = m
		})
		n++
		if c.core.NextSendTime() > now+int64(c.sendCost) {
			return n, now, decision
		}
	}
	return n, now, d
}

// sched implements poolTask.
func (c *Conn) sched() *schedState { return &c.schedSt }

// runTask is one sender service — the body of §4.8's sender thread,
// re-cast as a scheduler callback: it services the protocol timers, emits
// control packets the engine queued, retransmits losses first, and paces
// data packets out per the engine's schedule. Each service drains the
// control outbox and claims a data burst under one lock acquisition, then
// transmits everything without the lock. The returned wake is when the
// engine next needs service (taskNever once the connection is finished);
// spin asks the shard for §4.5 busy-wait precision on short pacing gaps.
func (c *Conn) runTask() (int64, bool) {
	c.mu.Lock()
	if c.err != nil {
		// Failed or closed: Close drains the final shutdown notices.
		c.mu.Unlock()
		return taskNever, false
	}
	now := c.clock.Now()
	c.core.Advance(now)
	c.sndBatch.reset()
	c.drainOutboxLocked(&c.sndBatch)
	if c.core.Broken() {
		c.failLocked(ErrPeerDead)
		c.mu.Unlock()
		return taskNever, false
	}
	var nData int
	wake, decision := int64(0), core.SendData
	if c.scratch == nil && c.snd.Pending() > 0 {
		// First service with data queued: allocate the burst encode arena.
		// Loss/retransmission state implies earlier data services, so a
		// nil arena also proves there is nothing to retransmit — flows
		// that never send (or haven't yet) skip both the allocation and
		// the claim walk entirely.
		stride := c.hr + c.cfg.MSS
		c.scratch = make([]byte, c.burst*stride)
		c.lens = make([]int, c.burst)
		c.burstBufs = make([][]byte, 0, c.burst)
	}
	if c.scratch != nil {
		nData, wake, decision = c.claimBurstLocked(now, c.scratch, c.lens)
	} else {
		wake = c.core.NextWake()
	}
	closedNow := c.core.Closed() && c.snd.Pending() == 0
	c.mu.Unlock()

	if err := c.sendCtrlBatch(&c.sndBatch); err != nil {
		c.mu.Lock()
		c.failLocked(fmt.Errorf("udt: send: %w", err))
		c.mu.Unlock()
		return taskNever, false
	}
	if nData > 0 {
		t0 := time.Now()
		sent, err := c.sendDataBurst(c.scratch, c.lens, nData, &c.burstBufs)
		if err != nil {
			c.mu.Lock()
			c.failLocked(fmt.Errorf("udt: send: %w", err))
			c.mu.Unlock()
			return taskNever, false
		}
		cost := float64(time.Since(t0).Microseconds()) / float64(nData)
		c.mu.Lock()
		c.bytesSent += int64(sent)
		// §4.4: never let rate control tune the period below the real
		// per-packet send time.
		if c.sendCost == 0 {
			c.sendCost = cost
		} else {
			c.sendCost += (cost - c.sendCost) / 8
		}
		c.core.Controller().SetMinPeriod(c.sendCost)
		c.mu.Unlock()
		return 0, false // more work may be ready; re-queue immediately
	}
	if closedNow {
		return taskNever, false
	}
	// Parked until wake. Short pacing gaps ask for spin service so the
	// inter-packet period keeps microsecond accuracy when the shard can
	// afford it (§4.5).
	spin := decision == core.WaitPacing && wake > now && wake-now < spinDelayMax
	return wake, spin
}

// sendDataBurst transmits n encoded data packets from scratch (laid out
// by claimBurstLocked) in as few syscalls as the transport allows, in
// descending preference:
//
//  1. GSO: a run of full-size packets (every wire datagram but the last
//     exactly headroom+MSS) goes out as ONE sendmsg carrying a
//     UDP_SEGMENT train the kernel segments — the §4.1 per-packet cost
//     amortized over up to 44 packets;
//  2. sendmmsg: one syscall submitting the burst as separate datagrams;
//  3. portable: one writeTo per packet.
//
// burstBufs is the caller's reusable slice for assembling the datagram
// list. Returns the payload bytes handed to the socket.
func (c *Conn) sendDataBurst(scratch []byte, lens []int, n int, burstBufs *[][]byte) (int, error) {
	stride := c.hr + c.cfg.MSS
	sent := 0
	bufs := (*burstBufs)[:0]
	for i := 0; i < n; i++ {
		bufs = append(bufs, scratch[i*stride:i*stride+c.hr+lens[i]])
		sent += lens[i]
	}
	*burstBufs = bufs

	if c.sw != nil && n > 1 {
		segOK := true
		for i := 0; i < n-1; i++ {
			if lens[i] != c.cfg.MSS {
				segOK = false // a short mid-burst packet breaks the train
				break
			}
		}
		if segOK {
			var ok bool
			var err error
			c.ledger.Time(timing.BucketUDPWrite, func() { ok, err = c.sw.writeSegments(bufs, stride, c.raddr) })
			if ok {
				if err != nil {
					return sent, err
				}
				c.sendSyscalls.Add(1)
				c.gsoSends.Add(1)
				c.gsoSegments.Add(int64(n))
				return sent, nil
			}
		}
	}
	if c.bw != nil && n > 1 {
		var err error
		c.ledger.Time(timing.BucketUDPWrite, func() { err = c.bw.writeBatch(bufs, c.raddr) })
		c.sendSyscalls.Add(1)
		return sent, err
	}
	sent = 0
	for i := 0; i < n; i++ {
		if _, err := c.sockWrite(scratch[i*stride : i*stride+c.hr+lens[i]]); err != nil {
			return sent, err
		}
		sent += lens[i]
	}
	return sent, nil
}

func (c *Conn) sockWrite(b []byte) (int, error) {
	var n int
	var err error
	c.ledger.Time(timing.BucketUDPWrite, func() { n, err = c.sock.writeTo(b, c.raddr) })
	c.sendSyscalls.Add(1)
	return n, err
}

// sendCtrlBatch transmits a drained control batch — one sendmmsg when the
// transport supports batching and there is more than one datagram.
func (c *Conn) sendCtrlBatch(b *sendBatch) error {
	if c.bw != nil && len(b.msgs) > 1 {
		var err error
		c.ledger.Time(timing.BucketUDPWrite, func() { err = c.bw.writeBatch(b.msgs, c.raddr) })
		c.sendSyscalls.Add(1)
		return err
	}
	for _, m := range b.msgs {
		if _, err := c.sockWrite(m); err != nil {
			return err
		}
	}
	return nil
}

// handleDatagram processes one UDP datagram addressed to this connection,
// stamping its arrival at the moment of processing. The mux read loop
// calls handleDatagramAt instead with the batch read time: stamping each
// packet of a recvmmsg batch (or GRO train) individually would record the
// engine's per-packet processing time — a few µs of CPU — as inter-arrival
// spacing, inflating the §3.2 arrival-speed and §3.4 capacity estimators
// by orders of magnitude on fast links.
func (c *Conn) handleDatagram(raw []byte) {
	c.handleDatagramAt(raw, c.clock.Now())
}

// handleDatagramAt processes one UDP datagram that arrived at time now on
// the connection's clock.
func (c *Conn) handleDatagramAt(raw []byte, now int64) {
	if c.sec != nil {
		// Open before the engine sees anything. Data packets are sealed
		// only in AEAD mode; control packets are always sealed and
		// replay-checked on a secure connection — except handshakes, which
		// predate the session (a duplicate response is ignored below
		// anyway). Failures drop the datagram and count in Stats.
		if packet.IsControl(raw) {
			if !packet.IsHandshake(raw) {
				opened, ok := c.sec.OpenCtrl(raw)
				if !ok {
					return
				}
				raw = opened
			}
		} else if c.aead {
			opened, ok := c.sec.OpenData(raw)
			if !ok {
				return
			}
			raw = opened
		}
	}
	if !packet.IsControl(raw) {
		var d packet.Data
		var err error
		c.ledger.Time(timing.BucketUnpack, func() { d, err = packet.DecodeData(raw) })
		if err != nil {
			return
		}
		c.mu.Lock()
		// A full receive buffer means flow control was overrun (or the
		// reader is stuck): treat the packet as lost on the wire; the
		// protocol will retransmit it once space reopens (§3.2).
		if c.rcv.Free() == 0 {
			c.mu.Unlock()
			return
		}
		var fresh bool
		c.ledger.Time(timing.BucketMeasure, func() { fresh = c.core.HandleData(now, d.Seq) })
		if fresh {
			c.rcv.Store(d.Seq, d.Payload)
			c.bytesRecv += int64(len(raw))
			if c.rcv.Available() > 0 {
				c.rdReady.Broadcast()
			}
		}
		c.rcvBatch.reset()
		c.drainOutboxLocked(&c.rcvBatch)
		c.mu.Unlock()
		c.sendCtrlBatch(&c.rcvBatch) //nolint:errcheck // control losses are repaired by timers
		// Arriving data ends quiescence: a flow parked until its EXP
		// deadline must be rescheduled onto the ACK/NAK cadence, and only
		// a service run re-derives its wake deadline. For a flow already
		// awake this is a cheap state check on the shard.
		c.kickSender()
		return
	}

	ctrl, err := packet.DecodeControl(raw)
	if err != nil {
		return
	}
	c.mu.Lock()
	c.ledger.Time(timing.BucketProcessCtrl, func() {
		switch ctrl.Type {
		case packet.TypeACK:
			if a, err := packet.DecodeACK(ctrl); err == nil {
				if newly := c.core.HandleACK(now, a); newly > 0 {
					c.snd.Release(c.core.SndLastAck())
					c.wrReady.Broadcast()
				}
			}
		case packet.TypeNAK:
			if nak, err := packet.DecodeNAK(ctrl); err == nil {
				c.ledger.Time(timing.BucketLossProc, func() { c.core.HandleNAK(now, nak.Losses) })
			}
		case packet.TypeACK2:
			c.core.HandleACK2(now, ctrl.Extra)
		case packet.TypeKeepAlive:
			c.core.HandleKeepAlive(now)
		case packet.TypeShutdown:
			c.core.HandleShutdown(now)
			c.failLocked(ErrClosed)
		case packet.TypeHandshake:
			// Duplicate handshake response (our ACK of it was lost): ignore;
			// the listener answers duplicates for accepted conns.
		}
	})
	c.rcvBatch.reset()
	c.drainOutboxLocked(&c.rcvBatch)
	peerClosed := c.core.Closed()
	c.mu.Unlock()
	c.sendCtrlBatch(&c.rcvBatch) //nolint:errcheck // control losses are repaired by timers
	if peerClosed && c.closer != nil {
		c.closer()
	}
	c.kickSender()
}

// Drained reports whether every written byte has been sent and
// acknowledged — useful before an abrupt Close. A failed connection
// (closed, or peer declared dead) reports drained: no further progress is
// possible, so waiting on it would never terminate.
func (c *Conn) Drained() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return true
	}
	return c.snd.Pending() == 0 && c.core.Unacked() == 0
}
