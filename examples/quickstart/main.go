// Quickstart: the smallest end-to-end UDT program. It starts a listener,
// dials it over loopback, pushes 16 MB through the protocol — real UDP
// datagrams, real pacing, real ACK/NAK machinery — and prints the achieved
// throughput and protocol statistics.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"log"
	"math/rand"
	"time"

	"udt"
)

func main() {
	// 1. Listen. A nil config means the paper's defaults (MSS 1472,
	//    SYN 10 ms, 25600-packet flow window).
	ln, err := udt.Listen("127.0.0.1:0", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	// 2. Receive in the background, hashing what arrives.
	type result struct {
		n   int64
		sum [32]byte
	}
	results := make(chan result, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		h := sha256.New()
		n, err := io.Copy(h, conn) // reads until the peer closes
		if err != nil {
			log.Fatal(err)
		}
		var r result
		r.n = n
		copy(r.sum[:], h.Sum(nil))
		results <- r
	}()

	// 3. Dial and send.
	conn, err := udt.Dial(ln.Addr().String(), nil)
	if err != nil {
		log.Fatal(err)
	}
	data := make([]byte, 16<<20)
	rand.New(rand.NewSource(42)).Read(data)
	want := sha256.Sum256(data)

	start := time.Now()
	if _, err := conn.Write(data); err != nil {
		log.Fatal(err)
	}
	for !conn.Drained() {
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(start)
	st := conn.Stats()
	conn.Close()

	r := <-results
	fmt.Printf("transferred %d bytes in %v = %.1f Mb/s\n",
		r.n, elapsed.Round(time.Millisecond),
		float64(r.n*8)/elapsed.Seconds()/1e6)
	fmt.Printf("integrity: %v\n", r.sum == want)
	fmt.Printf("packets %d (+%d retransmitted), RTT %v, ACKs %d, NAKs %d\n",
		st.PktsSent, st.PktsRetrans, st.RTT.Round(10*time.Microsecond),
		st.ACKsRecv, st.NAKsRecv)
}
