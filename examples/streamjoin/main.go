// Streamjoin: the paper's motivating application (§2.1, Fig. 1, §5.3).
//
// Real-time record streams from a remote site A (100 ms RTT) and a nearby
// site B (1 ms RTT) are joined on a common key at site C behind a shared
// 1 Gb/s bottleneck. With TCP, the long-RTT stream crawls and the join is
// starved; with UDT both streams run at their fair share and the join
// output approaches the link rate. The experiment runs on the repository's
// deterministic network simulator (the NS-2 substitute), driving the same
// UDT protocol engine as the real sockets.
package main

import (
	"fmt"

	"udt/internal/core"
	"udt/internal/netsim"
	"udt/internal/tcpsim"
	"udt/internal/udtsim"
	"udt/internal/workload"
)

const (
	linkRate   = 1_000_000_000 // 1 Gb/s bottleneck at site C
	recordSize = 500           // bytes per record
	window     = 1_000_000     // join window, records
	duration   = 30 * netsim.Second
)

func main() {
	fmt.Println("streaming join at C: stream A over 100 ms RTT, stream B over 1 ms RTT")
	tcpJoin := runTCP()
	udtJoin := runUDT()
	fmt.Printf("\njoin output: TCP %.0f Mb/s vs UDT %.0f Mb/s (%.1f× better)\n",
		tcpJoin, udtJoin, udtJoin/tcpJoin)
}

func topo(sim *netsim.Sim) *netsim.Dumbbell {
	return netsim.NewDumbbell(sim, linkRate, 2000,
		[]netsim.Time{100 * netsim.Millisecond, 1 * netsim.Millisecond})
}

func report(kind string, join *workload.StreamJoin, a, b float64) float64 {
	out := float64(join.OutputBytes()*8) / float64(duration) * float64(netsim.Second) / 1e6
	fmt.Printf("%4s: stream A %7.1f Mb/s, stream B %7.1f Mb/s → join %7.1f Mb/s (%d pairs, %d expired)\n",
		kind, a, b, out, join.MatchedRecords(), join.ExpiredRecords())
	return out
}

func runTCP() float64 {
	sim := netsim.New(1)
	d := topo(sim)
	join := workload.NewStreamJoin(recordSize, window)
	meter := netsim.NewFlowMeter(sim, 2, netsim.Second)
	for i := 0; i < 2; i++ {
		i := i
		f := tcpsim.NewFlow(sim, i, tcpsim.SACK, 1460, 1<<20, d.SrcOut(i), d.SinkOut(i))
		d.Bind(i, func(p *netsim.Packet) {
			f.Dst.Deliver(p)
		}, f.Src.Deliver)
		f.SetMeter(meter)
		rcv := f.Dst
		prev := int64(0)
		// Feed the join as in-order data is delivered (polled each
		// simulated millisecond; the TCP model has no delivery hook).
		pollJoin(sim, func() {
			if n := rcv.Delivered; n > prev {
				join.Push(i, int(n-prev)*1460)
				prev = n
			}
		})
		f.Start(-1)
	}
	sim.Run(duration)
	a, b := meter.AvgMbps(0), meter.AvgMbps(1)
	return report("TCP", join, a, b)
}

func runUDT() float64 {
	sim := netsim.New(2)
	d := topo(sim)
	join := workload.NewStreamJoin(recordSize, window)
	meter := netsim.NewFlowMeter(sim, 2, netsim.Second)
	for i := 0; i < 2; i++ {
		i := i
		cfg := core.Config{MSS: 1500, MaxFlowWindow: 65536, MinEXP: 300_000}
		f := udtsim.NewFlow(sim, i, cfg, d.SrcOut(i), d.SinkOut(i))
		d.Bind(i, f.Dst.Deliver, f.Src.Deliver)
		f.SetMeter(meter)
		f.Dst.OnData = func(n int) { join.Push(i, n) }
		f.Start(-1)
	}
	sim.Run(duration)
	a, b := meter.AvgMbps(0), meter.AvgMbps(1)
	return report("UDT", join, a, b)
}

// pollJoin runs fn every simulated millisecond.
func pollJoin(sim *netsim.Sim, fn func()) {
	var tick func()
	tick = func() {
		fn()
		sim.After(netsim.Millisecond, tick)
	}
	sim.After(netsim.Millisecond, tick)
}
