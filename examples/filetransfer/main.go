// Filetransfer: the paper's sendfile/recvfile API (§4.7) end to end, with
// an impairing UDP proxy in the middle injecting 1% loss — the scenario
// UDT is built for: a reliable bulk file transfer that keeps its rate up
// through packet loss where TCP would collapse.
package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"time"

	"udt"
)

func main() {
	// A scratch "file" (16 MB of random bytes). With a path argument, send
	// that file instead.
	var payload []byte
	if len(os.Args) > 1 {
		var err error
		payload, err = os.ReadFile(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
	} else {
		payload = make([]byte, 16<<20)
		rand.New(rand.NewSource(7)).Read(payload)
	}
	want := sha256.Sum256(payload)

	ln, err := udt.Listen("127.0.0.1:0", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	// Impairment proxy: 1% loss in each direction.
	proxyAddr := startLossyProxy(ln.Addr().String(), 0.01)
	fmt.Printf("path: client → %s (1%% loss) → %s\n", proxyAddr, ln.Addr())

	done := make(chan [32]byte, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		var buf bytes.Buffer
		if _, err := conn.RecvFile(&buf); err != nil {
			log.Fatal(err)
		}
		done <- sha256.Sum256(buf.Bytes())
	}()

	conn, err := udt.Dial(proxyAddr, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	n, err := conn.SendFile(bytes.NewReader(payload), int64(len(payload)))
	if err != nil {
		log.Fatal(err)
	}
	got := <-done
	elapsed := time.Since(start)
	st := conn.Stats()
	fmt.Printf("sent %.1f MB in %v = %.1f Mb/s through 1%% loss\n",
		float64(n)/1e6, elapsed.Round(time.Millisecond), float64(n*8)/elapsed.Seconds()/1e6)
	fmt.Printf("integrity: %v; retransmissions: %d; sender freezes: %d\n",
		got == want, st.PktsRetrans, st.SndFreezes)
}

// startLossyProxy forwards datagrams between the dialer and the server,
// dropping a fraction of them, and returns its address.
func startLossyProxy(serverAddr string, lossRate float64) string {
	saddr, err := net.ResolveUDPAddr("udp", serverAddr)
	if err != nil {
		log.Fatal(err)
	}
	sock, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	go func() {
		buf := make([]byte, 65536)
		var client *net.UDPAddr
		for {
			n, from, err := sock.ReadFromUDP(buf)
			if err != nil {
				return
			}
			if rng.Float64() < lossRate {
				continue
			}
			if from.Port == saddr.Port && from.IP.Equal(saddr.IP) {
				if client != nil {
					sock.WriteToUDP(buf[:n], client)
				}
			} else {
				client = from
				sock.WriteToUDP(buf[:n], saddr)
			}
		}
	}()
	return sock.LocalAddr().String()
}
