// Parallelflows: UDT's headline fairness property (§3.4, Figs. 2 and 6).
//
// Ten UDT bulk flows with round-trip times spread from 1 ms to 512 ms share
// one 1 Gb/s bottleneck on the deterministic simulator. Because UDT's
// control interval is a constant (SYN = 0.01 s) rather than RTT-based, and
// the increase parameter comes from packet-pair bandwidth estimation, all
// ten converge to nearly identical rates — something no TCP variant does.
// The same run with TCP SACK shows the classic RTT bias for contrast.
package main

import (
	"fmt"

	"udt/internal/core"
	"udt/internal/metrics"
	"udt/internal/netsim"
	"udt/internal/tcpsim"
	"udt/internal/udtsim"
)

const (
	rate = 1_000_000_000
	dur  = 60 * netsim.Second
	warm = 20
)

func main() {
	rtts := make([]netsim.Time, 10)
	for i := range rtts {
		rtts[i] = netsim.Time(1<<i) * netsim.Millisecond // 1, 2, 4, ... 512 ms
	}

	udtMeans := runUDT(rtts)
	tcpMeans := runTCP(rtts)

	fmt.Printf("%10s  %12s  %12s\n", "RTT (ms)", "UDT (Mb/s)", "TCP (Mb/s)")
	for i, rtt := range rtts {
		fmt.Printf("%10d  %12.1f  %12.1f\n", rtt/netsim.Millisecond, udtMeans[i], tcpMeans[i])
	}
	fmt.Printf("\nJain fairness index: UDT %.3f vs TCP %.3f (1.0 = perfectly fair)\n",
		metrics.JainIndex(udtMeans), metrics.JainIndex(tcpMeans))
}

func runUDT(rtts []netsim.Time) []float64 {
	sim := netsim.New(1)
	d := netsim.NewDumbbell(sim, rate, 4000, rtts)
	meter := netsim.NewFlowMeter(sim, len(rtts), netsim.Second)
	for i, rtt := range rtts {
		cfg := core.Config{MSS: 1500, MaxFlowWindow: 65536}
		if rtt > 150*netsim.Millisecond {
			cfg.MinEXP = 2*int64(rtt/netsim.Microsecond) + core.DefaultSYN
		}
		f := udtsim.NewFlow(sim, i, cfg, d.SrcOut(i), d.SinkOut(i))
		d.Bind(i, f.Dst.Deliver, f.Src.Deliver)
		f.SetMeter(meter)
		f.Start(-1)
	}
	sim.Run(dur)
	return metrics.ColumnMeans(meter.SeriesAfter(warm))
}

func runTCP(rtts []netsim.Time) []float64 {
	sim := netsim.New(2)
	d := netsim.NewDumbbell(sim, rate, 4000, rtts)
	meter := netsim.NewFlowMeter(sim, len(rtts), netsim.Second)
	for i := range rtts {
		f := tcpsim.NewFlow(sim, i, tcpsim.SACK, 1460, 1<<20, d.SrcOut(i), d.SinkOut(i))
		d.Bind(i, f.Dst.Deliver, f.Src.Deliver)
		f.SetMeter(meter)
		f.Start(-1)
	}
	sim.Run(dur)
	return metrics.ColumnMeans(meter.SeriesAfter(warm))
}
