package udt

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"udt/fabric"
	"udt/internal/packet"
)

// rdvPipe runs Rendezvous simultaneously from both ends of an in-process
// fabric pipe and returns the two established connections.
func rdvPipe(t *testing.T, cfgA, cfgB *Config) (*Conn, *Conn) {
	t.Helper()
	a, b := fabric.NewPipe(fabric.PipeConfig{Depth: 1 << 12})
	type res struct {
		c   *Conn
		err error
	}
	ra := make(chan res, 1)
	go func() {
		c, err := Rendezvous(a, fabric.Addr("pipe-b"), cfgA)
		ra <- res{c, err}
	}()
	cb, errB := Rendezvous(b, fabric.Addr("pipe-a"), cfgB)
	rA := <-ra
	if rA.err != nil || errB != nil {
		t.Fatalf("rendezvous: a=%v b=%v", rA.err, errB)
	}
	t.Cleanup(func() {
		rA.c.Close() //nolint:errcheck
		cb.Close()   //nolint:errcheck
	})
	return rA.c, cb
}

// exchange pushes a payload in both directions at once and verifies each
// side receives the other's bytes intact.
func exchange(t *testing.T, a, b *Conn, n int) {
	t.Helper()
	msgA := bytes.Repeat([]byte("a"), n)
	msgB := bytes.Repeat([]byte("b"), n)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	send := func(c *Conn, msg []byte) {
		defer wg.Done()
		if _, err := c.Write(msg); err != nil {
			errs <- err
		}
	}
	recv := func(c *Conn, want []byte) {
		defer wg.Done()
		got := make([]byte, len(want))
		if _, err := io.ReadFull(c, got); err != nil {
			errs <- err
			return
		}
		if !bytes.Equal(got, want) {
			errs <- errors.New("payload corrupted in transit")
		}
	}
	wg.Add(4)
	go send(a, msgA)
	go send(b, msgB)
	go recv(a, msgB)
	go recv(b, msgA)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestRendezvousOverPipe(t *testing.T) {
	a, b := rdvPipe(t, nil, nil)
	exchange(t, a, b, 64<<10)
}

// TestRendezvousSecure crosses two PSK-authenticated rendezvous dials with
// a sealed data channel: the crossing response must verify and both
// directions must decrypt.
func TestRendezvousSecure(t *testing.T) {
	psk := []byte("0123456789abcdef0123456789abcdef")
	cfgA := &Config{PSK: psk, AEAD: true}
	cfgB := &Config{PSK: psk, AEAD: true}
	a, b := rdvPipe(t, cfgA, cfgB)
	if !a.aead || !b.aead {
		t.Fatal("rendezvous crossing did not negotiate the sealed channel")
	}
	exchange(t, a, b, 32<<10)
}

// TestRendezvousToListener pins rendezvous→listener interop: a request
// carrying the rendezvous option that reaches a Mux with no rendezvous
// pending is served by its listener like an ordinary dial — including the
// secure path's stateless cookie challenge.
func TestRendezvousToListener(t *testing.T) {
	for _, sec := range []bool{false, true} {
		name := "clear"
		if sec {
			name = "secure"
		}
		t.Run(name, func(t *testing.T) {
			var cfg *Config
			if sec {
				cfg = &Config{PSK: []byte("0123456789abcdef0123456789abcdef")}
			}
			a, b := fabric.NewPipe(fabric.PipeConfig{Depth: 1 << 12})
			ln, err := ListenOn(b, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close() //nolint:errcheck
			acc := make(chan *Conn, 1)
			go func() {
				c, err := ln.Accept()
				if err == nil {
					acc <- c
				}
			}()
			ca, err := Rendezvous(a, fabric.Addr("pipe-b"), cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer ca.Close() //nolint:errcheck
			var cb *Conn
			select {
			case cb = <-acc:
			case <-time.After(10 * time.Second):
				t.Fatal("listener never accepted the rendezvous request")
			}
			defer cb.Close() //nolint:errcheck
			exchange(t, ca, cb, 16<<10)
		})
	}
}

// TestRendezvousTimeout: with a silent peer the dial must die at the
// configured handshake deadline, and the failed Rendezvous must have
// closed the transport it took ownership of.
func TestRendezvousTimeout(t *testing.T) {
	a, _ := fabric.NewPipe(fabric.PipeConfig{Depth: 8})
	start := time.Now()
	_, err := Rendezvous(a, fabric.Addr("pipe-b"), &Config{HandshakeTimeout: 300 * time.Millisecond})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if el := time.Since(start); el < 250*time.Millisecond || el > 5*time.Second {
		t.Fatalf("timed out after %v, want ≈300ms", el)
	}
	if _, err := a.WriteTo([]byte("x"), nil); err == nil {
		t.Fatal("transport still open after failed rendezvous")
	}
}

// TestRendezvousBusy: a Mux admits one pending rendezvous per remote
// address; a second concurrent attempt is refused immediately.
func TestRendezvousBusy(t *testing.T) {
	a, _ := fabric.NewPipe(fabric.PipeConfig{Depth: 8})
	m, err := NewMux(a, &Config{HandshakeTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close() //nolint:errcheck
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Rendezvous(fabric.Addr("pipe-b")) //nolint:errcheck // times out after the check below
	}()
	time.Sleep(50 * time.Millisecond)
	if _, err := m.Rendezvous(fabric.Addr("pipe-b")); err == nil {
		t.Fatal("second concurrent rendezvous to the same peer succeeded")
	}
	m.Close() //nolint:errcheck
	<-done
}

// TestRdvWins pins the tie-break: antisymmetric on every component, with
// cookie outranking nonce outranking connection ID.
func TestRdvWins(t *testing.T) {
	mk := func(cookie uint64, nonce uint64, connID int32) *packet.Handshake {
		return &packet.Handshake{Cookie: cookie, RdvNonce: nonce, ConnID: connID}
	}
	cases := []struct{ a, b *packet.Handshake }{
		{mk(2, 0, 0), mk(1, 9, 9)},  // cookie dominates
		{mk(1, 5, 0), mk(1, 4, 9)},  // then nonce
		{mk(1, 5, 7), mk(1, 5, 3)},  // then connID
		{mk(0, 0, -1), mk(0, 0, 1)}, // connID compares unsigned
	}
	for i, c := range cases {
		if !rdvWins(c.a, c.b) || rdvWins(c.b, c.a) {
			t.Fatalf("case %d: tie-break not antisymmetric", i)
		}
	}
	eq := mk(1, 2, 3)
	if rdvWins(eq, eq) {
		t.Fatal("exact tie produced a winner")
	}
}

// TestRendezvousCrossingStress races repeated simultaneous crossings —
// alongside ordinary dials to a listener on the same two mux sockets —
// to shake out races between the read-loop accept path and the dialing
// goroutines (run under -race in CI's `make fabric` gate).
func TestRendezvousCrossingStress(t *testing.T) {
	aEnd, bEnd := fabric.NewPipe(fabric.PipeConfig{Depth: 1 << 14})
	// Distinct seeds keep the tie-break nonces independent.
	ma, err := NewMux(aEnd, &Config{Rand: rand.New(rand.NewSource(101))})
	if err != nil {
		t.Fatal(err)
	}
	defer ma.Close() //nolint:errcheck
	mb, err := NewMux(bEnd, &Config{Rand: rand.New(rand.NewSource(202))})
	if err != nil {
		t.Fatal(err)
	}
	defer mb.Close() //nolint:errcheck
	ln, err := mb.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() { // serve ordinary dials arriving between the crossings
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c *Conn) {
				io.Copy(io.Discard, c) //nolint:errcheck
				c.Close()              //nolint:errcheck
			}(c)
		}
	}()

	iters := 25
	if testing.Short() {
		iters = 5
	}
	for i := 0; i < iters; i++ {
		var ca, cb, cd *Conn
		var errA, errB, errD error
		var wg sync.WaitGroup
		wg.Add(3)
		// mb's rendezvous starts first: if ma's request reached mb before
		// mb had a rendezvous pending, mb's listener would serve it (the
		// documented fallback) and strand mb's own rendezvous. mb's early
		// request to ma is merely dropped (ma has no listener) and
		// retransmitted, so this ordering keeps the crossing unambiguous.
		go func() { defer wg.Done(); cb, errB = mb.Rendezvous(fabric.Addr("pipe-a")) }()
		time.Sleep(10 * time.Millisecond)
		go func() { defer wg.Done(); ca, errA = ma.Rendezvous(fabric.Addr("pipe-b")) }()
		go func() { defer wg.Done(); cd, errD = ma.Dial(fabric.Addr("pipe-b")) }()
		wg.Wait()
		if errA != nil || errB != nil || errD != nil {
			t.Fatalf("iter %d: rendezvous a=%v b=%v dial=%v", i, errA, errB, errD)
		}
		exchange(t, ca, cb, 4<<10)
		if _, err := cd.Write([]byte("dial traffic")); err != nil {
			t.Fatalf("iter %d: dial write: %v", i, err)
		}
		ca.Close() //nolint:errcheck
		cb.Close() //nolint:errcheck
		cd.Close() //nolint:errcheck
	}
}

// BenchmarkRendezvousHandshake measures crossing latency — both sides
// calling Mux.Rendezvous to established connection — over an in-process
// pipe, reporting the median so a rare lost-crossing retransmission (a
// 250 ms outlier by design) does not swamp the typical figure recorded in
// BENCH_baseline.json.
func BenchmarkRendezvousHandshake(b *testing.B) {
	aEnd, bEnd := fabric.NewPipe(fabric.PipeConfig{Depth: 1 << 12})
	ma, err := NewMux(aEnd, &Config{Rand: rand.New(rand.NewSource(301))})
	if err != nil {
		b.Fatal(err)
	}
	defer ma.Close() //nolint:errcheck
	mb, err := NewMux(bEnd, &Config{Rand: rand.New(rand.NewSource(302))})
	if err != nil {
		b.Fatal(err)
	}
	defer mb.Close() //nolint:errcheck

	lat := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ca, cb *Conn
		var errA, errB error
		var wg sync.WaitGroup
		start := time.Now()
		wg.Add(2)
		go func() { defer wg.Done(); ca, errA = ma.Rendezvous(fabric.Addr("pipe-b")) }()
		go func() { defer wg.Done(); cb, errB = mb.Rendezvous(fabric.Addr("pipe-a")) }()
		wg.Wait()
		lat = append(lat, float64(time.Since(start).Microseconds()))
		if errA != nil || errB != nil {
			b.Fatalf("rendezvous: a=%v b=%v", errA, errB)
		}
		ca.Close() //nolint:errcheck
		cb.Close() //nolint:errcheck
	}
	b.StopTimer()
	sort.Float64s(lat)
	b.ReportMetric(lat[len(lat)/2], "p50_us")
}
