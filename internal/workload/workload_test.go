package workload

import "testing"

func TestStreamJoinBalanced(t *testing.T) {
	j := NewStreamJoin(100, 1000)
	for i := 0; i < 50; i++ {
		j.Push(0, 1000) // 10 records
		j.Push(1, 1000)
	}
	if j.MatchedRecords() != 500 {
		t.Fatalf("matched %d, want 500", j.MatchedRecords())
	}
	if j.ExpiredRecords() != 0 {
		t.Fatalf("expired %d, want 0", j.ExpiredRecords())
	}
	if j.OutputBytes() != 500*200 {
		t.Fatalf("output %d", j.OutputBytes())
	}
}

func TestStreamJoinSlowerStreamLimits(t *testing.T) {
	// Stream 0 delivers 10× stream 1 within the window: output tracks the
	// slower stream (§2.1: join throughput = 2 × slower stream).
	j := NewStreamJoin(100, 1_000_000)
	j.Push(0, 100_000) // 1000 records
	j.Push(1, 10_000)  // 100 records
	if j.MatchedRecords() != 100 {
		t.Fatalf("matched %d, want 100", j.MatchedRecords())
	}
	if j.OutputBytes() != 100*200 {
		t.Fatalf("output %d", j.OutputBytes())
	}
}

func TestStreamJoinWindowExpiry(t *testing.T) {
	// Stream 0 runs 5000 records ahead of a 1000-record window: the first
	// 4000 of stream 1's eventual records find their partners expired.
	j := NewStreamJoin(100, 1000)
	j.Push(0, 500_000) // 5000 records, stream 1 at 0
	if j.ExpiredRecords() != 0 {
		// Nothing of stream 1 settled yet; expiry is charged as the laggard
		// arrives.
		t.Fatalf("premature expiry: %d", j.ExpiredRecords())
	}
	j.Push(1, 500_000) // 5000 records
	if j.ExpiredRecords() != 4000 {
		t.Fatalf("expired %d, want 4000", j.ExpiredRecords())
	}
	if j.MatchedRecords() != 1000 {
		t.Fatalf("matched %d, want 1000", j.MatchedRecords())
	}
}

func TestStreamJoinPartialRecords(t *testing.T) {
	j := NewStreamJoin(100, 10)
	j.Push(0, 150) // 1.5 records
	j.Push(1, 150)
	if j.MatchedRecords() != 1 {
		t.Fatalf("matched %d, want 1", j.MatchedRecords())
	}
	j.Push(0, 50)
	j.Push(1, 50)
	if j.MatchedRecords() != 2 {
		t.Fatalf("matched %d, want 2", j.MatchedRecords())
	}
}

func TestStreamJoinIgnoresBadInput(t *testing.T) {
	j := NewStreamJoin(100, 10)
	j.Push(2, 100)
	j.Push(-1, 100)
	j.Push(0, 0)
	j.Push(0, -5)
	if j.MatchedRecords() != 0 || j.cum[0] != 0 {
		t.Fatal("bad input accepted")
	}
}

func TestTable2Sites(t *testing.T) {
	sites := Table2Sites()
	if len(sites) != 3 {
		t.Fatalf("%d sites", len(sites))
	}
	for _, s := range sites {
		if s.ReadMbps <= 0 || s.WriteMbps <= 0 || s.NetCapacityMbps <= 0 {
			t.Fatalf("bad profile %+v", s)
		}
		if s.WriteMbps >= s.ReadMbps {
			t.Fatalf("%s: disk writes faster than reads, unlike the paper's hosts", s.Name)
		}
	}
}
