// Package workload models the applications the paper evaluates UDT with:
// the windowed streaming join of §2.1/§5.3 (two record streams merged on a
// common key at a third site) and rate-limited disk sources/sinks for the
// disk-to-disk transfer matrix of Table 2.
package workload

// StreamJoin models the window-based join of [8] (Merging Multiple Data
// Streams on Common Keys): records from two real-time streams are matched
// by key inside a sliding window. Records are keyed by their position in
// the stream, so the join can match record k of stream 0 with record k of
// stream 1 — but only while both sit inside the window. When one stream
// runs ahead by more than the window (because the other is starved by its
// transport), the laggard's eventual records find their partners expired
// and the join output stalls: exactly the failure §2.1 demonstrates for
// TCP with asymmetric RTTs.
type StreamJoin struct {
	recordSize int
	window     int64 // how far (records) one stream may lead before partners expire

	carry   [2]int   // partial-record bytes
	cum     [2]int64 // records received per stream
	matched int64    // records matched on each side
	expired int64    // records whose partner fell out of the window
}

// NewStreamJoin returns a join over records of recordSize bytes with the
// given window (in records).
func NewStreamJoin(recordSize int, window int64) *StreamJoin {
	if recordSize < 1 {
		recordSize = 1
	}
	if window < 1 {
		window = 1
	}
	return &StreamJoin{recordSize: recordSize, window: window}
}

// Push delivers n stream bytes of stream (0 or 1) to the join.
func (j *StreamJoin) Push(stream int, n int) {
	if stream < 0 || stream > 1 || n <= 0 {
		return
	}
	total := j.carry[stream] + n
	j.carry[stream] = total % j.recordSize
	j.cum[stream] += int64(total / j.recordSize)
	j.settle()
}

// settle advances the matched/expired accounting.
func (j *StreamJoin) settle() {
	// Records beyond the leader's window expire unmatched.
	lo, hi := j.cum[0], j.cum[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	floor := hi - j.window
	base := j.matched + j.expired // already-settled records per side
	if floor > base {
		// The laggard's unsettled records up to floor lost their partners.
		exp := floor - base
		if exp > lo-base {
			exp = lo - base
			if exp < 0 {
				exp = 0
			}
		}
		j.expired += exp
		base = j.matched + j.expired
	}
	if m := lo - base; m > 0 {
		j.matched += m
	}
}

// MatchedRecords returns the number of matched record pairs.
func (j *StreamJoin) MatchedRecords() int64 { return j.matched }

// ExpiredRecords returns the records that lost their partner to the window.
func (j *StreamJoin) ExpiredRecords() int64 { return j.expired }

// OutputBytes returns the joined output volume: each match emits both
// records, so the paper's join throughput is twice the slower stream.
func (j *StreamJoin) OutputBytes() int64 {
	return j.matched * 2 * int64(j.recordSize)
}

// Disk profiles for Table 2: sustained sequential read/write ceilings of
// the paper's three testbed hosts, in Mb/s (§5.3, Table 2).
type DiskProfile struct {
	Name            string
	ReadMbps        float64
	WriteMbps       float64
	NetRTTMs        float64 // RTT from Chicago (the matrix's row site)
	NetCapacityMbps float64
}

// Table2Sites returns the three sites of Table 2 with the paper's measured
// disk ceilings (read: 610/950/810 scaled from the matrix; write:
// 450/550/680 Mb/s as printed) and the testbed link parameters of §5.
func Table2Sites() []DiskProfile {
	return []DiskProfile{
		{Name: "Chicago", ReadMbps: 720, WriteMbps: 450, NetRTTMs: 0.04, NetCapacityMbps: 1000},
		{Name: "Ottawa", ReadMbps: 700, WriteMbps: 550, NetRTTMs: 16, NetCapacityMbps: 622},
		{Name: "Amsterdam", ReadMbps: 800, WriteMbps: 680, NetRTTMs: 110, NetCapacityMbps: 1000},
	}
}
