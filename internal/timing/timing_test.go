package timing

import (
	"sync"
	"testing"
	"time"
)

func TestSysClockMonotonic(t *testing.T) {
	c := NewSysClock()
	a := c.Now()
	time.Sleep(2 * time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Fatalf("clock not monotonic: %d then %d", a, b)
	}
	if d := b - a; d < 1500 || d > 500_000 {
		t.Fatalf("2 ms sleep measured as %d µs", d)
	}
}

// fakeClock advances only when told; lets pacer tests avoid real sleeps.
type fakeClock struct {
	mu  sync.Mutex
	now int64
}

func (f *fakeClock) Now() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now += 10 // each observation costs 10 µs of virtual time
	return f.now
}

func TestPacerWaitUntilPast(t *testing.T) {
	p := NewPacer(NewSysClock())
	late := p.WaitUntil(-100)
	if late < 100 {
		t.Fatalf("lateness = %d, want >= 100", late)
	}
}

func TestPacerSpinsForShortWaits(t *testing.T) {
	fc := &fakeClock{}
	p := NewPacer(fc)
	p.WaitUntil(500) // within the spin threshold from the start
	if p.Spins() == 0 {
		t.Fatal("expected busy-wait iterations for a short wait")
	}
}

func TestPacerRealAccuracy(t *testing.T) {
	c := NewSysClock()
	p := NewPacer(c)
	start := c.Now()
	p.WaitUntil(start + 3000) // 3 ms
	elapsed := c.Now() - start
	if elapsed < 3000 {
		t.Fatalf("woke early: %d µs", elapsed)
	}
	if elapsed > 30_000 {
		t.Fatalf("woke far too late: %d µs", elapsed)
	}
}

func TestLedgerDisabledIsNoop(t *testing.T) {
	var l Ledger
	l.Add(BucketPack, time.Second)
	ran := false
	l.Time(BucketUDPWrite, func() { ran = true })
	if !ran {
		t.Fatal("Time must run f when disabled")
	}
	if l.Total() != 0 {
		t.Fatal("disabled ledger accumulated time")
	}
	var nilLedger *Ledger
	nilLedger.Add(BucketPack, time.Second) // must not panic
}

func TestLedgerShares(t *testing.T) {
	l := &Ledger{Enabled: true}
	l.Add(BucketUDPWrite, 300*time.Millisecond)
	l.Add(BucketPack, 100*time.Millisecond)
	if got := l.Share(BucketUDPWrite); got < 0.74 || got > 0.76 {
		t.Fatalf("Share(udp-write) = %v, want 0.75", got)
	}
	if got := l.Share(BucketTiming); got != 0 {
		t.Fatalf("Share(timing) = %v, want 0", got)
	}
	if l.Nanos(BucketPack) != int64(100*time.Millisecond) {
		t.Fatal("Nanos mismatch")
	}
}

func TestLedgerTimeCharges(t *testing.T) {
	l := &Ledger{Enabled: true}
	l.Time(BucketMeasure, func() { time.Sleep(2 * time.Millisecond) })
	if l.Nanos(BucketMeasure) < int64(time.Millisecond) {
		t.Fatalf("Time charged %d ns", l.Nanos(BucketMeasure))
	}
}

func TestBucketNames(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Buckets() {
		s := b.String()
		if s == "" || s == "invalid" {
			t.Fatalf("bucket %d has bad name %q", b, s)
		}
		if seen[s] {
			t.Fatalf("duplicate bucket name %q", s)
		}
		seen[s] = true
	}
	if Bucket(-1).String() != "invalid" || Bucket(999).String() != "invalid" {
		t.Fatal("out-of-range buckets must stringify as invalid")
	}
}

func TestLedgerConcurrent(t *testing.T) {
	l := &Ledger{Enabled: true}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.Add(BucketOther, time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if l.Nanos(BucketOther) != 8000 {
		t.Fatalf("concurrent adds lost updates: %d", l.Nanos(BucketOther))
	}
}
