// Package timing provides the time plumbing shared by the real transport and
// the simulator: a microsecond monotonic clock abstraction, the
// high-precision hybrid sleep/busy-wait pacer used to enforce the packet
// sending period at gigabit rates (paper §4.5), and a lightweight CPU-time
// attribution ledger used to reproduce the paper's per-function cost table
// (Table 3).
package timing

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Clock supplies monotonic time in microseconds. The real implementation
// wraps the runtime monotonic clock; the simulator implements Clock over its
// virtual event clock so the protocol engine cannot tell the difference.
type Clock interface {
	Now() int64 // microseconds, monotonic, origin arbitrary but fixed
}

// SysClock is the wall (monotonic) clock.
type SysClock struct {
	base time.Time
}

// NewSysClock returns a monotonic microsecond clock with origin ≈ now.
func NewSysClock() *SysClock { return &SysClock{base: time.Now()} }

// Now implements Clock.
func (c *SysClock) Now() int64 { return time.Since(c.base).Microseconds() }

// At converts an absolute time to this clock's microsecond timeline,
// clamped at 0 for instants that precede the clock's origin (a datagram
// read racing ahead of connection setup). It lets a shared socket reader
// stamp a whole receive batch once and hand each connection an arrival
// time on its own clock.
func (c *SysClock) At(t time.Time) int64 {
	us := t.Sub(c.base).Microseconds()
	if us < 0 {
		return 0
	}
	return us
}

// Pacer enforces inter-packet send times with microsecond precision.
//
// Operating-system sleep primitives cannot be trusted below a few hundred
// microseconds, while a 1 Gb/s sender must hit a ~12 µs packet sending
// period. Following §4.5, Pacer sleeps while the remaining wait is long and
// then busy-waits (yielding the processor so other goroutines may run) for
// the final stretch. Busy-waiting may consume a core at low rates; as the
// paper notes, the blocking UDP send dominates at high rates, so the spin
// time shrinks exactly when throughput matters.
type Pacer struct {
	clock Clock
	// SpinThreshold is the remaining-wait below which the pacer spins
	// instead of sleeping. Defaults to 200 µs.
	SpinThreshold int64
	spins         atomic.Int64 // spin iterations, for introspection/tests
}

// NewPacer returns a pacer reading time from clock.
func NewPacer(clock Clock) *Pacer {
	return &Pacer{clock: clock, SpinThreshold: 200}
}

// WaitUntil blocks until clock.Now() >= target (µs). It returns immediately
// if the target is already past, and reports the lateness (non-negative) in
// microseconds.
func (p *Pacer) WaitUntil(target int64) int64 {
	for {
		now := p.clock.Now()
		remain := target - now
		if remain <= 0 {
			return -remain
		}
		if remain > p.SpinThreshold {
			time.Sleep(time.Duration(remain-p.SpinThreshold) * time.Microsecond)
			continue
		}
		// Busy wait with a courteous yield.
		p.spins.Add(1)
		runtime.Gosched()
	}
}

// Spins returns the cumulative busy-wait iterations (test instrumentation).
func (p *Pacer) Spins() int64 { return p.spins.Load() }

// Bucket identifies a cost center in the send/receive paths, mirroring the
// function rows of the paper's Table 3.
type Bucket int

// Cost centers. Send side: UDP writing, timing (pacing waits), packing data,
// processing control packets, application interaction. Receive side: UDP
// reading, measurement (bandwidth/RTT/arrival speed), unpacking, loss
// processing, timing. Other catches everything unattributed.
const (
	BucketUDPWrite Bucket = iota
	BucketTiming
	BucketPack
	BucketProcessCtrl
	BucketAppInteract
	BucketUDPRead
	BucketMeasure
	BucketUnpack
	BucketLossProc
	BucketOther
	numBuckets
)

var bucketNames = [numBuckets]string{
	"udp-write", "timing", "pack", "process-ctrl", "app-interact",
	"udp-read", "measure", "unpack", "loss-proc", "other",
}

// String returns the bucket's row label.
func (b Bucket) String() string {
	if b < 0 || b >= numBuckets {
		return "invalid"
	}
	return bucketNames[b]
}

// Ledger accumulates wall time per bucket. It is safe for concurrent use;
// when disabled (the zero value's Enabled=false) every operation is a no-op
// costing one branch, so shipping it compiled into the hot path is free.
type Ledger struct {
	Enabled bool
	buckets [numBuckets]atomic.Int64
}

// Add charges d nanoseconds to bucket b.
func (l *Ledger) Add(b Bucket, d time.Duration) {
	if l == nil || !l.Enabled {
		return
	}
	l.buckets[b].Add(int64(d))
}

// Time runs f and charges its wall time to bucket b.
func (l *Ledger) Time(b Bucket, f func()) {
	if l == nil || !l.Enabled {
		f()
		return
	}
	start := time.Now()
	f()
	l.buckets[b].Add(int64(time.Since(start)))
}

// Total returns the sum over all buckets in nanoseconds.
func (l *Ledger) Total() int64 {
	var t int64
	for i := range l.buckets {
		t += l.buckets[i].Load()
	}
	return t
}

// Share returns bucket b's fraction of the total (0 when nothing recorded).
func (l *Ledger) Share(b Bucket) float64 {
	t := l.Total()
	if t == 0 {
		return 0
	}
	return float64(l.buckets[b].Load()) / float64(t)
}

// Nanos returns the raw accumulation for bucket b.
func (l *Ledger) Nanos(b Bucket) int64 { return l.buckets[b].Load() }

// Buckets returns every bucket id in display order.
func Buckets() []Bucket {
	out := make([]Bucket, numBuckets)
	for i := range out {
		out[i] = Bucket(i)
	}
	return out
}
