package timerwheel

import (
	"math/rand"
	"sync"
	"testing"

	"udt/internal/netem"
)

// TestFireOrderAndBounds schedules timers across every wheel level and
// checks each fires within one tick after its deadline, in deadline order,
// with Next never overshooting the actual fire time.
func TestFireOrderAndBounds(t *testing.T) {
	w := New()
	deadlines := []int64{
		1, 63, 64, 100, 1000, // level 0
		5_000, 100_000, 260_000, // level 1 (≤ 64² ticks ≈ 262 ms)
		300_000, 5_000_000, 16_000_000, // level 2 (≤ 64³ ticks ≈ 16.8 s)
		20_000_000, 900_000_000, // level 3
	}
	timers := make([]Timer, len(deadlines))
	for i, d := range deadlines {
		timers[i].Owner = int64(d)
		w.Schedule(&timers[i], d)
	}
	if w.Len() != len(deadlines) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(deadlines))
	}

	var fired []int64
	now := int64(0)
	for w.Len() > 0 {
		next := w.Next()
		if next == NoDeadline {
			t.Fatalf("Next = NoDeadline with %d timers armed", w.Len())
		}
		if next < now {
			t.Fatalf("Next went backwards: %d < now %d", next, now)
		}
		now = next
		w.Advance(now, func(tm *Timer) {
			d := tm.Owner.(int64)
			if now < d {
				t.Fatalf("timer %d fired early at now=%d", d, now)
			}
			if now > d+2*Tick {
				t.Fatalf("timer %d fired late at now=%d (> deadline+2 ticks)", d, now)
			}
			fired = append(fired, d)
		})
	}
	if len(fired) != len(deadlines) {
		t.Fatalf("fired %d of %d timers", len(fired), len(deadlines))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("out-of-order fire: %d after %d", fired[i], fired[i-1])
		}
	}
}

// TestCascadeCorrectness drives the wheel with a pseudo-random workload of
// schedules, reschedules, and cancels spanning all four levels, advancing
// time in uneven jumps so cascades land mid-walk. Every surviving timer
// must fire exactly once, within a tick of its final deadline.
func TestCascadeCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := New()

	const n = 2000
	timers := make([]Timer, n)
	want := make(map[*Timer]int64) // surviving timer -> final deadline
	now := int64(0)

	for i := range timers {
		d := now + 1 + rng.Int63n(30_000_000) // up to 30 s out: hits level 3
		timers[i].Owner = i
		w.Schedule(&timers[i], d)
		want[&timers[i]] = d
	}
	// Churn: cancel some, reschedule others.
	for i := 0; i < n/2; i++ {
		tm := &timers[rng.Intn(n)]
		if !tm.Armed() {
			continue
		}
		if rng.Intn(2) == 0 {
			w.Cancel(tm)
			delete(want, tm)
		} else {
			d := now + 1 + rng.Int63n(30_000_000)
			w.Schedule(tm, d)
			want[tm] = d
		}
	}

	got := make(map[*Timer]int64)
	for w.Len() > 0 {
		// Jump by uneven amounts so ticks, cycle boundaries, and multi-level
		// cascades all get exercised; sometimes jump far past several fires.
		now += 1 + rng.Int63n(500_000)
		w.Advance(now, func(tm *Timer) {
			if _, dup := got[tm]; dup {
				t.Fatalf("timer %v fired twice", tm.Owner)
			}
			got[tm] = now
		})
	}
	if len(got) != len(want) {
		t.Fatalf("fired %d timers, want %d", len(got), len(want))
	}
	for tm, d := range want {
		at, ok := got[tm]
		if !ok {
			t.Fatalf("timer %v (deadline %d) never fired", tm.Owner, d)
		}
		if at < d {
			t.Fatalf("timer %v fired at %d before deadline %d", tm.Owner, at, d)
		}
	}
}

// TestVirtualClockDrive runs the wheel off netem's virtual clock the same
// way the chaos harness drives a shard: schedule periodic re-arming
// timers, advance virtual time to the wheel's Next bound, and verify the
// resulting fire sequence is deterministic across two runs.
func TestVirtualClockDrive(t *testing.T) {
	type fire struct {
		who string
		at  int64
	}
	run := func() []fire {
		vc := netem.NewVirtualClock(0)
		w := New()
		var tick, exp Timer
		const period = 10_000 // SYN-like 10 ms
		fires := []fire{}
		tick.Owner = "tick"
		exp.Owner = "exp"
		w.Schedule(&tick, vc.Now()+period)
		w.Schedule(&exp, vc.Now()+300_000)
		for len(fires) < 40 {
			next := w.Next()
			if next > vc.Now() {
				vc.AdvanceTo(next)
			}
			w.Advance(vc.Now(), func(tm *Timer) {
				who := tm.Owner.(string)
				fires = append(fires, fire{who, vc.Now()})
				switch who {
				case "tick":
					w.Schedule(tm, tm.Deadline()+period)
				case "exp":
					w.Schedule(tm, tm.Deadline()+300_000)
				}
			})
		}
		return fires
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("virtual-clock drive diverged at fire %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Re-arming from Deadline keeps the 10 ms cadence: individual fires
	// quantize to the tick, but the error never accumulates.
	var periodic []int64
	for _, f := range a {
		if f.who == "tick" {
			periodic = append(periodic, f.at)
		}
	}
	for i := 1; i < len(periodic); i++ {
		gap := periodic[i] - periodic[i-1]
		if gap < 10_000-Tick || gap > 10_000+Tick {
			t.Fatalf("periodic cadence drifted: gap %d µs at fire %d", gap, i)
		}
	}
}

// TestCancelVsFire races Cancel calls from a second goroutine against an
// advancing wheel through the owner's lock — the usage contract: every
// wheel access serialized by the shard mutex. Run under -race this pins
// the contract's soundness; the assertion pins that a canceled timer
// never fires afterwards.
func TestCancelVsFire(t *testing.T) {
	var mu sync.Mutex
	w := New()

	const n = 512
	timers := make([]Timer, n)
	canceled := make([]bool, n)
	fired := make([]bool, n)
	for i := range timers {
		timers[i].Owner = i
		w.Schedule(&timers[i], int64(1+i*37))
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i += 3 {
			mu.Lock()
			if !fired[i] {
				w.Cancel(&timers[i])
				canceled[i] = true
			}
			mu.Unlock()
		}
	}()

	for now := int64(0); now < n*37+3*Tick; now += 97 {
		mu.Lock()
		w.Advance(now, func(tm *Timer) {
			i := tm.Owner.(int)
			if canceled[i] {
				t.Errorf("timer %d fired after cancel", i)
			}
			fired[i] = true
		})
		mu.Unlock()
	}
	<-done

	mu.Lock()
	defer mu.Unlock()
	for i := range timers {
		if !fired[i] && !canceled[i] {
			t.Errorf("timer %d neither fired nor canceled", i)
		}
	}
}

// TestScheduleCancelAllocs pins the zero-allocation contract: arming,
// rescheduling, canceling, and firing intrusive timers allocates nothing.
func TestScheduleCancelAllocs(t *testing.T) {
	w := New()
	var tms [8]Timer
	for i := range tms {
		tms[i].Owner = i // pre-boxed: small ints don't allocate, but be explicit
	}
	var now int64
	fire := func(tm *Timer) { w.Schedule(tm, tm.Deadline()+1000) }
	avg := testing.AllocsPerRun(1000, func() {
		for i := range tms {
			w.Schedule(&tms[i], now+int64(i)*700_000)
		}
		w.Cancel(&tms[3])
		now += 2_000_000
		w.Advance(now, fire)
		for i := range tms {
			w.Cancel(&tms[i])
		}
	})
	if avg != 0 {
		t.Fatalf("schedule/advance/cancel allocated %.2f per cycle, want 0", avg)
	}
}

// TestNextBoundNeverLate verifies Next's contract directly: sleeping to
// the bound and advancing there must fire a level-parked timer after at
// most a handful of cascade refinements, never sooner than its deadline.
func TestNextBoundNeverLate(t *testing.T) {
	for _, d := range []int64{50, 5_000, 400_000, 30_000_000, 1_200_000_000} {
		w := New()
		var tm Timer
		w.Schedule(&tm, d)
		now, hops := int64(0), 0
		for w.Len() > 0 {
			next := w.Next()
			if next < now {
				t.Fatalf("deadline %d: bound %d behind now %d", d, next, now)
			}
			now = next
			w.Advance(now, func(*Timer) {
				if now < d {
					t.Fatalf("deadline %d fired early at %d", d, now)
				}
			})
			if hops++; hops > 12 {
				t.Fatalf("deadline %d: %d wakeups without firing (bound too loose)", d, hops)
			}
		}
	}
}
