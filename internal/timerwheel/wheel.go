// Package timerwheel implements the hierarchical timing wheel that backs
// the transport's shared connection scheduler. One wheel serves every
// connection on a mux shard, so the per-flow cost of the protocol's four
// periodic timers (ACK, NAK, EXP, and the SYN-aligned rate tick) collapses
// from a goroutine plus runtime timer per connection to an intrusive list
// node per wakeup: Schedule and Cancel are O(1) and allocation-free, and
// advancing the wheel touches only the slots whose time has come
// (Varghese & Lauck's scheme, as used by kernel timer subsystems).
//
// The wheel is deliberately single-threaded: its owner (a pool shard, or a
// deterministic test driver) serializes all calls. That keeps the hot
// paths free of locks and lets the netem virtual clock drive it exactly
// like the wall clock does, which is what keeps the chaos harness a
// bit-identical oracle across scheduler changes.
package timerwheel

import "math"

const (
	// tickShift sets the wheel granularity: 1<<6 = 64 µs per tick. The
	// engine's finest deadline is the SYN-quantized send schedule (10 ms),
	// and inter-packet pacing below ~2 ms is handled by the worker's spin
	// pacer, so 64 µs of quantization is far below anything the wheel is
	// asked to time.
	tickShift = 6
	// slotBits gives 1<<6 = 64 slots per level.
	slotBits = 6
	// levels is the wheel hierarchy depth. Four levels of 64 slots at a
	// 64 µs tick span 64⁴ ticks ≈ 17.9 minutes; deadlines beyond that are
	// clamped to the horizon and re-sorted as they cascade down.
	levels = 4

	numSlots = 1 << slotBits
	slotMask = numSlots - 1
	// maxDelta is the farthest future, in ticks, the wheel can represent.
	maxDelta = 1 << (slotBits * levels)

	// Tick is the wheel granularity in microseconds.
	Tick = 1 << tickShift
)

// NoDeadline is returned by Next when the wheel holds no timers.
const NoDeadline = math.MaxInt64

// Timer is one schedulable deadline. It is intrusive: the wheel links the
// node itself into a slot, so arming, canceling, and firing never
// allocate. Owner carries the scheduled object (a connection, a pending
// handshake) back to the fire callback. A Timer must not be copied while
// armed, and belongs to exactly one wheel at a time.
type Timer struct {
	// Owner is opaque to the wheel; Advance hands it back on expiry.
	Owner any

	deadline   int64 // µs, absolute on the wheel's clock
	next, prev *Timer
	lvl        int8 // wheel level holding the node; -1 = due list
}

// Armed reports whether the timer is currently linked into a wheel.
func (t *Timer) Armed() bool { return t.next != nil }

// Deadline returns the absolute deadline (µs) of the last Schedule call.
func (t *Timer) Deadline() int64 { return t.deadline }

// Wheel is a four-level hierarchical timing wheel over a microsecond
// clock. The zero value is not usable; call New.
type Wheel struct {
	cur   int64 // next unprocessed tick (deadline µs >> tickShift)
	count int   // armed timers
	l0    int   // armed timers currently in level 0 (lets Advance skip empty stretches)

	// slot[l][s] is the sentinel of level l, slot s's circular list.
	slot [levels][numSlots]Timer

	// due collects timers scheduled at-or-before the wheel's processed
	// horizon; Advance fires them unconditionally. dueMin is their
	// earliest deadline, so Next can report an immediate wakeup.
	due    Timer
	dueMin int64
}

// New returns an empty wheel whose tick 0 covers deadlines in [0, 64) µs.
// Deadlines are absolute microseconds on whatever clock the caller uses
// (timing.SysClock, netem.VirtualClock); the wheel only ever compares
// them, so the origin is the clock's concern.
func New() *Wheel {
	w := &Wheel{dueMin: NoDeadline}
	for l := range w.slot {
		for s := range w.slot[l] {
			sent := &w.slot[l][s]
			sent.next, sent.prev = sent, sent
		}
	}
	w.due.next, w.due.prev = &w.due, &w.due
	return w
}

// Len returns the number of armed timers.
func (w *Wheel) Len() int { return w.count }

// Schedule arms t to fire at deadline (µs). If t is already armed — on
// this wheel — it is moved; scheduling is how callers reschedule. A
// deadline at or before the current time fires on the next Advance call.
func (w *Wheel) Schedule(t *Timer, deadline int64) {
	if t.next != nil {
		w.unlink(t)
		w.count--
	}
	t.deadline = deadline
	w.place(t)
	w.count++
}

// Cancel disarms t if armed; it is a no-op otherwise.
func (w *Wheel) Cancel(t *Timer) {
	if t.next == nil {
		return
	}
	w.unlink(t)
	w.count--
}

// place links t into the slot owed by its deadline relative to w.cur.
// Deadlines round up to the next tick, so a timer never fires before its
// deadline — except when scheduled behind the already-processed horizon
// (the due list), where it fires on the next Advance and may run up to
// Tick µs early. Owners that need exactness re-check deadlines on fire;
// the connection scheduler does, by construction (a wakeup only makes the
// state machine re-derive its own timers).
func (w *Wheel) place(t *Timer) {
	tk := (t.deadline + Tick - 1) >> tickShift
	delta := tk - w.cur
	var head *Timer
	switch {
	case delta < 1: // already due (or due this very tick)
		head = &w.due
		t.lvl = -1
		if t.deadline < w.dueMin {
			w.dueMin = t.deadline
		}
	case delta < 1<<slotBits:
		head = &w.slot[0][tk&slotMask]
		t.lvl = 0
		w.l0++
	case delta < 1<<(2*slotBits):
		head = &w.slot[1][(tk>>slotBits)&slotMask]
		t.lvl = 1
	case delta < 1<<(3*slotBits):
		head = &w.slot[2][(tk>>(2*slotBits))&slotMask]
		t.lvl = 2
	default:
		if delta >= maxDelta { // clamp to the horizon; re-sorts on cascade
			tk = w.cur + maxDelta - 1
		}
		head = &w.slot[3][(tk>>(3*slotBits))&slotMask]
		t.lvl = 3
	}
	t.prev = head.prev
	t.next = head
	head.prev.next = t
	head.prev = t
}

// unlink removes t from whichever list holds it.
func (w *Wheel) unlink(t *Timer) {
	t.prev.next = t.next
	t.next.prev = t.prev
	t.next, t.prev = nil, nil
	if t.lvl == 0 {
		w.l0--
	}
}

// Advance fires every timer whose deadline is at or before now (µs) —
// quantized to the wheel tick, so a timer can fire up to Tick-1 µs after
// its deadline, never before it (behind-horizon scheduling excepted; see
// place). fire is called for each timer in schedule order within a slot.
// fire may
// re-Schedule its own or other timers (periodic timers re-arm this way)
// and may Cancel timers that have not fired yet this call. Timers a fire
// callback schedules at-or-before now are deferred to the next Advance —
// Next will report them as immediately due.
func (w *Wheel) Advance(now int64, fire func(*Timer)) {
	// Drain the already-due list first: these were scheduled behind the
	// wheel's processed horizon and owe an immediate fire.
	if w.due.next != &w.due {
		w.expire(&w.due, fire)
		w.dueMin = NoDeadline
	}
	target := now >> tickShift
	if w.count == 0 {
		// Nothing armed: skip the tick walk, just move the horizon.
		if target >= w.cur {
			w.cur = target + 1
		}
		return
	}
	for w.cur <= target {
		idx := w.cur & slotMask
		if idx == 0 {
			// A level-0 cycle boundary: pull the covering slot of each
			// coarser level down before expiring this tick. Timers
			// re-sort toward level 0 as their deadline nears.
			w.cascade(1, (w.cur>>slotBits)&slotMask)
			if (w.cur>>slotBits)&slotMask == 0 {
				w.cascade(2, (w.cur>>(2*slotBits))&slotMask)
				if (w.cur>>(2*slotBits))&slotMask == 0 {
					w.cascade(3, (w.cur>>(3*slotBits))&slotMask)
				}
			}
		}
		if w.l0 == 0 {
			// Level 0 is empty: nothing can fire before the next cycle
			// boundary cascades coarser timers down, so hop straight
			// there instead of walking empty ticks one by one.
			nb := (w.cur &^ slotMask) + numSlots
			if nb > target+1 {
				nb = target + 1
			}
			w.cur = nb
			continue
		}
		w.expire(&w.slot[0][idx], fire)
		w.cur++
	}
}

// cascade re-places every timer in level l, slot s one cycle closer to
// firing. Re-placing clamped far-future timers keeps them riding level 3
// until their real deadline enters the wheel's span.
func (w *Wheel) cascade(l, s int64) {
	head := &w.slot[l][s]
	for head.next != head {
		t := head.next
		w.unlink(t)
		w.place(t)
	}
}

// expire unlinks the whole slot onto a private chain, then fires each
// timer. Detaching first makes re-scheduling into the same slot from a
// fire callback safe (the walk cannot loop on re-armed nodes).
func (w *Wheel) expire(head *Timer, fire func(*Timer)) {
	for head.next != head {
		t := head.next
		w.unlink(t)
		w.count--
		fire(t)
	}
}

// Next returns a conservative lower bound on the earliest fire time
// (µs): no timer fires before an Advance(now) with now ≥ the bound. The
// bound is exact for timers in level 0; for timers still parked in
// coarser levels it is the next cascade boundary, so a sleeper waking at
// the bound re-resolves a tighter one after the cascade. Returns
// NoDeadline when the wheel is empty.
func (w *Wheel) Next() int64 {
	if w.count == 0 {
		return NoDeadline
	}
	if w.due.next != &w.due {
		return w.dueMin
	}
	best := int64(NoDeadline)
	// Level 0 is exact: scan the 64 upcoming ticks in time order.
	if w.l0 > 0 {
		for i := int64(0); i < numSlots; i++ {
			tk := w.cur + i
			if head := &w.slot[0][tk&slotMask]; head.next != head {
				best = tk << tickShift
				break
			}
		}
	}
	// A timer parked in a coarser level cannot fire before the cascade
	// that pulls its slot down; that cascade runs at the slot's cycle
	// position, which bounds its fire time. A sleeper waking at such a
	// bound re-resolves a tighter one after the cascade (a handful of
	// refinement hops even for horizon-clamped deadlines).
	for l := 1; l < levels; l++ {
		shift := uint(l) * slotBits
		pos := w.cur >> shift
		for i := int64(0); i < numSlots; i++ {
			p := pos + i
			if head := &w.slot[l][p&slotMask]; head.next != head {
				ct := p << shift
				if ct < w.cur {
					// Slot's cascade already ran this cycle; its
					// residents belong to the next one.
					ct = (p + numSlots) << shift
				}
				if b := ct << tickShift; b < best {
					best = b
				}
			}
		}
	}
	return best
}
