package trace

import (
	"bytes"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

func sample(i int) PerfRecord {
	return PerfRecord{
		Flow:          int32(i),
		Label:         "udt",
		Role:          RoleSender,
		T:             int64(i) * 10_000,
		IntervalUs:    10_000,
		PeriodUs:      12.5 + float64(i),
		SendRateMbps:  960.0 / (1 + float64(i)),
		SendMbps:      900.25,
		RecvMbps:      899.75,
		BandwidthMbps: 1000,
		RTTUs:         52_000,
		FlowWindow:    4096,
		InFlight:      int32(100 + i),
		PktsSent:      int64(1000 * i),
		PktsRetrans:   int64(i),
		PktsRecv:      int64(990 * i),
		PktsDup:       1,
		ACKsSent:      int64(10 * i),
		ACKsRecv:      int64(9 * i),
		NAKsSent:      2,
		NAKsRecv:      3,
		LossDetected:  4,
		Timeouts:      0,
		SndFreezes:    1,
	}
}

func TestRingWraparound(t *testing.T) {
	g := NewRing(4)
	if g.Cap() != 4 || g.Len() != 0 {
		t.Fatalf("fresh ring: cap=%d len=%d", g.Cap(), g.Len())
	}
	if _, ok := g.Last(); ok {
		t.Fatal("Last on empty ring reported a record")
	}
	for i := 0; i < 3; i++ {
		r := sample(i)
		g.Record(&r)
	}
	snap := g.Snapshot()
	if len(snap) != 3 || snap[0].Flow != 0 || snap[2].Flow != 2 {
		t.Fatalf("partial snapshot wrong: %+v", snap)
	}
	// Push past capacity: records 3..9 land, 0..5 are overwritten.
	for i := 3; i < 10; i++ {
		r := sample(i)
		g.Record(&r)
	}
	if g.Len() != 4 || g.Total() != 10 {
		t.Fatalf("after wrap: len=%d total=%d", g.Len(), g.Total())
	}
	snap = g.Snapshot()
	want := []int32{6, 7, 8, 9}
	for i, w := range want {
		if snap[i].Flow != w {
			t.Fatalf("snapshot[%d].Flow = %d, want %d (full: %+v)", i, snap[i].Flow, w, snap)
		}
	}
	var doOrder []int32
	g.Do(func(r *PerfRecord) { doOrder = append(doOrder, r.Flow) })
	if !reflect.DeepEqual(doOrder, want) {
		t.Fatalf("Do order = %v, want %v", doOrder, want)
	}
	if last, ok := g.Last(); !ok || last.Flow != 9 {
		t.Fatalf("Last = %+v ok=%v", last, ok)
	}
	appended := g.AppendTo(nil)
	if !reflect.DeepEqual(appended, snap) {
		t.Fatalf("AppendTo != Snapshot")
	}
	g.Reset()
	if g.Len() != 0 || g.Total() != 0 {
		t.Fatalf("after Reset: len=%d total=%d", g.Len(), g.Total())
	}
}

func TestRingRecordZeroAlloc(t *testing.T) {
	g := NewRing(64)
	r := sample(1)
	var sink Sink = g // interface call, as emitters use it
	allocs := testing.AllocsPerRun(1000, func() {
		sink.Record(&r)
	})
	if allocs != 0 {
		t.Fatalf("Ring.Record allocated %.1f per call, want 0", allocs)
	}
}

func TestMultiFanOut(t *testing.T) {
	var a, b []int32
	sa := SinkFunc(func(r *PerfRecord) { a = append(a, r.Flow) })
	sb := SinkFunc(func(r *PerfRecord) { b = append(b, r.Flow) })

	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of no sinks should be nil")
	}
	// Single usable sink is returned unwrapped.
	if got := Multi(nil, sa); got == nil {
		t.Fatal("Multi(nil, sa) = nil")
	} else {
		r := sample(7)
		got.Record(&r)
		if len(a) != 1 || a[0] != 7 {
			t.Fatalf("single-sink Multi did not forward: %v", a)
		}
	}
	a = nil
	m := Multi(sa, nil, sb)
	for i := 0; i < 3; i++ {
		r := sample(i)
		m.Record(&r)
	}
	want := []int32{0, 1, 2}
	if !reflect.DeepEqual(a, want) || !reflect.DeepEqual(b, want) {
		t.Fatalf("fan-out mismatch: a=%v b=%v", a, b)
	}
}

func TestCSVEscaping(t *testing.T) {
	r := sample(0)
	r.Label = `tcp,"sack"` + "\nv2"
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []PerfRecord{r}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"tcp,""sack""`) {
		t.Fatalf("label not escaped: %q", out)
	}
	// The embedded newline makes naive line-splitting wrong; ReadCSV's
	// scanner is line-based, so round-trip only guarantees fields without
	// raw newlines. Commas and quotes must survive a round trip.
	r.Label = `tcp,"sack" v2`
	buf.Reset()
	if err := WriteCSV(&buf, []PerfRecord{r}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Label != r.Label {
		t.Fatalf("round-trip label = %q, want %q", back[0].Label, r.Label)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := make([]PerfRecord, 0, 8)
	for i := 0; i < 8; i++ {
		recs = append(recs, sample(i))
	}
	recs[3].PeriodUs = 1.0 / 3.0 // non-terminating decimal must round-trip
	recs[4].Role = RoleReceiver
	recs[5].Role = RoleFlow
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, recs) {
		t.Fatalf("CSV round trip mismatch:\n got %+v\nwant %+v", back, recs)
	}
	// Streaming sink must produce byte-identical output to WriteCSV.
	var stream bytes.Buffer
	sink := NewCSVSink(&stream)
	for i := range recs {
		sink.Record(&recs[i])
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stream.Bytes(), buf.Bytes()) {
		t.Fatal("CSVSink output differs from WriteCSV")
	}
}

func TestCSVRejectsBadInput(t *testing.T) {
	for _, in := range []string{
		"",
		"not,the,header\n",
		CSVHeader + "\n1,udt\n",                     // short row
		CSVHeader + "\nx" + strings.Repeat(",0", 23) + "\n", // bad int
	} {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("ReadCSV(%q) succeeded, want error", in)
		}
	}
}

func TestJSONLRoundFormat(t *testing.T) {
	r := sample(2)
	r.Label = `he said "hi"` // must be JSON-escaped
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, []PerfRecord{r}); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSuffix(buf.String(), "\n")
	for _, want := range []string{
		`"flow":2`, `"label":"he said \"hi\""`, `"role":"snd"`,
		`"t_us":20000`, `"recv_mbps":899.75`, `"pkts_dup":1`,
	} {
		if !strings.Contains(line, want) {
			t.Fatalf("JSONL missing %s: %s", want, line)
		}
	}
	if strings.Count(buf.String(), "\n") != 1 {
		t.Fatalf("want exactly one line, got %q", buf.String())
	}
	var stream bytes.Buffer
	js := NewJSONLSink(&stream)
	js.Record(&r)
	if err := js.Flush(); err != nil {
		t.Fatal(err)
	}
	if stream.String() != buf.String() {
		t.Fatal("JSONLSink output differs from WriteJSONL")
	}
}

func TestGoodputSeries(t *testing.T) {
	recs := []PerfRecord{sample(0), sample(1), sample(2), sample(3)}
	recs[0].Role, recs[0].RecvMbps = RoleSender, 1
	recs[1].Role, recs[1].RecvMbps = RoleReceiver, 2
	recs[2].Role, recs[2].RecvMbps = RoleFlow, 3
	recs[3].Role, recs[3].RecvMbps = RoleSender, 4
	if got := GoodputSeries(recs); !reflect.DeepEqual(got, []float64{2, 3}) {
		t.Fatalf("GoodputSeries = %v", got)
	}
	snd := SenderSeries(recs)
	if len(snd) != 3 || snd[0].RecvMbps != 1 || snd[1].RecvMbps != 3 || snd[2].RecvMbps != 4 {
		t.Fatalf("SenderSeries = %+v", snd)
	}
}

func TestHTTPHandler(t *testing.T) {
	recs := []PerfRecord{sample(0), sample(1)}
	h := Handler(func() []PerfRecord { return recs })
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/perf", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	body := rr.Body.String()
	if !strings.HasPrefix(body, `[{"flow":0`) || !strings.Contains(body, `},{"flow":1`) || !strings.HasSuffix(body, "}]") {
		t.Fatalf("body = %s", body)
	}
}
