package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSVHeader is the column header row written by the CSV exporters. Column
// order matches AppendCSVRow and the field-by-field mapping documented in
// EXPERIMENTS.md ("flow_trace CSV columns").
const CSVHeader = "flow,label,role,t_us,interval_us,period_us,send_rate_mbps,send_mbps,recv_mbps,bandwidth_mbps,rtt_us,flow_window,in_flight,pkts_sent,pkts_retrans,pkts_recv,pkts_dup,acks_sent,acks_recv,naks_sent,naks_recv,loss_detected,timeouts,snd_freezes"

// appendCSVString appends s as a CSV field, quoting it only when it contains
// a comma, quote, or line break (RFC 4180 minimal quoting).
func appendCSVString(dst []byte, s string) []byte {
	if !strings.ContainsAny(s, ",\"\r\n") {
		return append(dst, s...)
	}
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			dst = append(dst, '"', '"')
		} else {
			dst = append(dst, s[i])
		}
	}
	return append(dst, '"')
}

// appendFloat appends v in Go's shortest round-trippable decimal form
// (strconv 'g', precision -1), so exported traces are deterministic and
// parse back to exactly the recorded value.
func appendFloat(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

// AppendCSVRow appends r as one CSV row (no trailing newline) to dst and
// returns the extended slice. Column order matches CSVHeader.
func AppendCSVRow(dst []byte, r *PerfRecord) []byte {
	dst = strconv.AppendInt(dst, int64(r.Flow), 10)
	dst = append(dst, ',')
	dst = appendCSVString(dst, r.Label)
	dst = append(dst, ',')
	dst = appendCSVString(dst, string(r.Role))
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, r.T, 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, r.IntervalUs, 10)
	dst = append(dst, ',')
	dst = appendFloat(dst, r.PeriodUs)
	dst = append(dst, ',')
	dst = appendFloat(dst, r.SendRateMbps)
	dst = append(dst, ',')
	dst = appendFloat(dst, r.SendMbps)
	dst = append(dst, ',')
	dst = appendFloat(dst, r.RecvMbps)
	dst = append(dst, ',')
	dst = appendFloat(dst, r.BandwidthMbps)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, r.RTTUs, 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(r.FlowWindow), 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(r.InFlight), 10)
	for _, v := range [...]int64{
		r.PktsSent, r.PktsRetrans, r.PktsRecv, r.PktsDup,
		r.ACKsSent, r.ACKsRecv, r.NAKsSent, r.NAKsRecv,
		r.LossDetected, r.Timeouts, r.SndFreezes,
	} {
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, v, 10)
	}
	return dst
}

// WriteCSV writes a header row followed by one row per record.
func WriteCSV(w io.Writer, recs []PerfRecord) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(CSVHeader)
	bw.WriteByte('\n')
	var row []byte
	for i := range recs {
		row = AppendCSVRow(row[:0], &recs[i])
		bw.Write(row)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// CSVSink streams records to an io.Writer as CSV rows as they arrive, for
// live capture without buffering a history in memory. Create with
// NewCSVSink and call Flush (or Close) when done.
type CSVSink struct {
	w   *bufio.Writer
	row []byte
	err error
}

// NewCSVSink returns a streaming CSV sink that immediately writes the
// header row to w.
func NewCSVSink(w io.Writer) *CSVSink {
	s := &CSVSink{w: bufio.NewWriter(w)}
	s.w.WriteString(CSVHeader)
	s.w.WriteByte('\n')
	return s
}

// Record writes r as one CSV row. Write errors are sticky and reported by
// Flush.
func (s *CSVSink) Record(r *PerfRecord) {
	if s.err != nil {
		return
	}
	s.row = AppendCSVRow(s.row[:0], r)
	if _, err := s.w.Write(s.row); err != nil {
		s.err = err
		return
	}
	s.w.WriteByte('\n')
}

// Flush flushes buffered rows and returns the first error encountered.
func (s *CSVSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// ReadCSV parses a trace CSV previously produced by WriteCSV or CSVSink
// (header row required) back into records.
func ReadCSV(r io.Reader) ([]PerfRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty CSV input")
	}
	if got := strings.TrimRight(sc.Text(), "\r"); got != CSVHeader {
		return nil, fmt.Errorf("trace: unexpected CSV header %q", got)
	}
	var recs []PerfRecord
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r")
		if text == "" {
			continue
		}
		fields, err := splitCSV(text)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		rec, err := parseRecord(fields)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// splitCSV splits one CSV line into fields, handling RFC 4180 quoting.
func splitCSV(line string) ([]string, error) {
	var fields []string
	for i := 0; ; {
		if i < len(line) && line[i] == '"' {
			var b strings.Builder
			i++
			for {
				j := strings.IndexByte(line[i:], '"')
				if j < 0 {
					return nil, fmt.Errorf("unterminated quoted field")
				}
				b.WriteString(line[i : i+j])
				i += j + 1
				if i < len(line) && line[i] == '"' {
					b.WriteByte('"')
					i++
					continue
				}
				break
			}
			fields = append(fields, b.String())
			if i == len(line) {
				return fields, nil
			}
			if line[i] != ',' {
				return nil, fmt.Errorf("garbage after quoted field")
			}
			i++
		} else {
			j := strings.IndexByte(line[i:], ',')
			if j < 0 {
				fields = append(fields, line[i:])
				return fields, nil
			}
			fields = append(fields, line[i:i+j])
			i += j + 1
		}
	}
}

func parseRecord(f []string) (PerfRecord, error) {
	const nCols = 24
	var r PerfRecord
	if len(f) != nCols {
		return r, fmt.Errorf("got %d fields, want %d", len(f), nCols)
	}
	ints := func(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }
	var err error
	geti := func(s string) int64 {
		if err != nil {
			return 0
		}
		var v int64
		v, err = ints(s)
		return v
	}
	getf := func(s string) float64 {
		if err != nil {
			return 0
		}
		var v float64
		v, err = strconv.ParseFloat(s, 64)
		return v
	}
	r.Flow = int32(geti(f[0]))
	r.Label = f[1]
	r.Role = Role(f[2])
	r.T = geti(f[3])
	r.IntervalUs = geti(f[4])
	r.PeriodUs = getf(f[5])
	r.SendRateMbps = getf(f[6])
	r.SendMbps = getf(f[7])
	r.RecvMbps = getf(f[8])
	r.BandwidthMbps = getf(f[9])
	r.RTTUs = geti(f[10])
	r.FlowWindow = int32(geti(f[11]))
	r.InFlight = int32(geti(f[12]))
	r.PktsSent = geti(f[13])
	r.PktsRetrans = geti(f[14])
	r.PktsRecv = geti(f[15])
	r.PktsDup = geti(f[16])
	r.ACKsSent = geti(f[17])
	r.ACKsRecv = geti(f[18])
	r.NAKsSent = geti(f[19])
	r.NAKsRecv = geti(f[20])
	r.LossDetected = geti(f[21])
	r.Timeouts = geti(f[22])
	r.SndFreezes = geti(f[23])
	return r, err
}

// AppendJSONLine appends r as one JSON object (no trailing newline) to dst
// and returns the extended slice. Field names match the CSV column names.
func AppendJSONLine(dst []byte, r *PerfRecord) []byte {
	dst = append(dst, `{"flow":`...)
	dst = strconv.AppendInt(dst, int64(r.Flow), 10)
	dst = append(dst, `,"label":`...)
	dst = strconv.AppendQuote(dst, r.Label)
	dst = append(dst, `,"role":`...)
	dst = strconv.AppendQuote(dst, string(r.Role))
	dst = append(dst, `,"t_us":`...)
	dst = strconv.AppendInt(dst, r.T, 10)
	dst = append(dst, `,"interval_us":`...)
	dst = strconv.AppendInt(dst, r.IntervalUs, 10)
	dst = append(dst, `,"period_us":`...)
	dst = appendFloat(dst, r.PeriodUs)
	dst = append(dst, `,"send_rate_mbps":`...)
	dst = appendFloat(dst, r.SendRateMbps)
	dst = append(dst, `,"send_mbps":`...)
	dst = appendFloat(dst, r.SendMbps)
	dst = append(dst, `,"recv_mbps":`...)
	dst = appendFloat(dst, r.RecvMbps)
	dst = append(dst, `,"bandwidth_mbps":`...)
	dst = appendFloat(dst, r.BandwidthMbps)
	dst = append(dst, `,"rtt_us":`...)
	dst = strconv.AppendInt(dst, r.RTTUs, 10)
	dst = append(dst, `,"flow_window":`...)
	dst = strconv.AppendInt(dst, int64(r.FlowWindow), 10)
	dst = append(dst, `,"in_flight":`...)
	dst = strconv.AppendInt(dst, int64(r.InFlight), 10)
	for _, kv := range [...]struct {
		k string
		v int64
	}{
		{"pkts_sent", r.PktsSent}, {"pkts_retrans", r.PktsRetrans},
		{"pkts_recv", r.PktsRecv}, {"pkts_dup", r.PktsDup},
		{"acks_sent", r.ACKsSent}, {"acks_recv", r.ACKsRecv},
		{"naks_sent", r.NAKsSent}, {"naks_recv", r.NAKsRecv},
		{"loss_detected", r.LossDetected}, {"timeouts", r.Timeouts},
		{"snd_freezes", r.SndFreezes},
	} {
		dst = append(dst, ',', '"')
		dst = append(dst, kv.k...)
		dst = append(dst, '"', ':')
		dst = strconv.AppendInt(dst, kv.v, 10)
	}
	return append(dst, '}')
}

// WriteJSONL writes recs as JSON Lines: one object per record per line.
func WriteJSONL(w io.Writer, recs []PerfRecord) error {
	bw := bufio.NewWriter(w)
	var row []byte
	for i := range recs {
		row = AppendJSONLine(row[:0], &recs[i])
		bw.Write(row)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// JSONLSink streams records to w as JSON Lines as they arrive.
type JSONLSink struct {
	w   *bufio.Writer
	row []byte
	err error
}

// NewJSONLSink returns a streaming JSON Lines sink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Record writes r as one JSON line. Write errors are sticky and reported by
// Flush.
func (s *JSONLSink) Record(r *PerfRecord) {
	if s.err != nil {
		return
	}
	s.row = AppendJSONLine(s.row[:0], r)
	if _, err := s.w.Write(s.row); err != nil {
		s.err = err
		return
	}
	s.w.WriteByte('\n')
}

// Flush flushes buffered rows and returns the first error encountered.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}
