package trace

import (
	"expvar"
	"net/http"
)

// Handler returns an http.Handler serving the records produced by snap as a
// JSON array (one PerfRecord object per element, same field names as the
// JSONL exporter). snap is called per request and would typically be a
// lock-protected ring snapshot, e.g. the Conn.Perf method of a connection.
func Handler(snap func() []PerfRecord) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(marshalRecords(snap()))
	})
}

// Publish registers snap under name on the process-wide expvar registry, so
// the history shows up at /debug/vars alongside the standard runtime vars.
// Like expvar.Publish it panics if name is already registered; call it at
// most once per name per process.
func Publish(name string, snap func() []PerfRecord) {
	expvar.Publish(name, expvar.Func(func() any {
		// expvar marshals the returned value with encoding/json, so this
		// view uses Go field names rather than the CSV/JSONL snake_case.
		return snap()
	}))
}

// marshalRecords renders recs as a JSON array using the same hand-rolled,
// deterministic encoder as the JSONL exporter.
func marshalRecords(recs []PerfRecord) []byte {
	out := []byte{'['}
	for i := range recs {
		if i > 0 {
			out = append(out, ',')
		}
		out = AppendJSONLine(out, &recs[i])
	}
	return append(out, ']')
}
