package trace

// Ring is a fixed-capacity circular buffer of PerfRecords. All storage is
// allocated up front by NewRing; Record copies the sample into the next slot
// and, once full, overwrites the oldest — so steady-state recording performs
// zero heap allocations and a long-running connection keeps a bounded,
// most-recent window of its history.
//
// Ring is not safe for concurrent use; the owning connection serializes
// Record and snapshot calls under its own lock.
type Ring struct {
	buf   []PerfRecord
	next  int   // index of the slot the next Record will fill
	count int   // number of valid records, ≤ len(buf)
	total int64 // lifetime number of Record calls (≥ count once wrapped)
}

// NewRing returns a ring holding at most n records. n ≤ 0 is clamped to 1.
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 1
	}
	return &Ring{buf: make([]PerfRecord, n)}
}

// Record copies r into the ring, overwriting the oldest record when full.
func (g *Ring) Record(r *PerfRecord) {
	g.buf[g.next] = *r
	g.next++
	if g.next == len(g.buf) {
		g.next = 0
	}
	if g.count < len(g.buf) {
		g.count++
	}
	g.total++
}

// Len reports the number of records currently held.
func (g *Ring) Len() int { return g.count }

// Cap reports the ring's fixed capacity.
func (g *Ring) Cap() int { return len(g.buf) }

// Total reports the lifetime number of records written, including any that
// have since been overwritten.
func (g *Ring) Total() int64 { return g.total }

// Snapshot returns the held records ordered oldest to newest. It allocates
// a fresh slice; the ring is unchanged.
func (g *Ring) Snapshot() []PerfRecord {
	out := make([]PerfRecord, g.count)
	g.copyTo(out)
	return out
}

// AppendTo appends the held records, oldest to newest, to dst and returns
// the extended slice. With pre-grown dst capacity it does not allocate.
func (g *Ring) AppendTo(dst []PerfRecord) []PerfRecord {
	n := len(dst)
	dst = append(dst, make([]PerfRecord, g.count)...)
	g.copyTo(dst[n:])
	return dst
}

func (g *Ring) copyTo(out []PerfRecord) {
	if g.count < len(g.buf) {
		copy(out, g.buf[:g.count])
		return
	}
	n := copy(out, g.buf[g.next:])
	copy(out[n:], g.buf[:g.next])
}

// Do calls fn on each held record, oldest to newest, without copying. The
// pointer is only valid during the call.
func (g *Ring) Do(fn func(*PerfRecord)) {
	start := 0
	if g.count == len(g.buf) {
		start = g.next
	}
	for i := 0; i < g.count; i++ {
		fn(&g.buf[(start+i)%len(g.buf)])
	}
}

// Last returns a copy of the most recent record and whether one exists.
func (g *Ring) Last() (PerfRecord, bool) {
	if g.count == 0 {
		return PerfRecord{}, false
	}
	i := g.next - 1
	if i < 0 {
		i = len(g.buf) - 1
	}
	return g.buf[i], true
}

// Reset empties the ring without releasing its storage.
func (g *Ring) Reset() {
	g.next, g.count, g.total = 0, 0, 0
}
