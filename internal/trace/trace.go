// Package trace is the perfmon-style telemetry layer shared by the real UDP
// transport and the network simulator — the observability counterpart of
// real UDT's perfmon API. The protocol engine (internal/core) and the TCP
// model (internal/tcpsim) emit one PerfRecord per sampling interval (a
// SYN-multiple for UDT); sinks consume them.
//
// The package is deliberately dependency-free in both directions: it imports
// nothing from the protocol packages, and the emitters only know the Sink
// interface. Sinks designed for the hot path (Ring, Multi over them) record
// with zero steady-state heap allocations, so telemetry can stay attached to
// the zero-allocation send path gated by TestSenderPathAllocs. Exporters
// (CSV, JSONL, the expvar/HTTP endpoint) turn recorded histories into the
// time-series files behind the paper's Fig. 2–5.
package trace

// Role tags which side of a connection a PerfRecord describes.
type Role string

// Record roles. A unidirectional simulated flow traces its source engine as
// RoleSender (rate-control state) and its sink engine as RoleReceiver
// (goodput); a real duplex connection plays both roles at once and uses
// RoleFlow, as does the TCP model's combined per-flow sampler.
const (
	RoleSender   Role = "snd"
	RoleReceiver Role = "rcv"
	RoleFlow     Role = "flow"
)

// PerfRecord is one telemetry sample: a point-in-time snapshot of a
// connection's rate-control state plus event-counter deltas over the
// interval since the previous sample. All times are microseconds, all rates
// megabits per second, matching the paper's units.
//
// Emitters reuse one record and pass a pointer; sinks must copy what they
// keep and must not retain the pointer past Record's return.
type PerfRecord struct {
	// Flow identifies the connection (experiment flow id; 0 for a real
	// transport connection).
	Flow int32
	// Label names the protocol or variant producing the record ("udt",
	// "tcp-sack", ...). Free-form; exporters escape it.
	Label string
	// Role tags the side of the connection being sampled.
	Role Role
	// CCName names the congestion controller driving the sender ("native",
	// "ctcp", ...); empty for protocols without pluggable control.
	CCName string

	// T is the sample time in µs on the emitting clock (simulated or
	// monotonic real time).
	T int64
	// IntervalUs is the time covered since the previous sample, µs.
	IntervalUs int64

	// PeriodUs is the current packet sending period P in µs (0 = unpaced
	// slow start; meaningless for window-controlled protocols).
	PeriodUs float64
	// SendRateMbps is the paced target sending rate implied by PeriodUs.
	SendRateMbps float64
	// SendMbps is the measured wire send rate over the interval (new data
	// plus retransmissions).
	SendMbps float64
	// RecvMbps is the measured fresh-data goodput over the interval.
	RecvMbps float64
	// BandwidthMbps is the estimated link capacity B from receiver-based
	// packet-pair probing (§3.4); 0 before the estimator converges.
	BandwidthMbps float64
	// RTTUs is the smoothed round-trip time estimate, µs.
	RTTUs int64
	// FlowWindow is the effective send window in packets (for TCP, the
	// congestion window).
	FlowWindow int32
	// InFlight is the number of unacknowledged packets.
	InFlight int32
	// Cwnd is the controller's live congestion window in packets (the
	// native law only enforces it during slow start; window-based laws
	// derive their pacing period from it).
	Cwnd float64

	// Cumulative engine counters at sample time.
	PktsSent     int64
	PktsRetrans  int64
	PktsRecv     int64
	PktsDup      int64
	ACKsSent     int64
	ACKsRecv     int64
	NAKsSent     int64
	NAKsRecv     int64
	LossDetected int64
	Timeouts     int64
	SndFreezes   int64
}

// Sink consumes telemetry samples. Record is called on the emitter's thread
// (under the connection lock on the real transport, on the simulator thread
// in simulations) and must not block; implementations meant for the data
// hot path must not allocate in steady state.
type Sink interface {
	Record(*PerfRecord)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(*PerfRecord)

// Record calls f.
func (f SinkFunc) Record(r *PerfRecord) { f(r) }

// multi fans one record out to several sinks in order.
type multi []Sink

// Multi returns a sink that forwards every record to each non-nil sink in
// order. With zero or one usable sink it returns nil or that sink directly,
// so wrapping is free in the common case.
func Multi(sinks ...Sink) Sink {
	var m multi
	for _, s := range sinks {
		if s != nil {
			m = append(m, s)
		}
	}
	switch len(m) {
	case 0:
		return nil
	case 1:
		return m[0]
	}
	return m
}

// Record forwards r to every sink.
func (m multi) Record(r *PerfRecord) {
	for _, s := range m {
		s.Record(r)
	}
}

// GoodputSeries extracts the received-goodput time series (Mb/s per sample)
// from a record slice: the RecvMbps of every RoleReceiver or RoleFlow
// record, in order. This is the series the paper's throughput-over-time
// plots and the fairness/stability indices are computed from.
func GoodputSeries(recs []PerfRecord) []float64 {
	var out []float64
	for i := range recs {
		if recs[i].Role == RoleReceiver || recs[i].Role == RoleFlow {
			out = append(out, recs[i].RecvMbps)
		}
	}
	return out
}

// SenderSeries extracts the sender-side rate-control trace from a record
// slice: every RoleSender or RoleFlow record, in order. Useful for plotting
// period/window/bandwidth evolution without the interleaved receiver rows.
func SenderSeries(recs []PerfRecord) []PerfRecord {
	var out []PerfRecord
	for i := range recs {
		if recs[i].Role == RoleSender || recs[i].Role == RoleFlow {
			out = append(out, recs[i])
		}
	}
	return out
}
