// Package mux demultiplexes many UDT flows over one datagram socket.
//
// The paper's engine assumes one UDP socket per flow; later UDT versions
// (and QUIC) multiplex flows over a shared socket by carrying a destination
// socket ID in every packet. This package is the demultiplexing core of
// that design, kept compatible with the paper-era wire format: between two
// multiplexing endpoints every datagram is prefixed with a 4-byte
// big-endian destination socket ID ahead of the unchanged UDT packet, and
// the prefix is only used after both sides have advertised a socket ID in
// the extended handshake (packet.Handshake.SockID). An old peer never sees
// or sends the prefix; its bare datagrams fall back to per-peer-address
// demultiplexing.
//
// A received datagram is classified by Dispatch in this order:
//
//  1. shorter than the 4-byte prefix → counted as a short datagram;
//  2. first word is a valid socket ID (IDValid) → sharded flow-table
//     lookup; a hit delivers the datagram with the prefix stripped, a
//     miss counts an unknown destination;
//  3. a bare handshake control packet → the handshake handler (connection
//     setup is always sent bare, so it reaches the handler on both new
//     and old peers);
//  4. anything else → per-peer-address table; a miss counts an unknown
//     destination.
//
// Step 2 cannot misfire on bare traffic because the socket-ID space is
// disjoint from the first words of paper-era packets: a data packet's
// first word has the top bit clear, and a control packet's type field —
// bits 16..30 — never exceeds packet.TypeMessageDrop (0x7). IDValid
// therefore requires the top bit set and a type-field value above 0x7,
// and MakeID forces any random word into that space.
//
// The socket-ID table is sharded (16 shards selected by FNV-1a over the
// ID bytes, one RWMutex each) so the per-packet lookup on a busy socket
// does not serialize across flows. The ID path performs no allocation —
// the property BenchmarkMuxDemux pins.
package mux

import (
	"encoding/binary"
	"net"
	"sync"
	"sync/atomic"

	"udt/internal/packet"
)

// DestPrefix is the size in bytes of the destination-socket-ID prefix
// carried ahead of every UDT packet between multiplexing endpoints.
const DestPrefix = 4

// Flow consumes datagrams demultiplexed to one endpoint. The buffer is
// only valid for the duration of the call (the reader reuses it), exactly
// like the engine's own datagram handler contract.
type Flow interface {
	HandleDatagram(raw []byte)
}

// IDValid reports whether id lies in the socket-ID space: top bit set and
// the control-type bits (16..30) above every real control type, so a
// prefixed datagram's first word can never be confused with the first
// word of a bare data or control packet.
func IDValid(id int32) bool {
	u := uint32(id)
	return u&(1<<31) != 0 && (u>>16)&0x7FFF > uint32(packet.TypeMessageDrop)
}

// MakeID forces a random word into the valid socket-ID space (see IDValid).
func MakeID(raw int32) int32 {
	u := uint32(raw) | 1<<31
	if (u>>16)&0x7FFF <= uint32(packet.TypeMessageDrop) {
		u |= 1 << 19
	}
	return int32(u)
}

// PutDest stamps the destination socket ID into the first DestPrefix bytes
// of dst.
func PutDest(dst []byte, id int32) {
	binary.BigEndian.PutUint32(dst, uint32(id))
}

const numShards = 16

// shard is one lock-striped slice of the socket-ID table, padded out to a
// cache line so neighbouring shards' locks do not false-share.
type shard struct {
	mu    sync.RWMutex
	flows map[int32]Flow
	_     [24]byte
}

// Core is the demultiplexer for one shared socket: a sharded socket-ID
// table, a peer-address fallback table for bare (old-peer or
// pre-handshake) traffic, and drop counters. All methods are safe for
// concurrent use; Dispatch is called from the socket's read loop while
// flows register and unregister from other goroutines.
type Core struct {
	handshake func(raw []byte, from net.Addr)

	shards [numShards]shard

	addrMu sync.RWMutex
	byAddr map[string]Flow

	unknownDest   atomic.Uint64
	shortDatagram atomic.Uint64
}

// NewCore builds a demultiplexer. handshake receives every bare handshake
// control packet (it may be nil to ignore them); it runs on the read-loop
// goroutine and must not retain raw.
func NewCore(handshake func(raw []byte, from net.Addr)) *Core {
	c := &Core{handshake: handshake, byAddr: make(map[string]Flow)}
	for i := range c.shards {
		c.shards[i].flows = make(map[int32]Flow)
	}
	return c
}

// shardOf selects the lock stripe for a socket ID: FNV-1a over its four
// bytes, masked to the shard count.
func shardOf(id int32) int {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	x := uint32(id)
	for i := 0; i < 4; i++ {
		h ^= x & 0xFF
		h *= prime
		x >>= 8
	}
	return int(h & (numShards - 1))
}

// Dispatch classifies one received datagram and delivers it (see the
// package comment for the order). raw is only valid for the duration of
// the call.
func (c *Core) Dispatch(raw []byte, from net.Addr) {
	if len(raw) < DestPrefix {
		c.shortDatagram.Add(1)
		return
	}
	w0 := binary.BigEndian.Uint32(raw)
	if id := int32(w0); IDValid(id) {
		if len(raw) < DestPrefix+packet.DataHeaderSize {
			// A prefix with no room for even a data header behind it.
			c.shortDatagram.Add(1)
			return
		}
		s := &c.shards[shardOf(id)]
		s.mu.RLock()
		f := s.flows[id]
		s.mu.RUnlock()
		if f == nil {
			c.unknownDest.Add(1)
			return
		}
		f.HandleDatagram(raw[DestPrefix:])
		return
	}
	if packet.IsHandshake(raw) {
		if c.handshake != nil {
			c.handshake(raw, from)
		}
		return
	}
	c.addrMu.RLock()
	f := c.byAddr[from.String()]
	c.addrMu.RUnlock()
	if f == nil {
		c.unknownDest.Add(1)
		return
	}
	f.HandleDatagram(raw)
}

// AllocID draws random words from rand until one lands on an unused socket
// ID, registers f under it, and returns the ID.
func (c *Core) AllocID(rand func() int32, f Flow) int32 {
	for {
		id := MakeID(rand())
		s := &c.shards[shardOf(id)]
		s.mu.Lock()
		if _, used := s.flows[id]; !used {
			s.flows[id] = f
			s.mu.Unlock()
			return id
		}
		s.mu.Unlock()
	}
}

// Register binds f to an explicitly chosen socket ID, for callers that
// assign IDs deterministically (the chaos harness). It reports false if
// the ID is invalid or already bound.
func (c *Core) Register(id int32, f Flow) bool {
	if !IDValid(id) {
		return false
	}
	s := &c.shards[shardOf(id)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, used := s.flows[id]; used {
		return false
	}
	s.flows[id] = f
	return true
}

// Unregister removes the socket-ID binding; subsequent datagrams for it
// count as unknown destinations.
func (c *Core) Unregister(id int32) {
	s := &c.shards[shardOf(id)]
	s.mu.Lock()
	delete(s.flows, id)
	s.mu.Unlock()
}

// RegisterAddr binds f as the bare-traffic flow for a peer address key
// (net.Addr.String() form), replacing any previous binding.
func (c *Core) RegisterAddr(key string, f Flow) {
	c.addrMu.Lock()
	c.byAddr[key] = f
	c.addrMu.Unlock()
}

// UnregisterAddr removes a peer-address binding, but only while it still
// points at f — a flow tearing down must not evict the replacement that
// took over its address.
func (c *Core) UnregisterAddr(key string, f Flow) {
	c.addrMu.Lock()
	if c.byAddr[key] == f {
		delete(c.byAddr, key)
	}
	c.addrMu.Unlock()
}

// LookupAddr returns the bare-traffic flow bound to a peer address key,
// or nil.
func (c *Core) LookupAddr(key string) Flow {
	c.addrMu.RLock()
	f := c.byAddr[key]
	c.addrMu.RUnlock()
	return f
}

// Flows returns the number of socket-ID-bound flows.
func (c *Core) Flows() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.flows)
		s.mu.RUnlock()
	}
	return n
}

// Counters returns the running totals of datagrams dropped because the
// destination socket ID (or, for bare traffic, the peer address) was
// unknown, and of datagrams too short to classify.
func (c *Core) Counters() (unknownDest, shortDatagram uint64) {
	return c.unknownDest.Load(), c.shortDatagram.Load()
}
