package mux

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"

	"udt/internal/packet"
)

// recFlow records delivered datagram lengths and first bytes.
type recFlow struct {
	mu    sync.Mutex
	count int
	last  []byte
}

func (f *recFlow) HandleDatagram(raw []byte) {
	f.mu.Lock()
	f.count++
	f.last = append(f.last[:0], raw...)
	f.mu.Unlock()
}

func (f *recFlow) snapshot() (int, []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.count, append([]byte(nil), f.last...)
}

var testAddr net.Addr = &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9000}

// dataPacket builds a bare data packet with the given seq and payload.
func dataPacket(t testing.TB, seq int32, payload string) []byte {
	t.Helper()
	buf := make([]byte, packet.DataHeaderSize+len(payload))
	n, err := packet.EncodeData(buf, &packet.Data{Seq: seq, Payload: []byte(payload)})
	if err != nil {
		t.Fatal(err)
	}
	return buf[:n]
}

// prefixed wraps a bare packet with a destination-socket-ID prefix.
func prefixed(id int32, bare []byte) []byte {
	out := make([]byte, DestPrefix+len(bare))
	PutDest(out, id)
	copy(out[DestPrefix:], bare)
	return out
}

func TestIDValid(t *testing.T) {
	cases := []struct {
		id   uint32
		want bool
	}{
		{0, false},                  // data packet, seq 0
		{0x7FFFFFFF, false},         // data packet, max seq
		{1 << 31, false},            // bare handshake first word
		{1<<31 | 0x00070000, false}, // message-drop control, highest real type
		{1<<31 | 0x00080000, true},  // first word past the control types
		{1<<31 | 0x7FFF0000, true},  // top of the type field
		{0x00080000, false},         // type bits fine but top bit clear
		{1<<31 | 0x00080001, true},  // low bits are free
		{1<<31 | 0x0008FFFF, true},  // low bits are free
	}
	for _, c := range cases {
		if got := IDValid(int32(c.id)); got != c.want {
			t.Errorf("IDValid(%#x) = %v, want %v", c.id, got, c.want)
		}
	}
	// MakeID lands every word in the valid space, and bare first words
	// never land there.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		id := MakeID(int32(rng.Uint32()))
		if !IDValid(id) {
			t.Fatalf("MakeID produced invalid ID %#x", uint32(id))
		}
	}
	for ct := packet.TypeHandshake; ct <= packet.TypeMessageDrop; ct++ {
		w0 := uint32(1<<31) | uint32(ct)<<16
		if IDValid(int32(w0)) {
			t.Errorf("control type %v first word %#x classified as socket ID", ct, w0)
		}
	}
}

func TestDispatchOrder(t *testing.T) {
	var hsCount int
	var hsFrom net.Addr
	c := NewCore(func(raw []byte, from net.Addr) { hsCount++; hsFrom = from })

	idFlow := &recFlow{}
	id := c.AllocID(rand.New(rand.NewSource(2)).Int31, idFlow)
	if !IDValid(id) {
		t.Fatalf("AllocID returned invalid ID %#x", uint32(id))
	}
	addrFlow := &recFlow{}
	c.RegisterAddr(testAddr.String(), addrFlow)

	// 1. Short datagrams are counted, never delivered.
	c.Dispatch([]byte{1, 2, 3}, testAddr)
	if _, short := c.Counters(); short != 1 {
		t.Fatalf("short counter = %d, want 1", short)
	}

	// 2. A valid prefix with a registered flow delivers the bare packet.
	bare := dataPacket(t, 7, "hello")
	c.Dispatch(prefixed(id, bare), testAddr)
	if n, last := idFlow.snapshot(); n != 1 || string(last) != string(bare) {
		t.Fatalf("ID flow got %d datagrams, last %q; want 1 × %q", n, last, bare)
	}

	// A valid prefix with a truncated packet behind it is short, not unknown.
	c.Dispatch(prefixed(id, nil), testAddr)
	if _, short := c.Counters(); short != 2 {
		t.Fatalf("short counter = %d, want 2", short)
	}

	// An unknown ID is counted, not routed to the addr table.
	other := MakeID(id + 12345)
	if other == id {
		other = MakeID(other + 1)
	}
	c.Dispatch(prefixed(other, bare), testAddr)
	if unknown, _ := c.Counters(); unknown != 1 {
		t.Fatalf("unknown counter = %d, want 1", unknown)
	}
	if n, _ := addrFlow.snapshot(); n != 0 {
		t.Fatal("unknown-ID datagram leaked into the addr table")
	}

	// 3. Bare handshakes reach the handler even with an addr flow bound.
	hsBuf := make([]byte, 64)
	hn, err := packet.EncodeHandshake(hsBuf, &packet.Handshake{Version: packet.Version, ReqType: 1, ConnID: 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Dispatch(hsBuf[:hn], testAddr)
	if hsCount != 1 || hsFrom != testAddr {
		t.Fatalf("handshake handler count=%d from=%v", hsCount, hsFrom)
	}
	if n, _ := addrFlow.snapshot(); n != 0 {
		t.Fatal("handshake leaked into the addr table")
	}

	// 4. Bare non-handshake traffic goes to the addr table.
	c.Dispatch(bare, testAddr)
	if n, last := addrFlow.snapshot(); n != 1 || string(last) != string(bare) {
		t.Fatalf("addr flow got %d datagrams, last %q; want 1 × %q", n, last, bare)
	}
	// Unknown address → counted.
	stranger := &net.UDPAddr{IP: net.IPv4(10, 0, 0, 9), Port: 1}
	c.Dispatch(bare, stranger)
	if unknown, _ := c.Counters(); unknown != 2 {
		t.Fatalf("unknown counter = %d, want 2", unknown)
	}

	// Unregister closes both routes.
	c.Unregister(id)
	c.UnregisterAddr(testAddr.String(), addrFlow)
	c.Dispatch(prefixed(id, bare), testAddr)
	c.Dispatch(bare, testAddr)
	if unknown, _ := c.Counters(); unknown != 4 {
		t.Fatalf("unknown counter after unregister = %d, want 4", unknown)
	}
	if c.Flows() != 0 {
		t.Fatalf("Flows() = %d after unregister", c.Flows())
	}
}

func TestUnregisterAddrGuard(t *testing.T) {
	c := NewCore(nil)
	old, repl := &recFlow{}, &recFlow{}
	key := testAddr.String()
	c.RegisterAddr(key, old)
	c.RegisterAddr(key, repl) // replacement takes over the address
	c.UnregisterAddr(key, old)
	if c.LookupAddr(key) != repl {
		t.Fatal("stale UnregisterAddr evicted the replacement flow")
	}
	c.UnregisterAddr(key, repl)
	if c.LookupAddr(key) != nil {
		t.Fatal("UnregisterAddr left the binding in place")
	}
}

func TestAllocIDUnique(t *testing.T) {
	c := NewCore(nil)
	rng := rand.New(rand.NewSource(3))
	seen := make(map[int32]bool)
	for i := 0; i < 5000; i++ {
		id := c.AllocID(rng.Int31, &recFlow{})
		if !IDValid(id) {
			t.Fatalf("invalid ID %#x", uint32(id))
		}
		if seen[id] {
			t.Fatalf("duplicate ID %#x", uint32(id))
		}
		seen[id] = true
	}
	if c.Flows() != 5000 {
		t.Fatalf("Flows() = %d, want 5000", c.Flows())
	}
	// Register refuses duplicates and invalid IDs.
	for id := range seen {
		if c.Register(id, &recFlow{}) {
			t.Fatalf("Register accepted in-use ID %#x", uint32(id))
		}
		break
	}
	if c.Register(42, &recFlow{}) {
		t.Fatal("Register accepted an invalid ID")
	}
}

// TestDispatchConcurrent exercises Dispatch against concurrent
// register/unregister churn; it exists for the -race detector.
func TestDispatchConcurrent(t *testing.T) {
	c := NewCore(func([]byte, net.Addr) {})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := c.AllocID(rng.Int31, &recFlow{})
				c.Unregister(id)
			}
		}(int64(g))
	}
	bare := dataPacket(t, 1, "x")
	pkt := prefixed(MakeID(0x1234567), bare)
	for i := 0; i < 20000; i++ {
		c.Dispatch(pkt, testAddr)
		c.Dispatch(bare, testAddr)
	}
	close(stop)
	wg.Wait()
}

// TestMuxDemuxZeroAlloc pins the acceptance criterion: the socket-ID
// dispatch path allocates nothing in steady state.
func TestMuxDemuxZeroAlloc(t *testing.T) {
	c := NewCore(nil)
	f := &recFlow{}
	id := c.AllocID(rand.New(rand.NewSource(4)).Int31, f)
	pkt := prefixed(id, dataPacket(t, 1, "payload"))
	allocs := testing.AllocsPerRun(1000, func() {
		c.Dispatch(pkt, testAddr)
	})
	if allocs != 0 {
		t.Fatalf("demux path allocates %.1f times per packet, want 0", allocs)
	}
}

// BenchmarkMuxDemux measures the per-packet cost of the socket-ID dispatch
// path (one registered flow). Recorded in BENCH_baseline.json.
func BenchmarkMuxDemux(b *testing.B) {
	c := NewCore(nil)
	f := &recFlow{}
	id := c.AllocID(rand.New(rand.NewSource(5)).Int31, f)
	pkt := prefixed(id, dataPacket(b, 1, "0123456789abcdef"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Dispatch(pkt, testAddr)
	}
}

// nullFlow discards datagrams without locking, isolating table-lookup cost.
type nullFlow struct{ n int }

func (f *nullFlow) HandleDatagram([]byte) { f.n++ }

// BenchmarkMuxDemuxFlows measures how dispatch scales with the number of
// flows resident on one socket — the flows-per-socket scaling record for
// BENCH_baseline.json.
func BenchmarkMuxDemuxFlows(b *testing.B) {
	for _, flows := range []int{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("flows=%d", flows), func(b *testing.B) {
			c := NewCore(nil)
			rng := rand.New(rand.NewSource(6))
			pkts := make([][]byte, flows)
			bare := dataPacket(b, 1, "0123456789abcdef")
			for i := range pkts {
				id := c.AllocID(rng.Int31, &nullFlow{})
				pkts[i] = prefixed(id, bare)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Dispatch(pkts[i&(flows-1)], testAddr)
			}
		})
	}
}

// BenchmarkMuxDemuxParallel drives dispatch from GOMAXPROCS goroutines to
// expose shard-lock contention.
func BenchmarkMuxDemuxParallel(b *testing.B) {
	c := NewCore(nil)
	rng := rand.New(rand.NewSource(7))
	const flows = 256
	pkts := make([][]byte, flows)
	bare := dataPacket(b, 1, "0123456789abcdef")
	for i := range pkts {
		id := c.AllocID(rng.Int31, &nullFlow{})
		pkts[i] = prefixed(id, bare)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := int(binary.BigEndian.Uint32(pkts[0]) & 0xFF)
		for pb.Next() {
			c.Dispatch(pkts[i&(flows-1)], testAddr)
			i++
		}
	})
}
