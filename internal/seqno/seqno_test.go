package seqno

import (
	"testing"
	"testing/quick"
)

func TestCmpBasic(t *testing.T) {
	cases := []struct {
		a, b int32
		want int
	}{
		{0, 0, 0},
		{0, 1, -1},
		{1, 0, 1},
		{100, 200, -1},
		{Max, 0, -1},     // wrap: Max immediately precedes 0
		{0, Max, 1},      // and vice versa
		{Max - 5, 3, -1}, // small wrap window
		{3, Max - 5, 1},
		{0, threshold, -1}, // exactly at threshold still ordered
		// Exactly half the space apart: ambiguous by construction; the
		// reference implementation (CSeqNo::seqcmp) resolves it this way.
		{1 << 30, 0, -1},
	}
	for _, c := range cases {
		if got := Cmp(c.a, c.b); got != c.want {
			t.Errorf("Cmp(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestIncDecWrap(t *testing.T) {
	if got := Inc(Max); got != 0 {
		t.Errorf("Inc(Max) = %d, want 0", got)
	}
	if got := Dec(0); got != Max {
		t.Errorf("Dec(0) = %d, want Max", got)
	}
	if got := Inc(41); got != 42 {
		t.Errorf("Inc(41) = %d, want 42", got)
	}
	if got := Dec(42); got != 41 {
		t.Errorf("Dec(42) = %d, want 41", got)
	}
}

func TestLen(t *testing.T) {
	cases := []struct {
		a, b int32
		want int32
	}{
		{0, 0, 1},
		{0, 9, 10},
		{Max, Max, 1},
		{Max, 0, 2},     // wrap
		{Max - 1, 2, 5}, // wrap across boundary
	}
	for _, c := range cases {
		if got := Len(c.a, c.b); got != c.want {
			t.Errorf("Len(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestOff(t *testing.T) {
	cases := []struct {
		a, b, want int32
	}{
		{0, 0, 0},
		{0, 10, 10},
		{10, 0, -10},
		{Max, 0, 1},
		{0, Max, -1},
		{Max - 2, 3, 6},
	}
	for _, c := range cases {
		if got := Off(c.a, c.b); got != c.want {
			t.Errorf("Off(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAdd(t *testing.T) {
	if got := Add(Max, 1); got != 0 {
		t.Errorf("Add(Max,1) = %d, want 0", got)
	}
	if got := Add(0, -1); got != Max {
		t.Errorf("Add(0,-1) = %d, want Max", got)
	}
	if got := Add(5, 1000); got != 1005 {
		t.Errorf("Add(5,1000) = %d, want 1005", got)
	}
}

// norm maps an arbitrary int32 into the valid sequence space.
func norm(s int32) int32 {
	if s < 0 {
		return s & Max
	}
	return s
}

func TestPropOffAddInverse(t *testing.T) {
	// Add(a, Off(a,b)) == b for all valid a, b.
	f := func(a, b int32) bool {
		a, b = norm(a), norm(b)
		return Add(a, Off(a, b)) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropIncDecInverse(t *testing.T) {
	f := func(a int32) bool {
		a = norm(a)
		return Dec(Inc(a)) == a && Inc(Dec(a)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCmpAntisymmetric(t *testing.T) {
	f := func(a, b int32) bool {
		a, b = norm(a), norm(b)
		c1, c2 := Cmp(a, b), Cmp(b, a)
		if a == b {
			return c1 == 0 && c2 == 0
		}
		// Exactly at half-space distance the order is ambiguous but must
		// still be consistent under swap for our threshold convention.
		return c1 == -c2 || Off(a, b) == -(1<<30)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropLenMatchesOff(t *testing.T) {
	// When a <= b, Len(a,b) == Off(a,b)+1.
	f := func(a int32, d int32) bool {
		a = norm(a)
		d &= 0xFFFFF // keep ranges modest and strictly forward
		b := Add(a, d)
		return Len(a, b) == d+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropValidAfterOps(t *testing.T) {
	f := func(a int32, n int32) bool {
		a = norm(a)
		return Valid(Inc(a)) && Valid(Dec(a)) && Valid(Add(a, n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
