// Package seqno implements UDT's 31-bit wrap-around sequence number
// arithmetic.
//
// UDT uses packet-based sequencing (one sequence number per packet, not per
// byte) carried in a 32-bit field whose highest bit is reserved: in data
// packets it distinguishes data from control, and inside NAK loss reports it
// flags the first element of a compressed loss range (see the paper's
// Appendix). Usable sequence numbers therefore occupy [0, 2^31-1] and wrap.
//
// Comparison follows the usual serial-number convention: a is "before" b when
// the forward distance from a to b is less than half the space. All
// distances and offsets are computed modulo 2^31.
package seqno

// Max is the largest valid sequence number (2^31 - 1).
const Max int32 = 0x7FFFFFFF

// Size is the size of the sequence number space (2^31).
const Size int64 = 1 << 31

// threshold is the wrap-around comparison threshold (half the space), as in
// the reference UDT implementation's CSeqNo::seqcmp.
const threshold int32 = 0x3FFFFFFF

// Valid reports whether s lies in the usable sequence space.
func Valid(s int32) bool { return s >= 0 }

// Cmp compares two sequence numbers with wrap-around semantics.
// It returns a negative value if a precedes b, zero if equal, and a positive
// value if a follows b.
func Cmp(a, b int32) int {
	d := a - b
	if d > threshold || d < -threshold {
		d = b - a
	}
	switch {
	case d < 0:
		return -1
	case d > 0:
		return 1
	default:
		return 0
	}
}

// Less reports whether a precedes b in wrap-around order.
func Less(a, b int32) bool { return Cmp(a, b) < 0 }

// Leq reports whether a precedes or equals b in wrap-around order.
func Leq(a, b int32) bool { return Cmp(a, b) <= 0 }

// Len returns the number of packets in the inclusive range [a, b],
// assuming a precedes or equals b. For example Len(s, s) == 1.
func Len(a, b int32) int32 {
	if b >= a {
		return b - a + 1
	}
	return int32(int64(b) - int64(a) + Size + 1)
}

// Off returns the signed offset from a to b: the number of increments needed
// to move a onto b, negative if b precedes a. |Off| <= 2^30.
func Off(a, b int32) int32 {
	d := b - a
	if d > threshold {
		return int32(int64(d) - Size)
	}
	if d < -threshold {
		return int32(int64(d) + Size)
	}
	return d
}

// Inc returns the sequence number immediately after s.
func Inc(s int32) int32 {
	if s == Max {
		return 0
	}
	return s + 1
}

// Dec returns the sequence number immediately before s.
func Dec(s int32) int32 {
	if s == 0 {
		return Max
	}
	return s - 1
}

// Add advances s by n (n may be negative), wrapping modulo 2^31.
func Add(s int32, n int32) int32 {
	v := (int64(s) + int64(n)) % Size
	if v < 0 {
		v += Size
	}
	return int32(v)
}
