package tcpsim

import (
	"udt/internal/netsim"
)

// Packet kinds used in netsim.Packet.Kind; values are disjoint from
// udtsim's so mixed-protocol topologies cannot misread a stray packet.
//
// A data segment rides entirely in the typed scratch words: Seq = sequence,
// Aux = send time (echoed by the ACK), Flag = retransmission (Karn's rule).
// An ACK carries: Seq = cumulative (next expected packet), Aux = echoed
// timestamp, Flag = rtx echo, and — only during loss episodes — up to 3
// half-open SACK blocks boxed in Payload as [][2]int64. In the no-loss
// steady state both directions are allocation-free.
const (
	kindSeg int32 = 0x7C01
	kindAck int32 = 0x7C02
)

// Header overheads charged on the wire.
const (
	tcpHeader = 40 // TCP + IP
	ackSize   = tcpHeader + 12
)

// SenderStats counts sender events.
type SenderStats struct {
	Sent           int64
	Retrans        int64
	Timeouts       int64
	FastRecoveries int64
}

// Sender is the TCP data source: congestion control, loss recovery and the
// retransmission timer.
type Sender struct {
	sim     *netsim.Sim
	out     netsim.Deliver
	flow    int
	mss     int
	variant Variant

	cwnd     float64
	ssthresh float64
	maxCwnd  float64

	una     int64 // first unacknowledged
	nextSeq int64 // next new packet
	recover int64
	inFR    bool
	dupAcks int
	sacked  rangeSet
	rtxed   rangeSet

	srtt, rttvar netsim.Time
	backoff      int
	rtoGen       uint64
	rtoArmed     bool

	// BIC binary-search state (BicTCP only).
	bicMax, bicMin float64

	remaining int64 // packets left to introduce; -1 = endless
	total     int64 // for completion detection (finite flows)
	active    bool

	// Stats counts protocol events.
	Stats  SenderStats
	DoneAt netsim.Time
	OnDone func()
}

// Receiver is the TCP sink: reassembly, cumulative+selective ACK
// generation, and goodput accounting.
type Receiver struct {
	sim   *netsim.Sim
	out   netsim.Deliver
	flow  int
	mss   int
	rcvd  rangeSet
	cum   int64
	meter *netsim.FlowMeter

	// Delivered counts in-order packets handed to the application.
	Delivered int64
}

// Flow is a unidirectional TCP transfer.
type Flow struct {
	ID  int
	Src *Sender
	Dst *Receiver
}

// NewFlow creates a TCP flow: srcOut carries data toward the sink, dstOut
// carries ACKs back. Bind the endpoints' Deliver methods into the topology,
// then Start. maxCwnd is the send/receive buffer bound in packets (the
// paper sets TCP buffers to at least the BDP; pass a generous value).
func NewFlow(sim *netsim.Sim, id int, variant Variant, mss int, maxCwnd float64, srcOut, dstOut netsim.Deliver) *Flow {
	if mss <= 0 {
		mss = 1460
	}
	if maxCwnd <= 0 {
		maxCwnd = 1 << 20
	}
	s := &Sender{
		sim: sim, out: srcOut, flow: id, mss: mss, variant: variant,
		cwnd: 2, ssthresh: maxCwnd, maxCwnd: maxCwnd,
		srtt: 0, rttvar: 0,
	}
	r := &Receiver{sim: sim, out: dstOut, flow: id, mss: mss}
	return &Flow{ID: id, Src: s, Dst: r}
}

// SetMeter routes sink-side goodput accounting to m.
func (f *Flow) SetMeter(m *netsim.FlowMeter) { f.Dst.meter = m }

// Start begins transmission of n packets (n < 0: endless bulk).
func (f *Flow) Start(n int64) {
	f.Src.remaining = n
	f.Src.total = n
	f.Src.active = true
	f.Src.trySend()
	f.Src.armRTO()
}

// AvgMbpsDelivered returns the sink's lifetime goodput in Mb/s.
func (f *Flow) AvgMbpsDelivered() float64 {
	now := f.Dst.sim.Now()
	if now == 0 {
		return 0
	}
	return float64(f.Dst.Delivered*int64(f.Dst.mss)*8) / float64(now) * float64(netsim.Second) / 1e6
}

// Cwnd returns the sender's current congestion window in packets.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// outstanding is the conservative flight size (ignores SACKed holes).
func (s *Sender) outstanding() int64 { return s.nextSeq - s.una }

func (s *Sender) sendSeg(seq int64, rtx bool) {
	if rtx {
		s.Stats.Retrans++
	} else {
		s.Stats.Sent++
	}
	p := s.sim.AllocPacket(s.mss+tcpHeader, s.flow)
	p.Kind = kindSeg
	p.Seq = seq
	p.Aux = int64(s.sim.Now())
	p.Flag = rtx
	s.out(p)
}

// trySend pushes new data while the window allows.
func (s *Sender) trySend() {
	if !s.active {
		return
	}
	w := s.cwnd
	if w > s.maxCwnd {
		w = s.maxCwnd
	}
	for s.remaining != 0 && s.outstanding() < int64(w) {
		s.sendSeg(s.nextSeq, false)
		s.nextSeq++
		if s.remaining > 0 {
			s.remaining--
		}
	}
}

// pipe estimates the packets currently in flight: outstanding minus those
// the receiver reports holding (RFC 6675's conservative cousin).
func (s *Sender) pipe() int64 {
	return s.outstanding() - s.sacked.countIn(s.una, s.nextSeq)
}

// frPump drives SACK-based loss recovery: while the pipe has room under
// cwnd, retransmit further holes (RFC 6675 NextSeg step 1).
func (s *Sender) frPump() {
	for float64(s.pipe()) < s.cwnd {
		if !s.retransmitHole() {
			return
		}
	}
}

// retransmitHole resends the first un-SACKed, un-retransmitted packet below
// the recovery point, reporting whether one was sent.
func (s *Sender) retransmitHole() bool {
	h := s.una
	for {
		h = s.sacked.firstGapFrom(h)
		if h >= s.recover || h >= s.nextSeq {
			return false
		}
		if !s.rtxed.contains(h) {
			s.rtxed.add(h, h+1)
			s.sendSeg(h, true)
			return true
		}
		h++
	}
}

func (s *Sender) rttSample(sample netsim.Time) {
	if sample <= 0 {
		sample = 1
	}
	if s.srtt == 0 {
		s.srtt = sample
		s.rttvar = sample / 2
		return
	}
	d := sample - s.srtt
	if d < 0 {
		d = -d
	}
	s.rttvar += (d - s.rttvar) / 4
	s.srtt += (sample - s.srtt) / 8
}

func (s *Sender) curRTO() netsim.Time {
	rto := s.srtt + 4*s.rttvar
	if rto < 200*netsim.Millisecond {
		rto = 200 * netsim.Millisecond
	}
	if s.srtt == 0 {
		rto = netsim.Second // initial RTO before any sample
	}
	for i := 0; i < s.backoff; i++ {
		rto *= 2
		if rto > 60*netsim.Second {
			return 60 * netsim.Second
		}
	}
	return rto
}

func (s *Sender) armRTO() {
	s.rtoGen++
	if s.outstanding() == 0 {
		s.rtoArmed = false
		return
	}
	s.rtoArmed = true
	s.sim.AfterCall(s.curRTO(), senderRTO, s, nil, int64(s.rtoGen))
}

// senderRTO fires a retransmission timeout if its generation (aux) is still
// current — superseded timers die here without having allocated anything.
func senderRTO(_ *netsim.Sim, arg any, _ *netsim.Packet, aux int64) {
	s := arg.(*Sender)
	if uint64(aux) == s.rtoGen {
		s.rtoArmed = false
		s.onRTO()
	}
}

// onRTO is the retransmission timeout: collapse to one packet, forget SACK
// state (conservative reneging protection) and go back to the first hole.
func (s *Sender) onRTO() {
	s.Stats.Timeouts++
	s.ssthresh = s.cwnd / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.cwnd = 1
	s.inFR = false
	s.dupAcks = 0
	s.sacked.clear()
	s.rtxed.clear()
	s.nextSeq = s.una // go-back-N: everything in flight is presumed lost
	s.backoff++
	s.sendSeg(s.nextSeq, true)
	s.nextSeq++
	s.armRTO()
}

// Deliver is the sender's receive entry point (ACK processing). Consumed
// ACKs return to the simulation's free list.
func (s *Sender) Deliver(p *netsim.Packet) {
	if p.Kind != kindAck {
		return
	}
	cum := p.Seq
	ts := netsim.Time(p.Aux)
	rtxEcho := p.Flag
	if sacks, ok := p.Payload.([][2]int64); ok {
		for _, b := range sacks {
			s.sacked.add(b[0], b[1])
		}
	}
	s.sim.FreePacket(p)
	advanced := cum > s.una
	refresh := advanced
	if cum > s.una {
		newAcked := cum - s.una
		s.una = cum
		if s.nextSeq < s.una {
			s.nextSeq = s.una
		}
		s.sacked.dropBefore(s.una)
		s.dupAcks = 0
		s.backoff = 0
		if !rtxEcho {
			s.rttSample(s.sim.Now() - ts)
		}
		if s.inFR {
			if s.una > s.recover {
				// Full acknowledgement: recovery complete.
				s.inFR = false
				s.cwnd = s.ssthresh
				s.rtxed.clear()
			} else {
				// Partial ACK: the next hole(s) were also lost.
				s.frPump()
				refresh = true
			}
		} else {
			for i := int64(0); i < newAcked; i++ {
				if s.cwnd < s.ssthresh {
					s.cwnd++ // slow start
				} else if s.variant == BicTCP {
					s.cwnd += bicIncrease(s.cwnd, s.bicMin, s.bicMax) / s.cwnd
				} else {
					s.cwnd += s.variant.caIncrease(s.cwnd)
				}
			}
			if s.cwnd > s.maxCwnd {
				s.cwnd = s.maxCwnd
			}
		}
		s.maybeDone()
	} else {
		s.dupAcks++
		if !s.inFR && (s.dupAcks >= 3) {
			s.Stats.FastRecoveries++
			s.inFR = true
			s.recover = s.nextSeq
			if s.variant == BicTCP {
				s.bicMax = s.cwnd
			}
			s.ssthresh = s.cwnd * s.variant.decrease(s.cwnd)
			if s.ssthresh < 2 {
				s.ssthresh = 2
			}
			s.cwnd = s.ssthresh
			if s.variant == BicTCP {
				s.bicMin = s.cwnd
			}
			s.rtxed.clear()
			s.frPump()
			refresh = true // fresh timer for the recovery retransmissions
		} else if s.inFR {
			// SACK-clocked recovery: each returning ACK makes room in the
			// pipe for more hole repairs, or clocks out new data.
			if !s.retransmitHole() {
				s.cwnd += 1 // window inflation keeps the ACK clock running
			} else {
				s.frPump()
			}
		}
	}
	s.trySend()
	// Re-arm on progress or on a recovery retransmission (fresh timer for
	// the new in-flight front), and whenever data is in flight with no
	// timer pending — trySend may have just refilled an idle pipe whose
	// timer was disarmed.
	if refresh || !s.rtoArmed {
		s.armRTO()
	}
}

func (s *Sender) maybeDone() {
	if s.total > 0 && s.remaining == 0 && s.una >= s.total && s.DoneAt == 0 {
		s.DoneAt = s.sim.Now()
		s.rtoGen++ // disarm
		if s.OnDone != nil {
			s.OnDone()
		}
	}
}

// Deliver is the receiver's entry point (data processing and ACK emission).
// Consumed segments return to the simulation's free list; the emitted ACK
// reuses the pool, so the in-order path allocates nothing.
func (r *Receiver) Deliver(p *netsim.Packet) {
	if p.Kind != kindSeg {
		return
	}
	seq := p.Seq
	ts := p.Aux
	rtx := p.Flag
	r.sim.FreePacket(p)
	r.rcvd.add(seq, seq+1)
	newCum := r.rcvd.firstGapFrom(r.cum)
	if newCum > r.cum {
		n := newCum - r.cum
		r.Delivered += n
		if r.meter != nil {
			r.meter.Account(r.flow, int(n)*r.mss)
		}
		r.cum = newCum
		r.rcvd.dropBefore(r.cum)
	}
	// Up to 3 SACK blocks above the cumulative point — built only while
	// holes exist; the in-order path carries none.
	var sacks [][2]int64
	if len(r.rcvd.r) > 0 {
		for _, b := range r.rcvd.blocks(3) {
			if b[1] > r.cum {
				if b[0] < r.cum {
					b[0] = r.cum
				}
				sacks = append(sacks, b)
			}
		}
	}
	ack := r.sim.AllocPacket(ackSize, r.flow)
	ack.Kind = kindAck
	ack.Seq = r.cum
	ack.Aux = ts
	ack.Flag = rtx
	if len(sacks) > 0 {
		ack.Payload = sacks
	}
	r.out(ack)
}
