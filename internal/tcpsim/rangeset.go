// Package tcpsim models TCP with selective acknowledgements at packet
// granularity on the netsim substrate. It provides the paper's baselines:
// standard TCP ("TCP SACK", what the paper means by TCP), plus the
// high-speed variants discussed in §5.2 — Scalable TCP's MIMD law and
// HighSpeed TCP's window-indexed response function — as pluggable
// congestion-avoidance rules on the same engine.
//
// The model captures what the paper's experiments measure: slow start,
// AIMD congestion avoidance, fast retransmit/recovery driven by SACK
// information, retransmission timeouts with exponential backoff and Karn's
// rule, and per-packet acknowledgements. Sequence numbers count packets
// (not bytes) and never wrap within a simulation.
package tcpsim

import "sort"

// rangeSet is a sorted set of disjoint half-open int64 intervals [start, end).
type rangeSet struct {
	r [][2]int64
}

// add inserts [s, e), merging as needed.
func (rs *rangeSet) add(s, e int64) {
	if s >= e {
		return
	}
	i := sort.Search(len(rs.r), func(i int) bool { return rs.r[i][1] >= s })
	j := i
	for j < len(rs.r) && rs.r[j][0] <= e {
		j++
	}
	if i == j {
		rs.r = append(rs.r, [2]int64{})
		copy(rs.r[i+1:], rs.r[i:])
		rs.r[i] = [2]int64{s, e}
		return
	}
	if rs.r[i][0] < s {
		s = rs.r[i][0]
	}
	if rs.r[j-1][1] > e {
		e = rs.r[j-1][1]
	}
	rs.r[i] = [2]int64{s, e}
	rs.r = append(rs.r[:i+1], rs.r[j:]...)
}

// contains reports whether x is in the set.
func (rs *rangeSet) contains(x int64) bool {
	i := sort.Search(len(rs.r), func(i int) bool { return rs.r[i][1] > x })
	return i < len(rs.r) && rs.r[i][0] <= x
}

// firstGapFrom returns the smallest value >= x not in the set.
func (rs *rangeSet) firstGapFrom(x int64) int64 {
	i := sort.Search(len(rs.r), func(i int) bool { return rs.r[i][1] > x })
	if i < len(rs.r) && rs.r[i][0] <= x {
		return rs.r[i][1]
	}
	return x
}

// dropBefore removes everything below x.
func (rs *rangeSet) dropBefore(x int64) {
	i := 0
	for i < len(rs.r) && rs.r[i][1] <= x {
		i++
	}
	rs.r = rs.r[i:]
	if len(rs.r) > 0 && rs.r[0][0] < x {
		rs.r[0][0] = x
	}
}

// countIn returns how many integers of [s, e) are in the set.
func (rs *rangeSet) countIn(s, e int64) int64 {
	var n int64
	for _, r := range rs.r {
		lo, hi := r[0], r[1]
		if lo < s {
			lo = s
		}
		if hi > e {
			hi = e
		}
		if lo < hi {
			n += hi - lo
		}
	}
	return n
}

// clear empties the set.
func (rs *rangeSet) clear() { rs.r = rs.r[:0] }

// blocks returns up to max ranges, most recently touched not tracked —
// callers wanting recency keep their own list; this returns the highest
// ranges first (a reasonable SACK-block choice).
func (rs *rangeSet) blocks(max int) [][2]int64 {
	if len(rs.r) <= max {
		out := make([][2]int64, len(rs.r))
		copy(out, rs.r)
		return out
	}
	out := make([][2]int64, max)
	copy(out, rs.r[len(rs.r)-max:])
	return out
}
