package tcpsim

import (
	"math"
	"testing"
	"testing/quick"

	"udt/internal/netsim"
)

func TestRangeSetBasics(t *testing.T) {
	var rs rangeSet
	rs.add(5, 10)
	rs.add(12, 15)
	if !rs.contains(5) || !rs.contains(9) || rs.contains(10) || rs.contains(11) {
		t.Fatal("contains wrong")
	}
	if g := rs.firstGapFrom(5); g != 10 {
		t.Fatalf("firstGapFrom(5) = %d", g)
	}
	if g := rs.firstGapFrom(11); g != 11 {
		t.Fatalf("firstGapFrom(11) = %d", g)
	}
	rs.add(10, 12) // bridges
	if g := rs.firstGapFrom(5); g != 15 {
		t.Fatalf("after bridge firstGapFrom(5) = %d", g)
	}
	if n := rs.countIn(0, 100); n != 10 {
		t.Fatalf("countIn = %d", n)
	}
	rs.dropBefore(8)
	if rs.contains(7) || !rs.contains(8) {
		t.Fatal("dropBefore wrong")
	}
	rs.clear()
	if rs.contains(8) {
		t.Fatal("clear failed")
	}
}

func TestPropRangeSetMatchesMap(t *testing.T) {
	f := func(ops []uint16) bool {
		var rs rangeSet
		m := map[int64]bool{}
		for _, op := range ops {
			s := int64(op % 500)
			e := s + int64(op%7) + 1
			rs.add(s, e)
			for x := s; x < e; x++ {
				m[x] = true
			}
		}
		for x := int64(0); x < 510; x++ {
			if rs.contains(x) != m[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHighSpeedResponseFunction(t *testing.T) {
	// RFC 3649 anchor points: at w = 38 behave like standard TCP; at
	// w = 83000, a(w) ≈ 70-ish and b(w) = 0.1.
	if a := hsAlpha(38); a != 1 {
		t.Fatalf("a(38) = %v", a)
	}
	if b := hsBeta(38); b != 0.5 {
		t.Fatalf("b(38) = %v", b)
	}
	if b := hsBeta(83000); math.Abs(b-0.1) > 1e-9 {
		t.Fatalf("b(83000) = %v", b)
	}
	a := hsAlpha(83000)
	if a < 50 || a > 90 {
		t.Fatalf("a(83000) = %v, want ≈70 (RFC 3649 table)", a)
	}
	// Monotone growth in between.
	if hsAlpha(1000) <= hsAlpha(100) || hsAlpha(10000) <= hsAlpha(1000) {
		t.Fatal("a(w) must grow with w")
	}
}

func TestVariantIncrease(t *testing.T) {
	if got := SACK.caIncrease(100); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("reno increase = %v", got)
	}
	if got := ScalableTCP.caIncrease(100); got != 0.01 {
		t.Fatalf("scalable increase = %v", got)
	}
	if SACK.decrease(100) != 0.5 || ScalableTCP.decrease(100) != 0.875 {
		t.Fatal("decrease factors wrong")
	}
}

// tcpDumbbell builds n bulk TCP flows over a shared bottleneck.
func tcpDumbbell(sim *netsim.Sim, variant Variant, rateBps int64, queuePkts int, rtts []netsim.Time) ([]*Flow, *netsim.FlowMeter) {
	d := netsim.NewDumbbell(sim, rateBps, queuePkts, rtts)
	meter := netsim.NewFlowMeter(sim, len(rtts), netsim.Second)
	flows := make([]*Flow, len(rtts))
	for i := range rtts {
		f := NewFlow(sim, i, variant, 1460, 1<<20, d.SrcOut(i), d.SinkOut(i))
		d.Bind(i, f.Dst.Deliver, f.Src.Deliver)
		f.SetMeter(meter)
		flows[i] = f
	}
	return flows, meter
}

func TestTCPLosslessFillsPipe(t *testing.T) {
	sim := netsim.New(1)
	rate := int64(100_000_000)
	flows, meter := tcpDumbbell(sim, SACK, rate, 1000, []netsim.Time{20 * netsim.Millisecond})
	flows[0].Start(-1)
	sim.Run(20 * netsim.Second)
	rows := meter.SeriesAfter(5)
	var sum float64
	for _, r := range rows {
		sum += r[0]
	}
	avg := sum / float64(len(rows))
	if avg < 85 || avg > 101 {
		t.Fatalf("TCP on clean 100 Mb/s link: %.1f Mb/s", avg)
	}
	// Slow-start overshoot into a 120 ms-deep buffer may cost one RTO (a
	// dropped recovery retransmission is only repairable by timeout, as in
	// real SACK TCP); steady state must be timeout-free.
	if flows[0].Src.Stats.Timeouts > 2 {
		t.Fatalf("clean link caused %d timeouts", flows[0].Src.Stats.Timeouts)
	}
}

func TestTCPFiniteTransfer(t *testing.T) {
	sim := netsim.New(2)
	flows, _ := tcpDumbbell(sim, SACK, 100_000_000, 200, []netsim.Time{10 * netsim.Millisecond})
	done := false
	flows[0].Src.OnDone = func() { done = true }
	flows[0].Start(2000)
	sim.Run(30 * netsim.Second)
	if !done {
		t.Fatal("transfer incomplete")
	}
	if flows[0].Dst.Delivered != 2000 {
		t.Fatalf("delivered %d", flows[0].Dst.Delivered)
	}
}

func TestTCPRecoversFromLossBurst(t *testing.T) {
	// Small queue forces periodic overflow; the flow must keep making
	// progress through fast recovery without byte loss at the application.
	sim := netsim.New(3)
	flows, meter := tcpDumbbell(sim, SACK, 50_000_000, 30, []netsim.Time{30 * netsim.Millisecond})
	flows[0].Start(-1)
	sim.Run(30 * netsim.Second)
	if flows[0].Src.Stats.FastRecoveries == 0 {
		t.Fatal("no fast recoveries despite a shallow queue")
	}
	rows := meter.SeriesAfter(10)
	var sum float64
	for _, r := range rows {
		sum += r[0]
	}
	avg := sum / float64(len(rows))
	if avg < 25 {
		t.Fatalf("TCP through shallow queue: %.1f Mb/s", avg)
	}
	// In-order delivery invariant: Delivered equals the cumulative point.
	if flows[0].Dst.Delivered != flows[0].Dst.cum {
		t.Fatal("delivery accounting inconsistent")
	}
}

// TestTCPMathisShape: under periodic random loss p, TCP throughput follows
// ≈ (MSS/RTT)·(1.22/√p). Check within a factor of 2 — it validates the
// AIMD/recovery machinery end to end.
func TestTCPMathisShape(t *testing.T) {
	sim := netsim.New(4)
	rate := int64(1_000_000_000) // not the constraint
	rtt := 40 * netsim.Millisecond
	d := netsim.NewDumbbell(sim, rate, 4000, []netsim.Time{rtt})
	f := NewFlow(sim, 0, SACK, 1460, 1<<20, d.SrcOut(0), d.SinkOut(0))
	// Random drop 0.1% on the forward path.
	p := 0.001
	drop := func(pk *netsim.Packet) {
		if pk.Kind == kindSeg && sim.Rand.Float64() < p {
			sim.FreePacket(pk)
			return
		}
		f.Dst.Deliver(pk)
	}
	d.Bind(0, drop, f.Src.Deliver)
	f.Start(-1)
	sim.Run(60 * netsim.Second)
	gotMbps := f.AvgMbpsDelivered()
	wantMbps := 1.22 * 1460 * 8 / (float64(rtt) / float64(netsim.Second)) / math.Sqrt(p) / 1e6
	if gotMbps < wantMbps/2 || gotMbps > wantMbps*2 {
		t.Fatalf("Mathis check: got %.1f Mb/s, model %.1f Mb/s", gotMbps, wantMbps)
	}
}

// TestTCPRTTBias reproduces the classic RTT unfairness the paper's §2.1
// example rests on: two TCP flows with 10× different RTTs share very
// unevenly (the short flow wins big).
func TestTCPRTTBias(t *testing.T) {
	sim := netsim.New(5)
	rate := int64(100_000_000)
	// Short epochs (small RTTs, shallow queue) so the competition reaches
	// steady state well inside the simulated horizon.
	flows, meter := tcpDumbbell(sim, SACK, rate, 50,
		[]netsim.Time{3 * netsim.Millisecond, 30 * netsim.Millisecond})
	flows[0].Start(-1)
	flows[1].Start(-1)
	sim.Run(120 * netsim.Second)
	means := make([]float64, 2)
	rows := meter.SeriesAfter(60)
	for _, r := range rows {
		means[0] += r[0]
		means[1] += r[1]
	}
	means[0] /= float64(len(rows))
	means[1] /= float64(len(rows))
	if means[0] < means[1]*2 {
		t.Fatalf("expected strong RTT bias: 3ms flow %.1f vs 30ms flow %.1f Mb/s", means[0], means[1])
	}
}

func TestScalableGrowsFasterThanReno(t *testing.T) {
	run := func(v Variant) float64 {
		sim := netsim.New(6)
		rate := int64(1_000_000_000)
		flows, _ := tcpDumbbell(sim, v, rate, 4000, []netsim.Time{100 * netsim.Millisecond})
		// Skip slow start: start in congestion avoidance at a small window.
		flows[0].Src.ssthresh = 10
		flows[0].Start(-1)
		// Scalable grows 1%/RTT (exponential) vs Reno's 1 pkt/RTT: the
		// crossover at 100 ms RTT needs ~45 s; compare at 60 s.
		sim.Run(60 * netsim.Second)
		return flows[0].Src.Cwnd()
	}
	reno := run(SACK)
	scal := run(ScalableTCP)
	hs := run(HighSpeedTCP)
	if scal <= reno*2 {
		t.Fatalf("Scalable cwnd %.0f not ≫ Reno %.0f after 60 s at 100 ms RTT", scal, reno)
	}
	if hs <= reno {
		t.Fatalf("HighSpeed cwnd %.0f not > Reno %.0f", hs, reno)
	}
}

func TestBicGrowsFasterThanRenoAfterLoss(t *testing.T) {
	// After a loss at a large window, BIC's binary search climbs back to
	// the old maximum much faster than Reno's one-packet-per-RTT.
	run := func(v Variant) float64 {
		sim := netsim.New(7)
		flows, _ := tcpDumbbell(sim, v, 1_000_000_000, 4000, []netsim.Time{100 * netsim.Millisecond})
		s := flows[0].Src
		s.ssthresh = 400
		s.cwnd = 400
		if v == BicTCP {
			s.bicMax = 4000 // as if a loss happened at 4000
			s.bicMin = 400
		}
		flows[0].Start(-1)
		sim.Run(20 * netsim.Second)
		return s.Cwnd()
	}
	reno := run(SACK)
	bic := run(BicTCP)
	if bic <= reno {
		t.Fatalf("BIC cwnd %.0f not > Reno %.0f during recovery", bic, reno)
	}
}

func TestBicIncreaseShape(t *testing.T) {
	// Far below the target: increment capped at Smax.
	if got := bicIncrease(1000, 900, 4000); got != bicSMax {
		t.Fatalf("far-from-target inc = %v, want Smax", got)
	}
	// Near the target: increment shrinks (binary search converges).
	near := bicIncrease(2440, 900, 4000) // target 2450 → inc 10
	if near >= bicSMax || near <= 0 {
		t.Fatalf("near-target inc = %v", near)
	}
	// Above the old max: probing grows away from it.
	p1 := bicIncrease(4000, 900, 4000)
	p2 := bicIncrease(4020, 900, 4000)
	if p2 <= p1 {
		t.Fatalf("max probing must accelerate: %v then %v", p1, p2)
	}
	// Tiny windows fall back to standard TCP.
	if got := bicIncrease(5, 1, 10); got != 1 {
		t.Fatalf("low-window inc = %v, want 1", got)
	}
}
