package tcpsim

import "udt/internal/congestion"

// Variant selects the congestion avoidance response function.
type Variant int

// Congestion control variants (§5.2).
const (
	// SACK is standard TCP: AIMD(1, 1/2) with SACK-based loss recovery —
	// what the paper calls "TCP".
	SACK Variant = iota
	// HighSpeedTCP is RFC 3649: the increase a(w) and decrease b(w) are
	// functions of the current window, reverting to standard TCP below
	// w = 38 packets.
	HighSpeedTCP
	// ScalableTCP is Kelly's MIMD proposal: cwnd += 0.01 per ACKed packet,
	// cwnd ×= 0.875 per loss event.
	ScalableTCP
	// BicTCP is Binary Increase Congestion control (Xu, Harfoush, Rhee,
	// INFOCOM '04): a binary search between the window before the last
	// loss and the window after the decrease, with additive "max probing"
	// above the old maximum. Needs per-sender state (bicMax/bicMin kept on
	// Sender).
	BicTCP
)

func (v Variant) String() string {
	switch v {
	case SACK:
		return "tcp-sack"
	case HighSpeedTCP:
		return "highspeed"
	case ScalableTCP:
		return "scalable"
	case BicTCP:
		return "bic"
	default:
		return "tcp-unknown"
	}
}

// The HighSpeed and Scalable response functions live in
// internal/congestion, shared with the real-stack controllers; the local
// names keep this file readable.
var (
	hsBeta  = congestion.HSBeta
	hsAlpha = congestion.HSAlpha
)

// The BIC response function and parameters also live in
// internal/congestion (shared with the real-stack "bic" controller).
const (
	bicLowWindow = congestion.BicLowWindow
	bicSMax      = congestion.BicSMax
	bicBeta      = congestion.BicBeta
)

// bicIncrease is congestion.BicIncrease under its historical local name.
var bicIncrease = congestion.BicIncrease

// caIncrease returns the congestion-avoidance window increment for one
// newly acknowledged packet at window w.
func (v Variant) caIncrease(w float64) float64 {
	if w < 1 {
		w = 1
	}
	switch v {
	case ScalableTCP:
		return congestion.ScalableAlpha
	case HighSpeedTCP:
		return hsAlpha(w) / w
	default:
		return 1 / w
	}
}

// decrease returns the multiplicative window factor kept after a fast-
// retransmit loss event at window w (e.g. 0.5 keeps half).
func (v Variant) decrease(w float64) float64 {
	switch v {
	case ScalableTCP:
		return congestion.ScalableBeta
	case HighSpeedTCP:
		return 1 - hsBeta(w)
	case BicTCP:
		if w < bicLowWindow {
			return 0.5
		}
		return bicBeta
	default:
		return 0.5
	}
}
