package tcpsim

import (
	"udt/internal/netsim"
	"udt/internal/trace"
)

// tracer samples one TCP flow on a fixed simulated interval. The TCP model
// has no SYN timer, so unlike UDT's engine-driven sampler it is clocked by
// its own self-rescheduling simulator event. That event only reads sender
// and receiver state and consumes no randomness, so while it does shift
// event-queue sequence numbers, it never changes the relative order or the
// content of protocol events: a traced run behaves identically.
type tracer struct {
	f        *Flow
	sink     trace.Sink
	interval netsim.Time
	lastT    netsim.Time
	prevWire int64 // Sent+Retrans at the previous sample
	prevGood int64 // Delivered at the previous sample
	rec      trace.PerfRecord
}

// Trace attaches a telemetry sink to the flow, sampling every interval of
// simulated time. Each sample is one RoleFlow PerfRecord combining the
// sender's congestion state (cwnd as FlowWindow, srtt, flight size) with
// the receiver's delivery counters, labelled with the variant name
// ("tcp-sack", "tcp-bic", ...). Call before or after Start; the first
// sample fires one interval from now.
func (f *Flow) Trace(sink trace.Sink, interval netsim.Time) {
	if interval <= 0 {
		interval = 10 * netsim.Millisecond
	}
	t := &tracer{f: f, sink: sink, interval: interval}
	t.rec.Flow = int32(f.ID)
	t.rec.Label = "tcp-" + f.Src.variant.String()
	t.rec.Role = trace.RoleFlow
	f.Src.sim.AfterCall(interval, tracerTick, t, nil, 0)
}

func tracerTick(sim *netsim.Sim, arg any, _ *netsim.Packet, _ int64) {
	t := arg.(*tracer)
	s, r := t.f.Src, t.f.Dst
	now := sim.Now()
	interval := now - t.lastT
	t.lastT = now

	rec := &t.rec
	rec.T = int64(now / netsim.Microsecond)
	rec.IntervalUs = int64(interval / netsim.Microsecond)
	mssBits := float64(s.mss) * 8
	wire := s.Stats.Sent + s.Stats.Retrans
	good := r.Delivered
	if rec.IntervalUs > 0 {
		rec.SendMbps = float64(wire-t.prevWire) * mssBits / float64(rec.IntervalUs)
		rec.RecvMbps = float64(good-t.prevGood) * mssBits / float64(rec.IntervalUs)
	}
	t.prevWire, t.prevGood = wire, good
	rec.RTTUs = int64(s.srtt / netsim.Microsecond)
	rec.FlowWindow = int32(s.cwnd)
	rec.InFlight = int32(s.outstanding())
	rec.PktsSent = s.Stats.Sent
	rec.PktsRetrans = s.Stats.Retrans
	rec.PktsRecv = r.Delivered
	rec.Timeouts = s.Stats.Timeouts
	// PeriodUs, SendRateMbps, BandwidthMbps, ACK/NAK counters stay zero:
	// the TCP model is window-controlled and has no rate or RBPP state.

	t.sink.Record(rec)
	sim.AfterCall(t.interval, tracerTick, t, nil, 0)
}
