package flow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestArrivalRateSteady(t *testing.T) {
	w := NewArrivalWindow(DefaultArrivalWindow)
	// 100 µs spacing → 10,000 packets/s.
	now := int64(0)
	for i := 0; i < 32; i++ {
		w.OnArrival(now)
		now += 100
	}
	r := w.Rate()
	if r < 9000 || r > 11000 {
		t.Fatalf("Rate = %d, want ≈10000", r)
	}
}

func TestArrivalRateInsufficientHistory(t *testing.T) {
	w := NewArrivalWindow(16)
	w.OnArrival(0)
	w.OnArrival(100)
	if r := w.Rate(); r != 0 {
		t.Fatalf("Rate with 1 interval = %d, want 0", r)
	}
}

func TestArrivalRateIgnoresIdleGaps(t *testing.T) {
	w := NewArrivalWindow(16)
	now := int64(0)
	for i := 0; i < 40; i++ {
		w.OnArrival(now)
		if i%10 == 9 {
			now += 1_000_000 // 1 s application pause
		} else {
			now += 100
		}
	}
	r := w.Rate()
	// The median filter must discard the 1 s outliers: estimate stays near
	// the true inter-packet spacing, not the mean (~10x slower).
	if r < 8000 || r > 12000 {
		t.Fatalf("Rate = %d, want ≈10000 despite idle gaps", r)
	}
}

func TestArrivalRateZeroGap(t *testing.T) {
	w := NewArrivalWindow(4)
	for i := 0; i < 10; i++ {
		w.OnArrival(5) // identical timestamps must not divide by zero
	}
	_ = w.Rate()
}

func TestArrivalRateCoalescedBursts(t *testing.T) {
	// GRO/recvmmsg delivery: 16-packet trains whose members share one
	// timestamp, trains 200 µs apart. True rate is 16 pkts / 200 µs =
	// 80,000 pkts/s; naive 1 µs clamping of the zero gaps would claim
	// ~1,000,000 pkts/s.
	w := NewArrivalWindow(DefaultArrivalWindow)
	now := int64(0)
	for train := 0; train < 8; train++ {
		for i := 0; i < 16; i++ {
			w.OnArrival(now)
		}
		now += 200
	}
	r := w.Rate()
	if r < 70000 || r > 90000 {
		t.Fatalf("Rate = %d, want ≈80000 (burst gap amortized over the train)", r)
	}
}

func TestProbeCapacityZeroGapClamped(t *testing.T) {
	// A zero gap is "faster than the clock resolves": it clamps to 1 µs
	// rather than being dropped, so infinitely fast virtual links (and
	// batched reads delivering both pair halves at once) keep a capacity
	// estimate — an upper bound, bounded in turn by the honest
	// arrival-speed window.
	w := NewProbeWindow(8)
	for i := 0; i < 8; i++ {
		w.OnPair(0)
	}
	if c := w.Capacity(); c != 1e6 {
		t.Fatalf("Capacity from clamped zero-gap pairs = %d, want 1000000", c)
	}
}

func TestProbeCapacity(t *testing.T) {
	w := NewProbeWindow(DefaultProbeWindow)
	// 12 µs pair spacing → ~83,333 packets/s ≈ 1 Gb/s at 1500 B.
	for i := 0; i < 64; i++ {
		w.OnPair(12)
	}
	c := w.Capacity()
	if c < 80000 || c > 90000 {
		t.Fatalf("Capacity = %d, want ≈83333", c)
	}
}

func TestProbeCapacityFiltersNoise(t *testing.T) {
	w := NewProbeWindow(64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		if rng.Intn(10) == 0 {
			w.OnPair(5000) // queueing-disturbed outlier
		} else {
			w.OnPair(12)
		}
	}
	c := w.Capacity()
	if c < 70000 || c > 95000 {
		t.Fatalf("Capacity = %d, want ≈83333 despite outliers", c)
	}
}

func TestProbeCapacityEmpty(t *testing.T) {
	w := NewProbeWindow(8)
	if c := w.Capacity(); c != 0 {
		t.Fatalf("empty Capacity = %d, want 0", c)
	}
}

func TestAckWindowMatch(t *testing.T) {
	w := NewAckWindow(8)
	w.Store(1, 100, 1000)
	w.Store(2, 200, 2000)
	seq, rtt, ok := w.Acknowledge(2, 2500)
	if !ok || seq != 200 || rtt != 500 {
		t.Fatalf("Acknowledge(2) = %d,%d,%v", seq, rtt, ok)
	}
	// Entry 1 was older than the matched one: invalidated.
	if _, _, ok := w.Acknowledge(1, 3000); ok {
		t.Fatal("stale ACK2 matched")
	}
}

func TestAckWindowMiss(t *testing.T) {
	w := NewAckWindow(4)
	if _, _, ok := w.Acknowledge(9, 10); ok {
		t.Fatal("matched in empty window")
	}
	for i := int32(0); i < 10; i++ {
		w.Store(i, i*10, int64(i)*100)
	}
	// id 0..5 rotated out of a 4-entry window.
	if _, _, ok := w.Acknowledge(3, 5000); ok {
		t.Fatal("matched rotated-out entry")
	}
	if _, _, ok := w.Acknowledge(9, 5000); !ok {
		t.Fatal("failed to match newest entry")
	}
}

func TestAckWindowRTTFloor(t *testing.T) {
	w := NewAckWindow(4)
	w.Store(1, 10, 500)
	_, rtt, ok := w.Acknowledge(1, 400) // clock skew: earlier "now"
	if !ok || rtt != 1 {
		t.Fatalf("rtt = %d, want floor 1", rtt)
	}
}

func TestRTTSmoothing(t *testing.T) {
	r := NewRTT(100_000)
	if r.Smoothed() != 100_000 || r.Var() != 50_000 {
		t.Fatal("bad seed")
	}
	r.Update(10_000) // first real sample replaces the seed
	if r.Smoothed() != 10_000 || r.Var() != 5_000 {
		t.Fatalf("first sample: srtt=%d var=%d", r.Smoothed(), r.Var())
	}
	for i := 0; i < 100; i++ {
		r.Update(10_000)
	}
	if r.Smoothed() != 10_000 {
		t.Fatalf("converged srtt = %d", r.Smoothed())
	}
	if v := r.Var(); v > 100 {
		t.Fatalf("converged var = %d, want ≈0", v)
	}
	if got := r.RTO(); got < 10_000 || got > 10_500 {
		t.Fatalf("RTO = %d", got)
	}
	r.Update(0)  // ignored
	r.Update(-5) // ignored
	if r.Smoothed() != 10_000 {
		t.Fatal("non-positive samples must be ignored")
	}
}

func TestRTTConvergesUpward(t *testing.T) {
	r := NewRTT(1000)
	for i := 0; i < 400; i++ {
		r.Update(200_000)
	}
	if s := r.Smoothed(); s < 190_000 {
		t.Fatalf("srtt = %d, want ≈200000", s)
	}
}

func TestPropMedianFilterBounds(t *testing.T) {
	// The filtered average always lies within [min, max] of the samples and
	// within (median/8, median*8).
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]int64, len(raw))
		var lo, hi int64 = 1 << 62, 0
		for i, v := range raw {
			s := int64(v)
			if s < 0 {
				s = -s
			}
			s++ // strictly positive
			samples[i] = s
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		avg, kept := medianFiltered(samples)
		if kept == 0 {
			return true
		}
		return avg >= lo && avg <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropArrivalRatePositive(t *testing.T) {
	f := func(gaps []uint16) bool {
		w := NewArrivalWindow(16)
		now := int64(0)
		for _, g := range gaps {
			now += int64(g)
			w.OnArrival(now)
		}
		return w.Rate() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
