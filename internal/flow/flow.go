// Package flow implements UDT's receiver-side measurement machinery (paper
// §3.2 and §3.4): the packet-arrival-speed estimator that drives the dynamic
// flow window W = AS·(SYN+RTT), the receiver-based packet-pair (RBPP) link
// capacity estimator that drives the rate-control increase parameter, the
// ACK history window used to measure RTT from ACK/ACK2 exchanges, and the
// exponentially smoothed RTT estimator.
//
// All times are int64 microseconds on a monotonic clock.
package flow

import "sort"

// ArrivalWindow estimates the packet arrival speed through a median filter
// on the most recent packet arrival intervals. A mean over a fixed period
// would be wrong because data sending may pause (paper §3.2); the median
// filter drops intervals that are far from the median (idle gaps and
// back-to-back bursts) before averaging the rest.
type ArrivalWindow struct {
	intervals []int64 // ring buffer of inter-arrival gaps, µs
	pos       int
	filled    int
	last      int64 // previous arrival time
	seen      bool
	coalesced int  // arrivals in the same µs as their predecessor, pending amortization
	burst     bool // clamp coalesced gaps to 1 µs instead of amortizing
}

// DefaultArrivalWindow is the history size used by UDT (16 packets).
const DefaultArrivalWindow = 16

// NewArrivalWindow returns an arrival-speed estimator over the last n
// inter-arrival intervals. Coalesced arrivals (zero gap from a batched
// read) are amortized over the next measurable gap, so the estimate is the
// *achieved* delivery rate — what the rate laws (slow-start exit, the AIMD
// base) want.
func NewArrivalWindow(n int) *ArrivalWindow {
	if n < 2 {
		n = 2
	}
	return &ArrivalWindow{intervals: make([]int64, n)}
}

// NewBurstArrivalWindow returns an arrival-speed estimator with *peak*
// semantics: coalesced arrivals record the 1 µs clock floor instead of
// being amortized, so a window-limited burst that lands in one read batch
// reads as a very fast arrival run, and the idle stretches between bursts
// are dropped by the median filter. This is the §3.2 arrival speed that
// sizes the flow window W = AS·(SYN+RTT): it must reflect how fast packets
// CAN arrive, not the average achieved rate — a window derived from the
// achieved rate is a fixed point the sender can never grow past. Where
// arrivals carry honest per-packet times (the simulator, sparse traffic)
// the two estimators see identical gaps and agree.
func NewBurstArrivalWindow(n int) *ArrivalWindow {
	w := NewArrivalWindow(n)
	w.burst = true
	return w
}

// OnArrival records a data packet arrival at time now.
//
// Arrivals in the same microsecond as their predecessor carry no timing
// information of their own: a batched read (recvmmsg, a GRO train) hands
// the whole burst to user space at once, so the zero spacing reflects the
// read mechanism, not the wire. Recording them as 1 µs samples would let
// them dominate the median under segmentation offload — where MOST
// arrivals are coalesced — and inflate AS by orders of magnitude, blowing
// up both the flow window W = AS·(SYN+RTT) and the sender's slow-start
// exit rate. Instead the burst is counted and the next measurable gap is
// amortized over it: a 16-packet train followed by a 200 µs gap records
// sixteen 12.5 µs samples, the burst's true average spacing.
func (w *ArrivalWindow) OnArrival(now int64) {
	if !w.seen {
		w.seen = true
		w.last = now
		return
	}
	gap := now - w.last
	w.last = now
	if gap <= 0 {
		if w.burst {
			gap = 1 // faster than the clock resolves: clamp to the floor
		} else {
			w.coalesced++
			return
		}
	}
	n := int64(w.coalesced) + 1
	w.coalesced = 0
	per := gap / n
	if per <= 0 {
		per = 1
	}
	for i := int64(0); i < n && i < int64(len(w.intervals)); i++ {
		w.intervals[w.pos] = per
		w.pos = (w.pos + 1) % len(w.intervals)
		if w.filled < len(w.intervals) {
			w.filled++
		}
	}
}

// medianFiltered returns the average of the samples within (median/8,
// median×8), and the number of samples kept. This is the paper's median
// filter; it needs at least half the window accepted to produce an estimate.
func medianFiltered(samples []int64) (avg int64, kept int) {
	if len(samples) == 0 {
		return 0, 0
	}
	tmp := make([]int64, len(samples))
	copy(tmp, samples)
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	median := tmp[len(tmp)/2]
	var sum int64
	for _, v := range tmp {
		if v < median<<3 && v > median>>3 {
			sum += v
			kept++
		}
	}
	if kept == 0 {
		return 0, 0
	}
	return sum / int64(kept), kept
}

// Rate returns the estimated packet arrival speed in packets per second, or
// 0 when there is not yet enough accepted history.
func (w *ArrivalWindow) Rate() int32 {
	if w.filled < len(w.intervals) {
		return 0
	}
	avg, kept := medianFiltered(w.intervals[:w.filled])
	if kept <= w.filled/2 || avg <= 0 {
		return 0
	}
	return int32(1e6 / avg)
}

// ProbeWindow estimates end-to-end link capacity from packet-pair probes
// (paper §3.4). Every 16th data packet is sent back-to-back with its
// successor; the receiver records the pair's arrival spacing, and the
// median-filtered average spacing is the per-packet service time of the
// bottleneck link.
type ProbeWindow struct {
	intervals []int64
	pos       int
	filled    int
}

// DefaultProbeWindow is the history size used by UDT (64 pairs).
const DefaultProbeWindow = 64

// ProbeInterval is the packet-pair probing period in packets: a data packet
// whose sequence number satisfies seq % ProbeInterval == 0 is followed
// immediately (no pacing delay) by the next packet.
const ProbeInterval = 16

// NewProbeWindow returns a capacity estimator over the last n pair spacings.
func NewProbeWindow(n int) *ProbeWindow {
	if n < 2 {
		n = 2
	}
	return &ProbeWindow{intervals: make([]int64, n)}
}

// OnPair records the arrival spacing (µs) of a packet pair. A non-positive
// gap is clamped to 1 µs — the pair arrived faster than the clock
// resolves — so on fast paths (virtual links, batched reads that deliver
// both halves at once) the capacity estimate reads as an upper bound of
// ~1e6 packets per second rather than starving at zero. The arrival-speed
// window, which amortizes coalesced bursts honestly, is what bounds the
// flow window and the slow-start exit rate on such paths.
func (w *ProbeWindow) OnPair(gap int64) {
	if gap <= 0 {
		gap = 1
	}
	w.intervals[w.pos] = gap
	w.pos = (w.pos + 1) % len(w.intervals)
	if w.filled < len(w.intervals) {
		w.filled++
	}
}

// Capacity returns the estimated link capacity in packets per second, or 0
// when there is not enough history yet.
func (w *ProbeWindow) Capacity() int32 {
	if w.filled == 0 {
		return 0
	}
	avg, kept := medianFiltered(w.intervals[:w.filled])
	if kept == 0 || avg <= 0 {
		return 0
	}
	return int32(1e6 / avg)
}

// AckWindow remembers recently sent ACKs so that the matching ACK2 yields an
// RTT sample and identifies the acknowledged sequence number.
type AckWindow struct {
	ids  []int32
	seqs []int32
	ts   []int64
	pos  int
	size int
}

// NewAckWindow returns an ACK history of n entries (UDT uses 1024).
func NewAckWindow(n int) *AckWindow {
	if n < 1 {
		n = 1
	}
	return &AckWindow{
		ids:  make([]int32, n),
		seqs: make([]int32, n),
		ts:   make([]int64, n),
	}
}

// Store records that an ACK with identifier ackID acknowledging seq was sent
// at time now.
func (w *AckWindow) Store(ackID, seq int32, now int64) {
	w.ids[w.pos] = ackID
	w.seqs[w.pos] = seq
	w.ts[w.pos] = now
	w.pos = (w.pos + 1) % len(w.ids)
	if w.size < len(w.ids) {
		w.size++
	}
}

// Acknowledge matches an incoming ACK2 with identifier ackID at time now,
// returning the acknowledged sequence number and the measured RTT. ok is
// false when the ACK has already been rotated out of the history or never
// existed (duplicate or stray ACK2).
func (w *AckWindow) Acknowledge(ackID int32, now int64) (seq int32, rtt int64, ok bool) {
	for i := 0; i < w.size; i++ {
		p := w.pos - 1 - i
		if p < 0 {
			p += len(w.ids)
		}
		if w.ids[p] == ackID {
			rtt = now - w.ts[p]
			if rtt < 1 {
				rtt = 1
			}
			seq = w.seqs[p]
			// Invalidate this and older entries cheaply by shrinking size.
			w.size = i
			if w.size < 0 {
				w.size = 0
			}
			return seq, rtt, true
		}
	}
	return 0, 0, false
}

// RTT smooths round-trip time samples the way UDT (and TCP) do:
// srtt += (sample − srtt)/8, rttvar += (|sample − srtt| − rttvar)/4.
type RTT struct {
	srtt int64
	rvar int64
	init bool
}

// NewRTT returns an estimator seeded with an initial guess (µs). UDT seeds
// 100 ms with 50 ms variance before the first sample.
func NewRTT(initial int64) *RTT {
	return &RTT{srtt: initial, rvar: initial / 2}
}

// Update folds in a new RTT sample (µs).
func (r *RTT) Update(sample int64) {
	if sample <= 0 {
		return
	}
	if !r.init {
		r.srtt = sample
		r.rvar = sample / 2
		r.init = true
		return
	}
	diff := sample - r.srtt
	if diff < 0 {
		diff = -diff
	}
	r.rvar += (diff - r.rvar) / 4
	r.srtt += (sample - r.srtt) / 8
}

// Smoothed returns the smoothed RTT in µs.
func (r *RTT) Smoothed() int64 { return r.srtt }

// Var returns the smoothed RTT variance in µs.
func (r *RTT) Var() int64 { return r.rvar }

// RTO returns the retransmission-timeout style expiry interval
// srtt + 4·rttvar used by UDT's EXP timer arithmetic.
func (r *RTT) RTO() int64 { return r.srtt + 4*r.rvar }
