package losslist

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"udt/internal/packet"
	"udt/internal/seqno"
)

// rg builds a Range literal keyed, keeping vet happy and tests terse.
func rg(s, e int32) packet.Range { return packet.Range{Start: s, End: e} }

// model is a trivially-correct loss set used as the oracle in property tests.
type model map[int32]bool

func (m model) insert(s1, s2 int32) {
	for s := s1; ; s = seqno.Inc(s) {
		m[s] = true
		if s == s2 {
			break
		}
	}
}

func (m model) ranges() []packet.Range {
	if len(m) == 0 {
		return nil
	}
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return seqno.Less(keys[i], keys[j]) })
	var out []packet.Range
	for _, k := range keys {
		if n := len(out); n > 0 && seqno.Inc(out[n-1].End) == k {
			out[n-1].End = k
			continue
		}
		out = append(out, packet.Range{Start: k, End: k})
	}
	return out
}

func sameRanges(t *testing.T, got, want []packet.Range) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("range count mismatch: got %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("range %d mismatch: got %v want %v", i, got, want)
		}
	}
}

func TestReceiverBasic(t *testing.T) {
	r := NewReceiver(1024)
	if _, ok := r.First(); ok {
		t.Fatal("empty list reported a first loss")
	}
	r.Insert(10, 12)
	r.Insert(20, 20)
	r.Insert(21, 25) // contiguous: merges with tail
	if r.Len() != 9 {
		t.Fatalf("Len = %d, want 9", r.Len())
	}
	if r.Events() != 2 {
		t.Fatalf("Events = %d, want 2", r.Events())
	}
	sameRanges(t, r.Ranges(), []packet.Range{rg(10, 12), rg(20, 25)})
	if f, ok := r.First(); !ok || f != 10 {
		t.Fatalf("First = %d,%v", f, ok)
	}
	for _, s := range []int32{10, 11, 12, 20, 25} {
		if !r.Find(s) {
			t.Fatalf("Find(%d) = false", s)
		}
	}
	for _, s := range []int32{9, 13, 19, 26, 1000} {
		if r.Find(s) {
			t.Fatalf("Find(%d) = true", s)
		}
	}
}

func TestReceiverRemoveShapes(t *testing.T) {
	r := NewReceiver(1024)
	r.Insert(10, 20)
	if !r.Remove(15) { // split
		t.Fatal("Remove(15) failed")
	}
	sameRanges(t, r.Ranges(), []packet.Range{rg(10, 14), rg(16, 20)})
	if !r.Remove(10) { // shrink left (node changes slot)
		t.Fatal("Remove(10) failed")
	}
	if !r.Remove(20) { // shrink right
		t.Fatal("Remove(20) failed")
	}
	sameRanges(t, r.Ranges(), []packet.Range{rg(11, 14), rg(16, 19)})
	if r.Remove(15) {
		t.Fatal("Remove(15) should report absent")
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
	// Drain a single-element node.
	r2 := NewReceiver(64)
	r2.Insert(5, 5)
	if !r2.Remove(5) || r2.Len() != 0 || r2.Events() != 0 {
		t.Fatal("single-node removal failed")
	}
	if _, ok := r2.First(); ok {
		t.Fatal("list should be empty")
	}
}

func TestReceiverRemoveHeadMoves(t *testing.T) {
	// Removing the head's start repeatedly exercises moveStart on the head.
	r := NewReceiver(256)
	r.Insert(100, 110)
	r.Insert(200, 205)
	for s := int32(100); s <= 110; s++ {
		if !r.Remove(s) {
			t.Fatalf("Remove(%d) failed", s)
		}
	}
	sameRanges(t, r.Ranges(), []packet.Range{rg(200, 205)})
	if f, _ := r.First(); f != 200 {
		t.Fatalf("First = %d, want 200", f)
	}
}

func TestReceiverRemoveUpTo(t *testing.T) {
	r := NewReceiver(1024)
	r.Insert(10, 14)
	r.Insert(20, 24)
	r.Insert(30, 30)
	if n := r.RemoveUpTo(22); n != 7 { // 10-14 (5) + 20,21 (2)
		t.Fatalf("RemoveUpTo removed %d, want 7", n)
	}
	sameRanges(t, r.Ranges(), []packet.Range{rg(22, 24), rg(30, 30)})
	if n := r.RemoveUpTo(100); n != 4 {
		t.Fatalf("RemoveUpTo removed %d, want 4", n)
	}
	if r.Len() != 0 || r.Events() != 0 {
		t.Fatal("list should be empty")
	}
}

func TestReceiverDuplicateInsertIgnored(t *testing.T) {
	r := NewReceiver(256)
	r.Insert(10, 20)
	r.Insert(15, 18) // entirely covered
	if r.Len() != 11 || r.Events() != 1 {
		t.Fatalf("duplicate insert changed state: len=%d events=%d", r.Len(), r.Events())
	}
	r.Insert(18, 25) // partial overlap with tail
	if r.Len() != 16 {
		t.Fatalf("partial overlap: len=%d, want 16", r.Len())
	}
	sameRanges(t, r.Ranges(), []packet.Range{rg(10, 25)})
}

func TestReceiverWrapAround(t *testing.T) {
	r := NewReceiver(256)
	r.Insert(seqno.Max-2, seqno.Max)
	r.Insert(0, 3) // contiguous across the wrap: should merge
	if r.Events() != 1 || r.Len() != 7 {
		t.Fatalf("wrap merge failed: events=%d len=%d %v", r.Events(), r.Len(), r.Ranges())
	}
	if !r.Find(seqno.Max) || !r.Find(0) {
		t.Fatal("wrap Find failed")
	}
	if !r.Remove(seqno.Max) {
		t.Fatal("wrap Remove failed")
	}
	sameRanges(t, r.Ranges(), []packet.Range{rg(seqno.Max-2, seqno.Max-1), rg(0, 3)})
}

func TestReceiverGrow(t *testing.T) {
	r := NewReceiver(16) // tiny capacity to force growth
	for i := int32(0); i < 40; i++ {
		r.Insert(i*10, i*10+2)
	}
	if r.Events() != 40 || r.Len() != 120 {
		t.Fatalf("after grow: events=%d len=%d", r.Events(), r.Len())
	}
	if r.Find(395) {
		t.Fatal("Find(395) should be false after grow")
	}
	if !r.Find(392) {
		t.Fatal("Find(392) should be true after grow")
	}
	for i := int32(0); i < 40; i++ {
		if !r.Find(i*10 + 1) {
			t.Fatalf("lost range %d after grow", i)
		}
	}
}

func TestReceiverReportIntervals(t *testing.T) {
	r := NewReceiver(256)
	r.Insert(10, 12)
	r.Insert(50, 50)
	const us = int64(1)
	// First call: everything unreported → all due.
	got := r.Report(1000*us, 10000*us, 0)
	if len(got) != 2 {
		t.Fatalf("first report: %v", got)
	}
	// Immediately after: nothing due.
	if got := r.Report(1001*us, 10000*us, 0); len(got) != 0 {
		t.Fatalf("premature re-report: %v", got)
	}
	// After 1×interval: due again (reports=1 → wait 2×interval next time).
	if got := r.Report(11001*us, 10000*us, 0); len(got) != 2 {
		t.Fatalf("second report: %v", got)
	}
	// 1×interval later: NOT due (needs 2× now).
	if got := r.Report(21002*us, 10000*us, 0); len(got) != 0 {
		t.Fatalf("increasing interval violated: %v", got)
	}
	// 2×interval after the second report: due.
	if got := r.Report(31002*us, 10000*us, 0); len(got) != 2 {
		t.Fatalf("third report: %v", got)
	}
	// max limits the batch.
	r.Insert(100, 100)
	if got := r.Report(1e9, 10000*us, 1); len(got) != 1 {
		t.Fatalf("max ignored: %v", got)
	}
}

func TestSenderBasic(t *testing.T) {
	s := NewSender()
	if added := s.Insert(10, 14); added != 5 {
		t.Fatalf("Insert added %d, want 5", added)
	}
	if added := s.Insert(12, 20); added != 6 { // overlap
		t.Fatalf("overlap Insert added %d, want 6", added)
	}
	if added := s.Insert(10, 20); added != 0 { // duplicate
		t.Fatalf("duplicate Insert added %d, want 0", added)
	}
	sameRanges(t, s.Ranges(), []packet.Range{rg(10, 20)})
	s.Insert(30, 31)
	s.Insert(22, 28)
	sameRanges(t, s.Ranges(), []packet.Range{rg(10, 20), rg(22, 28), rg(30, 31)})
	s.Insert(21, 21) // bridges 10-20 and 22-28
	sameRanges(t, s.Ranges(), []packet.Range{rg(10, 28), rg(30, 31)})
	if s.Len() != 21 {
		t.Fatalf("Len = %d, want 21", s.Len())
	}
}

func TestSenderPopOrder(t *testing.T) {
	s := NewSender()
	s.Insert(20, 21)
	s.Insert(5, 6)
	var got []int32
	for {
		v, ok := s.PopFirst()
		if !ok {
			break
		}
		got = append(got, v)
	}
	want := []int32{5, 6, 20, 21}
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("popped %v, want %v", got, want)
		}
	}
	if _, ok := s.PopFirst(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestSenderRemoveUpTo(t *testing.T) {
	s := NewSender()
	s.Insert(10, 14)
	s.Insert(20, 24)
	if n := s.RemoveUpTo(12); n != 2 {
		t.Fatalf("RemoveUpTo = %d, want 2", n)
	}
	sameRanges(t, s.Ranges(), []packet.Range{rg(12, 14), rg(20, 24)})
	if n := s.RemoveUpTo(30); n != 8 {
		t.Fatalf("RemoveUpTo = %d, want 8", n)
	}
	if s.Len() != 0 {
		t.Fatal("list should be empty")
	}
}

func TestSenderRemoveSplit(t *testing.T) {
	s := NewSender()
	s.Insert(10, 20)
	if !s.Remove(15) {
		t.Fatal("Remove failed")
	}
	sameRanges(t, s.Ranges(), []packet.Range{rg(10, 14), rg(16, 20)})
	if s.Remove(15) {
		t.Fatal("double Remove succeeded")
	}
	if !s.Find(14) || s.Find(15) || !s.Find(16) {
		t.Fatal("Find inconsistent after split")
	}
}

func TestSenderWrap(t *testing.T) {
	s := NewSender()
	s.Insert(seqno.Max-1, 2) // wraps: Max-1, Max, 0, 1, 2
	if s.Len() != 5 {
		t.Fatalf("wrap Len = %d, want 5", s.Len())
	}
	v, _ := s.PopFirst()
	if v != seqno.Max-1 {
		t.Fatalf("wrap pop = %d", v)
	}
	if n := s.RemoveUpTo(2); n != 3 {
		t.Fatalf("wrap RemoveUpTo = %d, want 3", n)
	}
}

// opStream drives a loss list and the oracle with the same random receiver-
// style operations (ordered inserts, random removals).
func TestPropReceiverMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewReceiver(4096)
		m := model{}
		next := int32(rng.Intn(1000))
		var inserted []int32
		for op := 0; op < 200; op++ {
			switch {
			case rng.Intn(3) != 0 || len(inserted) == 0: // insert
				gap := int32(rng.Intn(20) + 1)
				width := int32(rng.Intn(8))
				s1 := seqno.Add(next, gap)
				s2 := seqno.Add(s1, width)
				r.Insert(s1, s2)
				m.insert(s1, s2)
				for s := s1; ; s = seqno.Inc(s) {
					inserted = append(inserted, s)
					if s == s2 {
						break
					}
				}
				next = s2
			default: // remove a random previously inserted seq
				i := rng.Intn(len(inserted))
				s := inserted[i]
				got := r.Remove(s)
				want := m[s]
				if got != want {
					return false
				}
				delete(m, s)
			}
			if r.Len() != len(m) {
				return false
			}
		}
		want := m.ranges()
		got := r.Ranges()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropSenderMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSender()
		m := model{}
		base := int32(rng.Intn(100000))
		for op := 0; op < 300; op++ {
			switch rng.Intn(4) {
			case 0, 1: // insert random (possibly overlapping) range
				s1 := seqno.Add(base, int32(rng.Intn(500)))
				s2 := seqno.Add(s1, int32(rng.Intn(10)))
				before := len(m)
				m.insert(s1, s2)
				added := s.Insert(s1, s2)
				if added != len(m)-before {
					return false
				}
			case 2: // pop first
				got, ok := s.PopFirst()
				want := m.ranges()
				if !ok {
					if len(want) != 0 {
						return false
					}
					continue
				}
				if len(want) == 0 || want[0].Start != got {
					return false
				}
				delete(m, got)
			case 3: // remove-up-to a random point
				cut := seqno.Add(base, int32(rng.Intn(500)))
				want := 0
				for k := range m {
					if seqno.Cmp(k, cut) < 0 {
						want++
						delete(m, k)
					}
				}
				if got := s.RemoveUpTo(cut); got != want {
					return false
				}
			}
			if s.Len() != len(m) {
				return false
			}
		}
		want := m.ranges()
		got := s.Ranges()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNaiveMatchesReceiver(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := NewNaive(0, 8192)
	r := NewReceiver(8192)
	next := int32(0)
	for i := 0; i < 100; i++ {
		s1 := seqno.Add(next, int32(rng.Intn(20)+1))
		s2 := seqno.Add(s1, int32(rng.Intn(5)))
		n.Insert(s1, s2)
		r.Insert(s1, s2)
		next = s2
	}
	if n.Len() != r.Len() {
		t.Fatalf("Len mismatch: naive=%d receiver=%d", n.Len(), r.Len())
	}
	nf, _ := n.First()
	rf, _ := r.First()
	if nf != rf {
		t.Fatalf("First mismatch: %d vs %d", nf, rf)
	}
	sameRanges(t, n.Ranges(), r.Ranges())
	// Random removals stay in sync.
	for i := 0; i < 500; i++ {
		s := int32(rng.Intn(int(next)))
		if n.Remove(s) != r.Remove(s) {
			t.Fatalf("Remove(%d) diverged", s)
		}
	}
	sameRanges(t, n.Ranges(), r.Ranges())
}

func TestNaiveWindowBounds(t *testing.T) {
	n := NewNaive(100, 64)
	n.Insert(100, 101)
	if n.Find(99) || n.Remove(99) {
		t.Fatal("out-of-window seq must be invisible")
	}
	n.Insert(200, 300) // entirely out of window: ignored
	if n.Len() != 2 {
		t.Fatalf("Len = %d, want 2", n.Len())
	}
}

// walkBounded traverses the receiver list asserting it terminates within the
// node count — a link cycle (the corruption mode of a wrapped slot collision)
// would otherwise loop forever in Ranges/Report/First.
func walkBounded(t *testing.T, r *Receiver) []packet.Range {
	t.Helper()
	var out []packet.Range
	steps := 0
	for i := r.head; i != -1; i = r.next[i] {
		if steps++; steps > r.nodes {
			t.Fatalf("list cycle: %d steps for %d nodes", steps, r.nodes)
		}
		out = append(out, packet.Range{Start: r.start[i], End: r.end[i]})
	}
	return out
}

func TestReceiverWideRangeSplitNoCycle(t *testing.T) {
	// A single loss range wider than the slot capacity, split by a
	// retransmission near its far edge. Before the span-aware grow in
	// Insert, the split node's slot wrapped onto the head's slot and
	// produced next[slot] == slot — an infinite loop in every list walk
	// (observed as a NAK-path hang under a retransmission storm).
	r := NewReceiver(16) // capacity 16: [0,20] spans 21 > 16
	r.Insert(0, 20)
	if !r.Remove(15) {
		t.Fatal("Remove(15) failed")
	}
	sameRanges(t, walkBounded(t, r), []packet.Range{rg(0, 14), rg(16, 20)})
	if got := r.Report(1000, 10000, 128); len(got) != 2 {
		t.Fatalf("Report after wide split: %v", got)
	}
	if r.Len() != 20 || r.Events() != 2 {
		t.Fatalf("Len=%d Events=%d, want 20/2", r.Len(), r.Events())
	}
}

func TestReceiverMergedTailBeyondCapacity(t *testing.T) {
	// The tail-merge path must also respect the capacity invariant: a
	// contiguous Insert used to extend the tail end past capacity without
	// growing, and removals inside the overhang either failed (locate's
	// bounds check) or corrupted the links (wrapped split slot).
	r := NewReceiver(16)
	r.Insert(0, 5)
	r.Insert(6, 30) // merges with tail → [0,30], spans 31 > 16
	sameRanges(t, walkBounded(t, r), []packet.Range{rg(0, 30)})
	for _, s := range []int32{15, 17, 29} { // all inside the former overhang
		if !r.Remove(s) {
			t.Fatalf("Remove(%d) failed", s)
		}
	}
	sameRanges(t, walkBounded(t, r),
		[]packet.Range{rg(0, 14), rg(16, 16), rg(18, 28), rg(30, 30)})
	if got := r.Report(1000, 10000, 128); len(got) != 4 {
		t.Fatalf("Report: %v", got)
	}
}

func TestReceiverStormNoCycle(t *testing.T) {
	// Randomized retransmission storm: bursty inserts whose gaps and spans
	// routinely exceed the initial capacity, interleaved with removals of
	// random tracked packets. After every operation the list must stay
	// cycle-free, ordered, and disjoint.
	rng := rand.New(rand.NewSource(7))
	r := NewReceiver(16)
	next := int32(0)
	var tracked []int32
	check := func() {
		rs := walkBounded(t, r)
		for i := 1; i < len(rs); i++ {
			if seqno.Cmp(rs[i-1].End, rs[i].Start) >= 0 {
				t.Fatalf("ranges out of order/overlapping: %v", rs)
			}
		}
	}
	for op := 0; op < 2000; op++ {
		if len(tracked) == 0 || rng.Intn(3) == 0 {
			gap := int32(rng.Intn(100) + 1)
			span := int32(rng.Intn(60))
			s := next + gap
			e := s + span
			next = e + 1
			r.Insert(s, e)
			for q := s; q <= e; q++ {
				tracked = append(tracked, q)
			}
		} else {
			i := rng.Intn(len(tracked))
			seq := tracked[i]
			tracked[i] = tracked[len(tracked)-1]
			tracked = tracked[:len(tracked)-1]
			if !r.Remove(seq) {
				t.Fatalf("op %d: Remove(%d) failed", op, seq)
			}
		}
		check()
	}
	if r.Len() != len(tracked) {
		t.Fatalf("Len=%d, tracked=%d", r.Len(), len(tracked))
	}
}
