package losslist

import (
	"udt/internal/packet"
	"udt/internal/seqno"
)

// Naive is the strawman loss store the paper argues against (§4.2): holes in
// a sliding window represented by a per-packet bit map. Every query and every
// NAK encoding scans the window, so access cost grows with the BDP rather
// than with the number of loss events. It exists only for the ablation
// benchmark comparing it against the range-based lists; it is not used by
// the protocol.
type Naive struct {
	bits   []uint64
	base   int32 // sequence number of bit 0
	window int32
	length int
}

// NewNaive returns a bitmap loss store covering a window of `window` packets
// starting at sequence number base.
func NewNaive(base int32, window int) *Naive {
	return &Naive{
		bits:   make([]uint64, (window+63)/64),
		base:   base,
		window: int32(window),
	}
}

func (n *Naive) idx(seq int32) (int32, bool) {
	off := seqno.Off(n.base, seq)
	if off < 0 || off >= n.window {
		return 0, false
	}
	return off, true
}

// Len returns the number of lost packets recorded.
func (n *Naive) Len() int { return n.length }

// Insert marks the inclusive range [s1, s2] as lost.
func (n *Naive) Insert(s1, s2 int32) {
	for s := s1; ; s = seqno.Inc(s) {
		if i, ok := n.idx(s); ok {
			w, b := i/64, uint(i%64)
			if n.bits[w]&(1<<b) == 0 {
				n.bits[w] |= 1 << b
				n.length++
			}
		}
		if s == s2 {
			return
		}
	}
}

// Remove clears seq, reporting whether it was set.
func (n *Naive) Remove(seq int32) bool {
	i, ok := n.idx(seq)
	if !ok {
		return false
	}
	w, b := i/64, uint(i%64)
	if n.bits[w]&(1<<b) == 0 {
		return false
	}
	n.bits[w] &^= 1 << b
	n.length--
	return true
}

// Find reports whether seq is recorded as lost. This is the O(1) part; the
// expensive operations are First and Ranges, which must scan.
func (n *Naive) Find(seq int32) bool {
	i, ok := n.idx(seq)
	if !ok {
		return false
	}
	return n.bits[i/64]&(1<<uint(i%64)) != 0
}

// First scans for the smallest recorded loss.
func (n *Naive) First() (int32, bool) {
	for w, word := range n.bits {
		if word == 0 {
			continue
		}
		for b := 0; b < 64; b++ {
			if word&(1<<uint(b)) != 0 {
				return seqno.Add(n.base, int32(w*64+b)), true
			}
		}
	}
	return 0, false
}

// Ranges scans the whole window and reassembles loss ranges — the operation
// whose cost the paper's range list avoids.
func (n *Naive) Ranges() []packet.Range {
	var out []packet.Range
	var cur *packet.Range
	for i := int32(0); i < n.window; i++ {
		set := n.bits[i/64]&(1<<uint(i%64)) != 0
		switch {
		case set && cur == nil:
			out = append(out, packet.Range{Start: seqno.Add(n.base, i), End: seqno.Add(n.base, i)})
			cur = &out[len(out)-1]
		case set:
			cur.End = seqno.Add(n.base, i)
		default:
			cur = nil
		}
	}
	return out
}
