package losslist

import (
	"sort"

	"udt/internal/packet"
	"udt/internal/seqno"
)

// Sender is the sender-side loss list: the retransmission queue filled by
// incoming NAKs and drained one sequence number at a time (lost packets are
// always sent with higher priority than new data, §4.8). Unlike the receiver
// list, NAK ranges can arrive out of order and overlap — duplicates from the
// receiver's increasing-interval re-reports — so Sender keeps a sorted,
// coalesced range set.
//
// Sender is not safe for concurrent use.
type Sender struct {
	ranges []packet.Range // sorted by Start, disjoint, non-adjacent
	length int            // total packets covered
}

// NewSender returns an empty sender loss list.
func NewSender() *Sender { return &Sender{} }

// Len returns the number of lost packets queued for retransmission.
func (s *Sender) Len() int { return s.length }

// Events returns the number of distinct ranges queued.
func (s *Sender) Events() int { return len(s.ranges) }

// recount recomputes length after structural changes.
func (s *Sender) recount() {
	n := 0
	for _, r := range s.ranges {
		n += int(seqno.Len(r.Start, r.End))
	}
	s.length = n
}

// Insert adds the inclusive range [s1, s2], merging with any overlapping or
// adjacent ranges, and returns the number of sequence numbers that were not
// already present. Duplicate NAKs therefore insert nothing.
func (s *Sender) Insert(s1, s2 int32) int {
	if seqno.Cmp(s1, s2) > 0 {
		s1, s2 = s2, s1
	}
	before := s.length
	// Find the first range whose end is >= s1-1 (candidate for merge).
	lo := sort.Search(len(s.ranges), func(i int) bool {
		return seqno.Cmp(s.ranges[i].End, seqno.Dec(s1)) >= 0
	})
	// Collect the span of ranges [lo, hi) that merge with [s1, s2].
	hi := lo
	for hi < len(s.ranges) && seqno.Cmp(s.ranges[hi].Start, seqno.Inc(s2)) <= 0 {
		hi++
	}
	if lo == hi {
		// No overlap: plain insertion.
		s.ranges = append(s.ranges, packet.Range{})
		copy(s.ranges[lo+1:], s.ranges[lo:])
		s.ranges[lo] = packet.Range{Start: s1, End: s2}
		s.length += int(seqno.Len(s1, s2))
		return s.length - before
	}
	ns, ne := s1, s2
	if seqno.Cmp(s.ranges[lo].Start, ns) < 0 {
		ns = s.ranges[lo].Start
	}
	if seqno.Cmp(s.ranges[hi-1].End, ne) > 0 {
		ne = s.ranges[hi-1].End
	}
	s.ranges[lo] = packet.Range{Start: ns, End: ne}
	s.ranges = append(s.ranges[:lo+1], s.ranges[hi:]...)
	s.recount()
	return s.length - before
}

// PopFirst removes and returns the smallest queued sequence number. Lost
// packets are retransmitted lowest-first.
func (s *Sender) PopFirst() (int32, bool) {
	if len(s.ranges) == 0 {
		return 0, false
	}
	r := &s.ranges[0]
	seq := r.Start
	if r.Start == r.End {
		s.ranges = s.ranges[1:]
	} else {
		r.Start = seqno.Inc(r.Start)
	}
	s.length--
	return seq, true
}

// First returns the smallest queued sequence number without removing it.
func (s *Sender) First() (int32, bool) {
	if len(s.ranges) == 0 {
		return 0, false
	}
	return s.ranges[0].Start, true
}

// Remove deletes a single sequence number, reporting whether it was present.
func (s *Sender) Remove(seq int32) bool {
	i := sort.Search(len(s.ranges), func(i int) bool {
		return seqno.Cmp(s.ranges[i].End, seq) >= 0
	})
	if i == len(s.ranges) || seqno.Cmp(s.ranges[i].Start, seq) > 0 {
		return false
	}
	r := s.ranges[i]
	switch {
	case r.Start == r.End:
		s.ranges = append(s.ranges[:i], s.ranges[i+1:]...)
	case seq == r.Start:
		s.ranges[i].Start = seqno.Inc(seq)
	case seq == r.End:
		s.ranges[i].End = seqno.Dec(seq)
	default:
		s.ranges = append(s.ranges, packet.Range{})
		copy(s.ranges[i+2:], s.ranges[i+1:])
		s.ranges[i] = packet.Range{Start: r.Start, End: seqno.Dec(seq)}
		s.ranges[i+1] = packet.Range{Start: seqno.Inc(seq), End: r.End}
	}
	s.length--
	return true
}

// RemoveUpTo drops every queued sequence number strictly before seq (they
// were cumulatively acknowledged) and returns how many were dropped.
func (s *Sender) RemoveUpTo(seq int32) int {
	removed := 0
	for len(s.ranges) > 0 {
		r := &s.ranges[0]
		if seqno.Cmp(r.End, seq) < 0 {
			removed += int(seqno.Len(r.Start, r.End))
			s.ranges = s.ranges[1:]
			continue
		}
		if seqno.Cmp(r.Start, seq) < 0 {
			removed += int(seqno.Off(r.Start, seq))
			r.Start = seq
		}
		break
	}
	s.length -= removed
	return removed
}

// Find reports whether seq is queued for retransmission.
func (s *Sender) Find(seq int32) bool {
	i := sort.Search(len(s.ranges), func(i int) bool {
		return seqno.Cmp(s.ranges[i].End, seq) >= 0
	})
	return i < len(s.ranges) && seqno.Cmp(s.ranges[i].Start, seq) <= 0
}

// Ranges returns the queued ranges in increasing order.
func (s *Sender) Ranges() []packet.Range {
	out := make([]packet.Range, len(s.ranges))
	copy(out, s.ranges)
	return out
}
