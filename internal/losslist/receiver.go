// Package losslist implements UDT's loss information management (paper §4.2
// and Appendix).
//
// Losses are stored as inclusive sequence ranges, one node per loss event,
// because congestion loss is bursty (Fig. 8): storing [2, 5] as a single
// node instead of four numbers makes every operation proportional to the
// number of loss *events*, not lost packets, and keeps each access at
// near-constant cost (Fig. 9).
//
// Receiver holds the Appendix's static circular list: a node's slot is the
// head slot plus the sequence distance between the node's start number and
// the head's start number, so locating the node for a sequence number is a
// direct index computation rather than a search. Sender is the sender-side
// list (retransmission queue) built on sorted ranges, and Naive is a
// bitmap-based alternative used only to reproduce the paper's motivation in
// an ablation benchmark.
package losslist

import (
	"udt/internal/packet"
	"udt/internal/seqno"
)

const empty = int32(-1)

// Receiver is the receiver-side loss list from the paper's Appendix: a
// static, logically circular array of [start, end] nodes linked in sequence
// order. At the receiver, losses are detected in increasing sequence order,
// so insertion always happens after the tail; removal (a retransmitted
// packet arrived) may hit any node and may split a range in two.
//
// Each node also records when its loss was last reported in a NAK and how
// many times, implementing the increasing retransmission-report interval of
// §3.5 (congestion-collapse avoidance).
//
// Receiver is not safe for concurrent use.
type Receiver struct {
	start, end []int32 // end is inclusive; both hold `empty` for free slots
	next, prev []int32 // slot links; -1 terminates
	lastReport []int64 // microseconds; when this node was last NAK'd
	reports    []int32 // how many times this node has been reported

	head, tail int32 // slot indices; -1 when the list is empty
	length     int   // total lost packets covered
	nodes      int   // number of nodes (loss events)
}

// NewReceiver returns a receiver loss list that can track losses spanning a
// sequence window of at least capacity packets. Capacity should be at least
// twice the maximum flow window; it is rounded up to a power of two.
func NewReceiver(capacity int) *Receiver {
	if capacity < 16 {
		capacity = 16
	}
	c := 1
	for c < capacity {
		c <<= 1
	}
	r := &Receiver{
		start:      make([]int32, c),
		end:        make([]int32, c),
		next:       make([]int32, c),
		prev:       make([]int32, c),
		lastReport: make([]int64, c),
		reports:    make([]int32, c),
		head:       -1,
		tail:       -1,
	}
	for i := range r.start {
		r.start[i] = empty
	}
	return r
}

// Len returns the number of lost packets currently tracked.
func (r *Receiver) Len() int { return r.length }

// Events returns the number of loss events (nodes) currently tracked.
func (r *Receiver) Events() int { return r.nodes }

// slotFor returns the slot index for a node whose range starts at s,
// relative to the current head. Only valid when the list is non-empty.
func (r *Receiver) slotFor(s int32) int32 {
	off := seqno.Off(r.start[r.head], s)
	n := int32(len(r.start))
	idx := (r.head + off) & (n - 1)
	if idx < 0 {
		idx += n
	}
	return idx
}

// grow doubles the slot array and re-inserts all nodes. It only triggers
// when losses span more than the configured capacity, which a correctly
// sized list (≥ 2× flow window) never does; growing keeps the structure
// safe rather than silently dropping reliability state.
func (r *Receiver) grow() {
	old := *r
	n := len(r.start) * 2
	r.start = make([]int32, n)
	r.end = make([]int32, n)
	r.next = make([]int32, n)
	r.prev = make([]int32, n)
	r.lastReport = make([]int64, n)
	r.reports = make([]int32, n)
	for i := range r.start {
		r.start[i] = empty
	}
	r.head, r.tail = -1, -1
	r.length, r.nodes = 0, 0
	for i := old.head; i != -1; i = old.next[i] {
		r.Insert(old.start[i], old.end[i])
		slot := r.tail
		r.lastReport[slot] = old.lastReport[i]
		r.reports[slot] = old.reports[i]
	}
}

// Insert records the inclusive loss range [s1, s2]. At the receiver losses
// are detected in increasing order, so [s1, s2] must follow every range
// already in the list; if it is contiguous with the tail range the tail is
// extended instead of allocating a node. Contiguity resets the report clock
// only for the new packets (kept per-node, so the merged node is considered
// unreported).
func (r *Receiver) Insert(s1, s2 int32) {
	if seqno.Cmp(s1, s2) > 0 {
		s1, s2 = s2, s1
	}
	n := seqno.Len(s1, s2)
	if r.head == -1 {
		for n > int32(len(r.start)) {
			r.grow()
		}
		slot := int32(0)
		r.head, r.tail = slot, slot
		r.start[slot], r.end[slot] = s1, s2
		r.next[slot], r.prev[slot] = -1, -1
		r.lastReport[slot], r.reports[slot] = 0, 0
		r.length = int(n)
		r.nodes = 1
		return
	}
	// Ignore any part already covered by the tail (duplicate detection).
	if seqno.Cmp(s1, r.end[r.tail]) <= 0 {
		if seqno.Cmp(s2, r.end[r.tail]) <= 0 {
			return
		}
		s1 = seqno.Inc(r.end[r.tail])
		n = seqno.Len(s1, s2)
	}
	// Every tracked sequence number's slot is its offset from the head
	// start, so the whole span [head.start, s2] must stay within capacity —
	// including a tail end about to be extended by the merge below. If only
	// the new node's *start* were checked (as it once was), a merged tail
	// could stretch past capacity and a later mid-range Remove would compute
	// a wrapped slot for the split node, colliding with a live slot and
	// corrupting the links into a cycle that hangs every list walk.
	for seqno.Off(r.start[r.head], s2) >= int32(len(r.start)) {
		r.grow()
	}
	// Merge with the tail when contiguous.
	if seqno.Inc(r.end[r.tail]) == s1 {
		r.end[r.tail] = s2
		r.length += int(n)
		// New losses in this node have never been reported.
		r.reports[r.tail] = 0
		r.lastReport[r.tail] = 0
		return
	}
	slot := r.slotFor(s1)
	r.start[slot], r.end[slot] = s1, s2
	r.lastReport[slot], r.reports[slot] = 0, 0
	r.next[slot] = -1
	r.prev[slot] = r.tail
	r.next[r.tail] = slot
	r.tail = slot
	r.length += int(n)
	r.nodes++
}

// locate finds the node whose range contains seq, returning its slot or -1.
// Per the Appendix, the slot for seq is computed directly; if that exact
// slot does not start a node, the covering node (if any) is found by walking
// back to the nearest occupied slot.
func (r *Receiver) locate(seq int32) int32 {
	if r.head == -1 {
		return -1
	}
	if seqno.Cmp(seq, r.start[r.head]) < 0 || seqno.Cmp(seq, r.end[r.tail]) > 0 {
		return -1
	}
	off := seqno.Off(r.start[r.head], seq)
	if off >= int32(len(r.start)) {
		return -1
	}
	slot := r.slotFor(seq)
	if r.start[slot] != empty && seqno.Cmp(r.start[slot], seq) <= 0 {
		if seqno.Cmp(seq, r.end[slot]) <= 0 {
			return slot
		}
		return -1
	}
	// Walk back to the covering node. The walk length is bounded by the
	// distance to the previous node's start; thanks to locality this is a
	// handful of steps in practice (Fig. 9).
	n := int32(len(r.start))
	for i := int32(1); i <= off; i++ {
		s := slot - i
		if s < 0 {
			s += n
		}
		if r.start[s] != empty {
			if seqno.Cmp(r.start[s], seq) <= 0 && seqno.Cmp(seq, r.end[s]) <= 0 {
				return s
			}
			return -1
		}
	}
	return -1
}

// Find reports whether seq is currently recorded as lost.
func (r *Receiver) Find(seq int32) bool { return r.locate(seq) != -1 }

// unlink removes the node at slot from the list.
func (r *Receiver) unlink(slot int32) {
	p, nx := r.prev[slot], r.next[slot]
	if p != -1 {
		r.next[p] = nx
	} else {
		r.head = nx
	}
	if nx != -1 {
		r.prev[nx] = p
	} else {
		r.tail = p
	}
	r.start[slot] = empty
	r.nodes--
}

// moveStart rewrites a node's start number, which changes its slot.
func (r *Receiver) moveStart(slot, newStart int32) {
	e := r.end[slot]
	lr, rc := r.lastReport[slot], r.reports[slot]
	p, nx := r.prev[slot], r.next[slot]
	r.start[slot] = empty
	var ns int32
	if p != -1 {
		ns = r.slotFor(newStart)
	} else {
		// Node is (or becomes) the head: its slot defines the origin, so any
		// free slot works; keep using offset from the following node if any,
		// else slot 0. Simplest correct choice: reuse the old slot index
		// arithmetic by temporarily anchoring on the next node.
		if nx != -1 {
			// slotFor uses head; head may be this node. Compute relative to next.
			off := seqno.Off(r.start[nx], newStart) // negative
			n := int32(len(r.start))
			ns = (nx + off) % n
			if ns < 0 {
				ns += n
			}
		} else {
			ns = 0
		}
	}
	r.start[ns], r.end[ns] = newStart, e
	r.lastReport[ns], r.reports[ns] = lr, rc
	r.prev[ns], r.next[ns] = p, nx
	if p != -1 {
		r.next[p] = ns
	} else {
		r.head = ns
	}
	if nx != -1 {
		r.prev[nx] = ns
	} else {
		r.tail = ns
	}
}

// Remove deletes seq from the list (the retransmission arrived). If seq sits
// inside a range the range is shrunk or split. It reports whether seq was
// present.
func (r *Receiver) Remove(seq int32) bool {
	slot := r.locate(seq)
	if slot == -1 {
		return false
	}
	s, e := r.start[slot], r.end[slot]
	switch {
	case s == e: // single loss
		r.unlink(slot)
	case seq == s: // shrink from the left: start moves, so the node moves slots
		r.moveStart(slot, seqno.Inc(s))
	case seq == e: // shrink from the right
		r.end[slot] = seqno.Dec(e)
	default: // split: [s, seq-1] stays in place, [seq+1, e] becomes a new node
		r.end[slot] = seqno.Dec(seq)
		ns := r.slotFor(seqno.Inc(seq))
		r.start[ns], r.end[ns] = seqno.Inc(seq), e
		r.lastReport[ns], r.reports[ns] = r.lastReport[slot], r.reports[slot]
		nx := r.next[slot]
		r.next[ns], r.prev[ns] = nx, slot
		r.next[slot] = ns
		if nx != -1 {
			r.prev[nx] = ns
		} else {
			r.tail = ns
		}
		r.nodes++
	}
	r.length--
	return true
}

// RemoveUpTo drops every tracked loss with sequence number strictly before
// seq and returns how many packets were dropped. It is used when the peer
// declares data obsolete or the ACK position overtakes stale losses.
func (r *Receiver) RemoveUpTo(seq int32) int {
	removed := 0
	for r.head != -1 && seqno.Cmp(r.start[r.head], seq) < 0 {
		h := r.head
		if seqno.Cmp(r.end[h], seq) < 0 {
			removed += int(seqno.Len(r.start[h], r.end[h]))
			r.length -= int(seqno.Len(r.start[h], r.end[h]))
			r.unlink(h)
			continue
		}
		n := int(seqno.Off(r.start[h], seq))
		removed += n
		r.length -= n
		r.moveStart(h, seq)
		break
	}
	return removed
}

// First returns the smallest lost sequence number.
func (r *Receiver) First() (int32, bool) {
	if r.head == -1 {
		return 0, false
	}
	return r.start[r.head], true
}

// Ranges returns all loss ranges in increasing sequence order.
func (r *Receiver) Ranges() []packet.Range {
	out := make([]packet.Range, 0, r.nodes)
	for i := r.head; i != -1; i = r.next[i] {
		out = append(out, packet.Range{Start: r.start[i], End: r.end[i]})
	}
	return out
}

// Report returns the loss ranges that are due for (re-)reporting in a NAK at
// time now (microseconds) and stamps them as reported. A node is due when it
// has never been reported or when now−lastReport exceeds reports·interval,
// so each re-report waits one interval longer than the previous one — the
// increasing feedback interval of §3.5 that prevents control-traffic
// congestion collapse. At most max ranges are returned (0 means no limit).
func (r *Receiver) Report(now int64, interval int64, max int) []packet.Range {
	var out []packet.Range
	for i := r.head; i != -1; i = r.next[i] {
		if max > 0 && len(out) >= max {
			break
		}
		if r.reports[i] == 0 || now-r.lastReport[i] >= int64(r.reports[i])*interval {
			out = append(out, packet.Range{Start: r.start[i], End: r.end[i]})
			r.lastReport[i] = now
			r.reports[i]++
		}
	}
	return out
}
