package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"udt/internal/seqno"
)

func TestDataRoundTrip(t *testing.T) {
	payload := []byte("the quick brown fox")
	p := Data{Seq: 12345, Timestamp: 987654, Payload: payload}
	buf := make([]byte, 1500)
	n, err := EncodeData(buf, &p)
	if err != nil {
		t.Fatal(err)
	}
	if n != DataHeaderSize+len(payload) {
		t.Fatalf("encoded length %d, want %d", n, DataHeaderSize+len(payload))
	}
	if IsControl(buf[:n]) {
		t.Fatal("data packet classified as control")
	}
	got, err := DecodeData(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != p.Seq || got.Timestamp != p.Timestamp || !bytes.Equal(got.Payload, payload) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestDataEncodeShortBuffer(t *testing.T) {
	p := Data{Seq: 1, Payload: make([]byte, 100)}
	if _, err := EncodeData(make([]byte, 50), &p); err == nil {
		t.Fatal("expected error for short buffer")
	}
}

func TestDecodeDataErrors(t *testing.T) {
	if _, err := DecodeData(make([]byte, 3)); err != ErrShort {
		t.Fatalf("got %v, want ErrShort", err)
	}
	buf := make([]byte, 16)
	buf[0] = 0x80 // control flag
	if _, err := DecodeData(buf); err == nil {
		t.Fatal("expected error decoding control as data")
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	h := Handshake{
		Version:    Version,
		SockType:   0,
		InitSeq:    424242,
		MSS:        1500,
		FlowWindow: 25600,
		ReqType:    1,
		ConnID:     777,
	}
	buf := make([]byte, 128)
	n, err := EncodeHandshake(buf, &h, 55)
	if err != nil {
		t.Fatal(err)
	}
	if !IsControl(buf[:n]) {
		t.Fatal("handshake not classified as control")
	}
	c, err := DecodeControl(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if c.Type != TypeHandshake || c.Timestamp != 55 {
		t.Fatalf("header mismatch: %+v", c)
	}
	got, err := DecodeHandshake(c)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, h)
	}
}

func TestACKRoundTrip(t *testing.T) {
	a := ACK{AckID: 9, Seq: 100000, RTT: 100000, RTTVar: 25000, AvailBuf: 8192, RecvRate: 83333, Capacity: 83334}
	buf := make([]byte, 64)
	n, err := EncodeACK(buf, &a, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := DecodeControl(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeACK(c)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, a)
	}
}

func TestLightACK(t *testing.T) {
	buf := make([]byte, 64)
	n, err := EncodeLightACK(buf, 3, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if n != CtrlHeaderSize+LightACKBody {
		t.Fatalf("light ack length %d", n)
	}
	c, err := DecodeControl(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeACK(c)
	if err != nil {
		t.Fatal(err)
	}
	if got.AckID != 3 || got.Seq != 500 || got.RTT != 0 {
		t.Fatalf("light ack mismatch: %+v", got)
	}
}

func TestACK2(t *testing.T) {
	buf := make([]byte, 64)
	n, err := EncodeACK2(buf, 41, 9)
	if err != nil {
		t.Fatal(err)
	}
	c, err := DecodeControl(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if c.Type != TypeACK2 || c.Extra != 41 {
		t.Fatalf("ack2 mismatch: %+v", c)
	}
}

func TestSimpleControls(t *testing.T) {
	buf := make([]byte, 64)
	for _, typ := range []ControlType{TypeKeepAlive, TypeShutdown, TypeCongestion} {
		n, err := EncodeSimple(buf, typ, 3)
		if err != nil {
			t.Fatal(err)
		}
		c, err := DecodeControl(buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		if c.Type != typ || len(c.Body) != 0 {
			t.Fatalf("%v round trip mismatch: %+v", typ, c)
		}
	}
}

func TestNAKRoundTrip(t *testing.T) {
	losses := []Range{{3, 3}, {6, 15}, {18, 18}, {20, 21}}
	buf := make([]byte, 256)
	n, err := EncodeNAK(buf, losses, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := DecodeControl(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	nak, err := DecodeNAK(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(nak.Losses) != len(losses) {
		t.Fatalf("got %d ranges, want %d", len(nak.Losses), len(losses))
	}
	for i := range losses {
		if nak.Losses[i] != losses[i] {
			t.Fatalf("range %d: got %+v want %+v", i, nak.Losses[i], losses[i])
		}
	}
}

func TestNAKPaperExample(t *testing.T) {
	// Paper Appendix: the segment 0x80000003, 0x80000006... — adjusted to the
	// described semantics: flagged start, plain end; lone plain number is a
	// single loss. Encode [3,3] wait — use the documented example:
	// losses 3; 6..15; 18 encode as {3, 6|F, 15, 18}? The appendix example
	// lists flagged-start pairs; verify both directions on that shape.
	losses := []Range{{3, 3}, {6, 15}, {18, 18}}
	words := compressedLen(losses)
	if words != 4 {
		t.Fatalf("compressed length %d words, want 4", words)
	}
	total := int32(0)
	for _, r := range losses {
		total += r.Count()
	}
	if total != 12 {
		t.Fatalf("covered %d seqnos, want 12", total)
	}
}

func TestDecompressMalformed(t *testing.T) {
	// Truncated range: flagged start with no end.
	b := []byte{0x80, 0, 0, 5}
	if _, err := DecompressLoss(b); err != ErrBadLossList {
		t.Fatalf("got %v, want ErrBadLossList", err)
	}
	// Flagged end.
	b = []byte{0x80, 0, 0, 5, 0x80, 0, 0, 9}
	if _, err := DecompressLoss(b); err != ErrBadLossList {
		t.Fatalf("got %v, want ErrBadLossList", err)
	}
	// Not a multiple of 4.
	if _, err := DecompressLoss(make([]byte, 7)); err != ErrBadLossList {
		t.Fatalf("got %v, want ErrBadLossList", err)
	}
	// Inverted range (start >= end).
	b = []byte{0x80, 0, 0, 9, 0, 0, 0, 5}
	if _, err := DecompressLoss(b); err != ErrBadLossList {
		t.Fatalf("got %v, want ErrBadLossList", err)
	}
}

func TestDecodeControlErrors(t *testing.T) {
	if _, err := DecodeControl(make([]byte, 4)); err != ErrShort {
		t.Fatalf("got %v, want ErrShort", err)
	}
	buf := make([]byte, CtrlHeaderSize)
	// Data flag where control expected.
	if _, err := DecodeControl(buf); err == nil {
		t.Fatal("expected error decoding data as control")
	}
	// Unknown type (0x7FFF).
	buf[0], buf[1] = 0xFF, 0xFF
	if _, err := DecodeControl(buf); err != ErrBadType {
		t.Fatalf("got %v, want ErrBadType", err)
	}
}

func TestIsControlShort(t *testing.T) {
	if !IsControl(nil) || !IsControl(make([]byte, 3)) {
		t.Fatal("short datagrams must classify as control so decoding reports ErrShort")
	}
}

// randomLosses builds a sorted, disjoint loss-range list from a random seed.
func randomLosses(rng *rand.Rand, n int) []Range {
	var out []Range
	s := int32(rng.Intn(1000))
	for i := 0; i < n; i++ {
		width := int32(rng.Intn(30))
		out = append(out, Range{Start: s, End: seqno.Add(s, width)})
		s = seqno.Add(s, width+2+int32(rng.Intn(100)))
	}
	return out
}

func TestPropNAKRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		losses := randomLosses(rng, int(n%64)+1)
		buf := make([]byte, CtrlHeaderSize+8*len(losses))
		sz, err := EncodeNAK(buf, losses, 0)
		if err != nil {
			return false
		}
		c, err := DecodeControl(buf[:sz])
		if err != nil {
			return false
		}
		nak, err := DecodeNAK(c)
		if err != nil || len(nak.Losses) != len(losses) {
			return false
		}
		for i := range losses {
			if nak.Losses[i] != losses[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropDataRoundTrip(t *testing.T) {
	f := func(seq int32, ts int32, payload []byte) bool {
		if seq < 0 {
			seq &= seqno.Max
		}
		p := Data{Seq: seq, Timestamp: ts, Payload: payload}
		buf := make([]byte, DataHeaderSize+len(payload))
		n, err := EncodeData(buf, &p)
		if err != nil {
			return false
		}
		got, err := DecodeData(buf[:n])
		return err == nil && got.Seq == seq && got.Timestamp == ts && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestControlTypeString(t *testing.T) {
	for typ, want := range map[ControlType]string{
		TypeHandshake: "handshake", TypeACK: "ack", TypeNAK: "nak",
		TypeACK2: "ack2", TypeShutdown: "shutdown", TypeKeepAlive: "keepalive",
		TypeCongestion: "congestion-warning", TypeMessageDrop: "message-drop",
	} {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
	if ControlType(0x99).String() == "" {
		t.Error("unknown type must still stringify")
	}
}

// TestHandshakeSockIDRoundTrip quick-checks the socket-ID extension in both
// directions: any extended handshake (SockID != 0) must encode to the
// 36-byte body and decode back field-for-field, and any plain handshake
// (SockID == 0) must stay on the paper-era 28-byte body.
func TestHandshakeSockIDRoundTrip(t *testing.T) {
	roundTrip := func(h Handshake) bool {
		buf := make([]byte, 128)
		n, err := EncodeHandshake(buf, &h, 7)
		if err != nil {
			return false
		}
		wantBody := HandshakeBody
		if h.SockID != 0 {
			wantBody = HandshakeExtBody
		}
		if n != CtrlHeaderSize+wantBody {
			return false
		}
		if !IsHandshake(buf[:n]) {
			return false
		}
		c, err := DecodeControl(buf[:n])
		if err != nil {
			return false
		}
		got, err := DecodeHandshake(c)
		if err != nil {
			return false
		}
		want := h
		if h.SockID == 0 {
			want.PeerSockID = 0 // never on the wire without the extension
		}
		return got == want
	}
	// These directions pin the pre-secure wire shapes; the authentication
	// and rendezvous options have their own round-trip tests and fuzz
	// targets.
	clearSec := func(h Handshake) Handshake {
		h.SecFlags, h.Nonce, h.Cookie, h.MAC = 0, [16]byte{}, 0, [32]byte{}
		h.RdvFlags, h.RdvNonce = 0, 0
		return h
	}
	// Extended direction: force a nonzero SockID.
	ext := func(h Handshake, id int32) bool {
		if id == 0 {
			id = 1
		}
		h.SockID = id
		return roundTrip(clearSec(h))
	}
	// Plain direction: force the extension off.
	plain := func(h Handshake) bool {
		h.SockID = 0
		return roundTrip(clearSec(h))
	}
	if err := quick.Check(ext, nil); err != nil {
		t.Errorf("extended handshake round trip: %v", err)
	}
	if err := quick.Check(plain, nil); err != nil {
		t.Errorf("plain handshake round trip: %v", err)
	}
}

// TestHandshakeOldNewCompat pins the negotiation matrix between paper-era
// (28-byte) and extended (36-byte) handshake speakers: an old decoder must
// accept an extended body (ignoring the extension), and a new decoder must
// accept an old body, reporting both socket IDs as zero.
func TestHandshakeOldNewCompat(t *testing.T) {
	h := Handshake{
		Version: Version, InitSeq: 99, MSS: 1472, FlowWindow: 25600,
		ReqType: 1, ConnID: 31337, SockID: -0x7ff70000, PeerSockID: 12,
	}
	buf := make([]byte, 128)
	n, err := EncodeHandshake(buf, &h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != CtrlHeaderSize+HandshakeExtBody {
		t.Fatalf("extended encode length %d, want %d", n, CtrlHeaderSize+HandshakeExtBody)
	}

	// Old peer reading a new handshake: it only knows the first 28 body
	// bytes; the words it does read must be unchanged by the extension.
	c, err := DecodeControl(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	c.Body = c.Body[:HandshakeBody] // what an old decoder interprets
	old, err := DecodeHandshake(c)
	if err != nil {
		t.Fatal(err)
	}
	if old.SockID != 0 || old.PeerSockID != 0 {
		t.Fatalf("truncated body produced socket IDs: %+v", old)
	}
	want := h
	want.SockID, want.PeerSockID = 0, 0
	if old != want {
		t.Fatalf("paper-era fields changed by extension: got %+v want %+v", old, want)
	}

	// New peer reading an old handshake: a 28-byte body must decode with
	// both IDs zero (address-demux fallback).
	h.SockID, h.PeerSockID = 0, 0
	n, err = EncodeHandshake(buf, &h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != CtrlHeaderSize+HandshakeBody {
		t.Fatalf("plain encode length %d, want %d", n, CtrlHeaderSize+HandshakeBody)
	}
	c, err = DecodeControl(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHandshake(c)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("old body decode mismatch: got %+v want %+v", got, h)
	}
	if got.Ext() {
		t.Fatal("plain handshake reported the extension")
	}
}

// TestIsHandshake checks the demultiplexer's cheap classifier against every
// control type and a data packet.
func TestIsHandshake(t *testing.T) {
	buf := make([]byte, 64)
	n, _ := EncodeHandshake(buf, &Handshake{Version: Version, SockID: 0}, 0)
	if !IsHandshake(buf[:n]) {
		t.Fatal("handshake not recognized")
	}
	n, _ = EncodeSimple(buf, TypeKeepAlive, 0)
	if IsHandshake(buf[:n]) {
		t.Fatal("keep-alive classified as handshake")
	}
	n, _ = EncodeData(buf, &Data{Seq: 0, Payload: []byte("x")})
	if IsHandshake(buf[:n]) {
		t.Fatal("data packet classified as handshake")
	}
	if IsHandshake(buf[:3]) {
		t.Fatal("short datagram classified as handshake")
	}
}
