package packet

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func rdvHandshake(sec bool) Handshake {
	h := Handshake{
		Version:    Version,
		InitSeq:    777,
		MSS:        1472,
		FlowWindow: 25600,
		ReqType:    HSRequest,
		ConnID:     4242,
		SockID:     0x40000007,
		RdvFlags:   RdvDial,
		RdvNonce:   0x0123456789abcdef,
	}
	if sec {
		h.SecFlags = 1
		h.Cookie = 0xfeedfacecafebeef
		for i := range h.Nonce {
			h.Nonce[i] = byte(0x10 + i)
		}
		for i := range h.MAC {
			h.MAC[i] = byte(0xC0 + i)
		}
	}
	return h
}

func TestRendezvousHandshakeRoundTrip(t *testing.T) {
	buf := make([]byte, 256)
	for _, sec := range []bool{false, true} {
		h := rdvHandshake(sec)
		want := HandshakeRdvBody
		if sec {
			want = HandshakeSecRdvBody
		}
		n, err := EncodeHandshake(buf, &h, 5)
		if err != nil {
			t.Fatal(err)
		}
		if n != CtrlHeaderSize+want {
			t.Fatalf("sec=%v encoded length %d, want %d", sec, n, CtrlHeaderSize+want)
		}
		c, err := DecodeControl(buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeHandshake(c)
		if err != nil {
			t.Fatal(err)
		}
		if got != h {
			t.Fatalf("sec=%v round trip mismatch:\n got %+v\nwant %+v", sec, got, h)
		}
	}
}

// A pre-rendezvous decoder sees a clear rendezvous request as a plain
// extended request (trailer ignored), and a current decoder sees a plain
// secure handshake exactly as before — byte layout and MAC offset are
// unchanged when the rendezvous option is absent.
func TestRendezvousBackwardCompat(t *testing.T) {
	h := rdvHandshake(false)
	buf := make([]byte, 256)
	n, err := EncodeHandshake(buf, &h, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Truncating the rendezvous trailer is what an old peer's re-encode
	// does: the classic + extension fields must survive.
	c, err := DecodeControl(buf[:CtrlHeaderSize+HandshakeExtBody])
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHandshake(c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rdv() {
		t.Fatal("truncated body still flags rendezvous")
	}
	if got.ConnID != h.ConnID || got.SockID != h.SockID {
		t.Fatalf("classic/ext fields lost: %+v", got)
	}

	sec := secHandshake()
	n, err = EncodeHandshake(buf, &sec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != CtrlHeaderSize+HandshakeSecBody {
		t.Fatalf("plain secure body grew to %d", n-CtrlHeaderSize)
	}
	input, mac, err := HandshakeMACInput(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if len(input) != handshakeMACOff || !bytes.Equal(mac, sec.MAC[:]) {
		t.Fatal("plain secure MAC offset moved")
	}
}

// The MAC of a secure rendezvous handshake must cover the rendezvous
// trailer: flipping any trailer bit must change the covered prefix.
func TestRendezvousMACCoversTrailer(t *testing.T) {
	h := rdvHandshake(true)
	buf := make([]byte, 256)
	n, err := EncodeHandshake(buf, &h, 9)
	if err != nil {
		t.Fatal(err)
	}
	input, mac, err := HandshakeMACInput(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if len(input) != HandshakeSecRdvBody-32 {
		t.Fatalf("covered prefix %d bytes, want %d", len(input), HandshakeSecRdvBody-32)
	}
	if !bytes.Equal(mac, h.MAC[:]) {
		t.Fatal("mac slice does not alias the MAC field")
	}
	// The covered prefix ends with the rendezvous nonce.
	if binary.BigEndian.Uint64(input[len(input)-8:]) != h.RdvNonce {
		t.Fatal("rendezvous nonce not at the end of the covered prefix")
	}
}

// FuzzRendezvousTrailer focuses the codec fuzzer on the attacker-controlled
// rendezvous trailer bytes: starting from valid clear and secure rendezvous
// requests, arbitrary trailer mutations must never panic the decoder, must
// keep the MAC split consistent with the decoder's length discrimination,
// and must keep decode∘encode canonical for anything that still decodes as
// secure or clear-rendezvous.
func FuzzRendezvousTrailer(f *testing.F) {
	buf := make([]byte, 256)
	for _, sec := range []bool{false, true} {
		h := rdvHandshake(sec)
		n, _ := EncodeHandshake(buf, &h, 1)
		f.Add(append([]byte(nil), buf[:n]...), uint32(0), uint64(0))
		f.Add(append([]byte(nil), buf[:n]...), uint32(0xffffffff), uint64(0xffffffffffffffff))
		f.Add(append([]byte(nil), buf[:n]...), RdvDial, uint64(1))
	}

	f.Fuzz(func(t *testing.T, raw []byte, flags uint32, nonce uint64) {
		// Mutate the trailer in place when the body is long enough to
		// carry one, then run the same invariants as FuzzDecodeHandshake.
		if len(raw) >= CtrlHeaderSize+HandshakeSecRdvBody {
			binary.BigEndian.PutUint32(raw[CtrlHeaderSize+64:], flags)
			binary.BigEndian.PutUint64(raw[CtrlHeaderSize+68:], nonce)
		} else if len(raw) >= CtrlHeaderSize+HandshakeRdvBody {
			binary.BigEndian.PutUint32(raw[CtrlHeaderSize+36:], flags)
			binary.BigEndian.PutUint64(raw[CtrlHeaderSize+40:], nonce)
		}
		c, err := DecodeControl(raw)
		if err != nil || c.Type != TypeHandshake {
			return
		}
		hs, err := DecodeHandshake(c)
		if err != nil {
			return
		}
		if _, mac, err := HandshakeMACInput(raw); err == nil {
			if hs.Sec() && !bytes.Equal(mac, hs.MAC[:]) {
				t.Fatalf("MACInput and DecodeHandshake disagree on the MAC location (body %d bytes)", len(c.Body))
			}
		} else if len(c.Body) >= HandshakeSecBody {
			t.Fatalf("MACInput refused a body of %d bytes", len(c.Body))
		}
		if !hs.Sec() && !(hs.Rdv() && len(c.Body) < HandshakeSecBody) {
			return
		}
		out := make([]byte, CtrlHeaderSize+HandshakeSecRdvBody)
		n, err := EncodeHandshake(out, &hs, c.Timestamp)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		c2, err := DecodeControl(out[:n])
		if err != nil {
			t.Fatalf("re-decode control: %v", err)
		}
		hs2, err := DecodeHandshake(c2)
		if err != nil {
			t.Fatalf("re-decode handshake: %v", err)
		}
		if hs2 != hs {
			t.Fatalf("re-encode changed the handshake:\n%+v\n%+v", hs, hs2)
		}
	})
}
