// Package packet defines UDT's wire format: fixed-size headers for data
// packets and the eight control packet types, plus the compressed loss-list
// encoding used inside NAK reports.
//
// The format follows the paper-era UDT protocol (and its Internet-Draft):
// all fields are big-endian; the highest bit of the first 32-bit word
// distinguishes data (0) from control (1) packets. Data packets carry a
// 31-bit packet-based sequence number and a relative timestamp. Control
// packets carry a 15-bit type, an "additional info" word whose meaning
// depends on the type, a timestamp, and a type-specific control information
// field.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"udt/internal/seqno"
)

// Header sizes in bytes.
const (
	DataHeaderSize = 8  // seq(4) + timestamp(4)
	CtrlHeaderSize = 12 // flag|type(4) + additional info(4) + timestamp(4)
)

// ControlType identifies a control packet.
type ControlType uint16

// Control packet types (paper §4.8 and the UDT Internet-Draft).
const (
	TypeHandshake   ControlType = 0x0
	TypeKeepAlive   ControlType = 0x1
	TypeACK         ControlType = 0x2
	TypeNAK         ControlType = 0x3
	TypeCongestion  ControlType = 0x4 // congestion warning (delay-based; obsolete, kept for compat)
	TypeShutdown    ControlType = 0x5
	TypeACK2        ControlType = 0x6
	TypeMessageDrop ControlType = 0x7
)

func (t ControlType) String() string {
	switch t {
	case TypeHandshake:
		return "handshake"
	case TypeKeepAlive:
		return "keepalive"
	case TypeACK:
		return "ack"
	case TypeNAK:
		return "nak"
	case TypeCongestion:
		return "congestion-warning"
	case TypeShutdown:
		return "shutdown"
	case TypeACK2:
		return "ack2"
	case TypeMessageDrop:
		return "message-drop"
	default:
		return fmt.Sprintf("control(%#x)", uint16(t))
	}
}

const ctrlFlag = uint32(1) << 31

// Common decode errors.
var (
	ErrShort       = errors.New("packet: datagram too short")
	ErrBadType     = errors.New("packet: unknown control type")
	ErrBadLossList = errors.New("packet: malformed compressed loss list")
)

// IsControl reports whether the raw datagram holds a control packet.
// Datagrams shorter than 4 bytes are reported as control so that the caller's
// subsequent Decode returns ErrShort.
func IsControl(raw []byte) bool {
	if len(raw) < 4 {
		return true
	}
	return binary.BigEndian.Uint32(raw)&ctrlFlag != 0
}

// Data is a decoded data packet. Payload aliases the decode buffer.
type Data struct {
	Seq       int32 // 31-bit packet sequence number
	Timestamp int32 // microseconds since connection start
	Payload   []byte
}

// EncodeData writes the data packet into dst, which must have room for
// DataHeaderSize + len(p.Payload) bytes, and returns the encoded length.
func EncodeData(dst []byte, p *Data) (int, error) {
	n := DataHeaderSize + len(p.Payload)
	if len(dst) < n {
		return 0, fmt.Errorf("packet: buffer too small for data packet: %d < %d", len(dst), n)
	}
	binary.BigEndian.PutUint32(dst[0:4], uint32(p.Seq)&^ctrlFlag)
	binary.BigEndian.PutUint32(dst[4:8], uint32(p.Timestamp))
	copy(dst[DataHeaderSize:], p.Payload)
	return n, nil
}

// DecodeData parses a raw datagram as a data packet. The returned payload
// aliases raw.
func DecodeData(raw []byte) (Data, error) {
	if len(raw) < DataHeaderSize {
		return Data{}, ErrShort
	}
	w0 := binary.BigEndian.Uint32(raw[0:4])
	if w0&ctrlFlag != 0 {
		return Data{}, errors.New("packet: not a data packet")
	}
	return Data{
		Seq:       int32(w0),
		Timestamp: int32(binary.BigEndian.Uint32(raw[4:8])),
		Payload:   raw[DataHeaderSize:],
	}, nil
}

// Handshake is the connection setup control packet body.
//
// The paper-era body is seven 32-bit words. A multiplexing endpoint appends
// a socket-ID pair (two more words, the extension UDT v4 later folded into
// its header): SockID names the sender's endpoint on its shared socket and
// PeerSockID echoes the destination's, once known. Old peers ignore the
// extra words and answer with the 28-byte body, which decodes with both IDs
// zero — the negotiated-down, address-demultiplexed mode.
//
// A secure endpoint appends the authentication option after the socket-ID
// pair: a flags word, a 16-byte nonce for session-key derivation, the
// 8-byte stateless source-address cookie, and a 32-byte HMAC over
// everything before it (see internal/secure for the key schedule). Old
// peers again ignore the extra bytes; a body shorter than HandshakeSecBody
// decodes with SecFlags zero — the signal the peer is paper-era, handled
// by the endpoint's negotiate-down policy.
//
// A rendezvous dialer (paper §4: both sides dial simultaneously) appends
// the rendezvous option — a flags word and an 8-byte tie-break nonce —
// after the socket-ID pair (clear handshakes) or after the authentication
// cookie (secure handshakes). The MAC always stays the final field and
// covers the rendezvous option, so a secure rendezvous request cannot have
// its trailer stripped or altered in flight. Old peers ignore the option:
// a clear rendezvous request decodes on a pre-rendezvous listener as a
// plain extended request (useful: rendezvous-to-listener still connects),
// while a secure one fails MAC verification there and is dropped.
type Handshake struct {
	Version    int32 // protocol version; this implementation speaks 4
	SockType   int32 // 0 = stream (the only mode the paper's UDT supports)
	InitSeq    int32 // initial packet sequence number
	MSS        int32 // maximum segment size (total UDP payload bytes)
	FlowWindow int32 // maximum flow window (packets)
	ReqType    int32 // 1 = request, -1 = response, -2 = cookie challenge
	ConnID     int32 // connection identifier chosen by the initiator
	SockID     int32 // sender's socket ID on its shared socket (0 = none)
	PeerSockID int32 // destination's socket ID as known to the sender (0 = unknown)

	SecFlags uint32   // authentication option flags (0 = option absent)
	Nonce    [16]byte // this side's key-derivation nonce
	Cookie   uint64   // source-address cookie (echoed from a challenge)

	RdvFlags uint32 // rendezvous option flags (0 = option absent)
	RdvNonce uint64 // rendezvous tie-break nonce

	MAC [32]byte // HMAC-SHA256 over the body bytes before this field
}

// Ext reports whether the handshake carries the socket-ID extension.
func (h *Handshake) Ext() bool { return h.SockID != 0 }

// Sec reports whether the handshake carries the authentication option.
func (h *Handshake) Sec() bool { return h.SecFlags != 0 }

// Rdv reports whether the handshake carries the rendezvous option.
func (h *Handshake) Rdv() bool { return h.RdvFlags != 0 }

// RdvDial is the RdvFlags value a rendezvous dialer sets: both sides send
// requests carrying it, and the deterministic tie-break on (Cookie,
// RdvNonce, ConnID) picks which side answers.
const RdvDial uint32 = 1

// Handshake request types carried in ReqType.
const (
	// HSRequest is a connection request.
	HSRequest = 1
	// HSResponse answers a request and concludes the handshake.
	HSResponse = -1
	// HSCookie is a stateless cookie challenge: the listener's demand
	// that a secure requester prove its source address by echoing the
	// enclosed cookie in a fresh request, before the listener allocates
	// any connection state.
	HSCookie = -2
)

// Handshake body sizes in bytes: the paper-era seven words, the
// socket-ID-extended nine words, the authentication-extended body, and the
// rendezvous-extended variants of the clear and secure bodies. The decoder
// discriminates by length, so every size must stay distinct and ordered.
const (
	HandshakeBody    = 28
	HandshakeExtBody = 36
	HandshakeSecBody = HandshakeExtBody + 4 + 16 + 8 + 32

	// rdvOptionSize is the rendezvous option: flags word + tie-break nonce.
	rdvOptionSize = 4 + 8

	// HandshakeRdvBody is a clear rendezvous request: the extended body
	// plus the rendezvous option (no MAC).
	HandshakeRdvBody = HandshakeExtBody + rdvOptionSize

	// HandshakeSecRdvBody is a secure rendezvous request: the rendezvous
	// option sits between the cookie and the (still final) MAC.
	HandshakeSecRdvBody = HandshakeSecBody + rdvOptionSize

	// handshakeMACOff is the offset of the MAC within a secure body
	// without the rendezvous option; the authenticator covers everything
	// before it. With the option the MAC shifts to the end of the body —
	// HandshakeMACInput discriminates by length.
	handshakeMACOff = HandshakeSecBody - 32
)

// Version is the protocol version this package speaks.
const Version = 4

// ACK is the acknowledgement control packet body (paper §3.1, §3.2, §3.4).
// Beyond the cumulative acknowledgement it feeds back the receiver-side
// measurements that drive the sender's window and rate control.
type ACK struct {
	AckID    int32 // ACK sequence number, echoed by ACK2 (in the header's additional-info word)
	Seq      int32 // all packets before this sequence number have been received
	RTT      int32 // microseconds
	RTTVar   int32 // microseconds
	AvailBuf int32 // available receiver buffer (packets)
	RecvRate int32 // packet arrival speed (packets per second)
	Capacity int32 // estimated link capacity (packets per second)
}

// LightACKBody is the control-info length of a "light" ACK carrying only Seq.
// The reference implementation sends light ACKs when acknowledging very
// frequently; we support decoding both.
const LightACKBody = 4

// FullACKBody is the control-info length of a full ACK.
const FullACKBody = 24

// NAK is the negative acknowledgement: an explicit compressed loss report.
type NAK struct {
	Losses []Range
}

// Range is an inclusive range of lost sequence numbers.
type Range struct {
	Start, End int32
}

// Count returns the number of sequence numbers covered by r.
func (r Range) Count() int32 { return seqno.Len(r.Start, r.End) }

// Control is a decoded control packet.
type Control struct {
	Type      ControlType
	Extra     int32 // additional info word (ACK ID for ACK/ACK2; first msg seq for MessageDrop)
	Timestamp int32
	Body      []byte // raw control information field (aliases the decode buffer)
}

// DecodeControl parses the common control header. The type-specific body is
// left raw in Body; use DecodeACK / DecodeNAK / DecodeHandshake to interpret.
func DecodeControl(raw []byte) (Control, error) {
	if len(raw) < CtrlHeaderSize {
		return Control{}, ErrShort
	}
	w0 := binary.BigEndian.Uint32(raw[0:4])
	if w0&ctrlFlag == 0 {
		return Control{}, errors.New("packet: not a control packet")
	}
	t := ControlType((w0 >> 16) & 0x7FFF)
	if t > TypeMessageDrop {
		return Control{}, ErrBadType
	}
	return Control{
		Type:      t,
		Extra:     int32(binary.BigEndian.Uint32(raw[4:8])),
		Timestamp: int32(binary.BigEndian.Uint32(raw[8:12])),
		Body:      raw[CtrlHeaderSize:],
	}, nil
}

func putCtrlHeader(dst []byte, t ControlType, extra, ts int32) {
	binary.BigEndian.PutUint32(dst[0:4], ctrlFlag|uint32(t)<<16)
	binary.BigEndian.PutUint32(dst[4:8], uint32(extra))
	binary.BigEndian.PutUint32(dst[8:12], uint32(ts))
}

// EncodeHandshake writes a handshake control packet and returns its length.
// The socket-ID extension words are appended only when h.SockID is nonzero,
// so non-multiplexed endpoints emit the paper-era 28-byte body unchanged;
// the authentication option (which fixes the socket-ID words in place even
// when zero) is appended only when h.SecFlags is nonzero. The MAC field is
// written as given — compute it afterwards over the slice
// HandshakeMACInput returns.
func EncodeHandshake(dst []byte, h *Handshake, ts int32) (int, error) {
	body := HandshakeBody
	if h.Ext() {
		body = HandshakeExtBody
	}
	if h.Rdv() {
		body = HandshakeRdvBody
	}
	if h.Sec() {
		body = HandshakeSecBody
		if h.Rdv() {
			body = HandshakeSecRdvBody
		}
	}
	n := CtrlHeaderSize + body
	if len(dst) < n {
		return 0, fmt.Errorf("packet: buffer too small for handshake: %d < %d", len(dst), n)
	}
	putCtrlHeader(dst, TypeHandshake, 0, ts)
	b := dst[CtrlHeaderSize:]
	for i, v := range []int32{h.Version, h.SockType, h.InitSeq, h.MSS, h.FlowWindow, h.ReqType, h.ConnID} {
		binary.BigEndian.PutUint32(b[i*4:], uint32(v))
	}
	if body >= HandshakeExtBody {
		binary.BigEndian.PutUint32(b[28:], uint32(h.SockID))
		binary.BigEndian.PutUint32(b[32:], uint32(h.PeerSockID))
	}
	switch {
	case h.Sec():
		binary.BigEndian.PutUint32(b[36:], h.SecFlags)
		copy(b[40:56], h.Nonce[:])
		binary.BigEndian.PutUint64(b[56:64], h.Cookie)
		macOff := handshakeMACOff
		if h.Rdv() {
			binary.BigEndian.PutUint32(b[64:], h.RdvFlags)
			binary.BigEndian.PutUint64(b[68:76], h.RdvNonce)
			macOff = HandshakeSecRdvBody - 32
		}
		copy(b[macOff:macOff+32], h.MAC[:])
	case h.Rdv():
		binary.BigEndian.PutUint32(b[36:], h.RdvFlags)
		binary.BigEndian.PutUint64(b[40:48], h.RdvNonce)
	}
	return n, nil
}

// HandshakeMACInput splits an encoded secure handshake packet into the
// body prefix the authenticator covers and the MAC field itself (both
// aliasing pkt). The control header — whose timestamp a retransmitting
// dialer may refresh — is deliberately outside the covered prefix. The
// split point is length-discriminated the same way DecodeHandshake is:
// a body long enough for the rendezvous option puts the MAC after it, so
// the authenticator covers the rendezvous trailer too. err is non-nil
// when pkt is too short to carry the authentication option.
func HandshakeMACInput(pkt []byte) (input, mac []byte, err error) {
	if len(pkt) < CtrlHeaderSize+HandshakeSecBody {
		return nil, nil, ErrShort
	}
	b := pkt[CtrlHeaderSize:]
	macOff := handshakeMACOff
	if len(b) >= HandshakeSecRdvBody {
		macOff = HandshakeSecRdvBody - 32
	}
	return b[:macOff], b[macOff : macOff+32], nil
}

// DecodeHandshake interprets the body of a handshake control packet. A
// 28-byte body (an old peer, or an endpoint without a shared socket) yields
// zero for both socket IDs — the signal to fall back to per-peer-address
// demultiplexing.
func DecodeHandshake(c Control) (Handshake, error) {
	if c.Type != TypeHandshake {
		return Handshake{}, fmt.Errorf("packet: %v is not a handshake", c.Type)
	}
	if len(c.Body) < HandshakeBody {
		return Handshake{}, ErrShort
	}
	get := func(i int) int32 { return int32(binary.BigEndian.Uint32(c.Body[i*4:])) }
	h := Handshake{
		Version:    get(0),
		SockType:   get(1),
		InitSeq:    get(2),
		MSS:        get(3),
		FlowWindow: get(4),
		ReqType:    get(5),
		ConnID:     get(6),
	}
	if len(c.Body) >= HandshakeExtBody {
		h.SockID = get(7)
		h.PeerSockID = get(8)
	}
	switch {
	case len(c.Body) >= HandshakeSecRdvBody:
		h.SecFlags = binary.BigEndian.Uint32(c.Body[36:])
		copy(h.Nonce[:], c.Body[40:56])
		h.Cookie = binary.BigEndian.Uint64(c.Body[56:64])
		// The rendezvous nonce is meaningful only when the option is
		// present (flags nonzero); leaving it zero otherwise keeps
		// decode∘encode canonical for non-rendezvous handshakes padded
		// out to this length.
		if f := binary.BigEndian.Uint32(c.Body[64:]); f != 0 {
			h.RdvFlags = f
			h.RdvNonce = binary.BigEndian.Uint64(c.Body[68:76])
		}
		copy(h.MAC[:], c.Body[HandshakeSecRdvBody-32:HandshakeSecRdvBody])
	case len(c.Body) >= HandshakeSecBody:
		h.SecFlags = binary.BigEndian.Uint32(c.Body[36:])
		copy(h.Nonce[:], c.Body[40:56])
		h.Cookie = binary.BigEndian.Uint64(c.Body[56:64])
		copy(h.MAC[:], c.Body[handshakeMACOff:HandshakeSecBody])
	case len(c.Body) >= HandshakeRdvBody:
		if f := binary.BigEndian.Uint32(c.Body[36:]); f != 0 {
			h.RdvFlags = f
			h.RdvNonce = binary.BigEndian.Uint64(c.Body[40:48])
		}
	}
	return h, nil
}

// IsHandshake reports whether the raw datagram is a handshake control
// packet, without decoding it — the cheap test demultiplexers run on every
// bare (non-socket-ID-prefixed) datagram from an unknown flow.
func IsHandshake(raw []byte) bool {
	if len(raw) < 4 {
		return false
	}
	w0 := binary.BigEndian.Uint32(raw)
	return w0&ctrlFlag != 0 && ControlType((w0>>16)&0x7FFF) == TypeHandshake
}

// EncodeACK writes a full ACK control packet and returns its length.
func EncodeACK(dst []byte, a *ACK, ts int32) (int, error) {
	n := CtrlHeaderSize + FullACKBody
	if len(dst) < n {
		return 0, fmt.Errorf("packet: buffer too small for ack: %d < %d", len(dst), n)
	}
	putCtrlHeader(dst, TypeACK, a.AckID, ts)
	b := dst[CtrlHeaderSize:]
	for i, v := range []int32{a.Seq, a.RTT, a.RTTVar, a.AvailBuf, a.RecvRate, a.Capacity} {
		binary.BigEndian.PutUint32(b[i*4:], uint32(v))
	}
	return n, nil
}

// EncodeLightACK writes a light ACK carrying only the cumulative sequence.
func EncodeLightACK(dst []byte, ackID, seq, ts int32) (int, error) {
	n := CtrlHeaderSize + LightACKBody
	if len(dst) < n {
		return 0, fmt.Errorf("packet: buffer too small for light ack: %d < %d", len(dst), n)
	}
	putCtrlHeader(dst, TypeACK, ackID, ts)
	binary.BigEndian.PutUint32(dst[CtrlHeaderSize:], uint32(seq))
	return n, nil
}

// DecodeACK interprets the body of an ACK control packet. Light ACKs yield
// zero values for all fields except AckID and Seq.
func DecodeACK(c Control) (ACK, error) {
	if c.Type != TypeACK {
		return ACK{}, fmt.Errorf("packet: %v is not an ack", c.Type)
	}
	if len(c.Body) < LightACKBody {
		return ACK{}, ErrShort
	}
	a := ACK{
		AckID: c.Extra,
		Seq:   int32(binary.BigEndian.Uint32(c.Body[0:4])),
	}
	if len(c.Body) >= FullACKBody {
		get := func(i int) int32 { return int32(binary.BigEndian.Uint32(c.Body[i*4:])) }
		a.RTT = get(1)
		a.RTTVar = get(2)
		a.AvailBuf = get(3)
		a.RecvRate = get(4)
		a.Capacity = get(5)
	}
	return a, nil
}

// EncodeACK2 writes an ACK2 control packet acknowledging ACK number ackID.
func EncodeACK2(dst []byte, ackID, ts int32) (int, error) {
	if len(dst) < CtrlHeaderSize {
		return 0, fmt.Errorf("packet: buffer too small for ack2: %d < %d", len(dst), CtrlHeaderSize)
	}
	putCtrlHeader(dst, TypeACK2, ackID, ts)
	return CtrlHeaderSize, nil
}

// EncodeNAK writes a NAK carrying the compressed loss list and returns its
// length. Ranges must be non-overlapping and in increasing order.
func EncodeNAK(dst []byte, losses []Range, ts int32) (int, error) {
	n := CtrlHeaderSize + compressedLen(losses)*4
	if len(dst) < n {
		return 0, fmt.Errorf("packet: buffer too small for nak: %d < %d", len(dst), n)
	}
	putCtrlHeader(dst, TypeNAK, 0, ts)
	CompressLoss(dst[CtrlHeaderSize:], losses)
	return n, nil
}

// DecodeNAK interprets the body of a NAK control packet.
func DecodeNAK(c Control) (NAK, error) {
	if c.Type != TypeNAK {
		return NAK{}, fmt.Errorf("packet: %v is not a nak", c.Type)
	}
	losses, err := DecompressLoss(c.Body)
	if err != nil {
		return NAK{}, err
	}
	return NAK{Losses: losses}, nil
}

// EncodeSimple writes a body-less control packet (keep-alive, shutdown,
// congestion warning).
func EncodeSimple(dst []byte, t ControlType, ts int32) (int, error) {
	if len(dst) < CtrlHeaderSize {
		return 0, fmt.Errorf("packet: buffer too small for %v: %d < %d", t, len(dst), CtrlHeaderSize)
	}
	putCtrlHeader(dst, t, 0, ts)
	return CtrlHeaderSize, nil
}

// NAKSize returns the exact encoded size of a NAK carrying losses —
// the sizing callers need to allocate (or arena-reserve) before EncodeNAK.
func NAKSize(losses []Range) int {
	return CtrlHeaderSize + compressedLen(losses)*4
}

// compressedLen returns the number of 32-bit words the compressed encoding
// of losses occupies.
func compressedLen(losses []Range) int {
	n := 0
	for _, r := range losses {
		if r.Start == r.End {
			n++
		} else {
			n += 2
		}
	}
	return n
}

// CompressLoss encodes loss ranges using the paper's Appendix scheme: a
// sequence number with the flag bit set opens a range that is closed by the
// next (flag-less) number; a flag-less number on its own is a single loss.
// dst must have room for compressedLen(losses)*4 bytes. It returns the number
// of bytes written.
func CompressLoss(dst []byte, losses []Range) int {
	off := 0
	for _, r := range losses {
		if r.Start == r.End {
			binary.BigEndian.PutUint32(dst[off:], uint32(r.Start))
			off += 4
		} else {
			binary.BigEndian.PutUint32(dst[off:], uint32(r.Start)|ctrlFlag)
			binary.BigEndian.PutUint32(dst[off+4:], uint32(r.End))
			off += 8
		}
	}
	return off
}

// DecompressLoss decodes a compressed loss list.
func DecompressLoss(body []byte) ([]Range, error) {
	if len(body)%4 != 0 {
		return nil, ErrBadLossList
	}
	var out []Range
	for i := 0; i < len(body); i += 4 {
		w := binary.BigEndian.Uint32(body[i:])
		if w&ctrlFlag != 0 {
			if i+8 > len(body) {
				return nil, ErrBadLossList
			}
			end := binary.BigEndian.Uint32(body[i+4:])
			if end&ctrlFlag != 0 {
				return nil, ErrBadLossList
			}
			start := int32(w &^ ctrlFlag)
			if seqno.Cmp(start, int32(end)) >= 0 {
				return nil, ErrBadLossList
			}
			out = append(out, Range{Start: start, End: int32(end)})
			i += 4
		} else {
			out = append(out, Range{Start: int32(w), End: int32(w)})
		}
	}
	return out, nil
}
