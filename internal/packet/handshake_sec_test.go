package packet

import (
	"bytes"
	"testing"
)

func secHandshake() Handshake {
	h := Handshake{
		Version:    Version,
		InitSeq:    123456,
		MSS:        1500,
		FlowWindow: 25600,
		ReqType:    HSRequest,
		ConnID:     999,
		SockID:     0x40000001,
		PeerSockID: 0x40000002,
		SecFlags:   3,
		Cookie:     0xdeadbeefcafef00d,
	}
	for i := range h.Nonce {
		h.Nonce[i] = byte(i + 1)
	}
	for i := range h.MAC {
		h.MAC[i] = byte(0xA0 + i)
	}
	return h
}

func TestSecureHandshakeRoundTrip(t *testing.T) {
	h := secHandshake()
	buf := make([]byte, 256)
	n, err := EncodeHandshake(buf, &h, 99)
	if err != nil {
		t.Fatal(err)
	}
	if n != CtrlHeaderSize+HandshakeSecBody {
		t.Fatalf("encoded length %d, want %d", n, CtrlHeaderSize+HandshakeSecBody)
	}
	c, err := DecodeControl(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHandshake(c)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}

	// A secure handshake without the socket-ID extension still pins the
	// extension words in place (as zeros).
	h2 := h
	h2.SockID, h2.PeerSockID = 0, 0
	n2, err := EncodeHandshake(buf, &h2, 99)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != CtrlHeaderSize+HandshakeSecBody {
		t.Fatalf("no-ext secure length %d", n2)
	}
	c2, _ := DecodeControl(buf[:n2])
	got2, err := DecodeHandshake(c2)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != h2 {
		t.Fatalf("no-ext round trip mismatch: %+v", got2)
	}
}

// A paper-era or socket-ID-only decoder truncating the body must still see
// the classic fields, and a short body decodes with SecFlags zero — the
// negotiate-down signal.
func TestSecureHandshakeNegotiatesDown(t *testing.T) {
	h := secHandshake()
	buf := make([]byte, 256)
	n, err := EncodeHandshake(buf, &h, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{HandshakeBody, HandshakeExtBody} {
		c, err := DecodeControl(buf[:CtrlHeaderSize+cut])
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeHandshake(c)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if got.Sec() {
			t.Fatalf("cut=%d still flags secure", cut)
		}
		if got.ConnID != h.ConnID || got.InitSeq != h.InitSeq {
			t.Fatalf("cut=%d classic fields lost: %+v", cut, got)
		}
	}
	_ = n
}

func TestHandshakeMACInput(t *testing.T) {
	h := secHandshake()
	buf := make([]byte, 256)
	n, err := EncodeHandshake(buf, &h, 7)
	if err != nil {
		t.Fatal(err)
	}
	input, mac, err := HandshakeMACInput(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if len(input) != HandshakeSecBody-32 || len(mac) != 32 {
		t.Fatalf("split sizes %d/%d", len(input), len(mac))
	}
	if !bytes.Equal(mac, h.MAC[:]) {
		t.Fatal("mac slice does not alias the MAC field")
	}
	// The covered prefix ends exactly where the MAC begins.
	if !bytes.Equal(input[len(input)-8:], buf[CtrlHeaderSize+56:CtrlHeaderSize+64]) {
		t.Fatal("input does not end at the cookie")
	}
	if _, _, err := HandshakeMACInput(buf[:CtrlHeaderSize+HandshakeExtBody]); err == nil {
		t.Fatal("short packet accepted")
	}
}

// FuzzDecodeHandshake throws arbitrary bytes at the control + handshake
// decoders: they must never panic (Go bounds-checks make any over-read a
// panic, so this also proves no over-read) and anything that decodes as
// secure must re-encode/re-decode to the same handshake.
func FuzzDecodeHandshake(f *testing.F) {
	h := secHandshake()
	buf := make([]byte, 256)
	n, _ := EncodeHandshake(buf, &h, 1)
	f.Add(append([]byte(nil), buf[:n]...))
	h.SecFlags = 0
	n, _ = EncodeHandshake(buf, &h, 1)
	f.Add(append([]byte(nil), buf[:n]...))
	h.SockID = 0
	n, _ = EncodeHandshake(buf, &h, 1)
	f.Add(append([]byte(nil), buf[:n]...))
	f.Add([]byte{0x80, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xff}, CtrlHeaderSize+HandshakeSecBody))

	f.Fuzz(func(t *testing.T, raw []byte) {
		c, err := DecodeControl(raw)
		if err != nil {
			return
		}
		if c.Type != TypeHandshake {
			return
		}
		hs, err := DecodeHandshake(c)
		if err != nil {
			return
		}
		if _, _, err := HandshakeMACInput(raw); err != nil && len(c.Body) >= HandshakeSecBody {
			t.Fatalf("MACInput refused a body of %d bytes", len(c.Body))
		}
		// Canonicality (decode∘encode identity) holds for every secure
		// handshake and for clear rendezvous bodies. A non-secure body
		// padded out to secure length decodes junk into the option
		// fields by design (the length discriminator trusts SecFlags);
		// re-encoding such a handshake legitimately drops the junk, so
		// those are excluded.
		if !hs.Sec() && !(hs.Rdv() && len(c.Body) < HandshakeSecBody) {
			return
		}
		out := make([]byte, CtrlHeaderSize+HandshakeSecRdvBody)
		n, err := EncodeHandshake(out, &hs, c.Timestamp)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		c2, err := DecodeControl(out[:n])
		if err != nil {
			t.Fatalf("re-decode control: %v", err)
		}
		hs2, err := DecodeHandshake(c2)
		if err != nil {
			t.Fatalf("re-decode handshake: %v", err)
		}
		if hs2 != hs {
			t.Fatalf("re-encode changed the handshake:\n%+v\n%+v", hs, hs2)
		}
	})
}
