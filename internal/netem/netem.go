// Package netem is an in-process, deterministic, impaired datagram fabric
// for driving the real UDT stack through adversity. A Net is a virtual
// network of named Endpoints connected by configurable directional paths;
// each path can drop (random or Gilbert–Elliott bursts), delay, jitter,
// reorder, duplicate and corrupt datagrams, cap bandwidth through a bounded
// tail-drop queue, and be partitioned and healed at runtime.
//
// Endpoints satisfy the transport contract of udt.PacketConn (ReadFrom /
// WriteTo / Close / LocalAddr / SetReadDeadline), so the actual
// handshake/sender/receiver code of package udt runs over a netem fabric
// unmodified via udt.DialOn and udt.ListenOn.
//
// Determinism contract: every impairment decision is drawn from a per-path
// PRNG seeded from the Net seed and the path's endpoint names, in packet
// offer order, and all scheduling goes through a Clock. Under a
// VirtualClock with a single-threaded driver (see internal/netem/chaos) a
// run is bit-identical across replays: same deliveries, same order, same
// stats. Under a RealClock the draw sequence per path is still fixed by the
// seed, but wall-clock scheduling decides how offers interleave, so only
// statistical behavior is reproducible.
package netem

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sync"
	"time"
)

// inboxCap bounds an endpoint's receive queue in datagrams, emulating a
// finite socket buffer; deliveries beyond it are tail-dropped and counted.
const inboxCap = 8192

// maxCorruptBits is the most bits a corrupting path flips in one datagram.
const maxCorruptBits = 3

// Addr is the address of a netem endpoint. Endpoints hand out one *Addr
// for their lifetime, so transports may compare addresses by identity as
// well as by String.
type Addr struct {
	name string
}

// Network returns "netem".
func (a *Addr) Network() string { return "netem" }

// String returns the endpoint name.
func (a *Addr) String() string { return a.name }

// timeoutError is the net.Error returned by an expired read deadline.
type timeoutError struct{}

// Error implements error.
func (timeoutError) Error() string { return "netem: i/o timeout" }

// Timeout reports true: the deadline expired.
func (timeoutError) Timeout() bool { return true }

// Temporary reports true: a later read may succeed.
func (timeoutError) Temporary() bool { return true }

// dgram is one delivered datagram.
type dgram struct {
	from *Addr
	b    []byte
}

// Endpoint is one attachment point of the fabric. It implements the
// transport surface the UDT stack needs (the udt.PacketConn interface):
// blocking deadline-aware reads, connectionless writes by address, Close.
// Reads deliver datagrams in fabric arrival order.
type Endpoint struct {
	net  *Net
	addr *Addr

	inbox  chan dgram
	closed chan struct{}
	once   sync.Once

	mu       sync.Mutex
	deadline time.Time
}

// LocalAddr returns the endpoint's address (stable for its lifetime).
func (e *Endpoint) LocalAddr() net.Addr { return e.addr }

// SetReadDeadline sets the deadline for future ReadFrom calls; a zero time
// disables it. Unlike net.PacketConn it does not interrupt a ReadFrom that
// is already blocked — the UDT read loops set the deadline before reading,
// which is the pattern this supports.
func (e *Endpoint) SetReadDeadline(t time.Time) error {
	e.mu.Lock()
	e.deadline = t
	e.mu.Unlock()
	return nil
}

// ReadFrom blocks for the next datagram, honoring the read deadline (a
// net.Error with Timeout() == true is returned on expiry) and Close
// (net.ErrClosed). Datagrams longer than p are truncated, like UDP.
func (e *Endpoint) ReadFrom(p []byte) (int, net.Addr, error) {
	e.mu.Lock()
	dl := e.deadline
	e.mu.Unlock()
	var timeout <-chan time.Time
	if !dl.IsZero() {
		d := time.Until(dl)
		if d <= 0 {
			select {
			case dg := <-e.inbox:
				return copy(p, dg.b), dg.from, nil
			default:
				return 0, nil, timeoutError{}
			}
		}
		tm := time.NewTimer(d)
		defer tm.Stop()
		timeout = tm.C
	}
	// Drain ahead of noticing a close, so bytes already delivered are not
	// lost when the peer shuts down.
	select {
	case dg := <-e.inbox:
		return copy(p, dg.b), dg.from, nil
	default:
	}
	select {
	case dg := <-e.inbox:
		return copy(p, dg.b), dg.from, nil
	case <-timeout:
		return 0, nil, timeoutError{}
	case <-e.closed:
		return 0, nil, net.ErrClosed
	}
}

// TryReadFrom is the non-blocking read used by deterministic single-thread
// drivers: it returns the next queued datagram, or ok=false when none is
// pending.
func (e *Endpoint) TryReadFrom(p []byte) (n int, from net.Addr, ok bool) {
	select {
	case dg := <-e.inbox:
		return copy(p, dg.b), dg.from, true
	default:
		return 0, nil, false
	}
}

// WriteTo offers one datagram to the fabric, addressed to another endpoint
// (any net.Addr whose String matches the endpoint name). Like UDP, a write
// into a partition or onto a lossy path still reports success; only writing
// on a closed endpoint or to an unknown address fails.
func (e *Endpoint) WriteTo(p []byte, addr net.Addr) (int, error) {
	select {
	case <-e.closed:
		return 0, net.ErrClosed
	default:
	}
	return e.net.send(e, addr, p)
}

// Close detaches the endpoint: pending and future reads fail with
// net.ErrClosed and in-flight deliveries to it are discarded.
func (e *Endpoint) Close() error {
	e.once.Do(func() { close(e.closed) })
	return nil
}

// isClosed reports whether Close was called.
func (e *Endpoint) isClosed() bool {
	select {
	case <-e.closed:
		return true
	default:
		return false
	}
}

// pending is one scheduled delivery.
type pending struct {
	at   int64
	seq  int64
	dst  *Endpoint
	pth  *path
	from *Addr
	b    []byte
}

// Net is a virtual network: a set of named endpoints and the directional
// paths between them. All impairment state is guarded by one mutex, so the
// decision order is the packet offer order. A nil-safe zero Net does not
// exist; use New.
type Net struct {
	clock Clock
	seed  int64

	mu    sync.Mutex
	eps   map[string]*Endpoint
	paths map[pathKey]*path
	heap  []pending
	pseq  int64
}

// New returns an empty fabric whose impairment draws derive from seed and
// whose scheduling runs on clock (nil means a fresh RealClock).
func New(seed int64, clock Clock) *Net {
	if clock == nil {
		clock = NewRealClock()
	}
	return &Net{
		clock: clock,
		seed:  seed,
		eps:   make(map[string]*Endpoint),
		paths: make(map[pathKey]*path),
	}
}

// Clock returns the fabric's clock (for scheduling scenario events).
func (n *Net) Clock() Clock { return n.clock }

// Endpoint creates and attaches a new endpoint with the given name.
func (n *Net) Endpoint(name string) (*Endpoint, error) {
	return n.EndpointBuf(name, inboxCap)
}

// EndpointBuf creates an endpoint with an explicit receive-queue capacity in
// datagrams (≤ 0 selects the default). Router nodes in multi-hop topologies
// use larger inboxes so the forwarding driver, not the socket emulation,
// decides where queueing happens.
func (n *Net) EndpointBuf(name string, pkts int) (*Endpoint, error) {
	if pkts <= 0 {
		pkts = inboxCap
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.eps[name]; dup {
		return nil, fmt.Errorf("netem: endpoint %q already exists", name)
	}
	e := &Endpoint{
		net:    n,
		addr:   &Addr{name: name},
		inbox:  make(chan dgram, pkts),
		closed: make(chan struct{}),
	}
	n.eps[name] = e
	return e, nil
}

// pathLocked returns (creating if needed) the directional path from → to.
// Callers hold mu.
func (n *Net) pathLocked(from, to string) *path {
	k := pathKey{from: from, to: to}
	p, ok := n.paths[k]
	if !ok {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%s->%s", n.seed, from, to)
		p = &path{rng: rand.New(rand.NewSource(int64(h.Sum64())))}
		n.paths[k] = p
	}
	return p
}

// SetLink configures both directions between a and b with the same config.
// Existing impairment state (PRNG position, GE state, queue) is preserved;
// only the configuration changes.
func (n *Net) SetLink(a, b string, cfg LinkConfig) {
	n.mu.Lock()
	n.pathLocked(a, b).cfg = cfg
	n.pathLocked(b, a).cfg = cfg
	n.mu.Unlock()
}

// SetPath configures one direction only (asymmetric links).
func (n *Net) SetPath(from, to string, cfg LinkConfig) {
	n.mu.Lock()
	n.pathLocked(from, to).cfg = cfg
	n.mu.Unlock()
}

// UpdatePath mutates one direction's configuration in place under the
// fabric lock — the runtime toggle used by scenario scripts (RTT steps,
// loss bursts).
func (n *Net) UpdatePath(from, to string, f func(*LinkConfig)) {
	n.mu.Lock()
	f(&n.pathLocked(from, to).cfg)
	n.mu.Unlock()
}

// Partition blocks both directions between a and b: every subsequent offer
// is swallowed (counted as DroppedPartition) until Heal. Packets already in
// flight still arrive, as on a real network.
func (n *Net) Partition(a, b string) {
	n.mu.Lock()
	n.pathLocked(a, b).blocked = true
	n.pathLocked(b, a).blocked = true
	n.mu.Unlock()
}

// Heal reopens both directions between a and b.
func (n *Net) Heal(a, b string) {
	n.mu.Lock()
	n.pathLocked(a, b).blocked = false
	n.pathLocked(b, a).blocked = false
	n.mu.Unlock()
}

// SetBlackhole blocks or unblocks one direction only.
func (n *Net) SetBlackhole(from, to string, blocked bool) {
	n.mu.Lock()
	n.pathLocked(from, to).blocked = blocked
	n.mu.Unlock()
}

// PathStats snapshots the counters of one direction.
func (n *Net) PathStats(from, to string) PathStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pathLocked(from, to).stats
}

// QueueLen reports how many datagrams are currently serialized in one
// direction's rate-cap queue (always 0 on uncapped paths). Campaign monitors
// sample it to produce per-link queue-occupancy series.
func (n *Net) QueueLen(from, to string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pathLocked(from, to).queued
}

// send runs the impairment pipeline for one offered datagram and schedules
// the surviving copies for delivery.
func (n *Net) send(src *Endpoint, to net.Addr, b []byte) (int, error) {
	n.mu.Lock()
	dst, ok := n.eps[to.String()]
	if !ok {
		n.mu.Unlock()
		return 0, fmt.Errorf("netem: write to unknown endpoint %q", to.String())
	}
	p := n.pathLocked(src.addr.name, dst.addr.name)
	now := n.clock.Now()
	st := &p.stats
	st.Offered++
	st.BytesOffered += int64(len(b))

	if p.blocked {
		st.DroppedPartition++
		n.mu.Unlock()
		return len(b), nil
	}

	// Loss: Gilbert–Elliott state machine first, then i.i.d. loss.
	lost := false
	if ge := p.cfg.GE; ge != nil {
		if p.geBad {
			if p.rng.Float64() < ge.PBadGood {
				p.geBad = false
			}
		} else if p.rng.Float64() < ge.PGoodBad {
			p.geBad = true
		}
		lp := ge.LossGood
		if p.geBad {
			lp = ge.LossBad
		}
		if lp > 0 && p.rng.Float64() < lp {
			lost = true
			if p.geBad {
				st.LostBurst++
			}
		}
	}
	if !lost && p.cfg.Loss > 0 && p.rng.Float64() < p.cfg.Loss {
		lost = true
	}
	if lost {
		st.Lost++
		n.mu.Unlock()
		return len(b), nil
	}

	// Bandwidth cap: serialize through a bounded FIFO ahead of propagation.
	depart := now
	if p.cfg.RateMbps > 0 {
		qcap := p.cfg.QueuePkts
		if qcap <= 0 {
			qcap = 64
		}
		if p.queued >= qcap {
			st.DroppedQueue++
			n.mu.Unlock()
			return len(b), nil
		}
		tx := int64(float64(len(b)*8) / p.cfg.RateMbps) // bits ÷ Mbit/s = µs
		if tx < 1 {
			tx = 1
		}
		start := p.busyUntil
		if start < now {
			start = now
		}
		p.busyUntil = start + tx
		depart = p.busyUntil
		p.queued++
		n.clock.AfterFunc(depart-now, func() {
			n.mu.Lock()
			p.queued--
			n.mu.Unlock()
		})
	}

	copies := 1
	if p.cfg.Dup > 0 && p.rng.Float64() < p.cfg.Dup {
		copies = 2
		st.Duplicated++
	}
	for i := 0; i < copies; i++ {
		data := append([]byte(nil), b...)
		if p.cfg.Corrupt > 0 && p.rng.Float64() < p.cfg.Corrupt {
			st.Corrupted++
			for k := 1 + p.rng.Intn(maxCorruptBits); k > 0 && len(data) > 0; k-- {
				bit := p.rng.Intn(len(data) * 8)
				data[bit/8] ^= 1 << (bit % 8)
			}
			if !p.cfg.CorruptDeliver {
				// The emulated UDP checksum discards the copy at the
				// receiving edge: the application never sees it.
				continue
			}
		}
		delay := p.cfg.Delay
		if p.cfg.Jitter > 0 {
			delay += p.rng.Int63n(p.cfg.Jitter + 1)
		}
		if p.cfg.Reorder > 0 && p.rng.Float64() < p.cfg.Reorder {
			extra := p.cfg.ReorderExtra
			if extra <= 0 {
				extra = 2*p.cfg.Jitter + 1000
			}
			delay += extra
			st.Reordered++
		}
		at := depart + delay
		n.pushLocked(pending{at: at, seq: n.pseq, dst: dst, pth: p, from: src.addr, b: data})
		n.pseq++
		n.clock.AfterFunc(at-now, n.flush)
	}
	n.mu.Unlock()
	return len(b), nil
}

// flush delivers every scheduled datagram that is due, in (time, offer)
// order. Each pending delivery armed its own timer, so flush fires at least
// once at or after every deadline; early fires simply deliver less.
func (n *Net) flush() {
	n.mu.Lock()
	now := n.clock.Now()
	for len(n.heap) > 0 && n.heap[0].at <= now {
		it := n.popLocked()
		if it.dst.isClosed() {
			continue
		}
		select {
		case it.dst.inbox <- dgram{from: it.from, b: it.b}:
			it.pth.stats.Delivered++
			it.pth.stats.BytesDelivered += int64(len(it.b))
		default:
			it.pth.stats.DroppedInboxFull++
		}
	}
	n.mu.Unlock()
}

// heapLess orders pending deliveries by (arrival time, offer sequence).
// Callers hold mu.
func (n *Net) heapLess(i, j int) bool {
	if n.heap[i].at != n.heap[j].at {
		return n.heap[i].at < n.heap[j].at
	}
	return n.heap[i].seq < n.heap[j].seq
}

// pushLocked inserts a delivery into the schedule. Callers hold mu.
func (n *Net) pushLocked(it pending) {
	n.heap = append(n.heap, it)
	i := len(n.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !n.heapLess(i, parent) {
			break
		}
		n.heap[i], n.heap[parent] = n.heap[parent], n.heap[i]
		i = parent
	}
}

// popLocked removes the earliest delivery. Callers hold mu.
func (n *Net) popLocked() pending {
	it := n.heap[0]
	last := len(n.heap) - 1
	n.heap[0] = n.heap[last]
	n.heap[last] = pending{}
	n.heap = n.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(n.heap) && n.heapLess(l, min) {
			min = l
		}
		if r < len(n.heap) && n.heapLess(r, min) {
			min = r
		}
		if min == i {
			break
		}
		n.heap[i], n.heap[min] = n.heap[min], n.heap[i]
		i = min
	}
	return it
}
