package chaos

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// quickMatrixDigest folds every observable field of a QuickMatrix run into
// one FNV-64a value: virtual elapsed time, timeout flags, both peers' full
// counter sets, per-direction path impairment counters, and the mux cell's
// per-flow outcomes. Any behavioral drift in the engine, the fabric, or the
// driver loop changes it.
func quickMatrixDigest(seed int64) uint64 {
	h := fnv.New64a()
	for _, cr := range RunMatrix(seed, QuickMatrix()) {
		fmt.Fprintf(h, "%s|%v|%d|%v|%+v|%+v|%v|%s|%s\n",
			cr.Case.Name, cr.Pass, cr.Result.Elapsed, cr.Result.TimedOut, cr.Result.A, cr.Result.B, cr.Mux,
			realDigest(cr.Real), fsDigest(cr.FS))
	}
	return h.Sum64()
}

// realDigest and fsDigest fold only the seed-deterministic outcome of the
// wall-clock cells: payload digests and byte counts are pure functions of
// the seed when the cell passes, while Elapsed, Stats counters, and the
// exact resume count depend on real scheduling and are excluded.
func realDigest(r *RealResult) string {
	if r == nil {
		return ""
	}
	return fmt.Sprintf("ok=%v sent=%016x recv=%016x n=%d", r.OK, r.SentHash, r.RecvHash, r.RecvBytes)
}

func fsDigest(r *FSResult) string {
	if r == nil {
		return ""
	}
	return fmt.Sprintf("ok=%v want=%016x got=%016x n=%d killed=%v resumed=%v",
		r.OK, r.WantHash, r.GotHash, r.Bytes, r.Killed, r.Resumes > 0)
}

// TestQuickMatrixReplayDigest pins the QuickMatrix replay to the exact
// digest produced before the timer-wheel/worker-pool refactor. The chaos
// harness drives internal/core engines single-threaded under the virtual
// clock, so this value is a bit-identical oracle: if a refactor of the
// engine's timer bookkeeping changes any scheduling decision, any counter,
// or any byte on the wire, this test fails — even if every transfer still
// completes.
//
// If you change protocol behavior ON PURPOSE (new control packet, different
// timer policy), re-derive the constant by running this test with -v and
// copying the printed digest; note the change in the PR description.
//
// Re-derived for Secure UDT: the matrix gained the secure-aead-replay cell
// and PeerResult gained the AuthFails/ReplayDrops counters, both folded
// into the digest. Pre-existing cells' engine behavior is unchanged.
//
// Re-derived for rendezvous + udtfs: the matrix gained the wall-clock
// rdv-loss-1pct and fs-kill-resume cells, folded via their deterministic
// outcome fields only (realDigest/fsDigest). The virtual-clock cells'
// digest contributions are unchanged.
func TestQuickMatrixReplayDigest(t *testing.T) {
	const pinned uint64 = 0x07522ef4a62ef1e6
	got := quickMatrixDigest(1)
	t.Logf("QuickMatrix(seed=1) digest: %016x", got)
	if got != pinned {
		t.Fatalf("QuickMatrix replay digest drifted: got %016x, pinned %016x — engine behavior is no longer bit-identical", got, pinned)
	}
}
