package chaos

import (
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"

	"udt"
	"udt/internal/netem"
	"udt/udtfs"
)

// RunRendezvous crosses two simultaneous udt.Rendezvous dials over an
// impaired netem fabric — the full concurrent stack under the wall clock,
// like RunReal — then pushes cfg.Payload bytes c→s and verifies the
// stream arrives bit-exactly. Loss on the link exercises the crossing's
// request retransmission; the two sides draw handshake randomness from
// distinct seed-derived sources so the tie-break nonces are independent.
func RunRendezvous(cfg RealConfig) (RealResult, error) {
	if cfg.Timeout == 0 {
		cfg.Timeout = 60 * time.Second
	}
	rng := rand.New(rand.NewSource(cfg.Seed)) //nolint:gosec // reproducibility, not crypto
	payload := make([]byte, cfg.Payload)
	rng.Read(payload) //nolint:errcheck

	nw := netem.New(cfg.Seed, nil)
	epC, err := nw.Endpoint("c")
	if err != nil {
		return RealResult{}, err
	}
	epS, err := nw.Endpoint("s")
	if err != nil {
		return RealResult{}, err
	}
	nw.SetLink("c", "s", cfg.Link)

	cfgC := cfg.UDT
	cfgC.Rand = rand.New(rand.NewSource(cfg.Seed + 1)) //nolint:gosec
	cfgC.HandshakeTimeout = cfg.Timeout
	cfgS := cfg.UDT
	cfgS.Rand = rand.New(rand.NewSource(cfg.Seed + 2)) //nolint:gosec
	cfgS.HandshakeTimeout = cfg.Timeout

	res := RealResult{SentHash: hashOf(payload)}
	start := time.Now()
	type rdv struct {
		c   *udt.Conn
		err error
	}
	sDone := make(chan rdv, 1)
	go func() {
		c, err := udt.Rendezvous(epS, epC.LocalAddr(), &cfgS)
		sDone <- rdv{c, err}
	}()
	cc, errC := udt.Rendezvous(epC, epS.LocalAddr(), &cfgC)
	sr := <-sDone
	if errC != nil || sr.err != nil {
		if cc != nil {
			cc.Close() //nolint:errcheck
		}
		if sr.c != nil {
			sr.c.Close() //nolint:errcheck
		}
		return res, fmt.Errorf("chaos: rendezvous: c=%v s=%v", errC, sr.err)
	}
	defer sr.c.Close() //nolint:errcheck

	recvHash := newHash()
	recvDone := make(chan error, 1)
	go func() {
		buf := make([]byte, 65536)
		for {
			n, err := sr.c.Read(buf)
			if n > 0 {
				recvHash.write(buf[:n])
				res.RecvBytes += n
			}
			if res.RecvBytes >= len(payload) {
				// Done on byte count, not EOF: the closing client owns its
				// whole rendezvous mux, so if the lossy link eats the
				// shutdown packet there is nobody left to retransmit it and
				// waiting for EOF turns into a peer-death timeout.
				res.Server = sr.c.Stats()
				recvDone <- nil
				return
			}
			if err != nil {
				res.Server = sr.c.Stats()
				if err == io.EOF {
					err = nil
				}
				recvDone <- err
				return
			}
		}
	}()

	if _, err := cc.Write(payload); err != nil {
		cc.Close() //nolint:errcheck
		return res, fmt.Errorf("chaos: write: %w", err)
	}
	drainDeadline := time.Now().Add(cfg.Timeout)
	for !cc.Drained() {
		if time.Now().After(drainDeadline) {
			cc.Close() //nolint:errcheck
			return res, fmt.Errorf("chaos: transfer not drained within %v", cfg.Timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
	res.Client = cc.Stats()
	cc.Close() //nolint:errcheck

	select {
	case err := <-recvDone:
		if err != nil {
			return res, fmt.Errorf("chaos: server: %w", err)
		}
	case <-time.After(cfg.Timeout):
		return res, fmt.Errorf("chaos: server read not finished within %v", cfg.Timeout)
	}
	res.RecvHash = uint64(recvHash)
	res.OK = res.RecvBytes == len(payload) && res.RecvHash == res.SentHash
	res.Elapsed = time.Since(start)
	res.PathCS = nw.PathStats("c", "s")
	res.PathSC = nw.PathStats("s", "c")
	return res, nil
}

// FSConfig parameterizes a RunFS transfer: a udtfs server and resumable
// Fetcher over an impaired netem fabric, with the serving connection
// killed mid-transfer to force a resume.
type FSConfig struct {
	// Seed drives the payload, the handshake randomness and the fabric.
	Seed int64
	// Payload is the served file's size in bytes.
	Payload int
	// Link is applied to both directions.
	Link netem.LinkConfig
	// KillAt kills the serving connection once after this many payload
	// bytes have reached the client, forcing the Fetcher to re-dial and
	// resume. 0 leaves the transfer unmolested.
	KillAt int64
	// UDT overrides the endpoint configuration; Rand is always replaced
	// with a Seed-derived source.
	UDT udt.Config
	// Timeout bounds the whole transfer in wall time. Default 60 s.
	Timeout time.Duration
}

// FSResult is the outcome of a RunFS transfer.
type FSResult struct {
	// OK reports the fetched stream is byte-identical to the served file.
	OK bool
	// WantHash and GotHash are FNV-64a digests of the file and the
	// assembled fetch.
	WantHash, GotHash uint64
	// Bytes is how much the Fetcher delivered.
	Bytes int64
	// Killed reports the scripted mid-transfer kill fired.
	Killed bool
	// Resumes is how many connection deaths the Fetcher survived.
	Resumes int
	// Elapsed is the wall-clock duration of the fetch.
	Elapsed time.Duration
	// PathCS and PathSC are the fabric's impairment counters per direction.
	PathCS, PathSC netem.PathStats
}

// fsKillWriter accumulates the fetched stream and fires kill once, as
// soon as threshold bytes have arrived.
type fsKillWriter struct {
	hash      hashState
	n         int64
	threshold int64
	kill      func()
	killed    bool
}

// Write hashes and counts the chunk, triggering the kill at the threshold.
func (k *fsKillWriter) Write(p []byte) (int, error) {
	k.hash.write(p)
	k.n += int64(len(p))
	if k.threshold > 0 && !k.killed && k.n >= k.threshold {
		k.killed = true
		k.kill()
	}
	return len(p), nil
}

// RunFS serves a seed-derived file through udtfs over an impaired netem
// fabric and fetches it resumably with the production stack: a listener
// and server on one endpoint, a persistent client Mux on the other that
// survives connection deaths, and (with KillAt > 0) a scripted kill of
// the serving connection mid-body so the Fetcher must re-dial through
// the impairment and resume from its verified offset. OK requires the
// assembled bytes to be identical to the served file.
func RunFS(cfg FSConfig) (FSResult, error) {
	if cfg.Timeout == 0 {
		cfg.Timeout = 60 * time.Second
	}
	rng := rand.New(rand.NewSource(cfg.Seed)) //nolint:gosec // reproducibility, not crypto
	payload := make([]byte, cfg.Payload)
	rng.Read(payload) //nolint:errcheck

	dir, err := os.MkdirTemp("", "udtfs-chaos-")
	if err != nil {
		return FSResult{}, err
	}
	defer os.RemoveAll(dir) //nolint:errcheck
	path := dir + "/payload.bin"
	if err := os.WriteFile(path, payload, 0o600); err != nil {
		return FSResult{}, err
	}

	nw := netem.New(cfg.Seed, nil)
	epC, err := nw.Endpoint("c")
	if err != nil {
		return FSResult{}, err
	}
	epS, err := nw.Endpoint("s")
	if err != nil {
		return FSResult{}, err
	}
	nw.SetLink("c", "s", cfg.Link)

	ucfg := cfg.UDT
	ucfg.Rand = rand.New(rand.NewSource(cfg.Seed + 1)) //nolint:gosec
	ln, err := udt.ListenOn(epS, &ucfg)
	if err != nil {
		return FSResult{}, err
	}
	defer ln.Close() //nolint:errcheck

	srv := udtfs.NewServer(udtfs.ServerConfig{})
	defer srv.Close() //nolint:errcheck
	srv.Register("payload", path)

	// Track served connections so the kill can hit the one mid-transfer.
	var smu sync.Mutex
	var sconns []*udt.Conn
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			smu.Lock()
			sconns = append(sconns, c)
			smu.Unlock()
			go srv.ServeConn(c) //nolint:errcheck
		}
	}()

	m, err := udt.NewMux(epC, &ucfg)
	if err != nil {
		return FSResult{}, err
	}
	defer m.Close() //nolint:errcheck

	res := FSResult{WantHash: hashOf(payload)}
	kw := &fsKillWriter{hash: newHash(), threshold: cfg.KillAt, kill: func() {
		smu.Lock()
		var c *udt.Conn
		if n := len(sconns); n > 0 {
			c = sconns[n-1]
		}
		smu.Unlock()
		if c != nil {
			c.Close() //nolint:errcheck
		}
	}}
	f := &udtfs.Fetcher{Dial: func() (*udt.Conn, error) { return m.Dial(epS.LocalAddr()) }}
	start := time.Now()
	fr, err := f.Fetch("payload", kw)
	res.Elapsed = time.Since(start)
	res.Bytes = fr.Bytes
	res.Killed = kw.killed
	res.Resumes = fr.Resumes
	res.GotHash = uint64(kw.hash)
	res.PathCS = nw.PathStats("c", "s")
	res.PathSC = nw.PathStats("s", "c")
	if err != nil {
		return res, fmt.Errorf("chaos: fetch: %w", err)
	}
	want := sha256.Sum256(payload)
	res.OK = fr.Bytes == int64(len(payload)) && res.GotHash == res.WantHash && fr.SHA256 == want
	return res, nil
}
