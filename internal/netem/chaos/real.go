package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"udt"
	"udt/internal/netem"
)

// RealConfig parameterizes a RunReal transfer: the full concurrent udt
// stack (DialOn/ListenOn, its goroutines, the wall clock) over a netem
// fabric, client "c" sending Payload bytes to server "s".
type RealConfig struct {
	// Seed drives the payload, the handshake randomness and the fabric.
	Seed int64
	// Payload is the client→server transfer size in bytes.
	Payload int
	// Link is applied to both directions.
	Link netem.LinkConfig
	// UDT overrides the endpoint configuration; Rand is always replaced
	// with a Seed-derived source so handshakes are reproducible.
	UDT udt.Config
	// Timeout bounds the whole transfer in wall time. Default 60 s.
	Timeout time.Duration
}

// RealResult is the outcome of a RunReal transfer.
type RealResult struct {
	// OK reports the server received exactly the bytes the client sent.
	OK bool
	// SentHash and RecvHash are FNV-64a digests of both stream ends.
	SentHash, RecvHash uint64
	// RecvBytes is how much the server read before EOF.
	RecvBytes int
	// Elapsed is the wall-clock duration of the transfer.
	Elapsed time.Duration
	// Client and Server are the final protocol counters of each endpoint.
	Client, Server udt.Stats
	// PathCS and PathSC are the fabric's impairment counters per direction.
	PathCS, PathSC netem.PathStats
}

// RunReal pushes cfg.Payload bytes through the production udt stack over
// an impaired netem fabric and verifies the stream arrives bit-exactly.
// Unlike Run it is concurrent and wall-clock timed: packet-level replay is
// not deterministic, but the impairment draw sequence per path still is.
func RunReal(cfg RealConfig) (RealResult, error) {
	if cfg.Timeout == 0 {
		cfg.Timeout = 60 * time.Second
	}
	rng := rand.New(rand.NewSource(cfg.Seed)) //nolint:gosec // reproducibility, not crypto
	payload := make([]byte, cfg.Payload)
	rng.Read(payload) //nolint:errcheck

	nw := netem.New(cfg.Seed, nil)
	epC, err := nw.Endpoint("c")
	if err != nil {
		return RealResult{}, err
	}
	epS, err := nw.Endpoint("s")
	if err != nil {
		return RealResult{}, err
	}
	nw.SetLink("c", "s", cfg.Link)

	ucfg := cfg.UDT
	ucfg.Rand = rand.New(rand.NewSource(cfg.Seed + 1)) //nolint:gosec
	ln, err := udt.ListenOn(epS, &ucfg)
	if err != nil {
		return RealResult{}, err
	}
	defer ln.Close() //nolint:errcheck

	res := RealResult{SentHash: hashOf(payload)}
	var mu sync.Mutex
	recvHash := newHash()
	recvDone := make(chan error, 1)
	go func() {
		sc, err := ln.Accept()
		if err != nil {
			recvDone <- err
			return
		}
		buf := make([]byte, 65536)
		for {
			n, err := sc.Read(buf)
			if n > 0 {
				mu.Lock()
				recvHash.write(buf[:n])
				res.RecvBytes += n
				mu.Unlock()
			}
			if err != nil {
				mu.Lock()
				res.Server = sc.Stats()
				mu.Unlock()
				if err == io.EOF {
					err = nil
				}
				recvDone <- err
				return
			}
		}
	}()

	start := time.Now()
	conn, err := udt.DialOn(epC, epS.LocalAddr(), &ucfg)
	if err != nil {
		return res, err
	}
	if _, err := conn.Write(payload); err != nil {
		conn.Close() //nolint:errcheck
		return res, fmt.Errorf("chaos: write: %w", err)
	}
	drainDeadline := time.Now().Add(cfg.Timeout)
	for !conn.Drained() {
		if time.Now().After(drainDeadline) {
			conn.Close() //nolint:errcheck
			return res, fmt.Errorf("chaos: transfer not drained within %v", cfg.Timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
	res.Client = conn.Stats()
	conn.Close() //nolint:errcheck

	select {
	case err := <-recvDone:
		if err != nil {
			return res, fmt.Errorf("chaos: server: %w", err)
		}
	case <-time.After(cfg.Timeout):
		return res, fmt.Errorf("chaos: server read not finished within %v", cfg.Timeout)
	}
	mu.Lock()
	res.RecvHash = uint64(recvHash)
	res.OK = res.RecvBytes == len(payload) && res.RecvHash == res.SentHash
	res.Elapsed = time.Since(start)
	res.PathCS = nw.PathStats("c", "s")
	res.PathSC = nw.PathStats("s", "c")
	mu.Unlock()
	return res, nil
}
