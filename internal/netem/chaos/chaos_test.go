package chaos

import (
	"reflect"
	"testing"

	"udt"
	"udt/internal/netem"
)

func TestDeterministicReplay(t *testing.T) {
	cfg := Config{
		Seed:     99,
		PayloadA: 512 << 10,
		PayloadB: 256 << 10,
		Link:     netem.LinkConfig{Delay: 3000, Jitter: 2000, Loss: 0.02, Dup: 0.002, Corrupt: 0.001},
	}
	one, two := Run(cfg), Run(cfg)
	if !reflect.DeepEqual(one, two) {
		t.Fatalf("same-seed runs diverged:\n%+v\n%+v", one, two)
	}
	if !one.OK {
		t.Fatalf("transfer failed: %+v", one)
	}
	if one.A.Stats.PktsRetrans == 0 {
		t.Fatal("2% loss produced no retransmissions")
	}
	cfg.Seed = 100
	other := Run(cfg)
	if reflect.DeepEqual(one, other) {
		t.Fatal("different seeds produced identical runs (seed unused?)")
	}
}

// TestPartitionPeerDeathBound scripts a permanent mid-transfer partition
// and requires both engines to detect peer death inside the window
// [PeerDeathTime, 2.5·PeerDeathTime] after the cut — the silence
// requirement is a lower bound, and the capped EXP backoff means 16
// expirations land not far above it.
func TestPartitionPeerDeathBound(t *testing.T) {
	const (
		cutAt     = 30_000
		deathTime = 2_000_000
	)
	r := Run(Config{
		Seed:           5,
		PayloadA:       4 << 20,
		PayloadB:       4 << 20,
		Link:           netem.LinkConfig{Delay: 2000, RateMbps: 100, QueuePkts: 64},
		Events:         PartitionAt(cutAt, 0),
		MinEXP:         50_000,
		PeerDeathTime:  deathTime,
		MaxVirtualTime: 30_000_000,
	})
	if r.TimedOut {
		t.Fatalf("run timed out: %+v", r)
	}
	for name, p := range map[string]PeerResult{"a": r.A, "b": r.B} {
		if !p.Broken {
			t.Fatalf("peer %s never detected death: %+v", name, p)
		}
		since := p.BrokenAt - cutAt
		if since < deathTime {
			t.Errorf("peer %s died %dµs after the cut, before the %dµs silence bound", name, since, deathTime)
		}
		if since > deathTime*5/2 {
			t.Errorf("peer %s took %dµs to die, beyond 2.5×PeerDeathTime", name, since)
		}
	}
}

// TestScenarioRecovery pins the two recovery scripts: a healed partition
// and a transient loss episode must both end in a complete, checksum-clean
// transfer with no death declared.
func TestScenarioRecovery(t *testing.T) {
	for _, tc := range []struct {
		name   string
		events []Event
	}{
		{"partition-heal", PartitionAt(20_000, 320_000)},
		{"loss-episode", LossBurst(15_000, 150_000, 0.3)},
		{"rtt-step", RTTStep(15_000, 25_000)},
	} {
		r := Run(Config{
			Seed:     21,
			PayloadA: 512 << 10,
			PayloadB: 512 << 10,
			Link:     netem.LinkConfig{Delay: 2000, RateMbps: 100, QueuePkts: 64},
			Events:   tc.events,
		})
		if !r.OK || r.A.Broken || r.B.Broken {
			t.Errorf("%s: no recovery: ok=%v timedout=%v a=%+v b=%+v",
				tc.name, r.OK, r.TimedOut, r.A, r.B)
		}
	}
}

// TestQuickMatrixPasses keeps the CI matrix itself under test: every cell
// must meet its success criterion at the default seed.
func TestQuickMatrixPasses(t *testing.T) {
	for _, cr := range RunMatrix(1, QuickMatrix()) {
		if !cr.Pass {
			t.Errorf("%s failed: %+v", cr.Case.Name, cr.Result)
		}
	}
}

// TestCCMatrixPasses runs the congestion-control matrix: every pluggable
// law must carry its transfer, and the fairness cells must complete with
// both laws making progress on the shared link.
func TestCCMatrixPasses(t *testing.T) {
	for _, cr := range RunMatrix(1, CCMatrix()) {
		if !cr.Pass {
			if cr.Mux != nil {
				t.Errorf("%s failed: %+v", cr.Case.Name, *cr.Mux)
			} else {
				t.Errorf("%s failed: %+v", cr.Case.Name, cr.Result)
			}
			continue
		}
		if cr.Mux != nil {
			for i, f := range cr.Mux.Flows {
				if f.GoodputAMbps <= 0 || f.GoodputBMbps <= 0 {
					t.Errorf("%s: flow %d (%s) reported zero goodput: %+v", cr.Case.Name, i, f.CC, f)
				}
			}
		}
	}
}

// TestCCMatrixDeterministic pins the tentpole's replay requirement: a
// fairness cell racing two different laws over one seeded path must be a
// pure function of the seed, per-flow goodput included.
func TestCCMatrixDeterministic(t *testing.T) {
	cell := Case{}
	for _, cs := range CCMatrix() {
		if cs.Name == "cc-fair-native-ctcp" {
			cell = cs
		}
	}
	if cell.Name == "" {
		t.Fatal("cc-fair-native-ctcp cell missing from CCMatrix")
	}
	run := func() CaseResult { return RunMatrix(42, []Case{cell})[0] }
	one := run()
	two := run()
	if !reflect.DeepEqual(one, two) {
		t.Fatalf("same-seed CC race diverged:\n%+v\n%+v", one, two)
	}
	if !one.Pass {
		t.Fatalf("cc-fair-native-ctcp failed at seed 42: %+v", *one.Mux)
	}
}

// TestSecureChaosReplayIdentity pins the Secure mode three ways: a sealed
// run is a pure function of the seed (bit-identical replay), it delivers
// the exact stream its cleartext twin delivers (crypto is invisible to the
// application), and under a duplicating link the control-channel replays
// are absorbed by the anti-replay window rather than surfacing as failures.
func TestSecureChaosReplayIdentity(t *testing.T) {
	cfg := Config{
		Seed:     17,
		PayloadA: 512 << 10,
		PayloadB: 256 << 10,
		Link:     netem.LinkConfig{Delay: 3000, Jitter: 1000, Loss: 0.01, Dup: 0.01},
		Secure:   true,
	}
	one, two := Run(cfg), Run(cfg)
	if !reflect.DeepEqual(one, two) {
		t.Fatalf("same-seed secure runs diverged:\n%+v\n%+v", one, two)
	}
	if !one.OK {
		t.Fatalf("sealed transfer failed: %+v", one)
	}
	if one.A.AuthFails != 0 || one.B.AuthFails != 0 {
		t.Fatalf("impairment alone caused auth failures: a=%+v b=%+v", one.A, one.B)
	}
	if one.A.ReplayDrops+one.B.ReplayDrops == 0 {
		t.Fatal("1% duplication produced no control replays — the window was never exercised")
	}

	clear := cfg
	clear.Secure = false
	plain := Run(clear)
	if !plain.OK {
		t.Fatalf("cleartext twin failed: %+v", plain)
	}
	if plain.A.RecvHash != one.A.RecvHash || plain.B.RecvHash != one.B.RecvHash {
		t.Fatalf("sealed and cleartext runs delivered different streams: %x/%x vs %x/%x",
			one.A.RecvHash, one.B.RecvHash, plain.A.RecvHash, plain.B.RecvHash)
	}
}

// TestRunRealSecureImpaired drives the production stack — authenticated
// handshake, cookie exchange, sealed channel — through loss and asserts
// the transfer is bit-exact with the crypto counters in their expected
// states.
func TestRunRealSecureImpaired(t *testing.T) {
	psk := []byte("chaos runreal pre-shared key 32b")
	res, err := RunReal(RealConfig{
		Seed:    13,
		Payload: 1 << 20,
		Link:    netem.LinkConfig{Delay: 2000, Jitter: 1000, Loss: 0.01},
		UDT:     udt.Config{PSK: psk, AEAD: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("sealed transfer not bit-exact: %+v", res)
	}
	if res.Client.PktsRetrans == 0 {
		t.Fatal("1% loss produced no retransmissions")
	}
	if res.Server.CookieSent == 0 {
		t.Fatalf("secure dial skipped the cookie exchange: %+v", res.Server)
	}
	if res.Client.AuthRejects != 0 || res.Server.AuthRejects != 0 {
		t.Fatalf("impairment alone produced auth rejects: client=%+v server=%+v", res.Client, res.Server)
	}
}

func TestRunRealCleanLink(t *testing.T) {
	res, err := RunReal(RealConfig{Seed: 2, Payload: 1 << 20, Link: netem.LinkConfig{Delay: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("transfer not bit-exact: %+v", res)
	}
}
