// Package chaos is the fault-injection harness: it drives the real UDT
// protocol engines (internal/core) over a netem fabric and asserts
// end-to-end properties — data integrity under impairment, eventual
// peer-death detection across partitions, bounded recovery times.
//
// Two drivers are provided. Run executes both endpoints single-threaded
// under a netem.VirtualClock, so an entire transfer — every packet
// arrival, timer expiry and impairment draw — is a deterministic function
// of the Config: two runs with the same seed produce bit-identical
// Results, and simulated minutes elapse in milliseconds of real time.
// RunReal executes the full concurrent udt stack (Dial/Listen, goroutines,
// wall clock) over the same fabric, trading replayability for coverage of
// the production code path.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sort"

	"udt/internal/congestion"
	"udt/internal/core"
	"udt/internal/netem"
	"udt/internal/packet"
	"udt/internal/secure"
	"udt/internal/seqno"
)

// Event is a scripted mid-transfer fault: at virtual time At (µs from the
// start of the run), Do is applied to the fabric. Events fire in At order,
// on the driver goroutine, so they are part of the deterministic replay.
type Event struct {
	// At is the virtual time of the fault, µs from the start of the run.
	At int64
	// Do mutates the fabric: partition, heal, change a link's impairments.
	Do func(nw *netem.Net)
}

// Config parameterizes one virtual-clock chaos run between two peers named
// "a" and "b".
type Config struct {
	// Seed drives every random choice: the payload bytes, the handshake
	// sequence numbers and all netem impairment draws.
	Seed int64
	// PayloadA and PayloadB are the bytes a and b send (either may be 0).
	PayloadA, PayloadB int
	// MSS is the UDT packet size in bytes. Default 1472.
	MSS int
	// SndBufPkts and RcvBufPkts size the peer buffers. Default 4096.
	SndBufPkts, RcvBufPkts int
	// Link is applied to both directions before the run starts.
	Link netem.LinkConfig
	// MinEXP and PeerDeathTime tune failure detection, in µs; zero keeps
	// the core defaults (300 ms floor, 5 s death).
	MinEXP, PeerDeathTime int64
	// Events are scripted faults, fired in At order.
	Events []Event
	// MaxVirtualTime aborts the run after this much virtual time, µs.
	// Default 120 s.
	MaxVirtualTime int64
	// CCA and CCB name each peer's congestion controller ("native",
	// "ctcp", "scalable", "hstcp"). Empty selects the native law with a
	// nil factory — the exact pre-pluggable construction path.
	CCA, CCB string
	// Secure runs the transfer over the sealed AEAD channel: both peers
	// hold seed-derived sessions (key material drawn from the run's RNG,
	// exactly as a completed authenticated handshake would leave them) and
	// every packet is sealed on send and opened on receive. Duplication
	// impairments then double as replay attacks against the control
	// channel, which the anti-replay window must absorb without breaking
	// the transfer.
	Secure bool
}

// ccFactory resolves a controller name for the engine config; the empty
// name maps to nil so default runs take the engine's own native path.
func ccFactory(name string) congestion.Factory {
	if name == "" {
		return nil
	}
	return congestion.MustNew(name)
}

func (c *Config) fill() {
	if c.MSS == 0 {
		c.MSS = 1472
	}
	if c.SndBufPkts == 0 {
		c.SndBufPkts = 4096
	}
	if c.RcvBufPkts == 0 {
		c.RcvBufPkts = 4096
	}
	if c.MaxVirtualTime == 0 {
		c.MaxVirtualTime = 120_000_000
	}
}

// PeerResult is one endpoint's outcome.
type PeerResult struct {
	// SentBytes is how much of the peer's payload entered the send buffer.
	SentBytes int
	// RecvBytes is how many stream bytes were read out of the receiver.
	RecvBytes int
	// RecvOK reports the received stream matched the peer's payload
	// byte-for-byte (FNV-64a over length and content).
	RecvOK bool
	// RecvHash is the FNV-64a digest of the received stream.
	RecvHash uint64
	// Broken reports the engine declared the peer dead (EXP expiry).
	Broken bool
	// BrokenAt is the virtual time of death detection, µs (0 if !Broken).
	BrokenAt int64
	// AuthFails and ReplayDrops are the secure session's receive-side
	// rejection counters (zero on cleartext runs).
	AuthFails, ReplayDrops uint64
	// Stats is the engine's final protocol counters.
	Stats core.Stats
}

// Result is the outcome of one chaos run. Under the virtual clock it is a
// pure function of the Config — compare two same-seed Results with
// reflect.DeepEqual to verify determinism.
type Result struct {
	// OK reports both transfers completed with matching checksums.
	OK bool
	// TimedOut reports the run hit MaxVirtualTime before finishing.
	TimedOut bool
	// Elapsed is the virtual duration of the run, µs.
	Elapsed int64
	// A and B are the per-endpoint outcomes.
	A, B PeerResult
	// PathAB and PathBA are the fabric's impairment counters per direction.
	PathAB, PathBA netem.PathStats
}

// peer is one single-threaded protocol endpoint: the real core engine and
// buffers, pumped by the driver loop — the deterministic counterpart of
// udt.Conn's goroutines.
type peer struct {
	name     string
	eng      *core.Conn
	snd      *core.SndBuffer
	rcv      *core.RcvBuffer
	ep       *netem.Endpoint
	peerAddr net.Addr
	out      func(b []byte)  // transmit one datagram (RunMux stamps a socket-ID prefix)
	sec      *secure.Session // nil = cleartext; else every packet seals/opens

	payload  []byte // stream this peer sends
	sendOff  int
	wantLen  int // bytes expected from the other side
	wantHash uint64

	recvBytes int
	recvHash  hashState

	lastDecision core.SendDecision
	brokenAt     int64

	scratch []byte
	rbuf    []byte
}

// hashState is an incremental FNV-64a.
type hashState uint64

func newHash() hashState { return hashState(14695981039346656037) }

func (h *hashState) write(p []byte) {
	x := uint64(*h)
	for _, b := range p {
		x ^= uint64(b)
		x *= 1099511628211
	}
	*h = hashState(x)
}

func hashOf(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p) //nolint:errcheck
	return h.Sum64()
}

// finished reports this peer has nothing left to do: everything it wrote
// is acknowledged and everything it expected has arrived.
func (p *peer) finished() bool {
	sentAll := p.sendOff == len(p.payload) && p.snd.Pending() == 0 && p.eng.Unacked() == 0
	return sentAll && p.recvBytes >= p.wantLen
}

// Run executes one chaos transfer under a virtual clock and returns its
// outcome. It is fully deterministic: same Config, same Result.
func Run(cfg Config) Result {
	cfg.fill()
	vc := netem.NewVirtualClock(0)
	nw := netem.New(cfg.Seed, vc)
	rng := rand.New(rand.NewSource(cfg.Seed)) //nolint:gosec // reproducibility, not crypto

	epA, err := nw.Endpoint("a")
	if err != nil {
		panic(err) // fresh fabric: cannot collide
	}
	epB, _ := nw.Endpoint("b")
	nw.SetLink("a", "b", cfg.Link)

	payA := make([]byte, cfg.PayloadA)
	rng.Read(payA) //nolint:errcheck // never fails
	payB := make([]byte, cfg.PayloadB)
	rng.Read(payB) //nolint:errcheck

	isnA := rng.Int31() & seqno.Max
	isnB := rng.Int31() & seqno.Max
	// Seed-derived sealing state, drawn after the payloads and ISNs so a
	// secure run moves the same stream bytes as its cleartext twin.
	var secA, secB *secure.Session
	if cfg.Secure {
		var psk [32]byte
		var nonceA, nonceB [16]byte
		rng.Read(psk[:])    //nolint:errcheck // never fails
		rng.Read(nonceA[:]) //nolint:errcheck
		rng.Read(nonceB[:]) //nolint:errcheck
		keys := secure.DeriveKeys(psk[:])
		secA = secure.NewSession(keys, nonceA[:], nonceB[:], true, isnA, isnB, true)
		secB = secure.NewSession(keys, nonceA[:], nonceB[:], false, isnB, isnA, true)
	}
	a := newPeer("a", cfg, cfg.CCA, isnA, isnB, epA, epB.LocalAddr(), payA, payB, secA)
	b := newPeer("b", cfg, cfg.CCB, isnB, isnA, epB, epA.LocalAddr(), payB, payA, secB)

	events := append([]Event(nil), cfg.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })

	a.eng.Start(vc.Now())
	b.eng.Start(vc.Now())

	res := Result{}
	peers := [2]*peer{a, b}
	for {
		now := vc.Now()
		progress := false
		for len(events) > 0 && events[0].At <= now {
			events[0].Do(nw)
			events = events[1:]
			progress = true
		}
		for _, p := range peers {
			if p.pump(now) {
				progress = true
			}
		}
		done := true
		for _, p := range peers {
			if p.eng.Broken() {
				if p.brokenAt == 0 {
					p.brokenAt = now
				}
				continue
			}
			if !p.finished() {
				done = false
			}
		}
		if done {
			break
		}
		if now >= cfg.MaxVirtualTime {
			res.TimedOut = true
			break
		}
		if progress {
			continue // re-pump at the same instant before sleeping
		}
		wake := cfg.MaxVirtualTime
		if len(events) > 0 && events[0].At < wake {
			wake = events[0].At
		}
		for _, p := range peers {
			if p.eng.Broken() {
				continue
			}
			if t := p.eng.NextTimer(); t < wake {
				wake = t
			}
			if p.lastDecision == core.WaitPacing {
				if t := p.eng.NextSendTime(); t < wake {
					wake = t
				}
			}
		}
		if t, ok := vc.NextEvent(); ok && t < wake {
			wake = t
		}
		if wake <= now {
			wake = now + 1 // guarantee progress even on zero-delay links
		}
		vc.AdvanceTo(wake)
	}

	res.Elapsed = vc.Now()
	res.A = a.result()
	res.B = b.result()
	res.OK = !res.TimedOut && a.finished() && b.finished() && res.A.RecvOK && res.B.RecvOK
	res.PathAB = nw.PathStats("a", "b")
	res.PathBA = nw.PathStats("b", "a")
	epA.Close() //nolint:errcheck
	epB.Close() //nolint:errcheck
	return res
}

func newPeer(name string, cfg Config, cc string, isn, peerISN int32, ep *netem.Endpoint, peerAddr net.Addr, payload, expect []byte, sec *secure.Session) *peer {
	ccfg := core.Config{
		MSS:           cfg.MSS,
		ISN:           isn,
		RecvBufPkts:   int32(cfg.RcvBufPkts),
		MinEXP:        cfg.MinEXP,
		PeerDeathTime: cfg.PeerDeathTime,
		CC:            ccFactory(cc),
	}
	scratch := cfg.MSS
	if sec != nil {
		// Control packets grow by CtrlOverhead when sealed; give the encode
		// buffer that slack so sealing never truncates an emission.
		scratch += secure.CtrlOverhead
	}
	p := &peer{
		name:     name,
		eng:      core.NewConn(ccfg, peerISN),
		ep:       ep,
		peerAddr: peerAddr,
		sec:      sec,
		payload:  payload,
		wantLen:  len(expect),
		wantHash: hashOf(expect),
		recvHash: newHash(),
		scratch:  make([]byte, scratch),
		rbuf:     make([]byte, 65536),
	}
	pl := cfg.MSS - packet.DataHeaderSize
	if sec != nil {
		// The Poly1305 tag rides inside the packet budget, exactly like the
		// real stack: a sealed data packet is still one MSS on the wire.
		pl -= secure.Overhead
	}
	p.snd = core.NewSndBuffer(cfg.SndBufPkts, pl, isn)
	p.rcv = core.NewRcvBuffer(cfg.RcvBufPkts, pl, peerISN)
	p.eng.AvailBuf = p.rcv.Free
	p.out = func(b []byte) { p.ep.WriteTo(b, p.peerAddr) } //nolint:errcheck // losses are the point
	return p
}

// pump runs one scheduling round for the peer at virtual time now:
// deliver queued datagrams, service timers, flush control emissions, send
// data as pacing allows, and move application bytes in and out of the
// buffers. It reports whether anything happened.
func (p *peer) pump(now int64) (progress bool) {
	if p.eng.Broken() {
		return false
	}
	for {
		n, _, ok := p.ep.TryReadFrom(p.rbuf)
		if !ok {
			break
		}
		p.handleDatagram(now, p.rbuf[:n])
		progress = true
	}
	return p.service(now) || progress
}

// service runs the non-I/O half of a scheduling round: timers, control
// emissions, pacing-gated data sends, and buffer movement. RunMux calls it
// directly — there the datagrams arrive through the demultiplexer, not
// from the peer's own endpoint.
func (p *peer) service(now int64) (progress bool) {
	if p.eng.Broken() {
		return false
	}
	p.eng.Advance(now)
	if p.flushOutbox(now) {
		progress = true
	}
	// Feed the send buffer.
	if p.sendOff < len(p.payload) {
		if n := p.snd.Write(p.payload[p.sendOff:]); n > 0 {
			p.sendOff += n
			progress = true
		}
	}
	// Data path: lost packets first, then new data, as pacing allows.
	for {
		newAvail := seqno.Cmp(p.snd.NextWriteSeq(), seqno.Inc(p.eng.CurSeq())) > 0
		seq, d := p.eng.NextSend(now, newAvail)
		p.lastDecision = d
		if d != core.SendData && d != core.SendRetrans {
			break
		}
		pl, ok := p.snd.Packet(seq)
		if !ok {
			break
		}
		n, err := packet.EncodeData(p.scratch, &packet.Data{Seq: seq, Timestamp: int32(now), Payload: pl})
		if err != nil {
			panic(fmt.Sprintf("chaos: encode data: %v", err))
		}
		p.transmit(p.scratch[:n])
		progress = true
	}
	// Drain received stream bytes into the running checksum.
	for p.rcv.Available() > 0 {
		n := p.rcv.Read(p.rbuf)
		if n == 0 {
			break
		}
		p.recvHash.write(p.rbuf[:n])
		p.recvBytes += n
		progress = true
	}
	return progress
}

// transmit seals the packet when the run is secure, then hands it to the
// fabric. The scratch slices passed in carry the extra capacity sealing
// needs; RunMux's prefixed writers prepend the socket-ID after sealing,
// the same layering as the real mux send path.
func (p *peer) transmit(b []byte) {
	if p.sec != nil {
		if packet.IsControl(b) {
			b = p.sec.SealCtrl(b)
		} else {
			b = p.sec.SealData(b)
		}
	}
	p.out(b)
}

// handleDatagram is conn.Conn.handleDatagram without the locks: one
// arriving datagram through the real engine.
func (p *peer) handleDatagram(now int64, raw []byte) {
	if p.sec != nil {
		var ok bool
		if packet.IsControl(raw) {
			raw, ok = p.sec.OpenCtrl(raw)
		} else {
			raw, ok = p.sec.OpenData(raw)
		}
		if !ok {
			return // forged, corrupt, or a control replay: dropped
		}
	}
	if !packet.IsControl(raw) {
		d, err := packet.DecodeData(raw)
		if err != nil {
			return
		}
		if p.rcv.Free() == 0 {
			return // flow-control overrun: treat as a wire loss
		}
		if p.eng.HandleData(now, d.Seq) {
			p.rcv.Store(d.Seq, d.Payload)
		}
		return
	}
	ctrl, err := packet.DecodeControl(raw)
	if err != nil {
		return
	}
	switch ctrl.Type {
	case packet.TypeACK:
		if a, err := packet.DecodeACK(ctrl); err == nil {
			if p.eng.HandleACK(now, a) > 0 {
				p.snd.Release(p.eng.SndLastAck())
			}
		}
	case packet.TypeNAK:
		if nak, err := packet.DecodeNAK(ctrl); err == nil {
			p.eng.HandleNAK(now, nak.Losses)
		}
	case packet.TypeACK2:
		p.eng.HandleACK2(now, ctrl.Extra)
	case packet.TypeKeepAlive:
		p.eng.HandleKeepAlive(now)
	case packet.TypeShutdown:
		p.eng.HandleShutdown(now)
	}
}

// flushOutbox serializes and transmits every queued control emission.
func (p *peer) flushOutbox(now int64) (sent bool) {
	for {
		o, ok := p.eng.PopOut()
		if !ok {
			return sent
		}
		var n int
		var err error
		switch o.Kind {
		case core.OutACK:
			n, err = packet.EncodeACK(p.scratch, &o.ACK, int32(now))
		case core.OutNAK:
			n, err = packet.EncodeNAK(p.scratch, o.Losses, int32(now))
		case core.OutACK2:
			n, err = packet.EncodeACK2(p.scratch, o.AckID, int32(now))
		case core.OutKeepAlive:
			n, err = packet.EncodeSimple(p.scratch, packet.TypeKeepAlive, int32(now))
		case core.OutShutdown:
			n, err = packet.EncodeSimple(p.scratch, packet.TypeShutdown, int32(now))
		}
		if err == nil && n > 0 {
			p.transmit(p.scratch[:n])
			sent = true
		}
	}
}

func (p *peer) result() PeerResult {
	r := PeerResult{
		SentBytes: p.sendOff,
		RecvBytes: p.recvBytes,
		RecvOK:    p.recvBytes == p.wantLen && uint64(p.recvHash) == p.wantHash,
		RecvHash:  uint64(p.recvHash),
		Broken:    p.eng.Broken(),
		BrokenAt:  p.brokenAt,
		Stats:     p.eng.Stats,
	}
	if p.sec != nil {
		r.AuthFails, r.ReplayDrops = p.sec.Drops()
	}
	return r
}
