// Package chaos is the fault-injection harness: it drives the real UDT
// protocol engines (internal/core) over a netem fabric and asserts
// end-to-end properties — data integrity under impairment, eventual
// peer-death detection across partitions, bounded recovery times.
//
// Two drivers are provided. Run executes both endpoints single-threaded
// under a netem.VirtualClock, so an entire transfer — every packet
// arrival, timer expiry and impairment draw — is a deterministic function
// of the Config: two runs with the same seed produce bit-identical
// Results, and simulated minutes elapse in milliseconds of real time.
// RunReal executes the full concurrent udt stack (Dial/Listen, goroutines,
// wall clock) over the same fabric, trading replayability for coverage of
// the production code path.
//
// The endpoint machinery itself — the exported Peer — is shared with
// internal/campaign, which schedules many Peers across multi-node
// topologies under the same virtual clock.
package chaos

import (
	"math/rand"
	"sort"

	"udt/internal/core"
	"udt/internal/netem"
	"udt/internal/secure"
	"udt/internal/seqno"
)

// Event is a scripted mid-transfer fault: at virtual time At (µs from the
// start of the run), Do is applied to the fabric. Events fire in At order,
// on the driver goroutine, so they are part of the deterministic replay.
type Event struct {
	// At is the virtual time of the fault, µs from the start of the run.
	At int64
	// Do mutates the fabric: partition, heal, change a link's impairments.
	Do func(nw *netem.Net)
}

// Config parameterizes one virtual-clock chaos run between two peers named
// "a" and "b".
type Config struct {
	// Seed drives every random choice: the payload bytes, the handshake
	// sequence numbers and all netem impairment draws.
	Seed int64
	// PayloadA and PayloadB are the bytes a and b send (either may be 0).
	PayloadA, PayloadB int
	// MSS is the UDT packet size in bytes. Default 1472.
	MSS int
	// SndBufPkts and RcvBufPkts size the peer buffers. Default 4096.
	SndBufPkts, RcvBufPkts int
	// Link is applied to both directions before the run starts.
	Link netem.LinkConfig
	// MinEXP and PeerDeathTime tune failure detection, in µs; zero keeps
	// the core defaults (300 ms floor, 5 s death).
	MinEXP, PeerDeathTime int64
	// Events are scripted faults, fired in At order.
	Events []Event
	// MaxVirtualTime aborts the run after this much virtual time, µs.
	// Default 120 s.
	MaxVirtualTime int64
	// CCA and CCB name each peer's congestion controller ("native",
	// "ctcp", "scalable", "hstcp"). Empty selects the native law with a
	// nil factory — the exact pre-pluggable construction path.
	CCA, CCB string
	// Secure runs the transfer over the sealed AEAD channel: both peers
	// hold seed-derived sessions (key material drawn from the run's RNG,
	// exactly as a completed authenticated handshake would leave them) and
	// every packet is sealed on send and opened on receive. Duplication
	// impairments then double as replay attacks against the control
	// channel, which the anti-replay window must absorb without breaking
	// the transfer.
	Secure bool
}

func (c *Config) fill() {
	if c.MSS == 0 {
		c.MSS = 1472
	}
	if c.SndBufPkts == 0 {
		c.SndBufPkts = 4096
	}
	if c.RcvBufPkts == 0 {
		c.RcvBufPkts = 4096
	}
	if c.MaxVirtualTime == 0 {
		c.MaxVirtualTime = 120_000_000
	}
}

// PeerResult is one endpoint's outcome.
type PeerResult struct {
	// SentBytes is how much of the peer's payload entered the send buffer.
	SentBytes int
	// RecvBytes is how many stream bytes were read out of the receiver.
	RecvBytes int
	// RecvOK reports the received stream matched the peer's payload
	// byte-for-byte (FNV-64a over length and content).
	RecvOK bool
	// RecvHash is the FNV-64a digest of the received stream.
	RecvHash uint64
	// Broken reports the engine declared the peer dead (EXP expiry).
	Broken bool
	// BrokenAt is the virtual time of death detection, µs (0 if !Broken).
	BrokenAt int64
	// AuthFails and ReplayDrops are the secure session's receive-side
	// rejection counters (zero on cleartext runs).
	AuthFails, ReplayDrops uint64
	// Stats is the engine's final protocol counters.
	Stats core.Stats
}

// Result is the outcome of one chaos run. Under the virtual clock it is a
// pure function of the Config — compare two same-seed Results with
// reflect.DeepEqual to verify determinism.
type Result struct {
	// OK reports both transfers completed with matching checksums.
	OK bool
	// TimedOut reports the run hit MaxVirtualTime before finishing.
	TimedOut bool
	// Elapsed is the virtual duration of the run, µs.
	Elapsed int64
	// A and B are the per-endpoint outcomes.
	A, B PeerResult
	// PathAB and PathBA are the fabric's impairment counters per direction.
	PathAB, PathBA netem.PathStats
}

// Run executes one chaos transfer under a virtual clock and returns its
// outcome. It is fully deterministic: same Config, same Result.
func Run(cfg Config) Result {
	cfg.fill()
	vc := netem.NewVirtualClock(0)
	nw := netem.New(cfg.Seed, vc)
	rng := rand.New(rand.NewSource(cfg.Seed)) //nolint:gosec // reproducibility, not crypto

	epA, err := nw.Endpoint("a")
	if err != nil {
		panic(err) // fresh fabric: cannot collide
	}
	epB, _ := nw.Endpoint("b")
	nw.SetLink("a", "b", cfg.Link)

	payA := make([]byte, cfg.PayloadA)
	rng.Read(payA) //nolint:errcheck // never fails
	payB := make([]byte, cfg.PayloadB)
	rng.Read(payB) //nolint:errcheck

	isnA := rng.Int31() & seqno.Max
	isnB := rng.Int31() & seqno.Max
	// Seed-derived sealing state, drawn after the payloads and ISNs so a
	// secure run moves the same stream bytes as its cleartext twin.
	var secA, secB *secure.Session
	if cfg.Secure {
		var psk [32]byte
		var nonceA, nonceB [16]byte
		rng.Read(psk[:])    //nolint:errcheck // never fails
		rng.Read(nonceA[:]) //nolint:errcheck
		rng.Read(nonceB[:]) //nolint:errcheck
		keys := secure.DeriveKeys(psk[:])
		secA = secure.NewSession(keys, nonceA[:], nonceB[:], true, isnA, isnB, true)
		secB = secure.NewSession(keys, nonceA[:], nonceB[:], false, isnB, isnA, true)
	}
	a := newPeer("a", cfg, cfg.CCA, isnA, isnB, epA, epB.LocalAddr(), payA, payB, secA)
	b := newPeer("b", cfg, cfg.CCB, isnB, isnA, epB, epA.LocalAddr(), payB, payA, secB)

	events := append([]Event(nil), cfg.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })

	a.Start(vc.Now())
	b.Start(vc.Now())

	res := Result{}
	peers := [2]*Peer{a, b}
	for {
		now := vc.Now()
		progress := false
		for len(events) > 0 && events[0].At <= now {
			events[0].Do(nw)
			events = events[1:]
			progress = true
		}
		for _, p := range peers {
			if p.Pump(now) {
				progress = true
			}
		}
		done := true
		for _, p := range peers {
			if p.NoteBroken(now) {
				continue
			}
			if !p.Finished() {
				done = false
			}
		}
		if done {
			break
		}
		if now >= cfg.MaxVirtualTime {
			res.TimedOut = true
			break
		}
		if progress {
			continue // re-pump at the same instant before sleeping
		}
		wake := cfg.MaxVirtualTime
		if len(events) > 0 && events[0].At < wake {
			wake = events[0].At
		}
		for _, p := range peers {
			wake = p.NextWake(wake)
		}
		if t, ok := vc.NextEvent(); ok && t < wake {
			wake = t
		}
		if wake <= now {
			wake = now + 1 // guarantee progress even on zero-delay links
		}
		vc.AdvanceTo(wake)
	}

	res.Elapsed = vc.Now()
	res.A = a.Result()
	res.B = b.Result()
	res.OK = !res.TimedOut && a.Finished() && b.Finished() && res.A.RecvOK && res.B.RecvOK
	res.PathAB = nw.PathStats("a", "b")
	res.PathBA = nw.PathStats("b", "a")
	epA.Close() //nolint:errcheck
	epB.Close() //nolint:errcheck
	return res
}
