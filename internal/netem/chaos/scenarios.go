package chaos

import "udt/internal/netem"

// PartitionAt scripts a mid-transfer partition between the two peers at
// virtual time at (µs); if healAt > at the partition heals again, otherwise
// it is permanent and both engines must eventually declare peer death.
func PartitionAt(at, healAt int64) []Event {
	ev := []Event{{At: at, Do: func(nw *netem.Net) { nw.Partition("a", "b") }}}
	if healAt > at {
		ev = append(ev, Event{At: healAt, Do: func(nw *netem.Net) { nw.Heal("a", "b") }})
	}
	return ev
}

// RTTStep scripts a route change: at virtual time at (µs) the one-way
// delay of both directions jumps to delayUs. The protocol's RTT estimator
// and rate control must adapt without losing data.
func RTTStep(at, delayUs int64) []Event {
	return []Event{{At: at, Do: func(nw *netem.Net) {
		set := func(from, to string) {
			nw.UpdatePath(from, to, func(c *netem.LinkConfig) { c.Delay = delayUs })
		}
		set("a", "b")
		set("b", "a")
	}}}
}

// LossBurst scripts a transient loss episode: between virtual times at and
// until (µs) both directions drop packets i.i.d. with probability loss;
// afterwards the original loss rates are restored.
func LossBurst(at, until int64, loss float64) []Event {
	var savedAB, savedBA float64
	return []Event{
		{At: at, Do: func(nw *netem.Net) {
			nw.UpdatePath("a", "b", func(c *netem.LinkConfig) { savedAB, c.Loss = c.Loss, loss })
			nw.UpdatePath("b", "a", func(c *netem.LinkConfig) { savedBA, c.Loss = c.Loss, loss })
		}},
		{At: until, Do: func(nw *netem.Net) {
			nw.UpdatePath("a", "b", func(c *netem.LinkConfig) { c.Loss = savedAB })
			nw.UpdatePath("b", "a", func(c *netem.LinkConfig) { c.Loss = savedBA })
		}},
	}
}
