package chaos

import "udt/internal/netem"

// Case is one cell of the impairment matrix: a named link condition (and
// optionally a scripted fault sequence) a full transfer must survive.
type Case struct {
	// Name identifies the cell in reports.
	Name string
	// Link is the impairment applied to both directions.
	Link netem.LinkConfig
	// Payload is the per-direction transfer size in bytes.
	Payload int
	// Events are scripted mid-transfer faults.
	Events []Event
	// MinEXP and PeerDeathTime tune failure detection, µs (0 = defaults).
	MinEXP, PeerDeathTime int64
	// ExpectDeath inverts the success criterion: the case passes when both
	// engines detect peer death instead of completing the transfer.
	ExpectDeath bool
	// MaxVirtualTime overrides the run's virtual-time budget, µs.
	MaxVirtualTime int64
	// MuxFlows switches the cell to the multiplexed driver (RunMux): that
	// many flow pairs share the impaired path, each sending Payload bytes
	// per direction, demultiplexed by socket ID. Zero runs the ordinary
	// two-peer driver.
	MuxFlows int
	// CCA and CCB select the two peers' congestion controllers in a
	// two-peer cell; empty means native.
	CCA, CCB string
	// CCs assigns controllers per flow pair (cycled) in a MuxFlows cell —
	// different laws coexisting on one link.
	CCs []string
	// Secure runs the cell over the sealed AEAD channel with seed-derived
	// sessions (two-peer cells only).
	Secure bool
	// Rendezvous switches the cell to the real-stack rendezvous driver
	// (RunRendezvous): both sides cross simultaneous dials through the
	// impairment, then move Payload bytes. Wall-clock timed.
	Rendezvous bool
	// FSKillAt switches the cell to the real-stack udtfs driver (RunFS):
	// a resumable fetch of a Payload-byte file whose serving connection
	// is killed after this many delivered bytes. Wall-clock timed.
	FSKillAt int64
}

// CaseResult pairs a matrix cell with its outcome.
type CaseResult struct {
	// Case is the cell that ran.
	Case Case
	// Result is the chaos run outcome (two-peer cells).
	Result Result
	// Mux is the multiplexed run outcome (cells with MuxFlows > 0).
	Mux *MuxResult
	// Real is the real-stack run outcome (Rendezvous cells).
	Real *RealResult
	// FS is the resumable-fetch run outcome (FSKillAt cells).
	FS *FSResult
	// Pass applies the cell's success criterion (transfer integrity, or
	// mutual death detection for ExpectDeath cells; a resume for FSKillAt
	// cells additionally requires the scripted kill to have been survived).
	Pass bool
}

// QuickMatrix is the CI impairment matrix: small payloads, every
// impairment class, scripted partitions — a few seconds of wall time under
// the virtual clock.
func QuickMatrix() []Case {
	const quarterMB = 256 << 10
	return []Case{
		{Name: "clean", Link: netem.LinkConfig{Delay: 2000}, Payload: 4 * quarterMB},
		{Name: "loss-1pct", Link: netem.LinkConfig{Delay: 5000, Jitter: 2000, Loss: 0.01}, Payload: 2 * quarterMB},
		{Name: "loss-burst-ge", Link: netem.LinkConfig{Delay: 5000, GE: &netem.GEParams{PGoodBad: 0.01, PBadGood: 0.2, LossBad: 0.7}}, Payload: quarterMB},
		{Name: "dup-corrupt", Link: netem.LinkConfig{Delay: 2000, Dup: 0.01, Corrupt: 0.005}, Payload: quarterMB},
		{Name: "reorder", Link: netem.LinkConfig{Delay: 3000, Jitter: 6000, Reorder: 0.05}, Payload: quarterMB},
		{Name: "rate-capped", Link: netem.LinkConfig{Delay: 2000, RateMbps: 50, QueuePkts: 48}, Payload: quarterMB},
		// The scenario cells cap the link rate so the transfer is still in
		// flight when the scripted fault lands (an uncapped virtual link
		// moves these payloads in tens of virtual milliseconds).
		{Name: "partition-heal", Link: netem.LinkConfig{Delay: 2000, Loss: 0.005, RateMbps: 100, QueuePkts: 64},
			Payload: 2 * quarterMB, Events: PartitionAt(20_000, 320_000)},
		{Name: "rtt-step", Link: netem.LinkConfig{Delay: 1000, RateMbps: 100, QueuePkts: 64},
			Payload: 2 * quarterMB, Events: RTTStep(15_000, 20_000)},
		{Name: "loss-episode", Link: netem.LinkConfig{Delay: 2000, RateMbps: 100, QueuePkts: 64},
			Payload: 2 * quarterMB, Events: LossBurst(15_000, 150_000, 0.25)},
		{Name: "partition-permanent", Link: netem.LinkConfig{Delay: 2000, RateMbps: 100, QueuePkts: 64},
			Payload: 4 << 20, Events: PartitionAt(30_000, 0), MinEXP: 50_000,
			PeerDeathTime: 2_000_000, ExpectDeath: true, MaxVirtualTime: 30_000_000},
		// 64 socket-ID-demultiplexed flow pairs interleaved on one lossy
		// path: every packet of every flow must come back out of the shared
		// fabric to the right engine.
		{Name: "mux-64flows", Link: netem.LinkConfig{Delay: 3000, Jitter: 1000, Loss: 0.005},
			Payload: 4096, MuxFlows: 64},
		// Rendezvous under loss: two simultaneous dials cross through a
		// lossy path on the full concurrent stack, so a dropped crossing
		// request must be recovered by retransmission before the payload
		// moves — wall-clock timed, digest-pinned on outcome only.
		{Name: "rdv-loss-1pct", Link: netem.LinkConfig{Delay: 2000, Jitter: 1000, Loss: 0.01},
			Payload: quarterMB, Rendezvous: true},
		// Killed-and-resumed udtfs fetch: the serving connection dies a
		// quarter of the way in, and the Fetcher must re-dial through the
		// impairment and resume from its verified offset, byte-identical.
		{Name: "fs-kill-resume", Link: netem.LinkConfig{Delay: 2000, Loss: 0.005},
			Payload: 4 * quarterMB, FSKillAt: quarterMB},
		// Authenticated AEAD flows under loss and duplication: every
		// duplicated control packet is a literal replay attack (valid tag,
		// reused sequence number) that the anti-replay window must absorb,
		// while duplicated data packets still reach the engine — its
		// duplicate-triggered re-ACKs are part of the protocol.
		{Name: "secure-aead-replay", Link: netem.LinkConfig{Delay: 3000, Jitter: 1000, Loss: 0.005, Dup: 0.01},
			Payload: quarterMB, Secure: true},
	}
}

// CCMatrix is the congestion-control matrix: every pluggable law moving
// real transfers over an impaired path, plus fairness cells racing two
// different laws on one rate-capped link — the §5.2 intra/inter-protocol
// scenarios as deterministic replay cells. A fairness cell passes when
// every flow completes; the per-flow goodput split is in
// MuxResult.Flows[i].Goodput{A,B}Mbps.
func CCMatrix() []Case {
	const quarterMB = 256 << 10
	impaired := netem.LinkConfig{Delay: 4000, Jitter: 1000, Loss: 0.01}
	shared := netem.LinkConfig{Delay: 5000, RateMbps: 40, QueuePkts: 64}
	return []Case{
		// Each non-native law carries a bidirectional transfer through loss.
		{Name: "cc-ctcp", Link: impaired, Payload: quarterMB, CCA: "ctcp", CCB: "ctcp"},
		{Name: "cc-scalable", Link: impaired, Payload: quarterMB, CCA: "scalable", CCB: "scalable"},
		{Name: "cc-hstcp", Link: impaired, Payload: quarterMB, CCA: "hstcp", CCB: "hstcp"},
		{Name: "cc-bbrlite", Link: impaired, Payload: quarterMB, CCA: "bbrlite", CCB: "bbrlite"},
		// Asymmetric pair: the two ends of one connection run different laws.
		{Name: "cc-native-vs-ctcp", Link: impaired, Payload: quarterMB, CCA: "native", CCB: "ctcp"},
		// Fairness: two flow pairs, one per law, multiplexed onto one
		// rate-capped queue; the drop pattern each flow sees depends on the
		// other's sending schedule, so the laws genuinely interact.
		{Name: "cc-fair-native-ctcp", Link: shared, Payload: 2 * quarterMB,
			MuxFlows: 2, CCs: []string{"native", "ctcp"}, MaxVirtualTime: 300_000_000},
		{Name: "cc-fair-ctcp-hstcp", Link: shared, Payload: 2 * quarterMB,
			MuxFlows: 2, CCs: []string{"ctcp", "hstcp"}, MaxVirtualTime: 300_000_000},
		// Rate-based probing vs. loss-based AIMD on one queue: bbrlite must
		// neither starve (its loss reaction keeps it backing off the shared
		// queue) nor be starved by native's bandwidth-indexed increase.
		{Name: "cc-fair-native-bbrlite", Link: shared, Payload: 2 * quarterMB,
			MuxFlows: 2, CCs: []string{"native", "bbrlite"}, MaxVirtualTime: 300_000_000},
	}
}

// RunMatrix executes every case under the virtual clock with the given
// seed and applies each cell's success criterion.
func RunMatrix(seed int64, cases []Case) []CaseResult {
	out := make([]CaseResult, 0, len(cases))
	for _, cs := range cases {
		if cs.Rendezvous {
			rr, err := RunRendezvous(RealConfig{Seed: seed, Payload: cs.Payload, Link: cs.Link})
			out = append(out, CaseResult{Case: cs, Real: &rr, Pass: err == nil && rr.OK})
			continue
		}
		if cs.FSKillAt > 0 {
			fr, err := RunFS(FSConfig{Seed: seed, Payload: cs.Payload, Link: cs.Link, KillAt: cs.FSKillAt})
			out = append(out, CaseResult{Case: cs, FS: &fr,
				Pass: err == nil && fr.OK && fr.Killed && fr.Resumes > 0})
			continue
		}
		if cs.MuxFlows > 0 {
			mr := RunMux(MuxConfig{
				Seed:           seed,
				Flows:          cs.MuxFlows,
				PayloadPerFlow: cs.Payload,
				Link:           cs.Link,
				Events:         cs.Events,
				MinEXP:         cs.MinEXP,
				PeerDeathTime:  cs.PeerDeathTime,
				MaxVirtualTime: cs.MaxVirtualTime,
				CCs:            cs.CCs,
			})
			out = append(out, CaseResult{Case: cs, Mux: &mr, Pass: mr.OK})
			continue
		}
		cfg := Config{
			Seed:           seed,
			PayloadA:       cs.Payload,
			PayloadB:       cs.Payload,
			Link:           cs.Link,
			Events:         cs.Events,
			MinEXP:         cs.MinEXP,
			PeerDeathTime:  cs.PeerDeathTime,
			MaxVirtualTime: cs.MaxVirtualTime,
			CCA:            cs.CCA,
			CCB:            cs.CCB,
			Secure:         cs.Secure,
		}
		r := Run(cfg)
		pass := r.OK
		if cs.ExpectDeath {
			pass = r.A.Broken && r.B.Broken
		}
		out = append(out, CaseResult{Case: cs, Result: r, Pass: pass})
	}
	return out
}
