package chaos

import (
	"reflect"
	"testing"

	"udt/internal/netem"
)

// TestMuxDeterministicReplay runs 64 interleaved flows over an impaired
// path twice with the same seed and requires bit-identical results — the
// demultiplexer, all 128 engines, and every impairment draw replay exactly.
func TestMuxDeterministicReplay(t *testing.T) {
	cfg := MuxConfig{
		Seed: 7,
		Link: netem.LinkConfig{Delay: 3000, Jitter: 2000, Loss: 0.02, Dup: 0.002, Corrupt: 0.001},
	}
	one, two := RunMux(cfg), RunMux(cfg)
	if !reflect.DeepEqual(one, two) {
		t.Fatalf("same-seed mux runs diverged:\n%+v\n%+v", one, two)
	}
	if !one.OK {
		t.Fatalf("mux transfer failed: FlowsOK=%d/%d TimedOut=%v", one.FlowsOK, len(one.Flows), one.TimedOut)
	}
	retrans := int64(0)
	for _, f := range one.Flows {
		retrans += f.A.Stats.PktsRetrans + f.B.Stats.PktsRetrans
	}
	if retrans == 0 {
		t.Fatal("2% loss across 64 flows produced no retransmissions")
	}
	cfg.Seed = 8
	other := RunMux(cfg)
	if reflect.DeepEqual(one, other) {
		t.Fatal("different seeds produced identical mux runs (seed unused?)")
	}
}

// TestMuxCleanLinkNoDrops requires a loss-free shared path to deliver
// every flow with zero demultiplexer drops: corruption is the only way a
// datagram can become unroutable, and there is none.
func TestMuxCleanLinkNoDrops(t *testing.T) {
	res := RunMux(MuxConfig{Seed: 11, Flows: 64, Link: netem.LinkConfig{Delay: 1000}})
	if !res.OK || res.FlowsOK != 64 {
		t.Fatalf("clean mux run failed: FlowsOK=%d TimedOut=%v", res.FlowsOK, res.TimedOut)
	}
	if res.UnknownDestA != 0 || res.UnknownDestB != 0 || res.ShortA != 0 || res.ShortB != 0 {
		t.Fatalf("clean link produced demux drops: A=(%d,%d) B=(%d,%d)",
			res.UnknownDestA, res.ShortA, res.UnknownDestB, res.ShortB)
	}
}

// TestMuxSurvivesPartition scripts a heal-after-cut partition under the
// multiplexed driver: every one of the flows sharing the path must recover.
func TestMuxSurvivesPartition(t *testing.T) {
	res := RunMux(MuxConfig{
		Seed:           13,
		Flows:          64,
		PayloadPerFlow: 8192,
		Link:           netem.LinkConfig{Delay: 2000, RateMbps: 100, QueuePkts: 64},
		Events:         PartitionAt(20_000, 300_000),
	})
	if !res.OK {
		t.Fatalf("mux partition run failed: FlowsOK=%d/%d TimedOut=%v",
			res.FlowsOK, len(res.Flows), res.TimedOut)
	}
}
