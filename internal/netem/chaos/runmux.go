package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"sort"

	"udt/internal/mux"
	"udt/internal/netem"
	"udt/internal/seqno"
)

// MuxConfig parameterizes one deterministic multiplexed chaos run: Flows
// bidirectional flow pairs share a single netem path, demultiplexed by
// pre-assigned socket IDs through one mux.Core per side — the same demux
// the production udt.Mux uses, driven under a virtual clock.
type MuxConfig struct {
	// Seed drives every random choice: payloads, ISNs, impairment draws.
	Seed int64
	// Flows is the number of concurrent flow pairs. Default 64.
	Flows int
	// PayloadPerFlow is how many bytes each side of each flow sends.
	// Default 2048.
	PayloadPerFlow int
	// MSS is the UDT packet size; the socket-ID prefix rides in front of
	// it on the wire. Default 576 (many engines → small buffers).
	MSS int
	// SndBufPkts and RcvBufPkts size each flow's buffers. Default 64.
	SndBufPkts, RcvBufPkts int
	// Link is applied to both directions before the run starts.
	Link netem.LinkConfig
	// MinEXP and PeerDeathTime tune failure detection, in µs; zero keeps
	// the core defaults.
	MinEXP, PeerDeathTime int64
	// Events are scripted faults, fired in At order.
	Events []Event
	// MaxVirtualTime aborts the run after this much virtual time, µs.
	// Default 120 s.
	MaxVirtualTime int64
	// CCs assigns congestion controllers per flow pair, cycled: flow i
	// (both directions) runs CCs[i%len(CCs)]. Empty means every flow runs
	// the native law. This is what lets one cell race two different laws
	// over the same impaired path under deterministic replay.
	CCs []string
}

func (c *MuxConfig) fill() {
	if c.Flows == 0 {
		c.Flows = 64
	}
	if c.PayloadPerFlow == 0 {
		c.PayloadPerFlow = 2048
	}
	if c.MSS == 0 {
		c.MSS = 576
	}
	if c.SndBufPkts == 0 {
		c.SndBufPkts = 64
	}
	if c.RcvBufPkts == 0 {
		c.RcvBufPkts = 64
	}
	if c.MaxVirtualTime == 0 {
		c.MaxVirtualTime = 120_000_000
	}
}

// FlowResult is one flow pair's outcome.
type FlowResult struct {
	A, B PeerResult
	// CC names the congestion controller both directions of the flow ran
	// ("" = native).
	CC string
	// GoodputAMbps and GoodputBMbps are each direction's delivered rate
	// over the whole run (RecvBytes·8/Elapsed) — the per-flow share of the
	// link, which is what the controller-vs-controller fairness cells
	// compare.
	GoodputAMbps, GoodputBMbps float64
}

// MuxResult is the outcome of one multiplexed chaos run. Under the virtual
// clock it is a pure function of the MuxConfig — compare two same-seed
// MuxResults with reflect.DeepEqual to verify determinism.
type MuxResult struct {
	// OK reports every flow finished with matching checksums in both
	// directions.
	OK bool
	// TimedOut reports the run hit MaxVirtualTime before finishing.
	TimedOut bool
	// Elapsed is the virtual duration of the run, µs.
	Elapsed int64
	// FlowsOK counts flows whose both directions verified.
	FlowsOK int
	// Flows are the per-flow outcomes, in flow order.
	Flows []FlowResult
	// UnknownDestA/B and ShortA/B are each side's demultiplexer drop
	// counters; nonzero UnknownDest under impairment-free links indicates
	// a routing bug.
	UnknownDestA, ShortA uint64
	UnknownDestB, ShortB uint64
	// PathAB and PathBA are the fabric's impairment counters per direction.
	PathAB, PathBA netem.PathStats
}

// muxFlowPeer adapts one chaos peer to the demultiplexer: dispatched
// datagrams are queued (copied — Dispatch's buffer is reused) and drained
// on the flow's next scheduling round.
type muxFlowPeer struct {
	*Peer
	inbox [][]byte
}

// HandleDatagram implements mux.Flow: the demultiplexed datagram is copied
// into the inbox for the single-threaded driver to replay deterministically.
func (f *muxFlowPeer) HandleDatagram(raw []byte) {
	f.inbox = append(f.inbox, append([]byte(nil), raw...))
}

// drain feeds queued datagrams through the engine.
func (f *muxFlowPeer) drain(now int64) (progress bool) {
	if len(f.inbox) == 0 {
		return false
	}
	if !f.eng.Broken() {
		for _, m := range f.inbox {
			f.Deliver(now, m)
		}
		progress = true
	}
	f.inbox = f.inbox[:0]
	return progress
}

// prefixedWriter returns an out hook that stamps dest into a socket-ID
// prefix ahead of every datagram — the multiplexed wire format.
func prefixedWriter(ep *netem.Endpoint, to net.Addr, dest int32, mss int) func([]byte) {
	buf := make([]byte, mux.DestPrefix+mss)
	return func(b []byte) {
		n := copy(buf[mux.DestPrefix:], b)
		mux.PutDest(buf, dest)
		ep.WriteTo(buf[:mux.DestPrefix+n], to) //nolint:errcheck // losses are the point
	}
}

// RunMux executes one multiplexed chaos run under a virtual clock: every
// flow's packets traverse the same impaired path, interleaved, and each
// side's mux.Core routes them back to the right engine by socket ID. It is
// fully deterministic: same MuxConfig, same MuxResult.
//
// Socket IDs are pre-assigned (side a's flow i speaks to side b's flow i),
// standing in for the extended-handshake exchange the production Mux
// performs; the run exercises the data-plane demux, not connection setup.
func RunMux(cfg MuxConfig) MuxResult {
	cfg.fill()
	vc := netem.NewVirtualClock(0)
	nw := netem.New(cfg.Seed, vc)
	rng := rand.New(rand.NewSource(cfg.Seed)) //nolint:gosec // reproducibility, not crypto

	epA, err := nw.Endpoint("a")
	if err != nil {
		panic(err) // fresh fabric: cannot collide
	}
	epB, _ := nw.Endpoint("b")
	nw.SetLink("a", "b", cfg.Link)

	// No bare traffic in this harness: a handshake or unroutable datagram
	// reaching the cores' fallback paths counts as a drop, which the
	// result surfaces.
	coreA := mux.NewCore(func([]byte, net.Addr) {})
	coreB := mux.NewCore(func([]byte, net.Addr) {})

	base := Config{
		MSS:           cfg.MSS,
		SndBufPkts:    cfg.SndBufPkts,
		RcvBufPkts:    cfg.RcvBufPkts,
		MinEXP:        cfg.MinEXP,
		PeerDeathTime: cfg.PeerDeathTime,
	}
	flowsA := make([]*muxFlowPeer, cfg.Flows)
	flowsB := make([]*muxFlowPeer, cfg.Flows)
	flowCC := make([]string, cfg.Flows)
	for i := 0; i < cfg.Flows; i++ {
		if len(cfg.CCs) > 0 {
			flowCC[i] = cfg.CCs[i%len(cfg.CCs)]
		}
		payA := make([]byte, cfg.PayloadPerFlow)
		rng.Read(payA) //nolint:errcheck // never fails
		payB := make([]byte, cfg.PayloadPerFlow)
		rng.Read(payB) //nolint:errcheck
		isnA := rng.Int31() & seqno.Max
		isnB := rng.Int31() & seqno.Max
		idA := mux.MakeID(int32(0x1000_0000 + i))
		idB := mux.MakeID(int32(0x2000_0000 + i))
		pa := newPeer(fmt.Sprintf("a%d", i), base, flowCC[i], isnA, isnB, epA, epB.LocalAddr(), payA, payB, nil)
		pb := newPeer(fmt.Sprintf("b%d", i), base, flowCC[i], isnB, isnA, epB, epA.LocalAddr(), payB, payA, nil)
		pa.SetOut(prefixedWriter(epA, epB.LocalAddr(), idB, cfg.MSS))
		pb.SetOut(prefixedWriter(epB, epA.LocalAddr(), idA, cfg.MSS))
		fa := &muxFlowPeer{Peer: pa}
		fb := &muxFlowPeer{Peer: pb}
		if !coreA.Register(idA, fa) || !coreB.Register(idB, fb) {
			panic(fmt.Sprintf("chaos: socket ID collision at flow %d", i))
		}
		flowsA[i], flowsB[i] = fa, fb
	}

	events := append([]Event(nil), cfg.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })

	for i := range flowsA {
		flowsA[i].Start(vc.Now())
		flowsB[i].Start(vc.Now())
	}

	res := MuxResult{Flows: make([]FlowResult, cfg.Flows)}
	rbuf := make([]byte, 65536)
	sides := [2]struct {
		ep    *netem.Endpoint
		core  *mux.Core
		flows []*muxFlowPeer
	}{
		{epA, coreA, flowsA},
		{epB, coreB, flowsB},
	}
	for {
		now := vc.Now()
		progress := false
		for len(events) > 0 && events[0].At <= now {
			events[0].Do(nw)
			events = events[1:]
			progress = true
		}
		for _, s := range sides {
			for {
				n, from, ok := s.ep.TryReadFrom(rbuf)
				if !ok {
					break
				}
				s.core.Dispatch(rbuf[:n], from)
				progress = true
			}
			for _, f := range s.flows {
				if f.drain(now) {
					progress = true
				}
				if f.Service(now) {
					progress = true
				}
			}
		}
		done := true
		for _, s := range sides {
			for _, f := range s.flows {
				if f.NoteBroken(now) {
					continue
				}
				if !f.Finished() {
					done = false
				}
			}
		}
		if done {
			break
		}
		if now >= cfg.MaxVirtualTime {
			res.TimedOut = true
			break
		}
		if progress {
			continue // re-pump at the same instant before sleeping
		}
		wake := cfg.MaxVirtualTime
		if len(events) > 0 && events[0].At < wake {
			wake = events[0].At
		}
		for _, s := range sides {
			for _, f := range s.flows {
				wake = f.NextWake(wake)
			}
		}
		if t, ok := vc.NextEvent(); ok && t < wake {
			wake = t
		}
		if wake <= now {
			wake = now + 1 // guarantee progress even on zero-delay links
		}
		vc.AdvanceTo(wake)
	}

	res.Elapsed = vc.Now()
	res.OK = !res.TimedOut
	for i := range res.Flows {
		fr := FlowResult{A: flowsA[i].Result(), B: flowsB[i].Result(), CC: flowCC[i]}
		if res.Elapsed > 0 {
			fr.GoodputAMbps = float64(fr.A.RecvBytes) * 8 / float64(res.Elapsed)
			fr.GoodputBMbps = float64(fr.B.RecvBytes) * 8 / float64(res.Elapsed)
		}
		res.Flows[i] = fr
		flowOK := flowsA[i].Finished() && flowsB[i].Finished() && fr.A.RecvOK && fr.B.RecvOK
		if flowOK {
			res.FlowsOK++
		} else {
			res.OK = false
		}
	}
	res.UnknownDestA, res.ShortA = coreA.Counters()
	res.UnknownDestB, res.ShortB = coreB.Counters()
	res.PathAB = nw.PathStats("a", "b")
	res.PathBA = nw.PathStats("b", "a")
	epA.Close() //nolint:errcheck
	epB.Close() //nolint:errcheck
	return res
}
