package chaos

import (
	"fmt"
	"hash/fnv"
	"net"

	"udt/internal/congestion"
	"udt/internal/core"
	"udt/internal/netem"
	"udt/internal/packet"
	"udt/internal/secure"
	"udt/internal/seqno"
	"udt/internal/trace"
)

// Peer is one single-threaded protocol endpoint: the real core engine and
// buffers, pumped by a deterministic driver loop — the virtual-clock
// counterpart of udt.Conn's goroutines. The chaos drivers (Run, RunMux) and
// the campaign harness (internal/campaign) all schedule Peers the same way:
// deliver queued datagrams, call Service, sleep to NextWake, repeat.
type Peer struct {
	name     string
	eng      *core.Conn
	snd      *core.SndBuffer
	rcv      *core.RcvBuffer
	ep       *netem.Endpoint
	peerAddr net.Addr
	out      func(b []byte)  // transmit one datagram (mux/campaign drivers stamp prefixes)
	sec      *secure.Session // nil = cleartext; else every packet seals/opens

	payload  []byte // stream this peer sends
	sendOff  int
	wantLen  int // bytes expected from the other side
	wantHash uint64

	recvBytes int
	recvHash  hashState

	lastDecision core.SendDecision
	brokenAt     int64

	// Write→acked latency tracking (campaign monitor): first-transmission
	// times per sequence and the resulting per-packet ack latencies.
	trackAck  bool
	sendTimes map[int32]int64
	ackLat    []int64
	ackedTo   int32 // SndLastAck already folded into ackLat

	scratch []byte
	rbuf    []byte
}

// PeerOptions parameterizes one driver-pumped protocol endpoint.
type PeerOptions struct {
	// Name identifies the peer in panics and debugging output.
	Name string
	// MSS is the UDT packet size in bytes. Default 1472.
	MSS int
	// SndBufPkts and RcvBufPkts size the peer buffers. Default 4096.
	SndBufPkts, RcvBufPkts int
	// MinEXP and PeerDeathTime tune failure detection, in µs; zero keeps
	// the core defaults (300 ms floor, 5 s death).
	MinEXP, PeerDeathTime int64
	// CC names the congestion controller ("native", "ctcp", "bbrlite", ...).
	// Empty selects the native law with a nil factory — the exact
	// pre-pluggable construction path.
	CC string
	// ISN and PeerISN are the two sides' initial sequence numbers.
	ISN, PeerISN int32
	// Payload is the stream this peer sends (may be empty).
	Payload []byte
	// Expect is the stream the other side sends to this peer; the peer
	// verifies it byte-for-byte (FNV-64a over length and content).
	Expect []byte
	// Out transmits one datagram; drivers that route or prefix datagrams
	// install their own hook. Nil peers must install one via SetOut before
	// the first Service call.
	Out func(b []byte)
	// Secure runs the peer over the sealed AEAD channel.
	Secure *secure.Session
	// TrackAckLatency records per-packet write→acked latencies
	// (AckLatencies); costs one map entry per in-flight packet, so it is
	// off on the hot chaos matrix and on for campaign monitoring.
	TrackAckLatency bool
}

// NewPeer builds a driver-pumped protocol endpoint from options. The caller
// owns scheduling: call Start once, then Deliver incoming datagrams and
// Service at each virtual instant.
func NewPeer(o PeerOptions) *Peer {
	if o.MSS == 0 {
		o.MSS = 1472
	}
	if o.SndBufPkts == 0 {
		o.SndBufPkts = 4096
	}
	if o.RcvBufPkts == 0 {
		o.RcvBufPkts = 4096
	}
	ccfg := core.Config{
		MSS:           o.MSS,
		ISN:           o.ISN,
		RecvBufPkts:   int32(o.RcvBufPkts),
		MinEXP:        o.MinEXP,
		PeerDeathTime: o.PeerDeathTime,
		CC:            ccFactory(o.CC),
	}
	scratch := o.MSS
	if o.Secure != nil {
		// Control packets grow by CtrlOverhead when sealed; give the encode
		// buffer that slack so sealing never truncates an emission.
		scratch += secure.CtrlOverhead
	}
	p := &Peer{
		name:     o.Name,
		eng:      core.NewConn(ccfg, o.PeerISN),
		sec:      o.Secure,
		out:      o.Out,
		payload:  o.Payload,
		wantLen:  len(o.Expect),
		wantHash: hashOf(o.Expect),
		recvHash: newHash(),
		trackAck: o.TrackAckLatency,
		scratch:  make([]byte, scratch),
		rbuf:     make([]byte, 65536),
	}
	pl := o.MSS - packet.DataHeaderSize
	if o.Secure != nil {
		// The Poly1305 tag rides inside the packet budget, exactly like the
		// real stack: a sealed data packet is still one MSS on the wire.
		pl -= secure.Overhead
	}
	p.snd = core.NewSndBuffer(o.SndBufPkts, pl, o.ISN)
	p.rcv = core.NewRcvBuffer(o.RcvBufPkts, pl, o.PeerISN)
	p.eng.AvailBuf = p.rcv.Free
	if p.trackAck {
		p.sendTimes = make(map[int32]int64)
		p.ackedTo = p.eng.SndLastAck()
	}
	return p
}

// newPeer builds a Peer attached directly to a netem endpoint, transmitting
// to peerAddr — the two-peer chaos driver's construction path.
func newPeer(name string, cfg Config, cc string, isn, peerISN int32, ep *netem.Endpoint, peerAddr net.Addr, payload, expect []byte, sec *secure.Session) *Peer {
	p := NewPeer(PeerOptions{
		Name:          name,
		MSS:           cfg.MSS,
		SndBufPkts:    cfg.SndBufPkts,
		RcvBufPkts:    cfg.RcvBufPkts,
		MinEXP:        cfg.MinEXP,
		PeerDeathTime: cfg.PeerDeathTime,
		CC:            cc,
		ISN:           isn,
		PeerISN:       peerISN,
		Payload:       payload,
		Expect:        expect,
		Secure:        sec,
	})
	p.ep = ep
	p.peerAddr = peerAddr
	p.out = func(b []byte) { p.ep.WriteTo(b, p.peerAddr) } //nolint:errcheck // losses are the point
	return p
}

// ccFactory resolves a controller name for the engine config; the empty
// name maps to nil so default runs take the engine's own native path.
func ccFactory(name string) congestion.Factory {
	if name == "" {
		return nil
	}
	return congestion.MustNew(name)
}

// hashState is an incremental FNV-64a.
type hashState uint64

func newHash() hashState { return hashState(14695981039346656037) }

func (h *hashState) write(p []byte) {
	x := uint64(*h)
	for _, b := range p {
		x ^= uint64(b)
		x *= 1099511628211
	}
	*h = hashState(x)
}

func hashOf(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p) //nolint:errcheck
	return h.Sum64()
}

// SetOut installs the transmit hook (routing/prefixing drivers).
func (p *Peer) SetOut(out func(b []byte)) { p.out = out }

// Start arms the engine's timers at virtual time now; call exactly once
// before the first Service.
func (p *Peer) Start(now int64) { p.eng.Start(now) }

// Broken reports the engine declared the peer dead (EXP expiry).
func (p *Peer) Broken() bool { return p.eng.Broken() }

// NoteBroken records the first virtual instant the engine was observed
// broken and reports whether it is. Drivers call it once per scheduling
// round so PeerResult.BrokenAt is the detection time, not the wrap-up time.
func (p *Peer) NoteBroken(now int64) bool {
	if !p.eng.Broken() {
		return false
	}
	if p.brokenAt == 0 {
		p.brokenAt = now
	}
	return true
}

// Finished reports this peer has nothing left to do: everything it wrote
// is acknowledged and everything it expected has arrived.
func (p *Peer) Finished() bool {
	sentAll := p.sendOff == len(p.payload) && p.snd.Pending() == 0 && p.eng.Unacked() == 0
	return sentAll && p.recvBytes >= p.wantLen
}

// NextWake folds the peer's next timer deadline — and, when the sender is
// pacing-blocked, its next permitted send time — into bound, returning the
// earlier of the two. Broken peers never wake.
func (p *Peer) NextWake(bound int64) int64 {
	if p.eng.Broken() {
		return bound
	}
	if t := p.eng.NextTimer(); t < bound {
		bound = t
	}
	if p.lastDecision == core.WaitPacing {
		if t := p.eng.NextSendTime(); t < bound {
			bound = t
		}
	}
	return bound
}

// AttachPerf hooks the engine's telemetry sampler to sink: every everySYN
// SYN ticks one trace.PerfRecord stamped with the given flow id and label is
// recorded. Sampling adds no events and consumes no randomness, so attaching
// a monitor never perturbs the deterministic replay.
func (p *Peer) AttachPerf(sink trace.Sink, everySYN int, flow int32, label string, role trace.Role) {
	p.eng.SetPerfSink(sink, everySYN, flow, label, role)
}

// AckLatencies returns the recorded per-packet write→acked latencies in µs,
// in acknowledgement order (empty unless TrackAckLatency was set).
func (p *Peer) AckLatencies() []int64 { return p.ackLat }

// Pump runs one scheduling round for the peer at virtual time now: deliver
// queued datagrams from its own endpoint, then Service. It reports whether
// anything happened. Drivers that route datagrams themselves (RunMux, the
// campaign harness) call Deliver + Service directly instead.
func (p *Peer) Pump(now int64) (progress bool) {
	if p.eng.Broken() {
		return false
	}
	for {
		n, _, ok := p.ep.TryReadFrom(p.rbuf)
		if !ok {
			break
		}
		p.Deliver(now, p.rbuf[:n])
		progress = true
	}
	return p.Service(now) || progress
}

// Service runs the non-I/O half of a scheduling round: timers, control
// emissions, pacing-gated data sends, and buffer movement.
func (p *Peer) Service(now int64) (progress bool) {
	if p.eng.Broken() {
		return false
	}
	p.eng.Advance(now)
	if p.flushOutbox(now) {
		progress = true
	}
	// Feed the send buffer.
	if p.sendOff < len(p.payload) {
		if n := p.snd.Write(p.payload[p.sendOff:]); n > 0 {
			p.sendOff += n
			progress = true
		}
	}
	// Data path: lost packets first, then new data, as pacing allows.
	for {
		newAvail := seqno.Cmp(p.snd.NextWriteSeq(), seqno.Inc(p.eng.CurSeq())) > 0
		seq, d := p.eng.NextSend(now, newAvail)
		p.lastDecision = d
		if d != core.SendData && d != core.SendRetrans {
			break
		}
		pl, ok := p.snd.Packet(seq)
		if !ok {
			break
		}
		if p.trackAck && d == core.SendData {
			// First transmission only: ack latency is measured from the
			// original send, so retransmit delay counts against it.
			if _, dup := p.sendTimes[seq]; !dup {
				p.sendTimes[seq] = now
			}
		}
		n, err := packet.EncodeData(p.scratch, &packet.Data{Seq: seq, Timestamp: int32(now), Payload: pl})
		if err != nil {
			panic(fmt.Sprintf("chaos: encode data: %v", err))
		}
		p.transmit(p.scratch[:n])
		progress = true
	}
	// Drain received stream bytes into the running checksum.
	for p.rcv.Available() > 0 {
		n := p.rcv.Read(p.rbuf)
		if n == 0 {
			break
		}
		p.recvHash.write(p.rbuf[:n])
		p.recvBytes += n
		progress = true
	}
	return progress
}

// transmit seals the packet when the run is secure, then hands it to the
// out hook. The scratch slices passed in carry the extra capacity sealing
// needs; prefixing writers prepend their headers after sealing, the same
// layering as the real mux send path.
func (p *Peer) transmit(b []byte) {
	if p.sec != nil {
		if packet.IsControl(b) {
			b = p.sec.SealCtrl(b)
		} else {
			b = p.sec.SealData(b)
		}
	}
	p.out(b)
}

// Deliver is conn.Conn.handleDatagram without the locks: one arriving
// datagram through the real engine at virtual time now.
func (p *Peer) Deliver(now int64, raw []byte) {
	if p.sec != nil {
		var ok bool
		if packet.IsControl(raw) {
			raw, ok = p.sec.OpenCtrl(raw)
		} else {
			raw, ok = p.sec.OpenData(raw)
		}
		if !ok {
			return // forged, corrupt, or a control replay: dropped
		}
	}
	if !packet.IsControl(raw) {
		d, err := packet.DecodeData(raw)
		if err != nil {
			return
		}
		if p.rcv.Free() == 0 {
			return // flow-control overrun: treat as a wire loss
		}
		if p.eng.HandleData(now, d.Seq) {
			p.rcv.Store(d.Seq, d.Payload)
		}
		return
	}
	ctrl, err := packet.DecodeControl(raw)
	if err != nil {
		return
	}
	switch ctrl.Type {
	case packet.TypeACK:
		if a, err := packet.DecodeACK(ctrl); err == nil {
			if p.eng.HandleACK(now, a) > 0 {
				p.snd.Release(p.eng.SndLastAck())
				if p.trackAck {
					p.recordAcked(now)
				}
			}
		}
	case packet.TypeNAK:
		if nak, err := packet.DecodeNAK(ctrl); err == nil {
			p.eng.HandleNAK(now, nak.Losses)
		}
	case packet.TypeACK2:
		p.eng.HandleACK2(now, ctrl.Extra)
	case packet.TypeKeepAlive:
		p.eng.HandleKeepAlive(now)
	case packet.TypeShutdown:
		p.eng.HandleShutdown(now)
	}
}

// recordAcked folds every sequence newly covered by the cumulative ACK into
// the latency series: latency = ack arrival − first transmission.
func (p *Peer) recordAcked(now int64) {
	last := p.eng.SndLastAck()
	for seqno.Cmp(p.ackedTo, last) < 0 {
		if t, ok := p.sendTimes[p.ackedTo]; ok {
			p.ackLat = append(p.ackLat, now-t)
			delete(p.sendTimes, p.ackedTo)
		}
		p.ackedTo = seqno.Inc(p.ackedTo)
	}
}

// flushOutbox serializes and transmits every queued control emission.
func (p *Peer) flushOutbox(now int64) (sent bool) {
	for {
		o, ok := p.eng.PopOut()
		if !ok {
			return sent
		}
		var n int
		var err error
		switch o.Kind {
		case core.OutACK:
			n, err = packet.EncodeACK(p.scratch, &o.ACK, int32(now))
		case core.OutNAK:
			n, err = packet.EncodeNAK(p.scratch, o.Losses, int32(now))
		case core.OutACK2:
			n, err = packet.EncodeACK2(p.scratch, o.AckID, int32(now))
		case core.OutKeepAlive:
			n, err = packet.EncodeSimple(p.scratch, packet.TypeKeepAlive, int32(now))
		case core.OutShutdown:
			n, err = packet.EncodeSimple(p.scratch, packet.TypeShutdown, int32(now))
		}
		if err == nil && n > 0 {
			p.transmit(p.scratch[:n])
			sent = true
		}
	}
}

// Result snapshots the peer's outcome.
func (p *Peer) Result() PeerResult {
	r := PeerResult{
		SentBytes: p.sendOff,
		RecvBytes: p.recvBytes,
		RecvOK:    p.recvBytes == p.wantLen && uint64(p.recvHash) == p.wantHash,
		RecvHash:  uint64(p.recvHash),
		Broken:    p.eng.Broken(),
		BrokenAt:  p.brokenAt,
		Stats:     p.eng.Stats,
	}
	if p.sec != nil {
		r.AuthFails, r.ReplayDrops = p.sec.Drops()
	}
	return r
}
