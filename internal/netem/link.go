package netem

import (
	"math/rand"
)

// GEParams parameterize the Gilbert–Elliott two-state burst-loss model: the
// path flips between a good and a bad state with the given per-packet
// transition probabilities and drops packets with a state-dependent
// probability. Mean burst length is 1/PBadGood packets; stationary
// bad-state occupancy is PGoodBad/(PGoodBad+PBadGood).
type GEParams struct {
	// PGoodBad is the per-packet probability of entering the bad state.
	PGoodBad float64
	// PBadGood is the per-packet probability of leaving the bad state.
	PBadGood float64
	// LossGood is the drop probability while in the good state (often 0).
	LossGood float64
	// LossBad is the drop probability while in the bad state (often ≥ 0.5).
	LossBad float64
}

// LinkConfig describes the impairments of one path direction. The zero
// value is a perfect link: no loss, no delay, infinite bandwidth. All
// probabilities are per-packet in [0,1]; all times are microseconds.
type LinkConfig struct {
	// Delay is the fixed one-way propagation delay.
	Delay int64
	// Jitter adds a uniform extra delay in [0, Jitter] per packet. Because
	// deliveries are ordered by arrival time, jitter wider than the
	// inter-packet gap reorders packets naturally.
	Jitter int64
	// Loss is the i.i.d. per-packet drop probability (applied in addition
	// to GE when both are set).
	Loss float64
	// GE, when non-nil, enables Gilbert–Elliott burst loss.
	GE *GEParams
	// Dup is the probability a packet is delivered twice; the copy draws
	// its own jitter, so duplicates typically arrive out of order.
	Dup float64
	// Corrupt is the probability a delivered copy has 1–3 random bits
	// flipped. By default a corrupted copy is counted and then discarded at
	// the receiving edge, emulating the UDP checksum: real receivers never
	// see a corrupted datagram, they see a loss. Set CorruptDeliver to hand
	// the mangled bytes to the endpoint instead (decoder-robustness tests).
	Corrupt float64
	// CorruptDeliver delivers corrupted bytes instead of dropping them.
	CorruptDeliver bool
	// Reorder is the probability a packet is held back by ReorderExtra
	// microseconds, forcing out-of-order arrival beyond what jitter does.
	Reorder float64
	// ReorderExtra is the hold-back applied to reordered packets; when
	// zero, 2*Jitter+1000 µs is used.
	ReorderExtra int64
	// RateMbps caps the path bandwidth; packets serialize through a
	// bounded FIFO queue ahead of the propagation delay. Zero = infinite.
	RateMbps float64
	// QueuePkts bounds the serialization queue in packets (tail drop on
	// overflow). Zero means 64 when RateMbps is set.
	QueuePkts int
}

// pathKey names one direction between two endpoints.
type pathKey struct {
	from, to string
}

// path is the runtime state of one direction: its configuration, its seeded
// PRNG (all impairment draws come from here, in offer order), the
// Gilbert–Elliott state, the serialization queue, and counters.
type path struct {
	cfg     LinkConfig
	rng     *rand.Rand
	blocked bool // partition/blackhole: drop everything until healed

	geBad     bool
	busyUntil int64 // when the serialization "wire" frees up
	queued    int   // packets in the serialization queue

	stats PathStats
}

// PathStats counts what one path direction did to the packets offered to
// it. Drops are split by cause; Offered = Delivered + all drop counters −
// Duplicated (duplicates add deliveries without an extra offer).
type PathStats struct {
	// Offered is the number of datagrams written into this direction.
	Offered int64
	// Delivered is the number of datagram copies handed to the receiver.
	Delivered int64
	// Lost counts random and burst-model drops (LostBurst ⊆ Lost).
	Lost int64
	// LostBurst counts drops that happened in the Gilbert–Elliott bad state.
	LostBurst int64
	// DroppedQueue counts tail drops at the bandwidth-cap queue.
	DroppedQueue int64
	// DroppedPartition counts packets swallowed while the path was blocked.
	DroppedPartition int64
	// DroppedInboxFull counts deliveries discarded because the destination
	// endpoint's receive queue was full (the emulated socket buffer).
	DroppedInboxFull int64
	// Corrupted counts copies that had bits flipped; unless the path is
	// configured with CorruptDeliver these were discarded at the receiving
	// edge, emulating the UDP checksum.
	Corrupted int64
	// Duplicated counts packets delivered twice.
	Duplicated int64
	// Reordered counts packets held back by the explicit reorder knob.
	Reordered int64
	// BytesOffered and BytesDelivered total the datagram sizes.
	BytesOffered, BytesDelivered int64
}
