package netem

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"
)

// testPair returns a virtual-clock fabric with endpoints "a" and "b".
func testPair(t *testing.T, seed int64, cfg LinkConfig) (*Net, *VirtualClock, *Endpoint, *Endpoint) {
	t.Helper()
	vc := NewVirtualClock(0)
	nw := New(seed, vc)
	a, err := nw.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	nw.SetLink("a", "b", cfg)
	return nw, vc, a, b
}

// drain reads every queued datagram at b.
func drain(b *Endpoint) [][]byte {
	var out [][]byte
	buf := make([]byte, 65536)
	for {
		n, _, ok := b.TryReadFrom(buf)
		if !ok {
			return out
		}
		out = append(out, append([]byte(nil), buf[:n]...))
	}
}

func TestPerfectLinkFIFO(t *testing.T) {
	_, vc, a, b := testPair(t, 1, LinkConfig{Delay: 1000})
	for i := 0; i < 100; i++ {
		if _, err := a.WriteTo([]byte(fmt.Sprintf("pkt-%03d", i)), b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	vc.Advance(2000)
	got := drain(b)
	if len(got) != 100 {
		t.Fatalf("delivered %d, want 100", len(got))
	}
	for i, g := range got {
		if want := fmt.Sprintf("pkt-%03d", i); string(g) != want {
			t.Fatalf("packet %d = %q, want %q (FIFO violated on a jitter-free link)", i, g, want)
		}
	}
}

func TestSameSeedSameDecisions(t *testing.T) {
	deliver := func(seed int64) []int {
		_, vc, a, b := testPair(t, seed, LinkConfig{Loss: 0.3, Dup: 0.1})
		for i := 0; i < 500; i++ {
			a.WriteTo([]byte{byte(i), byte(i >> 8)}, b.LocalAddr()) //nolint:errcheck
		}
		vc.Advance(1)
		var idx []int
		for _, g := range drain(b) {
			idx = append(idx, int(g[0])|int(g[1])<<8)
		}
		return idx
	}
	one, two := deliver(42), deliver(42)
	if fmt.Sprint(one) != fmt.Sprint(two) {
		t.Fatal("same seed produced different loss/dup decisions")
	}
	other := deliver(43)
	if fmt.Sprint(one) == fmt.Sprint(other) {
		t.Fatal("different seeds produced identical decisions (seed unused?)")
	}
}

func TestJitterReordersButLosesNothing(t *testing.T) {
	nw, vc, a, b := testPair(t, 7, LinkConfig{Delay: 1000, Jitter: 5000})
	const pkts = 200
	for i := 0; i < pkts; i++ {
		a.WriteTo([]byte{byte(i)}, b.LocalAddr()) //nolint:errcheck
		vc.Advance(10)                            // tight inter-packet gap vs. wide jitter
	}
	vc.Advance(20000)
	got := drain(b)
	if len(got) != pkts {
		t.Fatalf("delivered %d, want %d", len(got), pkts)
	}
	inOrder := true
	seen := make([]bool, pkts)
	for i, g := range got {
		seen[g[0]] = true
		if int(g[0]) != i {
			inOrder = false
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("packet %d never delivered", i)
		}
	}
	if inOrder {
		t.Fatal("5 ms jitter over 10 µs gaps delivered perfectly in order")
	}
	if st := nw.PathStats("a", "b"); st.Offered != pkts || st.Delivered != pkts {
		t.Fatalf("stats: %+v", st)
	}
}

func TestGilbertElliottBurstLoss(t *testing.T) {
	nw, vc, a, b := testPair(t, 3, LinkConfig{
		GE: &GEParams{PGoodBad: 0.05, PBadGood: 0.3, LossGood: 0, LossBad: 0.9},
	})
	for i := 0; i < 2000; i++ {
		a.WriteTo([]byte{0}, b.LocalAddr()) //nolint:errcheck
	}
	vc.Advance(1)
	st := nw.PathStats("a", "b")
	if st.LostBurst == 0 {
		t.Fatal("no burst losses from the bad state")
	}
	if st.Lost != st.LostBurst {
		t.Fatalf("good-state losses with LossGood=0: %+v", st)
	}
	if st.Delivered+st.Lost != st.Offered {
		t.Fatalf("accounting: %+v", st)
	}
}

func TestCorruptionDetectedAndDropped(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5A}, 100)
	nw, vc, a, b := testPair(t, 11, LinkConfig{Corrupt: 0.3})
	for i := 0; i < 500; i++ {
		a.WriteTo(payload, b.LocalAddr()) //nolint:errcheck
	}
	vc.Advance(1)
	st := nw.PathStats("a", "b")
	if st.Corrupted == 0 {
		t.Fatal("nothing corrupted at 30%")
	}
	got := drain(b)
	if int64(len(got)) != st.Delivered || st.Delivered != st.Offered-st.Corrupted {
		t.Fatalf("delivered %d, stats %+v", len(got), st)
	}
	for _, g := range got {
		if !bytes.Equal(g, payload) {
			t.Fatal("a corrupted datagram leaked past the emulated UDP checksum")
		}
	}
}

func TestCorruptDeliverHandsOverMangledBytes(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5A}, 100)
	_, vc, a, b := testPair(t, 11, LinkConfig{Corrupt: 1, CorruptDeliver: true})
	a.WriteTo(payload, b.LocalAddr()) //nolint:errcheck
	vc.Advance(1)
	got := drain(b)
	if len(got) != 1 {
		t.Fatalf("delivered %d, want 1", len(got))
	}
	if bytes.Equal(got[0], payload) {
		t.Fatal("CorruptDeliver delivered pristine bytes")
	}
}

func TestRateCapQueueTailDrop(t *testing.T) {
	// 1 Mb/s, 100-byte packets → 800 µs serialization each; queue of 4.
	nw, vc, a, b := testPair(t, 5, LinkConfig{RateMbps: 1, QueuePkts: 4})
	for i := 0; i < 50; i++ {
		a.WriteTo(make([]byte, 100), b.LocalAddr()) //nolint:errcheck
	}
	vc.Advance(60000)
	st := nw.PathStats("a", "b")
	if st.DroppedQueue == 0 {
		t.Fatal("no tail drops from a 4-packet queue under a 50-packet burst")
	}
	if st.Delivered+st.DroppedQueue != st.Offered {
		t.Fatalf("accounting: %+v", st)
	}
	if st.Delivered < 4 {
		t.Fatalf("queue should have delivered at least its depth: %+v", st)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	nw, vc, a, b := testPair(t, 9, LinkConfig{})
	a.WriteTo([]byte("before"), b.LocalAddr()) //nolint:errcheck
	nw.Partition("a", "b")
	a.WriteTo([]byte("during"), b.LocalAddr()) //nolint:errcheck
	b.WriteTo([]byte("during"), a.LocalAddr()) //nolint:errcheck
	nw.Heal("a", "b")
	a.WriteTo([]byte("after"), b.LocalAddr()) //nolint:errcheck
	vc.Advance(1)
	got := drain(b)
	if len(got) != 2 || string(got[0]) != "before" || string(got[1]) != "after" {
		t.Fatalf("got %q", got)
	}
	if st := nw.PathStats("a", "b"); st.DroppedPartition != 1 {
		t.Fatalf("a→b partition drops = %d, want 1", st.DroppedPartition)
	}
	if st := nw.PathStats("b", "a"); st.DroppedPartition != 1 {
		t.Fatalf("b→a partition drops = %d, want 1", st.DroppedPartition)
	}
}

func TestReadDeadlineTimesOut(t *testing.T) {
	nw := New(1, nil) // real clock
	a, _ := nw.Endpoint("a")
	if err := a.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, _, err := a.ReadFrom(make([]byte, 16))
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("err = %v, want a net.Error timeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline ignored")
	}
}

func TestCloseUnblocksRead(t *testing.T) {
	nw := New(1, nil)
	a, _ := nw.Endpoint("a")
	done := make(chan error, 1)
	go func() {
		_, _, err := a.ReadFrom(make([]byte, 16))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err != net.ErrClosed {
			t.Fatalf("err = %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock ReadFrom")
	}
	if _, err := a.WriteTo([]byte("x"), a.LocalAddr()); err != net.ErrClosed {
		t.Fatalf("write on closed endpoint: %v", err)
	}
}

func TestWriteToUnknownEndpointFails(t *testing.T) {
	nw := New(1, NewVirtualClock(0))
	a, _ := nw.Endpoint("a")
	if _, err := a.WriteTo([]byte("x"), &Addr{name: "ghost"}); err == nil {
		t.Fatal("write to unknown endpoint succeeded")
	}
}

func TestVirtualClockOrderAndReentrancy(t *testing.T) {
	vc := NewVirtualClock(0)
	var order []int
	vc.AfterFunc(100, func() {
		order = append(order, 2)
		vc.AfterFunc(50, func() { order = append(order, 3) }) // lands at 150
	})
	vc.AfterFunc(10, func() { order = append(order, 1) })
	vc.AfterFunc(100, func() { order = append(order, 20) }) // same time as 2: insertion order
	vc.Advance(200)
	if fmt.Sprint(order) != "[1 2 20 3]" {
		t.Fatalf("event order %v", order)
	}
	if vc.Now() != 200 {
		t.Fatalf("now = %d", vc.Now())
	}
}

func TestQueueLenTracksRateCapOccupancy(t *testing.T) {
	// 1 Mb/s, 100-byte packets → 800 µs serialization each; queue of 8.
	nw, vc, a, b := testPair(t, 11, LinkConfig{RateMbps: 1, QueuePkts: 8})
	if got := nw.QueueLen("a", "b"); got != 0 {
		t.Fatalf("idle QueueLen = %d, want 0", got)
	}
	for i := 0; i < 6; i++ {
		a.WriteTo(make([]byte, 100), b.LocalAddr()) //nolint:errcheck
	}
	if got := nw.QueueLen("a", "b"); got != 6 {
		t.Fatalf("QueueLen after 6-packet burst = %d, want 6", got)
	}
	vc.Advance(800) // one serialization time: exactly one departure
	if got := nw.QueueLen("a", "b"); got != 5 {
		t.Fatalf("QueueLen after one departure = %d, want 5", got)
	}
	vc.Advance(60000)
	if got := nw.QueueLen("a", "b"); got != 0 {
		t.Fatalf("drained QueueLen = %d, want 0", got)
	}
	if got := nw.QueueLen("b", "a"); got != 0 {
		t.Fatalf("reverse-path QueueLen = %d, want 0", got)
	}
}

func TestEndpointBufCapacityIsHonored(t *testing.T) {
	vc := NewVirtualClock(0)
	nw := New(3, vc)
	a, err := nw.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.EndpointBuf("b", 2)
	if err != nil {
		t.Fatal(err)
	}
	nw.SetLink("a", "b", LinkConfig{})
	for i := 0; i < 5; i++ {
		a.WriteTo([]byte{byte(i)}, b.LocalAddr()) //nolint:errcheck
	}
	vc.Advance(1)
	if got := len(drain(b)); got != 2 {
		t.Fatalf("2-slot inbox delivered %d datagrams, want 2", got)
	}
	if st := nw.PathStats("a", "b"); st.DroppedInboxFull != 3 {
		t.Fatalf("DroppedInboxFull = %d, want 3", st.DroppedInboxFull)
	}
	if _, err := nw.EndpointBuf("b", 4); err == nil {
		t.Fatal("duplicate EndpointBuf name should fail")
	}
}
