package netem

import (
	"sync"
	"time"
)

// Clock is the time source of a fabric: a monotonic microsecond Now plus
// deferred execution, which the fabric uses to schedule packet deliveries
// and scenario events. RealClock runs on the runtime clock; VirtualClock
// runs on a deterministic event loop the test advances by hand, so a whole
// impairment scenario replays bit-identically from a seed.
type Clock interface {
	// Now returns the current time in microseconds (origin arbitrary but
	// fixed for the clock's lifetime).
	Now() int64
	// AfterFunc arranges for f to run once d microseconds from now. f runs
	// on an unspecified goroutine (RealClock) or synchronously inside an
	// Advance call (VirtualClock); it must not block.
	AfterFunc(d int64, f func())
}

// RealClock implements Clock on the runtime monotonic clock; deferred
// functions run on timer goroutines. It is the clock a live UDT stack runs
// over (udt.DialOn / udt.ListenOn endpoints).
type RealClock struct {
	base time.Time
}

// NewRealClock returns a wall clock whose origin is approximately now.
func NewRealClock() *RealClock { return &RealClock{base: time.Now()} }

// Now implements Clock.
func (c *RealClock) Now() int64 { return time.Since(c.base).Microseconds() }

// AfterFunc implements Clock via time.AfterFunc.
func (c *RealClock) AfterFunc(d int64, f func()) {
	if d < 0 {
		d = 0
	}
	time.AfterFunc(time.Duration(d)*time.Microsecond, f)
}

// vcEvent is one scheduled VirtualClock callback.
type vcEvent struct {
	at  int64
	seq int64 // insertion order, for a deterministic tie-break
	f   func()
}

// VirtualClock is a deterministic event-driven clock: AfterFunc queues
// events on a heap and Advance/AdvanceTo executes them in (time, insertion)
// order while moving Now forward. Nothing happens between Advance calls, so
// a single-threaded driver stepping the clock replays identically on every
// run. VirtualClock is safe for concurrent use, but determinism is only
// guaranteed when one goroutine drives Advance.
type VirtualClock struct {
	mu   sync.Mutex
	now  int64
	seq  int64
	heap []vcEvent
}

// NewVirtualClock returns a virtual clock starting at the given time (µs).
func NewVirtualClock(start int64) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now implements Clock.
func (c *VirtualClock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc implements Clock: f fires when the clock is advanced to or past
// now+d. Negative d behaves like zero.
func (c *VirtualClock) AfterFunc(d int64, f func()) {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	c.push(vcEvent{at: c.now + d, seq: c.seq, f: f})
	c.seq++
	c.mu.Unlock()
}

// NextEvent reports the deadline of the earliest queued event, if any.
func (c *VirtualClock) NextEvent() (int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.heap) == 0 {
		return 0, false
	}
	return c.heap[0].at, true
}

// AdvanceTo runs every event due at or before t in deterministic order and
// then sets the clock to t (the clock never moves backwards). Events may
// schedule further events; those are executed too if they fall within t.
func (c *VirtualClock) AdvanceTo(t int64) {
	for {
		c.mu.Lock()
		if len(c.heap) == 0 || c.heap[0].at > t {
			if t > c.now {
				c.now = t
			}
			c.mu.Unlock()
			return
		}
		ev := c.pop()
		if ev.at > c.now {
			c.now = ev.at
		}
		c.mu.Unlock()
		ev.f()
	}
}

// Advance moves the clock d microseconds forward, running due events.
func (c *VirtualClock) Advance(d int64) {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	t := c.now + d
	c.mu.Unlock()
	c.AdvanceTo(t)
}

// less orders events by (time, insertion sequence). Callers hold mu.
func (c *VirtualClock) less(i, j int) bool {
	if c.heap[i].at != c.heap[j].at {
		return c.heap[i].at < c.heap[j].at
	}
	return c.heap[i].seq < c.heap[j].seq
}

// push inserts an event into the heap. Callers hold mu.
func (c *VirtualClock) push(ev vcEvent) {
	c.heap = append(c.heap, ev)
	i := len(c.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !c.less(i, parent) {
			break
		}
		c.heap[i], c.heap[parent] = c.heap[parent], c.heap[i]
		i = parent
	}
}

// pop removes the earliest event. Callers hold mu.
func (c *VirtualClock) pop() vcEvent {
	ev := c.heap[0]
	last := len(c.heap) - 1
	c.heap[0] = c.heap[last]
	c.heap = c.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(c.heap) && c.less(l, min) {
			min = l
		}
		if r < len(c.heap) && c.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		c.heap[i], c.heap[min] = c.heap[min], c.heap[i]
		i = min
	}
	return ev
}
