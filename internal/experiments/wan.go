package experiments

import (
	"sort"
	"time"

	"udt/internal/losslist"
	"udt/internal/metrics"
	"udt/internal/netsim"
	"udt/internal/tcpsim"
	"udt/internal/udtsim"
	"udt/internal/workload"
)

// Fig1Result is the §2.1/§5.3 streaming-join experiment: streams from A
// (100 ms RTT) and B (1 ms RTT) joined at C behind a shared 1 Gb/s
// bottleneck. The join throughput is twice the slower stream.
type Fig1Result struct {
	TCPStreamMbps [2]float64 // [A (100 ms), B (1 ms)]
	UDTStreamMbps [2]float64
	TCPJoinMbps   float64
	UDTJoinMbps   float64
}

// Fig1StreamJoin runs the streaming-join motivation experiment with TCP
// (paper: join limited to ≈160-170 Mb/s of 1 Gb/s because the 100 ms TCP
// stream starves) and with UDT (§5.3: 600-800 Mb/s).
func Fig1StreamJoin(s Scale, seed int64) Fig1Result {
	rtts := []netsim.Time{100 * netsim.Millisecond, 1 * netsim.Millisecond}
	q := queueFor(s.Rate, rtts[0])
	var res Fig1Result

	join := func(means []float64) float64 {
		slow := means[0]
		if means[1] < slow {
			slow = means[1]
		}
		return 2 * slow
	}

	t := runMix(seed, s.Rate, q, nil, rtts, s.Dur)
	tm := t.meansAfterWarm(s.Warm)
	res.TCPStreamMbps = [2]float64{tm[0], tm[1]}
	res.TCPJoinMbps = join(tm)

	u := runMix(seed+1, s.Rate, q, rtts, nil, s.Dur)
	um := u.meansAfterWarm(s.Warm)
	res.UDTStreamMbps = [2]float64{um[0], um[1]}
	res.UDTJoinMbps = join(um)
	return res
}

// Fig8LossPattern reproduces Fig. 8: the sizes of the receiver's loss
// events while a bursting UDP flow congests the path (1 Gb/s — scaled —
// 100 ms RTT). Paper shape: loss is heavily bursty, with events up to
// thousands of packets.
func Fig8LossPattern(s Scale, seed int64) []int64 {
	rtt := 100 * netsim.Millisecond
	sim := netsim.New(seed)
	q := queueFor(s.Rate, rtt)
	d := netsim.NewDumbbell(sim, s.Rate, q, []netsim.Time{rtt})
	f := udtsim.NewFlow(sim, 0, udtConfig(s.Rate, rtt), d.SrcOut(0), d.SinkOut(0))
	d.Bind(0, f.Dst.Deliver, f.Src.Deliver)
	f.Dst.CollectLossEvents = true
	f.Start(-1)
	// Bursting cross traffic: full-rate CBR toggling 300 ms on / 700 ms off.
	cross := netsim.NewCBRSource(sim, d.InjectCross(1000), s.Rate, mss, 1000)
	var toggle func()
	on := false
	toggle = func() {
		if on {
			cross.Stop()
			on = false
			sim.After(700*netsim.Millisecond, toggle)
		} else {
			cross.Start()
			on = true
			sim.After(300*netsim.Millisecond, toggle)
		}
	}
	sim.After(2*netsim.Second, toggle)
	sim.Run(s.Dur)
	cross.Shutdown()
	return f.Dst.LossEventSizes
}

// Fig9Stats summarizes loss-list access times measured while replaying a
// loss trace (Fig. 9: most accesses finish within ≈1 µs, independent of
// the number of losses in the list).
type Fig9Stats struct {
	Ops      int
	MedianNs float64
	P99Ns    float64
	MaxNs    float64
}

// Fig9LossListAccess replays a Fig. 8-style loss-event trace through the
// receiver loss list, timing every insert, query and delete.
func Fig9LossListAccess(events []int64) Fig9Stats {
	if len(events) == 0 {
		events = []int64{1, 3000, 40, 1, 800, 2, 2, 1500, 90, 5}
	}
	r := losslist.NewReceiver(1 << 16)
	var samples []float64
	seq := int32(0)
	timed := func(f func()) {
		t0 := time.Now()
		f()
		samples = append(samples, float64(time.Since(t0).Nanoseconds()))
	}
	for _, n := range events {
		if n < 1 {
			n = 1
		}
		start, end := seq+10, seq+10+int32(n)-1
		timed(func() { r.Insert(start, end) })
		timed(func() { r.Find(start + int32(n)/2) })
		// Repair half the event (retransmissions arriving).
		for k := int32(0); k < int32(n); k += 2 {
			kk := start + k
			timed(func() { r.Remove(kk) })
		}
		seq = end
	}
	sort.Float64s(samples)
	st := Fig9Stats{Ops: len(samples)}
	st.MedianNs = samples[len(samples)/2]
	st.P99Ns = samples[len(samples)*99/100]
	st.MaxNs = samples[len(samples)-1]
	return st
}

// WanPath describes one of the paper's three testbed paths (§5).
type WanPath struct {
	Name     string
	RateBps  int64
	RTT      netsim.Time
	LossRate float64 // residual random loss of the real path (link errors)
	PaperUDT float64 // Mb/s reported in Fig. 11
	PaperTCP float64 // Mb/s reported in §5.1 (Chicago→Amsterdam only)
}

// WanPaths returns the testbed paths of §5: Chicago local (1 Gb/s,
// 0.04 ms), Chicago→Ottawa (OC-12 622 Mb/s, 16 ms), Chicago→Amsterdam
// (1 Gb/s, 110 ms). The long-haul paths carry a ~1e-6 residual random
// packet loss — the real-world impairment that caps TCP at ≈130 Mb/s on
// the Amsterdam path (the Mathis bound) while barely affecting UDT; a
// clean simulated path would let TCP eventually fill the pipe, which the
// real testbed never does.
func WanPaths() []WanPath {
	return []WanPath{
		{Name: "Chicago-local", RateBps: 1_000_000_000, RTT: 40 * netsim.Microsecond, PaperUDT: 940},
		{Name: "Chicago-Ottawa", RateBps: 622_000_000, RTT: 16 * netsim.Millisecond, LossRate: 1e-6, PaperUDT: 580},
		{Name: "Chicago-Amsterdam", RateBps: 1_000_000_000, RTT: 110 * netsim.Millisecond, LossRate: 1e-6, PaperUDT: 940, PaperTCP: 128},
	}
}

// WanPoint is one path's result for Fig. 11.
type WanPoint struct {
	Path    WanPath
	UDTMbps float64
	TCPMbps float64
	Series  []float64 // UDT 1 s samples
}

// PaperScaled returns the paper's UDT number adjusted to the experiment
// scale (quick runs shrink rates tenfold).
func (p WanPoint) PaperScaled(s Scale) float64 {
	if s.Rate < Full.Rate {
		return p.Path.PaperUDT / 10
	}
	return p.Path.PaperUDT
}

// Fig11SingleFlow reproduces Fig. 11: a single UDT flow on each testbed
// path (plus the TCP comparison the text gives for the 110 ms path). The
// three runs are independent, as in the paper.
func Fig11SingleFlow(s Scale, seed int64) []WanPoint {
	var out []WanPoint
	for _, p := range WanPaths() {
		rate := p.RateBps
		if s.Rate < Full.Rate { // quick scale: shrink tenfold
			rate = p.RateBps / 10
		}
		q := queueFor(rate, p.RTT)
		u := runMixLoss(seed, rate, q, []netsim.Time{p.RTT}, nil, s.Dur, 0, p.LossRate)
		t := runMixLoss(seed+1, rate, q, nil, []netsim.Time{p.RTT}, s.Dur, 0, p.LossRate)
		series := make([]float64, len(u.Meter.Samples))
		for i, row := range u.Meter.Samples {
			series[i] = row[0]
		}
		out = append(out, WanPoint{
			Path:    p,
			UDTMbps: metrics.Mean(u.meansAfterWarm(s.Warm)),
			TCPMbps: metrics.Mean(t.meansAfterWarm(s.Warm)),
			Series:  series,
		})
	}
	return out
}

// SharedLinkResult is Fig. 12: three flows from one site, to sinks at
// 0.04 ms, 16 ms and 110 ms, sharing the same 1 Gb/s egress link. The
// paper's UDT splits ≈325 Mb/s each; TCP splits 754/150/27.
type SharedLinkResult struct {
	UDTMbps []float64
	TCPMbps []float64
}

// Fig12SharedLink reproduces Fig. 12.
func Fig12SharedLink(s Scale, seed int64) SharedLinkResult {
	rtts := []netsim.Time{40 * netsim.Microsecond, 16 * netsim.Millisecond, 110 * netsim.Millisecond}
	q := queueFor(s.Rate, 110*netsim.Millisecond)
	// The two long-haul sinks sit behind paths with residual random loss,
	// as in Fig. 11.
	u := runMixLoss(seed, s.Rate, q, rtts, nil, s.Dur, 1, 1e-6)
	t := runMixLoss(seed+1, s.Rate, q, nil, rtts, s.Dur, 1, 1e-6)
	return SharedLinkResult{
		UDTMbps: u.meansAfterWarm(s.Warm),
		TCPMbps: t.meansAfterWarm(s.Warm),
	}
}

// Fig13Point is one x-axis point of Fig. 13: aggregate throughput of the
// small TCP transfers with n background UDT flows.
type Fig13Point struct {
	UDTFlows   int
	TCPAggMbps float64
}

// Fig13SmallTCP reproduces Fig. 13: many short TCP transfers (10 MB each,
// paper: 500 of them Chicago→Amsterdam) against 0→10 bulk UDT flows.
// Paper shape: aggregate TCP throughput declines gently, ≈690→480 Mb/s.
// The quick scale runs 50 transfers on the scaled link.
func Fig13SmallTCP(s Scale, seed int64) []Fig13Point {
	rtt := 110 * netsim.Millisecond
	nTCP := 500
	xferBytes := int64(10 * 1000 * 1000)
	if s.Rate < Full.Rate {
		nTCP = 50 // scaled workload
		xferBytes /= 10
	}
	pkts := xferBytes / int64(mss-40)
	var out []Fig13Point
	for _, nUDT := range []int{0, 1, 2, 4, 6, 8, 10} {
		sim := netsim.New(seed)
		q := queueFor(s.Rate, rtt)
		rtts := append(repeatRTT(nUDT, rtt), repeatRTT(nTCP, rtt)...)
		d := netsim.NewDumbbell(sim, s.Rate, q, rtts)
		meter := netsim.NewFlowMeter(sim, nUDT+nTCP, netsim.Second)
		for i := 0; i < nUDT; i++ {
			f := udtsim.NewFlow(sim, i, udtConfig(s.Rate, rtt), d.SrcOut(i), d.SinkOut(i))
			d.Bind(i, f.Dst.Deliver, f.Src.Deliver)
			f.Start(-1)
		}
		tcps := make([]*tcpsim.Flow, nTCP)
		remaining := nTCP
		var lastDone netsim.Time
		for j := 0; j < nTCP; j++ {
			id := nUDT + j
			f := tcpsim.NewFlow(sim, id, tcpsim.SACK, mss-40, float64(4*bdpPkts(s.Rate, rtt)), d.SrcOut(id), d.SinkOut(id))
			d.Bind(id, f.Dst.Deliver, f.Src.Deliver)
			f.SetMeter(meter)
			tcps[j] = f
			ff := f
			f.Src.OnDone = func() {
				remaining--
				if sim.Now() > lastDone {
					lastDone = sim.Now()
				}
			}
			// Stagger starts across the first second like a workload burst.
			sim.At(netsim.Time(j)*20*netsim.Millisecond, func() { ff.Start(pkts) })
		}
		sim.Run(s.Dur * 4)
		// Aggregate throughput: delivered TCP bytes over the span in which
		// TCP was actively delivering (a straggler's multi-second RTO tail
		// would otherwise dilute the figure).
		var delivered int64
		for _, f := range tcps {
			delivered += f.Dst.Delivered * int64(mss-40)
		}
		span := netsim.Time(0)
		for k, row := range meter.Samples {
			active := false
			for f := nUDT; f < nUDT+nTCP; f++ {
				if row[f] > 0 {
					active = true
					break
				}
			}
			if active {
				span = netsim.Time(k+1) * netsim.Second
			}
		}
		if remaining == 0 && lastDone > 0 && lastDone < span {
			span = lastDone
		}
		agg := 0.0
		if span > 0 {
			agg = float64(delivered*8) / float64(span) * float64(netsim.Second) / 1e6
		}
		out = append(out, Fig13Point{UDTFlows: nUDT, TCPAggMbps: agg})
	}
	return out
}

// Table2Cell is one cell of the disk-to-disk transfer matrix.
type Table2Cell struct {
	From, To  string
	Mbps      float64
	DiskLimit float64 // min(read at source, write at sink), Mb/s
}

// Table2DiskDisk reproduces Table 2: disk-to-disk UDT transfers between the
// three sites, each limited by the slower of source disk read, network, and
// sink disk write. Paper shape: throughput ≈ the disk IO bottleneck.
func Table2DiskDisk(s Scale, seed int64) []Table2Cell {
	sites := workload.Table2Sites()
	var out []Table2Cell
	for _, from := range sites {
		for _, to := range sites {
			// Network path: the paper routes Ottawa↔Amsterdam via Chicago;
			// capacity is the min of the two hops, RTT the sum.
			rate := int64(from.NetCapacityMbps * 1e6)
			if r := int64(to.NetCapacityMbps * 1e6); r < rate {
				rate = r
			}
			rttMs := from.NetRTTMs + to.NetRTTMs
			if from.Name == to.Name {
				rttMs = from.NetRTTMs
			}
			rtt := netsim.Time(rttMs * float64(netsim.Millisecond))
			if s.Rate < Full.Rate {
				rate /= 10
			}
			sim := netsim.New(seed)
			q := queueFor(rate, rtt)
			d := netsim.NewDumbbell(sim, rate, q, []netsim.Time{rtt})
			meter := netsim.NewFlowMeter(sim, 1, netsim.Second)
			f := udtsim.NewFlow(sim, 0, udtConfig(rate, rtt), d.SrcOut(0), d.SinkOut(0))
			d.Bind(0, f.Dst.Deliver, f.Src.Deliver)
			f.SetMeter(meter)
			read, write := from.ReadMbps*1e6, to.WriteMbps*1e6
			if s.Rate < Full.Rate {
				read /= 10
				write /= 10
			}
			f.PaceApp(int64(read))
			f.PaceDrain(int64(write), int32(queueFor(rate, rtt)))
			f.Start(0)
			sim.Run(s.Dur)
			lim := read
			if write < lim {
				lim = write
			}
			out = append(out, Table2Cell{
				From:      from.Name,
				To:        to.Name,
				Mbps:      metrics.Mean(metrics.ColumnMeans(meter.SeriesAfter(s.Warm))),
				DiskLimit: lim / 1e6,
			})
		}
	}
	return out
}
