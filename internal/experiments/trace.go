package experiments

import (
	"udt/internal/core"
	"udt/internal/metrics"
	"udt/internal/netsim"
	"udt/internal/trace"
)

// traceIntervalFor returns the telemetry sampling interval implied by an
// every-N-SYN cadence at the engine's default SYN.
func traceIntervalFor(every int) netsim.Time {
	return netsim.Time(every) * netsim.Time(core.DefaultSYN) * netsim.Microsecond
}

// TraceMatrix converts per-flow telemetry rings into the samples[k][flow]
// goodput matrix the metrics package consumes — the trace-exporter route to
// the same numbers netsim.FlowMeter produces. Each ring contributes its
// receiver-side goodput series (trace.GoodputSeries); rows are truncated to
// the shortest series and the first warm rows are dropped.
func TraceMatrix(rings []*trace.Ring, warm int) [][]float64 {
	series := make([][]float64, len(rings))
	minLen := -1
	for i, g := range rings {
		series[i] = trace.GoodputSeries(g.Snapshot())
		if minLen < 0 || len(series[i]) < minLen {
			minLen = len(series[i])
		}
	}
	if minLen <= warm {
		return nil
	}
	out := make([][]float64, 0, minLen-warm)
	for k := warm; k < minLen; k++ {
		row := make([]float64, len(rings))
		for i := range rings {
			row[i] = series[i][k]
		}
		out = append(out, row)
	}
	return out
}

// traceWarm converts the scale's warm-up (whole seconds) into telemetry
// samples at an every-N-SYN cadence.
func traceWarm(s Scale, every int) int {
	iv := traceIntervalFor(every)
	return int(netsim.Time(s.Warm) * netsim.Second / iv)
}

// Fig24Point is one RTT point of the trace-derived Fig. 2 + Fig. 4
// reproduction: fairness and stability indices recomputed from per-flow
// PerfRecord traces rather than from the simulator's FlowMeter, plus the
// raw rings so callers can export the underlying time series.
type Fig24Point struct {
	RTTms                      float64
	UDTJain, TCPJain           float64 // Fig. 2
	UDTStability, TCPStability float64 // Fig. 4
	// UDTTraces and TCPTraces are the per-flow rings of the two runs (10
	// flows each), ready for trace.WriteCSV.
	UDTTraces, TCPTraces []*trace.Ring
}

// Fig24Traced reruns the Fig. 2 / Fig. 4 scenarios (10 concurrent UDT flows
// vs 10 concurrent TCP flows per RTT, same seeds as Fig2Fairness and
// Fig4Stability) with per-flow telemetry attached, sampling every `every`
// SYN intervals, and computes both figures' indices from the traces. The
// protocol behaviour is identical to the untraced runs; only the
// measurement route differs — goodput integrated by each receiver's engine
// instead of by the simulator's meter.
func Fig24Traced(s Scale, seed int64, every int) []Fig24Point {
	warm := traceWarm(s, every)
	var out []Fig24Point
	for _, rtt := range figRTTs(s) {
		q := queueFor(s.Rate, rtt)
		u := runMixTraced(seed, s.Rate, q, repeatRTT(10, rtt), nil, s.Dur, -1, 0, every)
		t := runMixTraced(seed+1, s.Rate, q, nil, repeatRTT(10, rtt), s.Dur, -1, 0, every)
		um := TraceMatrix(u.Traces, warm)
		tm := TraceMatrix(t.Traces, warm)
		out = append(out, Fig24Point{
			RTTms:        float64(rtt) / float64(netsim.Millisecond),
			UDTJain:      metrics.JainIndex(metrics.ColumnMeans(um)),
			TCPJain:      metrics.JainIndex(metrics.ColumnMeans(tm)),
			UDTStability: metrics.StabilityIndex(um),
			TCPStability: metrics.StabilityIndex(tm),
			UDTTraces:    u.Traces,
			TCPTraces:    t.Traces,
		})
	}
	return out
}

// Fig5TracedPoint is one RTT point of the trace-derived Fig. 5
// reproduction, plus the raw rings of both runs.
type Fig5TracedPoint struct {
	RTTms       float64
	T           float64 // TCP-friendliness index from traces
	TCPWithMbps float64
	FairMbps    float64
	// WithTraces holds the mixed run's rings (flows 0–4 UDT, 5–14 TCP);
	// AloneTraces the TCP-only run's (15 TCP flows).
	WithTraces, AloneTraces []*trace.Ring
}

// Fig5Traced reruns the Fig. 5 friendliness scenarios (5 UDT + 10 TCP vs
// 15 TCP alone, same seeds as Fig5Friendliness) with per-flow telemetry and
// computes the friendliness index from the traces.
func Fig5Traced(s Scale, seed int64, every int) []Fig5TracedPoint {
	warm := traceWarm(s, every)
	var out []Fig5TracedPoint
	for _, rtt := range figRTTs(s) {
		q := queueFor(s.Rate, rtt)
		with := runMixTraced(seed, s.Rate, q, repeatRTT(5, rtt), repeatRTT(10, rtt), s.Dur, -1, 0, every)
		alone := runMixTraced(seed+1, s.Rate, q, nil, repeatRTT(15, rtt), s.Dur, -1, 0, every)
		wm := metrics.ColumnMeans(TraceMatrix(with.Traces[5:], warm)) // TCP flows only
		am := metrics.ColumnMeans(TraceMatrix(alone.Traces, warm))
		out = append(out, Fig5TracedPoint{
			RTTms:       float64(rtt) / float64(netsim.Millisecond),
			T:           metrics.FriendlinessIndex(wm, am),
			TCPWithMbps: metrics.Mean(wm),
			FairMbps:    metrics.Mean(am),
			WithTraces:  with.Traces,
			AloneTraces: alone.Traces,
		})
	}
	return out
}
