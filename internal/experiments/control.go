package experiments

import (
	"udt/internal/core"
	"udt/internal/metrics"
	"udt/internal/netsim"
	"udt/internal/tcpsim"
	"udt/internal/udtsim"
)

// Table1Row is one row of Table 1: the increase parameter chosen by
// formula (1) for an estimated available bandwidth.
type Table1Row struct {
	BandwidthMbps float64
	IncPackets    float64
}

// Table1 reproduces Table 1 (MSS = 1500): representative bandwidths from
// each decade and the resulting per-SYN increase.
func Table1() []Table1Row {
	bands := []float64{10_000, 5_000, 1_000, 500, 100, 50, 10, 5, 1, 0.5, 0.1, 0.05}
	out := make([]Table1Row, len(bands))
	for i, mb := range bands {
		out[i] = Table1Row{
			BandwidthMbps: mb,
			IncPackets:    core.Increase(mb*1e6, mss),
		}
	}
	return out
}

// IndexPoint is one RTT point of an index-vs-RTT figure.
type IndexPoint struct {
	RTTms float64
	UDT   float64
	TCP   float64
}

// figRTTs returns the RTT sweep for Figs. 2, 4 and 5.
func figRTTs(s Scale) []netsim.Time {
	if s.Dur >= Full.Dur {
		return []netsim.Time{
			1 * netsim.Millisecond, 3 * netsim.Millisecond, 10 * netsim.Millisecond,
			30 * netsim.Millisecond, 100 * netsim.Millisecond, 300 * netsim.Millisecond,
			1000 * netsim.Millisecond,
		}
	}
	return []netsim.Time{
		1 * netsim.Millisecond, 10 * netsim.Millisecond,
		100 * netsim.Millisecond, 300 * netsim.Millisecond,
	}
}

// Fig2Fairness reproduces Fig. 2: Jain's fairness index of 10 concurrent
// UDT flows vs 10 concurrent TCP flows as the common RTT sweeps 1→1000 ms.
// Paper shape: UDT ≈ 1 everywhere; TCP degrades as RTT grows.
func Fig2Fairness(s Scale, seed int64) []IndexPoint {
	var out []IndexPoint
	for _, rtt := range figRTTs(s) {
		q := queueFor(s.Rate, rtt)
		u := runMix(seed, s.Rate, q, repeatRTT(10, rtt), nil, s.Dur)
		t := runMix(seed+1, s.Rate, q, nil, repeatRTT(10, rtt), s.Dur)
		out = append(out, IndexPoint{
			RTTms: float64(rtt) / float64(netsim.Millisecond),
			UDT:   metrics.JainIndex(u.meansAfterWarm(s.Warm)),
			TCP:   metrics.JainIndex(t.meansAfterWarm(s.Warm)),
		})
	}
	return out
}

// Fig4Stability reproduces Fig. 4: the stability index (mean coefficient of
// variation of 1 s throughput samples) of the same 10-flow runs. Paper
// shape: UDT is more stable than TCP except around RTT 10–100 ms where the
// BDP-sized queue is optimal for TCP.
func Fig4Stability(s Scale, seed int64) []IndexPoint {
	var out []IndexPoint
	for _, rtt := range figRTTs(s) {
		q := queueFor(s.Rate, rtt)
		u := runMix(seed, s.Rate, q, repeatRTT(10, rtt), nil, s.Dur)
		t := runMix(seed+1, s.Rate, q, nil, repeatRTT(10, rtt), s.Dur)
		out = append(out, IndexPoint{
			RTTms: float64(rtt) / float64(netsim.Millisecond),
			UDT:   metrics.StabilityIndex(u.Meter.SeriesAfter(s.Warm)),
			TCP:   metrics.StabilityIndex(t.Meter.SeriesAfter(s.Warm)),
		})
	}
	return out
}

// ConcurrencyPoint is one point of Fig. 3: N parallel UDT flows at a given
// RTT; the figure plots the standard deviation of per-flow throughput and
// the aggregate utilization.
type ConcurrencyPoint struct {
	Flows      int
	RTTms      float64
	StdDevMbps float64
	UtilPct    float64
}

// Fig3Concurrency reproduces Fig. 3: per-flow throughput spread as the
// number of parallel UDT flows grows, for RTT ∈ {1, 10, 100} ms. Paper
// shape: oscillations (stddev) grow with concurrency; utilization stays
// high.
func Fig3Concurrency(s Scale, seed int64) []ConcurrencyPoint {
	counts := []int{2, 4, 8, 16, 32, 64, 100, 200, 400}
	var out []ConcurrencyPoint
	for _, rtt := range []netsim.Time{1 * netsim.Millisecond, 10 * netsim.Millisecond, 100 * netsim.Millisecond} {
		for _, n := range counts {
			if n > s.MaxFlows {
				continue
			}
			q := queueFor(s.Rate, rtt)
			r := runMix(seed, s.Rate, q, repeatRTT(n, rtt), nil, s.Dur)
			means := r.meansAfterWarm(s.Warm)
			var agg float64
			for _, m := range means {
				agg += m
			}
			out = append(out, ConcurrencyPoint{
				Flows:      n,
				RTTms:      float64(rtt) / float64(netsim.Millisecond),
				StdDevMbps: metrics.StdDev(means),
				UtilPct:    agg / (float64(s.Rate) / 1e6) * 100,
			})
		}
	}
	return out
}

// FriendlinessPoint is one RTT point of Fig. 5.
type FriendlinessPoint struct {
	RTTms       float64
	T           float64 // the paper's TCP-friendliness index
	TCPWithMbps float64 // mean TCP throughput against UDT
	FairMbps    float64 // fair share from the TCP-only run
}

// Fig5Friendliness reproduces Fig. 5: 5 UDT + 10 TCP flows vs 15 TCP flows
// alone; T = mean TCP throughput over its fair share. Paper shape: T is
// high (≈1) at sub-10 ms RTTs where TCP is aggressive, and declines with
// RTT while staying above ≈0.2 even at 100 ms.
func Fig5Friendliness(s Scale, seed int64) []FriendlinessPoint {
	var out []FriendlinessPoint
	for _, rtt := range figRTTs(s) {
		q := queueFor(s.Rate, rtt)
		with := runMix(seed, s.Rate, q, repeatRTT(5, rtt), repeatRTT(10, rtt), s.Dur)
		alone := runMix(seed+1, s.Rate, q, nil, repeatRTT(15, rtt), s.Dur)
		wm := with.meansAfterWarm(s.Warm)[5:] // TCP flows only
		am := alone.meansAfterWarm(s.Warm)
		out = append(out, FriendlinessPoint{
			RTTms:       float64(rtt) / float64(netsim.Millisecond),
			T:           metrics.FriendlinessIndex(wm, am),
			TCPWithMbps: metrics.Mean(wm),
			FairMbps:    metrics.Mean(am),
		})
	}
	return out
}

// RTTFairnessPoint is one point of Fig. 6: two concurrent UDT flows, one at
// 100 ms RTT and one at RTT2; Ratio is flow2's throughput over flow1's.
type RTTFairnessPoint struct {
	RTT2ms float64
	Ratio  float64
}

// Fig6RTTFairness reproduces Fig. 6: UDT's RTT independence. Paper shape:
// the ratio stays within ≈10% of 1 as RTT2 sweeps 1 ms → 1000 ms.
func Fig6RTTFairness(s Scale, seed int64) []RTTFairnessPoint {
	rtt1 := 100 * netsim.Millisecond
	var rtt2s []netsim.Time
	if s.Dur >= Full.Dur {
		rtt2s = []netsim.Time{1, 3, 10, 30, 100, 300, 1000}
	} else {
		rtt2s = []netsim.Time{1, 10, 100, 300}
	}
	var out []RTTFairnessPoint
	for _, ms := range rtt2s {
		rtt2 := ms * netsim.Millisecond
		q := queueFor(s.Rate, maxTime([]netsim.Time{rtt1, rtt2}))
		r := runMix(seed, s.Rate, q, []netsim.Time{rtt1, rtt2}, nil, s.Dur)
		means := r.meansAfterWarm(s.Warm)
		ratio := 0.0
		if means[0] > 0 {
			ratio = means[1] / means[0]
		}
		out = append(out, RTTFairnessPoint{RTT2ms: float64(ms), Ratio: ratio})
	}
	return out
}

// Fig7Result holds the flow-control ablation: 1 s throughput series with
// and without the dynamic window, plus loss totals.
type Fig7Result struct {
	WithFC, WithoutFC []float64 // Mb/s per second
	LossWithFC        int64
	LossWithoutFC     int64
}

// Fig7FlowControl reproduces Fig. 7 (NS-2, 1 Gb/s — scaled by s.Rate —
// 100 ms RTT, queue = BDP): UDT with flow control holds steady throughput;
// without it, rate overshoot floods the queue, causing deep loss and
// oscillation.
func Fig7FlowControl(s Scale, seed int64) Fig7Result {
	rtt := 100 * netsim.Millisecond
	run := func(noFC bool) ([]float64, int64) {
		sim := netsim.New(seed)
		q := bdpPkts(s.Rate, rtt)
		d := netsim.NewDumbbell(sim, s.Rate, q, []netsim.Time{rtt})
		meter := netsim.NewFlowMeter(sim, 1, netsim.Second)
		cfg := udtConfig(s.Rate, rtt)
		f := udtsim.NewFlow(sim, 0, cfg, d.SrcOut(0), d.SinkOut(0))
		d.Bind(0, f.Dst.Deliver, f.Src.Deliver)
		f.SetMeter(meter)
		if noFC {
			f.ForceWindow(cfg.MaxFlowWindow)
		}
		f.Start(-1)
		sim.Run(s.Dur)
		series := make([]float64, len(meter.Samples))
		for i, row := range meter.Samples {
			series[i] = row[0]
		}
		return series, f.Dst.Conn().Stats.LossDetected
	}
	withFC, lossWith := run(false)
	withoutFC, lossWithout := run(true)
	return Fig7Result{WithFC: withFC, WithoutFC: withoutFC, LossWithFC: lossWith, LossWithoutFC: lossWithout}
}

// SYNPoint is one point of the SYN-interval ablation (§3.7): the
// efficiency/friendliness trade-off as the rate-control interval changes.
type SYNPoint struct {
	SYNms        float64
	SoloMbps     float64 // single-flow utilization
	Friendliness float64 // T with 2 UDT + 4 TCP
}

// AblationSYN sweeps the SYN interval: smaller SYN → more efficiency, less
// TCP friendliness; larger SYN → the reverse (§3.7).
func AblationSYN(s Scale, seed int64) []SYNPoint {
	rtt := 100 * netsim.Millisecond
	var out []SYNPoint
	for _, synUs := range []int64{1_000, 10_000, 100_000} {
		q := queueFor(s.Rate, rtt)
		// Solo efficiency.
		sim := netsim.New(seed)
		d := netsim.NewDumbbell(sim, s.Rate, q, []netsim.Time{rtt})
		meter := netsim.NewFlowMeter(sim, 1, netsim.Second)
		cfg := udtConfig(s.Rate, rtt)
		cfg.SYN = synUs
		f := udtsim.NewFlow(sim, 0, cfg, d.SrcOut(0), d.SinkOut(0))
		d.Bind(0, f.Dst.Deliver, f.Src.Deliver)
		f.SetMeter(meter)
		f.Start(-1)
		sim.Run(s.Dur)
		solo := metrics.Mean(metrics.ColumnMeans(meter.SeriesAfter(s.Warm)))

		// Friendliness at this SYN.
		with := runMixSYN(seed+1, s.Rate, q, repeatRTT(2, rtt), repeatRTT(4, rtt), s.Dur, synUs)
		alone := runMix(seed+2, s.Rate, q, nil, repeatRTT(6, rtt), s.Dur)
		T := metrics.FriendlinessIndex(with.meansAfterWarm(s.Warm)[2:], alone.meansAfterWarm(s.Warm))
		out = append(out, SYNPoint{SYNms: float64(synUs) / 1000, SoloMbps: solo, Friendliness: T})
	}
	return out
}

// runMixSYN is runMix with a custom SYN for the UDT flows.
func runMixSYN(seed int64, rate int64, queue int, udtRTTs, tcpRTTs []netsim.Time, dur netsim.Time, synUs int64) mixResult {
	sim := netsim.New(seed)
	all := append(append([]netsim.Time{}, udtRTTs...), tcpRTTs...)
	d := netsim.NewDumbbell(sim, rate, queue, all)
	meter := netsim.NewFlowMeter(sim, len(all), netsim.Second)
	res := mixResult{Sim: sim, Meter: meter, Bottleneck: d.Bottleneck}
	for i, rtt := range udtRTTs {
		cfg := udtConfig(rate, rtt)
		cfg.SYN = synUs
		f := udtsim.NewFlow(sim, i, cfg, d.SrcOut(i), d.SinkOut(i))
		d.Bind(i, f.Dst.Deliver, f.Src.Deliver)
		f.SetMeter(meter)
		res.UDT = append(res.UDT, f)
		ff := f
		sim.At(netsim.Time(i)*10*netsim.Millisecond, func() { ff.Start(-1) })
	}
	for j, rtt := range tcpRTTs {
		id := len(udtRTTs) + j
		f := tcpsim.NewFlow(sim, id, tcpsim.SACK, mss-40, float64(4*bdpPkts(rate, rtt)+1024), d.SrcOut(id), d.SinkOut(id))
		d.Bind(id, f.Dst.Deliver, f.Src.Deliver)
		f.SetMeter(meter)
		res.TCP = append(res.TCP, f)
		ff := f
		sim.At(netsim.Time(id)*10*netsim.Millisecond, func() { ff.Start(-1) })
	}
	sim.Run(dur)
	return res
}

// MIMDResult compares UDT's AIMD against SABUL's MIMD (§2.3): two flows,
// one started late; fairness of the final split.
type MIMDResult struct {
	AIMDJain float64
	MIMDJain float64
}

// AblationMIMD shows why UDT abandoned SABUL's MIMD: with a late-starting
// second flow, MIMD converges slowly (or not at all) to a fair share, while
// UDT's bandwidth-estimated AIMD equalizes.
func AblationMIMD(s Scale, seed int64) MIMDResult {
	rtt := 50 * netsim.Millisecond
	run := func(mimd bool) float64 {
		sim := netsim.New(seed)
		q := queueFor(s.Rate, rtt)
		d := netsim.NewDumbbell(sim, s.Rate, q, repeatRTT(2, rtt))
		meter := netsim.NewFlowMeter(sim, 2, netsim.Second)
		for i := 0; i < 2; i++ {
			f := udtsim.NewFlow(sim, i, udtConfig(s.Rate, rtt), d.SrcOut(i), d.SinkOut(i))
			d.Bind(i, f.Dst.Deliver, f.Src.Deliver)
			f.SetMeter(meter)
			if mimd {
				f.Src.Conn().CC().SetMIMD(0.02)
			}
			ff := f
			start := netsim.Time(i) * (s.Dur / 4) // second flow starts late
			sim.At(start, func() { ff.Start(-1) })
		}
		sim.Run(s.Dur)
		// Fairness over the last quarter.
		rows := meter.SeriesAfter(len(meter.Samples) * 3 / 4)
		return metrics.JainIndex(metrics.ColumnMeans(rows))
	}
	return MIMDResult{AIMDJain: run(false), MIMDJain: run(true)}
}

// PacingResult compares queue pressure of rate-paced UDT against
// window-burst TCP at similar throughput (§3.2). Queue occupancy is the
// mean of 100 ms samples taken after warm-up, so the slow-start transient
// (which fills the queue for both protocols) does not mask the steady
// state.
type PacingResult struct {
	UDTMeanQueue float64
	TCPMeanQueue float64
	UDTMbps      float64
	TCPMbps      float64
	UDTDropPct   float64 // bottleneck drops per packet offered
	TCPDropPct   float64
}

// AblationPacing measures steady-state bottleneck queue occupancy under a
// single UDT flow vs a single TCP flow: rate-based pacing holds a shallow
// queue, while window control keeps the buffer standing-full between
// sawtooth cuts.
func AblationPacing(s Scale, seed int64) PacingResult {
	rtt := 50 * netsim.Millisecond
	q := queueFor(s.Rate, rtt)
	run := func(seed int64, udt bool) (float64, float64, float64) {
		sim := netsim.New(seed)
		var udtR, tcpR []netsim.Time
		if udt {
			udtR = []netsim.Time{rtt}
		} else {
			tcpR = []netsim.Time{rtt}
		}
		all := append(append([]netsim.Time{}, udtR...), tcpR...)
		d := netsim.NewDumbbell(sim, s.Rate, q, all)
		meter := netsim.NewFlowMeter(sim, 1, netsim.Second)
		if udt {
			f := udtsim.NewFlow(sim, 0, udtConfig(s.Rate, rtt), d.SrcOut(0), d.SinkOut(0))
			d.Bind(0, f.Dst.Deliver, f.Src.Deliver)
			f.SetMeter(meter)
			f.Start(-1)
		} else {
			f := tcpsim.NewFlow(sim, 0, tcpsim.SACK, mss-40, float64(4*bdpPkts(s.Rate, rtt)+1024), d.SrcOut(0), d.SinkOut(0))
			d.Bind(0, f.Dst.Deliver, f.Src.Deliver)
			f.SetMeter(meter)
			f.Start(-1)
		}
		var sum float64
		var n int
		warmup := netsim.Time(s.Warm) * netsim.Second
		var tick func()
		tick = func() {
			if sim.Now() >= warmup {
				sum += float64(d.Bottleneck.QueueLen())
				n++
			}
			sim.After(100*netsim.Millisecond, tick)
		}
		sim.After(100*netsim.Millisecond, tick)
		sim.Run(s.Dur)
		meanQ := 0.0
		if n > 0 {
			meanQ = sum / float64(n)
		}
		dropPct := 0.0
		if st := d.Bottleneck.Stats; st.Sent > 0 {
			dropPct = float64(st.Dropped) / float64(st.Sent) * 100
		}
		return meanQ, metrics.Mean(metrics.ColumnMeans(meter.SeriesAfter(s.Warm))), dropPct
	}
	uq, um, ud := run(seed, true)
	tq, tm, td := run(seed+1, false)
	return PacingResult{
		UDTMeanQueue: uq, TCPMeanQueue: tq,
		UDTMbps: um, TCPMbps: tm,
		UDTDropPct: ud, TCPDropPct: td,
	}
}

// HighSpeedPoint compares RTT bias of TCP variants vs UDT (§5.2): two
// flows of the same protocol with RTTs 20 ms and 200 ms; Ratio is
// long-RTT over short-RTT throughput (1 = unbiased).
type HighSpeedPoint struct {
	Protocol string
	Ratio    float64
}

// AblationHighSpeed reproduces the §5.2 discussion: Scalable and HighSpeed
// TCP inherit (or worsen) TCP's RTT bias, while UDT's constant-interval
// control is RTT-independent.
func AblationHighSpeed(s Scale, seed int64) []HighSpeedPoint {
	rtts := []netsim.Time{20 * netsim.Millisecond, 200 * netsim.Millisecond}
	q := queueFor(s.Rate, rtts[1])
	var out []HighSpeedPoint

	u := runMix(seed, s.Rate, q, rtts, nil, s.Dur)
	um := u.meansAfterWarm(s.Warm)
	out = append(out, HighSpeedPoint{Protocol: "udt", Ratio: safeRatio(um[1], um[0])})

	for _, v := range []tcpsim.Variant{tcpsim.SACK, tcpsim.ScalableTCP, tcpsim.HighSpeedTCP, tcpsim.BicTCP} {
		sim := netsim.New(seed + 1)
		d := netsim.NewDumbbell(sim, s.Rate, q, rtts)
		meter := netsim.NewFlowMeter(sim, 2, netsim.Second)
		for i, rtt := range rtts {
			f := tcpsim.NewFlow(sim, i, v, mss-40, float64(4*bdpPkts(s.Rate, rtt)+1024), d.SrcOut(i), d.SinkOut(i))
			d.Bind(i, f.Dst.Deliver, f.Src.Deliver)
			f.SetMeter(meter)
			f.Start(-1)
		}
		sim.Run(s.Dur)
		m := metrics.ColumnMeans(meter.SeriesAfter(s.Warm))
		out = append(out, HighSpeedPoint{Protocol: v.String(), Ratio: safeRatio(m[1], m[0])})
	}
	return out
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// MultiBottleneckResult is the paper's footnote-3 check: on a parking-lot
// topology, a UDT flow crossing two bottlenecks should reach at least half
// of its max-min fair share.
type MultiBottleneckResult struct {
	LongFlowMbps float64 // the two-hop flow
	MaxMinMbps   float64 // its max-min fair share (C/2 here)
	CrossAMbps   float64 // single-hop flow on link 1
	CrossBMbps   float64 // single-hop flow on link 2
}

// MultiBottleneck runs a two-link parking lot: flow L traverses link1 then
// link2; flow A shares only link1; flow B shares only link2. All links have
// the scale's capacity, so L's max-min fair share is half the link.
func MultiBottleneck(s Scale, seed int64) MultiBottleneckResult {
	sim := netsim.New(seed)
	rtt := 20 * netsim.Millisecond
	q := queueFor(s.Rate, rtt)
	meter := netsim.NewFlowMeter(sim, 3, netsim.Second)

	// link2 feeds the sinks of flows L (0) and B (2); link1 feeds link2
	// for flow L and the sink of flow A (1).
	var fL, fA, fB *udtsim.Flow
	link2 := netsim.NewLink(sim, s.Rate, rtt/4, q, func(p *netsim.Packet) {
		switch p.Flow {
		case 0:
			fL.Dst.Deliver(p)
		case 2:
			fB.Dst.Deliver(p)
		}
	})
	link1 := netsim.NewLink(sim, s.Rate, rtt/4, q, func(p *netsim.Packet) {
		switch p.Flow {
		case 0:
			link2.Send(p)
		case 1:
			fA.Dst.Deliver(p)
		}
	})
	// Access links at 2× capacity (host NICs), reverse paths uncongested
	// with anti-phase jitter, as in the dumbbell.
	access := func(flow int, first *netsim.Link) netsim.Deliver {
		l := netsim.NewLink(sim, 2*s.Rate, rtt/4, 1<<20, first.Send)
		return l.Send
	}
	reverse := func(to func(p *netsim.Packet)) netsim.Deliver {
		l := netsim.NewLink(sim, 0, rtt/2, 1<<20, to)
		l.JitterMax = 500 * netsim.Microsecond
		return l.Send
	}
	cfg := udtConfig(s.Rate, rtt)
	fL = udtsim.NewFlow(sim, 0, cfg, access(0, link1), reverse(func(p *netsim.Packet) { fL.Src.Deliver(p) }))
	fA = udtsim.NewFlow(sim, 1, cfg, access(1, link1), reverse(func(p *netsim.Packet) { fA.Src.Deliver(p) }))
	fB = udtsim.NewFlow(sim, 2, cfg, access(2, link2), reverse(func(p *netsim.Packet) { fB.Src.Deliver(p) }))
	for _, f := range []*udtsim.Flow{fL, fA, fB} {
		f.SetMeter(meter)
		f.Start(-1)
	}
	sim.Run(s.Dur)
	m := metrics.ColumnMeans(meter.SeriesAfter(s.Warm))
	return MultiBottleneckResult{
		LongFlowMbps: m[0],
		MaxMinMbps:   float64(s.Rate) / 2 / 1e6,
		CrossAMbps:   m[1],
		CrossBMbps:   m[2],
	}
}
