package experiments

import (
	"math"
	"testing"

	"udt/internal/netsim"
)

// tiny is an even smaller scale than Quick for unit tests.
var tiny = Scale{Rate: 50_000_000, Dur: 20 * netsim.Second, Warm: 8, MaxFlows: 8}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	want := map[float64]float64{
		10_000: 10,
		1_000:  1,
		500:    1,
		50:     0.1,
		5:      0.01,
		0.5:    0.001,
		0.05:   1.0 / 1500,
	}
	for _, r := range rows {
		if w, ok := want[r.BandwidthMbps]; ok {
			if math.Abs(r.IncPackets-w)/w > 1e-9 {
				t.Errorf("B=%v Mb/s: inc=%v, want %v", r.BandwidthMbps, r.IncPackets, w)
			}
		}
	}
}

func TestFig1ShapeTCPStarvesJoin(t *testing.T) {
	r := Fig1StreamJoin(tiny, 1)
	// TCP: the 100 ms stream must be far slower than the 1 ms stream.
	if r.TCPStreamMbps[0]*3 > r.TCPStreamMbps[1] {
		t.Fatalf("TCP streams %.1f/%.1f: expected strong RTT asymmetry", r.TCPStreamMbps[0], r.TCPStreamMbps[1])
	}
	// UDT join must beat TCP join by a wide margin (paper: ~4x).
	if r.UDTJoinMbps < 2*r.TCPJoinMbps {
		t.Fatalf("UDT join %.1f vs TCP join %.1f: expected ≥2×", r.UDTJoinMbps, r.TCPJoinMbps)
	}
	// UDT join should use a decent fraction of the link.
	if r.UDTJoinMbps < 0.4*float64(tiny.Rate)/1e6 {
		t.Fatalf("UDT join %.1f Mb/s too low for a %d Mb/s link", r.UDTJoinMbps, tiny.Rate/1_000_000)
	}
}

func TestFig2ShapeUDTFairer(t *testing.T) {
	pts := Fig2Fairness(tiny, 2)
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, p := range pts {
		// At the tiny CI scale a 20 s run gives a 300 ms-RTT ensemble only
		// ~60 RTTs to converge; accept a softer bound there. The full
		// 100 s paper scale (simbench -full) reaches ≈1 at every RTT.
		floor := 0.9
		if p.RTTms >= 300 {
			floor = 0.65
		}
		if p.UDT < floor {
			t.Errorf("RTT %.0f ms: UDT Jain %.3f < %.2f", p.RTTms, p.UDT, floor)
		}
		if p.UDT > 1.0001 || p.TCP > 1.0001 {
			t.Errorf("index out of range: %+v", p)
		}
	}
	// At the largest RTT, UDT must be at least as fair as TCP.
	last := pts[len(pts)-1]
	if last.UDT+0.02 < last.TCP {
		t.Errorf("at %v ms TCP (%.3f) fairer than UDT (%.3f)", last.RTTms, last.TCP, last.UDT)
	}
}

func TestFig3ShapeSpreadGrows(t *testing.T) {
	s := tiny
	s.MaxFlows = 16
	pts := Fig3Concurrency(s, 3)
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, p := range pts {
		if p.UtilPct < 50 {
			t.Errorf("flows=%d rtt=%.0f: utilization %.1f%% too low", p.Flows, p.RTTms, p.UtilPct)
		}
		if p.UtilPct > 105 {
			t.Errorf("utilization %.1f%% exceeds capacity", p.UtilPct)
		}
	}
}

func TestFig5ShapeFriendlinessDeclines(t *testing.T) {
	pts := Fig5Friendliness(tiny, 4)
	if len(pts) < 2 {
		t.Fatal("need at least two RTT points")
	}
	first, last := pts[0], pts[len(pts)-1]
	// Short RTT: TCP keeps most of its fair share (T high).
	if first.T < 0.5 {
		t.Errorf("at %.0f ms T=%.2f; TCP should hold its share on short RTTs", first.RTTms, first.T)
	}
	// Long RTT: UDT overruns what TCP cannot use, but TCP keeps > ~10%.
	if last.T > first.T+0.1 {
		t.Errorf("T grew with RTT: %.2f → %.2f", first.T, last.T)
	}
	if last.T < 0.05 {
		t.Errorf("TCP fully starved at %.0f ms: T=%.3f", last.RTTms, last.T)
	}
}

func TestFig6ShapeRTTIndependent(t *testing.T) {
	pts := Fig6RTTFairness(tiny, 5)
	for _, p := range pts {
		if p.Ratio < 0.5 || p.Ratio > 2.0 {
			t.Errorf("RTT2=%.0f ms: ratio %.2f outside [0.5, 2]", p.RTT2ms, p.Ratio)
		}
	}
}

func TestFig7ShapeFlowControlReducesLoss(t *testing.T) {
	r := Fig7FlowControl(tiny, 6)
	if r.LossWithoutFC <= r.LossWithFC {
		t.Fatalf("flow control must reduce loss: with=%d without=%d", r.LossWithFC, r.LossWithoutFC)
	}
	if len(r.WithFC) == 0 || len(r.WithoutFC) == 0 {
		t.Fatal("missing series")
	}
}

func TestFig8ShapeBurstyLoss(t *testing.T) {
	sizes := Fig8LossPattern(tiny, 7)
	if len(sizes) == 0 {
		t.Fatal("no loss events under bursting cross traffic")
	}
	var max int64
	for _, n := range sizes {
		if n > max {
			max = n
		}
	}
	if max < 2 {
		t.Fatalf("loss events not bursty: max event %d packets", max)
	}
}

func TestFig9ShapeFastAccess(t *testing.T) {
	st := Fig9LossListAccess(Fig8LossPattern(tiny, 8))
	if st.Ops == 0 {
		t.Fatal("no operations timed")
	}
	// Paper: ≈1 µs per access. Allow generous slack for CI noise, but the
	// median must stay well under 10 µs.
	if st.MedianNs > 10_000 {
		t.Fatalf("median access %.0f ns", st.MedianNs)
	}
}

func TestFig11ShapeHighUtilization(t *testing.T) {
	pts := Fig11SingleFlow(tiny, 9)
	if len(pts) != 3 {
		t.Fatalf("%d paths", len(pts))
	}
	for _, p := range pts {
		cap := float64(p.Path.RateBps) / 1e6 / 10 // tiny scale shrinks 10×
		if p.UDTMbps < 0.7*cap {
			t.Errorf("%s: UDT %.1f of %.1f Mb/s", p.Path.Name, p.UDTMbps, cap)
		}
	}
	// On the long-RTT path UDT must beat TCP clearly (paper: 940 vs ≈128).
	ams := pts[2]
	if ams.UDTMbps < 2*ams.TCPMbps {
		t.Errorf("Chicago-Amsterdam: UDT %.1f vs TCP %.1f, expected ≫", ams.UDTMbps, ams.TCPMbps)
	}
}

func TestFig12ShapeEvenSplitUDTOnly(t *testing.T) {
	r := Fig12SharedLink(tiny, 10)
	// UDT: all three flows within a reasonable band (paper: ≈325 each).
	lo, hi := r.UDTMbps[0], r.UDTMbps[0]
	for _, v := range r.UDTMbps {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo <= 0 || hi/lo > 3 {
		t.Errorf("UDT split %.1f/%.1f/%.1f too uneven", r.UDTMbps[0], r.UDTMbps[1], r.UDTMbps[2])
	}
	// TCP: strong RTT ordering (short RTT wins big).
	if !(r.TCPMbps[0] > r.TCPMbps[1] && r.TCPMbps[1] > r.TCPMbps[2]) {
		t.Errorf("TCP split %.1f/%.1f/%.1f lacks RTT ordering", r.TCPMbps[0], r.TCPMbps[1], r.TCPMbps[2])
	}
	// And the UDT laggard (long RTT) must beat the TCP laggard.
	if r.UDTMbps[2] < 2*r.TCPMbps[2] {
		t.Errorf("110 ms flow: UDT %.1f vs TCP %.1f", r.UDTMbps[2], r.TCPMbps[2])
	}
}

func TestTable2ShapeDiskBound(t *testing.T) {
	s := tiny
	cells := Table2DiskDisk(s, 11)
	if len(cells) != 9 {
		t.Fatalf("%d cells", len(cells))
	}
	for _, c := range cells {
		if c.Mbps <= 0 {
			t.Errorf("%s→%s: no throughput", c.From, c.To)
			continue
		}
		// Throughput must respect the disk bottleneck (DiskLimit is already
		// expressed at the test's scale).
		if c.Mbps > c.DiskLimit*1.05 {
			t.Errorf("%s→%s: %.1f exceeds disk limit %.1f", c.From, c.To, c.Mbps, c.DiskLimit)
		}
	}
}

func TestAblationMIMDConvergesWorse(t *testing.T) {
	r := AblationMIMD(tiny, 12)
	if r.AIMDJain < 0.8 {
		t.Errorf("AIMD late-joiner fairness %.3f < 0.8", r.AIMDJain)
	}
	if r.AIMDJain+0.02 < r.MIMDJain {
		t.Errorf("MIMD (%.3f) fairer than AIMD (%.3f): ablation inverted", r.MIMDJain, r.AIMDJain)
	}
}

func TestAblationPacingQueuePressure(t *testing.T) {
	r := AblationPacing(tiny, 13)
	if r.UDTMbps < 20 || r.TCPMbps < 20 {
		t.Fatalf("throughputs too low: udt %.1f tcp %.1f", r.UDTMbps, r.TCPMbps)
	}
	// Pacing's measurable win is loss pressure: the paced flow overflows
	// the queue far less often than the window-burst flow (§3.2).
	if r.UDTDropPct >= r.TCPDropPct {
		t.Errorf("paced UDT dropped more than bursty TCP: %.3f%% vs %.3f%%", r.UDTDropPct, r.TCPDropPct)
	}
}

func TestAblationHighSpeedRTTBias(t *testing.T) {
	pts := AblationHighSpeed(tiny, 14)
	byName := map[string]float64{}
	for _, p := range pts {
		byName[p.Protocol] = p.Ratio
	}
	if byName["udt"] < 0.4 {
		t.Errorf("UDT long/short ratio %.2f: too biased", byName["udt"])
	}
	if byName["udt"] <= byName["tcp-sack"] {
		t.Errorf("UDT (%.2f) should be less RTT-biased than TCP (%.2f)", byName["udt"], byName["tcp-sack"])
	}
}

func TestWanPathsSane(t *testing.T) {
	for _, p := range WanPaths() {
		if p.RateBps <= 0 || p.RTT <= 0 || p.PaperUDT <= 0 {
			t.Errorf("bad path %+v", p)
		}
	}
}

func TestMultiBottleneckMaxMinShare(t *testing.T) {
	// Paper footnote 3: on multi-bottleneck topologies a UDT flow reaches
	// at least half its max-min fair share.
	r := MultiBottleneck(tiny, 20)
	if r.LongFlowMbps < r.MaxMinMbps/2 {
		t.Fatalf("two-hop flow %.1f Mb/s < half of max-min share %.1f",
			r.LongFlowMbps, r.MaxMinMbps)
	}
	// The single-hop flows must use the remaining capacity on their links.
	cap := r.MaxMinMbps * 2
	if r.CrossAMbps+r.LongFlowMbps < 0.6*cap || r.CrossBMbps+r.LongFlowMbps < 0.6*cap {
		t.Fatalf("links underutilized: L=%.1f A=%.1f B=%.1f of %.1f",
			r.LongFlowMbps, r.CrossAMbps, r.CrossBMbps, cap)
	}
}

func TestAblationHighSpeedIncludesBic(t *testing.T) {
	pts := AblationHighSpeed(tiny, 21)
	found := false
	for _, p := range pts {
		if p.Protocol == "bic" {
			found = true
			if p.Ratio <= 0 {
				t.Fatalf("bic ratio %v", p.Ratio)
			}
		}
	}
	if !found {
		t.Fatal("bic missing from the §5.2 comparison")
	}
}
