package experiments

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"udt/internal/metrics"
	"udt/internal/netsim"
	"udt/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden trace files in testdata/")

// micro is the fixed-seed scenario behind the golden files: a shrunken
// Fig. 2/Fig. 4 pair (UDT-only and TCP-only runs over the same dumbbell)
// traced at a 1 s cadence (every 100 SYN).
const (
	microRate  = int64(20_000_000)
	microEvery = 100
)

func microTraced(seed int64) (udt, tcp mixResult) {
	rtt := 10 * netsim.Millisecond
	q := queueFor(microRate, rtt)
	dur := 8 * netsim.Second
	udt = runMixTraced(seed, microRate, q, repeatRTT(2, rtt), nil, dur, -1, 0, microEvery)
	tcp = runMixTraced(seed+1, microRate, q, nil, repeatRTT(2, rtt), dur, -1, 0, microEvery)
	return
}

// TestTracedRunDoesNotPerturb is the determinism guarantee the telemetry
// layer is built on: attaching per-flow sinks must not change protocol
// behaviour. A traced and an untraced run of the same seed must agree on
// every engine counter and every meter sample.
func TestTracedRunDoesNotPerturb(t *testing.T) {
	rtt := 10 * netsim.Millisecond
	q := queueFor(microRate, rtt)
	dur := 8 * netsim.Second
	plain := runMixLoss(1, microRate, q, repeatRTT(2, rtt), repeatRTT(2, rtt), dur, -1, 0)
	traced := runMixTraced(1, microRate, q, repeatRTT(2, rtt), repeatRTT(2, rtt), dur, -1, 0, microEvery)

	for i := range plain.UDT {
		ps, ts := plain.UDT[i].Dst.Conn().Stats, traced.UDT[i].Dst.Conn().Stats
		if ps != ts {
			t.Errorf("UDT flow %d receiver stats diverged:\nplain  %+v\ntraced %+v", i, ps, ts)
		}
		ps, ts = plain.UDT[i].Src.Conn().Stats, traced.UDT[i].Src.Conn().Stats
		if ps != ts {
			t.Errorf("UDT flow %d sender stats diverged:\nplain  %+v\ntraced %+v", i, ps, ts)
		}
	}
	for i := range plain.TCP {
		if plain.TCP[i].Src.Stats != traced.TCP[i].Src.Stats {
			t.Errorf("TCP flow %d sender stats diverged", i)
		}
		if plain.TCP[i].Dst.Delivered != traced.TCP[i].Dst.Delivered {
			t.Errorf("TCP flow %d delivered diverged", i)
		}
	}
	if !reflect.DeepEqual(plain.Meter.Samples, traced.Meter.Samples) {
		t.Error("meter samples diverged between plain and traced runs")
	}
}

// TestGoldenTraceCSV locks the per-flow trace CSVs of the fixed-seed micro
// scenario bit-for-bit. Regenerate deliberately with:
//
//	go test ./internal/experiments -run TestGoldenTraceCSV -args -update
func TestGoldenTraceCSV(t *testing.T) {
	u, tc := microTraced(1)
	for _, g := range []struct {
		name string
		ring *trace.Ring
	}{
		{"fig24_micro_udt_f0.csv", u.Traces[0]},
		{"fig24_micro_udt_f1.csv", u.Traces[1]},
		{"fig24_micro_tcp_f0.csv", tc.Traces[0]},
		{"fig24_micro_tcp_f1.csv", tc.Traces[1]},
	} {
		var buf bytes.Buffer
		if err := trace.WriteCSV(&buf, g.ring.Snapshot()); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", g.name)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file (regenerate with -args -update): %v", err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s: trace CSV is not bit-identical to the golden file", g.name)
		}
	}
}

// TestTraceIndicesMatchMeter checks the Fig. 2 / Fig. 4 acceptance route:
// the Jain and stability indices recomputed from per-flow trace CSVs must
// agree with the ones the simulator's FlowMeter produces. The two
// measurement paths integrate over slightly offset windows (the meter
// samples on exact second boundaries, the engines on their SYN ticks), so
// means match to a tolerance rather than exactly.
func TestTraceIndicesMatchMeter(t *testing.T) {
	const warm = 3
	u, tc := microTraced(1)
	for _, c := range []struct {
		name string
		r    mixResult
	}{{"udt", u}, {"tcp", tc}} {
		tm := TraceMatrix(c.r.Traces, warm)
		if len(tm) == 0 {
			t.Fatalf("%s: empty trace matrix", c.name)
		}
		traceJain := metrics.JainIndex(metrics.ColumnMeans(tm))
		meterJain := metrics.JainIndex(metrics.ColumnMeans(c.r.Meter.SeriesAfter(warm)))
		if math.Abs(traceJain-meterJain) > 0.05 {
			t.Errorf("%s Jain: trace %.4f vs meter %.4f", c.name, traceJain, meterJain)
		}
		traceStab := metrics.StabilityIndex(tm)
		meterStab := metrics.StabilityIndex(c.r.Meter.SeriesAfter(warm))
		if math.Abs(traceStab-meterStab) > 0.15 {
			t.Errorf("%s stability: trace %.4f vs meter %.4f", c.name, traceStab, meterStab)
		}
	}
}

// TestTraceCSVRoundTripIndices proves the full export pipeline is lossless
// where it matters: indices computed from a ring in memory and from its
// CSV after a write/read round trip must be exactly equal (the exporter
// uses shortest-round-trippable float formatting).
func TestTraceCSVRoundTripIndices(t *testing.T) {
	const warm = 3
	u, _ := microTraced(1)
	direct := TraceMatrix(u.Traces, warm)

	rings := make([]*trace.Ring, len(u.Traces))
	for i, g := range u.Traces {
		var buf bytes.Buffer
		if err := trace.WriteCSV(&buf, g.Snapshot()); err != nil {
			t.Fatal(err)
		}
		recs, err := trace.ReadCSV(&buf)
		if err != nil {
			t.Fatal(err)
		}
		r := trace.NewRing(len(recs))
		for j := range recs {
			r.Record(&recs[j])
		}
		rings[i] = r
	}
	viaCSV := TraceMatrix(rings, warm)
	if !reflect.DeepEqual(direct, viaCSV) {
		t.Fatal("goodput matrix changed across a CSV round trip")
	}
	if j1, j2 := metrics.JainIndex(metrics.ColumnMeans(direct)), metrics.JainIndex(metrics.ColumnMeans(viaCSV)); j1 != j2 {
		t.Fatalf("Jain index changed across CSV round trip: %v vs %v", j1, j2)
	}
}

// TestFig24TracedShape runs the full traced Fig. 2/Fig. 4 pipeline at test
// scale and sanity-checks the paper's shape: near-perfect UDT fairness and
// populated traces for every flow.
func TestFig24TracedShape(t *testing.T) {
	pts := Fig24Traced(tiny, 1, 50) // 0.5 s cadence
	if len(pts) != len(figRTTs(tiny)) {
		t.Fatalf("got %d points, want %d", len(pts), len(figRTTs(tiny)))
	}
	for _, p := range pts {
		if p.UDTJain < 0.9 {
			t.Errorf("RTT %.0f ms: UDT Jain %.3f < 0.9", p.RTTms, p.UDTJain)
		}
		if p.TCPJain <= 0 || p.TCPJain > 1 {
			t.Errorf("RTT %.0f ms: TCP Jain %.3f out of range", p.RTTms, p.TCPJain)
		}
		if p.UDTStability < 0 || p.TCPStability < 0 {
			t.Errorf("RTT %.0f ms: negative stability index", p.RTTms)
		}
		for i, g := range append(append([]*trace.Ring{}, p.UDTTraces...), p.TCPTraces...) {
			if g.Len() == 0 {
				t.Errorf("RTT %.0f ms: flow %d trace is empty", p.RTTms, i)
			}
		}
	}
}

// TestFig5TracedShape checks the trace-derived friendliness index is
// well-formed at test scale.
func TestFig5TracedShape(t *testing.T) {
	pts := Fig5Traced(tiny, 3, 50)
	if len(pts) != len(figRTTs(tiny)) {
		t.Fatalf("got %d points, want %d", len(pts), len(figRTTs(tiny)))
	}
	for _, p := range pts {
		if p.T <= 0 {
			t.Errorf("RTT %.0f ms: friendliness T=%.3f, want > 0", p.RTTms, p.T)
		}
		if len(p.WithTraces) != 15 || len(p.AloneTraces) != 15 {
			t.Errorf("RTT %.0f ms: trace counts %d/%d, want 15/15", p.RTTms, len(p.WithTraces), len(p.AloneTraces))
		}
	}
}
