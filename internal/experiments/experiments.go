// Package experiments implements every table and figure of the paper's
// evaluation as a deterministic, parameterized function. The simbench
// command prints them in paper-style rows; the repository's benchmarks run
// the same functions under testing.B. EXPERIMENTS.md records paper-vs-
// measured values.
//
// Scale selects magnitude: Full reproduces the paper's parameters (1 Gb/s
// bottlenecks, 100 s runs, up to 400 concurrent flows); Quick shrinks rate,
// duration and flow counts roughly tenfold so the whole suite runs in
// seconds on a laptop. The control laws are rate-free (constant SYN,
// bandwidth-decade increase), so the *shape* of every result — who wins,
// crossover locations, index values — is preserved; absolute Mb/s scale
// with the link.
package experiments

import (
	"udt/internal/core"
	"udt/internal/metrics"
	"udt/internal/netsim"
	"udt/internal/tcpsim"
	"udt/internal/trace"
	"udt/internal/udtsim"
)

// Scale selects simulation magnitude.
type Scale struct {
	Rate     int64       // bottleneck capacity, bits/s
	Dur      netsim.Time // measured duration per run
	Warm     int         // 1 s samples discarded as warm-up
	MaxFlows int         // cap for flow-count sweeps (Fig. 3)
}

// Quick is the CI/benchmark scale; Full is the paper's.
var (
	Quick = Scale{Rate: 100_000_000, Dur: 30 * netsim.Second, Warm: 10, MaxFlows: 48}
	Full  = Scale{Rate: 1_000_000_000, Dur: 100 * netsim.Second, Warm: 20, MaxFlows: 400}
)

// MSS used throughout the evaluation (path MTU, §6).
const mss = 1500

// bdpPkts returns the bandwidth-delay product in packets.
func bdpPkts(rate int64, rtt netsim.Time) int {
	return int(rate / 8 * int64(rtt) / int64(netsim.Second) / mss)
}

// queueFor implements the figure captions' "DropTail queue sized
// max(100, BDP)".
func queueFor(rate int64, rtt netsim.Time) int {
	q := bdpPkts(rate, rtt)
	if q < 100 {
		q = 100
	}
	return q
}

// udtConfig builds the simulated UDT configuration for a given path.
func udtConfig(rate int64, rtt netsim.Time) core.Config {
	w := 4 * bdpPkts(rate, rtt)
	if w < 1024 {
		w = 1024
	}
	minEXP := int64(0) // default 300 ms
	if rttUs := int64(rtt / netsim.Microsecond); rttUs > 150_000 {
		minEXP = 2*rttUs + core.DefaultSYN
	}
	return core.Config{MSS: mss, MaxFlowWindow: int32(w), MinEXP: minEXP}
}

// mix runs nUDT UDT flows and nTCP TCP flows (bulk, simultaneous starts
// staggered by 10 ms) over one dumbbell for dur, sampling goodput at 1 s.
type mixResult struct {
	Sim        *netsim.Sim
	Meter      *netsim.FlowMeter
	UDT        []*udtsim.Flow
	TCP        []*tcpsim.Flow
	Bottleneck *netsim.Link
	// Traces holds one telemetry ring per flow, indexed by flow id, when
	// the run was traced (runMixTraced); nil otherwise. UDT rings
	// interleave RoleSender and RoleReceiver records; TCP rings hold
	// RoleFlow records.
	Traces []*trace.Ring
}

// runMix builds and runs the standard experiment: flows i<len(udtRTTs) are
// UDT, the rest TCP, each with its own RTT, all sharing a DropTail
// bottleneck of the given rate and queue.
func runMix(seed int64, rate int64, queue int, udtRTTs, tcpRTTs []netsim.Time, dur netsim.Time) mixResult {
	return runMixLoss(seed, rate, queue, udtRTTs, tcpRTTs, dur, -1, 0)
}

// runMixLoss is runMix with uniform random forward-path loss applied to
// flows with index >= lossFrom (lossFrom < 0 disables).
func runMixLoss(seed int64, rate int64, queue int, udtRTTs, tcpRTTs []netsim.Time, dur netsim.Time, lossFrom int, lossRate float64) mixResult {
	return runMixTraced(seed, rate, queue, udtRTTs, tcpRTTs, dur, lossFrom, lossRate, 0)
}

// runMixTraced is the full-option mix runner: runMixLoss plus per-flow
// telemetry. With traceEvery > 0 every flow gets a trace.Ring sampled every
// traceEvery SYN intervals (UDT engines sample themselves; TCP flows get
// the interval-clocked tracer), returned in mixResult.Traces. Tracing
// consumes no randomness and adds no UDT events, so traced and untraced
// runs of the same seed produce identical protocol behaviour.
func runMixTraced(seed int64, rate int64, queue int, udtRTTs, tcpRTTs []netsim.Time, dur netsim.Time, lossFrom int, lossRate float64, traceEvery int) mixResult {
	sim := netsim.New(seed)
	all := append(append([]netsim.Time{}, udtRTTs...), tcpRTTs...)
	d := netsim.NewDumbbell(sim, rate, queue, all)
	meter := netsim.NewFlowMeter(sim, len(all), netsim.Second)
	res := mixResult{Sim: sim, Meter: meter, Bottleneck: d.Bottleneck}
	// One telemetry interval is traceEvery SYN periods (the engine default,
	// core.DefaultSYN µs — udtConfig leaves SYN at the default).
	var traceInterval netsim.Time
	if traceEvery > 0 {
		traceInterval = netsim.Time(traceEvery) * netsim.Time(core.DefaultSYN) * netsim.Microsecond
		res.Traces = make([]*trace.Ring, len(all))
		// UDT rings hold sender and receiver records per interval; size
		// both kinds for the whole run plus slack.
		n := int(dur/traceInterval) + 4
		for i := range res.Traces {
			if i < len(udtRTTs) {
				res.Traces[i] = trace.NewRing(2 * n)
			} else {
				res.Traces[i] = trace.NewRing(n)
			}
		}
	}
	lossy := func(idx int, to netsim.Deliver) netsim.Deliver {
		if lossFrom < 0 || idx < lossFrom || lossRate <= 0 {
			return to
		}
		return func(p *netsim.Packet) {
			if sim.Rand.Float64() < lossRate {
				return
			}
			to(p)
		}
	}
	for i, rtt := range udtRTTs {
		f := udtsim.NewFlow(sim, i, udtConfig(rate, rtt), d.SrcOut(i), d.SinkOut(i))
		d.Bind(i, lossy(i, f.Dst.Deliver), f.Src.Deliver)
		f.SetMeter(meter)
		if traceEvery > 0 {
			f.Trace(res.Traces[i], traceEvery)
		}
		res.UDT = append(res.UDT, f)
		stagger := netsim.Time(i) * 10 * netsim.Millisecond
		ff := f
		sim.At(stagger, func() { ff.Start(-1) })
	}
	for j, rtt := range tcpRTTs {
		id := len(udtRTTs) + j
		f := tcpsim.NewFlow(sim, id, tcpsim.SACK, mss-40, float64(4*bdpPkts(rate, rtt)+1024), d.SrcOut(id), d.SinkOut(id))
		d.Bind(id, lossy(id-len(udtRTTs), f.Dst.Deliver), f.Src.Deliver)
		f.SetMeter(meter)
		if traceEvery > 0 {
			f.Trace(res.Traces[id], traceInterval)
		}
		res.TCP = append(res.TCP, f)
		stagger := netsim.Time(id) * 10 * netsim.Millisecond
		ff := f
		sim.At(stagger, func() { ff.Start(-1) })
	}
	sim.Run(dur)
	return res
}

// meansAfterWarm returns per-flow mean goodput (Mb/s) skipping warm samples.
func (r mixResult) meansAfterWarm(warm int) []float64 {
	rows := r.Meter.SeriesAfter(warm)
	if rows == nil {
		rows = r.Meter.Samples
	}
	return metrics.ColumnMeans(rows)
}

// maxTime returns the larger RTT list entry.
func maxTime(ts []netsim.Time) netsim.Time {
	var m netsim.Time
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}

// repeatRTT builds n copies of one RTT.
func repeatRTT(n int, rtt netsim.Time) []netsim.Time {
	out := make([]netsim.Time, n)
	for i := range out {
		out[i] = rtt
	}
	return out
}
