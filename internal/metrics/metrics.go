// Package metrics implements the evaluation indices the paper plots:
// Jain's fairness index (Fig. 2), the stability index of FAST TCP's
// methodology (Fig. 4), the paper's TCP-friendliness index (Fig. 5), and
// the usual mean/stddev helpers behind Fig. 3.
package metrics

import "math"

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// JainIndex computes Jain's fairness index over per-flow throughputs:
//
//	J = (Σ x_i)² / (n · Σ x_i²)
//
// J = 1 is perfect fairness; 1/n is maximal unfairness (Fig. 2).
func JainIndex(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum, sq float64
	for _, v := range x {
		sum += v
		sq += v * v
	}
	if sq == 0 {
		return 1 // all-zero allocations are (vacuously) fair
	}
	return sum * sum / (float64(len(x)) * sq)
}

// StabilityIndex computes the paper's §3.6 index over per-flow throughput
// sample series (samples[k][i] = flow i's throughput in interval k):
//
//	S = (1/n) Σ_i (1/x̄_i) · sqrt( (1/(m-1)) Σ_k (x_i(k) − x̄_i)² )
//
// i.e. the mean across flows of each flow's coefficient of variation.
// Smaller is more stable; 0 is ideal (Fig. 4).
func StabilityIndex(samples [][]float64) float64 {
	if len(samples) < 2 || len(samples[0]) == 0 {
		return 0
	}
	n := len(samples[0])
	m := len(samples)
	total := 0.0
	counted := 0
	for i := 0; i < n; i++ {
		mean := 0.0
		for k := 0; k < m; k++ {
			mean += samples[k][i]
		}
		mean /= float64(m)
		if mean == 0 {
			continue
		}
		v := 0.0
		for k := 0; k < m; k++ {
			d := samples[k][i] - mean
			v += d * d
		}
		v /= float64(m - 1)
		total += math.Sqrt(v) / mean
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// FriendlinessIndex computes the paper's §3.7 TCP-friendliness index for an
// experiment with m UDT and n TCP flows. tcpWith holds the average
// throughput of each of the n TCP flows run against the m UDT flows;
// tcpAlone holds the averages of m+n TCP flows run alone under the same
// configuration (their mean is the fair share).
//
//	T = (1/n · Σ x_i) / (1/(m+n) · Σ y_i)
//
// T = 1 is ideal; T > 1 means the new protocol is overly friendly; T < 1
// means it overruns TCP.
func FriendlinessIndex(tcpWith, tcpAlone []float64) float64 {
	fair := Mean(tcpAlone)
	if fair == 0 {
		return 0
	}
	return Mean(tcpWith) / fair
}

// ColumnMeans returns the per-flow mean of a sample matrix
// (samples[k][i] → mean over k for each i).
func ColumnMeans(samples [][]float64) []float64 {
	if len(samples) == 0 {
		return nil
	}
	n := len(samples[0])
	out := make([]float64, n)
	for _, row := range samples {
		for i, v := range row {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(samples))
	}
	return out
}
