package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if !almostEq(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("Mean")
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("StdDev single")
	}
	if !almostEq(StdDev([]float64{2, 2, 2, 2}), 0) {
		t.Fatal("StdDev const")
	}
	got := StdDev([]float64{1, 3})
	if !almostEq(got, 1) {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{10, 10, 10}); !almostEq(got, 1) {
		t.Fatalf("equal allocation J = %v", got)
	}
	// One flow hogs everything: J = 1/n.
	if got := JainIndex([]float64{30, 0, 0}); !almostEq(got, 1.0/3) {
		t.Fatalf("hog J = %v", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Fatalf("empty J = %v", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Fatalf("all-zero J = %v", got)
	}
}

func TestPropJainBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		j := JainIndex(xs)
		return j >= 1/float64(len(xs))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStabilityIndex(t *testing.T) {
	// Constant throughput: perfectly stable.
	samples := [][]float64{{10, 20}, {10, 20}, {10, 20}, {10, 20}}
	if got := StabilityIndex(samples); !almostEq(got, 0) {
		t.Fatalf("constant series S = %v", got)
	}
	// Oscillating flow has higher index than a steady one.
	osc := [][]float64{{5}, {15}, {5}, {15}}
	steady := [][]float64{{9}, {11}, {9}, {11}}
	if StabilityIndex(osc) <= StabilityIndex(steady) {
		t.Fatal("oscillation must raise the index")
	}
	// Degenerate inputs.
	if StabilityIndex(nil) != 0 || StabilityIndex([][]float64{{1}}) != 0 {
		t.Fatal("degenerate inputs")
	}
	// All-zero flows are skipped, not NaN.
	if got := StabilityIndex([][]float64{{0}, {0}}); got != 0 || math.IsNaN(got) {
		t.Fatalf("zero flows S = %v", got)
	}
}

func TestStabilityIndexMatchesFormula(t *testing.T) {
	// Hand-computed: one flow with samples 8, 12 → mean 10,
	// var = ((8-10)²+(12-10)²)/(m-1) = 8, sd = 2.828…, S = sd/mean.
	got := StabilityIndex([][]float64{{8}, {12}})
	want := math.Sqrt(8) / 10
	if !almostEq(got, want) {
		t.Fatalf("S = %v, want %v", got, want)
	}
}

func TestFriendlinessIndex(t *testing.T) {
	// TCP flows get exactly their fair share → T = 1.
	with := []float64{10, 10}
	alone := []float64{10, 10, 10, 10}
	if got := FriendlinessIndex(with, alone); !almostEq(got, 1) {
		t.Fatalf("T = %v", got)
	}
	// TCP crushed to half its share → T = 0.5.
	if got := FriendlinessIndex([]float64{5, 5}, alone); !almostEq(got, 0.5) {
		t.Fatalf("T = %v", got)
	}
	if got := FriendlinessIndex(with, []float64{0, 0}); got != 0 {
		t.Fatalf("degenerate T = %v", got)
	}
}

func TestColumnMeans(t *testing.T) {
	got := ColumnMeans([][]float64{{1, 10}, {3, 30}})
	if len(got) != 2 || !almostEq(got[0], 2) || !almostEq(got[1], 20) {
		t.Fatalf("ColumnMeans = %v", got)
	}
	if ColumnMeans(nil) != nil {
		t.Fatal("empty input")
	}
}
