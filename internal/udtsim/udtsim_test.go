package udtsim

import (
	"testing"

	"udt/internal/core"
	"udt/internal/netsim"
)

// dumbbellFlows builds n UDT bulk flows over a shared bottleneck.
func dumbbellFlows(sim *netsim.Sim, rateBps int64, queuePkts int, rtts []netsim.Time, cfg core.Config) ([]*Flow, *netsim.FlowMeter) {
	d := netsim.NewDumbbell(sim, rateBps, queuePkts, rtts)
	meter := netsim.NewFlowMeter(sim, len(rtts), netsim.Second)
	flows := make([]*Flow, len(rtts))
	for i := range rtts {
		f := NewFlow(sim, i, cfg, d.SrcOut(i), d.SinkOut(i))
		d.Bind(i, f.Dst.Deliver, f.Src.Deliver)
		f.SetMeter(meter)
		flows[i] = f
	}
	return flows, meter
}

func TestSingleFlowUtilization(t *testing.T) {
	// 100 Mb/s bottleneck, 40 ms RTT, queue = BDP. A single UDT flow should
	// reach high utilization (the paper reports 900+ Mb/s on 1 Gb/s links).
	sim := netsim.New(1)
	rate := int64(100_000_000)
	bdp := int(rate / 8 / 1500 * 40 / 1000) // ≈333 packets
	flows, meter := dumbbellFlows(sim, rate, bdp, []netsim.Time{40 * netsim.Millisecond}, core.Config{MSS: 1500})
	flows[0].Start(-1)
	sim.Run(20 * netsim.Second)
	// Average over the last 10 seconds (skip slow start and climb).
	var sum float64
	rows := meter.SeriesAfter(10)
	for _, r := range rows {
		sum += r[0]
	}
	avg := sum / float64(len(rows))
	if avg < 80 {
		t.Fatalf("steady-state goodput %.1f Mb/s on a 100 Mb/s link", avg)
	}
	if avg > 101 {
		t.Fatalf("goodput %.1f exceeds capacity", avg)
	}
}

func TestSingleFlowHighRTT(t *testing.T) {
	// The constant SYN makes UDT's ramp independent of RTT: even at 200 ms
	// a flow must fill a 100 Mb/s pipe within ~10 s (TCP would need minutes).
	sim := netsim.New(2)
	rate := int64(100_000_000)
	bdp := int(rate / 8 / 1500 / 5) // BDP at 200 ms
	flows, meter := dumbbellFlows(sim, rate, bdp, []netsim.Time{200 * netsim.Millisecond}, core.Config{MSS: 1500})
	flows[0].Start(-1)
	sim.Run(20 * netsim.Second)
	rows := meter.SeriesAfter(12)
	var sum float64
	for _, r := range rows {
		sum += r[0]
	}
	avg := sum / float64(len(rows))
	if avg < 70 {
		t.Fatalf("steady-state goodput %.1f Mb/s at 200 ms RTT", avg)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	sim := netsim.New(3)
	rate := int64(100_000_000)
	rtts := []netsim.Time{40 * netsim.Millisecond, 40 * netsim.Millisecond}
	flows, meter := dumbbellFlows(sim, rate, 300, rtts, core.Config{MSS: 1500})
	flows[0].Start(-1)
	flows[1].Start(-1)
	sim.Run(60 * netsim.Second)
	rows := meter.SeriesAfter(30)
	var a, b float64
	for _, r := range rows {
		a += r[0]
		b += r[1]
	}
	a /= float64(len(rows))
	b /= float64(len(rows))
	if a+b < 75 {
		t.Fatalf("aggregate %.1f Mb/s too low", a+b)
	}
	ratio := a / b
	if ratio < 0.6 || ratio > 1.67 {
		t.Fatalf("unfair split: %.1f vs %.1f Mb/s", a, b)
	}
}

func TestRTTFairnessTwoFlows(t *testing.T) {
	// Paper §3.8/Fig. 6: flows with 40 ms and 200 ms RTT share near-equally
	// because the control interval is constant, not RTT-based.
	sim := netsim.New(4)
	rate := int64(100_000_000)
	rtts := []netsim.Time{40 * netsim.Millisecond, 200 * netsim.Millisecond}
	flows, meter := dumbbellFlows(sim, rate, 400, rtts, core.Config{MSS: 1500})
	flows[0].Start(-1)
	flows[1].Start(-1)
	sim.Run(60 * netsim.Second)
	rows := meter.SeriesAfter(30)
	var a, b float64
	for _, r := range rows {
		a += r[0]
		b += r[1]
	}
	a /= float64(len(rows))
	b /= float64(len(rows))
	ratio := b / a
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("RTT bias: 40ms flow %.1f vs 200ms flow %.1f Mb/s", a, b)
	}
}

func TestFiniteTransferCompletes(t *testing.T) {
	sim := netsim.New(5)
	flows, _ := dumbbellFlows(sim, 100_000_000, 200, []netsim.Time{20 * netsim.Millisecond}, core.Config{MSS: 1500})
	done := false
	flows[0].Src.OnDone = func() { done = true }
	flows[0].Start(5000)
	sim.Run(60 * netsim.Second)
	if !done || flows[0].Src.DoneAt == 0 {
		t.Fatal("finite transfer did not complete")
	}
	if flows[0].Dst.Delivered != 5000 {
		t.Fatalf("delivered %d packets, want 5000", flows[0].Dst.Delivered)
	}
	// 5000 × 1500 B at 100 Mb/s is 0.6 s minimum; slow start adds ramp time.
	if at := flows[0].Src.DoneAt; at < 600*netsim.Millisecond || at > 20*netsim.Second {
		t.Fatalf("completion at %v ns implausible", at)
	}
}

func TestLossRecoveryUnderCrossTraffic(t *testing.T) {
	// A UDT flow against a bursting CBR source (the Fig. 8 scenario): the
	// flow must survive heavy congestion and keep all data flowing.
	sim := netsim.New(6)
	rate := int64(100_000_000)
	d := netsim.NewDumbbell(sim, rate, 100, []netsim.Time{20 * netsim.Millisecond})
	meter := netsim.NewFlowMeter(sim, 1, netsim.Second)
	f := NewFlow(sim, 0, core.Config{MSS: 1500}, d.SrcOut(0), d.SinkOut(0))
	d.Bind(0, f.Dst.Deliver, f.Src.Deliver)
	f.SetMeter(meter)
	f.Start(-1)
	cross := netsim.NewCBRSource(sim, d.InjectCross(0), 90_000_000, 1500, 0)
	// Wait: cross traffic must not collide with flow 0's accounting; use a
	// sink-discarding flow id.
	_ = cross
	sim.Run(5 * netsim.Second)
	cross2 := netsim.NewCBRSource(sim, func(p *netsim.Packet) { p.Flow = 99; d.Bottleneck.Send(p) }, 90_000_000, 1500, 99)
	cross2.Start()
	sim.Run(10 * netsim.Second)
	cross2.Shutdown()
	sim.Run(20 * netsim.Second)
	if f.Src.Conn().Stats.PktsRetrans == 0 {
		t.Fatal("cross traffic congestion must force retransmissions")
	}
	if f.Dst.Conn().Stats.LossEvents == 0 {
		t.Fatal("receiver must record loss events")
	}
	// After the burst ends the flow must recover to high utilization.
	rows := meter.SeriesAfter(25)
	var sum float64
	for _, r := range rows {
		sum += r[0]
	}
	if avg := sum / float64(len(rows)); avg < 60 {
		t.Fatalf("post-congestion recovery only %.1f Mb/s", avg)
	}
}

func TestStopClosesBothEnds(t *testing.T) {
	sim := netsim.New(7)
	flows, _ := dumbbellFlows(sim, 100_000_000, 100, []netsim.Time{10 * netsim.Millisecond}, core.Config{MSS: 1500})
	flows[0].Start(-1)
	sim.Run(2 * netsim.Second)
	flows[0].Stop()
	sim.Run(3 * netsim.Second)
	if !flows[0].Src.Conn().Closed() {
		t.Fatal("source not closed")
	}
	if !flows[0].Dst.Conn().Closed() {
		t.Fatal("sink did not observe shutdown")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		sim := netsim.New(99)
		flows, _ := dumbbellFlows(sim, 50_000_000, 100,
			[]netsim.Time{30 * netsim.Millisecond, 90 * netsim.Millisecond}, core.Config{MSS: 1500})
		flows[0].Start(-1)
		flows[1].Start(-1)
		sim.Run(5 * netsim.Second)
		return flows[0].Dst.Delivered, flows[1].Dst.Delivered
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
	}
	if a1 == 0 || b1 == 0 {
		t.Fatal("flows idle")
	}
}
