// Package udtsim runs the real UDT protocol engine (internal/core) inside
// the discrete-event simulator (internal/netsim). It is the NS-2 UDT model
// of the paper's evaluation: every control decision — rate, window, NAK,
// freeze, packet-pair probing — is made by exactly the code the real UDP
// transport uses; only the clock and the wire are simulated.
package udtsim

import (
	"udt/internal/core"
	"udt/internal/netsim"
	"udt/internal/packet"
	"udt/internal/trace"
)

// Packet kinds used in netsim.Packet.Kind. Data packets ride entirely in
// the typed scratch words (sequence in Seq), so the per-packet send path
// allocates nothing; control packets box a core.Out in Payload — they are
// SYN-periodic, a thousand times rarer than data at gigabit rates. The
// values are disjoint from tcpsim's so mixed-protocol topologies cannot
// misread a stray packet.
const (
	kindData int32 = 0x5D01 // UDT data; Seq = packet sequence number
	kindCtrl int32 = 0x5D02 // UDT control; Payload = core.Out
)

// ipOverhead approximates IP+UDP header bytes added to every datagram; the
// simulator charges it so link utilization matches what a GigE path would
// carry (the paper's 940 Mb/s ceiling on a 1 Gb/s link).
const ipOverhead = 28

// Endpoint is one end of a simulated UDT connection.
type Endpoint struct {
	sim  *netsim.Sim
	conn *core.Conn
	out  netsim.Deliver
	flow int
	mss  int

	// Source-side application model: remaining packets to send (-1 = bulk,
	// endless).
	remaining int64
	active    bool

	// Sink-side accounting.
	meter     *netsim.FlowMeter
	Delivered int64 // fresh data packets received
	DoneAt    netsim.Time
	OnDone    func()
	// OnData, when set on a sink, observes every fresh data payload size —
	// the hook applications (e.g. the streaming join) consume from.
	OnData func(bytes int)

	// Sink-side drain model (disk write, Table 2): occupancy grows with
	// fresh data and drains at drainRate; the advertised receiver buffer
	// shrinks accordingly.
	drainBufPkts int32
	drainOccupy  int32
	drainChunk   int32
	drainEvery   netsim.Time

	// CollectLossEvents, when set on a sink, records the size of every loss
	// event (packets per detection gap) — the Fig. 8 trace.
	CollectLossEvents bool
	LossEventSizes    []int64

	nextWake netsim.Time
}

// Flow is a unidirectional UDT transfer: a source endpoint and a sink
// endpoint built from one configuration.
type Flow struct {
	ID       int
	Src, Dst *Endpoint
}

// NewFlow creates a UDT flow with identifier id. srcOut is where the source
// injects packets towards the sink; dstOut is where the sink injects
// control packets back. Bind the returned endpoints' Deliver methods into
// the topology, then call Start.
func NewFlow(sim *netsim.Sim, id int, cfg core.Config, srcOut, dstOut netsim.Deliver) *Flow {
	cfg.ISN = int32(1000 + id*1_000_000)
	peerISN := cfg.ISN + 500_000
	mkEnd := func(conn *core.Conn, out netsim.Deliver) *Endpoint {
		return &Endpoint{sim: sim, conn: conn, out: out, flow: id, mss: conn.Config().MSS}
	}
	srcCfg, dstCfg := cfg, cfg
	dstCfg.ISN, dstCfg.MSS = peerISN, cfg.MSS
	src := mkEnd(core.NewConn(srcCfg, peerISN), srcOut)
	dst := mkEnd(core.NewConn(dstCfg, cfg.ISN), dstOut)
	return &Flow{ID: id, Src: src, Dst: dst}
}

// Start establishes the flow at the current simulated time and begins
// sending: n packets if n >= 0, an endless bulk source if n < 0.
func (f *Flow) Start(n int64) {
	us := f.Src.sim.Now() / netsim.Microsecond
	f.Src.conn.Start(us)
	f.Dst.conn.Start(us)
	f.Src.remaining = n
	f.Src.active = true
	f.Src.kick()
	f.Dst.kick()
}

// Stop closes the flow from the source side.
func (f *Flow) Stop() {
	f.Src.conn.Close()
	f.Src.kick()
}

// SetMeter routes sink-side goodput accounting to m.
func (f *Flow) SetMeter(m *netsim.FlowMeter) { f.Dst.meter = m }

// Trace attaches a telemetry sink to both of the flow's protocol engines:
// the source samples as RoleSender (rate-control state), the sink as
// RoleReceiver (goodput), each every everySYN SYN intervals, stamped with
// the flow's ID. Sampling adds no simulator events and consumes no
// randomness, so a traced run's protocol behaviour is bit-identical to an
// untraced one. Call before Start.
func (f *Flow) Trace(sink trace.Sink, everySYN int) {
	f.Src.conn.SetPerfSink(sink, everySYN, int32(f.ID), "udt", trace.RoleSender)
	f.Dst.conn.SetPerfSink(sink, everySYN, int32(f.ID), "udt", trace.RoleReceiver)
}

// ForceWindow pins the source's flow window (Fig. 7 ablation).
func (f *Flow) ForceWindow(w int32) { f.Src.conn.ForceWindow(w) }

// PaceApp models a rate-limited application source — a disk read feeding
// the transport at rateBps (Table 2). Call before Start; Start must then be
// invoked with n = 0 so only paced data is sent.
func (f *Flow) PaceApp(rateBps int64) {
	e := f.Src
	// Release data in ~1 ms chunks for smooth pacing.
	pktsPerSec := float64(rateBps) / 8 / float64(e.mss)
	chunk := int64(pktsPerSec / 1000)
	every := netsim.Time(float64(netsim.Second) / pktsPerSec)
	if chunk < 1 {
		chunk = 1
	} else {
		every = netsim.Millisecond
	}
	var feed func()
	feed = func() {
		if e.conn.Closed() {
			return
		}
		if e.remaining >= 0 {
			e.remaining += chunk
		}
		e.kick()
		e.sim.After(every, feed)
	}
	e.sim.After(every, feed)
}

// PaceDrain models a rate-limited application sink — a disk write draining
// the receiver buffer of bufPkts packets at rateBps (Table 2). Data that
// arrives while the buffer is full is held off by UDT's flow control, not
// dropped. Call before Start.
func (f *Flow) PaceDrain(rateBps int64, bufPkts int32) {
	e := f.Dst
	e.drainBufPkts = bufPkts
	pktsPerSec := float64(rateBps) / 8 / float64(e.mss)
	e.drainChunk = int32(pktsPerSec / 1000)
	e.drainEvery = netsim.Millisecond
	if e.drainChunk < 1 {
		e.drainChunk = 1
		e.drainEvery = netsim.Time(float64(netsim.Second) / pktsPerSec)
	}
	e.conn.AvailBuf = func() int32 {
		free := e.drainBufPkts - e.drainOccupy
		if free < 0 {
			free = 0
		}
		return free
	}
	var drain func()
	drain = func() {
		if e.conn.Closed() {
			return
		}
		e.drainOccupy -= e.drainChunk
		if e.drainOccupy < 0 {
			e.drainOccupy = 0
		}
		e.sim.After(e.drainEvery, drain)
	}
	e.sim.After(e.drainEvery, drain)
}

// AvgMbpsDelivered returns the sink's lifetime goodput in Mb/s.
func (f *Flow) AvgMbpsDelivered() float64 {
	now := f.Dst.sim.Now()
	if now == 0 {
		return 0
	}
	return float64(f.Dst.Delivered*int64(f.Dst.mss)*8) / float64(now) * float64(netsim.Second) / 1e6
}

// Conn exposes an endpoint's protocol engine for inspection.
func (e *Endpoint) Conn() *core.Conn { return e.conn }

// Deliver is the endpoint's network-facing receive entry point. Consumed
// packets return to the simulation's free list.
func (e *Endpoint) Deliver(p *netsim.Packet) {
	us := e.sim.Now() / netsim.Microsecond
	switch p.Kind {
	case kindData:
		seq := int32(p.Seq)
		var evBefore, lostBefore int64
		if e.CollectLossEvents {
			evBefore, lostBefore = e.conn.Stats.LossEvents, e.conn.Stats.LossDetected
		}
		if e.conn.HandleData(us, seq) {
			e.Delivered++
			if e.meter != nil {
				e.meter.Account(e.flow, e.mss)
			}
			if e.OnData != nil {
				e.OnData(e.mss)
			}
			if e.drainBufPkts > 0 {
				e.drainOccupy++
			}
		}
		if e.CollectLossEvents && e.conn.Stats.LossEvents > evBefore {
			e.LossEventSizes = append(e.LossEventSizes, e.conn.Stats.LossDetected-lostBefore)
		}
	case kindCtrl:
		out := p.Payload.(core.Out)
		switch out.Kind {
		case core.OutACK:
			e.conn.HandleACK(us, out.ACK)
		case core.OutNAK:
			e.conn.HandleNAK(us, out.Losses)
		case core.OutACK2:
			e.conn.HandleACK2(us, out.AckID)
		case core.OutKeepAlive:
			e.conn.HandleKeepAlive(us)
		case core.OutShutdown:
			e.conn.HandleShutdown(us)
		}
	default:
		// Foreign packet (cross traffic, another protocol): not ours to free.
		e.kick()
		return
	}
	e.sim.FreePacket(p)
	e.kick()
}

// ctrlSize approximates the on-wire size of a control emission.
func ctrlSize(o core.Out) int {
	switch o.Kind {
	case core.OutACK:
		return ipOverhead + packet.CtrlHeaderSize + packet.FullACKBody
	case core.OutNAK:
		return ipOverhead + packet.NAKSize(o.Losses)
	default:
		return ipOverhead + packet.CtrlHeaderSize
	}
}

// kick advances timers, drains control output, pushes the data path as far
// as the engine permits, and schedules the next wakeup.
func (e *Endpoint) kick() {
	us := e.sim.Now() / netsim.Microsecond
	e.conn.Advance(us)
	for {
		o, ok := e.conn.PopOut()
		if !ok {
			break
		}
		p := e.sim.AllocPacket(ctrlSize(o), e.flow)
		p.Kind = kindCtrl
		p.Payload = o
		e.out(p)
	}
	e.trySend(us)
	e.scheduleTimer()
}

// sendData emits one data packet, allocation-free: the sequence rides in
// the packet's typed Seq word.
func (e *Endpoint) sendData(seq int32) {
	p := e.sim.AllocPacket(e.mss+ipOverhead, e.flow)
	p.Kind = kindData
	p.Seq = int64(seq)
	e.out(p)
}

func (e *Endpoint) trySend(us int64) {
	if !e.active {
		return
	}
	for {
		avail := e.remaining != 0
		seq, d := e.conn.NextSend(us, avail)
		switch d {
		case core.SendData:
			if e.remaining > 0 {
				e.remaining--
			}
			e.sendData(seq)
		case core.SendRetrans:
			e.sendData(seq)
		case core.WaitPacing:
			e.wakeAt(e.conn.NextSendTime() * netsim.Microsecond)
			return
		case core.WaitFrozen:
			e.wakeAt(e.conn.Controller().FreezeEnd() * netsim.Microsecond)
			return
		case core.WaitData:
			e.maybeDone()
			return
		default: // WaitWindow, WaitClosed: the next ACK (or nothing) re-kicks
			return
		}
	}
}

func (e *Endpoint) maybeDone() {
	if e.remaining == 0 && e.DoneAt == 0 && e.conn.Unacked() == 0 {
		e.DoneAt = e.sim.Now()
		if e.OnDone != nil {
			e.OnDone()
		}
	}
}

func (e *Endpoint) scheduleTimer() {
	if e.conn.Closed() {
		return
	}
	e.wakeAt(e.conn.NextTimer() * netsim.Microsecond)
}

// wakeAt schedules a kick at simulated time t (ns), deduplicating wakeups
// that are not earlier than one already scheduled. The wakeup is a typed
// event (the target time rides in aux), so the simulator's densest event
// stream — per-packet pacing wakeups — allocates nothing.
func (e *Endpoint) wakeAt(t netsim.Time) {
	now := e.sim.Now()
	if t <= now {
		t = now + netsim.Microsecond
	}
	if e.nextWake > now && e.nextWake <= t {
		return
	}
	e.nextWake = t
	e.sim.Call(t, endpointWake, e, nil, int64(t))
}

func endpointWake(_ *netsim.Sim, arg any, _ *netsim.Packet, aux int64) {
	e := arg.(*Endpoint)
	if e.nextWake == netsim.Time(aux) {
		e.nextWake = 0
	}
	e.kick()
}
