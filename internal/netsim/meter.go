package netsim

// FlowMeter samples per-flow goodput on a fixed interval, producing the
// time series behind the paper's throughput plots and the stability /
// fairness indices.
type FlowMeter struct {
	sim      *Sim
	interval Time
	flows    int
	bytes    []int64     // since last sample
	total    []int64     // lifetime
	Samples  [][]float64 // Samples[k][flow] = Mb/s during interval k
}

// NewFlowMeter starts sampling `flows` flows every interval.
func NewFlowMeter(sim *Sim, flows int, interval Time) *FlowMeter {
	m := &FlowMeter{
		sim:      sim,
		interval: interval,
		flows:    flows,
		bytes:    make([]int64, flows),
		total:    make([]int64, flows),
	}
	sim.AfterCall(interval, meterSample, m, nil, 0)
	return m
}

func meterSample(_ *Sim, arg any, _ *Packet, _ int64) { arg.(*FlowMeter).sample() }

func (m *FlowMeter) sample() {
	row := make([]float64, m.flows)
	for i, b := range m.bytes {
		row[i] = float64(b*8) / float64(m.interval) * float64(Second) / 1e6 // Mb/s
		m.bytes[i] = 0
	}
	m.Samples = append(m.Samples, row)
	m.sim.AfterCall(m.interval, meterSample, m, nil, 0)
}

// Account credits n delivered application bytes to flow.
func (m *FlowMeter) Account(flow int, n int) {
	m.bytes[flow] += int64(n)
	m.total[flow] += int64(n)
}

// TotalBytes returns flow's lifetime delivered bytes.
func (m *FlowMeter) TotalBytes(flow int) int64 { return m.total[flow] }

// AvgMbps returns flow's lifetime average goodput over the duration that
// has elapsed so far.
func (m *FlowMeter) AvgMbps(flow int) float64 {
	if m.sim.Now() == 0 {
		return 0
	}
	return float64(m.total[flow]*8) / float64(m.sim.Now()) * float64(Second) / 1e6
}

// SeriesAfter returns the per-flow sample matrix skipping the first `skip`
// samples (warm-up trimming).
func (m *FlowMeter) SeriesAfter(skip int) [][]float64 {
	if skip >= len(m.Samples) {
		return nil
	}
	return m.Samples[skip:]
}

// CBRSource injects constant-bit-rate traffic into dst — the "bursting UDP
// flow" cross-traffic of Fig. 8 is a CBR source toggled on and off.
type CBRSource struct {
	sim     *Sim
	dst     Deliver
	rate    int64 // bits per second while on
	size    int
	flow    int
	on      bool
	stopped bool
	Sent    int64
}

// NewCBRSource creates a source that is initially off.
func NewCBRSource(sim *Sim, dst Deliver, rateBps int64, pktSize, flow int) *CBRSource {
	return &CBRSource{sim: sim, dst: dst, rate: rateBps, size: pktSize, flow: flow}
}

// Start begins packet injection.
func (s *CBRSource) Start() {
	if s.on || s.stopped {
		return
	}
	s.on = true
	s.emit()
}

// Stop pauses injection (restartable).
func (s *CBRSource) Stop() { s.on = false }

// Shutdown halts the source permanently.
func (s *CBRSource) Shutdown() { s.stopped = true; s.on = false }

func cbrEmit(_ *Sim, arg any, _ *Packet, _ int64) { arg.(*CBRSource).emit() }

func (s *CBRSource) emit() {
	if !s.on || s.stopped {
		return
	}
	s.dst(s.sim.AllocPacket(s.size, s.flow))
	s.Sent++
	gap := Time(int64(s.size) * 8 * Second / s.rate)
	if gap < 1 {
		gap = 1
	}
	s.sim.AfterCall(gap, cbrEmit, s, nil, 0)
}
