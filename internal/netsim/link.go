package netsim

// QueueKind selects the queueing discipline of a link's egress buffer.
type QueueKind int

// Queue disciplines. The paper's experiments all use DropTail; RED exists
// for sensitivity studies.
const (
	DropTail QueueKind = iota
	RED
)

// LinkStats counts a link's lifetime activity.
type LinkStats struct {
	Sent      int64 // packets handed to Send
	Delivered int64
	Dropped   int64
	Bytes     int64 // bytes delivered
	MaxQueue  int   // high-water mark of the queue, packets
}

// Link is a unidirectional store-and-forward link: an egress queue feeding
// a transmitter of fixed rate, followed by a fixed propagation delay.
// Bidirectional paths are built from two Links.
//
// A packet handed to Send is owned by the link until delivery: it is either
// delivered to dst exactly once or dropped (and returned to the simulation's
// packet free list). Callers must not retain or reuse it.
type Link struct {
	sim   *Sim
	rate  int64 // bits per second; 0 means infinitely fast
	delay Time
	qcap  int // queue capacity in packets (excluding the one in service)
	kind  QueueKind
	dst   Deliver

	// JitterMax, when positive, adds a uniform random extra delay in
	// [0, JitterMax) to each delivery. It models host processing
	// variability and, on ACK paths, breaks the deterministic phase
	// effects that plague DropTail simulations (Floyd & Jacobson 1992).
	JitterMax Time

	// Egress queue: a growable power-of-two ring. A plain slice with
	// pop-from-front reslicing would slide through its backing array and
	// reallocate steadily; the ring reaches its working-set size once and
	// then never allocates again.
	queue []*Packet
	qhead int
	qlen  int

	busy     bool
	lastDlvr Time // FIFO guard: jitter never reorders deliveries
	Stats    LinkStats
	redAvg   float64 // RED: EWMA of queue length
	redMin   int
	redMax   int
	redPmax  float64
}

// NewLink creates a link delivering to dst. rateBps is the capacity in bits
// per second (0 = infinite), delay the one-way propagation delay, queuePkts
// the DropTail queue size in packets.
func NewLink(sim *Sim, rateBps int64, delay Time, queuePkts int, dst Deliver) *Link {
	if queuePkts < 1 {
		queuePkts = 1
	}
	return &Link{
		sim:     sim,
		rate:    rateBps,
		delay:   delay,
		qcap:    queuePkts,
		dst:     dst,
		redMin:  queuePkts / 4,
		redMax:  3 * queuePkts / 4,
		redPmax: 0.1,
	}
}

// UseRED switches the queue to Random Early Detection with thresholds at
// 1/4 and 3/4 of the queue capacity.
func (l *Link) UseRED() { l.kind = RED }

// QueueLen returns the instantaneous queue occupancy in packets.
func (l *Link) QueueLen() int { return l.qlen }

// Delay returns the propagation delay.
func (l *Link) Delay() Time { return l.delay }

// Rate returns the link capacity in bits per second.
func (l *Link) Rate() int64 { return l.rate }

// txTime returns the serialization time of p.
func (l *Link) txTime(p *Packet) Time {
	if l.rate <= 0 {
		return 0
	}
	return Time(int64(p.Size) * 8 * Second / l.rate)
}

func (l *Link) qpush(p *Packet) {
	if l.qlen == len(l.queue) {
		n := len(l.queue) * 2
		if n == 0 {
			n = 16
		}
		grown := make([]*Packet, n)
		for i := 0; i < l.qlen; i++ {
			grown[i] = l.queue[(l.qhead+i)&(len(l.queue)-1)]
		}
		l.queue = grown
		l.qhead = 0
	}
	l.queue[(l.qhead+l.qlen)&(len(l.queue)-1)] = p
	l.qlen++
}

func (l *Link) qpop() *Packet {
	p := l.queue[l.qhead]
	l.queue[l.qhead] = nil
	l.qhead = (l.qhead + 1) & (len(l.queue) - 1)
	l.qlen--
	return p
}

// Send enqueues p for transmission, dropping it when the queue is full
// (DropTail) or when RED decides to mark-by-drop. Dropped packets return to
// the free list — on the wire they cease to exist, and so they do here.
func (l *Link) Send(p *Packet) {
	l.Stats.Sent++
	if l.kind == RED {
		l.redAvg = l.redAvg*0.98 + float64(l.qlen)*0.02
		if l.redAvg > float64(l.redMax) {
			l.Stats.Dropped++
			l.sim.FreePacket(p)
			return
		}
		if l.redAvg > float64(l.redMin) {
			pdrop := l.redPmax * (l.redAvg - float64(l.redMin)) / float64(l.redMax-l.redMin)
			if l.sim.Rand.Float64() < pdrop {
				l.Stats.Dropped++
				l.sim.FreePacket(p)
				return
			}
		}
	}
	if l.qlen >= l.qcap {
		l.Stats.Dropped++
		l.sim.FreePacket(p)
		return
	}
	l.qpush(p)
	if l.qlen > l.Stats.MaxQueue {
		l.Stats.MaxQueue = l.qlen
	}
	if !l.busy {
		l.transmitNext()
	}
}

// transmitNext starts serializing the head-of-line packet. The whole
// store-and-forward pipeline runs on typed events — scheduling a packet hop
// allocates nothing.
func (l *Link) transmitNext() {
	if l.qlen == 0 {
		l.busy = false
		return
	}
	l.busy = true
	p := l.qpop()
	l.sim.AfterCall(l.txTime(p), linkTxDone, l, p, 0)
}

// linkTxDone fires when p's last bit leaves the transmitter: p enters the
// propagation pipe (in parallel with the next packet's serialization).
func linkTxDone(s *Sim, arg any, p *Packet, _ int64) {
	l := arg.(*Link)
	d := l.delay
	if l.JitterMax > 0 {
		d += Time(s.Rand.Int63n(int64(l.JitterMax)))
	}
	// Links are FIFO: jitter shifts timing but never reorders.
	at := s.Now() + d
	if at < l.lastDlvr {
		at = l.lastDlvr
	}
	l.lastDlvr = at
	s.Call(at, linkDeliver, l, p, 0)
	l.transmitNext()
}

// linkDeliver hands p to the link's destination after propagation.
func linkDeliver(_ *Sim, arg any, p *Packet, _ int64) {
	l := arg.(*Link)
	l.Stats.Delivered++
	l.Stats.Bytes += int64(p.Size)
	l.dst(p)
}

// Pipe is a symmetric bidirectional path between two endpoints.
type Pipe struct {
	AtoB, BtoA *Link
}

// NewPipe wires a ↔ b with identical rate/delay/queue in both directions.
func NewPipe(sim *Sim, rateBps int64, delay Time, queuePkts int, a, b Deliver) *Pipe {
	return &Pipe{
		AtoB: NewLink(sim, rateBps, delay, queuePkts, b),
		BtoA: NewLink(sim, rateBps, delay, queuePkts, a),
	}
}
