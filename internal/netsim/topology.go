package netsim

// Dumbbell is the evaluation's workhorse topology: N sources reach N sinks
// through one shared bottleneck link; each flow has its own access and
// return links carrying its share of the round-trip delay. All queueing
// happens at the bottleneck (access and return links are infinitely fast
// with effectively unbounded buffers), matching the NS-2 setups in the
// paper's figure captions.
//
//	src_0 ──access_0──┐                       ┌──► sink_0
//	src_1 ──access_1──┼──► [bottleneck, Q] ───┼──► sink_1
//	...               │                       └──► ...
//	sink_i ──return_i────────────────────────────► src_i   (ACK path)
type Dumbbell struct {
	sim        *Sim
	Bottleneck *Link
	access     []*Link
	reverse    []*Link
	toSink     []Deliver
	toSrc      []Deliver
}

// NewDumbbell builds a dumbbell with the given bottleneck rate and DropTail
// queue, and one flow per entry of rtts: flow i's unloaded round-trip time.
// Endpoints are attached afterwards with Bind.
func NewDumbbell(sim *Sim, rateBps int64, queuePkts int, rtts []Time) *Dumbbell {
	n := len(rtts)
	d := &Dumbbell{
		sim:     sim,
		access:  make([]*Link, n),
		reverse: make([]*Link, n),
		toSink:  make([]Deliver, n),
		toSrc:   make([]Deliver, n),
	}
	d.Bottleneck = NewLink(sim, rateBps, 0, queuePkts, func(p *Packet) {
		// Flow ids outside the bound range (cross traffic) fall off the far
		// side of the bottleneck; discarded packets return to the pool.
		if p.Flow >= 0 && p.Flow < len(d.toSink) {
			if f := d.toSink[p.Flow]; f != nil {
				f(p)
				return
			}
		}
		sim.FreePacket(p)
	})
	for i, rtt := range rtts {
		i := i
		// Access links run at twice the bottleneck's rate, modeling host
		// NICs that are faster than the narrow shared link. A packet pair
		// is therefore pre-spaced at the source to half the bottleneck's
		// serialization time: the pair still queues back-to-back at the
		// bottleneck (preserving receiver-based packet-pair capacity
		// estimation) while rarely leaving room for a competitor's packet
		// to slip between — but the shared link remains the unique
		// congestion point.
		d.access[i] = NewLink(sim, 2*rateBps, rtt/2, 1<<20, d.Bottleneck.Send)
		d.reverse[i] = NewLink(sim, 0, rtt/2, 1<<20, func(p *Packet) {
			if f := d.toSrc[p.Flow]; f != nil {
				f(p)
				return
			}
			sim.FreePacket(p)
		})
		// Jitter on the ACK path breaks deterministic DropTail phase
		// effects without disturbing forward-path packet-pair spacing.
		d.reverse[i].JitterMax = 500 * Microsecond
	}
	return d
}

// Bind attaches flow i's endpoints: toSink receives the flow's packets at
// the sink side, toSrc receives the reverse-path (ACK) packets at the
// source side.
func (d *Dumbbell) Bind(i int, toSink, toSrc Deliver) {
	d.toSink[i] = toSink
	d.toSrc[i] = toSrc
}

// SrcOut returns the sink-bound injection point for flow i (what the source
// endpoint uses as its output).
func (d *Dumbbell) SrcOut(i int) Deliver { return d.access[i].Send }

// SinkOut returns the source-bound injection point for flow i (what the
// sink endpoint uses to send ACKs/NAKs back).
func (d *Dumbbell) SinkOut(i int) Deliver { return d.reverse[i].Send }

// InjectCross returns an injection point that shares the bottleneck but
// whose packets are discarded at the far side — cross traffic (Fig. 8).
// The packets travel under the given flow id, which must not collide with a
// bound flow.
func (d *Dumbbell) InjectCross(flow int) Deliver {
	return func(p *Packet) {
		p.Flow = flow
		d.Bottleneck.Send(p)
	}
}
