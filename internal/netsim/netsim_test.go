package netsim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.At(10, func() { got = append(got, 11) }) // same time: insertion order
	s.Run(100)
	want := []int{1, 11, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if s.Now() != 100 {
		t.Fatalf("Now = %d, want 100", s.Now())
	}
}

func TestRunStopsAtBoundary(t *testing.T) {
	s := New(1)
	fired := false
	s.At(200, func() { fired = true })
	s.Run(100)
	if fired {
		t.Fatal("event beyond until fired")
	}
	if s.Pending() != 1 {
		t.Fatal("pending event lost")
	}
	s.Run(300)
	if !fired {
		t.Fatal("event not fired on second run")
	}
}

func TestPastEventClamped(t *testing.T) {
	s := New(1)
	s.At(50, func() {
		s.At(10, func() {}) // scheduling into the past must clamp, not warp
	})
	s.Run(100)
	if s.Now() != 100 {
		t.Fatalf("Now = %d", s.Now())
	}
}

func TestLinkSerializationAndDelay(t *testing.T) {
	s := New(1)
	var arrivals []Time
	// 1 Mb/s link: a 1250-byte packet serializes in 10 ms; delay 5 ms.
	l := NewLink(s, 1_000_000, 5*Millisecond, 100, func(p *Packet) {
		arrivals = append(arrivals, s.Now())
	})
	l.Send(&Packet{Size: 1250})
	l.Send(&Packet{Size: 1250})
	s.Run(Second)
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d", len(arrivals))
	}
	if arrivals[0] != 15*Millisecond {
		t.Fatalf("first arrival %d, want 15ms", arrivals[0])
	}
	// Second packet: serialized back-to-back → +10 ms.
	if arrivals[1] != 25*Millisecond {
		t.Fatalf("second arrival %d, want 25ms", arrivals[1])
	}
}

func TestLinkDropTail(t *testing.T) {
	s := New(1)
	delivered := 0
	l := NewLink(s, 1_000_000, 0, 2, func(p *Packet) { delivered++ })
	// Burst of 10: 1 in service + 2 queued survive at most... the first
	// enters service immediately, so 3 are accepted.
	for i := 0; i < 10; i++ {
		l.Send(&Packet{Size: 1250})
	}
	s.Run(Second)
	if delivered != 3 {
		t.Fatalf("delivered %d, want 3", delivered)
	}
	if l.Stats.Dropped != 7 {
		t.Fatalf("dropped %d, want 7", l.Stats.Dropped)
	}
	if l.Stats.MaxQueue != 2 {
		t.Fatalf("max queue %d, want 2", l.Stats.MaxQueue)
	}
}

// TestLinkConservation: every packet is delivered exactly once or dropped —
// links neither duplicate nor lose accounting.
func TestPropLinkConservation(t *testing.T) {
	f := func(seed int64, n uint8, qcap uint8) bool {
		s := New(seed)
		delivered := 0
		l := NewLink(s, 10_000_000, Millisecond, int(qcap%32)+1, func(p *Packet) { delivered++ })
		total := int(n%200) + 1
		for i := 0; i < total; i++ {
			at := Time(s.Rand.Int63n(int64(100 * Millisecond)))
			s.At(at, func() { l.Send(&Packet{Size: 100 + s.Rand.Intn(1400)}) })
		}
		s.Run(10 * Second)
		return int64(delivered) == l.Stats.Delivered &&
			l.Stats.Delivered+l.Stats.Dropped == l.Stats.Sent &&
			l.Stats.Sent == int64(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLinkThroughputAtCapacity(t *testing.T) {
	s := New(1)
	bytes := int64(0)
	l := NewLink(s, 100_000_000, Millisecond, 50, func(p *Packet) { bytes += int64(p.Size) })
	src := NewCBRSource(s, l.Send, 200_000_000, 1500, 0) // 2× overload
	src.Start()
	s.Run(Second)
	src.Shutdown()
	mbps := float64(bytes*8) / 1e6
	if mbps < 95 || mbps > 101 {
		t.Fatalf("delivered %.1f Mb/s through a 100 Mb/s link", mbps)
	}
	if l.Stats.Dropped == 0 {
		t.Fatal("overloaded DropTail must drop")
	}
}

func TestInfiniteRateLink(t *testing.T) {
	s := New(1)
	var at Time = -1
	l := NewLink(s, 0, 7*Millisecond, 10, func(p *Packet) { at = s.Now() })
	l.Send(&Packet{Size: 1_000_000})
	s.Run(Second)
	if at != 7*Millisecond {
		t.Fatalf("arrival %d, want pure propagation 7ms", at)
	}
}

func TestREDDropsEarly(t *testing.T) {
	s := New(42)
	delivered := 0
	l := NewLink(s, 10_000_000, 0, 100, func(p *Packet) { delivered++ })
	l.UseRED()
	src := NewCBRSource(s, l.Send, 50_000_000, 1500, 0)
	src.Start()
	s.Run(2 * Second)
	src.Shutdown()
	if l.Stats.Dropped == 0 {
		t.Fatal("RED never dropped under sustained overload")
	}
	// Once the averaged queue estimate warms up, RED holds the queue below
	// the hard limit (the initial burst may still fill it).
	if l.QueueLen() >= 100 {
		t.Fatalf("RED steady-state queue at the hard cap: %d", l.QueueLen())
	}
}

func TestFlowMeter(t *testing.T) {
	s := New(1)
	m := NewFlowMeter(s, 2, 100*Millisecond)
	// Flow 0: 1250 bytes every 10 ms = 1 Mb/s; flow 1 idle.
	var feed func()
	feed = func() {
		m.Account(0, 1250)
		s.After(10*Millisecond, feed)
	}
	s.After(10*Millisecond, feed)
	s.Run(Second)
	if len(m.Samples) != 10 {
		t.Fatalf("samples = %d, want 10", len(m.Samples))
	}
	for k, row := range m.Samples {
		if row[0] < 0.9 || row[0] > 1.1 {
			t.Fatalf("sample %d flow0 = %v Mb/s, want ≈1", k, row[0])
		}
		if row[1] != 0 {
			t.Fatalf("idle flow measured %v", row[1])
		}
	}
	if got := m.AvgMbps(0); got < 0.9 || got > 1.1 {
		t.Fatalf("AvgMbps = %v", got)
	}
	if m.TotalBytes(0) != 125000 {
		t.Fatalf("TotalBytes = %d", m.TotalBytes(0))
	}
	if rows := m.SeriesAfter(8); len(rows) != 2 {
		t.Fatalf("SeriesAfter(8) = %d rows", len(rows))
	}
	if rows := m.SeriesAfter(100); rows != nil {
		t.Fatal("SeriesAfter beyond end must be nil")
	}
}

func TestDumbbellRouting(t *testing.T) {
	s := New(1)
	d := NewDumbbell(s, 1_000_000_000, 100, []Time{10 * Millisecond, 40 * Millisecond})
	var sink0, sink1, src0 []Time
	d.Bind(0, func(p *Packet) { sink0 = append(sink0, s.Now()) }, func(p *Packet) { src0 = append(src0, s.Now()) })
	d.Bind(1, func(p *Packet) { sink1 = append(sink1, s.Now()) }, nil)
	d.SrcOut(0)(&Packet{Size: 1250, Flow: 0})
	d.SrcOut(1)(&Packet{Size: 1250, Flow: 1})
	d.SinkOut(0)(&Packet{Size: 40, Flow: 0})
	s.Run(Second)
	if len(sink0) != 1 || len(sink1) != 1 || len(src0) != 1 {
		t.Fatalf("routing failed: %v %v %v", sink0, sink1, src0)
	}
	// One-way ≈ rtt/2 plus 10 µs serialization at 1 Gb/s.
	if sink0[0] < 5*Millisecond || sink0[0] > 6*Millisecond {
		t.Fatalf("flow0 one-way = %d", sink0[0])
	}
	if sink1[0] < 20*Millisecond || sink1[0] > 21*Millisecond {
		t.Fatalf("flow1 one-way = %d", sink1[0])
	}
	if src0[0] < 5*Millisecond || src0[0] > 6*Millisecond {
		t.Fatalf("reverse one-way = %d", src0[0])
	}
}

func TestDumbbellSharedBottleneck(t *testing.T) {
	// Two CBR sources at 80 Mb/s each into a 100 Mb/s bottleneck: combined
	// delivery pins at capacity and both flows lose packets.
	s := New(1)
	d := NewDumbbell(s, 100_000_000, 50, []Time{2 * Millisecond, 2 * Millisecond})
	bytes := [2]int64{}
	d.Bind(0, func(p *Packet) { bytes[0] += int64(p.Size) }, nil)
	d.Bind(1, func(p *Packet) { bytes[1] += int64(p.Size) }, nil)
	s0 := NewCBRSource(s, d.SrcOut(0), 80_000_000, 1500, 0)
	s1 := NewCBRSource(s, d.SrcOut(1), 80_000_000, 1500, 1)
	s0.Start()
	s1.Start()
	s.Run(2 * Second)
	s0.Shutdown()
	s1.Shutdown()
	total := float64((bytes[0]+bytes[1])*8) / 2e6
	if total < 95 || total > 101 {
		t.Fatalf("aggregate %.1f Mb/s, want ≈100", total)
	}
	if d.Bottleneck.Stats.Dropped == 0 {
		t.Fatal("no drops despite overload")
	}
}

func TestCBRSourceRate(t *testing.T) {
	s := New(1)
	n := 0
	src := NewCBRSource(s, func(p *Packet) { n++ }, 12_000_000, 1500, 0) // 1000 pkt/s
	src.Start()
	src.Start() // idempotent
	s.Run(Second)
	src.Shutdown()
	src.Start() // no restart after shutdown
	s.Run(2 * Second)
	if n < 999 || n > 1001 {
		t.Fatalf("CBR sent %d packets in 1s, want ≈1000", n)
	}
}

// TestPropJitterPreservesOrder: jittered links are still FIFO — reordering
// would create spurious duplicate ACKs in the TCP model (and real UDP
// reorder is handled by the protocols, not the link model).
func TestPropJitterPreservesOrder(t *testing.T) {
	f := func(seed int64) bool {
		s := New(seed)
		l := NewLink(s, 100_000_000, 5*Millisecond, 1000, nil)
		l.JitterMax = 2 * Millisecond
		var got []int
		l.dst = func(p *Packet) { got = append(got, p.Payload.(int)) }
		for i := 0; i < 100; i++ {
			i := i
			s.At(Time(i)*50*Microsecond, func() {
				l.Send(&Packet{Size: 200, Payload: i})
			})
		}
		s.Run(Second)
		if len(got) != 100 {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
