// Package netsim is a deterministic discrete-event packet network simulator
// — this repository's substitute for NS-2, which the paper uses for all
// control-law experiments (fairness, stability, friendliness, RTT bias,
// flow-control ablation).
//
// The model matches NS-2's at the granularity those experiments need:
// store-and-forward links defined by a rate and a propagation delay, with
// DropTail (or RED) queues sized in packets, connecting protocol endpoints
// that exchange opaque packet payloads. Simulated time is int64 nanoseconds;
// event ordering is fully deterministic (ties broken by insertion order) and
// all randomness flows from one seeded generator, so every experiment
// regenerates bit-identically.
//
// The event queue and the packet objects are engineered for allocation-free
// steady state: events live in a concrete binary min-heap of plain structs
// (no interface boxing, no container/heap indirection), hot-path callbacks
// use the typed Call/AfterCall form instead of closures, and Packet objects
// recycle through a sim-local free list. A simulation that schedules only
// typed events and frees delivered packets performs zero heap allocations
// per event once its buffers have warmed up.
package netsim

import (
	"math/rand"
)

// Time is simulated time in nanoseconds.
type Time = int64

// Time unit helpers.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
)

// EventFunc is the allocation-free callback form: a plain function (not a
// closure) receiving the simulation, a receiver-like argument, an optional
// in-flight packet and one scalar. Passing a pointer through arg does not
// allocate; a closure capturing the same state would.
type EventFunc func(s *Sim, arg any, pkt *Packet, aux int64)

// event is a queued callback. Exactly one of fn (closure form) and call
// (typed form) is set.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	call EventFunc
	arg  any
	pkt  *Packet
	aux  int64
}

// before is the queue's total order: time, then insertion order. It is a
// strict total order (seq is unique), so any correct min-heap pops events in
// exactly the same sequence — the representation can change without
// disturbing determinism.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Sim is one simulation instance: a virtual clock, an event queue and a
// seeded random source. Not safe for concurrent use — simulations are
// single-threaded by construction.
type Sim struct {
	now    Time
	events []event // binary min-heap ordered by (at, seq)
	seq    uint64
	// Rand is the simulation's sole randomness source. The packet free list
	// and the event heap never consume it, so pooling and the queue
	// representation cannot perturb an experiment's random sequence.
	Rand *rand.Rand

	pktFree []*Packet
}

// New returns an empty simulation whose randomness is derived from seed.
func New(seed int64) *Sim {
	return &Sim{Rand: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// push inserts e into the heap (inlined sift-up; no interface boxing).
func (s *Sim) push(e event) {
	h := append(s.events, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].before(&h[i]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	s.events = h
}

// pop removes and returns the earliest event (inlined hole-based sift-down).
func (s *Sim) pop() event {
	h := s.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release fn/arg/pkt references
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if r := c + 1; r < n && h[r].before(&h[c]) {
				c = r
			}
			if last.before(&h[c]) {
				break
			}
			h[i] = h[c]
			i = c
		}
		h[i] = last
	}
	s.events = h
	return top
}

// schedule clamps t and enqueues.
func (s *Sim) schedule(t Time, e event) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e.at = t
	e.seq = s.seq
	s.push(e)
}

// At schedules fn at absolute time t (clamped to now for past times). The
// closure form is convenient for setup and experiment scripting; per-event
// hot paths should use Call, which does not allocate.
func (s *Sim) At(t Time, fn func()) {
	s.schedule(t, event{fn: fn})
}

// After schedules fn d nanoseconds from now.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Call schedules the typed callback fn(s, arg, pkt, aux) at absolute time t
// (clamped to now). fn must be a plain function; arg carries the receiver,
// pkt an optional in-flight packet, aux one scalar. No allocation occurs
// beyond amortized heap-slice growth.
func (s *Sim) Call(t Time, fn EventFunc, arg any, pkt *Packet, aux int64) {
	s.schedule(t, event{call: fn, arg: arg, pkt: pkt, aux: aux})
}

// AfterCall schedules the typed callback d nanoseconds from now.
func (s *Sim) AfterCall(d Time, fn EventFunc, arg any, pkt *Packet, aux int64) {
	s.Call(s.now+d, fn, arg, pkt, aux)
}

// runNext pops and dispatches the earliest event. It is the single pop site:
// Step and Run share it so the clock/dispatch rules cannot drift apart.
func (s *Sim) runNext() {
	e := s.pop()
	s.now = e.at
	if e.fn != nil {
		e.fn()
	} else {
		e.call(s, e.arg, e.pkt, e.aux)
	}
}

// Step executes the next event, reporting false when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	s.runNext()
	return true
}

// Run executes events until the clock passes `until` or the queue drains.
// The clock finishes at exactly `until`.
func (s *Sim) Run(until Time) {
	for len(s.events) > 0 && s.events[0].at <= until {
		s.runNext()
	}
	if s.now < until {
		s.now = until
	}
}

// Pending returns the number of queued events (test introspection). O(1).
func (s *Sim) Pending() int { return len(s.events) }

// Packet is the unit of transmission. Size is the on-wire size in bytes and
// drives serialization delay and queue accounting; Payload carries
// protocol-specific content and is never inspected by the simulator.
//
// Kind, Seq, Aux and Flag are typed scratch words for protocol payloads:
// storing small values there instead of boxing a struct into Payload keeps
// per-packet paths allocation-free. Kind discriminates the payload form;
// protocols sharing one simulation must use disjoint Kind values.
type Packet struct {
	Size    int
	Flow    int // flow identifier for tracing and per-flow accounting
	Payload interface{}

	Kind int32
	Flag bool
	Seq  int64
	Aux  int64

	freed bool
}

// AllocPacket returns a zeroed packet, recycling one from the simulation's
// free list when possible. The free list is LIFO and consumes no randomness,
// so pooling never changes event order or experiment outputs.
func (s *Sim) AllocPacket(size, flow int) *Packet {
	if n := len(s.pktFree); n > 0 {
		p := s.pktFree[n-1]
		s.pktFree[n-1] = nil
		s.pktFree = s.pktFree[:n-1]
		*p = Packet{Size: size, Flow: flow}
		return p
	}
	return &Packet{Size: size, Flow: flow}
}

// FreePacket returns p to the free list. Call it exactly once, from the
// packet's final consumer (a protocol endpoint, a drop site, a discard
// sink); the packet must not be touched afterwards. Freeing packets that
// were not allocated through AllocPacket is allowed — they simply join the
// pool. Double frees panic: they would otherwise corrupt two logical
// packets into one object and poison an experiment silently.
func (s *Sim) FreePacket(p *Packet) {
	if p.freed {
		panic("netsim: packet freed twice")
	}
	p.freed = true
	p.Payload = nil
	s.pktFree = append(s.pktFree, p)
}

// Deliver is a packet sink: an endpoint's receive entry point, a link's
// Send, or any function composed between them.
type Deliver func(*Packet)
