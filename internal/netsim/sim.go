// Package netsim is a deterministic discrete-event packet network simulator
// — this repository's substitute for NS-2, which the paper uses for all
// control-law experiments (fairness, stability, friendliness, RTT bias,
// flow-control ablation).
//
// The model matches NS-2's at the granularity those experiments need:
// store-and-forward links defined by a rate and a propagation delay, with
// DropTail (or RED) queues sized in packets, connecting protocol endpoints
// that exchange opaque packet payloads. Simulated time is int64 nanoseconds;
// event ordering is fully deterministic (ties broken by insertion order) and
// all randomness flows from one seeded generator, so every experiment
// regenerates bit-identically.
package netsim

import (
	"container/heap"
	"math/rand"
)

// Time is simulated time in nanoseconds.
type Time = int64

// Time unit helpers.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
)

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Sim is one simulation instance: a virtual clock, an event queue and a
// seeded random source. Not safe for concurrent use — simulations are
// single-threaded by construction.
type Sim struct {
	now    Time
	events eventHeap
	seq    uint64
	// Rand is the simulation's sole randomness source.
	Rand *rand.Rand
}

// New returns an empty simulation whose randomness is derived from seed.
func New(seed int64) *Sim {
	return &Sim{Rand: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn at absolute time t (clamped to now for past times).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Step executes the next event, reporting false when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	e.fn()
	return true
}

// Run executes events until the clock passes `until` or the queue drains.
// The clock finishes at exactly `until`.
func (s *Sim) Run(until Time) {
	for len(s.events) > 0 && s.events[0].at <= until {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		e.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// Pending returns the number of queued events (test introspection).
func (s *Sim) Pending() int { return len(s.events) }

// Packet is the unit of transmission. Size is the on-wire size in bytes and
// drives serialization delay and queue accounting; Payload carries the
// protocol-specific content and is never inspected by the simulator.
type Packet struct {
	Size    int
	Flow    int // flow identifier for tracing and per-flow accounting
	Payload interface{}
}

// Deliver is a packet sink: an endpoint's receive entry point, a link's
// Send, or any function composed between them.
type Deliver func(*Packet)
