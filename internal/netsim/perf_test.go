package netsim

import (
	"container/heap"
	"testing"
)

// ringWorkload builds a self-sustaining two-link packet ring: whatever one
// link delivers is immediately re-sent down the other. It exercises the
// whole hot path — queue ring, typed tx/deliver events, packet free list —
// with a bounded working set, so after warm-up nothing allocates.
func ringWorkload(sim *Sim, inFlight int) {
	var a, b *Link
	a = NewLink(sim, 1_000_000_000, Millisecond, 64, func(p *Packet) { b.Send(p) })
	b = NewLink(sim, 1_000_000_000, Millisecond, 64, func(p *Packet) { a.Send(p) })
	for i := 0; i < inFlight; i++ {
		a.Send(sim.AllocPacket(1500, i))
	}
}

// TestSimStepZeroAlloc is the regression gate for the simulator's core
// invariant: steady-state event processing performs zero heap allocations.
// If a change reintroduces interface boxing, closure captures, or packet
// churn on the hot path, this fails before any benchmark has to be read.
func TestSimStepZeroAlloc(t *testing.T) {
	sim := New(1)
	ringWorkload(sim, 8)
	// Warm up: grow the event heap, the link rings and the free list to
	// their working-set sizes.
	for i := 0; i < 10_000; i++ {
		sim.Step()
	}
	avg := testing.AllocsPerRun(2000, func() { sim.Step() })
	if avg != 0 {
		t.Fatalf("sim.Step allocates %.2f objects/event in steady state, want 0", avg)
	}
}

// TestTypedCallZeroAlloc pins the scheduling primitive itself: rescheduling
// a typed event (pointer receiver through arg, scalar through aux) must not
// allocate once the heap has capacity.
func TestTypedCallZeroAlloc(t *testing.T) {
	sim := New(1)
	type tick struct{ n int }
	tk := &tick{}
	var fire EventFunc
	fire = func(s *Sim, arg any, _ *Packet, aux int64) {
		arg.(*tick).n++
		s.AfterCall(Microsecond, fire, arg, nil, aux+1)
	}
	sim.AfterCall(Microsecond, fire, tk, nil, 0)
	for i := 0; i < 100; i++ {
		sim.Step()
	}
	avg := testing.AllocsPerRun(1000, func() { sim.Step() })
	if avg != 0 {
		t.Fatalf("typed Call reschedule allocates %.2f objects/event, want 0", avg)
	}
	if tk.n == 0 {
		t.Fatal("callback never ran")
	}
}

func TestPacketPoolRecycles(t *testing.T) {
	sim := New(1)
	p := sim.AllocPacket(100, 1)
	p.Kind, p.Seq, p.Payload = 7, 42, "x"
	sim.FreePacket(p)
	q := sim.AllocPacket(200, 2)
	if q != p {
		t.Fatal("free list did not recycle the packet")
	}
	if q.Kind != 0 || q.Seq != 0 || q.Payload != nil || q.Flag || q.Aux != 0 {
		t.Fatalf("recycled packet not reset: %+v", q)
	}
	if q.Size != 200 || q.Flow != 2 {
		t.Fatalf("recycled packet has wrong identity: %+v", q)
	}
}

func TestPacketDoubleFreePanics(t *testing.T) {
	sim := New(1)
	p := sim.AllocPacket(100, 0)
	sim.FreePacket(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	sim.FreePacket(p)
}

// TestHeapTotalOrder drives the concrete heap with adversarial timestamps
// (many ties) and checks pops come out in exact (at, seq) order — the
// property the simulator's determinism rests on.
func TestHeapTotalOrder(t *testing.T) {
	sim := New(1)
	const n = 2000
	times := make([]Time, n)
	for i := range times {
		times[i] = Time(sim.Rand.Intn(50)) * Microsecond
	}
	type rec struct {
		at  Time
		ord int
	}
	got := make([]rec, 0, n)
	for i, at := range times {
		ord := i
		sim.At(at, func() { got = append(got, rec{sim.Now(), ord}) })
	}
	for sim.Step() {
	}
	if len(got) != n {
		t.Fatalf("ran %d events, want %d", len(got), n)
	}
	for i := 1; i < n; i++ {
		if got[i].at < got[i-1].at {
			t.Fatalf("time order violated at %d: %d after %d", i, got[i].at, got[i-1].at)
		}
		if got[i].at == got[i-1].at && got[i].ord < got[i-1].ord {
			t.Fatalf("insertion order violated at %d among ties at t=%d", i, got[i].at)
		}
	}
}

// BenchmarkSimEvents measures ns/event and allocs/event for the concrete
// typed-event simulator on the full link hot path (packets circulating
// through two links). Compare against BenchmarkSimEventsContainerHeap.
func BenchmarkSimEvents(b *testing.B) {
	sim := New(1)
	ringWorkload(sim, 8)
	for i := 0; i < 1000; i++ {
		sim.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

// --- Baseline replica of the seed's event queue -------------------------
//
// The seed scheduled every event as a closure boxed into a *heapEvent and
// ordered by container/heap, whose interface-based Push/Pop allocate and
// indirect every comparison. The replica below preserves that design so
// the benchmark pair keeps measuring the representation change itself,
// long after the original code is gone.

type oldEvent struct {
	at  Time
	seq uint64
	fn  func()
}

type oldEventQueue []*oldEvent

func (q oldEventQueue) Len() int { return len(q) }
func (q oldEventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q oldEventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *oldEventQueue) Push(x interface{}) { *q = append(*q, x.(*oldEvent)) }
func (q *oldEventQueue) Pop() interface{} {
	old := *q
	n := len(old) - 1
	e := old[n]
	old[n] = nil
	*q = old[:n]
	return e
}

type oldSim struct {
	now Time
	q   oldEventQueue
	seq uint64
}

func (s *oldSim) after(d Time, fn func()) {
	s.seq++
	heap.Push(&s.q, &oldEvent{at: s.now + d, seq: s.seq, fn: fn})
}

func (s *oldSim) step() bool {
	if len(s.q) == 0 {
		return false
	}
	e := heap.Pop(&s.q).(*oldEvent)
	s.now = e.at
	e.fn()
	return true
}

// BenchmarkSimEventsContainerHeap runs an equivalent self-sustaining event
// load (same concurrent-timer count as the ring workload's event population)
// on the container/heap + closure design. The ratio of this benchmark to
// BenchmarkSimEvents is the speedup the concrete queue buys; the issue gate
// requires >= 1.5x.
func BenchmarkSimEventsContainerHeap(b *testing.B) {
	s := &oldSim{}
	type hop struct{ n int }
	for i := 0; i < 16; i++ {
		h := &hop{}
		period := Time(10+i) * Microsecond
		var fire func()
		fire = func() {
			h.n++
			s.after(period, fire)
		}
		s.after(period, fire)
	}
	for i := 0; i < 1000; i++ {
		s.step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step()
	}
}
