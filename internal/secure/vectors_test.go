package secure

import (
	"bytes"
	"encoding/hex"
	"testing"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// RFC 8439 §2.4.2: ChaCha20 encryption of the sunscreen plaintext.
func TestChaCha20RFC8439(t *testing.T) {
	var key [KeyLen]byte
	for i := range key {
		key[i] = byte(i)
	}
	nonce := [12]byte{0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0}
	plain := []byte("Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.")
	want := unhex(t, "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"+
		"f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"+
		"07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"+
		"5af90bbf74a35be6b40b8eedf2785e42874d")
	buf := append([]byte(nil), plain...)
	chachaXOR(&key, &nonce, 1, buf)
	if !bytes.Equal(buf, want) {
		t.Fatalf("ciphertext mismatch:\n got %x\nwant %x", buf, want)
	}
	chachaXOR(&key, &nonce, 1, buf)
	if !bytes.Equal(buf, plain) {
		t.Fatal("decrypt did not restore plaintext")
	}
}

// RFC 8439 §2.5.2: Poly1305 tag over the CFRG message.
func TestPoly1305RFC8439(t *testing.T) {
	var key [32]byte
	copy(key[:], unhex(t, "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b"))
	msg := []byte("Cryptographic Forum Research Group")
	want := unhex(t, "a8061dc1305136c6c22b8baf0c0127a9")
	var p poly1305
	p.init(&key)
	p.update(msg)
	var tag [16]byte
	p.finish(&tag)
	if !bytes.Equal(tag[:], want) {
		t.Fatalf("tag mismatch: got %x want %x", tag, want)
	}
	// Split updates must produce the same tag (partial-block buffering).
	p.init(&key)
	p.update(msg[:7])
	p.update(msg[7:20])
	p.update(msg[20:])
	p.finish(&tag)
	if !bytes.Equal(tag[:], want) {
		t.Fatalf("split-update tag mismatch: got %x want %x", tag, want)
	}
}

// RFC 8439 §2.8.2: the full AEAD seal, ciphertext and tag.
func TestAEADRFC8439(t *testing.T) {
	var key [KeyLen]byte
	for i := range key {
		key[i] = byte(0x80 + i)
	}
	var nonce [12]byte
	copy(nonce[:], unhex(t, "070000004041424344454647"))
	aad := unhex(t, "50515253c0c1c2c3c4c5c6c7")
	plain := []byte("Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.")
	wantCT := unhex(t, "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6"+
		"3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36"+
		"92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc"+
		"3ff4def08e4b7a9de576d26586cec64b6116")
	wantTag := unhex(t, "1ae10b594f09e26a7e902ecbd0600691")

	buf := append([]byte(nil), plain...)
	var tag [16]byte
	seal(&key, &nonce, buf, aad, tag[:])
	if !bytes.Equal(buf, wantCT) {
		t.Fatalf("ciphertext mismatch:\n got %x\nwant %x", buf, wantCT)
	}
	if !bytes.Equal(tag[:], wantTag) {
		t.Fatalf("tag mismatch: got %x want %x", tag, wantTag)
	}
	if !open(&key, &nonce, buf, aad, tag[:]) {
		t.Fatal("open rejected its own seal")
	}
	if !bytes.Equal(buf, plain) {
		t.Fatal("open did not restore plaintext")
	}
	// Any bit flip — ciphertext, AAD or tag — must be rejected, leaving
	// the buffer untouched.
	seal(&key, &nonce, buf, aad, tag[:])
	buf[3] ^= 1
	if open(&key, &nonce, buf, aad, tag[:]) {
		t.Fatal("open accepted corrupted ciphertext")
	}
	buf[3] ^= 1
	tag[0] ^= 1
	if open(&key, &nonce, buf, aad, tag[:]) {
		t.Fatal("open accepted corrupted tag")
	}
	tag[0] ^= 1
	aad[0] ^= 1
	if open(&key, &nonce, buf, aad, tag[:]) {
		t.Fatal("open accepted corrupted AAD")
	}
}

// SipHash-2-4 reference vectors (Aumasson & Bernstein appendix): key
// 000102…0f over the prefix inputs 00 01 02 ….
func TestSipHashVectors(t *testing.T) {
	var in [8]byte
	for i := range in {
		in[i] = byte(i)
	}
	cases := []struct {
		n    int
		want uint64
	}{
		{0, 0x726fdb47dd0e0e31},
		{1, 0x74f839c593dc67fd},
		{8, 0x93f5f5799a932462},
	}
	const k0, k1 = 0x0706050403020100, 0x0f0e0d0c0b0a0908
	for _, c := range cases {
		if got := siphash(k0, k1, in[:c.n]); got != c.want {
			t.Errorf("siphash(len %d) = %#x, want %#x", c.n, got, c.want)
		}
	}
}

// RFC 4231 test case 1 pins the stack HMAC-SHA256.
func TestHMACSHA256RFC4231(t *testing.T) {
	key := bytes.Repeat([]byte{0x0b}, 20)
	want := unhex(t, "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7")
	got := hmacSHA256(key, []byte("Hi There"), nil)
	if !bytes.Equal(got[:], want) {
		t.Fatalf("hmac mismatch: got %x want %x", got, want)
	}
	// Two-part messages concatenate.
	got2 := hmacSHA256(key, []byte("Hi "), []byte("There"))
	if got2 != got {
		t.Fatal("split message changed the MAC")
	}
}

// RFC 5869 test case 1 pins extract and expand.
func TestHKDFRFC5869(t *testing.T) {
	ikm := bytes.Repeat([]byte{0x0b}, 22)
	salt := unhex(t, "000102030405060708090a0b0c")
	info := unhex(t, "f0f1f2f3f4f5f6f7f8f9")
	wantPRK := unhex(t, "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
	wantOKM := unhex(t, "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")

	prk := hkdfExtract(salt, ikm)
	if !bytes.Equal(prk[:], wantPRK) {
		t.Fatalf("PRK mismatch: got %x want %x", prk, wantPRK)
	}
	okm := make([]byte, len(wantOKM))
	hkdfExpand(&prk, info, okm)
	if !bytes.Equal(okm, wantOKM) {
		t.Fatalf("OKM mismatch: got %x want %x", okm, wantOKM)
	}
}
