package secure

import "sync"

// CookieSource mints and checks the stateless source-address cookies the
// listener side of the handshake uses against spoofed-source floods: a
// SipHash-2-4 of the requester's address under a secret key that rotates
// on a fixed interval. Verification accepts the current and the previous
// key, so a client has between one and two rotation intervals to echo its
// cookie back; an attacker replaying a captured handshake after that
// window is refused without any per-source state. The next key is derived
// from the current one by hashing a rotation label, so a deterministic
// seed gives a fully reproducible cookie sequence in tests.
type CookieSource struct {
	mu       sync.Mutex
	cur      [2]uint64
	prev     [2]uint64
	start    int64 // µs timestamp the current key became active
	interval int64 // µs between rotations
}

// DefaultCookieInterval is the key-rotation period (µs) listeners use: a
// cookie stays valid for one to two of these.
const DefaultCookieInterval = int64(30_000_000)

var rotateLabel = []byte("cookie rotate")

// NewCookieSource builds a cookie source keyed by seed with the given
// rotation interval in µs (DefaultCookieInterval when 0). The seed must be
// unpredictable in production; tests pass a fixed one for reproducibility.
func NewCookieSource(seed0, seed1 uint64, intervalUS int64) *CookieSource {
	if intervalUS <= 0 {
		intervalUS = DefaultCookieInterval
	}
	return &CookieSource{cur: [2]uint64{seed0, seed1}, interval: intervalUS}
}

// rotate advances the key schedule to cover now. Called under mu.
func (c *CookieSource) rotate(now int64) {
	for now-c.start >= c.interval {
		c.prev = c.cur
		c.cur = [2]uint64{
			siphash(c.cur[0], c.cur[1], rotateLabel),
			siphash(c.cur[1], c.cur[0], rotateLabel),
		}
		if c.start == 0 {
			c.start = now
		} else {
			c.start += c.interval
		}
		// After a long idle gap, jump instead of looping per interval.
		if now-c.start >= 2*c.interval {
			c.start = now
		}
	}
}

// Cookie returns the cookie for addr (the caller's wire-format source
// address bytes) at time now (µs). Allocation-free.
func (c *CookieSource) Cookie(now int64, addr []byte) uint64 {
	c.mu.Lock()
	c.rotate(now)
	k := c.cur
	c.mu.Unlock()
	return siphash(k[0], k[1], addr)
}

// Valid reports whether cookie is a current or previous-interval cookie
// for addr. Allocation-free.
func (c *CookieSource) Valid(now int64, addr []byte, cookie uint64) bool {
	c.mu.Lock()
	c.rotate(now)
	cur, prev := c.cur, c.prev
	c.mu.Unlock()
	return siphash(cur[0], cur[1], addr) == cookie || siphash(prev[0], prev[1], addr) == cookie
}
