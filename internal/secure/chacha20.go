package secure

import "encoding/binary"

// ChaCha20 stream cipher (RFC 8439 §2.3): 20 rounds over a 4×4 uint32
// state of constants ‖ key ‖ counter ‖ nonce. Only what the AEAD needs is
// implemented — block generation and in-place XOR — with no heap state.

// quarterRound is the ChaCha quarter round on four state words.
func quarterRound(a, b, c, d uint32) (uint32, uint32, uint32, uint32) {
	a += b
	d ^= a
	d = d<<16 | d>>16
	c += d
	b ^= c
	b = b<<12 | b>>20
	a += b
	d ^= a
	d = d<<8 | d>>24
	c += d
	b ^= c
	b = b<<7 | b>>25
	return a, b, c, d
}

// chachaInit fills st with the initial block state for key, nonce and
// block counter.
func chachaInit(st *[16]uint32, key *[KeyLen]byte, nonce *[12]byte, counter uint32) {
	st[0], st[1], st[2], st[3] = 0x61707865, 0x3320646e, 0x79622d32, 0x6b206574
	for i := 0; i < 8; i++ {
		st[4+i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	st[12] = counter
	st[13] = binary.LittleEndian.Uint32(nonce[0:])
	st[14] = binary.LittleEndian.Uint32(nonce[4:])
	st[15] = binary.LittleEndian.Uint32(nonce[8:])
}

// chachaBlock serializes one 64-byte keystream block from the initial
// state st into out.
func chachaBlock(st *[16]uint32, out *[64]byte) {
	var x [16]uint32 = *st
	for i := 0; i < 10; i++ {
		x[0], x[4], x[8], x[12] = quarterRound(x[0], x[4], x[8], x[12])
		x[1], x[5], x[9], x[13] = quarterRound(x[1], x[5], x[9], x[13])
		x[2], x[6], x[10], x[14] = quarterRound(x[2], x[6], x[10], x[14])
		x[3], x[7], x[11], x[15] = quarterRound(x[3], x[7], x[11], x[15])
		x[0], x[5], x[10], x[15] = quarterRound(x[0], x[5], x[10], x[15])
		x[1], x[6], x[11], x[12] = quarterRound(x[1], x[6], x[11], x[12])
		x[2], x[7], x[8], x[13] = quarterRound(x[2], x[7], x[8], x[13])
		x[3], x[4], x[9], x[14] = quarterRound(x[3], x[4], x[9], x[14])
	}
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(out[4*i:], x[i]+st[i])
	}
}

// chachaXOR XORs the ChaCha20 keystream for (key, nonce) starting at block
// counter into buf in place. Allocation-free.
func chachaXOR(key *[KeyLen]byte, nonce *[12]byte, counter uint32, buf []byte) {
	var st [16]uint32
	var ks [64]byte
	chachaInit(&st, key, nonce, counter)
	for len(buf) > 0 {
		chachaBlock(&st, &ks)
		st[12]++
		n := len(buf)
		if n > 64 {
			n = 64
		}
		for i := 0; i < n; i++ {
			buf[i] ^= ks[i]
		}
		buf = buf[n:]
	}
}
