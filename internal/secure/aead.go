package secure

import (
	"crypto/subtle"
	"encoding/binary"
)

// ChaCha20-Poly1305 AEAD composition (RFC 8439 §2.8): the one-time
// Poly1305 key is the first 32 bytes of ChaCha20 block 0, the plaintext is
// XORed with the stream from block 1, and the tag covers
// aad ‖ pad16 ‖ ciphertext ‖ pad16 ‖ len(aad) ‖ len(ciphertext).

var zeroPad [16]byte

// aeadTag computes the Poly1305 tag over aad and ct under the one-time key
// derived from (key, nonce).
func aeadTag(key *[KeyLen]byte, nonce *[12]byte, ct, aad []byte, tag *[16]byte) {
	var st [16]uint32
	var block [64]byte
	chachaInit(&st, key, nonce, 0)
	chachaBlock(&st, &block)
	var otk [32]byte
	copy(otk[:], block[:32])

	var p poly1305
	p.init(&otk)
	if len(aad) > 0 {
		p.update(aad)
		if pad := len(aad) % 16; pad != 0 {
			p.update(zeroPad[:16-pad])
		}
	}
	p.update(ct)
	if pad := len(ct) % 16; pad != 0 {
		p.update(zeroPad[:16-pad])
	}
	var lens [16]byte
	binary.LittleEndian.PutUint64(lens[0:], uint64(len(aad)))
	binary.LittleEndian.PutUint64(lens[8:], uint64(len(ct)))
	p.update(lens[:])
	p.finish(tag)
}

// seal encrypts buf in place under (key, nonce), authenticating aad
// alongside, and writes the 16-byte tag into tag. Allocation-free.
func seal(key *[KeyLen]byte, nonce *[12]byte, buf, aad, tag []byte) {
	chachaXOR(key, nonce, 1, buf)
	var t [16]byte
	aeadTag(key, nonce, buf, aad, &t)
	copy(tag, t[:])
}

// open verifies tag over (aad, buf) and, on success, decrypts buf in
// place. On failure buf is left untouched (still ciphertext) and open
// returns false. Allocation-free.
func open(key *[KeyLen]byte, nonce *[12]byte, buf, aad, tag []byte) bool {
	var want [16]byte
	aeadTag(key, nonce, buf, aad, &want)
	if subtle.ConstantTimeCompare(want[:], tag) != 1 {
		return false
	}
	chachaXOR(key, nonce, 1, buf)
	return true
}
