package secure

import (
	"crypto/sha256"
)

// HKDF-SHA256 (RFC 5869) and a stack-only HMAC-SHA256 for short messages.
// The HMAC avoids crypto/hmac's per-call hash allocations by assembling
// ipad ‖ message in a fixed stack buffer and using sha256.Sum256, which
// keeps handshake-MAC verification — the path a spoofed-source flood
// hammers — allocation-free.

// hmacMaxMsg bounds the message length the stack HMAC accepts. Handshake
// bodies are under 128 bytes; anything longer is a programming error.
const hmacMaxMsg = 192

// hmacSHA256 computes HMAC-SHA256(key, m1 ‖ m2) entirely on the stack.
// len(m1)+len(m2) must not exceed hmacMaxMsg.
func hmacSHA256(key, m1, m2 []byte) [32]byte {
	if len(m1)+len(m2) > hmacMaxMsg {
		panic("secure: hmacSHA256 message too long")
	}
	var k [64]byte
	if len(key) > 64 {
		d := sha256.Sum256(key)
		copy(k[:], d[:])
	} else {
		copy(k[:], key)
	}
	var in [64 + hmacMaxMsg]byte
	for i := 0; i < 64; i++ {
		in[i] = k[i] ^ 0x36
	}
	n := 64 + copy(in[64:], m1)
	n += copy(in[n:], m2)
	inner := sha256.Sum256(in[:n])
	var out [64 + 32]byte
	for i := 0; i < 64; i++ {
		out[i] = k[i] ^ 0x5c
	}
	copy(out[64:], inner[:])
	return sha256.Sum256(out[:])
}

// hkdfExtract computes PRK = HMAC(salt, ikm).
func hkdfExtract(salt, ikm []byte) [32]byte {
	if len(ikm) <= hmacMaxMsg {
		return hmacSHA256(salt, ikm, nil)
	}
	// Long keys take the allocating path; extraction happens once per
	// endpoint, never per packet.
	var k [64]byte
	copy(k[:], salt)
	var ipad, opad [64]byte
	for i := range k {
		ipad[i] = k[i] ^ 0x36
		opad[i] = k[i] ^ 0x5c
	}
	h := sha256.New()
	h.Write(ipad[:])
	h.Write(ikm)
	inner := h.Sum(nil)
	h = sha256.New()
	h.Write(opad[:])
	h.Write(inner)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// hkdfExpand fills out with HKDF-Expand(prk, info) output keying material.
// len(out) must not exceed 255×32 bytes (RFC 5869); callers here stay
// under three blocks.
func hkdfExpand(prk *[32]byte, info []byte, out []byte) {
	var t [32]byte
	first := true
	ctr := byte(1)
	for len(out) > 0 {
		var msg [32 + hmacMaxMsg]byte
		n := 0
		if !first {
			n = copy(msg[:], t[:])
		}
		n += copy(msg[n:], info)
		msg[n] = ctr
		n++
		t = hmacSHA256(prk[:], msg[:n], nil)
		k := copy(out, t[:])
		out = out[k:]
		first = false
		ctr++
	}
}
