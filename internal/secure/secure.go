// Package secure implements the Secure UDT subsystem: an authenticated
// handshake extension, a stateless source-address cookie against
// spoofed-source handshake floods, and an opt-in AEAD data channel
// (ChaCha20-Poly1305) with per-direction keys derived from the pre-shared
// key and the handshake nonces via HKDF-SHA256.
//
// Everything on the per-packet hot path — sealing, opening, replay
// checking, cookie validation and handshake-MAC verification — is
// allocation-free after setup, so the transport's 0 allocs/packet gate
// holds with crypto enabled. The primitives (ChaCha20, Poly1305, SipHash,
// HKDF) are implemented here because the module deliberately has no
// dependencies; test vectors from RFC 8439, RFC 5869 and the SipHash paper
// pin them.
//
// Key schedule (all HKDF-SHA256):
//
//	PRK      = HKDF-Extract(salt="udt-secure-v1", IKM=PSK)
//	hsKey    = HKDF-Expand(PRK, "hs auth", 32)
//	c2s‖s2c  = HKDF-Expand(PRK, "data keys" ‖ CN ‖ SN, 64)
//
// where CN and SN are the 16-byte client and server handshake nonces. The
// handshake MAC is HMAC-SHA256(hsKey, body ‖ peerNonce) over the encoded
// handshake body with its MAC field zeroed; a response binds the
// requester's nonce, so a reflected or replayed response fails
// verification.
package secure

import (
	"crypto/subtle"
	"encoding/binary"
	"sync/atomic"
)

// Wire-format costs and field sizes.
const (
	// Overhead is the per-data-packet byte cost of AEAD mode: the
	// Poly1305 tag appended after the sealed payload. The data header
	// (sequence number and timestamp) stays in the clear — the sequence
	// number is bound through the nonce, and the timestamp is neither
	// read by the receive engine nor authenticated (see the threat model
	// in DESIGN.md).
	Overhead = 16
	// CtrlOverhead is the per-control-packet byte cost of AEAD mode: an
	// 8-byte control sequence number (the anti-replay counter, also the
	// nonce) plus the Poly1305 tag. The 12-byte control header stays in
	// the clear for demultiplexing but is covered as associated data.
	CtrlOverhead = 8 + 16
	// HSNonceLen is the length of the random nonce each side contributes
	// in its handshake for session-key derivation.
	HSNonceLen = 16
	// MACLen is the length of the handshake authenticator (HMAC-SHA256).
	MACLen = 32
	// CookieLen is the length of the stateless source-address cookie.
	CookieLen = 8
	// KeyLen is the length of a ChaCha20-Poly1305 key.
	KeyLen = 32
)

// SecFlags bits advertised and granted in the handshake extension.
const (
	// FlagAuth marks a handshake carrying the authentication option
	// (nonce, cookie, MAC). It is set on every secure handshake.
	FlagAuth uint32 = 1 << 0
	// FlagAEAD requests (in a dial) or grants (in a response) the sealed
	// data channel.
	FlagAEAD uint32 = 1 << 1
)

// Keys holds the key material derived from a pre-shared key: the
// handshake-authentication key and the master PRK that session keys are
// expanded from. Deriving Keys once per endpoint amortizes the HKDF
// extract over every connection.
type Keys struct {
	hs  [32]byte
	prk [32]byte
}

// DeriveKeys runs the key schedule's extract step over the pre-shared key.
func DeriveKeys(psk []byte) *Keys {
	k := &Keys{}
	k.prk = hkdfExtract([]byte("udt-secure-v1"), psk)
	hkdfExpand(&k.prk, []byte("hs auth"), k.hs[:])
	return k
}

// HandshakeMAC computes the authenticator over an encoded handshake body
// (with its MAC field zeroed by the caller) bound to the peer's nonce:
// HMAC-SHA256(hsKey, body ‖ peerNonce). For an initial request, where no
// peer nonce exists yet, peerNonce is empty. Allocation-free.
func (k *Keys) HandshakeMAC(body, peerNonce []byte) [32]byte {
	return hmacSHA256(k.hs[:], body, peerNonce)
}

// VerifyHandshakeMAC checks mac against HandshakeMAC(body, peerNonce) in
// constant time. Allocation-free.
func (k *Keys) VerifyHandshakeMAC(body, peerNonce, mac []byte) bool {
	want := k.HandshakeMAC(body, peerNonce)
	return subtle.ConstantTimeCompare(want[:], mac) == 1
}

// SessionKeys expands the per-connection directional keys from the two
// handshake nonces: the first key seals client→server traffic, the second
// server→client.
func (k *Keys) SessionKeys(clientNonce, serverNonce []byte) (c2s, s2c [KeyLen]byte) {
	var info [9 + 2*HSNonceLen]byte
	n := copy(info[:], "data keys")
	n += copy(info[n:], clientNonce)
	copy(info[n:], serverNonce)
	var out [2 * KeyLen]byte
	hkdfExpand(&k.prk, info[:], out[:])
	copy(c2s[:], out[:KeyLen])
	copy(s2c[:], out[KeyLen:])
	return c2s, s2c
}

// epochTracker infers the 32-bit nonce epoch of a 31-bit wrapping data
// sequence number. Both directions of a flow run the same deterministic
// rule, so no epoch bytes travel on the wire: a sequence circularly ahead
// of the newest one seen but numerically smaller has wrapped into the next
// epoch; one circularly behind but numerically larger (a retransmission
// from just before a wrap) belongs to the previous epoch.
type epochTracker struct {
	epoch uint32
	ref   int32
}

// epochOf returns seq's epoch without mutating the tracker, so an
// unauthenticated (possibly attacker-chosen) sequence number cannot
// corrupt the inference state; newer reports whether seq would become the
// newest sequence observed, in which case the caller commits it — only
// after the packet authenticates.
func (t *epochTracker) epochOf(seq int32) (e uint32, newer bool) {
	e = t.epoch
	switch {
	case seqCmp(seq, t.ref) > 0:
		if seq < t.ref {
			e++
		}
		return e, true
	case seq > t.ref:
		e--
	}
	return e, false
}

// commit records seq as the newest authenticated sequence in epoch e.
func (t *epochTracker) commit(seq int32, e uint32) {
	t.epoch, t.ref = e, seq
}

// seqCmp is seqno.Cmp, duplicated here to keep the package dependency-free
// (it is pinned equal to the real one by a test).
func seqCmp(a, b int32) int {
	const threshold = 0x3FFFFFFF
	d := a - b
	if d > threshold || d < -threshold {
		d = b - a
	}
	switch {
	case d < 0:
		return -1
	case d > 0:
		return 1
	default:
		return 0
	}
}

// Session is the per-connection sealing state: one directional key and
// nonce tracker per direction, a send counter for the authenticated
// control channel, and an anti-replay window over the peer's control
// counter. Data-packet nonces are epoch ‖ seqno ‖ 0x00…, control nonces
// ctrlseq ‖ 0x01…, so the two channels never collide under the shared
// directional key. Retransmitted data packets re-seal to byte-identical
// ciphertext (same nonce, same plaintext — the cleartext timestamp is
// excluded from AEAD coverage precisely so a resend is not a second
// message under a reused nonce).
//
// A Session is not internally locked: the sender-side methods (SealData,
// SealCtrl) must be serialized by the caller, as must the receiver-side
// methods (OpenData, OpenCtrl). The two sides may run concurrently with
// each other.
type Session struct {
	sendKey [KeyLen]byte
	recvKey [KeyLen]byte

	sendEpoch epochTracker
	recvEpoch epochTracker

	ctrlSend uint64
	recvWin  Window

	aead bool

	// Drop counters are atomics so a stats snapshot may read them while
	// the receive path is counting.
	authFail   atomic.Uint64
	replayDrop atomic.Uint64
}

// NewSession builds the sealing state for one connection. client reports
// which side this endpoint played in the handshake (it selects which
// directional key seals outbound traffic); localISN and peerISN seed the
// epoch trackers with each direction's initial sequence number; aead
// reports whether the data channel is sealed (the control channel always
// is once a Session exists).
func NewSession(k *Keys, clientNonce, serverNonce []byte, client bool, localISN, peerISN int32, aead bool) *Session {
	c2s, s2c := k.SessionKeys(clientNonce, serverNonce)
	s := &Session{aead: aead}
	if client {
		s.sendKey, s.recvKey = c2s, s2c
	} else {
		s.sendKey, s.recvKey = s2c, c2s
	}
	s.sendEpoch.ref = localISN
	s.recvEpoch.ref = peerISN
	return s
}

// AEAD reports whether the data channel is sealed (as opposed to only the
// control channel and handshake being authenticated).
func (s *Session) AEAD() bool { return s.aead }

// Drops returns the cumulative receive-side rejection counters: packets
// that failed authentication and authenticated control packets dropped as
// replays.
func (s *Session) Drops() (authFail, replays uint64) {
	return s.authFail.Load(), s.replayDrop.Load()
}

// dataNonce assembles the 12-byte data-packet nonce epoch ‖ seq ‖ 0x00.
func dataNonce(n *[12]byte, epoch uint32, seq int32) {
	binary.LittleEndian.PutUint32(n[0:4], epoch)
	binary.LittleEndian.PutUint32(n[4:8], uint32(seq))
	n[8], n[9], n[10], n[11] = 0, 0, 0, 0
}

// ctrlNonce assembles the 12-byte control-packet nonce ctrlseq ‖ 0x01.
func ctrlNonce(n *[12]byte, seq uint64) {
	binary.LittleEndian.PutUint64(n[0:8], seq)
	n[8], n[9], n[10], n[11] = 1, 0, 0, 0
}

// SealData seals a full data packet (8-byte clear header + payload) in
// place, appending the Poly1305 tag, and returns the grown slice. pkt must
// have at least Overhead bytes of spare capacity. Allocation-free.
func (s *Session) SealData(pkt []byte) []byte {
	seq := int32(binary.BigEndian.Uint32(pkt[0:4]) & 0x7FFFFFFF)
	e, newer := s.sendEpoch.epochOf(seq)
	if newer {
		s.sendEpoch.commit(seq, e)
	}
	var nonce [12]byte
	dataNonce(&nonce, e, seq)
	n := len(pkt)
	out := pkt[:n+Overhead]
	seal(&s.sendKey, &nonce, out[8:n], nil, out[n:])
	return out
}

// OpenData authenticates and decrypts a sealed data packet in place and
// returns the packet shrunk to its plaintext length. ok is false — and the
// packet must be dropped — when the packet is too short or fails
// authentication. Duplicate (retransmitted) data packets open fine and are
// passed through: protocol-level deduplication is the engine's job, and
// its dup-triggered re-ACK is load-bearing. Allocation-free.
func (s *Session) OpenData(pkt []byte) (out []byte, ok bool) {
	if len(pkt) < 8+Overhead {
		s.authFail.Add(1)
		return nil, false
	}
	seq := int32(binary.BigEndian.Uint32(pkt[0:4]) & 0x7FFFFFFF)
	e, newer := s.recvEpoch.epochOf(seq)
	var nonce [12]byte
	dataNonce(&nonce, e, seq)
	n := len(pkt) - Overhead
	if !open(&s.recvKey, &nonce, pkt[8:n], nil, pkt[n:]) {
		s.authFail.Add(1)
		return nil, false
	}
	if newer {
		s.recvEpoch.commit(seq, e)
	}
	return pkt[:n], true
}

// SealCtrl seals a control packet in place: the 12-byte header stays clear
// (it is covered as associated data), the body is encrypted, and an 8-byte
// control sequence number plus the tag are appended. pkt must have at
// least CtrlOverhead bytes of spare capacity. Allocation-free.
func (s *Session) SealCtrl(pkt []byte) []byte {
	s.ctrlSend++
	var nonce [12]byte
	ctrlNonce(&nonce, s.ctrlSend)
	n := len(pkt)
	out := pkt[:n+CtrlOverhead]
	binary.LittleEndian.PutUint64(out[n:n+8], s.ctrlSend)
	seal(&s.sendKey, &nonce, out[12:n], out[:12], out[n+8:])
	return out
}

// OpenCtrl authenticates, decrypts and replay-checks a sealed control
// packet in place, returning the packet shrunk to its plaintext length.
// ok is false — drop the packet — when it is short, fails authentication,
// or its control sequence number was already accepted (a replay, e.g. an
// off-path attacker re-injecting a captured shutdown). Allocation-free.
func (s *Session) OpenCtrl(pkt []byte) (out []byte, ok bool) {
	if len(pkt) < 12+CtrlOverhead {
		s.authFail.Add(1)
		return nil, false
	}
	n := len(pkt) - CtrlOverhead
	seq := binary.LittleEndian.Uint64(pkt[n : n+8])
	var nonce [12]byte
	ctrlNonce(&nonce, seq)
	if !open(&s.recvKey, &nonce, pkt[12:n], pkt[:12], pkt[n+8:]) {
		s.authFail.Add(1)
		return nil, false
	}
	if !s.recvWin.Admit(seq) {
		s.replayDrop.Add(1)
		return nil, false
	}
	return pkt[:n], true
}
