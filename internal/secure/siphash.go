package secure

import "encoding/binary"

// SipHash-2-4 (Aumasson & Bernstein): the keyed 64-bit PRF behind the
// stateless source-address cookie. Short-input speed is the point — a
// cookie check costs a few dozen nanoseconds, far under the HMAC the
// handshake MAC needs, so it runs first on the flood path.

// sipRound is one SipRound over the four state words.
func sipRound(v0, v1, v2, v3 uint64) (uint64, uint64, uint64, uint64) {
	v0 += v1
	v1 = v1<<13 | v1>>51
	v1 ^= v0
	v0 = v0<<32 | v0>>32
	v2 += v3
	v3 = v3<<16 | v3>>48
	v3 ^= v2
	v0 += v3
	v3 = v3<<21 | v3>>43
	v3 ^= v0
	v2 += v1
	v1 = v1<<17 | v1>>47
	v1 ^= v2
	v2 = v2<<32 | v2>>32
	return v0, v1, v2, v3
}

// siphash computes SipHash-2-4 of m under the 128-bit key (k0, k1).
// Allocation-free.
func siphash(k0, k1 uint64, m []byte) uint64 {
	v0 := k0 ^ 0x736f6d6570736575
	v1 := k1 ^ 0x646f72616e646f6d
	v2 := k0 ^ 0x6c7967656e657261
	v3 := k1 ^ 0x7465646279746573

	total := uint64(len(m))
	for len(m) >= 8 {
		w := binary.LittleEndian.Uint64(m)
		v3 ^= w
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0 ^= w
		m = m[8:]
	}
	var last uint64
	for i := len(m) - 1; i >= 0; i-- {
		last = last<<8 | uint64(m[i])
	}
	last |= total << 56
	v3 ^= last
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0 ^= last

	v2 ^= 0xff
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	return v0 ^ v1 ^ v2 ^ v3
}
