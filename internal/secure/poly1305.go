package secure

import "encoding/binary"

// Poly1305 one-time authenticator (RFC 8439 §2.5), in the classic 26-bit
// limb formulation (poly1305-donna-32): five-limb accumulator and radix
// with 64-bit intermediate products, so the whole MAC runs on the stack.

// poly1305 is the incremental MAC state. The zero value is not usable;
// call init with the 32-byte one-time key first.
type poly1305 struct {
	r   [5]uint32
	h   [5]uint32
	pad [4]uint32
	buf [16]byte
	n   int
}

// init loads the clamped r part and the final pad from the one-time key.
func (p *poly1305) init(key *[32]byte) {
	p.r[0] = binary.LittleEndian.Uint32(key[0:]) & 0x3ffffff
	p.r[1] = (binary.LittleEndian.Uint32(key[3:]) >> 2) & 0x3ffff03
	p.r[2] = (binary.LittleEndian.Uint32(key[6:]) >> 4) & 0x3ffc0ff
	p.r[3] = (binary.LittleEndian.Uint32(key[9:]) >> 6) & 0x3f03fff
	p.r[4] = (binary.LittleEndian.Uint32(key[12:]) >> 8) & 0x00fffff
	for i := 0; i < 4; i++ {
		p.pad[i] = binary.LittleEndian.Uint32(key[16+4*i:])
	}
	p.h = [5]uint32{}
	p.n = 0
}

// blocks folds full 16-byte blocks of m into the accumulator; hibit is
// 1<<24 for full blocks and 0 for the padded final partial block.
func (p *poly1305) blocks(m []byte, hibit uint32) {
	r0, r1, r2, r3, r4 := p.r[0], p.r[1], p.r[2], p.r[3], p.r[4]
	s1, s2, s3, s4 := r1*5, r2*5, r3*5, r4*5
	h0, h1, h2, h3, h4 := p.h[0], p.h[1], p.h[2], p.h[3], p.h[4]
	for len(m) >= 16 {
		h0 += binary.LittleEndian.Uint32(m[0:]) & 0x3ffffff
		h1 += (binary.LittleEndian.Uint32(m[3:]) >> 2) & 0x3ffffff
		h2 += (binary.LittleEndian.Uint32(m[6:]) >> 4) & 0x3ffffff
		h3 += (binary.LittleEndian.Uint32(m[9:]) >> 6) & 0x3ffffff
		h4 += (binary.LittleEndian.Uint32(m[12:]) >> 8) | hibit

		d0 := uint64(h0)*uint64(r0) + uint64(h1)*uint64(s4) + uint64(h2)*uint64(s3) + uint64(h3)*uint64(s2) + uint64(h4)*uint64(s1)
		d1 := uint64(h0)*uint64(r1) + uint64(h1)*uint64(r0) + uint64(h2)*uint64(s4) + uint64(h3)*uint64(s3) + uint64(h4)*uint64(s2)
		d2 := uint64(h0)*uint64(r2) + uint64(h1)*uint64(r1) + uint64(h2)*uint64(r0) + uint64(h3)*uint64(s4) + uint64(h4)*uint64(s3)
		d3 := uint64(h0)*uint64(r3) + uint64(h1)*uint64(r2) + uint64(h2)*uint64(r1) + uint64(h3)*uint64(r0) + uint64(h4)*uint64(s4)
		d4 := uint64(h0)*uint64(r4) + uint64(h1)*uint64(r3) + uint64(h2)*uint64(r2) + uint64(h3)*uint64(r1) + uint64(h4)*uint64(r0)

		c := d0 >> 26
		h0 = uint32(d0) & 0x3ffffff
		d1 += c
		c = d1 >> 26
		h1 = uint32(d1) & 0x3ffffff
		d2 += c
		c = d2 >> 26
		h2 = uint32(d2) & 0x3ffffff
		d3 += c
		c = d3 >> 26
		h3 = uint32(d3) & 0x3ffffff
		d4 += c
		c = d4 >> 26
		h4 = uint32(d4) & 0x3ffffff
		h0 += uint32(c) * 5
		c2 := h0 >> 26
		h0 &= 0x3ffffff
		h1 += c2

		m = m[16:]
	}
	p.h[0], p.h[1], p.h[2], p.h[3], p.h[4] = h0, h1, h2, h3, h4
}

// update feeds m into the MAC, buffering any trailing partial block.
func (p *poly1305) update(m []byte) {
	if p.n > 0 {
		k := copy(p.buf[p.n:], m)
		p.n += k
		m = m[k:]
		if p.n < 16 {
			return
		}
		p.blocks(p.buf[:], 1<<24)
		p.n = 0
	}
	if full := len(m) &^ 15; full > 0 {
		p.blocks(m[:full], 1<<24)
		m = m[full:]
	}
	p.n = copy(p.buf[:], m)
}

// finish completes the MAC into tag.
func (p *poly1305) finish(tag *[16]byte) {
	if p.n > 0 {
		p.buf[p.n] = 1
		for i := p.n + 1; i < 16; i++ {
			p.buf[i] = 0
		}
		p.blocks(p.buf[:], 0)
	}

	h0, h1, h2, h3, h4 := p.h[0], p.h[1], p.h[2], p.h[3], p.h[4]
	c := h1 >> 26
	h1 &= 0x3ffffff
	h2 += c
	c = h2 >> 26
	h2 &= 0x3ffffff
	h3 += c
	c = h3 >> 26
	h3 &= 0x3ffffff
	h4 += c
	c = h4 >> 26
	h4 &= 0x3ffffff
	h0 += c * 5
	c = h0 >> 26
	h0 &= 0x3ffffff
	h1 += c

	// Compute h + -p and select it when h >= p.
	g0 := h0 + 5
	c = g0 >> 26
	g0 &= 0x3ffffff
	g1 := h1 + c
	c = g1 >> 26
	g1 &= 0x3ffffff
	g2 := h2 + c
	c = g2 >> 26
	g2 &= 0x3ffffff
	g3 := h3 + c
	c = g3 >> 26
	g3 &= 0x3ffffff
	g4 := h4 + c - (1 << 26)

	mask := (g4 >> 31) - 1 // all ones when h >= p, else zero
	h0 = h0&^mask | g0&mask
	h1 = h1&^mask | g1&mask
	h2 = h2&^mask | g2&mask
	h3 = h3&^mask | g3&mask
	h4 = h4&^mask | g4&mask

	// h = h % 2^128, then h += pad with 32-bit carries.
	f0 := uint64(h0|h1<<26) + uint64(p.pad[0])
	f1 := uint64(h1>>6|h2<<20) + uint64(p.pad[1]) + f0>>32
	f2 := uint64(h2>>12|h3<<14) + uint64(p.pad[2]) + f1>>32
	f3 := uint64(h3>>18|h4<<8) + uint64(p.pad[3]) + f2>>32
	binary.LittleEndian.PutUint32(tag[0:], uint32(f0))
	binary.LittleEndian.PutUint32(tag[4:], uint32(f1))
	binary.LittleEndian.PutUint32(tag[8:], uint32(f2))
	binary.LittleEndian.PutUint32(tag[12:], uint32(f3))
}
