package secure

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"udt/internal/seqno"
)

// makeSessions builds the two ends of one secured flow.
func makeSessions(aead bool, clientISN, serverISN int32) (client, server *Session) {
	k := DeriveKeys([]byte("test psk"))
	cn := bytes.Repeat([]byte{1}, HSNonceLen)
	sn := bytes.Repeat([]byte{2}, HSNonceLen)
	client = NewSession(k, cn, sn, true, clientISN, serverISN, aead)
	server = NewSession(k, cn, sn, false, serverISN, clientISN, aead)
	return client, server
}

// dataPacket encodes a minimal data packet: seq, timestamp, payload.
func dataPacket(seq int32, ts uint32, payload []byte) []byte {
	b := make([]byte, 8+len(payload), 8+len(payload)+Overhead)
	binary.BigEndian.PutUint32(b[0:], uint32(seq))
	binary.BigEndian.PutUint32(b[4:], ts)
	copy(b[8:], payload)
	return b
}

func TestSealOpenDataRoundtrip(t *testing.T) {
	c, s := makeSessions(true, 100, 5000)
	payload := []byte("the quick brown fox")
	pkt := dataPacket(100, 42, payload)
	sealed := c.SealData(pkt)
	if len(sealed) != 8+len(payload)+Overhead {
		t.Fatalf("sealed length %d", len(sealed))
	}
	if bytes.Contains(sealed, payload) {
		t.Fatal("payload visible in sealed packet")
	}
	plain, ok := s.OpenData(sealed)
	if !ok {
		t.Fatal("open failed")
	}
	if !bytes.Equal(plain[8:], payload) {
		t.Fatalf("payload mismatch: %q", plain[8:])
	}

	// Tampering with the sequence number changes the nonce: refused.
	pkt2 := c.SealData(dataPacket(101, 43, payload))
	binary.BigEndian.PutUint32(pkt2[0:], 102)
	if _, ok := s.OpenData(pkt2); ok {
		t.Fatal("accepted packet with altered seqno")
	}
	if af, _ := s.Drops(); af != 1 {
		t.Fatalf("authFail = %d, want 1", af)
	}

	// A replayed (duplicate) data packet opens fine — dedup is the
	// engine's job and its dup-triggered re-ACK depends on seeing it.
	pkt3 := c.SealData(dataPacket(103, 44, payload))
	dup := append([]byte(nil), pkt3...)
	if _, ok := s.OpenData(pkt3); !ok {
		t.Fatal("first copy refused")
	}
	if _, ok := s.OpenData(dup); !ok {
		t.Fatal("duplicate data packet refused — engine dedup starved")
	}
}

// A retransmission — the same seq and payload sealed again after newer
// packets, even across a wrap — must produce byte-identical ciphertext:
// the nonce repeats but so does the message, so no new information leaks
// and chaos replay stays bit-identical.
func TestRetransmissionSealsIdentically(t *testing.T) {
	isn := seqno.Max - 2
	c, s := makeSessions(true, isn, 0)
	payload := []byte("retransmit me")
	first := append([]byte(nil), c.SealData(dataPacket(isn, 7, payload))...)
	// Advance across the 31-bit wrap.
	for i := 1; i <= 4; i++ {
		sq := seqno.Add(isn, int32(i))
		got, ok := s.OpenData(c.SealData(dataPacket(sq, 7, payload)))
		if !ok {
			t.Fatalf("packet %d refused across wrap", i)
		}
		if !bytes.Equal(got[8:], payload) {
			t.Fatalf("packet %d corrupted", i)
		}
	}
	// Now retransmit the pre-wrap seq: same bytes as the original seal,
	// and the (post-wrap) receiver still opens it.
	again := c.SealData(dataPacket(isn, 7, payload))
	if !bytes.Equal(first, again) {
		t.Fatalf("retransmission not byte-identical:\n%x\n%x", first, again)
	}
	if _, ok := s.OpenData(again); !ok {
		t.Fatal("receiver refused pre-wrap retransmission")
	}
}

// Epoch inference survives long runs crossing several wraps.
func TestEpochInferenceAcrossWraps(t *testing.T) {
	c, s := makeSessions(true, seqno.Max-10, 0)
	seq := seqno.Max - 10
	payload := []byte("x")
	for i := 0; i < 50; i++ {
		if _, ok := s.OpenData(c.SealData(dataPacket(seq, 0, payload))); !ok {
			t.Fatalf("refused at step %d seq %d", i, seq)
		}
		seq = seqno.Add(seq, seqno.Max/3) // giant strides force wraps fast
	}
}

// An unauthenticated garbage header must not poison the receiver's epoch
// tracker: genuine traffic keeps flowing after a spoof attempt.
func TestSpoofedHeaderDoesNotPoisonEpoch(t *testing.T) {
	c, s := makeSessions(true, 0, 0)
	payload := []byte("legit")
	if _, ok := s.OpenData(c.SealData(dataPacket(0, 0, payload))); !ok {
		t.Fatal("baseline packet refused")
	}
	// Forged packet claiming a far-future, wrap-adjacent seq.
	forged := dataPacket(seqno.Max-1, 0, []byte("evil"))
	forged = forged[:len(forged)+Overhead] // junk tag
	if _, ok := s.OpenData(forged); ok {
		t.Fatal("forgery accepted")
	}
	for i := int32(1); i < 5; i++ {
		if _, ok := s.OpenData(c.SealData(dataPacket(i, 0, payload))); !ok {
			t.Fatalf("genuine packet %d refused after spoof", i)
		}
	}
}

func TestSealOpenCtrlRoundtripAndReplay(t *testing.T) {
	c, s := makeSessions(false, 0, 0)
	mk := func(body string) []byte {
		b := make([]byte, 12+len(body), 12+len(body)+CtrlOverhead)
		binary.BigEndian.PutUint32(b[0:], 1<<31|2<<16) // ACK-ish header
		copy(b[12:], body)
		return b
	}
	sealed := c.SealCtrl(mk("ack body"))
	replay := append([]byte(nil), sealed...)
	plain, ok := s.OpenCtrl(sealed)
	if !ok {
		t.Fatal("open failed")
	}
	if string(plain[12:]) != "ack body" {
		t.Fatalf("body mismatch: %q", plain[12:])
	}
	// The exact same wire bytes again: replay, refused.
	if _, ok := s.OpenCtrl(replay); ok {
		t.Fatal("replayed control packet accepted")
	}
	if _, rep := s.Drops(); rep != 1 {
		t.Fatalf("replayDrop = %d, want 1", rep)
	}
	// Header tampering breaks the AAD coverage.
	sealed2 := c.SealCtrl(mk("nak body"))
	sealed2[2] ^= 0xff
	if _, ok := s.OpenCtrl(sealed2); ok {
		t.Fatal("accepted control packet with altered header")
	}
	// Empty-body control packets (keepalive, shutdown) work too.
	sealed3 := c.SealCtrl(mk(""))
	if _, ok := s.OpenCtrl(sealed3); !ok {
		t.Fatal("empty-body control packet refused")
	}
}

// Directional keys must differ: a packet a client sealed cannot be opened
// as if the server had sent it (no reflection).
func TestDirectionalKeys(t *testing.T) {
	c, _ := makeSessions(true, 0, 0)
	c2, _ := makeSessions(true, 0, 0)
	pkt := c.SealData(dataPacket(0, 0, []byte("hello")))
	if _, ok := c2.OpenData(pkt); ok {
		t.Fatal("client opened a client-sealed packet: directions share a key")
	}
}

func TestWindowEdgeCases(t *testing.T) {
	var w Window
	if !w.Admit(0) {
		t.Fatal("first seq 0 refused")
	}
	if w.Admit(0) {
		t.Fatal("duplicate seq 0 accepted")
	}
	if !w.Admit(5) || w.Admit(5) {
		t.Fatal("in-window behavior wrong at 5")
	}
	// Large forward jump clears the ring.
	if !w.Admit(100000) {
		t.Fatal("forward jump refused")
	}
	// Reordered but in-window: accept once.
	if !w.Admit(100000 - WindowSize + 1) {
		t.Fatal("in-window old seq refused")
	}
	if w.Admit(100000 - WindowSize + 1) {
		t.Fatal("in-window old seq accepted twice")
	}
	// Beyond the window: refused even though never seen.
	if w.Admit(100000 - WindowSize) {
		t.Fatal("stale seq accepted")
	}
	// Sliding by exactly one ring word keeps older in-window bits.
	var w2 Window
	for i := uint64(0); i < 64; i++ {
		if !w2.Admit(i) {
			t.Fatalf("seq %d refused", i)
		}
	}
	if !w2.Admit(64 + 63) {
		t.Fatal("head advance refused")
	}
	if w2.Admit(63) {
		t.Fatal("old duplicate accepted after word advance")
	}
	if !w2.Admit(70) {
		t.Fatal("fresh in-window seq refused after word advance")
	}
}

func TestCookieSource(t *testing.T) {
	cs := NewCookieSource(1, 2, 1_000_000)
	addr := []byte("10.0.0.1:9000")
	now := int64(50_000)
	ck := cs.Cookie(now, addr)
	if !cs.Valid(now, addr, ck) {
		t.Fatal("fresh cookie invalid")
	}
	if cs.Valid(now, []byte("10.0.0.2:9000"), ck) {
		t.Fatal("cookie valid for a different source")
	}
	if cs.Valid(now, addr, ck^1) {
		t.Fatal("flipped cookie accepted")
	}
	// Still valid one rotation later (previous-key grace)…
	if !cs.Valid(now+1_000_000, addr, ck) {
		t.Fatal("cookie dead after one rotation")
	}
	// …but not after two.
	if cs.Valid(now+2_000_001, addr, ck) {
		t.Fatal("cookie alive after two rotations")
	}
}

func TestHandshakeMACBindsPeerNonce(t *testing.T) {
	k := DeriveKeys([]byte("psk"))
	body := []byte("handshake body bytes")
	nonce := bytes.Repeat([]byte{9}, HSNonceLen)
	mac := k.HandshakeMAC(body, nonce)
	if !k.VerifyHandshakeMAC(body, nonce, mac[:]) {
		t.Fatal("self-verify failed")
	}
	other := bytes.Repeat([]byte{8}, HSNonceLen)
	if k.VerifyHandshakeMAC(body, other, mac[:]) {
		t.Fatal("MAC valid under a different peer nonce")
	}
	k2 := DeriveKeys([]byte("psk2"))
	if k2.VerifyHandshakeMAC(body, nonce, mac[:]) {
		t.Fatal("MAC valid under a different PSK")
	}
}

// The package-local seqCmp must stay pinned to seqno.Cmp.
func TestSeqCmpMatchesSeqno(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		a := rng.Int31()
		b := rng.Int31()
		if seqCmp(a, b) != seqno.Cmp(a, b) {
			t.Fatalf("seqCmp(%d,%d) = %d, seqno.Cmp = %d", a, b, seqCmp(a, b), seqno.Cmp(a, b))
		}
	}
}

// Every hot-path operation must be allocation-free after setup: these are
// the primitives under the transport's 0 allocs/packet gate.
func TestHotPathAllocs(t *testing.T) {
	c, s := makeSessions(true, 0, 0)
	payload := bytes.Repeat([]byte{0xAB}, 1400)
	pkt := dataPacket(0, 0, payload)
	seq := int32(0)
	if n := testing.AllocsPerRun(200, func() {
		binary.BigEndian.PutUint32(pkt[0:], uint32(seq))
		sealed := c.SealData(pkt[:8+len(payload)])
		if _, ok := s.OpenData(sealed); !ok {
			t.Fatal("open failed")
		}
		seq++
	}); n != 0 {
		t.Fatalf("data seal/open allocates %v/op", n)
	}

	ctrl := make([]byte, 12+16, 12+16+CtrlOverhead)
	binary.BigEndian.PutUint32(ctrl[0:], 1<<31|2<<16)
	if n := testing.AllocsPerRun(200, func() {
		sealed := c.SealCtrl(ctrl[:12+16])
		if _, ok := s.OpenCtrl(sealed); !ok {
			t.Fatal("ctrl open failed")
		}
	}); n != 0 {
		t.Fatalf("ctrl seal/open allocates %v/op", n)
	}

	cs := NewCookieSource(1, 2, 0)
	addr := []byte("192.0.2.1:4242")
	if n := testing.AllocsPerRun(200, func() {
		ck := cs.Cookie(1000, addr)
		if !cs.Valid(1000, addr, ck) {
			t.Fatal("cookie invalid")
		}
	}); n != 0 {
		t.Fatalf("cookie path allocates %v/op", n)
	}

	k := DeriveKeys([]byte("psk"))
	body := bytes.Repeat([]byte{3}, 96)
	nonce := bytes.Repeat([]byte{4}, HSNonceLen)
	mac := k.HandshakeMAC(body, nonce)
	if n := testing.AllocsPerRun(200, func() {
		if !k.VerifyHandshakeMAC(body, nonce, mac[:]) {
			t.Fatal("verify failed")
		}
	}); n != 0 {
		t.Fatalf("handshake MAC verify allocates %v/op", n)
	}
}

// BenchmarkSealData measures the per-packet sealing cost at a wire-size
// payload; bench.sh derives aead throughput context from the loopback
// benchmark, this one isolates the crypto itself.
func BenchmarkSealData(b *testing.B) {
	c, _ := makeSessions(true, 0, 0)
	payload := bytes.Repeat([]byte{0xAB}, 1448)
	pkt := dataPacket(0, 0, payload)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint32(pkt[0:], uint32(i&0x7FFFFFFF))
		c.SealData(pkt[:8+len(payload)])
	}
}

// BenchmarkHandshakeAuth measures the full listener-side authenticated
// handshake compute: cookie check, MAC verify, MAC of the response, and
// session-key derivation. bench.sh records it as handshake_auth_us.
func BenchmarkHandshakeAuth(b *testing.B) {
	k := DeriveKeys([]byte("bench psk"))
	body := bytes.Repeat([]byte{3}, 96)
	cn := bytes.Repeat([]byte{1}, HSNonceLen)
	sn := bytes.Repeat([]byte{2}, HSNonceLen)
	mac := k.HandshakeMAC(body, nil)
	cs := NewCookieSource(1, 2, 0)
	addr := []byte("192.0.2.1:4242")
	ck := cs.Cookie(0, addr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !cs.Valid(0, addr, ck) {
			b.Fatal("cookie")
		}
		if !k.VerifyHandshakeMAC(body, nil, mac[:]) {
			b.Fatal("mac")
		}
		_ = k.HandshakeMAC(body, cn)
		_, _ = k.SessionKeys(cn, sn)
	}
}
