package secure

// Window is a sliding anti-replay bitmap over the 64-bit authenticated
// control sequence space, in the style of RFC 6479: a ring of words
// tracking which of the last WindowSize sequence numbers were accepted.
// Sequences older than the window are refused outright; in-window
// sequences are refused on their second appearance. The zero value is an
// empty window that accepts any first sequence.
type Window struct {
	max  uint64
	seen bool
	bits [windowWords]uint64
}

const windowWords = 16

// WindowSize is the width of the anti-replay window in packets: control
// packets reordered further back than this are dropped even on first
// arrival. It is one ring word short of the bitmap so a just-in-window
// sequence can never alias the ring word holding the newest one.
const WindowSize = (windowWords - 1) * 64

// Admit reports whether seq is fresh — never accepted and not older than
// the window — and records it. Allocation-free.
func (w *Window) Admit(seq uint64) bool {
	word := (seq >> 6) % windowWords
	bit := uint64(1) << (seq & 63)
	switch {
	case !w.seen:
		w.seen = true
		w.max = seq
		w.bits[word] = bit
		return true
	case seq > w.max:
		// Advance: clear the ring words between the old and new head.
		if diff := (seq >> 6) - (w.max >> 6); diff >= windowWords {
			w.bits = [windowWords]uint64{}
		} else {
			for i := (w.max >> 6) + 1; i <= seq>>6; i++ {
				w.bits[i%windowWords] = 0
			}
		}
		w.max = seq
		w.bits[word] |= bit
		return true
	case w.max-seq >= WindowSize:
		return false
	case w.bits[word]&bit != 0:
		return false
	default:
		w.bits[word] |= bit
		return true
	}
}
