package congestion

import (
	"fmt"
	"sort"
)

// factories maps controller names to their constructors. Names are what
// `udtperf -cc` and the chaos matrix cells use.
var factories = map[string]Factory{
	"native":   func() Controller { return NewNative() },
	"ctcp":     NewCTCP,
	"scalable": NewScalable,
	"hstcp":    NewHSTCP,
	"bic":      NewBIC,
	"bbrlite":  NewBBRLite,
}

// New returns the factory for the named controller. The empty string
// selects the native UDT law.
func New(name string) (Factory, error) {
	if name == "" {
		name = "native"
	}
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("congestion: unknown controller %q (have %v)", name, Names())
	}
	return f, nil
}

// MustNew is New for statically known names; it panics on a typo.
func MustNew(name string) Factory {
	f, err := New(name)
	if err != nil {
		panic(err)
	}
	return f
}

// Names lists the registered controller names, sorted.
func Names() []string {
	out := make([]string, 0, len(factories))
	for n := range factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
