package congestion

import (
	"math"
	"testing"
)

func newBBR(t *testing.T) *bbrLite {
	t.Helper()
	cc := NewBBRLite().(*bbrLite)
	cc.Init(Params{SYN: DefaultSYN, MSS: 1500, MaxWindow: 25600})
	return cc
}

// feed delivers one ACK carrying an arrival-speed sample and runs one rate
// tick — one SYN interval of steady feedback at rate pkts/s.
func feed(cc *bbrLite, rate int32, rttUs int32) {
	cc.OnACK(10, rate, 0, rttUs)
	cc.OnRateTick()
}

func TestBBRLiteStartupExitsOnBandwidthPlateau(t *testing.T) {
	cc := newBBR(t)
	if cc.Period() != 0 {
		t.Fatalf("startup must be unpaced, period = %v", cc.Period())
	}
	if cc.Window() != SlowStartCwnd {
		t.Fatalf("initial window = %v, want %v", cc.Window(), SlowStartCwnd)
	}
	// Growing bandwidth keeps startup alive.
	feed(cc, 1000, 50_000)
	feed(cc, 2000, 50_000)
	feed(cc, 4000, 50_000)
	if cc.phase != bbrStartup {
		t.Fatalf("phase after growth = %d, want startup", cc.phase)
	}
	// A sustained plateau ends startup once the smoothed estimate stops
	// growing by 25% for bbrFullBwTicks consecutive ticks. The 7/8 EWMA
	// needs a handful of ticks to converge, so allow a generous bound.
	ticks := 0
	for cc.phase == bbrStartup {
		feed(cc, 4000, 50_000)
		if ticks++; ticks > 50 {
			t.Fatal("startup never exited on a constant-rate plateau")
		}
	}
	if cc.phase != bbrDrain {
		t.Fatalf("phase after plateau = %d, want drain", cc.phase)
	}
	// Drain paces below the converged estimate to empty the startup queue.
	wantPeriod := 1e6 / (cc.btlBw * bbrDrainGain)
	if math.Abs(cc.Period()-wantPeriod) > 1e-6 {
		t.Fatalf("drain period = %v, want %v", cc.Period(), wantPeriod)
	}
}

func TestBBRLiteDrainReachesCruiseGainCycle(t *testing.T) {
	cc := newBBR(t)
	toPlateau(cc, 4000)
	for i := 0; i < bbrDrainTicks; i++ {
		if cc.phase != bbrDrain {
			t.Fatalf("left drain after %d ticks, want %d", i, bbrDrainTicks)
		}
		feed(cc, 4000, 50_000)
	}
	if cc.phase != bbrCruise {
		t.Fatalf("phase after drain = %d, want cruise", cc.phase)
	}
	// One full cruise cycle: the period must follow the gain table.
	for i := 0; i < len(bbrCycleGains); i++ {
		want := 1e6 / (4000 * bbrCycleGains[cc.cycleIdx])
		if math.Abs(cc.Period()-want) > 1e-6 {
			t.Fatalf("cruise period at slot %d = %v, want %v", cc.cycleIdx, cc.Period(), want)
		}
		feed(cc, 4000, 50_000)
	}
}

func TestBBRLiteWindowIsTwiceBDP(t *testing.T) {
	cc := newBBR(t)
	toPlateau(cc, 4000) // 4000 pkts/s at minRtt 50 ms → BDP = 200 pkts
	if got, want := cc.Window(), 2*4000*50_000/1e6; got != want {
		t.Fatalf("post-startup window = %v, want 2·BDP = %v", got, want)
	}
	// The RTT floor, not the latest (possibly queue-inflated) RTT, sets it.
	feed(cc, 4000, 200_000)
	if got, want := cc.Window(), 2*4000*50_000/1e6; got != want {
		t.Fatalf("window after RTT inflation = %v, want %v", got, want)
	}
}

func TestBBRLiteNAKEndsStartupAndIsDeduplicated(t *testing.T) {
	cc := newBBR(t)
	feed(cc, 1000, 50_000)
	cc.OnNAK(1_000_000, 100, 120)
	if cc.phase != bbrDrain {
		t.Fatalf("phase after startup loss = %d, want drain", cc.phase)
	}
	cc.phase = bbrCruise
	cc.cycleIdx = 0
	pre := cc.btlBw
	// Re-report of the same congestion event: no reaction.
	cc.OnNAK(1_100_000, 110, 120)
	if cc.btlBw != pre {
		t.Fatalf("re-reported NAK changed btlBw %v → %v", pre, cc.btlBw)
	}
	// Fresh event: estimate shaved, next probe skipped.
	cc.OnNAK(1_200_000, 130, 150)
	if want := pre * bbrLossBeta; math.Abs(cc.btlBw-want) > 1e-9 {
		t.Fatalf("fresh NAK: btlBw = %v, want %v", cc.btlBw, want)
	}
	if cc.cycleIdx != 1 {
		t.Fatalf("fresh NAK in cruise: cycleIdx = %d, want 1 (compensate slot)", cc.cycleIdx)
	}
}

func TestBBRLiteTimeoutHalvesEstimateAndRestartsStartup(t *testing.T) {
	cc := newBBR(t)
	toPlateau(cc, 4000)
	pre := cc.btlBw
	cc.OnTimeout(5_000_000, 500)
	if want := pre * 0.5; math.Abs(cc.btlBw-want) > 1e-9 {
		t.Fatalf("btlBw after timeout = %v, want %v", cc.btlBw, want)
	}
	if cc.phase != bbrStartup || cc.Period() != 0 || cc.Window() != SlowStartCwnd {
		t.Fatalf("timeout must re-enter unpaced startup: phase=%d period=%v window=%v",
			cc.phase, cc.Period(), cc.Window())
	}
}

func TestBBRLitePeriodClamps(t *testing.T) {
	cc := newBBR(t)
	cc.SetMinPeriod(100)
	toPlateau(cc, 1_000_000) // would want a sub-µs period
	feed(cc, 1_000_000, 1000)
	if cc.Period() < 100 {
		t.Fatalf("period %v below the §4.4 minimum-period clamp", cc.Period())
	}
	// Collapse the estimate: period must cap at 1 s per packet.
	for i := 0; i < 60; i++ {
		cc.OnTimeout(int64(i)*1_000_000, int32(600+i))
		cc.exitStartup()
	}
	if cc.Period() > 1e6 {
		t.Fatalf("period %v above the 1 pkt/s liveness floor", cc.Period())
	}
}

func TestBBRLiteRegistered(t *testing.T) {
	f, err := New("bbrlite")
	if err != nil {
		t.Fatal(err)
	}
	cc := f()
	cc.Init(Params{SYN: DefaultSYN, MSS: 1500, MaxWindow: 25600})
	if cc.Name() != "bbrlite" {
		t.Fatalf("Name() = %q", cc.Name())
	}
}

// toPlateau drives a fresh controller out of startup at the given rate.
func toPlateau(cc *bbrLite, rate int32) {
	for cc.phase == bbrStartup {
		feed(cc, rate, 50_000)
	}
}
