package congestion

import (
	"math"
	"testing"
)

func newBicForTest(t *testing.T) *bicCC {
	t.Helper()
	cc := NewBIC().(*bicCC)
	cc.Init(Params{SYN: DefaultSYN, MSS: 1500, MaxWindow: 25600})
	return cc
}

// A loss snapshots the binary-search interval: wMax at the pre-loss
// window, wMin at the kept window.
func TestBicLossSetsSearchInterval(t *testing.T) {
	cc := newBicForTest(t)
	cc.OnACK(998, 0, 0, 100_000) // slow start to 1000
	pre := cc.Window()
	cc.OnNAK(0, 900, 1100)
	if cc.wMax != pre {
		t.Fatalf("wMax = %v, want pre-loss window %v", cc.wMax, pre)
	}
	if math.Abs(cc.wMin-pre*BicBeta) > 1e-9 {
		t.Fatalf("wMin = %v, want %v", cc.wMin, pre*BicBeta)
	}
	if math.Abs(cc.Window()-pre*BicBeta) > 1e-9 {
		t.Fatalf("window = %v, want %v", cc.Window(), pre*BicBeta)
	}
}

// During recovery the per-RTT increment follows BicIncrease exactly:
// capped binary search far from the target, shrinking near it, then
// additive max probing past the old maximum — the shape that makes BIC
// RTT-fair at high windows (§5.2's missing baseline).
func TestBicIncrementTracksLaw(t *testing.T) {
	cc := newBicForTest(t)
	cc.OnACK(998, 0, 0, 100_000)
	cc.OnNAK(0, 900, 1100) // wMin=875, wMax=1000
	for i := 0; i < 400; i++ {
		w := cc.Window()
		wantInc := BicIncrease(w, cc.wMin, cc.wMax) / w // one acked packet
		cc.OnACK(1, 0, 0, 100_000)
		if got := cc.Window() - w; math.Abs(got-wantInc) > 1e-9 {
			t.Fatalf("step %d: increment %v, want %v (w=%v)", i, got, wantInc, w)
		}
	}
	// Far below the midpoint the per-RTT step is capped at BicSMax…
	cc2 := newBicForTest(t)
	cc2.OnACK(3998, 0, 0, 100_000)
	cc2.OnNAK(0, 900, 4100) // wMin=3500, wMax=4000, midpoint 3750
	w := cc2.Window()
	if inc := BicIncrease(w, cc2.wMin, cc2.wMax); inc != BicSMax {
		t.Fatalf("far-from-target increment %v, want cap %v", inc, BicSMax)
	}
	// …close to the old maximum it collapses towards BicSMin…
	if inc := BicIncrease(cc2.wMax-0.001, cc2.wMin, cc2.wMax); inc >= 1 {
		t.Fatalf("near-target increment %v, want < 1", inc)
	}
	// …and past it, additive probing grows away from wMax.
	p1 := BicIncrease(cc2.wMax+10, cc2.wMin, cc2.wMax)
	p2 := BicIncrease(cc2.wMax+20, cc2.wMin, cc2.wMax)
	if !(p2 > p1) {
		t.Fatalf("max probing not increasing: %v then %v", p1, p2)
	}
	// Below BicLowWindow BIC is standard TCP: +1 per RTT.
	if inc := BicIncrease(10, 2, 8); inc != 1 {
		t.Fatalf("low-window increment %v, want 1", inc)
	}
}

// A timeout restarts the search from the collapsed window towards the
// pre-timeout one.
func TestBicTimeoutResetsSearch(t *testing.T) {
	cc := newBicForTest(t)
	cc.OnACK(998, 0, 0, 100_000)
	cc.OnNAK(0, 900, 1100)
	pre := cc.Window()
	cc.OnTimeout(1_000_000, 1200)
	if cc.wMax != pre {
		t.Fatalf("wMax after timeout = %v, want %v", cc.wMax, pre)
	}
	if cc.wMin != cc.Window() {
		t.Fatalf("wMin after timeout = %v, want collapsed window %v", cc.wMin, cc.Window())
	}
}
