package congestion

// bicCC is BIC TCP (Xu, Harfoush, Rhee, INFOCOM '04) on the shared
// window-law machinery — the last of the paper's §5.2 high-speed baselines
// to land on the real stack. The binary-search state rides alongside the
// shared window: a loss records the window it happened at (wMax) and the
// window kept after the decrease (wMin); congestion avoidance then
// binary-searches the midpoint and probes additively past the old maximum,
// via the same BicIncrease the simulator's model pins.
type bicCC struct {
	windowCC
	wMin, wMax float64
}

// NewBIC returns the BIC TCP controller, registered as "bic".
func NewBIC() Controller {
	c := &bicCC{}
	c.name = "bic"
	// Per-ACK increment is the per-RTT increment spread over the window.
	c.inc = func(w float64) float64 { return BicIncrease(w, c.wMin, c.wMax) / max1(w) }
	// keep runs exactly once per congestion event (windowCC deduplicates
	// re-reports), so it is the hook that snapshots the binary-search
	// state: wMax is the window at the loss, wMin the window kept.
	c.keep = func(w float64) float64 {
		f := BicBeta
		if w < BicLowWindow {
			f = 0.5
		}
		c.wMax = w
		c.wMin = w * f
		return f
	}
	return c
}

// Init implements Controller; the pre-loss search target is the full
// window so the first epoch is pure max probing.
func (c *bicCC) Init(p Params) {
	c.windowCC.Init(p)
	c.wMax = c.maxCwnd
	c.wMin = 0
}

// OnTimeout collapses the window the TCP way and restarts the binary
// search from the collapsed window towards the pre-timeout one.
func (c *bicCC) OnTimeout(now int64, sentSeq int32) {
	c.wMax = c.cwnd
	c.windowCC.OnTimeout(now, sentSeq)
	c.wMin = c.cwnd
}
