package congestion

import "udt/internal/seqno"

// windowCC is the shared machinery of the TCP-family controllers: a
// congestion window driven by a pluggable per-ACK increase and per-loss
// decrease law (the §5.2 response functions), paced by spreading the
// window over one RTT + SYN — the dual of the paper's flow-window formula
// W = AS·(SYN+RTT), so a window-based law still cooperates with UDT's
// timer-driven sender instead of emitting line-rate bursts.
//
// The loss reaction is once per congestion event, the window-law analogue
// of TCP's once-per-RTT halving: a NAK decreases only when it names a loss
// newer than the newest sequence sent at the previous decrease — the same
// deduplication rule the native law uses (§3.3).
type windowCC struct {
	Base
	name string

	syn     float64
	maxCwnd float64

	cwnd      float64
	ssthresh  float64
	slowStart bool

	lastDecSeq int32
	period     float64

	// inc is the congestion-avoidance window increment for one newly
	// acknowledged packet at window w; keep is the window fraction kept on
	// a loss event at window w.
	inc  func(w float64) float64
	keep func(w float64) float64
}

// Init implements Controller.
func (c *windowCC) Init(p Params) {
	c.initBase()
	c.syn = float64(p.SYN)
	c.maxCwnd = float64(p.MaxWindow)
	c.cwnd = SlowStartCwnd
	c.ssthresh = c.maxCwnd
	c.slowStart = true
	c.lastDecSeq = -1
	c.period = 0
}

// Name identifies the law for telemetry.
func (c *windowCC) Name() string { return c.name }

// Window returns the live congestion window in packets.
func (c *windowCC) Window() float64 { return c.cwnd }

// Period returns the pacing period in µs: the window spread over one
// RTT + SYN. Zero (unpaced, window-limited) during slow start.
func (c *windowCC) Period() float64 { return c.period }

// SlowStart reports whether the controller is in its exponential phase.
func (c *windowCC) SlowStart() bool { return c.slowStart }

// updatePeriod re-derives the pacing period from the current window and
// RTT estimate, honoring the §4.4 minimum-period clamp.
func (c *windowCC) updatePeriod() {
	if c.slowStart {
		c.period = 0
		return
	}
	c.period = (c.rttUs + c.syn) / c.cwnd
	if c.period < c.minPeriod {
		c.period = c.minPeriod
	}
	if c.period < 1 {
		c.period = 1
	}
	if c.period > 1e6 {
		c.period = 1e6
	}
}

// clampCwnd keeps the window inside [2, MaxWindow]; two packets keep the
// ACK clock alive even after deep decreases.
func (c *windowCC) clampCwnd() {
	if c.cwnd > c.maxCwnd {
		c.cwnd = c.maxCwnd
	}
	if c.cwnd < 2 {
		c.cwnd = 2
	}
}

// OnACK grows the window: exponentially (one packet per newly acknowledged
// packet) during slow start, by the law's response function afterwards.
func (c *windowCC) OnACK(newlyAcked int, recvRate, capacity, rttUs int32) {
	c.onFeedback(recvRate, capacity, rttUs)
	if newlyAcked <= 0 {
		return
	}
	if c.slowStart {
		c.cwnd += float64(newlyAcked)
		if c.cwnd >= c.ssthresh || c.cwnd >= c.maxCwnd {
			c.slowStart = false
		}
	} else {
		for i := 0; i < newlyAcked; i++ {
			c.cwnd += c.inc(c.cwnd)
		}
	}
	c.clampCwnd()
	c.updatePeriod()
}

// OnNAK applies the law's multiplicative decrease once per congestion
// event: only a loss newer than the last decrease shrinks the window.
func (c *windowCC) OnNAK(now int64, largestLoss, sentSeq int32) {
	if !c.slowStart && c.lastDecSeq >= 0 && seqno.Cmp(largestLoss, c.lastDecSeq) <= 0 {
		return // re-report within an already-handled event
	}
	c.slowStart = false
	c.cwnd *= c.keep(c.cwnd)
	c.clampCwnd()
	c.ssthresh = c.cwnd
	c.lastDecSeq = sentSeq
	c.updatePeriod()
}

// OnTimeout reacts to an EXP expiration the TCP way: collapse to a
// two-packet window and re-enter slow start towards half the old window.
func (c *windowCC) OnTimeout(now int64, sentSeq int32) {
	c.ssthresh = c.cwnd / 2
	if c.ssthresh < 2 {
		c.ssthresh = 2
	}
	c.cwnd = 2
	c.slowStart = true
	c.lastDecSeq = sentSeq
	c.updatePeriod()
}

// OnRateTick refreshes the pacing period so it tracks the RTT estimate
// even across ACK-free intervals.
func (c *windowCC) OnRateTick() { c.updatePeriod() }

// NewCTCP returns a TCP-Reno-style AIMD controller — what the released UDT
// distribution ships as its CTCP sample CC class, and the paper's "TCP"
// baseline: window +1 per RTT (1/w per ACKed packet), halved per loss
// event.
func NewCTCP() Controller {
	return &windowCC{
		name: "ctcp",
		inc:  func(w float64) float64 { return 1 / max1(w) },
		keep: func(float64) float64 { return 0.5 },
	}
}

// NewScalable returns Kelly's Scalable TCP MIMD law (§5.2): window +0.01
// per ACKed packet, ×0.875 per loss event.
func NewScalable() Controller {
	return &windowCC{
		name: "scalable",
		inc:  func(float64) float64 { return ScalableAlpha },
		keep: func(float64) float64 { return ScalableBeta },
	}
}

// NewHSTCP returns RFC 3649 HighSpeed TCP (§5.2): increase a(w)/w per
// ACKed packet and decrease factor 1−b(w), reverting to standard TCP below
// 38 packets.
func NewHSTCP() Controller {
	return &windowCC{
		name: "hstcp",
		inc:  func(w float64) float64 { return HSAlpha(max1(w)) / max1(w) },
		keep: func(w float64) float64 { return 1 - HSBeta(w) },
	}
}

// max1 floors w at one packet so the response functions stay finite.
func max1(w float64) float64 {
	if w < 1 {
		return 1
	}
	return w
}
