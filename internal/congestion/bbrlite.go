package congestion

import "udt/internal/seqno"

// bbrLite is a BBR-flavored rate controller on UDT's rate-based engine: it
// paces from a bottleneck-bandwidth estimate instead of reacting to loss as
// a congestion signal. The receiver's arrival-speed feedback (the same AS
// measurement the native law smooths, §3.2) stands in for BBR's delivery
// rate: a windowed max over the last bbrBwWindow rate ticks is the
// bottleneck estimate btlBw, and the sending period is 1e6/(gain·btlBw).
//
// Three phases, each driven from OnRateTick (one step per SYN):
//
//   - startup: unpaced, window-limited growth off the ack clock (like every
//     other law's slow start) until the bandwidth estimate stops growing by
//     ≥25% for bbrFullBwTicks consecutive ticks — the pipe is full.
//   - drain: pace at bbrDrainGain·btlBw for bbrDrainTicks ticks to empty the
//     queue startup built.
//   - cruise: cycle through bbrCycleGains — one probing tick above the
//     estimate, one compensating tick below, six at the estimate.
//
// Loss is not ignored entirely: a fresh loss event (deduplicated per
// congestion event exactly like the native law) ends startup early, and in
// drain/cruise shaves the bandwidth estimate by bbrLossBeta and skips the
// next probe, so bbrlite coexists with loss-based laws on a shared queue
// instead of starving them. A timeout halves the estimate and re-enters
// startup.
type bbrLite struct {
	Base

	syn     float64
	maxCwnd float64

	phase  int
	period float64
	cwnd   float64 // startup window, packets

	bwSamples [bbrBwWindow]float64 // per-tick arrival-speed maxima, pkts/s
	bwIdx     int
	btlBw     float64 // max of bwSamples

	minRtt float64 // lowest receiver-reported RTT seen, µs (0 = none yet)

	fullBw      float64 // startup plateau detection
	fullBwCount int

	drainLeft int
	cycleIdx  int

	lastDecSeq     int32
	ackedSinceTick bool
}

const (
	bbrStartup = iota
	bbrDrain
	bbrCruise
)

const (
	// bbrBwWindow is the max-filter length in rate ticks (SYN intervals).
	bbrBwWindow = 10
	// bbrStartupGrowth is the per-plateau-check growth startup must sustain.
	bbrStartupGrowth = 1.25
	// bbrFullBwTicks is how many growth-free ticks end startup.
	bbrFullBwTicks = 3
	// bbrDrainGain paces below the estimate to drain the startup queue.
	bbrDrainGain = 0.35
	// bbrDrainTicks is how long the drain phase lasts.
	bbrDrainTicks = 3
	// bbrLossBeta shaves the bandwidth estimate on a fresh loss event.
	bbrLossBeta = 0.95
)

// bbrCycleGains is the cruise pacing-gain cycle: probe, compensate, cruise.
var bbrCycleGains = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// NewBBRLite returns the BBR-flavored probe/drain controller; the engine
// completes construction through Init.
func NewBBRLite() Controller { return &bbrLite{} }

// Init implements Controller, resetting the law to its pre-handshake state.
func (c *bbrLite) Init(p Params) {
	*c = bbrLite{
		syn:        float64(p.SYN),
		maxCwnd:    float64(p.MaxWindow),
		phase:      bbrStartup,
		cwnd:       SlowStartCwnd,
		lastDecSeq: -1,
	}
	c.initBase()
}

// Name identifies the law for telemetry.
func (c *bbrLite) Name() string { return "bbrlite" }

// Period returns the pacing period in µs; 0 (unpaced) during startup.
func (c *bbrLite) Period() float64 { return c.period }

// Window returns the startup window while the ack clock is growing it, and
// twice the estimated bandwidth-delay product afterwards — enough in-flight
// data to keep the bottleneck busy through a probe, bounded well below the
// unbounded post-slow-start windows of the loss-based laws so queues stay
// short.
func (c *bbrLite) Window() float64 {
	if c.phase == bbrStartup {
		return c.cwnd
	}
	rtt := c.minRtt
	if rtt <= 0 {
		rtt = c.rttUs
	}
	w := 2 * c.btlBw * rtt / 1e6
	if w < 4 {
		w = 4
	}
	if w > c.maxCwnd {
		w = c.maxCwnd
	}
	return w
}

// OnACK folds in receiver feedback, tracks the RTT floor, and grows the
// startup window off the ack clock.
func (c *bbrLite) OnACK(newlyAcked int, recvRate, capacity, rttUs int32) {
	c.ackedSinceTick = true
	c.onFeedback(recvRate, capacity, rttUs)
	if rttUs > 0 && (c.minRtt == 0 || float64(rttUs) < c.minRtt) {
		c.minRtt = float64(rttUs)
	}
	if c.phase == bbrStartup {
		c.cwnd += float64(newlyAcked)
		if c.cwnd >= c.maxCwnd {
			c.cwnd = c.maxCwnd
			c.exitStartup()
		}
	}
}

// OnRateTick advances the phase machine one SYN step: sample the arrival
// speed into the max filter, check the startup plateau, count down drain,
// and rotate the cruise gain cycle.
func (c *bbrLite) OnRateTick() {
	acked := c.ackedSinceTick
	c.ackedSinceTick = false
	if acked && c.recvRate > 0 {
		c.bwSamples[c.bwIdx] = c.recvRate
		c.bwIdx = (c.bwIdx + 1) % bbrBwWindow
		c.refreshBtlBw()
	}
	switch c.phase {
	case bbrStartup:
		if !acked || c.btlBw <= 0 {
			return // no fresh evidence: stay in startup
		}
		if c.btlBw >= c.fullBw*bbrStartupGrowth {
			c.fullBw = c.btlBw
			c.fullBwCount = 0
		} else {
			c.fullBwCount++
			if c.fullBwCount >= bbrFullBwTicks {
				c.exitStartup()
			}
		}
	case bbrDrain:
		c.drainLeft--
		if c.drainLeft <= 0 {
			c.phase = bbrCruise
			c.cycleIdx = 0
		}
		c.retune()
	case bbrCruise:
		c.cycleIdx = (c.cycleIdx + 1) % len(bbrCycleGains)
		c.retune()
	}
}

// OnNAK reacts once per congestion event (the §3.3 deduplication rule): end
// startup early, or shave the bandwidth estimate and skip the next probe.
func (c *bbrLite) OnNAK(now int64, largestLoss, sentSeq int32) {
	if c.lastDecSeq >= 0 && seqno.Cmp(largestLoss, c.lastDecSeq) <= 0 {
		return // re-report within an already-handled event
	}
	c.lastDecSeq = sentSeq
	if c.phase == bbrStartup {
		c.exitStartup()
		return
	}
	for i := range c.bwSamples {
		c.bwSamples[i] *= bbrLossBeta
	}
	c.refreshBtlBw()
	if c.phase == bbrCruise {
		c.cycleIdx = 1 // the compensating 0.75 slot: drain before probing again
	}
	c.retune()
}

// OnTimeout halves the bandwidth estimate and re-enters startup: feedback
// stopped entirely, so the estimate cannot be trusted.
func (c *bbrLite) OnTimeout(now int64, sentSeq int32) {
	for i := range c.bwSamples {
		c.bwSamples[i] *= 0.5
	}
	c.refreshBtlBw()
	c.phase = bbrStartup
	c.cwnd = SlowStartCwnd
	c.fullBw = 0
	c.fullBwCount = 0
	c.lastDecSeq = sentSeq
	c.period = 0
}

// exitStartup moves to the drain phase, seeding the bandwidth estimate from
// the window the ack clock reached when no arrival-speed feedback has been
// measured yet.
func (c *bbrLite) exitStartup() {
	if c.phase != bbrStartup {
		return
	}
	c.phase = bbrDrain
	c.drainLeft = bbrDrainTicks
	if c.btlBw <= 0 {
		rtt := c.rttUs
		if rtt <= 0 {
			rtt = 100_000
		}
		c.bwSamples[c.bwIdx] = c.cwnd * 1e6 / (rtt + c.syn)
		c.bwIdx = (c.bwIdx + 1) % bbrBwWindow
		c.refreshBtlBw()
	}
	c.retune()
}

// refreshBtlBw recomputes the windowed max.
func (c *bbrLite) refreshBtlBw() {
	m := 0.0
	for _, s := range c.bwSamples {
		if s > m {
			m = s
		}
	}
	c.btlBw = m
}

// retune re-derives the pacing period from the estimate and the phase gain.
func (c *bbrLite) retune() {
	if c.phase == bbrStartup {
		c.period = 0
		return
	}
	gain := bbrDrainGain
	if c.phase == bbrCruise {
		gain = bbrCycleGains[c.cycleIdx]
	}
	if bw := c.btlBw * gain; bw > 0 {
		c.period = 1e6 / bw
	} else {
		c.period = (c.rttUs + c.syn) / c.Window()
	}
	if c.period < c.minPeriod {
		c.period = c.minPeriod
	}
	if c.period < 1 {
		c.period = 1
	}
	if c.period > 1e6 {
		c.period = 1e6 // floor of 1 packet/s keeps the connection alive
	}
}
