package congestion

import (
	"math"

	"udt/internal/seqno"
)

// Native is UDT's own sender-side rate controller (paper §3.3): an AIMD
// law on the packet sending period whose additive increase is chosen from
// an estimate of the available bandwidth, plus the initial slow-start
// phase. It is the default Controller and reproduces the pre-refactor
// internal/core rate controller bit for bit (pinned by the trajectory
// golden test).
type Native struct {
	Base

	syn float64 // rate-control interval, µs (0.01 s in the paper)
	mss float64 // packet size in bytes used by formula (1)

	period    float64 // current packet sending period P, µs/packet; 0 during slow start
	slowStart bool
	cwnd      float64 // sender window during slow start (packets)
	maxCwnd   float64

	lastDecSeq  int32   // largest sequence sent when the last decrease occurred
	rateLastDec float64 // sending rate C' just before the last decrease, pkts/s
	freezeUntil int64   // §3.3: stop sending for one SYN after a fresh loss event

	ackedSinceTick bool
	nakSinceTick   bool

	// Epoch-repeat decrease state (the released implementation's
	// refinement of formula 3): within one congestion event, additional
	// decreases happen at most decLimit times, spaced decSpacing NAKs
	// apart, where decSpacing derives from the running average number of
	// NAKs an event produces. Steady sawtooth traffic (≈1 NAK/event) never
	// triggers it; sustained overload does.
	nakCount   int
	decCount   int
	decSpacing int
	avgNAKNum  float64
	rngState   uint64

	// mimd, when positive, replaces formula (1)'s bandwidth-indexed
	// additive increase with SABUL's MIMD law (§2.3): each clean SYN
	// multiplies the rate by (1 + mimd). The decrease stays ×1.125. Used by
	// the AIMD-vs-MIMD ablation; zero selects standard UDT.
	mimd float64
}

// NewNative returns the paper's UDT AIMD controller; the engine completes
// construction through Init.
func NewNative() *Native { return &Native{} }

// SetMIMD switches the controller to SABUL-style MIMD rate control with
// the given per-SYN multiplicative increase (e.g. 0.01 for 1%). Zero
// restores UDT's bandwidth-estimated AIMD.
func (c *Native) SetMIMD(factor float64) { c.mimd = factor }

// Rate-control constants from the paper.
const (
	// DefaultSYN is the constant rate-control and acknowledgement interval
	// (0.01 s). Constant — rather than RTT-based — SYN is what gives UDT its
	// RTT fairness (§3.7, §3.8).
	DefaultSYN = 10_000 // µs

	// decFactor is the multiplicative decrease applied to the sending
	// period on a fresh loss event: P = P × 1.125, i.e. the rate drops by
	// d = 1 − 1/1.125 = 1/9 (formula 3).
	decFactor = 1.125
)

// Init implements Controller, resetting the law to its pre-handshake
// state for the given connection constants.
func (c *Native) Init(p Params) {
	mimd := c.mimd // SetMIMD before Init (ablation setup) survives the reset
	*c = Native{
		syn:         float64(p.SYN),
		mss:         float64(p.MSS),
		slowStart:   true,
		cwnd:        SlowStartCwnd,
		maxCwnd:     float64(p.MaxWindow),
		lastDecSeq:  -1,
		rateLastDec: math.Inf(1), // no decrease has happened yet: use L − C
		rngState:    0x9E3779B97F4A7C15,
		mimd:        mimd,
	}
	c.initBase()
}

// Name identifies the law for telemetry.
func (c *Native) Name() string { return "native" }

// Increase computes formula (1): the number of packets to add to the per-SYN
// budget given an available-bandwidth estimate in bits per second. Exported
// for the Table 1 reproduction.
//
//	inc = max( 10^(ceil(log10 B) − 9) × 1500/MSS, 1/1500 )
func Increase(bitsPerSec float64, mss float64) float64 {
	const minInc = 1.0 / 1500
	if bitsPerSec <= 0 {
		return minInc
	}
	exp := math.Ceil(math.Log10(bitsPerSec)) - 9
	inc := math.Pow(10, exp) * 1500 / mss
	if inc < minInc {
		return minInc
	}
	return inc
}

// SlowStart reports whether the controller is still in its initial phase.
func (c *Native) SlowStart() bool { return c.slowStart }

// Window returns the sender-side window bound (packets): the growing
// slow-start window initially, effectively unbounded afterwards (the
// receiver-computed flow window takes over, §3.2).
func (c *Native) Window() float64 {
	if c.slowStart {
		return c.cwnd
	}
	return c.maxCwnd
}

// Period returns the current packet sending period in µs. Zero means
// unpaced (slow start).
func (c *Native) Period() float64 { return c.period }

// SetPeriod overrides the sending period (used by tests and by ablation
// variants).
func (c *Native) SetPeriod(p float64) {
	c.period = p
	c.slowStart = false
}

// Rate returns the current sending rate in packets/s (0 if unpaced).
func (c *Native) Rate() float64 {
	if c.period <= 0 {
		return 0
	}
	return 1e6 / c.period
}

// Frozen reports whether sending is suspended at time now because a fresh
// loss event told the sender to clear congestion for one SYN (§3.3).
func (c *Native) Frozen(now int64) bool { return now < c.freezeUntil }

// FreezeEnd returns when the current sending freeze expires (µs); zero or a
// past time means not frozen. Event-driven transports use it to schedule
// their next send attempt.
func (c *Native) FreezeEnd() int64 { return c.freezeUntil }

// exitSlowStart transitions to paced AIMD, deriving the first period from
// the observed receive rate when available, else from the window and RTT.
func (c *Native) exitSlowStart() {
	if !c.slowStart {
		return
	}
	c.slowStart = false
	switch {
	case c.recvRate > 0:
		c.period = 1e6 / c.recvRate
	case c.cwnd > 0:
		c.period = (c.rttUs + c.syn) / c.cwnd
	default:
		c.period = c.syn
	}
	c.clampPeriod()
}

// OnACK folds in the feedback carried by an acknowledgement: receiver
// arrival speed, RBPP capacity estimate and RTT, plus slow-start window
// growth by the number of newly acknowledged packets.
func (c *Native) OnACK(newlyAcked int, recvRate, capacity int32, rttUs int32) {
	c.ackedSinceTick = true
	c.onFeedback(recvRate, capacity, rttUs)
	if c.slowStart {
		c.cwnd += float64(newlyAcked)
		if c.cwnd >= c.maxCwnd {
			c.cwnd = c.maxCwnd
			c.exitSlowStart()
		}
	}
}

// OnNAK applies formula (3). largestLoss is the largest sequence number in
// the NAK; sentSeq is the largest sequence number sent so far. Only a loss
// event newer than the last decrease triggers a decrease and a one-SYN
// freeze; re-reports of old losses do not decrease again (§3.3, §6
// "processing continuous loss").
func (c *Native) OnNAK(now int64, largestLoss, sentSeq int32) {
	c.nakSinceTick = true
	if c.slowStart {
		c.exitSlowStart()
	}
	if c.lastDecSeq >= 0 && seqno.Cmp(largestLoss, c.lastDecSeq) <= 0 {
		// NAK within an already-handled congestion event. A single decrease
		// per event (the SC '04 text) under-reacts when the overload
		// persists; like the released UDT implementation, decrease at most
		// decLimit more times, spaced by the typical per-event NAK count,
		// so steady sawtooth traffic is untouched but storms keep pushing
		// the rate down.
		c.nakCount++
		if c.decCount < decLimit && c.decSpacing > 0 && c.nakCount%c.decSpacing == 0 {
			c.decCount++
			c.period *= decFactor
			c.clampPeriod()
			c.lastDecSeq = sentSeq
		}
		return
	}
	// Fresh congestion event.
	c.avgNAKNum = 0.875*c.avgNAKNum + 0.125*float64(c.nakCount)
	c.nakCount = 1
	c.decCount = 1
	span := int(c.avgNAKNum)
	if span < 1 {
		span = 1
	}
	c.decSpacing = 1 + int(c.rand()%uint64(span))
	c.rateLastDec = 1e6 / c.period
	c.period *= decFactor
	c.clampPeriod()
	c.lastDecSeq = sentSeq
	c.freezeUntil = now + int64(c.syn)
}

// decLimit bounds decreases per congestion event (reference implementation).
const decLimit = 5

// rand is a small deterministic xorshift; determinism keeps simulator runs
// reproducible while still de-synchronizing repeat decreases across flows.
func (c *Native) rand() uint64 {
	c.rngState ^= c.rngState << 13
	c.rngState ^= c.rngState >> 7
	c.rngState ^= c.rngState << 17
	return c.rngState
}

// OnTimeout reacts to an EXP-timer expiration: feedback has stopped, so the
// controller decreases as if a fresh loss event occurred.
func (c *Native) OnTimeout(now int64, sentSeq int32) {
	if c.slowStart {
		c.exitSlowStart()
	}
	c.rateLastDec = 1e6 / c.period
	c.period *= decFactor
	c.clampPeriod()
	c.lastDecSeq = sentSeq
	c.freezeUntil = now + int64(c.syn)
}

// availableBandwidth implements the §3.4 selection rule, returning the
// estimate in packets/s (possibly ≤ 0; the caller maps that to the minimum
// increase).
func (c *Native) availableBandwidth() float64 {
	l := c.capacity
	cur := 1e6 / c.period
	if cur > c.rateLastDec {
		return l - cur
	}
	b := l / 9 // all flows decreased by d = 1/9, so L·d is spare (§3.4)
	if l-cur < b {
		b = l - cur
	}
	return b
}

// OnRateTick runs the per-SYN additive increase (formulas 1 and 2). The
// increase is applied only when at least one ACK and no NAK arrived in the
// past SYN.
func (c *Native) OnRateTick() {
	acked, naked := c.ackedSinceTick, c.nakSinceTick
	c.ackedSinceTick, c.nakSinceTick = false, false
	if c.slowStart || naked || !acked {
		return
	}
	if c.mimd > 0 {
		c.period /= 1 + c.mimd
		c.clampPeriod()
		return
	}
	bPkts := c.availableBandwidth()
	inc := Increase(bPkts*c.mss*8, c.mss)
	// Formula (2): SYN/P = SYN/P' + inc, applied to the impairment-corrected
	// period (§4.4).
	p := c.period
	if p < c.minPeriod {
		p = c.minPeriod
	}
	c.period = c.syn / (c.syn/p + inc)
	c.clampPeriod()
}

func (c *Native) clampPeriod() {
	if c.period < c.minPeriod {
		c.period = c.minPeriod
	}
	if c.period < 1 {
		c.period = 1
	}
	if c.period > 1e6 {
		c.period = 1e6 // floor of 1 packet/s keeps the connection alive
	}
}
