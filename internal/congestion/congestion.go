// Package congestion makes UDT's congestion control pluggable: the
// Controller interface captures every decision point the protocol engine
// (internal/core) exposes to its rate controller, so alternative
// congestion-avoidance laws run on the production stack — not only in the
// simulators.
//
// The native UDT AIMD of the paper (§3.3–§3.4) is the default Controller
// and the reference implementation (Native). Three TCP-family controllers —
// a Reno-style AIMD (CTCP), Scalable TCP's MIMD and HighSpeed TCP — reuse
// the increase/decrease response functions the simulator's TCP model
// (internal/tcpsim) is unit-tested against, which is what enables the
// paper's §5.2 intra/inter-protocol comparisons (Figs. 4–6) to be rerun
// in-protocol over real or emulated paths.
//
// # Callback contract
//
// The engine owns one Controller per connection and serializes every call;
// implementations need no locking. The callback order per event is fixed:
//
//   - Init is called exactly once, before any other method.
//   - OnACK fires for every cumulative acknowledgement, after the engine
//     has released the acknowledged packets.
//   - OnNAK fires for every loss report, after the losses are queued for
//     retransmission. largestLoss is the newest sequence in the report;
//     sentSeq the newest sequence ever sent — the pair lets controllers
//     deduplicate decreases per congestion event.
//   - OnTimeout fires on an EXP expiration with data in flight (§4.8).
//   - OnPktSent fires after the engine commits a data packet (new or
//     retransmitted) to the wire, before the pacing schedule advances.
//   - OnRateTick fires once per SYN rate-control interval (§3.3).
//   - Close fires at most once, when the connection shuts down.
//
// Between callbacks the engine reads the two outputs: Period (the packet
// sending period in µs; 0 disables pacing) and Window (the congestion
// window in packets, combined with the receiver's flow window by
// min(·,·), §3.2). Frozen/FreezeEnd gate the sender entirely — only the
// native law uses the §3.3 one-SYN freeze; the shared Base reports never
// frozen.
package congestion

// Params carries the connection constants a Controller needs; the engine
// passes them to Init before any other callback.
type Params struct {
	// SYN is the rate-control interval in µs (0.01 s in the paper).
	SYN int64
	// MSS is the packet size in bytes used by formula (1).
	MSS int
	// MaxWindow bounds the congestion window in packets.
	MaxWindow int
}

// Controller is one congestion-control law driving one connection. All
// rates are packets per second and all times microseconds. Controllers are
// not safe for concurrent use; the owning engine serializes access.
type Controller interface {
	// Init installs the connection constants; called exactly once, first.
	Init(p Params)
	// Close releases controller resources; called at most once, last.
	Close()
	// OnACK folds in one cumulative acknowledgement: the number of newly
	// acknowledged packets plus the receiver's feedback (arrival speed and
	// capacity estimate in pkts/s, RTT in µs; zero means unknown).
	OnACK(newlyAcked int, recvRate, capacity, rttUs int32)
	// OnNAK reacts to a loss report. largestLoss is the largest sequence
	// in the report, sentSeq the largest sequence sent so far.
	OnNAK(now int64, largestLoss, sentSeq int32)
	// OnTimeout reacts to an EXP-timer expiration: feedback has stopped.
	OnTimeout(now int64, sentSeq int32)
	// OnPktSent observes a committed data-packet transmission.
	OnPktSent(now int64, seq int32)
	// OnRateTick runs once per SYN rate-control interval.
	OnRateTick()
	// Period returns the packet sending period in µs; 0 means unpaced.
	Period() float64
	// Window returns the congestion window bound in packets.
	Window() float64
	// Frozen reports whether sending is suspended at time now (§3.3).
	Frozen(now int64) bool
	// FreezeEnd returns when the current freeze expires (µs); zero or a
	// past time means not frozen.
	FreezeEnd() int64
	// SetMinPeriod feeds the measured real per-packet send time (µs) so
	// the period is never tuned below what the host achieves (§4.4).
	SetMinPeriod(p float64)
	// LinkCapacity returns the smoothed packet-pair link capacity estimate
	// in pkts/s (§3.4); 0 until the first probe arrives.
	LinkCapacity() float64
	// RecvRate returns the smoothed receiver arrival speed in pkts/s; 0
	// until the first measurement.
	RecvRate() float64
	// Name identifies the law ("native", "ctcp", ...) for telemetry.
	Name() string
}

// Factory constructs a fresh, uninitialized Controller; the engine calls
// Init on it. One factory value may serve many connections.
type Factory func() Controller

// SlowStartCwnd is the initial sender window before any feedback, shared
// by every controller (and mirrored by the engine's initial peer window).
const SlowStartCwnd = 16

// Base carries the feedback state every controller shares — smoothed RTT,
// receiver arrival speed and packet-pair capacity (§3.2, §3.4), plus the
// §4.4 minimum-period clamp — and provides inert defaults for the optional
// capabilities (freeze, per-packet hook, Close). Embed it and override
// what the law needs.
type Base struct {
	rttUs     float64 // smoothed RTT as reported by the receiver, µs
	recvRate  float64 // smoothed receiver arrival speed AS, pkts/s
	capacity  float64 // smoothed RBPP link capacity estimate L, pkts/s
	minPeriod float64 // §4.4 floor: measured real per-packet send time
}

// initBase resets the feedback state to the pre-handshake defaults.
func (b *Base) initBase() {
	*b = Base{rttUs: 100_000}
}

// onFeedback folds one ACK's receiver feedback into the smoothed
// estimates, in the exact order (RTT, arrival speed, capacity) and with
// the exact 7/8-EWMA arithmetic of the paper's reference controller —
// Native's bit-identical trajectory depends on it.
func (b *Base) onFeedback(recvRate, capacity, rttUs int32) {
	if rttUs > 0 {
		b.rttUs = float64(rttUs)
	}
	if recvRate > 0 {
		if b.recvRate == 0 {
			b.recvRate = float64(recvRate)
		} else {
			b.recvRate = (b.recvRate*7 + float64(recvRate)) / 8
		}
	}
	if capacity > 0 {
		if b.capacity == 0 {
			b.capacity = float64(capacity)
		} else {
			b.capacity = (b.capacity*7 + float64(capacity)) / 8
		}
	}
}

// Close is a no-op; controllers with resources override it.
func (b *Base) Close() {}

// OnPktSent is a no-op; pacing-aware laws override it.
func (b *Base) OnPktSent(now int64, seq int32) {}

// Frozen reports never-frozen; only the native §3.3 law freezes.
func (b *Base) Frozen(now int64) bool { return false }

// FreezeEnd reports no pending freeze.
func (b *Base) FreezeEnd() int64 { return 0 }

// SetMinPeriod records the measured per-packet send time (§4.4).
func (b *Base) SetMinPeriod(p float64) {
	if p > 0 {
		b.minPeriod = p
	}
}

// LinkCapacity returns the smoothed packet-pair capacity estimate, pkts/s.
func (b *Base) LinkCapacity() float64 { return b.capacity }

// RecvRate returns the smoothed receiver arrival speed, pkts/s.
func (b *Base) RecvRate() float64 { return b.recvRate }

// RTT returns the latest receiver-reported smoothed RTT, µs.
func (b *Base) RTT() float64 { return b.rttUs }
