package congestion

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"testing"
)

// TestNativeTrajectoryGolden replays a scripted 400-step callback sequence
// against the native controller and compares the full period/window/freeze
// trajectory — as raw float64 bits — with a capture taken from the
// pre-refactor internal/core implementation. Any drift in the arithmetic,
// the callback ordering, or the epoch bookkeeping shows up as a bit
// difference here, so the refactor onto the Controller interface is pinned
// to be behavior-identical, not merely approximately equal.
func TestNativeTrajectoryGolden(t *testing.T) {
	cc := newCC(10_000, 1472, 25600)
	var buf bytes.Buffer
	record := func(step int, tag string) {
		fmt.Fprintf(&buf, "%d %s period=%016x window=%016x freeze=%d\n",
			step, tag, math.Float64bits(cc.Period()), math.Float64bits(cc.Window()), cc.FreezeEnd())
	}
	// Deterministic LCG driving the op script; the constants match the
	// generator that produced the golden file from the old implementation.
	lcg := uint64(0x2545F4914F6CDD1D)
	next := func(n uint64) uint64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return (lcg >> 33) % n
	}
	now := int64(0)
	step := 0
	var sent int32 = 0
	for i := 0; i < 400; i++ {
		now += 10_000
		op := next(10)
		switch {
		case op < 5: // ACK
			n := int(next(64)) + 1
			rr := int32(next(90_000))
			cap := int32(next(120_000))
			rtt := int32(next(200_000)) + 1
			cc.OnACK(n, rr, cap, rtt)
			record(step, "ack")
		case op < 7: // rate tick
			cc.OnRateTick()
			record(step, "tick")
		case op < 9: // NAK
			loss := sent - int32(next(40))
			if loss < 0 {
				loss = 0
			}
			sent += int32(next(100)) + 1
			cc.OnNAK(now, loss, sent)
			record(step, "nak")
		default: // timeout
			sent += int32(next(50)) + 1
			cc.OnTimeout(now, sent)
			record(step, "timeout")
		}
		if i == 150 {
			cc.SetMinPeriod(7.5)
			record(step, "minperiod")
		}
		step++
	}

	want, err := os.ReadFile("testdata/native_trajectory.golden")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		gotLines := bytes.Split(buf.Bytes(), []byte("\n"))
		wantLines := bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
			if !bytes.Equal(gotLines[i], wantLines[i]) {
				t.Fatalf("native trajectory diverges from the pre-refactor capture at line %d:\n got:  %s\n want: %s",
					i+1, gotLines[i], wantLines[i])
			}
		}
		t.Fatalf("native trajectory length mismatch: got %d lines, want %d", len(gotLines), len(wantLines))
	}
}
