package congestion

import (
	"math"
	"testing"
)

// newCC builds a fully initialized native controller, the way the engine
// constructs it.
func newCC(syn int64, mss, maxWindow int) *Native {
	cc := NewNative()
	cc.Init(Params{SYN: syn, MSS: mss, MaxWindow: maxWindow})
	return cc
}

// TestIncreaseTable1 checks formula (1) against the paper's Table 1
// (MSS = 1500 bytes).
func TestIncreaseTable1(t *testing.T) {
	cases := []struct {
		bitsPerSec float64
		want       float64
	}{
		{9e9, 10},         // B > 1 Gb/s
		{1.5e9, 10},       // (1, 10] Gb/s decade
		{1e9, 1},          // exactly 1 Gb/s: ceil(9) = 9 → 10^0
		{5e8, 1},          // (100 Mb/s, 1 Gb/s]
		{1.00001e8, 1},    // just above 100 Mb/s
		{1e8, 0.1},        // exactly 100 Mb/s
		{5e7, 0.1},        // (10, 100] Mb/s
		{5e6, 0.01},       // (1, 10] Mb/s
		{5e5, 0.001},      // (0.1, 1] Mb/s
		{5e4, 1.0 / 1500}, // below 0.1 Mb/s: the 1/1500 floor (≈0.00067)
		{0, 1.0 / 1500},
		{-5, 1.0 / 1500},
	}
	for _, c := range cases {
		got := Increase(c.bitsPerSec, 1500)
		if math.Abs(got-c.want)/c.want > 1e-9 {
			t.Errorf("Increase(%g) = %g, want %g", c.bitsPerSec, got, c.want)
		}
	}
}

func TestIncreaseMSSScaling(t *testing.T) {
	// inc scales by 1500/MSS: a 500-byte MSS triples the packet count.
	a := Increase(5e8, 1500)
	b := Increase(5e8, 500)
	if math.Abs(b-3*a) > 1e-9 {
		t.Fatalf("MSS scaling: %g vs %g", b, 3*a)
	}
}

func newTestCC() *Native {
	cc := newCC(DefaultSYN, 1500, 25600)
	cc.SetPeriod(1e6) // 1 packet/s, out of slow start
	return cc
}

// ticksToRate simulates the per-SYN loop with ACKs arriving and a fixed
// capacity estimate, returning the number of ticks until the rate reaches
// target packets/s (or -1 if maxTicks elapses first).
func ticksToRate(cc *Native, capacity int32, target float64, maxTicks int) int {
	for i := 0; i < maxTicks; i++ {
		cc.OnACK(1, 0, capacity, 100_000)
		cc.OnRateTick()
		if cc.Rate() >= target {
			return i + 1
		}
	}
	return -1
}

// TestRecoveryTime reproduces §3.3's closed-form check: on a 1 Gb/s link
// (83,333 packets/s at 1500 B), recovering to 90% of the bandwidth takes
// about 750 SYN intervals = 7.5 s, because the increase parameter stays at
// 1 packet/SYN throughout the climb.
func TestRecoveryTime(t *testing.T) {
	const capacity = 83333 // pkts/s ≈ 1 Gb/s
	cc := newTestCC()
	got := ticksToRate(cc, capacity, 0.9*capacity, 2000)
	if got < 700 || got > 800 {
		t.Fatalf("90%% recovery took %d SYN, want ≈750", got)
	}
}

// TestRecoveryTime100M is the same check one decade down: 100 Mb/s recovers
// to 90% in ≈750 SYN too, because inc scales with the bandwidth decade.
func TestRecoveryTime100M(t *testing.T) {
	const capacity = 8333 // pkts/s ≈ 100 Mb/s
	cc := newTestCC()
	got := ticksToRate(cc, capacity, 0.9*capacity, 2000)
	if got < 650 || got > 850 {
		t.Fatalf("90%% recovery took %d SYN, want ≈750", got)
	}
}

func TestDecreaseOnNAK(t *testing.T) {
	cc := newTestCC()
	cc.SetPeriod(100) // 10,000 pkts/s
	cc.OnNAK(1_000_000, 500, 600)
	if p := cc.Period(); math.Abs(p-112.5) > 1e-9 {
		t.Fatalf("period after NAK = %v, want 112.5", p)
	}
	if !cc.Frozen(1_000_000 + 5000) {
		t.Fatal("sender must freeze for one SYN after a fresh loss event")
	}
	if cc.Frozen(1_000_000 + DefaultSYN + 1) {
		t.Fatal("freeze must end after one SYN")
	}
}

func TestEpochDecreaseBounded(t *testing.T) {
	// Within one congestion event, re-reported NAKs may trigger at most
	// decLimit decreases in total (the released implementation's
	// refinement); a fresh loss event starts a new epoch.
	cc := newTestCC()
	cc.SetPeriod(100)
	cc.OnNAK(0, 500, 600) // fresh: decrease #1; lastDecSeq = 600
	for i := 0; i < 100; i++ {
		cc.OnNAK(int64(i+1), 550, 600) // stale re-reports
	}
	maxP := 100 * math.Pow(1.125, decLimit)
	if cc.Period() > maxP+1e-9 {
		t.Fatalf("stale NAKs decreased beyond the epoch limit: %v > %v", cc.Period(), maxP)
	}
	if cc.Period() <= 100*1.125 {
		t.Fatalf("sustained stale NAKs should add decreases: %v", cc.Period())
	}
	// A fresh event beyond lastDecSeq decreases again and resets the epoch.
	p := cc.Period()
	cc.OnNAK(200, 650, 800)
	if math.Abs(cc.Period()-p*1.125) > 1e-9 {
		t.Fatalf("fresh-loss NAK: period %v, want %v", cc.Period(), p*1.125)
	}
}

func TestRateTickRequiresACKWithoutNAK(t *testing.T) {
	cc := newTestCC()
	cc.SetPeriod(1000)
	cc.OnRateTick() // no ACK since last tick: no increase
	if cc.Period() != 1000 {
		t.Fatalf("period changed without ACKs: %v", cc.Period())
	}
	cc.OnACK(1, 0, 83333, 100_000)
	cc.OnNAK(0, 5, 10)
	cc.OnRateTick() // NAK seen: no increase
	p := cc.Period()
	cc.OnACK(1, 0, 83333, 100_000)
	cc.OnRateTick() // clean SYN with ACK: increase
	if cc.Period() >= p {
		t.Fatalf("period did not decrease (rate increase): %v → %v", p, cc.Period())
	}
}

// TestAvailableBandwidthSelection verifies the §3.4 rule: before recovering
// past the pre-decrease rate, the estimate is min(L/9, L−C); afterwards L−C.
func TestAvailableBandwidthSelection(t *testing.T) {
	cc := newTestCC()
	cc.capacity = 90000
	cc.SetPeriod(1e6 / 80000.0) // C = 80,000 pkts/s
	cc.OnNAK(0, 5, 10)          // decrease: rateLastDec = 80,000, C → 71,111
	b := cc.availableBandwidth()
	want := 90000.0 / 9 // L/9 = 10,000 < L−C = 18,889
	if math.Abs(b-want) > 1 {
		t.Fatalf("post-decrease estimate = %v, want %v", b, want)
	}
	// Force C above rateLastDec: switch to L − C.
	cc.SetPeriod(1e6 / 85000.0)
	b = cc.availableBandwidth()
	if math.Abs(b-(90000-85000)) > 1 {
		t.Fatalf("recovered estimate = %v, want 5000", b)
	}
}

func TestSlowStart(t *testing.T) {
	cc := newCC(DefaultSYN, 1500, 1000)
	if !cc.SlowStart() {
		t.Fatal("must start in slow start")
	}
	if cc.Window() != SlowStartCwnd {
		t.Fatalf("initial window = %v", cc.Window())
	}
	cc.OnACK(100, 50000, 83333, 100_000)
	if cc.Window() != SlowStartCwnd+100 {
		t.Fatalf("window after 100 acked = %v", cc.Window())
	}
	// Reaching max window exits slow start with a period from the recv rate.
	cc.OnACK(2000, 50000, 83333, 100_000)
	if cc.SlowStart() {
		t.Fatal("slow start must end at max window")
	}
	if r := cc.Rate(); r < 40000 || r > 60000 {
		t.Fatalf("post-slow-start rate = %v, want ≈recv rate 50000", r)
	}
}

func TestSlowStartEndsOnNAK(t *testing.T) {
	cc := newCC(DefaultSYN, 1500, 25600)
	cc.OnACK(50, 20000, 0, 100_000)
	cc.OnNAK(0, 5, 60)
	if cc.SlowStart() {
		t.Fatal("slow start must end on first NAK")
	}
	if cc.Rate() <= 0 {
		t.Fatal("rate must be set on slow-start exit")
	}
}

func TestOnTimeoutDecreases(t *testing.T) {
	cc := newTestCC()
	cc.SetPeriod(100)
	cc.OnTimeout(50, 99)
	if math.Abs(cc.Period()-112.5) > 1e-9 {
		t.Fatalf("period after timeout = %v", cc.Period())
	}
	if !cc.Frozen(50 + 100) {
		t.Fatal("timeout must freeze sending")
	}
}

func TestMinPeriodClamp(t *testing.T) {
	cc := newTestCC()
	cc.SetPeriod(5)
	cc.SetMinPeriod(12) // real send cost 12 µs (§4.4)
	cc.OnACK(1, 0, 1<<30, 100_000)
	cc.OnRateTick()
	if cc.Period() < 12 {
		t.Fatalf("period %v below the real send cost clamp", cc.Period())
	}
}

func TestPeriodFloorAndCeiling(t *testing.T) {
	cc := newTestCC()
	cc.SetPeriod(2)
	for i := 0; i < 100; i++ {
		cc.OnNAK(int64(i)*100_000, int32(i*1000+999), int32(i*1000+1000))
	}
	if cc.Period() > 1e6 {
		t.Fatalf("period exceeded 1s ceiling: %v", cc.Period())
	}
	cc2 := newTestCC()
	cc2.SetPeriod(0.5)
	cc2.OnACK(1, 0, 1<<30, 100_000)
	cc2.OnRateTick()
	if cc2.Period() < 1 {
		t.Fatalf("period below 1 µs floor: %v", cc2.Period())
	}
}

func TestCapacityAndRateSmoothing(t *testing.T) {
	cc := newTestCC()
	cc.OnACK(1, 1000, 2000, 100_000)
	if cc.recvRate != 1000 || cc.capacity != 2000 {
		t.Fatalf("first samples not adopted: %v %v", cc.recvRate, cc.capacity)
	}
	for i := 0; i < 200; i++ {
		cc.OnACK(1, 3000, 6000, 100_000)
	}
	if math.Abs(cc.recvRate-3000) > 10 || math.Abs(cc.capacity-6000) > 10 {
		t.Fatalf("EWMA did not converge: %v %v", cc.recvRate, cc.capacity)
	}
	// Zero-valued feedback (unknown) must not disturb the estimates.
	cc.OnACK(1, 0, 0, 0)
	if math.Abs(cc.recvRate-3000) > 10 || math.Abs(cc.capacity-6000) > 10 {
		t.Fatal("zero feedback disturbed estimates")
	}
}
