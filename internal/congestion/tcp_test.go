package congestion

import (
	"math"
	"testing"
)

// windowControllers enumerates the TCP-family laws under test, with their
// expected post-loss window at a given pre-loss window.
var windowControllers = []struct {
	name string
	make Factory
	keep func(w float64) float64 // expected fraction kept on a loss event
}{
	{"ctcp", NewCTCP, func(float64) float64 { return 0.5 }},
	{"scalable", NewScalable, func(float64) float64 { return ScalableBeta }},
	{"hstcp", NewHSTCP, func(w float64) float64 { return 1 - HSBeta(w) }},
	{"bic", NewBIC, func(w float64) float64 {
		if w < BicLowWindow {
			return 0.5
		}
		return BicBeta
	}},
}

func newWindowCC(t *testing.T, f Factory) Controller {
	t.Helper()
	cc := f()
	cc.Init(Params{SYN: DefaultSYN, MSS: 1500, MaxWindow: 25600})
	return cc
}

// TestWindowSlowStartExit drives each controller through the virtual-clock
// slow-start script: exponential growth while below ssthresh, unpaced
// (period 0) throughout, then a first loss that ends slow start, shrinks
// the window by the law's decrease factor and starts pacing at
// (RTT+SYN)/cwnd.
func TestWindowSlowStartExit(t *testing.T) {
	const rtt = 100_000 // µs
	for _, wc := range windowControllers {
		t.Run(wc.name, func(t *testing.T) {
			cc := newWindowCC(t, wc.make)
			if cc.Window() != SlowStartCwnd {
				t.Fatalf("initial window = %v, want %v", cc.Window(), SlowStartCwnd)
			}
			if cc.Period() != 0 {
				t.Fatalf("slow start must be unpaced, period = %v", cc.Period())
			}
			cc.OnACK(100, 0, 0, rtt)
			if cc.Window() != SlowStartCwnd+100 {
				t.Fatalf("window after 100 acked = %v, want %v", cc.Window(), SlowStartCwnd+100)
			}
			if cc.Period() != 0 {
				t.Fatalf("still in slow start: period must stay 0, got %v", cc.Period())
			}
			// First loss: exit slow start with the law's decrease.
			pre := cc.Window()
			cc.OnNAK(1_000_000, 100, 120)
			want := pre * wc.keep(pre)
			if math.Abs(cc.Window()-want) > 1e-9 {
				t.Fatalf("window after first loss = %v, want %v", cc.Window(), want)
			}
			wantP := (float64(rtt) + float64(DefaultSYN)) / cc.Window()
			if math.Abs(cc.Period()-wantP) > 1e-9 {
				t.Fatalf("pacing period = %v, want (RTT+SYN)/cwnd = %v", cc.Period(), wantP)
			}
			// Window controllers never invoke the §3.3 one-SYN send freeze.
			if cc.Frozen(1_000_001) {
				t.Fatal("window-based law must not freeze the sender")
			}
		})
	}
}

// TestWindowSlowStartExitAtSsthresh checks that reaching maxCwnd also ends
// slow start (ssthresh starts at maxCwnd).
func TestWindowSlowStartExitAtSsthresh(t *testing.T) {
	for _, wc := range windowControllers {
		t.Run(wc.name, func(t *testing.T) {
			cc := wc.make()
			cc.Init(Params{SYN: DefaultSYN, MSS: 1500, MaxWindow: 100})
			cc.OnACK(200, 0, 0, 100_000)
			if cc.Window() != 100 {
				t.Fatalf("window must clamp to MaxWindow: %v", cc.Window())
			}
			if cc.Period() == 0 {
				t.Fatal("slow start must end at the window cap")
			}
		})
	}
}

// TestWindowNAKOncePerEvent verifies the §3.3-style congestion-event
// deduplication: re-reports of losses at or below the sequence sent at the
// previous decrease must not shrink the window again, while a fresh loss
// beyond it must.
func TestWindowNAKOncePerEvent(t *testing.T) {
	for _, wc := range windowControllers {
		t.Run(wc.name, func(t *testing.T) {
			cc := newWindowCC(t, wc.make)
			cc.OnACK(500, 0, 0, 100_000) // grow past the initial window
			cc.OnNAK(0, 400, 600)        // fresh event: decrease, lastDecSeq = 600
			w := cc.Window()
			for i := 0; i < 50; i++ {
				cc.OnNAK(int64(i+1), 450, 650) // re-reports within the event
			}
			if cc.Window() != w {
				t.Fatalf("stale re-reports shrank the window: %v → %v", w, cc.Window())
			}
			cc.OnNAK(100, 620, 700) // loss beyond lastDecSeq: new event
			want := w * wc.keep(w)
			if want < 2 {
				want = 2
			}
			if math.Abs(cc.Window()-want) > 1e-9 {
				t.Fatalf("fresh event window = %v, want %v", cc.Window(), want)
			}
		})
	}
}

// TestWindowTimeout verifies the EXP-timeout reaction: collapse to a
// two-packet window and re-enter slow start towards half the old window.
func TestWindowTimeout(t *testing.T) {
	for _, wc := range windowControllers {
		t.Run(wc.name, func(t *testing.T) {
			cc := newWindowCC(t, wc.make)
			cc.OnACK(500, 0, 0, 100_000)
			cc.OnNAK(0, 400, 600) // leave slow start
			pre := cc.Window()
			cc.OnTimeout(1_000_000, 700)
			if cc.Window() != 2 {
				t.Fatalf("window after timeout = %v, want 2", cc.Window())
			}
			if cc.Period() != 0 {
				t.Fatalf("timeout must re-enter unpaced slow start, period = %v", cc.Period())
			}
			// Growth must stop at ssthresh = pre/2, not at the old window.
			cc.OnACK(int(pre), 0, 0, 100_000)
			if cc.Period() == 0 {
				t.Fatal("slow start must end at ssthresh after timeout recovery")
			}
			if cc.Window() > pre/2+float64(int(pre)) { // sanity: bounded growth
				t.Fatalf("window grew unbounded after timeout: %v", cc.Window())
			}
		})
	}
}

// TestWindowPeriodTracksRTT checks that OnRateTick re-derives the pacing
// period when the RTT estimate moves, and that SetMinPeriod clamps it.
func TestWindowPeriodTracksRTT(t *testing.T) {
	for _, wc := range windowControllers {
		t.Run(wc.name, func(t *testing.T) {
			cc := newWindowCC(t, wc.make)
			cc.OnACK(100, 0, 0, 100_000)
			cc.OnNAK(0, 50, 120) // start pacing
			p := cc.Period()
			// RTT doubles: the EWMA drags the period up across ticks.
			for i := 0; i < 100; i++ {
				cc.OnACK(1, 0, 0, 200_000)
			}
			cc.OnRateTick()
			if cc.Period() <= p {
				t.Fatalf("period did not follow the RTT up: %v → %v", p, cc.Period())
			}
			cc.SetMinPeriod(1e5)
			cc.OnRateTick()
			if cc.Period() < 1e5 {
				t.Fatalf("period %v below the min-period clamp", cc.Period())
			}
		})
	}
}

// TestRegistry checks name resolution, the default, and the error path.
func TestRegistry(t *testing.T) {
	for _, name := range []string{"", "native", "ctcp", "scalable", "hstcp", "bic"} {
		f, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		cc := f()
		cc.Init(Params{SYN: DefaultSYN, MSS: 1500, MaxWindow: 100})
		want := name
		if want == "" {
			want = "native"
		}
		if cc.Name() != want {
			t.Fatalf("New(%q).Name() = %q", name, cc.Name())
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("New must reject unknown controller names")
	}
	names := Names()
	if len(names) != 6 {
		t.Fatalf("Names() = %v", names)
	}
}
