package congestion

import "math"

// This file is the single home of the TCP-family congestion-avoidance
// response functions the paper's §5.2 evaluation compares UDT against.
// The simulator's TCP model (internal/tcpsim) delegates here, so the laws
// the real-stack controllers run are exactly the ones the simulator's
// golden tests pin.

// HighSpeed TCP parameters (RFC 3649 §5).
const (
	hsLowWindow  = 38.0
	hsHighWindow = 83000.0
	hsHighDecr   = 0.1
)

// HSBeta returns HighSpeed TCP's decrease factor b(w): the fraction of the
// window shed on a loss event, interpolated on a log scale between the
// standard-TCP and high-window regimes (RFC 3649 §5).
func HSBeta(w float64) float64 {
	if w <= hsLowWindow {
		return 0.5
	}
	if w >= hsHighWindow {
		return hsHighDecr
	}
	f := (math.Log(w) - math.Log(hsLowWindow)) / (math.Log(hsHighWindow) - math.Log(hsLowWindow))
	return 0.5 + f*(hsHighDecr-0.5)
}

// HSAlpha returns HighSpeed TCP's per-RTT increase a(w), derived from the
// response function w = 0.12/p^0.835 (RFC 3649 §5):
//
//	a(w) = w² · p(w) · 2·b(w) / (2 − b(w)),  p(w) = 0.078 / w^1.2
func HSAlpha(w float64) float64 {
	if w <= hsLowWindow {
		return 1
	}
	p := 0.078 / math.Pow(w, 1.2)
	b := HSBeta(w)
	return w * w * p * 2 * b / (2 - b)
}

// Scalable TCP parameters (Kelly's MIMD proposal, §5.2).
const (
	// ScalableAlpha is the window increment per acknowledged packet.
	ScalableAlpha = 0.01
	// ScalableBeta is the window fraction kept on a loss event.
	ScalableBeta = 0.875
)

// BIC TCP parameters (Xu, Harfoush, Rhee, INFOCOM '04; the authors'
// recommended values).
const (
	// BicLowWindow is the window below which BIC behaves as standard TCP.
	BicLowWindow = 14.0
	// BicSMax is BIC's maximum window increment per RTT.
	BicSMax = 32.0
	// BicSMin is BIC's minimum window increment per RTT.
	BicSMin = 0.01
	// BicBeta is the window fraction kept on a loss event (above
	// BicLowWindow; standard TCP's 0.5 applies below it).
	BicBeta = 0.875
)

// BicIncrease returns BIC's per-RTT window increment given the current
// window and the binary-search state: the window kept after the last loss
// (wMin) and the window the loss occurred at (wMax). Below wMax it
// binary-searches towards the midpoint; above, it probes additively away
// from the old maximum.
func BicIncrease(w, wMin, wMax float64) float64 {
	if w < BicLowWindow {
		return 1 // standard TCP region
	}
	var inc float64
	if w < wMax {
		// Binary search towards the midpoint of [wMin, wMax].
		inc = (wMin+wMax)/2 - w
	} else {
		// Max probing: slow start away from the old maximum.
		inc = w - wMax + 1
	}
	if inc > BicSMax {
		inc = BicSMax
	}
	if inc < BicSMin {
		inc = BicSMin
	}
	return inc
}
