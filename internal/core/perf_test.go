package core

import (
	"testing"

	"udt/internal/seqno"
	"udt/internal/trace"
)

// TestPerfSampling checks cadence, identity stamping and the counter-delta
// rate computation of the engine's telemetry sampler.
func TestPerfSampling(t *testing.T) {
	c := NewConn(Config{}, 500)
	ring := trace.NewRing(32)
	c.SetPerfSink(ring, 2, 7, "udt", trace.RoleReceiver)
	c.Start(0)
	syn := c.Config().SYN

	seq := int32(500)
	for i := 1; i <= 8; i++ {
		now := int64(i) * syn
		// Keep the peer "alive" and deliver 5 packets per SYN.
		for k := 0; k < 5; k++ {
			if !c.HandleData(now-syn/2, seq) {
				t.Fatalf("packet %d not fresh", seq)
			}
			seq = seqno.Inc(seq)
		}
		c.Advance(now)
		for {
			if _, ok := c.PopOut(); !ok {
				break
			}
		}
	}

	// 8 SYN ticks sampled every 2 → 4 records at T = 2,4,6,8 SYN.
	if ring.Len() != 4 {
		t.Fatalf("got %d records, want 4", ring.Len())
	}
	recs := ring.Snapshot()
	for i, r := range recs {
		if r.Flow != 7 || r.Label != "udt" || r.Role != trace.RoleReceiver {
			t.Fatalf("record %d identity wrong: %+v", i, r)
		}
		if want := int64(2*(i+1)) * syn; r.T != want {
			t.Fatalf("record %d at T=%d, want %d", i, r.T, want)
		}
		if r.IntervalUs != 2*syn {
			t.Fatalf("record %d interval %d, want %d", i, r.IntervalUs, 2*syn)
		}
		// 10 fresh packets per 2-SYN interval.
		if want := int64(10 * (i + 1)); r.PktsRecv != want {
			t.Fatalf("record %d PktsRecv=%d, want %d", i, r.PktsRecv, want)
		}
		if r.RecvMbps <= 0 {
			t.Fatalf("record %d RecvMbps=%v, want > 0", i, r.RecvMbps)
		}
	}
	// 10 pkts × 1500 B × 8 b over 20 ms = 6 Mb/s.
	if got := recs[0].RecvMbps; got != 6 {
		t.Fatalf("RecvMbps = %v, want 6", got)
	}
}

// TestPerfSamplingZeroAlloc verifies that a full Advance cycle with an
// attached ring sink allocates nothing in steady state: telemetry must not
// break the zero-allocation hot-path guarantees from PR 1.
func TestPerfSamplingZeroAlloc(t *testing.T) {
	c := NewConn(Config{}, 500)
	ring := trace.NewRing(64)
	c.SetPerfSink(ring, 1, 0, "udt", trace.RoleFlow)
	c.Start(0)
	syn := c.Config().SYN
	now := int64(0)
	step := func() {
		now += syn
		c.HandleKeepAlive(now) // peer stays alive; EXP never fires
		c.Advance(now)
		for {
			if _, ok := c.PopOut(); !ok {
				break
			}
		}
	}
	for i := 0; i < 64; i++ {
		step() // warm up outbox capacity and the ring
	}
	if allocs := testing.AllocsPerRun(500, step); allocs != 0 {
		t.Fatalf("Advance with perf sink allocated %.1f per cycle, want 0", allocs)
	}
}

// TestPerfSinkDetach checks that a nil sink stops sampling.
func TestPerfSinkDetach(t *testing.T) {
	c := NewConn(Config{}, 500)
	ring := trace.NewRing(8)
	c.SetPerfSink(ring, 1, 0, "udt", trace.RoleFlow)
	c.Start(0)
	syn := c.Config().SYN
	c.Advance(syn)
	if ring.Len() != 1 {
		t.Fatalf("got %d records before detach, want 1", ring.Len())
	}
	c.SetPerfSink(nil, 1, 0, "", trace.RoleFlow)
	c.Advance(2 * syn)
	if ring.Len() != 1 {
		t.Fatalf("sampling continued after detach: %d records", ring.Len())
	}
}
