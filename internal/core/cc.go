// Package core implements the UDT protocol engine — the paper's primary
// contribution. It is deliberately transport-agnostic: no goroutines, no
// sockets, no wall clock. The real UDP transport (package udt) and the
// network simulator endpoint (internal/udtsim) both drive the same engine,
// so every control-law experiment in the evaluation exercises exactly the
// code that ships in the library.
//
// The engine splits into the connection state machine binding the sender
// and receiver roles with their four timers (conn.go, §3.1–§3.2 and §4.8)
// and the send/receive buffers with the overlapped-IO receive path
// (buffer.go, §4.3 and §4.6). The rate/congestion controller (paper
// §3.3–§3.4) lives behind the internal/congestion Controller interface:
// the native UDT AIMD is the default, and Config.CC swaps in alternative
// laws (Reno-style AIMD, Scalable TCP, HighSpeed TCP) for the paper's
// §5.2 comparisons on the real stack.
package core

import "udt/internal/congestion"

// CC is the native UDT rate controller (paper §3.3), now implemented in
// internal/congestion; the alias keeps the engine-side name the paper era
// of this repository used.
type CC = congestion.Native

// DefaultSYN is the constant rate-control and acknowledgement interval
// (0.01 s), re-exported from internal/congestion.
const DefaultSYN = congestion.DefaultSYN

// slowStartCwnd is the initial sender window before any feedback, shared
// with every controller in internal/congestion.
const slowStartCwnd = congestion.SlowStartCwnd

// NewCC returns a native controller for the given SYN interval (µs),
// packet size (bytes on the wire, the paper's MSS) and maximum window
// (packets), fully initialized.
func NewCC(syn int64, mss int, maxWindow int) *CC {
	cc := congestion.NewNative()
	cc.Init(congestion.Params{SYN: syn, MSS: mss, MaxWindow: maxWindow})
	return cc
}

// Increase computes formula (1), re-exported from internal/congestion for
// the Table 1 reproduction.
func Increase(bitsPerSec float64, mss float64) float64 {
	return congestion.Increase(bitsPerSec, mss)
}
