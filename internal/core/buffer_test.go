package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"udt/internal/seqno"
)

func TestSndBufferWritePacketRelease(t *testing.T) {
	b := NewSndBuffer(4, 10, 100)
	if b.Free() != 4 || b.Pending() != 0 {
		t.Fatal("fresh buffer state wrong")
	}
	n := b.Write([]byte("abcdefghijklmno")) // 15 bytes → packets of 10 and 5
	if n != 15 || b.Pending() != 2 {
		t.Fatalf("Write = %d, pending = %d", n, b.Pending())
	}
	if b.NextWriteSeq() != 102 {
		t.Fatalf("NextWriteSeq = %d", b.NextWriteSeq())
	}
	p, ok := b.Packet(100)
	if !ok || string(p) != "abcdefghij" {
		t.Fatalf("Packet(100) = %q,%v", p, ok)
	}
	p, ok = b.Packet(101)
	if !ok || string(p) != "klmno" {
		t.Fatalf("Packet(101) = %q,%v", p, ok)
	}
	if _, ok := b.Packet(102); ok {
		t.Fatal("unwritten packet returned")
	}
	if _, ok := b.Packet(99); ok {
		t.Fatal("pre-head packet returned")
	}
	if k := b.Release(101); k != 1 {
		t.Fatalf("Release = %d", k)
	}
	if _, ok := b.Packet(100); ok {
		t.Fatal("released packet still accessible")
	}
	if b.Release(101) != 0 {
		t.Fatal("idempotent release broke")
	}
}

func TestSndBufferFull(t *testing.T) {
	b := NewSndBuffer(2, 10, 0)
	if n := b.Write(make([]byte, 100)); n != 20 {
		t.Fatalf("Write into full = %d, want 20", n)
	}
	if n := b.Write([]byte("x")); n != 0 {
		t.Fatalf("Write into full buffer = %d", n)
	}
	b.Release(1)
	if n := b.Write([]byte("x")); n != 1 {
		t.Fatalf("Write after release = %d", n)
	}
}

func TestSndBufferShortTailPerWrite(t *testing.T) {
	b := NewSndBuffer(8, 10, 0)
	b.Write([]byte("12345"))   // short packet 0
	b.Write([]byte("abcdefg")) // short packet 1: writes never share packets
	p0, _ := b.Packet(0)
	p1, _ := b.Packet(1)
	if string(p0) != "12345" || string(p1) != "abcdefg" {
		t.Fatalf("packets: %q %q", p0, p1)
	}
}

func TestSndBufferWrapSeq(t *testing.T) {
	b := NewSndBuffer(4, 2, seqno.Max-1)
	b.Write([]byte("aabbcc"))
	if p, ok := b.Packet(seqno.Max); !ok || string(p) != "bb" {
		t.Fatalf("wrap Packet = %q,%v", p, ok)
	}
	if p, ok := b.Packet(0); !ok || string(p) != "cc" {
		t.Fatalf("wrap Packet(0) = %q,%v", p, ok)
	}
	if k := b.Release(0); k != 2 {
		t.Fatalf("wrap Release = %d", k)
	}
}

func TestRcvBufferInOrder(t *testing.T) {
	b := NewRcvBuffer(8, 4, 10)
	if !b.Store(10, []byte("abcd")) || !b.Store(11, []byte("ef")) {
		t.Fatal("Store failed")
	}
	if b.Available() != 6 {
		t.Fatalf("Available = %d", b.Available())
	}
	out := make([]byte, 3)
	if n := b.Read(out); n != 3 || string(out) != "abc" {
		t.Fatalf("Read = %d %q", n, out)
	}
	out = make([]byte, 10)
	if n := b.Read(out); n != 3 || string(out[:n]) != "def" {
		t.Fatalf("Read = %d %q", n, out[:n])
	}
	if b.Available() != 0 || b.Free() != 8 {
		t.Fatal("buffer should be drained")
	}
}

func TestRcvBufferOutOfOrderAndDup(t *testing.T) {
	b := NewRcvBuffer(8, 4, 0)
	if !b.Store(2, []byte("cccc")) {
		t.Fatal("out-of-order Store failed")
	}
	if b.Available() != 0 {
		t.Fatal("hole must block availability")
	}
	if b.Store(2, []byte("cccc")) {
		t.Fatal("duplicate accepted")
	}
	b.Store(0, []byte("aaaa"))
	b.Store(1, []byte("bbbb"))
	if b.Available() != 12 {
		t.Fatalf("Available = %d", b.Available())
	}
	out := make([]byte, 12)
	b.Read(out)
	if string(out) != "aaaabbbbcccc" {
		t.Fatalf("Read %q", out)
	}
	if b.Store(1, []byte("bbbb")) {
		t.Fatal("pre-base duplicate accepted")
	}
}

func TestRcvBufferWindowBound(t *testing.T) {
	b := NewRcvBuffer(4, 4, 0)
	if b.Store(4, []byte("xxxx")) {
		t.Fatal("store beyond window accepted")
	}
	for i := int32(0); i < 4; i++ {
		b.Store(i, []byte("aaaa"))
	}
	if b.Free() != 0 {
		t.Fatalf("Free = %d", b.Free())
	}
}

func TestRcvBufferOverlappedDirect(t *testing.T) {
	b := NewRcvBuffer(8, 4, 0)
	user := make([]byte, 12) // 3 packets
	if !b.AttachUser(user) {
		t.Fatal("AttachUser failed on drained buffer")
	}
	if b.AttachUser(user) {
		t.Fatal("double attach accepted")
	}
	b.Store(0, []byte("aaaa"))
	b.Store(1, []byte("bbbb"))
	direct := b.DetachUser()
	if direct != 8 {
		t.Fatalf("direct bytes = %d, want 8", direct)
	}
	if string(user[:8]) != "aaaabbbb" {
		t.Fatalf("user buffer = %q", user[:8])
	}
	if b.DirectBytes != 8 || b.CopiedBytes != 0 {
		t.Fatalf("counters: direct=%d copied=%d", b.DirectBytes, b.CopiedBytes)
	}
	if b.Available() != 0 {
		t.Fatal("consumed data still available")
	}
	// Buffer continues to work for the next packets.
	b.Store(2, []byte("cccc"))
	out := make([]byte, 4)
	if b.Read(out); string(out) != "cccc" {
		t.Fatalf("post-detach Read = %q", out)
	}
}

func TestRcvBufferOverlappedHoleCopyBack(t *testing.T) {
	b := NewRcvBuffer(8, 4, 0)
	user := make([]byte, 16)
	b.AttachUser(user)
	b.Store(0, []byte("aaaa"))
	b.Store(2, []byte("cccc")) // hole at 1: packet 2 is stranded in user memory
	direct := b.DetachUser()
	if direct != 4 {
		t.Fatalf("direct = %d, want 4 (only the contiguous head)", direct)
	}
	// Clobber the user buffer: packet 2 must have been copied back.
	for i := range user {
		user[i] = 'X'
	}
	b.Store(1, []byte("bbbb"))
	out := make([]byte, 8)
	if n := b.Read(out); n != 8 || string(out) != "bbbbcccc" {
		t.Fatalf("after copy-back Read = %q", out[:n])
	}
}

func TestRcvBufferOverlappedShortPacketFallsBack(t *testing.T) {
	b := NewRcvBuffer(8, 4, 0)
	user := make([]byte, 16)
	b.AttachUser(user)
	b.Store(0, []byte("ab")) // short packet: slot path
	if b.DirectBytes != 0 || b.CopiedBytes != 2 {
		t.Fatalf("short packet placement: direct=%d copied=%d", b.DirectBytes, b.CopiedBytes)
	}
	if d := b.DetachUser(); d != 0 {
		t.Fatalf("direct = %d, want 0", d)
	}
	out := make([]byte, 2)
	b.Read(out)
	if string(out) != "ab" {
		t.Fatalf("Read = %q", out)
	}
}

func TestRcvBufferAttachRules(t *testing.T) {
	b := NewRcvBuffer(8, 4, 0)
	if b.AttachUser(make([]byte, 3)) {
		t.Fatal("attach of sub-packet buffer accepted")
	}
	b.Store(0, []byte("aaaa"))
	if b.AttachUser(make([]byte, 8)) {
		t.Fatal("attach with stored data accepted")
	}
	if b.DetachUser() != 0 {
		t.Fatal("detach without attach should be 0")
	}
}

// TestPropRcvBufferRandomOrder delivers a random permutation with duplicates
// and checks the reader sees the exact original stream.
func TestPropRcvBufferRandomOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const pkts, payload = 64, 8
		base := int32(rng.Intn(1 << 20))
		want := make([]byte, pkts*payload)
		rng.Read(want)
		b := NewRcvBuffer(pkts, payload, base)
		order := rng.Perm(pkts)
		for _, i := range order {
			pl := want[i*payload : (i+1)*payload]
			if !b.Store(seqno.Add(base, int32(i)), pl) {
				return false
			}
			if rng.Intn(4) == 0 { // duplicate must be rejected
				if b.Store(seqno.Add(base, int32(i)), pl) {
					return false
				}
			}
		}
		got := make([]byte, pkts*payload)
		if n := b.Read(got); n != len(got) {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropSndRcvPipe pushes a random stream through SndBuffer → RcvBuffer
// with random chunk sizes and verifies byte-exact delivery.
func TestPropSndRcvPipe(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const payload = 16
		want := make([]byte, 1+rng.Intn(2000))
		rng.Read(want)
		snd := NewSndBuffer(256, payload, 0)
		rcv := NewRcvBuffer(256, payload, 0)
		var got []byte
		src := want
		seq := int32(0)
		for len(src) > 0 || snd.Pending() > 0 {
			if len(src) > 0 {
				n := snd.Write(src[:min(len(src), 1+rng.Intn(50))])
				src = src[n:]
			}
			for snd.Pending() > 0 {
				p, ok := snd.Packet(seq)
				if !ok {
					return false
				}
				if !rcv.Store(seq, p) {
					return false
				}
				snd.Release(seqno.Inc(seq))
				seq = seqno.Inc(seq)
			}
			buf := make([]byte, 64)
			for {
				n := rcv.Read(buf)
				if n == 0 {
					break
				}
				got = append(got, buf[:n]...)
			}
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestSndBufferWriteZC checks the zero-copy write path: packets alias the
// caller's memory (no copy), chunking matches Write exactly, Release
// drops the alias so the caller may unpin the backing memory, and mixed
// Write/WriteZC traffic never serves stale external bytes.
func TestSndBufferWriteZC(t *testing.T) {
	b := NewSndBuffer(4, 10, 100)
	src := []byte("abcdefghijklmno") // packets of 10 and 5, like Write
	if n := b.WriteZC(src); n != 15 || b.Pending() != 2 {
		t.Fatalf("WriteZC = %d, pending = %d", n, b.Pending())
	}
	p, ok := b.Packet(100)
	if !ok || string(p) != "abcdefghij" {
		t.Fatalf("Packet(100) = %q,%v", p, ok)
	}
	if &p[0] != &src[0] {
		t.Fatal("zero-copy packet does not alias the source")
	}
	// Mutating the source must show through: the slot holds no copy.
	src[0] = 'Z'
	if p, _ := b.Packet(100); p[0] != 'Z' {
		t.Fatal("packet did not reflect source mutation; a copy was made")
	}
	p, ok = b.Packet(101)
	if !ok || string(p) != "klmno" || &p[0] != &src[10] {
		t.Fatalf("Packet(101) = %q,%v (aliased=%v)", p, ok, ok && &p[0] == &src[10])
	}
	if k := b.Release(102); k != 2 {
		t.Fatalf("Release = %d", k)
	}
	for i := range b.ext {
		if b.ext[i] != nil {
			t.Fatalf("ext slot %d still pins caller memory after release", i)
		}
	}
	// A copied write reusing the same slots must not resurface external
	// bytes.
	if n := b.Write([]byte("0123456789XY")); n != 12 {
		t.Fatalf("Write = %d", n)
	}
	if p, ok := b.Packet(102); !ok || string(p) != "0123456789" {
		t.Fatalf("Packet(102) after slot reuse = %q,%v", p, ok)
	}
	if p, ok := b.Packet(103); !ok || string(p) != "XY" {
		t.Fatalf("Packet(103) after slot reuse = %q,%v", p, ok)
	}
}

// TestSndBufferWriteZCInterleaved mixes copied and zero-copy writes in
// one stream: packet contents must come out in write order regardless of
// which path queued them.
func TestSndBufferWriteZCInterleaved(t *testing.T) {
	b := NewSndBuffer(8, 4, 0)
	b.Write([]byte("AAAA"))
	zc := []byte("BBBBCC")
	b.WriteZC(zc)
	b.Write([]byte("DD"))
	want := []string{"AAAA", "BBBB", "CC", "DD"}
	for i, w := range want {
		p, ok := b.Packet(int32(i))
		if !ok || string(p) != w {
			t.Fatalf("Packet(%d) = %q,%v want %q", i, p, ok, w)
		}
	}
}
