package core

import (
	"udt/internal/congestion"
	"udt/internal/flow"
	"udt/internal/losslist"
	"udt/internal/packet"
	"udt/internal/seqno"
)

// Config carries the negotiable parameters of a UDT connection.
type Config struct {
	// MSS is the fixed packet size in bytes on the wire (UDT header +
	// payload), the paper's maximum segment size. Default 1500.
	MSS int
	// SYN is the rate-control / acknowledgement interval in µs. Default
	// 10000 (0.01 s). Changing it trades efficiency against TCP friendliness
	// and stability (§3.7); the ablation benchmark sweeps it.
	SYN int64
	// ISN is this side's initial data sequence number.
	ISN int32
	// MaxFlowWindow bounds the number of unacknowledged packets. Default 25600.
	MaxFlowWindow int32
	// RecvBufPkts is the receiver buffer advertised before the transport
	// installs an AvailBuf callback. Default MaxFlowWindow.
	RecvBufPkts int32
	// NAKReportLimit caps loss ranges carried per NAK packet. Default 128.
	NAKReportLimit int
	// MinEXP is the floor of the EXP (expiration) timer in µs. Default 300 ms.
	MinEXP int64
	// PeerDeathTime is how long without any peer packet before the
	// connection is declared broken. Default 5 s (with ≥16 expirations).
	PeerDeathTime int64
	// SockID names this endpoint on a shared (multiplexed) socket; zero
	// means the connection has a private socket. The engine never acts on
	// it — it is carried through for telemetry and debugging, so transports
	// and tools can correlate engine state with demultiplexer entries.
	SockID int32
	// CC constructs the connection's congestion controller. Nil selects
	// the native UDT AIMD (§3.3). The engine calls the factory once in
	// NewConn and Init's the controller with the connection constants.
	CC congestion.Factory
}

func (c *Config) fill() {
	if c.MSS == 0 {
		c.MSS = 1500
	}
	if c.SYN == 0 {
		c.SYN = DefaultSYN
	}
	if c.MaxFlowWindow == 0 {
		c.MaxFlowWindow = 25600
	}
	if c.RecvBufPkts == 0 {
		c.RecvBufPkts = c.MaxFlowWindow
	}
	if c.NAKReportLimit == 0 {
		c.NAKReportLimit = 128
	}
	if c.MinEXP == 0 {
		c.MinEXP = 300_000
	}
	if c.PeerDeathTime == 0 {
		c.PeerDeathTime = 5_000_000
	}
}

// OutKind discriminates queued control emissions.
type OutKind int

// Control emissions produced by the engine for the transport to serialize.
const (
	OutACK OutKind = iota
	OutNAK
	OutACK2
	OutKeepAlive
	OutShutdown
)

// Out is one control packet the engine asks the transport to send.
type Out struct {
	Kind   OutKind
	ACK    packet.ACK     // valid for OutACK
	Losses []packet.Range // valid for OutNAK
	AckID  int32          // valid for OutACK2
}

// Stats counts protocol events; all fields are owned by the engine and may
// be read between calls.
type Stats struct {
	PktsSent       int64
	PktsRetrans    int64
	PktsRecv       int64
	PktsDup        int64
	ACKsSent       int64
	ACKsRecv       int64
	NAKsSent       int64
	NAKsRecv       int64
	LossDetected   int64 // packets the receiver detected missing
	LossEvents     int64 // loss bursts (one per detection gap)
	Timeouts       int64
	SndFreezes     int64
	WindowLimited  int64 // send attempts blocked by the flow window
	PacingDeferred int64 // send attempts blocked by the sending period
}

// Conn is the duplex UDT protocol engine for one established connection:
// sender and receiver roles plus the four timers — ACK, NAK, SYN (rate
// control) and EXP (§4.8). It owns no I/O and no clock; the transport feeds
// packets and the current time in, polls NextSend for data-path permission,
// and drains the Outbox of control emissions.
type Conn struct {
	cfg Config
	cc  congestion.Controller

	// AvailBuf reports the receiver buffer space in packets for flow
	// control advertisements. Installed by the transport.
	AvailBuf func() int32

	// Sender state.
	sndLoss      *losslist.Sender
	curSeq       int32 // largest data sequence sent
	sndLastAck   int32 // everything before this is acknowledged
	peerWindow   int32 // flow window advertised by the peer: min(W = AS·(SYN+RTT), its free buffer)
	forcedWindow int32 // ablation override; see ForceWindow
	sendSchedule float64
	sentAny      bool

	// Receiver state.
	rcvLoss       *losslist.Receiver
	peerISN       int32
	lrsn          int32 // largest received sequence number
	gotAnyData    bool
	prevSeq       int32 // immediately previous arrival, for packet-pair spotting
	prevArrival   int64
	arrival       *flow.ArrivalWindow
	burstArr      *flow.ArrivalWindow
	probe         *flow.ProbeWindow
	ackWin        *flow.AckWindow
	rtt           *flow.RTT
	lastAckSeq    int32 // cumulative position of the last ACK we sent
	lastAdvWindow int32 // last advertised flow window
	ackID         int32
	sinceACK      int32 // fresh packets since the last ACK emission
	dupSinceACK   int32 // duplicate packets since the last ACK emission

	// Timers: absolute deadlines in µs.
	tACK, tNAK, tSYN, tEXP int64
	expCount               int64
	lastRsp                int64 // when we last heard from the peer

	started bool
	closed  bool
	broken  bool

	outbox []Out

	// Telemetry sampler; inert until SetPerfSink attaches a sink.
	perf perfState

	// Stats accumulates event counters.
	Stats Stats
}

// NewConn returns an engine for a connection whose outgoing stream starts at
// cfg.ISN and whose peer's stream starts at peerISN (from the handshake).
func NewConn(cfg Config, peerISN int32) *Conn {
	cfg.fill()
	// The receiver loss list grows on demand, so it starts small even for
	// huge windows (a 400-flow simulation would otherwise pre-allocate
	// hundreds of megabytes of slots).
	lossCap := int(cfg.MaxFlowWindow) * 2
	if lossCap > 4096 {
		lossCap = 4096
	}
	var ctrl congestion.Controller
	if cfg.CC != nil {
		ctrl = cfg.CC()
	} else {
		ctrl = congestion.NewNative()
	}
	ctrl.Init(congestion.Params{SYN: cfg.SYN, MSS: cfg.MSS, MaxWindow: int(cfg.MaxFlowWindow)})
	c := &Conn{
		cfg:        cfg,
		cc:         ctrl,
		sndLoss:    losslist.NewSender(),
		rcvLoss:    losslist.NewReceiver(lossCap),
		curSeq:     seqno.Dec(cfg.ISN),
		sndLastAck: cfg.ISN,
		peerWindow: slowStartCwnd,
		peerISN:    peerISN,
		lrsn:       seqno.Dec(peerISN),
		prevSeq:    -1,
		arrival:    flow.NewArrivalWindow(flow.DefaultArrivalWindow),
		burstArr:   flow.NewBurstArrivalWindow(flow.DefaultArrivalWindow),
		probe:      flow.NewProbeWindow(flow.DefaultProbeWindow),
		ackWin:     flow.NewAckWindow(ackWindowSize(cfg.RecvBufPkts)),
		rtt:        flow.NewRTT(100_000),
		lastAckSeq: peerISN,
	}
	c.AvailBuf = func() int32 { return c.cfg.RecvBufPkts }
	return c
}

// ackWindowSize scales the ACK↔ACK2 matching history with the receive
// buffer: outstanding ACK records are bounded by how much the peer can
// have in flight, so a small-buffer flow (100k-flow deployments shrink
// buffers to fit) doesn't pay the reference implementation's fixed 1024
// entries (~16 KB per connection). Default-sized flows keep exactly the
// UDT constant.
func ackWindowSize(recvBufPkts int32) int {
	n := int(recvBufPkts)
	if n > 1024 {
		n = 1024
	}
	if n < 64 {
		n = 64
	}
	return n
}

// Start arms the timers; call once when the connection is established.
func (c *Conn) Start(now int64) {
	c.started = true
	c.lastRsp = now
	c.tACK = now + c.cfg.SYN
	c.tNAK = now + c.cfg.SYN
	c.tSYN = now + c.cfg.SYN
	c.tEXP = now + c.expInterval()
	c.sendSchedule = float64(now)
}

// CC exposes the native UDT rate controller when it is the installed law
// (read-mostly; used by experiments and ablations), or nil when Config.CC
// selected a different controller. Generic access goes through Controller.
func (c *Conn) CC() *CC {
	n, _ := c.cc.(*CC)
	return n
}

// Controller exposes the installed congestion controller, whichever law
// it runs. Callers must not invoke its mutating callbacks; the engine owns
// the callback schedule.
func (c *Conn) Controller() congestion.Controller { return c.cc }

// RTT returns the smoothed round-trip time estimate in µs.
func (c *Conn) RTT() int64 { return c.rtt.Smoothed() }

// Config returns the (filled) connection configuration.
func (c *Conn) Config() Config { return c.cfg }

// SockID returns this endpoint's socket ID on a shared (multiplexed)
// socket, or zero for a private socket. See Config.SockID.
func (c *Conn) SockID() int32 { return c.cfg.SockID }

// Closed reports whether the connection was shut down locally or by the peer.
func (c *Conn) Closed() bool { return c.closed }

// Broken reports whether the peer stopped responding (EXP death, §4.8).
func (c *Conn) Broken() bool { return c.broken }

// CurSeq returns the largest data sequence number sent so far.
func (c *Conn) CurSeq() int32 { return c.curSeq }

// SndLastAck returns the first unacknowledged sequence number.
func (c *Conn) SndLastAck() int32 { return c.sndLastAck }

// LRSN returns the largest received sequence number.
func (c *Conn) LRSN() int32 { return c.lrsn }

// Unacked returns the number of packets in flight.
func (c *Conn) Unacked() int32 {
	return seqno.Off(c.sndLastAck, c.curSeq) + 1
}

// ForceWindow pins the effective flow window to w packets, overriding the
// peer's advertisements and the slow-start window. Zero restores normal
// operation. It exists for the paper's flow-control ablation (Fig. 7):
// "UDT without FC" is UDT with the window pinned at the maximum.
func (c *Conn) ForceWindow(w int32) { c.forcedWindow = w }

// FlowWindow returns the current effective send window in packets: the
// peer-advertised min(W, buffer) bounded by the local slow-start window.
func (c *Conn) FlowWindow() int32 {
	if c.forcedWindow > 0 {
		return c.forcedWindow
	}
	w := c.peerWindow
	if ccw := int32(c.cc.Window()); ccw < w {
		w = ccw
	}
	if w < 1 {
		w = 1
	}
	return w
}

// emit queues a control packet for the transport.
func (c *Conn) emit(o Out) { c.outbox = append(c.outbox, o) }

// PopOut removes and returns the next queued control emission.
func (c *Conn) PopOut() (Out, bool) {
	if len(c.outbox) == 0 {
		return Out{}, false
	}
	o := c.outbox[0]
	copy(c.outbox, c.outbox[1:])
	c.outbox = c.outbox[:len(c.outbox)-1]
	return o, true
}

// PendingOut reports how many control emissions are queued.
func (c *Conn) PendingOut() int { return len(c.outbox) }

// nakInterval is the per-node re-report spacing: time for a retransmission
// round trip plus one pacing interval; re-reports back off linearly on top
// of it (losslist.Receiver.Report, §3.5).
func (c *Conn) nakInterval() int64 {
	iv := c.rtt.RTO() + c.cfg.SYN
	if iv < 2*c.cfg.SYN {
		iv = 2 * c.cfg.SYN
	}
	return iv
}

func (c *Conn) expInterval() int64 {
	n := c.expCount
	if n < 1 {
		n = 1
	}
	iv := n*c.rtt.RTO() + c.cfg.SYN
	// Ceiling the linear backoff at PeerDeathTime/16 so the 16 expirations
	// death detection requires fit within the configured limit. Without it,
	// an unconverged RTO (initial 300 ms) pushes detection to 136·RTO ≈
	// 40 s — unbounded by PeerDeathTime, which is the knob operators set.
	if ceil := c.cfg.PeerDeathTime / 16; iv > ceil {
		iv = ceil
	}
	if iv < c.cfg.MinEXP {
		iv = c.cfg.MinEXP
	}
	return iv
}

// peerAlive resets expiration tracking; called on every packet from the peer.
func (c *Conn) peerAlive(now int64) {
	c.lastRsp = now
	c.expCount = 0
	c.tEXP = now + c.expInterval()
}

// Advance fires every timer whose deadline has passed. The transport calls
// it whenever the clock may have crossed NextTimer (after receives, sends,
// or timeout wakeups).
func (c *Conn) Advance(now int64) {
	if !c.started || c.closed {
		return
	}
	// Periodic timers catch up arithmetically: after an idle stretch the
	// deadline jumps to the first multiple of SYN past now in O(1), and the
	// handler still runs exactly once per Advance — identical behavior to
	// stepping the deadline in a loop, without O(gap/SYN) iterations when a
	// long-quiescent connection finally wakes.
	if now >= c.tSYN {
		c.cc.OnRateTick()
		c.tSYN += ((now-c.tSYN)/c.cfg.SYN + 1) * c.cfg.SYN
		if c.perf.sink != nil {
			c.perfTick(now)
		}
	}
	if now >= c.tACK {
		c.sendACK(now)
		c.tACK += ((now-c.tACK)/c.cfg.SYN + 1) * c.cfg.SYN
	}
	if now >= c.tNAK {
		c.sendNAK(now)
		c.tNAK += ((now-c.tNAK)/c.cfg.SYN + 1) * c.cfg.SYN
	}
	if now >= c.tEXP {
		c.onEXP(now)
	}
}

// NextTimer returns the earliest control-timer deadline.
func (c *Conn) NextTimer() int64 {
	d := c.tACK
	if c.tNAK < d {
		d = c.tNAK
	}
	if c.tSYN < d {
		d = c.tSYN
	}
	if c.tEXP < d {
		d = c.tEXP
	}
	return d
}

// Quiescent reports whether the engine has no protocol work pending:
// nothing in flight, no loss to repair or report, no control output
// queued, and every byte the peer sent acknowledged. A quiescent engine's
// periodic ACK/NAK handlers are provably no-ops (sendACK has no progress,
// duplicate, or reopening to report; sendNAK has an empty loss list), so
// the only deadline that still matters is EXP — keep-alive and peer-death
// detection. The caller must separately ensure it has no unsent data
// buffered; the engine cannot see the transport's send queue.
//
// Quiescence is a transport-side scheduling hint: the shared scheduler
// parks idle flows until NextWake instead of waking them every SYN. It is
// deliberately not consulted by the deterministic simulator, whose driver
// wakes engines at NextTimer, so scheduling-policy changes cannot perturb
// the chaos oracle.
func (c *Conn) Quiescent() bool {
	return c.started && !c.closed && !c.broken &&
		c.Unacked() == 0 &&
		c.sndLoss.Len() == 0 &&
		c.rcvLoss.Len() == 0 &&
		len(c.outbox) == 0 &&
		c.dupSinceACK == 0 &&
		(!c.gotAnyData || c.lastAckSeq == seqno.Inc(c.lrsn))
}

// NextWake returns the deadline the transport scheduler should wake this
// engine at: EXP for a quiescent flow (its other periodic handlers would
// do nothing — see Quiescent), the earliest of all four timers otherwise.
// With the default 10 ms SYN and a ~300 ms minimum EXP interval this cuts
// an idle flow's wakeups by ~30×, which is what makes parking 100k idle
// flows on one worker pool tractable.
func (c *Conn) NextWake() int64 {
	if c.Quiescent() {
		return c.tEXP
	}
	return c.NextTimer()
}

// sendACK builds the periodic selective acknowledgement (§3.1) carrying the
// receiver's flow-control and estimation feedback (§3.2, §3.4).
//
// An ACK is emitted only when the cumulative position advanced, or when the
// advertised window reopened substantially after a stall. Re-ACKing without
// progress would keep resetting the sender's EXP timer and defeat its
// tail-loss rescue: if every in-flight packet died, no later packet exists
// to trigger a NAK, and only EXP-driven silence detection can recover.
func (c *Conn) sendACK(now int64) {
	if !c.gotAnyData {
		return
	}
	ack := seqno.Inc(c.lrsn)
	if first, ok := c.rcvLoss.First(); ok {
		ack = first
	}
	// Window: W = AS·(SYN + RTT), §3.2, where AS is the burst (peak)
	// arrival-speed estimate — how fast packets CAN arrive, so that a
	// window-limited sender's bursts grow the window toward the bandwidth-
	// delay product. The achieved-rate estimate must not be used here: a
	// window derived from the rate the sender actually achieved is a fixed
	// point it can never grow past (see NewBurstArrivalWindow). Before AS
	// is measurable, stay at the slow-start floor.
	recvRate := c.arrival.Rate()
	w := float64(slowStartCwnd)
	if br := c.burstArr.Rate(); br > 0 {
		w = float64(br) * float64(c.cfg.SYN+c.rtt.Smoothed()) / 1e6
		if w < slowStartCwnd {
			w = slowStartCwnd
		}
	}
	avail := c.AvailBuf()
	adv := int32(w)
	if avail < adv {
		adv = avail
	}
	if adv < 2 {
		adv = 2 // never advertise a dead window; two packets keep feedback alive
	}
	advanced := seqno.Cmp(ack, c.lastAckSeq) > 0
	reopened := adv > c.lastAdvWindow && adv-c.lastAdvWindow >= c.cfg.RecvBufPkts/16
	// A duplicate arrival means the peer is retransmitting data we already
	// acknowledged — our cumulative ACK must have been lost. Re-emit it even
	// without progress, or the peer retransmits that window forever. This
	// cannot defeat the EXP tail-loss rescue above: duplicates only arrive
	// while packets are flowing, and silence is what EXP detects.
	if !advanced && !reopened && c.dupSinceACK == 0 {
		return
	}
	c.dupSinceACK = 0
	c.lastAdvWindow = adv
	c.ackID++
	a := packet.ACK{
		AckID:    c.ackID,
		Seq:      ack,
		RTT:      int32(c.rtt.Smoothed()),
		RTTVar:   int32(c.rtt.Var()),
		AvailBuf: adv,
		RecvRate: recvRate,
		Capacity: c.probe.Capacity(),
	}
	c.ackWin.Store(c.ackID, ack, now)
	c.lastAckSeq = ack
	c.sinceACK = 0
	c.Stats.ACKsSent++
	c.emit(Out{Kind: OutACK, ACK: a})
}

// sendNAK re-reports unrepaired losses on their increasing schedule (§3.5).
func (c *Conn) sendNAK(now int64) {
	ranges := c.rcvLoss.Report(now, c.nakInterval(), c.cfg.NAKReportLimit)
	if len(ranges) == 0 {
		return
	}
	c.Stats.NAKsSent++
	c.emit(Out{Kind: OutNAK, Losses: ranges})
}

// onEXP handles an expiration: no packet from the peer for the whole
// interval. Unacknowledged data is queued for retransmission (the NAK or
// the ACK that would have repaired it may itself have been lost) and the
// controller decreases; with nothing in flight a keep-alive probes the peer.
func (c *Conn) onEXP(now int64) {
	c.expCount++
	if c.expCount >= 16 && now-c.lastRsp > c.cfg.PeerDeathTime {
		c.broken = true
		c.closed = true
		c.cc.Close()
		c.emit(Out{Kind: OutShutdown})
		return
	}
	if c.Unacked() > 0 {
		c.Stats.Timeouts++
		if c.sndLoss.Len() == 0 {
			// First expiration since the peer was last heard: assume the
			// repair feedback (ACK or NAK) was lost and requeue the whole
			// unacknowledged window. On consecutive expirations the full
			// requeue has already gone unanswered once — repeating it every
			// time just floods a drowning receiver with duplicates
			// (retransmissions bypass the window check, so each expiration
			// would pump the entire window again). Requeue a probe chunk
			// that doubles per consecutive expiration instead: the
			// duplicates it produces trigger a re-ACK if the receiver had
			// the data, or fresh delivery plus a NAK if it did not; either
			// response resets expCount and restores full repair, and the
			// doubling guarantees the chunk reaches the whole window again
			// even if no response ever comes.
			end := c.curSeq
			if n := c.expCount - 2; n >= 0 {
				chunk := int32(slowStartCwnd)
				for ; n > 0 && chunk < c.cfg.MaxFlowWindow; n-- {
					chunk *= 2
				}
				if probe := seqno.Add(c.sndLastAck, chunk-1); seqno.Cmp(probe, end) < 0 {
					end = probe
				}
			}
			c.sndLoss.Insert(c.sndLastAck, end)
		}
		c.cc.OnTimeout(now, c.curSeq)
	} else {
		c.emit(Out{Kind: OutKeepAlive})
	}
	c.tEXP = now + c.expInterval()
}

// HandleData processes an arriving data packet and reports whether the
// payload is fresh (the transport should store it) — false for duplicates.
func (c *Conn) HandleData(now int64, seq int32) (fresh bool) {
	if !seqno.Valid(seq) || c.closed {
		return false
	}
	c.peerAlive(now)
	c.Stats.PktsRecv++
	c.gotAnyData = true

	c.arrival.OnArrival(now)
	c.burstArr.OnArrival(now)
	// Packet-pair probe: the packet after a seq%16 == 0 packet was sent
	// back-to-back with it (§3.4); consecutive arrival spots the pair. A
	// zero gap clamps to 1 µs inside OnPair — "faster than the clock
	// resolves" — which on batched receive paths makes the capacity
	// estimate an upper bound rather than a measurement; the arrival-speed
	// window (whose honest burst amortization bounds the flow window and
	// the slow-start exit rate) is what keeps that optimism from
	// overdriving the link.
	if c.prevSeq >= 0 && c.prevSeq%flow.ProbeInterval == 0 && seq == seqno.Inc(c.prevSeq) {
		c.probe.OnPair(now - c.prevArrival)
	}
	c.prevSeq, c.prevArrival = seq, now

	off := seqno.Off(seqno.Inc(c.lrsn), seq)
	switch {
	case off > 0:
		// A gap: packets [lrsn+1, seq-1] are missing. Report immediately so
		// the sender reacts to congestion as fast as possible (§3.1).
		c.rcvLoss.Insert(seqno.Inc(c.lrsn), seqno.Dec(seq))
		c.Stats.LossDetected += int64(off)
		c.Stats.LossEvents++
		c.lrsn = seq
		if ranges := c.rcvLoss.Report(now, c.nakInterval(), c.cfg.NAKReportLimit); len(ranges) > 0 {
			c.Stats.NAKsSent++
			c.emit(Out{Kind: OutNAK, Losses: ranges})
		}
		return true
	case off == 0:
		c.lrsn = seq
		// Light-ACK rule: at very high packet rates the SYN-periodic ACK
		// leaves the sender blind for thousands of packets; acknowledge
		// every 64 arrivals as well (reference implementation behaviour).
		c.sinceACK++
		if c.sinceACK >= 64 {
			c.sendACK(now)
		}
		return true
	default:
		// Belated packet: fresh only if it repairs a recorded loss.
		if c.rcvLoss.Remove(seq) {
			return true
		}
		c.Stats.PktsDup++
		c.dupSinceACK++
		return false
	}
}

// HandleACK processes a cumulative acknowledgement, returning the number of
// packets newly acknowledged so the transport can release its send buffer.
func (c *Conn) HandleACK(now int64, a packet.ACK) (newlyAcked int32) {
	if c.closed {
		return 0
	}
	c.peerAlive(now)
	c.Stats.ACKsRecv++
	// Acknowledge the ACK for the peer's RTT measurement (§3.1).
	c.emit(Out{Kind: OutACK2, AckID: a.AckID})

	if a.AvailBuf > 0 {
		c.peerWindow = a.AvailBuf
	}
	// Ignore positions beyond what we sent (corrupt or hostile peer).
	if seqno.Cmp(a.Seq, seqno.Inc(c.curSeq)) > 0 {
		return 0
	}
	if seqno.Cmp(a.Seq, c.sndLastAck) > 0 {
		newlyAcked = seqno.Off(c.sndLastAck, a.Seq)
		c.sndLastAck = a.Seq
		c.sndLoss.RemoveUpTo(a.Seq)
	}
	if a.RTT > 0 {
		c.rtt.Update(int64(a.RTT))
	}
	c.cc.OnACK(int(newlyAcked), a.RecvRate, a.Capacity, a.RTT)
	return newlyAcked
}

// HandleNAK queues the reported losses for retransmission and applies the
// multiplicative decrease (formula 3) when the report names a fresh loss.
func (c *Conn) HandleNAK(now int64, losses []packet.Range) {
	if c.closed {
		return
	}
	c.peerAlive(now)
	c.Stats.NAKsRecv++
	var largest int32 = -1
	for _, r := range losses {
		// Clamp to the valid in-flight span.
		s, e := r.Start, r.End
		if seqno.Cmp(s, c.sndLastAck) < 0 {
			s = c.sndLastAck
		}
		if seqno.Cmp(e, c.curSeq) > 0 {
			e = c.curSeq
		}
		if seqno.Cmp(s, e) > 0 {
			continue
		}
		c.sndLoss.Insert(s, e)
		if largest == -1 || seqno.Cmp(e, largest) > 0 {
			largest = e
		}
	}
	if largest >= 0 {
		wasFrozen := c.cc.Frozen(now)
		c.cc.OnNAK(now, largest, c.curSeq)
		if !wasFrozen && c.cc.Frozen(now) {
			c.Stats.SndFreezes++
		}
	}
}

// HandleACK2 matches the peer's ACK-of-ACK against the ACK history to
// produce an RTT sample (§3.1).
func (c *Conn) HandleACK2(now int64, ackID int32) {
	if c.closed {
		return
	}
	c.peerAlive(now)
	if _, sample, ok := c.ackWin.Acknowledge(ackID, now); ok {
		c.rtt.Update(sample)
	}
}

// HandleKeepAlive refreshes peer liveness.
func (c *Conn) HandleKeepAlive(now int64) {
	if !c.closed {
		c.peerAlive(now)
	}
}

// HandleShutdown closes the connection at the peer's request.
func (c *Conn) HandleShutdown(now int64) {
	if !c.closed {
		c.closed = true
		c.cc.Close()
	}
}

// Close shuts the connection down locally and queues a Shutdown for the peer.
func (c *Conn) Close() {
	if !c.closed {
		c.closed = true
		c.cc.Close()
		c.emit(Out{Kind: OutShutdown})
	}
}

// SendDecision is NextSend's verdict.
type SendDecision int

// NextSend outcomes.
const (
	SendData    SendDecision = iota // send a new data packet with the returned sequence
	SendRetrans                     // retransmit the returned sequence
	WaitPacing                      // too early: wait until NextSendTime
	WaitWindow                      // flow window full: wait for an ACK
	WaitData                        // nothing to send: wait for application data
	WaitFrozen                      // loss-event freeze: wait one SYN (§3.3)
	WaitClosed                      // connection closed
)

// NextSendTime returns the earliest time the next data packet may leave (µs).
func (c *Conn) NextSendTime() int64 { return int64(c.sendSchedule) }

// NextSend decides what the sender may transmit at time now, given whether
// the application has new data queued. Lost packets always go first (§4.8).
// On SendData/SendRetrans the engine has already committed the sequence
// number; the transport must transmit it and then call Sent.
func (c *Conn) NextSend(now int64, newDataAvail bool) (seq int32, d SendDecision) {
	if c.closed {
		return 0, WaitClosed
	}
	if c.cc.Frozen(now) {
		return 0, WaitFrozen
	}
	if now < int64(c.sendSchedule) {
		c.Stats.PacingDeferred++
		return 0, WaitPacing
	}
	if s, ok := c.sndLoss.PopFirst(); ok {
		c.Stats.PktsRetrans++
		c.schedule(now, s)
		return s, SendRetrans
	}
	if c.Unacked() >= c.FlowWindow() {
		c.Stats.WindowLimited++
		return 0, WaitWindow
	}
	if !newDataAvail {
		return 0, WaitData
	}
	c.curSeq = seqno.Inc(c.curSeq)
	c.Stats.PktsSent++
	c.schedule(now, c.curSeq)
	return c.curSeq, SendData
}

// schedule advances the pacing schedule after transmitting seq. A packet
// whose sequence is a multiple of the probe interval starts a packet pair:
// its successor leaves with no inter-packet delay (§3.4).
func (c *Conn) schedule(now int64, seq int32) {
	c.cc.OnPktSent(now, seq)
	if !c.sentAny {
		c.sentAny = true
		c.sendSchedule = float64(now)
	}
	if seq%flow.ProbeInterval == 0 {
		return // successor goes back-to-back
	}
	p := c.cc.Period()
	c.sendSchedule += p
	// After an idle stretch the schedule must not release a burst of
	// "overdue" packets: resynchronize to the present.
	if float64(now)-c.sendSchedule > float64(c.cfg.SYN) {
		c.sendSchedule = float64(now)
	}
}
