package core

import (
	"udt/internal/seqno"
)

// SndBuffer holds written-but-unacknowledged payload, one fixed-size slot
// per packet sequence number. The transport writes application data in,
// reads packets out for (re)transmission by sequence number, and releases
// slots as cumulative acknowledgements arrive.
//
// SndBuffer is not safe for concurrent use.
type SndBuffer struct {
	payload int
	data    []byte
	lens    []int32
	headSeq int32 // sequence number of the oldest occupied slot
	headIdx int   // its slot index
	n       int   // occupied slots

	// ext holds per-slot external payloads from zero-copy writes
	// (WriteZC): a non-nil entry overrides the slot's copied data. The
	// caller owns the backing memory (typically a file mapping) and must
	// keep it valid until the slot is released; Release nils entries as
	// acknowledgements free them. Allocated lazily — ordinary streams
	// never pay for it.
	ext [][]byte
}

// NewSndBuffer returns a send buffer of capacity packets whose payloads hold
// up to payload bytes each. firstSeq is the sequence number the first
// written packet will carry.
func NewSndBuffer(capacity, payload int, firstSeq int32) *SndBuffer {
	if capacity < 1 {
		capacity = 1
	}
	return &SndBuffer{
		payload: payload,
		data:    make([]byte, capacity*payload),
		lens:    make([]int32, capacity),
		headSeq: firstSeq,
	}
}

// Cap returns the buffer capacity in packets.
func (b *SndBuffer) Cap() int { return len(b.lens) }

// Pending returns the number of occupied slots (unacknowledged packets).
func (b *SndBuffer) Pending() int { return b.n }

// Free returns the number of free slots.
func (b *SndBuffer) Free() int { return len(b.lens) - b.n }

// NextWriteSeq returns the sequence number the next written packet will get.
func (b *SndBuffer) NextWriteSeq() int32 { return seqno.Add(b.headSeq, int32(b.n)) }

// Write packs p into as many packets as fit, returning the number of bytes
// consumed (possibly 0 when full). Each Write chunk ends its final packet
// early rather than spanning chunks, so message boundaries within a write
// never straddle a short tail packet — matching UDT's fixed-size packing
// with a short last packet (§6).
func (b *SndBuffer) Write(p []byte) int {
	written := 0
	for len(p) > 0 && b.n < len(b.lens) {
		idx := (b.headIdx + b.n) % len(b.lens)
		n := b.payload
		if n > len(p) {
			n = len(p)
		}
		copy(b.data[idx*b.payload:], p[:n])
		if b.ext != nil {
			b.ext[idx] = nil
		}
		b.lens[idx] = int32(n)
		b.n++
		p = p[n:]
		written += n
	}
	return written
}

// WriteZC packs p into packets without copying: each slot records a
// sub-slice of p, and Packet serves those bytes straight from the
// caller's memory — the zero-copy half of the paper's copy-avoidance
// story (§4.3), applied to the send side for file transfer. The chunking
// matches Write exactly (full payload-size packets, short final packet),
// so the wire stream is indistinguishable from a copied send. p must
// stay valid and unmodified until every packet it backs is released.
func (b *SndBuffer) WriteZC(p []byte) int {
	if b.ext == nil {
		b.ext = make([][]byte, len(b.lens))
	}
	written := 0
	for len(p) > 0 && b.n < len(b.lens) {
		idx := (b.headIdx + b.n) % len(b.lens)
		n := b.payload
		if n > len(p) {
			n = len(p)
		}
		b.ext[idx] = p[:n:n]
		b.lens[idx] = int32(n)
		b.n++
		p = p[n:]
		written += n
	}
	return written
}

// Packet returns the payload for seq, or ok=false when seq is not buffered
// (already acknowledged or never written). The slice aliases the buffer and
// is valid until the slot is released.
func (b *SndBuffer) Packet(seq int32) ([]byte, bool) {
	off := seqno.Off(b.headSeq, seq)
	if off < 0 || int(off) >= b.n {
		return nil, false
	}
	idx := (b.headIdx + int(off)) % len(b.lens)
	if b.ext != nil {
		if e := b.ext[idx]; e != nil {
			return e, true
		}
	}
	return b.data[idx*b.payload : idx*b.payload+int(b.lens[idx])], true
}

// Release frees every slot before seq (exclusive), returning the count.
func (b *SndBuffer) Release(seq int32) int {
	off := seqno.Off(b.headSeq, seq)
	if off <= 0 {
		return 0
	}
	k := int(off)
	if k > b.n {
		k = b.n
	}
	if b.ext != nil {
		for i := 0; i < k; i++ {
			b.ext[(b.headIdx+i)%len(b.lens)] = nil
		}
	}
	b.headIdx = (b.headIdx + k) % len(b.lens)
	b.headSeq = seqno.Add(b.headSeq, int32(k))
	b.n -= k
	return k
}

// RcvBuffer reassembles the incoming packet stream, one fixed-size slot per
// sequence number, delivering bytes in order.
//
// It implements the paper's two receive-path optimizations:
//
//   - Speculation of the next packet (§4.6): a packet is placed directly at
//     the slot derived from its sequence number, so in-order and out-of-order
//     arrivals alike need no search and no shuffling.
//   - Overlapped IO (§4.3, Fig. 10): when a reader is waiting with an empty
//     buffer, its buffer can be attached as a logical extension of the
//     protocol buffer; arriving full-size packets are then copied straight
//     into user memory, eliminating the protocol-buffer-to-application copy.
//
// RcvBuffer is not safe for concurrent use; the transport serializes access.
type RcvBuffer struct {
	payload int
	data    []byte
	lens    []int32
	present []bool
	inUser  []bool
	baseSeq int32 // sequence number of the first undelivered packet
	baseIdx int
	headOff int32 // bytes of the head packet already consumed by the reader
	nstored int   // present slots

	user     []byte // attached reader buffer, nil when detached
	userPkts int32  // how many packet slots fit in user

	// DirectBytes counts bytes placed straight into attached user buffers
	// (the copies avoided by overlapped IO); CopiedBytes counts bytes that
	// took the ordinary protocol-buffer path.
	DirectBytes int64
	CopiedBytes int64
}

// NewRcvBuffer returns a receive buffer of capacity packet slots, each up to
// payload bytes, expecting the first packet to carry sequence firstSeq.
func NewRcvBuffer(capacity, payload int, firstSeq int32) *RcvBuffer {
	if capacity < 1 {
		capacity = 1
	}
	return &RcvBuffer{
		payload: payload,
		data:    make([]byte, capacity*payload),
		lens:    make([]int32, capacity),
		present: make([]bool, capacity),
		inUser:  make([]bool, capacity),
		baseSeq: firstSeq,
	}
}

// Cap returns the buffer capacity in packets.
func (b *RcvBuffer) Cap() int { return len(b.lens) }

// Free returns the free slot count — the flow-control advertisement (§3.2).
func (b *RcvBuffer) Free() int32 { return int32(len(b.lens) - b.nstored) }

func (b *RcvBuffer) slot(off int32) int { return (b.baseIdx + int(off)) % len(b.lens) }

// Store places the payload of packet seq, reporting false when the packet
// is a duplicate or out of the buffer's window. The payload is copied.
func (b *RcvBuffer) Store(seq int32, payload []byte) bool {
	off := seqno.Off(b.baseSeq, seq)
	if off < 0 || int(off) >= len(b.lens) {
		return false // already delivered, or beyond the window
	}
	idx := b.slot(off)
	if b.present[idx] {
		return false // duplicate
	}
	n := int32(len(payload))
	if int(n) > b.payload {
		n = int32(b.payload)
	}
	// Overlapped path: full-size packets mapping inside the attached user
	// buffer land there directly.
	if b.user != nil && off < b.userPkts && int(n) == b.payload {
		copy(b.user[int(off)*b.payload:], payload[:n])
		b.inUser[idx] = true
		b.DirectBytes += int64(n)
	} else {
		copy(b.data[idx*b.payload:], payload[:n])
		b.CopiedBytes += int64(n)
	}
	b.lens[idx] = n
	b.present[idx] = true
	b.nstored++
	return true
}

// Available returns the number of in-order bytes ready for the reader.
func (b *RcvBuffer) Available() int {
	total := 0
	for off := int32(0); int(off) < len(b.lens); off++ {
		idx := b.slot(off)
		if !b.present[idx] {
			break
		}
		total += int(b.lens[idx])
	}
	return total - int(b.headOff)
}

// AttachUser registers p as a logical extension of the protocol buffer
// (Fig. 10). It succeeds only when the reader is fully caught up (no stored
// data), which is exactly the state of a blocked reader. While attached,
// Store copies eligible packets straight into p.
func (b *RcvBuffer) AttachUser(p []byte) bool {
	if b.user != nil || b.nstored != 0 || b.headOff != 0 || len(p) < b.payload {
		return false
	}
	b.user = p
	b.userPkts = int32(len(p) / b.payload)
	if int(b.userPkts) > len(b.lens) {
		b.userPkts = int32(len(b.lens))
	}
	return true
}

// DetachUser ends an overlapped read: it consumes the contiguous run of
// user-placed packets from the front (those bytes are already in the user
// buffer, so the reader gets them copy-free) and copies any remaining
// user-placed islands back into protocol slots — the user buffer must not
// be referenced after the read returns. It returns the number of bytes the
// reader received directly.
func (b *RcvBuffer) DetachUser() int {
	if b.user == nil {
		return 0
	}
	direct := 0
	consumed := int32(0)
	for consumed < b.userPkts {
		idx := b.slot(consumed)
		if !b.present[idx] || !b.inUser[idx] {
			break
		}
		direct += int(b.lens[idx])
		b.present[idx] = false
		b.inUser[idx] = false
		b.nstored--
		consumed++
	}
	// Copy back any stranded user-placed packets beyond the hole.
	for off := consumed; off < b.userPkts; off++ {
		idx := b.slot(off)
		if b.present[idx] && b.inUser[idx] {
			copy(b.data[idx*b.payload:], b.user[int(off)*b.payload:int(off)*b.payload+int(b.lens[idx])])
			b.inUser[idx] = false
		}
	}
	b.baseIdx = b.slot(consumed)
	b.baseSeq = seqno.Add(b.baseSeq, consumed)
	b.user = nil
	b.userPkts = 0
	return direct
}

// Read copies up to len(p) in-order bytes into p, consuming them. It must
// not be called while a user buffer is attached.
func (b *RcvBuffer) Read(p []byte) int {
	read := 0
	for read < len(p) {
		idx := b.baseIdx
		if !b.present[idx] {
			break
		}
		n := copy(p[read:], b.data[idx*b.payload+int(b.headOff):idx*b.payload+int(b.lens[idx])])
		read += n
		b.headOff += int32(n)
		if b.headOff == b.lens[idx] {
			b.present[idx] = false
			b.nstored--
			b.headOff = 0
			b.baseIdx = b.slot(1)
			b.baseSeq = seqno.Inc(b.baseSeq)
		}
	}
	return read
}
