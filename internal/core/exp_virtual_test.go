// EXP-timer behaviour under a virtual clock: the retransmit-timeout rescue,
// peer-death timing bounds, and idle keep-alives — no real-time sleeps.
package core_test

import (
	"testing"

	"udt/internal/core"
	"udt/internal/netem"
)

// stepToNextTimer advances the virtual clock to the engine's next deadline
// and fires it. It fails the test if the engine stops scheduling work.
func stepToNextTimer(t *testing.T, vc *netem.VirtualClock, eng *core.Conn) {
	t.Helper()
	next := eng.NextTimer()
	if next <= vc.Now() {
		next = vc.Now() + 1
	}
	vc.AdvanceTo(next)
	eng.Advance(vc.Now())
}

// drainOut empties the engine outbox, returning the kinds emitted.
func drainOut(eng *core.Conn) []core.OutKind {
	var kinds []core.OutKind
	for {
		o, ok := eng.PopOut()
		if !ok {
			return kinds
		}
		kinds = append(kinds, o.Kind)
	}
}

// TestEXPRetransmitTimeout pins §3.3's silence rescue: when every ACK and
// NAK for in-flight data is lost, the EXP timer must queue the whole
// unacknowledged window for retransmission — NextSend switches from
// WaitData to SendRetrans without any peer feedback.
func TestEXPRetransmitTimeout(t *testing.T) {
	vc := netem.NewVirtualClock(0)
	eng := core.NewConn(core.Config{ISN: 100, MinEXP: 50_000, PeerDeathTime: 10_000_000}, 500)
	eng.Start(vc.Now())

	sent := 0
	for sent < 4 {
		seq, d := eng.NextSend(vc.Now(), true)
		switch d {
		case core.SendData:
			sent++
			if seq != int32(100+sent-1) {
				t.Fatalf("sent seq %d, want %d", seq, 100+sent-1)
			}
		case core.WaitPacing:
			vc.AdvanceTo(eng.NextSendTime())
		default:
			t.Fatalf("unexpected decision %v before the window fills", d)
		}
	}
	if eng.Unacked() != 4 {
		t.Fatalf("unacked = %d, want 4", eng.Unacked())
	}
	drainOut(eng)

	// Silence. Step timers until the EXP rescue kicks in.
	before := eng.Stats.Timeouts
	deadline := vc.Now() + 5_000_000
	for eng.Stats.Timeouts == before {
		if vc.Now() > deadline {
			t.Fatal("EXP never fired within 5 virtual seconds of silence")
		}
		stepToNextTimer(t, vc, eng)
	}
	seq, d := eng.NextSend(vc.Now(), false)
	for d == core.WaitPacing || d == core.WaitFrozen {
		vc.AdvanceTo(eng.NextTimer())
		eng.Advance(vc.Now())
		seq, d = eng.NextSend(vc.Now(), false)
	}
	if d != core.SendRetrans {
		t.Fatalf("post-EXP decision = %v, want SendRetrans", d)
	}
	if seq != 100 {
		t.Fatalf("retransmission starts at %d, want the oldest unacked (100)", seq)
	}
	if eng.Broken() {
		t.Fatal("engine declared death before PeerDeathTime")
	}
}

// TestPeerDeathTiming pins the failure-detection bound: with total silence
// the engine must break no earlier than PeerDeathTime and not much later —
// the capped EXP backoff keeps 16 expirations inside the configured limit.
func TestPeerDeathTiming(t *testing.T) {
	const deathTime = 2_000_000
	vc := netem.NewVirtualClock(0)
	eng := core.NewConn(core.Config{ISN: 0, MinEXP: 50_000, PeerDeathTime: deathTime}, 500)
	eng.Start(vc.Now())

	// One packet in flight so the EXP path is the data-bearing one.
	if _, d := eng.NextSend(vc.Now(), true); d != core.SendData {
		t.Fatalf("decision %v, want SendData", d)
	}

	for !eng.Broken() {
		if vc.Now() > 10*deathTime {
			t.Fatalf("no death after %dµs of silence (configured %dµs)", vc.Now(), deathTime)
		}
		stepToNextTimer(t, vc, eng)
		drainOut(eng)
	}
	if vc.Now() < deathTime {
		t.Fatalf("death at %dµs, before the %dµs silence bound", vc.Now(), deathTime)
	}
	if vc.Now() > deathTime*5/2 {
		t.Fatalf("death at %dµs, beyond 2.5×PeerDeathTime", vc.Now())
	}
	kinds := drainOut(eng)
	foundShutdown := false
	for _, k := range kinds {
		if k == core.OutShutdown {
			foundShutdown = true
		}
	}
	if !foundShutdown && !eng.Closed() {
		t.Fatal("death did not close the engine")
	}
}

// TestKeepAliveWhenIdle pins the other EXP branch: with nothing in flight,
// expirations probe the peer with keep-alives instead of retransmitting.
func TestKeepAliveWhenIdle(t *testing.T) {
	vc := netem.NewVirtualClock(0)
	eng := core.NewConn(core.Config{ISN: 0, MinEXP: 50_000, PeerDeathTime: 10_000_000}, 500)
	eng.Start(vc.Now())

	sawKeepAlive := false
	for i := 0; i < 50 && !sawKeepAlive; i++ {
		stepToNextTimer(t, vc, eng)
		for _, k := range drainOut(eng) {
			if k == core.OutKeepAlive {
				sawKeepAlive = true
			}
			if k == core.OutACK || k == core.OutNAK {
				t.Fatalf("idle engine emitted %v", k)
			}
		}
	}
	if !sawKeepAlive {
		t.Fatal("no keep-alive after 50 idle timer rounds")
	}
	if eng.Stats.Timeouts != 0 {
		t.Fatalf("idle expirations counted as data timeouts: %d", eng.Stats.Timeouts)
	}
}
