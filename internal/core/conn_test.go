package core

import (
	"bytes"
	"container/heap"
	"fmt"
	"math/rand"
	"testing"

	"udt/internal/packet"
	"udt/internal/seqno"
)

// ---- deterministic two-endpoint harness -------------------------------
//
// testLink couples two Conns through delayed, optionally lossy, in-memory
// pipes driven by a virtual microsecond clock. It doubles as executable
// documentation of how a transport drives the engine; internal/udtsim is
// the full-fidelity version of the same loop.

type testMsg struct {
	at   int64
	to   int // endpoint index
	data bool
	seq  int32
	plen int
	out  Out
}

type msgHeap []testMsg

func (h msgHeap) Len() int            { return len(h) }
func (h msgHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h msgHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x interface{}) { *h = append(*h, x.(testMsg)) }
func (h *msgHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type testEnd struct {
	conn *Conn
	snd  *SndBuffer
	rcv  *RcvBuffer
	got  []byte
}

type testLink struct {
	now   int64
	delay int64 // one-way, µs
	drop  func(from int, seq int32) bool
	q     msgHeap
	ends  [2]*testEnd
	rng   *rand.Rand
}

func newTestLink(delay int64, cfg Config) *testLink {
	l := &testLink{delay: delay, rng: rand.New(rand.NewSource(7))}
	payload := cfg.MSS
	if payload == 0 {
		payload = 1500
	}
	payload -= packet.DataHeaderSize
	for i := range l.ends {
		c := cfg
		c.ISN = int32(1000 * (i + 1))
		peer := int32(1000 * (2 - i))
		conn := NewConn(c, peer)
		bufPkts := int(conn.Config().RecvBufPkts)
		e := &testEnd{
			conn: conn,
			snd:  NewSndBuffer(bufPkts, payload, c.ISN),
			rcv:  NewRcvBuffer(bufPkts, payload, peer),
		}
		rcv := e.rcv
		conn.AvailBuf = func() int32 { return rcv.Free() }
		conn.Start(0)
		l.ends[i] = e
	}
	return l
}

// pump advances virtual time until `until`, delivering messages, firing
// timers, and letting both endpoints send whenever the engine permits.
func (l *testLink) pump(until int64) {
	for l.now < until {
		// Next interesting instant. Send times only matter when a send could
		// actually happen; a window- or data-blocked endpoint must not pin
		// virtual time.
		next := until
		if len(l.q) > 0 && l.q[0].at < next {
			next = l.q[0].at
		}
		for i, e := range l.ends {
			if !e.conn.Closed() {
				if d := e.conn.NextTimer(); d < next {
					next = d
				}
				if st := e.conn.NextSendTime(); l.sendable(i) && st < next && st > l.now {
					next = st
				}
			}
		}
		if next < l.now {
			next = l.now
		}
		l.now = next
		// Deliver due messages.
		for len(l.q) > 0 && l.q[0].at <= l.now {
			m := heap.Pop(&l.q).(testMsg)
			l.deliver(m)
		}
		// Timers.
		for _, e := range l.ends {
			e.conn.Advance(l.now)
		}
		// Data path.
		for i := range l.ends {
			l.trySend(i)
		}
		// Control path.
		for i, e := range l.ends {
			for {
				o, ok := e.conn.PopOut()
				if !ok {
					break
				}
				heap.Push(&l.q, testMsg{at: l.now + l.delay, to: 1 - i, out: o})
			}
		}
		if l.now == next && next == until {
			break
		}
		if l.now == next && len(l.q) == 0 {
			// Nothing scheduled: jump to the earliest timer.
			jump := until
			for _, e := range l.ends {
				if !e.conn.Closed() {
					if d := e.conn.NextTimer(); d < jump && d > l.now {
						jump = d
					}
				}
			}
			l.now = jump
		}
	}
}

func (l *testLink) sendable(i int) bool {
	e := l.ends[i]
	return e.snd.Pending() > 0 || e.conn.sndLoss.Len() > 0
}

func (l *testLink) trySend(i int) {
	e := l.ends[i]
	for n := 0; n < 1000; n++ {
		newAvail := seqno.Cmp(e.snd.NextWriteSeq(), seqno.Inc(e.conn.CurSeq())) > 0
		seq, d := e.conn.NextSend(l.now, newAvail)
		if d != SendData && d != SendRetrans {
			return
		}
		pl, ok := e.snd.Packet(seq)
		plen := 0
		if ok {
			plen = len(pl)
		}
		if l.drop != nil && l.drop(i, seq) {
			continue // lost on the wire
		}
		heap.Push(&l.q, testMsg{at: l.now + l.delay, to: 1 - i, data: true, seq: seq, plen: plen})
	}
}

func (l *testLink) deliver(m testMsg) {
	e := l.ends[m.to]
	if m.data {
		if e.conn.HandleData(l.now, m.seq) {
			// Fetch payload from the sender's buffer (the "wire" carries
			// only metadata in this harness).
			peer := l.ends[1-m.to]
			if pl, ok := peer.snd.Packet(m.seq); ok {
				e.rcv.Store(m.seq, pl)
			}
		}
		l.drain(m.to)
		return
	}
	switch m.out.Kind {
	case OutACK:
		newly := e.conn.HandleACK(l.now, m.out.ACK)
		if newly > 0 {
			e.snd.Release(e.conn.SndLastAck())
		}
	case OutNAK:
		e.conn.HandleNAK(l.now, m.out.Losses)
	case OutACK2:
		e.conn.HandleACK2(l.now, m.out.AckID)
	case OutKeepAlive:
		e.conn.HandleKeepAlive(l.now)
	case OutShutdown:
		e.conn.HandleShutdown(l.now)
	}
}

func (l *testLink) drain(i int) {
	e := l.ends[i]
	buf := make([]byte, 4096)
	for {
		n := e.rcv.Read(buf)
		if n == 0 {
			return
		}
		e.got = append(e.got, buf[:n]...)
	}
}

// ---- tests -------------------------------------------------------------

func TestConnBulkTransferLossless(t *testing.T) {
	l := newTestLink(5000, Config{MSS: 1500}) // 10 ms RTT
	want := make([]byte, 200*1472)
	rand.New(rand.NewSource(1)).Read(want)
	l.ends[0].snd.Write(want)
	l.pump(3_000_000)
	if !bytes.Equal(l.ends[1].got, want) {
		t.Fatalf("delivered %d bytes, want %d (equal=%v)", len(l.ends[1].got), len(want), bytes.Equal(l.ends[1].got, want))
	}
	st := &l.ends[0].conn.Stats
	if st.PktsRetrans != 0 {
		t.Fatalf("lossless run retransmitted %d packets", st.PktsRetrans)
	}
	if l.ends[0].conn.Unacked() != 0 {
		t.Fatalf("unacked after completion: %d", l.ends[0].conn.Unacked())
	}
}

func TestConnTransferWithLoss(t *testing.T) {
	l := newTestLink(5000, Config{MSS: 1500})
	rng := rand.New(rand.NewSource(2))
	l.drop = func(from int, seq int32) bool {
		return from == 0 && rng.Intn(50) == 0 // 2% data loss
	}
	want := make([]byte, 300*1472)
	rand.New(rand.NewSource(3)).Read(want)
	l.ends[0].snd.Write(want)
	l.pump(20_000_000)
	if !bytes.Equal(l.ends[1].got, want) {
		t.Fatalf("delivered %d bytes, want %d", len(l.ends[1].got), len(want))
	}
	st0 := &l.ends[0].conn.Stats
	st1 := &l.ends[1].conn.Stats
	if st0.PktsRetrans == 0 {
		t.Fatal("loss run needs retransmissions")
	}
	if st1.NAKsSent == 0 || st0.NAKsRecv == 0 {
		t.Fatal("loss must trigger NAKs")
	}
	if st1.LossDetected == 0 {
		t.Fatal("receiver must detect losses")
	}
}

func TestConnBurstLossRecovered(t *testing.T) {
	l := newTestLink(2000, Config{MSS: 1500})
	dropped := 0
	l.drop = func(from int, seq int32) bool {
		// Drop a contiguous burst of 40 packets once.
		if from == 0 && seq >= 1100 && seq < 1140 && dropped < 40 {
			dropped++
			return true
		}
		return false
	}
	want := make([]byte, 500*1472)
	rand.New(rand.NewSource(4)).Read(want)
	l.ends[0].snd.Write(want)
	l.pump(30_000_000)
	if !bytes.Equal(l.ends[1].got, want) {
		t.Fatalf("delivered %d bytes, want %d", len(l.ends[1].got), len(want))
	}
	if l.ends[1].conn.Stats.LossEvents == 0 {
		t.Fatal("burst must register as loss event(s)")
	}
}

func TestConnDuplicateDelivery(t *testing.T) {
	l := newTestLink(1000, Config{MSS: 1500})
	c := l.ends[1].conn
	if !c.HandleData(10_000, 1000) {
		t.Fatal("first copy must be fresh")
	}
	if c.HandleData(10_050, 1000) {
		t.Fatal("duplicate must be rejected")
	}
	if c.Stats.PktsDup != 1 {
		t.Fatalf("dup count = %d", c.Stats.PktsDup)
	}
}

func TestConnWindowLimit(t *testing.T) {
	cfg := Config{MSS: 1500, MaxFlowWindow: 64}
	l := newTestLink(50_000, cfg) // 100 ms RTT: window binds before first ACK
	want := make([]byte, 2000*1472)
	rand.New(rand.NewSource(5)).Read(want)
	l.ends[0].snd.Write(want[:l.ends[0].snd.Free()*1472])
	l.pump(40_000)
	// Before any ACK returns (RTT = 100 ms), in-flight may not exceed the
	// initial slow-start window.
	if un := l.ends[0].conn.Unacked(); un > slowStartCwnd {
		t.Fatalf("unacked = %d, exceeds initial window %d", un, slowStartCwnd)
	}
	l.pump(5_000_000)
	if got := l.ends[1].got; len(got) == 0 {
		t.Fatal("nothing delivered")
	}
	if l.ends[0].conn.Stats.WindowLimited == 0 {
		t.Fatal("expected window-limited stalls on a high-BDP window-capped run")
	}
}

func TestConnFreezeAfterNAK(t *testing.T) {
	cfg := Config{MSS: 1500}
	c := NewConn(cfg, 500)
	c.Start(0)
	c.CC().SetPeriod(100)
	// Pretend we sent 100 packets.
	for i := 0; i < 100; i++ {
		c.NextSend(int64(i)*100, true)
	}
	now := int64(20_000)
	c.HandleNAK(now, []packet.Range{{Start: c.Config().ISN + 5, End: c.Config().ISN + 7}})
	if _, d := c.NextSend(now+1, true); d != WaitFrozen {
		t.Fatalf("decision = %v, want WaitFrozen", d)
	}
	if c.Stats.SndFreezes != 1 {
		t.Fatalf("freezes = %d", c.Stats.SndFreezes)
	}
	// After one SYN the retransmission must go first.
	seq, d := c.NextSend(now+DefaultSYN+1, true)
	if d != SendRetrans || seq != c.Config().ISN+5 {
		t.Fatalf("post-freeze send = %d,%v; want retrans of first loss", seq, d)
	}
}

func TestConnEXPBreaksDeadPeer(t *testing.T) {
	cfg := Config{MSS: 1500, MinEXP: 10_000, PeerDeathTime: 500_000}
	c := NewConn(cfg, 500)
	c.Start(0)
	c.NextSend(0, true) // one unacked packet, no peer response ever
	for now := int64(0); now < 60_000_000 && !c.Broken(); now += 5_000 {
		c.Advance(now)
	}
	if !c.Broken() {
		t.Fatal("connection must break after a silent peer")
	}
	if c.Stats.Timeouts == 0 {
		t.Fatal("EXP timeouts must fire before breaking")
	}
	// Broken connection refuses to send.
	if _, d := c.NextSend(61_000_000, true); d != WaitClosed {
		t.Fatalf("broken conn decision = %v", d)
	}
}

func TestConnEXPRetransmitsUnacked(t *testing.T) {
	cfg := Config{MSS: 1500, MinEXP: 10_000}
	c := NewConn(cfg, 500)
	c.Start(0)
	seq0, _ := c.NextSend(0, true)
	// The EXP interval is floored by the initial RTO (300 ms with the
	// 100 ms RTT seed), not by MinEXP.
	c.Advance(320_000)
	if c.Stats.Timeouts != 1 {
		t.Fatalf("timeouts = %d", c.Stats.Timeouts)
	}
	// The timeout freezes the sender for one SYN; afterwards the lost
	// packet must be retransmitted first.
	seq, d := c.NextSend(320_000+DefaultSYN+1, true)
	if d != SendRetrans || seq != seq0 {
		t.Fatalf("after EXP: %d,%v; want retrans of %d", seq, d, seq0)
	}
}

func TestConnKeepAliveWhenIdle(t *testing.T) {
	cfg := Config{MSS: 1500, MinEXP: 10_000}
	c := NewConn(cfg, 500)
	c.Start(0)
	c.Advance(320_000) // past the RTO-floored EXP interval
	found := false
	for {
		o, ok := c.PopOut()
		if !ok {
			break
		}
		if o.Kind == OutKeepAlive {
			found = true
		}
	}
	if !found {
		t.Fatal("idle EXP must emit a keep-alive")
	}
}

func TestConnACKAdvancesAndACK2Emitted(t *testing.T) {
	c := NewConn(Config{MSS: 1500}, 500)
	c.Start(0)
	for i := 0; i < 10; i++ {
		c.NextSend(int64(i), true)
	}
	isn := c.Config().ISN
	newly := c.HandleACK(1000, packet.ACK{AckID: 7, Seq: seqno.Add(isn, 4), RTT: 5000, AvailBuf: 100})
	if newly != 4 {
		t.Fatalf("newlyAcked = %d, want 4", newly)
	}
	if c.SndLastAck() != seqno.Add(isn, 4) {
		t.Fatalf("sndLastAck = %d", c.SndLastAck())
	}
	var gotACK2 bool
	for {
		o, ok := c.PopOut()
		if !ok {
			break
		}
		if o.Kind == OutACK2 && o.AckID == 7 {
			gotACK2 = true
		}
	}
	if !gotACK2 {
		t.Fatal("ACK must be answered with ACK2")
	}
	// Duplicate ACK: no further advance.
	if n := c.HandleACK(1100, packet.ACK{AckID: 8, Seq: seqno.Add(isn, 4)}); n != 0 {
		t.Fatalf("dup ACK acked %d", n)
	}
	// ACK beyond what was sent: ignored.
	if n := c.HandleACK(1200, packet.ACK{AckID: 9, Seq: seqno.Add(isn, 1000)}); n != 0 {
		t.Fatalf("rogue ACK acked %d", n)
	}
}

func TestConnNAKClampsRogueRanges(t *testing.T) {
	c := NewConn(Config{MSS: 1500}, 500)
	c.Start(0)
	for i := 0; i < 5; i++ {
		c.NextSend(int64(i), true)
	}
	isn := c.Config().ISN
	// Range reaching far beyond curSeq must be clamped to what was sent.
	c.HandleNAK(100, []packet.Range{{Start: seqno.Add(isn, 2), End: seqno.Add(isn, 500)}})
	seqs := map[int32]bool{}
	now := int64(1_000_000)
	for {
		s, ok := c.NextSend(now, false)
		if ok == WaitPacing {
			now = c.NextSendTime()
			continue
		}
		if ok != SendRetrans {
			break
		}
		seqs[s] = true
		now++
	}
	if len(seqs) != 3 { // isn+2, isn+3, isn+4
		t.Fatalf("retransmit set = %v, want 3 members", seqs)
	}
	// Entirely invalid range: ignored.
	c.HandleNAK(200, []packet.Range{{Start: seqno.Add(isn, 100), End: seqno.Add(isn, 200)}})
	if _, d := c.NextSend(now+2_000_000, false); d == SendRetrans {
		t.Fatal("invalid NAK queued retransmissions")
	}
}

func TestConnPacketPairSchedule(t *testing.T) {
	c := NewConn(Config{MSS: 1500, ISN: 15}, 500)
	c.Start(0)
	c.CC().SetPeriod(1000)
	var times []int64
	var seqs []int32
	now := int64(0)
	for len(seqs) < 4 {
		seq, d := c.NextSend(now, true)
		if d == SendData {
			seqs = append(seqs, seq)
			times = append(times, c.NextSendTime())
		}
		now = c.NextSendTime()
		if d != SendData {
			now++
		}
	}
	// seq 16 (multiple of 16) must not delay its successor.
	for i, s := range seqs {
		if s%16 == 0 && i+1 < len(times) {
			if times[i] > times[i-1] {
				t.Fatalf("pair start %d advanced the schedule: %v", s, times)
			}
		}
	}
}

func TestConnRTTMeasuredViaACKACK2(t *testing.T) {
	l := newTestLink(25_000, Config{MSS: 1500}) // 50 ms RTT
	want := make([]byte, 500*1472)
	rand.New(rand.NewSource(6)).Read(want)
	l.ends[0].snd.Write(want)
	l.pump(8_000_000)
	// The data receiver measures RTT from its ACKs' ACK2 echoes.
	rtt := l.ends[1].conn.RTT()
	if rtt < 40_000 || rtt > 80_000 {
		t.Fatalf("receiver RTT estimate = %d µs, want ≈50000", rtt)
	}
	// The sender learns RTT from the ACK field.
	rtt = l.ends[0].conn.RTT()
	if rtt < 40_000 || rtt > 80_000 {
		t.Fatalf("sender RTT estimate = %d µs, want ≈50000", rtt)
	}
}

func TestConnCloseEmitsShutdown(t *testing.T) {
	c := NewConn(Config{MSS: 1500}, 500)
	c.Start(0)
	c.Close()
	o, ok := c.PopOut()
	if !ok || o.Kind != OutShutdown {
		t.Fatalf("close emitted %v,%v", o, ok)
	}
	if !c.Closed() {
		t.Fatal("not closed")
	}
	c.Close() // idempotent
	if _, ok := c.PopOut(); ok {
		t.Fatal("second close emitted again")
	}
}

func TestConnShutdownFromPeer(t *testing.T) {
	l := newTestLink(1000, Config{MSS: 1500})
	l.ends[0].conn.Close()
	l.pump(100_000)
	if !l.ends[1].conn.Closed() {
		t.Fatal("peer did not observe shutdown")
	}
}

func TestConnBidirectional(t *testing.T) {
	l := newTestLink(5000, Config{MSS: 1500})
	a := make([]byte, 100*1472)
	b := make([]byte, 150*1472)
	rand.New(rand.NewSource(8)).Read(a)
	rand.New(rand.NewSource(9)).Read(b)
	l.ends[0].snd.Write(a)
	l.ends[1].snd.Write(b)
	l.pump(5_000_000)
	if !bytes.Equal(l.ends[1].got, a) {
		t.Fatalf("0→1 delivered %d/%d", len(l.ends[1].got), len(a))
	}
	if !bytes.Equal(l.ends[0].got, b) {
		t.Fatalf("1→0 delivered %d/%d", len(l.ends[0].got), len(b))
	}
}

func TestConnStatsConsistency(t *testing.T) {
	l := newTestLink(5000, Config{MSS: 1500})
	rng := rand.New(rand.NewSource(10))
	l.drop = func(from int, seq int32) bool { return from == 0 && rng.Intn(30) == 0 }
	want := make([]byte, 400*1472)
	rand.New(rand.NewSource(11)).Read(want)
	l.ends[0].snd.Write(want)
	l.pump(30_000_000)
	// The whole stream must arrive.
	if !bytes.Equal(l.ends[1].got, want) {
		t.Fatalf("delivered %d/%d bytes", len(l.ends[1].got), len(want))
	}
	// New-data sends = number of packets the stream packs into (payload is
	// MSS minus the data header).
	payload := 1500 - packet.DataHeaderSize
	wantPkts := int64((len(want) + payload - 1) / payload)
	st := &l.ends[0].conn.Stats
	if st.PktsSent != wantPkts {
		t.Fatalf("PktsSent = %d, want %d (new data only)", st.PktsSent, wantPkts)
	}
	if got := l.ends[1].conn.Stats.PktsRecv; got < wantPkts {
		t.Fatalf("receiver saw %d packets, want >= %d", got, wantPkts)
	}
}

// TestConnSoakRandomImpairment drives full transfers through random drop
// rates, delays and sizes, asserting the reliability invariant: every byte
// arrives intact and in order, no matter the loss pattern.
func TestConnSoakRandomImpairment(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			delay := int64(1000 + rng.Intn(50_000)) // 2-100 ms RTT
			dropPct := rng.Intn(8)                  // 0-7% loss
			size := (50 + rng.Intn(300)) * 1472     // 70-515 KB
			l := newTestLink(delay, Config{MSS: 1500, MinEXP: 50_000})
			dropRng := rand.New(rand.NewSource(seed + 100))
			l.drop = func(from int, seq int32) bool {
				return dropPct > 0 && dropRng.Intn(100) < dropPct
			}
			want := make([]byte, size)
			rand.New(rand.NewSource(seed + 200)).Read(want)
			l.ends[0].snd.Write(want)
			l.pump(120_000_000) // 2 virtual minutes
			if !bytes.Equal(l.ends[1].got, want) {
				t.Fatalf("drop=%d%% rtt=%dus size=%d: delivered %d/%d bytes",
					dropPct, 2*delay, size, len(l.ends[1].got), size)
			}
		})
	}
}

func TestZeroGapProbePairsClampToClockFloor(t *testing.T) {
	// Both halves of a §3.4 packet pair delivered in the same microsecond
	// — a batched read, or a genuinely fast virtual link — clamp to the
	// 1 µs clock floor: capacity reads as an upper bound (~1e6 pkts/s).
	// The arrival-speed window's burst amortization, not the pair probe,
	// is what keeps batched delivery from inflating the flow window.
	c := NewConn(Config{ISN: 5000}, 0)
	c.Start(0)
	c.HandleData(1000, 0)
	c.HandleData(1000, 1)
	if got := c.probe.Capacity(); got != 1e6 {
		t.Fatalf("zero-gap pair capacity = %d, want 1000000", got)
	}
}
