package core

import "udt/internal/trace"

// perfState is the engine-side telemetry sampler: a reusable record, the
// attached sink, and the counter snapshots needed to turn cumulative stats
// into per-interval rates. Everything is preallocated at attach time so
// sampling itself never touches the heap.
type perfState struct {
	sink     trace.Sink
	every    int   // emit every N SYN rate ticks
	ticks    int   // rate ticks since the last emission
	lastT    int64 // time of the previous sample, µs; -1 before the first
	prevWire int64 // PktsSent+PktsRetrans at the previous sample
	prevGood int64 // PktsRecv−PktsDup at the previous sample
	rec      trace.PerfRecord
}

// SetPerfSink attaches a telemetry sink to the engine. Every everySYN SYN
// rate-control ticks (§3.3; everySYN ≤ 0 means every tick) the engine fills
// one PerfRecord — rate-control state plus cumulative counters, stamped with
// the given flow id, label and role — and hands it to sink.Record. The
// record is reused across samples, so the sink must copy what it keeps.
//
// Sampling adds no events, consumes no randomness and allocates nothing, so
// attaching a sink never perturbs protocol behaviour (simulated runs stay
// bit-identical) and keeps the zero-allocation send path intact. A nil sink
// detaches.
func (c *Conn) SetPerfSink(sink trace.Sink, everySYN int, flow int32, label string, role trace.Role) {
	if everySYN <= 0 {
		everySYN = 1
	}
	c.perf = perfState{
		sink:  sink,
		every: everySYN,
		lastT: -1,
	}
	c.perf.rec.Flow = flow
	c.perf.rec.Label = label
	c.perf.rec.Role = role
	c.perf.rec.CCName = c.cc.Name()
}

// perfTick is called once per fired SYN rate tick from Advance.
func (c *Conn) perfTick(now int64) {
	p := &c.perf
	p.ticks++
	if p.ticks < p.every {
		return
	}
	p.ticks = 0

	interval := now - p.lastT
	if p.lastT < 0 || interval <= 0 {
		interval = int64(p.every) * c.cfg.SYN
	}
	p.lastT = now

	r := &p.rec
	mssBits := float64(c.cfg.MSS) * 8

	r.T = now
	r.IntervalUs = interval
	r.PeriodUs = c.cc.Period()
	if r.PeriodUs > 0 {
		r.SendRateMbps = mssBits / r.PeriodUs // bits/µs ≡ Mb/s
	} else {
		r.SendRateMbps = 0
	}
	wire := c.Stats.PktsSent + c.Stats.PktsRetrans
	good := c.Stats.PktsRecv - c.Stats.PktsDup
	r.SendMbps = float64(wire-p.prevWire) * mssBits / float64(interval)
	r.RecvMbps = float64(good-p.prevGood) * mssBits / float64(interval)
	p.prevWire, p.prevGood = wire, good
	r.BandwidthMbps = c.cc.LinkCapacity() * mssBits / 1e6
	r.RTTUs = c.rtt.Smoothed()
	r.FlowWindow = c.FlowWindow()
	r.InFlight = c.Unacked()
	r.Cwnd = c.cc.Window()

	r.PktsSent = c.Stats.PktsSent
	r.PktsRetrans = c.Stats.PktsRetrans
	r.PktsRecv = c.Stats.PktsRecv
	r.PktsDup = c.Stats.PktsDup
	r.ACKsSent = c.Stats.ACKsSent
	r.ACKsRecv = c.Stats.ACKsRecv
	r.NAKsSent = c.Stats.NAKsSent
	r.NAKsRecv = c.Stats.NAKsRecv
	r.LossDetected = c.Stats.LossDetected
	r.Timeouts = c.Stats.Timeouts
	r.SndFreezes = c.Stats.SndFreezes

	p.sink.Record(r)
}
