package campaign

import (
	"bytes"
	"testing"

	"udt/internal/netem"
	"udt/internal/netem/chaos"
)

// smallDumbbell is the unit-scale campaign most tests drive: 4 mixed-law
// flows over a rate-capped bottleneck, staggered arrivals.
func smallDumbbell(seed int64) Spec {
	topo, flows := Dumbbell(4,
		netem.LinkConfig{Delay: 500, RateMbps: 50, QueuePkts: 64},
		netem.LinkConfig{Delay: 2000, RateMbps: 20, QueuePkts: 32},
	)
	flows = AssignPayload(flows, 64<<10)
	flows = AssignCC(flows, "native", "bbrlite")
	flows = Staggered(flows, 0, 10_000)
	return Spec{Name: "small", Seed: seed, Topology: topo, Flows: flows}
}

func TestSmallDumbbellCompletes(t *testing.T) {
	rep, mon, err := Run(smallDumbbell(3))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || rep.TimedOut {
		t.Fatalf("campaign failed: %s", rep)
	}
	if rep.Summary.FlowsOK != 4 || rep.Summary.Flows != 4 {
		t.Fatalf("flows ok = %d/%d", rep.Summary.FlowsOK, rep.Summary.Flows)
	}
	if rep.Misrouted != 0 || rep.Unroutable != 0 {
		t.Fatalf("routing errors: misrouted=%d unroutable=%d", rep.Misrouted, rep.Unroutable)
	}
	for _, f := range rep.Flows {
		if !f.RecvOK || f.RecvBytes != 64<<10 || f.GoodputMbps <= 0 {
			t.Fatalf("flow %+v", f)
		}
		if f.P99AckUs <= 0 {
			t.Fatalf("flow %d has no ack-latency measurement", f.ID)
		}
	}
	if rep.Summary.JainIndex <= 0 || rep.Summary.JainIndex > 1 {
		t.Fatalf("jain = %v", rep.Summary.JainIndex)
	}
	// Both laws appear in the per-CC breakdown, in sorted order.
	if len(rep.Summary.CCGoodput) != 2 ||
		rep.Summary.CCGoodput[0].CC != "bbrlite" || rep.Summary.CCGoodput[1].CC != "native" {
		t.Fatalf("cc breakdown %+v", rep.Summary.CCGoodput)
	}
	// The monitor collected engine telemetry for every flow.
	for i := range rep.Flows {
		if len(mon.FlowSeries(i)) == 0 {
			t.Fatalf("no perf records for flow %d", i)
		}
	}
	// And sampled the bottleneck queue in both directions.
	if len(mon.LinkSeries("l", "r")) == 0 || len(mon.LinkSeries("r", "l")) == 0 {
		t.Fatal("no bottleneck queue samples")
	}
}

func TestBottleneckTailDropAccounting(t *testing.T) {
	// A flash crowd into a tiny bottleneck queue must tail-drop, and the
	// per-link accounting must stay consistent: every offered datagram is
	// delivered, queue-dropped, or still in flight — never lost silently.
	topo, flows := Dumbbell(8,
		netem.LinkConfig{Delay: 200, RateMbps: 100, QueuePkts: 64},
		netem.LinkConfig{Delay: 1000, RateMbps: 5, QueuePkts: 8},
	)
	flows = AssignPayload(flows, 16<<10)
	flows = FlashCrowd(flows, 0)
	rep, mon, err := Run(Spec{Name: "crowd", Seed: 5, Topology: topo, Flows: flows})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("retransmission must recover from tail drops: %s", rep)
	}
	var bott *LinkReport
	for i := range rep.Links {
		if rep.Links[i].From == "l" && rep.Links[i].To == "r" {
			bott = &rep.Links[i]
		}
	}
	if bott == nil {
		t.Fatal("no l→r link report")
	}
	if bott.DroppedQueue == 0 {
		t.Fatalf("8 flows into a 5 Mb/s 8-packet queue must tail-drop: %+v", bott)
	}
	if got := bott.Delivered + bott.Lost + bott.DroppedQueue + bott.DroppedInboxFull; got > bott.Offered {
		t.Fatalf("link accounting: delivered+dropped %d > offered %d", got, bott.Offered)
	}
	if bott.MaxQueuePkts == 0 {
		t.Fatal("queue occupancy series never saw the standing queue")
	}
	// The queue series is capped by the configured queue depth.
	for _, s := range mon.LinkSeries("l", "r") {
		if s.QueuePkts > 8 {
			t.Fatalf("sampled queue %d exceeds QueuePkts 8", s.QueuePkts)
		}
	}
}

func TestJitterFreeRouterPathIsFIFO(t *testing.T) {
	// On jitter-free, loss-free links, multi-hop forwarding must preserve
	// FIFO order: any reordering through the router chain would surface as
	// receiver loss reports and retransmissions.
	topo, flows := ParkingLot(3,
		netem.LinkConfig{Delay: 500, RateMbps: 100, QueuePkts: 4096},
		netem.LinkConfig{Delay: 1500, RateMbps: 100, QueuePkts: 4096},
	)
	flows = AssignPayload(flows, 32<<10)
	flows = Staggered(flows, 0, 5_000)
	rep, _, err := Run(Spec{Name: "fifo", Seed: 7, Topology: topo, Flows: flows})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("parking-lot campaign failed: %s", rep)
	}
	if rep.Summary.RetransTotal != 0 {
		t.Fatalf("FIFO violation: %d retransmissions on a clean path", rep.Summary.RetransTotal)
	}
	for _, f := range rep.Flows {
		if f.Retrans != 0 || f.Timeouts != 0 {
			t.Fatalf("flow %d: retrans=%d timeouts=%d on a clean path", f.ID, f.Retrans, f.Timeouts)
		}
	}
}

// pinnedSmallDumbbellDigest is the replay fingerprint of smallDumbbell(3).
// It must never change on refactors; an intentional behavior change must
// update it in the same commit with an explanation.
const pinnedSmallDumbbellDigest uint64 = 0x4e27470ac8ff3326

func TestSmallDumbbellReplayDigestPinned(t *testing.T) {
	r1, _, err := Run(smallDumbbell(3))
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := Run(smallDumbbell(3))
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := r1.WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("same seed must produce byte-identical CampaignReport JSONL")
	}
	if d := r1.Digest(); d != pinnedSmallDumbbellDigest {
		t.Fatalf("campaign digest = %#016x, pinned %#016x — protocol or report behavior changed",
			d, pinnedSmallDumbbellDigest)
	}
	// A different seed must explore a different trajectory.
	r3, _, err := Run(smallDumbbell(4))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Digest() == pinnedSmallDumbbellDigest {
		t.Fatal("different seed produced the pinned digest")
	}
}

func TestScriptedEventPerturbsCampaign(t *testing.T) {
	spec := smallDumbbell(3)
	base, _, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Events = []chaos.Event{{At: 20_000, Do: func(nw *netem.Net) {
		nw.UpdatePath("l", "r", func(c *netem.LinkConfig) { c.Loss = 0.2 })
	}}}
	perturbed, _, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if perturbed.Digest() == base.Digest() {
		t.Fatal("a 20% mid-run loss episode must change the campaign trajectory")
	}
	if !perturbed.OK {
		t.Fatalf("flows must still recover through the loss: %s", perturbed)
	}
	if perturbed.Summary.RetransTotal <= base.Summary.RetransTotal {
		t.Fatalf("loss episode: retrans %d → %d, expected an increase",
			base.Summary.RetransTotal, perturbed.Summary.RetransTotal)
	}
}

func TestRunRejectsInvalidSpecs(t *testing.T) {
	if _, _, err := Run(Spec{Name: "nil-topo"}); err == nil {
		t.Fatal("nil topology must be rejected")
	}
	topo, _ := Dumbbell(1, netem.LinkConfig{}, netem.LinkConfig{})
	if _, _, err := Run(Spec{Name: "bad-flow", Topology: topo,
		Flows: []FlowSpec{{Src: "s0", Dst: "ghost"}}}); err == nil {
		t.Fatal("unknown flow endpoint must be rejected")
	}
}

func TestCISetSpecsAreWellFormed(t *testing.T) {
	specs := CISet()
	if len(specs) != 2 {
		t.Fatalf("CISet has %d specs", len(specs))
	}
	if specs[0].Name != "dumbbell100" || len(specs[0].Flows) < 100 {
		t.Fatalf("first CI campaign must be the ≥100-flow dumbbell, got %q with %d flows",
			specs[0].Name, len(specs[0].Flows))
	}
	ccs := map[string]bool{}
	for _, f := range specs[0].Flows {
		ccs[f.CC] = true
	}
	if len(ccs) < 3 {
		t.Fatalf("dumbbell100 must mix CC laws, got %v", ccs)
	}
	for _, s := range specs {
		if err := s.Topology.validate(s.Flows); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
}
