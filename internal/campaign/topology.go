// Package campaign is the declarative experiment-campaign harness: it runs
// the real UDT stack (internal/core engines pumped as chaos.Peers) over
// multi-node netem topologies — N senders sharing a dumbbell bottleneck,
// multi-bottleneck parking-lot chains, star hubs — under the virtual clock,
// so a whole 100-flow shared-queue experiment is a deterministic function of
// its Spec and replays bit-identically from the same seed.
//
// A Topology names the nodes and the impaired links joining them; routers
// forward datagrams hop by hop through the fabric's bounded tail-drop
// queues, so cross-traffic on a shared bottleneck genuinely interacts. A
// Spec adds the flows (who sends to whom, which congestion-control law, how
// much, starting when) and Run drives the experiment, with a Monitor
// collecting per-flow telemetry through internal/trace sinks and per-link
// queue-occupancy/drop series, emitted as a machine-readable Report (JSONL
// rows + summary) whose Digest pins replay equality in CI.
package campaign

import (
	"fmt"
	"sort"

	"udt/internal/netem"
)

// hdrSize is the campaign encapsulation header: a 2-byte big-endian
// destination node index prepended to every datagram at its origin, read by
// routers to pick the next hop and stripped at the final leaf — the
// minimal routing shim that lets point-to-point netem paths compose into
// multi-hop topologies.
const hdrSize = 2

// link is one undirected edge; the same LinkConfig applies per direction.
type link struct {
	a, b string
	cfg  netem.LinkConfig
}

// Topology is a named-node graph joined by impaired links. Build one with
// AddNode/AddLink or the shape constructors (Dumbbell, Star, ParkingLot),
// then hand it to a Spec.
type Topology struct {
	nodes []string       // insertion order — the node-index space on the wire
	index map[string]int // name → wire index
	links []link
	adj   map[string][]string

	// nextHop[at][dst] is the neighbor `at` forwards to for datagrams
	// addressed to dst; built by routes().
	nextHop map[string]map[string]string
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{
		index: make(map[string]int),
		adj:   make(map[string][]string),
	}
}

// AddNode declares a node; adding the same name twice is a no-op.
func (t *Topology) AddNode(name string) {
	if _, ok := t.index[name]; ok {
		return
	}
	t.index[name] = len(t.nodes)
	t.nodes = append(t.nodes, name)
}

// AddLink joins a and b with the same impairment configuration in both
// directions, declaring either node as needed.
func (t *Topology) AddLink(a, b string, cfg netem.LinkConfig) {
	t.AddNode(a)
	t.AddNode(b)
	t.links = append(t.links, link{a: a, b: b, cfg: cfg})
	t.adj[a] = append(t.adj[a], b)
	t.adj[b] = append(t.adj[b], a)
	t.nextHop = nil // invalidate routes
}

// Nodes returns the node names in wire-index order.
func (t *Topology) Nodes() []string { return t.nodes }

// routes builds the deterministic next-hop table: one BFS per destination
// over sorted adjacency lists, so equal-length paths always resolve the
// same way regardless of construction order.
func (t *Topology) routes() map[string]map[string]string {
	if t.nextHop != nil {
		return t.nextHop
	}
	for _, n := range t.nodes {
		sort.Strings(t.adj[n])
	}
	t.nextHop = make(map[string]map[string]string, len(t.nodes))
	for _, n := range t.nodes {
		t.nextHop[n] = make(map[string]string)
	}
	for _, dst := range t.nodes {
		// BFS outward from dst; the first edge a node is reached over is the
		// edge it forwards back along.
		seen := map[string]bool{dst: true}
		queue := []string{dst}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range t.adj[cur] {
				if seen[nb] {
					continue
				}
				seen[nb] = true
				t.nextHop[nb][dst] = cur
				queue = append(queue, nb)
			}
		}
	}
	return t.nextHop
}

// pathNodes returns the node sequence from src to dst (inclusive), or an
// error when no route exists.
func (t *Topology) pathNodes(src, dst string) ([]string, error) {
	hops := t.routes()
	path := []string{src}
	for at := src; at != dst; {
		nh, ok := hops[at][dst]
		if !ok {
			return nil, fmt.Errorf("campaign: no route %s → %s", src, dst)
		}
		path = append(path, nh)
		at = nh
	}
	return path, nil
}

// validate checks the flows fit the topology: every endpoint exists and is
// used by at most one flow end (leaves do not forward, so a leaf serving
// two flows — or sitting on another flow's route — would silently eat
// transit datagrams).
func (t *Topology) validate(flows []FlowSpec) error {
	if len(flows) == 0 {
		return fmt.Errorf("campaign: no flows")
	}
	endpoint := make(map[string]int) // leaf name → flow using it
	for i, f := range flows {
		if f.Src == f.Dst {
			return fmt.Errorf("campaign: flow %d sends to itself (%q)", i, f.Src)
		}
		for _, n := range []string{f.Src, f.Dst} {
			if _, ok := t.index[n]; !ok {
				return fmt.Errorf("campaign: flow %d endpoint %q not in topology", i, n)
			}
			if j, dup := endpoint[n]; dup {
				return fmt.Errorf("campaign: node %q is an endpoint of both flow %d and flow %d", n, j, i)
			}
			endpoint[n] = i
		}
	}
	for i, f := range flows {
		path, err := t.pathNodes(f.Src, f.Dst)
		if err != nil {
			return err
		}
		for _, n := range path[1 : len(path)-1] {
			if j, isLeaf := endpoint[n]; isLeaf {
				return fmt.Errorf("campaign: flow %d routes through node %q, an endpoint of flow %d", i, n, j)
			}
		}
	}
	return nil
}

// Dumbbell builds the classic shared-bottleneck shape: n sender leaves
// s0..s{n-1} on router "l", n receiver leaves d0..d{n-1} on router "r", and
// one l—r bottleneck every flow crosses. Returns the topology and the n
// si→di flows (CC, payload and start time left for the caller).
func Dumbbell(n int, access, bottleneck netem.LinkConfig) (*Topology, []FlowSpec) {
	t := NewTopology()
	t.AddLink("l", "r", bottleneck)
	flows := make([]FlowSpec, n)
	for i := 0; i < n; i++ {
		src := fmt.Sprintf("s%d", i)
		dst := fmt.Sprintf("d%d", i)
		t.AddLink(src, "l", access)
		t.AddLink("r", dst, access)
		flows[i] = FlowSpec{Src: src, Dst: dst}
	}
	return t, flows
}

// Star builds a hub-and-spoke shape: n sender leaves x0..x{n-1} and n
// receiver leaves y0..y{n-1}, every leaf joined to the single router "hub"
// by its own spoke link, and n xi→yi flows all crossing the hub — the
// incast/outcast shape where every spoke is both an access link and
// somebody's bottleneck.
func Star(n int, spoke netem.LinkConfig) (*Topology, []FlowSpec) {
	t := NewTopology()
	t.AddNode("hub")
	flows := make([]FlowSpec, n)
	for i := 0; i < n; i++ {
		src := fmt.Sprintf("x%d", i)
		dst := fmt.Sprintf("y%d", i)
		t.AddLink(src, "hub", spoke)
		t.AddLink("hub", dst, spoke)
		flows[i] = FlowSpec{Src: src, Dst: dst}
	}
	return t, flows
}

// ParkingLot builds the multi-bottleneck chain: segments+1 routers
// r0..r{segments} in a line, one long flow L0→L1 crossing every bottleneck,
// and one short flow si→di per segment crossing only its own — the standard
// topology for asking whether a long flow is crowded out multiplicatively
// by successive bottlenecks.
func ParkingLot(segments int, access, bottleneck netem.LinkConfig) (*Topology, []FlowSpec) {
	t := NewTopology()
	for i := 0; i < segments; i++ {
		t.AddLink(fmt.Sprintf("r%d", i), fmt.Sprintf("r%d", i+1), bottleneck)
	}
	t.AddLink("L0", "r0", access)
	t.AddLink(fmt.Sprintf("r%d", segments), "L1", access)
	flows := []FlowSpec{{Src: "L0", Dst: "L1"}}
	for i := 0; i < segments; i++ {
		src := fmt.Sprintf("s%d", i)
		dst := fmt.Sprintf("d%d", i)
		t.AddLink(src, fmt.Sprintf("r%d", i), access)
		t.AddLink(fmt.Sprintf("r%d", i+1), dst, access)
		flows = append(flows, FlowSpec{Src: src, Dst: dst})
	}
	return t, flows
}
