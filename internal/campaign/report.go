package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"udt/internal/netem"
)

// FlowReport is one flow's outcome.
type FlowReport struct {
	ID        int    `json:"id"`
	Src       string `json:"src"`
	Dst       string `json:"dst"`
	CC        string `json:"cc"`
	StartAtUs int64  `json:"start_at_us"`
	// DoneAtUs is the first virtual instant both ends were finished; -1 when
	// the flow never completed.
	DoneAtUs  int64 `json:"done_at_us"`
	SentBytes int   `json:"sent_bytes"`
	RecvBytes int   `json:"recv_bytes"`
	RecvOK    bool  `json:"recv_ok"`
	// GoodputMbps is the delivered rate over the flow's own lifetime
	// (RecvBytes·8/(DoneAt−StartAt)); 0 for unfinished flows.
	GoodputMbps float64 `json:"goodput_mbps"`
	// P99AckUs is the flow's 99th-percentile write→acked latency, µs.
	P99AckUs int64 `json:"p99_ack_us"`
	Retrans  int64 `json:"retrans"`
	Timeouts int64 `json:"timeouts"`
	Broken   bool  `json:"broken"`
}

// LinkReport is one link direction's outcome: the fabric's impairment
// counters plus the monitor's peak queue occupancy.
type LinkReport struct {
	From             string `json:"from"`
	To               string `json:"to"`
	Offered          int64  `json:"offered"`
	Delivered        int64  `json:"delivered"`
	Lost             int64  `json:"lost"`
	DroppedQueue     int64  `json:"dropped_queue"`
	DroppedInboxFull int64  `json:"dropped_inbox"`
	MaxQueuePkts     int    `json:"max_queue_pkts"`
	Samples          int    `json:"samples"`
}

// CCGoodput aggregates goodput for one congestion-control law.
type CCGoodput struct {
	CC      string  `json:"cc"`
	Flows   int     `json:"flows"`
	AggMbps float64 `json:"agg_mbps"`
}

// Summary is the campaign's headline numbers — the values the CI
// regression gate (scripts/benchdiff) tracks.
type Summary struct {
	Flows   int `json:"flows"`
	FlowsOK int `json:"flows_ok"`
	// AggGoodputMbps sums the per-flow lifetime goodputs.
	AggGoodputMbps float64 `json:"agg_goodput_mbps"`
	MinFlowMbps    float64 `json:"min_flow_mbps"`
	MaxFlowMbps    float64 `json:"max_flow_mbps"`
	// JainIndex is Jain's fairness index over the per-flow goodputs:
	// (Σx)²/(n·Σx²), 1.0 = perfectly fair.
	JainIndex float64 `json:"jain_index"`
	// P99AckUs is the pooled 99th-percentile write→acked latency, µs.
	P99AckUs     int64 `json:"p99_ack_us"`
	RetransTotal int64 `json:"retrans_total"`
	// CCGoodput breaks aggregate goodput down per law, sorted by name.
	CCGoodput []CCGoodput `json:"cc_goodput"`
}

// Report is one campaign's machine-readable outcome. Field order is fixed
// by the struct definitions and all slices are deterministically ordered,
// so two same-seed runs produce byte-identical JSONL and equal Digests.
type Report struct {
	Name      string `json:"name"`
	Seed      int64  `json:"seed"`
	ElapsedUs int64  `json:"elapsed_us"`
	OK        bool   `json:"ok"`
	TimedOut  bool   `json:"timed_out"`
	// Misrouted counts datagrams that reached a leaf carrying another
	// node's index; Unroutable counts datagrams a router could not forward.
	// Either nonzero indicates a topology/routing bug and fails the run.
	Misrouted  int64        `json:"misrouted"`
	Unroutable int64        `json:"unroutable"`
	Flows      []FlowReport `json:"-"`
	Links      []LinkReport `json:"-"`
	Summary    Summary      `json:"-"`
}

// jsonlRow wraps each JSONL line with its row type.
type jsonlRow struct {
	Type string `json:"type"`
}

// WriteJSONL emits the report as JSON Lines: one campaign header row, one
// row per flow, one per link direction, and a summary row — the format
// downstream tooling (and the Digest) consumes.
func (r *Report) WriteJSONL(w io.Writer) error {
	type campaignRow struct {
		jsonlRow
		*Report
	}
	type flowRow struct {
		jsonlRow
		FlowReport
	}
	type linkRow struct {
		jsonlRow
		LinkReport
	}
	type summaryRow struct {
		jsonlRow
		Summary
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(campaignRow{jsonlRow{"campaign"}, r}); err != nil {
		return err
	}
	for i := range r.Flows {
		if err := enc.Encode(flowRow{jsonlRow{"flow"}, r.Flows[i]}); err != nil {
			return err
		}
	}
	for i := range r.Links {
		if err := enc.Encode(linkRow{jsonlRow{"link"}, r.Links[i]}); err != nil {
			return err
		}
	}
	return enc.Encode(summaryRow{jsonlRow{"summary"}, r.Summary})
}

// Digest returns the FNV-64a hash of the report's JSONL bytes — the replay
// fingerprint CI pins: same Spec, same Digest.
func (r *Report) Digest() uint64 {
	h := fnv.New64a()
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		panic(err) // in-memory encode of plain structs cannot fail
	}
	h.Write(buf.Bytes()) //nolint:errcheck
	return h.Sum64()
}

// Metrics flattens the summary into benchdiff-comparable keys, each
// prefixed "campaign_<name>_".
func (r *Report) Metrics() map[string]float64 {
	p := "campaign_" + r.Name + "_"
	return map[string]float64{
		p + "agg_goodput_mbps": r.Summary.AggGoodputMbps,
		p + "min_flow_mbps":    r.Summary.MinFlowMbps,
		p + "jain_index":       r.Summary.JainIndex,
		p + "p99_ack_us":       float64(r.Summary.P99AckUs),
		p + "flows_ok":         float64(r.Summary.FlowsOK),
	}
}

// summarize computes rep.Summary from the per-flow reports.
func summarize(rep *Report) {
	s := &rep.Summary
	s.Flows = len(rep.Flows)
	byCC := make(map[string]*CCGoodput)
	var sum, sumSq float64
	first := true
	for i := range rep.Flows {
		f := &rep.Flows[i]
		if f.RecvOK && !f.Broken && f.DoneAtUs >= 0 {
			s.FlowsOK++
		}
		g := f.GoodputMbps
		sum += g
		sumSq += g * g
		if first || g < s.MinFlowMbps {
			s.MinFlowMbps = g
		}
		if first || g > s.MaxFlowMbps {
			s.MaxFlowMbps = g
		}
		first = false
		s.RetransTotal += f.Retrans
		if f.P99AckUs > s.P99AckUs {
			s.P99AckUs = f.P99AckUs
		}
		cc := byCC[f.CC]
		if cc == nil {
			cc = &CCGoodput{CC: f.CC}
			byCC[f.CC] = cc
		}
		cc.Flows++
		cc.AggMbps += g
	}
	s.AggGoodputMbps = sum
	if n := float64(s.Flows); n > 0 && sumSq > 0 {
		s.JainIndex = sum * sum / (n * sumSq)
	}
	names := make([]string, 0, len(byCC))
	for n := range byCC {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.CCGoodput = append(s.CCGoodput, *byCC[n])
	}
}

// CISet returns the campaigns the CI gate runs: a 100-flow mixed-law
// dumbbell with Poisson arrivals and a 32-flow flash-crowd star, both sized
// to finish in seconds of wall time under the virtual clock while still
// saturating their bottleneck queues.
func CISet() []Spec {
	dumbTopo, dumbFlows := Dumbbell(100,
		netem.LinkConfig{Delay: 500, RateMbps: 50, QueuePkts: 64},
		netem.LinkConfig{Delay: 2000, RateMbps: 200, QueuePkts: 128},
	)
	dumbFlows = AssignPayload(dumbFlows, 32<<10)
	dumbFlows = AssignCC(dumbFlows, "native", "ctcp", "bbrlite", "hstcp")
	dumbFlows = PoissonArrivals(dumbFlows, 42, 0, 5_000)

	starTopo, starFlows := Star(32,
		netem.LinkConfig{Delay: 1000, RateMbps: 100, QueuePkts: 64},
	)
	starFlows = AssignPayload(starFlows, 64<<10)
	starFlows = AssignCC(starFlows, "native", "bbrlite")
	starFlows = FlashCrowd(starFlows, 0)

	return []Spec{
		{Name: "dumbbell100", Seed: 1, Topology: dumbTopo, Flows: dumbFlows},
		{Name: "star32", Seed: 1, Topology: starTopo, Flows: starFlows},
	}
}

// String renders the one-line human summary udtchaos prints per campaign.
func (r *Report) String() string {
	return fmt.Sprintf("%-12s ok=%-5v flows=%d/%d agg=%.2f Mb/s jain=%.3f p99ack=%dµs retrans=%d virtual=%.3fs",
		r.Name, r.OK, r.Summary.FlowsOK, r.Summary.Flows, r.Summary.AggGoodputMbps,
		r.Summary.JainIndex, r.Summary.P99AckUs, r.Summary.RetransTotal, float64(r.ElapsedUs)/1e6)
}
