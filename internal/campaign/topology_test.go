package campaign

import (
	"strings"
	"testing"

	"udt/internal/netem"
)

func TestRoutesPickShortestDeterministicPaths(t *testing.T) {
	topo, flows := Dumbbell(2, netem.LinkConfig{}, netem.LinkConfig{})
	path, err := topo.pathNodes("s0", "d1")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"s0", "l", "r", "d1"}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if err := topo.validate(flows); err != nil {
		t.Fatalf("dumbbell flows must validate: %v", err)
	}
}

func TestValidateRejectsBadFlows(t *testing.T) {
	topo, flows := Dumbbell(2, netem.LinkConfig{}, netem.LinkConfig{})
	cases := []struct {
		name  string
		flows []FlowSpec
		want  string
	}{
		{"unknown node", []FlowSpec{{Src: "s0", Dst: "nowhere"}}, "not in topology"},
		{"self flow", []FlowSpec{{Src: "s0", Dst: "s0"}}, "sends to itself"},
		{"reused endpoint", []FlowSpec{{Src: "s0", Dst: "d0"}, {Src: "s1", Dst: "d0"}}, "endpoint of both"},
		{"no flows", nil, "no flows"},
		{"routes through endpoint", nil, "routes through"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fl := tc.flows
			if tc.name == "routes through endpoint" {
				// A flow terminating at router "l" makes "l" a leaf that the
				// s1→d1 flow must still route through.
				fl = []FlowSpec{{Src: "s0", Dst: "l"}, {Src: "s1", Dst: "d1"}}
			}
			err := topo.validate(fl)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("validate(%v) = %v, want error containing %q", fl, err, tc.want)
			}
		})
	}
	if err := topo.validate(flows); err != nil {
		t.Fatalf("good flows must still validate: %v", err)
	}
}

func TestNoRouteIsAnError(t *testing.T) {
	topo := NewTopology()
	topo.AddNode("island")
	topo.AddLink("a", "b", netem.LinkConfig{})
	if _, err := topo.pathNodes("a", "island"); err == nil {
		t.Fatal("disconnected destination must be a routing error")
	}
	err := topo.validate([]FlowSpec{{Src: "a", Dst: "island"}})
	if err == nil || !strings.Contains(err.Error(), "no route") {
		t.Fatalf("validate = %v, want no-route error", err)
	}
}

func TestShapesHaveExpectedStructure(t *testing.T) {
	topo, flows := Star(3, netem.LinkConfig{})
	if len(flows) != 3 || len(topo.Nodes()) != 7 {
		t.Fatalf("star(3): %d flows, %d nodes", len(flows), len(topo.Nodes()))
	}
	for _, f := range flows {
		p, err := topo.pathNodes(f.Src, f.Dst)
		if err != nil || len(p) != 3 || p[1] != "hub" {
			t.Fatalf("star flow %v path %v err %v", f, p, err)
		}
	}

	topo, flows = ParkingLot(3, netem.LinkConfig{}, netem.LinkConfig{})
	if len(flows) != 4 { // one long + three short
		t.Fatalf("parking-lot(3): %d flows", len(flows))
	}
	long, err := topo.pathNodes(flows[0].Src, flows[0].Dst)
	if err != nil || len(long) != 6 { // L0 r0 r1 r2 r3 L1
		t.Fatalf("long path %v err %v", long, err)
	}
	short, err := topo.pathNodes(flows[1].Src, flows[1].Dst)
	if err != nil || len(short) != 4 { // s0 r0 r1 d0
		t.Fatalf("short path %v err %v", short, err)
	}
	if err := topo.validate(flows); err != nil {
		t.Fatal(err)
	}
}

func TestArrivalSchedules(t *testing.T) {
	flows := make([]FlowSpec, 4)
	FlashCrowd(flows, 77)
	for i := range flows {
		if flows[i].StartAt != 77 {
			t.Fatalf("flash crowd start %d = %d", i, flows[i].StartAt)
		}
	}
	Staggered(flows, 100, 50)
	for i := range flows {
		if want := int64(100 + 50*i); flows[i].StartAt != want {
			t.Fatalf("staggered start %d = %d, want %d", i, flows[i].StartAt, want)
		}
	}
	PoissonArrivals(flows, 7, 1000, 500)
	prev := int64(0)
	for i := range flows {
		if flows[i].StartAt < 1000 || flows[i].StartAt < prev {
			t.Fatalf("poisson arrivals must be ≥ start and non-decreasing: %v", flows)
		}
		prev = flows[i].StartAt
	}
	again := make([]FlowSpec, 4)
	PoissonArrivals(again, 7, 1000, 500)
	for i := range flows {
		if again[i].StartAt != flows[i].StartAt {
			t.Fatal("same-seed Poisson arrivals must replay identically")
		}
	}
	AssignCC(flows, "native", "bbrlite")
	if flows[0].CC != "native" || flows[1].CC != "bbrlite" || flows[2].CC != "native" {
		t.Fatalf("AssignCC cycle broken: %+v", flows)
	}
	AssignPayload(flows, 4096)
	if flows[3].Payload != 4096 {
		t.Fatalf("AssignPayload: %+v", flows[3])
	}
}
