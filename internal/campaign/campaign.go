package campaign

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"udt/internal/netem"
	"udt/internal/netem/chaos"
	"udt/internal/seqno"
	"udt/internal/trace"
)

// routerInboxPkts sizes router endpoints' receive queues: big enough that
// the bounded tail-drop queues of the rate-capped links — not the emulated
// socket buffer — are where congestion shows up.
const routerInboxPkts = 65536

// FlowSpec is one unidirectional transfer: Src opens a connection to Dst,
// sends Payload bytes under the named congestion-control law, starting at
// StartAt µs of virtual time.
type FlowSpec struct {
	// Src and Dst are leaf node names in the topology.
	Src, Dst string
	// CC names the congestion controller ("native", "ctcp", "bbrlite", ...);
	// empty selects the native law.
	CC string
	// Payload is the transfer size in bytes.
	Payload int
	// StartAt is the flow's arrival time, µs of virtual time.
	StartAt int64
}

// Spec declares one campaign: a topology, the flows crossing it, and the
// engine/measurement parameters. Run(spec) is a pure function of the Spec —
// same seed, same Report bytes.
type Spec struct {
	// Name labels the campaign in reports and metric keys.
	Name string
	// Seed drives every random draw: payload bytes, ISNs, impairments.
	Seed int64
	// Topology is the node graph the flows run over.
	Topology *Topology
	// Flows are the transfers; index is the flow ID in reports.
	Flows []FlowSpec
	// MSS is the UDT packet size (the routing header rides outside it).
	// Default 576 — many engines, small buffers, like the mux harness.
	MSS int
	// SndBufPkts and RcvBufPkts size each flow's buffers. Default 64.
	SndBufPkts, RcvBufPkts int
	// MinEXP and PeerDeathTime tune failure detection, µs (0 = defaults).
	MinEXP, PeerDeathTime int64
	// MaxVirtualTime aborts the campaign after this much virtual time, µs.
	// Default 120 s.
	MaxVirtualTime int64
	// SampleEveryUs is the link queue-occupancy sampling period. Default
	// 10 000 (one SYN).
	SampleEveryUs int64
	// PerfEverySYN is the engine telemetry cadence in SYN ticks. Default 1
	// (every SYN — short flows still get a few samples).
	PerfEverySYN int
	// Events are scripted mid-campaign faults, fired in At order.
	Events []chaos.Event
}

func (s *Spec) fill() {
	if s.MSS == 0 {
		s.MSS = 576
	}
	if s.SndBufPkts == 0 {
		s.SndBufPkts = 64
	}
	if s.RcvBufPkts == 0 {
		s.RcvBufPkts = 64
	}
	if s.MaxVirtualTime == 0 {
		s.MaxVirtualTime = 120_000_000
	}
	if s.SampleEveryUs == 0 {
		s.SampleEveryUs = 10_000
	}
	if s.PerfEverySYN == 0 {
		s.PerfEverySYN = 1
	}
}

// FlashCrowd sets every flow's arrival to the same instant.
func FlashCrowd(flows []FlowSpec, at int64) []FlowSpec {
	for i := range flows {
		flows[i].StartAt = at
	}
	return flows
}

// Staggered spaces arrivals evenly: flow i starts at start + i·gap.
func Staggered(flows []FlowSpec, start, gap int64) []FlowSpec {
	for i := range flows {
		flows[i].StartAt = start + int64(i)*gap
	}
	return flows
}

// PoissonArrivals draws exponentially distributed inter-arrival gaps with
// the given mean (µs) from a dedicated seeded source, so arrival patterns
// replay deterministically and independently of the campaign's other draws.
func PoissonArrivals(flows []FlowSpec, seed int64, start, meanGap int64) []FlowSpec {
	rng := rand.New(rand.NewSource(seed)) //nolint:gosec // reproducibility, not crypto
	at := start
	for i := range flows {
		flows[i].StartAt = at
		at += int64(rng.ExpFloat64() * float64(meanGap))
	}
	return flows
}

// AssignCC cycles the given law names across the flows: flow i runs
// ccs[i%len(ccs)] — the mixed-law population of a fairness campaign.
func AssignCC(flows []FlowSpec, ccs ...string) []FlowSpec {
	if len(ccs) == 0 {
		return flows
	}
	for i := range flows {
		flows[i].CC = ccs[i%len(ccs)]
	}
	return flows
}

// AssignPayload sets every flow's transfer size.
func AssignPayload(flows []FlowSpec, bytes int) []FlowSpec {
	for i := range flows {
		flows[i].Payload = bytes
	}
	return flows
}

// flowState is one running flow: the initiating (sending) peer at Src, the
// responding (receiving) peer at Dst, and the bookkeeping the driver needs.
type flowState struct {
	spec      FlowSpec
	initiator *chaos.Peer
	responder *chaos.Peer
	started   bool
	doneAt    int64 // first instant both sides were finished; -1 while running
}

// leaf binds a peer to the endpoint it drains and the wire index it
// accepts datagrams for.
type leaf struct {
	peer *chaos.Peer
	ep   *netem.Endpoint
	idx  uint16
}

// Run executes one campaign under a virtual clock and returns its Report
// (plus the Monitor holding the full per-flow/per-link series). It is fully
// deterministic: same Spec, byte-identical Report.
func Run(spec Spec) (*Report, *Monitor, error) {
	spec.fill()
	topo := spec.Topology
	if topo == nil {
		return nil, nil, fmt.Errorf("campaign: nil topology")
	}
	if err := topo.validate(spec.Flows); err != nil {
		return nil, nil, err
	}
	if len(topo.nodes) > 1<<16 {
		return nil, nil, fmt.Errorf("campaign: %d nodes exceed the %d-node header space", len(topo.nodes), 1<<16)
	}

	vc := netem.NewVirtualClock(0)
	nw := netem.New(spec.Seed, vc)
	rng := rand.New(rand.NewSource(spec.Seed)) //nolint:gosec // reproducibility, not crypto

	// Endpoints: leaves (flow endpoints) get the default inbox, routers get
	// deep ones so queueing concentrates in the link queues under test.
	isLeaf := make(map[string]bool, 2*len(spec.Flows))
	for _, f := range spec.Flows {
		isLeaf[f.Src] = true
		isLeaf[f.Dst] = true
	}
	eps := make(map[string]*netem.Endpoint, len(topo.nodes))
	for _, n := range topo.nodes {
		buf := 0 // default
		if !isLeaf[n] {
			buf = routerInboxPkts
		}
		ep, err := nw.EndpointBuf(n, buf)
		if err != nil {
			return nil, nil, err
		}
		eps[n] = ep
	}
	for _, l := range topo.links {
		nw.SetLink(l.a, l.b, l.cfg)
	}
	hops := topo.routes()

	monitor := newMonitor(len(spec.Flows), topo)

	// Build the flows. All random draws happen here, in flow order, so the
	// draw sequence is a function of the Spec alone.
	flows := make([]*flowState, len(spec.Flows))
	var leaves []leaf
	for i, f := range spec.Flows {
		payload := make([]byte, f.Payload)
		rng.Read(payload) //nolint:errcheck // never fails
		isnI := rng.Int31() & seqno.Max
		isnR := rng.Int31() & seqno.Max
		base := chaos.PeerOptions{
			MSS:             spec.MSS,
			SndBufPkts:      spec.SndBufPkts,
			RcvBufPkts:      spec.RcvBufPkts,
			MinEXP:          spec.MinEXP,
			PeerDeathTime:   spec.PeerDeathTime,
			CC:              f.CC,
			TrackAckLatency: false,
		}
		iOpts := base
		iOpts.Name = fmt.Sprintf("%s→%s#%d", f.Src, f.Dst, i)
		iOpts.ISN, iOpts.PeerISN = isnI, isnR
		iOpts.Payload = payload
		iOpts.TrackAckLatency = true
		initiator := chaos.NewPeer(iOpts)
		rOpts := base
		rOpts.Name = fmt.Sprintf("%s←%s#%d", f.Dst, f.Src, i)
		rOpts.ISN, rOpts.PeerISN = isnR, isnI
		rOpts.Expect = payload
		responder := chaos.NewPeer(rOpts)

		initiator.SetOut(hopWriter(eps[f.Src], eps[hops[f.Src][f.Dst]], uint16(topo.index[f.Dst]), spec.MSS))
		responder.SetOut(hopWriter(eps[f.Dst], eps[hops[f.Dst][f.Src]], uint16(topo.index[f.Src]), spec.MSS))
		initiator.AttachPerf(monitor, spec.PerfEverySYN, int32(i), f.CC, trace.RoleSender)
		responder.AttachPerf(monitor, spec.PerfEverySYN, int32(i), f.CC, trace.RoleReceiver)

		flows[i] = &flowState{spec: f, initiator: initiator, responder: responder, doneAt: -1}
		leaves = append(leaves,
			leaf{peer: initiator, ep: eps[f.Src], idx: uint16(topo.index[f.Src])},
			leaf{peer: responder, ep: eps[f.Dst], idx: uint16(topo.index[f.Dst])},
		)
	}

	// Routers forward in sorted-name order each round — deterministic.
	var routers []string
	for _, n := range topo.nodes {
		if !isLeaf[n] {
			routers = append(routers, n)
		}
	}
	sort.Strings(routers)

	events := append([]chaos.Event(nil), spec.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })

	// Arrival schedule: indices of flows not yet started, in StartAt order.
	arrivals := make([]int, len(flows))
	for i := range arrivals {
		arrivals[i] = i
	}
	sort.SliceStable(arrivals, func(a, b int) bool {
		return flows[arrivals[a]].spec.StartAt < flows[arrivals[b]].spec.StartAt
	})

	rep := &Report{Name: spec.Name, Seed: spec.Seed}
	rbuf := make([]byte, 65536)
	var misrouted, unroutable int64
	nextSample := int64(0)
	for {
		now := vc.Now()
		progress := false
		for len(events) > 0 && events[0].At <= now {
			events[0].Do(nw)
			events = events[1:]
			progress = true
		}
		for len(arrivals) > 0 && flows[arrivals[0]].spec.StartAt <= now {
			fl := flows[arrivals[0]]
			arrivals = arrivals[1:]
			fl.initiator.Start(now)
			fl.responder.Start(now)
			fl.started = true
			progress = true
		}
		// Router hop: re-offer each queued datagram onto its next link, so
		// it picks up that link's delay/loss/queue on the way.
		for _, rt := range routers {
			ep := eps[rt]
			for {
				n, _, ok := ep.TryReadFrom(rbuf)
				if !ok {
					break
				}
				progress = true
				if n < hdrSize {
					unroutable++
					continue
				}
				dst := binary.BigEndian.Uint16(rbuf)
				if int(dst) >= len(topo.nodes) {
					unroutable++
					continue
				}
				nh, ok := hops[rt][topo.nodes[dst]]
				if !ok {
					unroutable++
					continue
				}
				ep.WriteTo(rbuf[:n], eps[nh].LocalAddr()) //nolint:errcheck // losses are the point
			}
		}
		// Leaf drains + engine service.
		for _, lf := range leaves {
			for {
				n, _, ok := lf.ep.TryReadFrom(rbuf)
				if !ok {
					break
				}
				progress = true
				if n < hdrSize || binary.BigEndian.Uint16(rbuf) != lf.idx {
					misrouted++
					continue
				}
				lf.peer.Deliver(now, rbuf[hdrSize:n])
			}
			if lf.peer.Service(now) {
				progress = true
			}
		}
		// Measurement tick.
		for now >= nextSample {
			monitor.sampleLinks(now, nw)
			nextSample += spec.SampleEveryUs
		}
		// Completion check.
		done := len(arrivals) == 0
		for _, fl := range flows {
			if !fl.started {
				continue
			}
			iDead := fl.initiator.NoteBroken(now)
			rDead := fl.responder.NoteBroken(now)
			if fl.doneAt < 0 {
				switch {
				case fl.initiator.Finished() && fl.responder.Finished():
					fl.doneAt = now
				case iDead && rDead:
					// both ends gave up: over, unsuccessfully
				case iDead || rDead:
					done = false // the survivor must still detect the death
				default:
					done = false
				}
			}
		}
		if done {
			break
		}
		if now >= spec.MaxVirtualTime {
			rep.TimedOut = true
			break
		}
		if progress {
			continue // re-pump at the same instant before sleeping
		}
		wake := spec.MaxVirtualTime
		if len(events) > 0 && events[0].At < wake {
			wake = events[0].At
		}
		if len(arrivals) > 0 && flows[arrivals[0]].spec.StartAt < wake {
			wake = flows[arrivals[0]].spec.StartAt
		}
		if nextSample < wake {
			wake = nextSample
		}
		for _, fl := range flows {
			if !fl.started || fl.doneAt >= 0 {
				continue
			}
			wake = fl.initiator.NextWake(wake)
			wake = fl.responder.NextWake(wake)
		}
		if t, ok := vc.NextEvent(); ok && t < wake {
			wake = t
		}
		if wake <= now {
			wake = now + 1 // guarantee progress even on zero-delay links
		}
		vc.AdvanceTo(wake)
	}

	rep.ElapsedUs = vc.Now()
	rep.Misrouted = misrouted
	rep.Unroutable = unroutable
	buildFlowReports(rep, flows)
	buildLinkReports(rep, monitor, nw)
	summarize(rep)
	rep.OK = !rep.TimedOut && rep.Summary.FlowsOK == len(rep.Flows) && misrouted == 0 && unroutable == 0
	for _, n := range topo.nodes {
		eps[n].Close() //nolint:errcheck
	}
	return rep, monitor, nil
}

// hopWriter returns a Peer out hook that prepends the destination node
// index and offers the datagram to the first hop — the origin half of the
// campaign routing shim.
func hopWriter(ep *netem.Endpoint, firstHop *netem.Endpoint, dst uint16, mss int) func([]byte) {
	buf := make([]byte, hdrSize+mss+64) // slack for sealed control growth
	to := firstHop.LocalAddr()
	return func(b []byte) {
		n := copy(buf[hdrSize:], b)
		binary.BigEndian.PutUint16(buf, dst)
		ep.WriteTo(buf[:hdrSize+n], to) //nolint:errcheck // losses are the point
	}
}

// buildFlowReports fills rep.Flows from the final peer states.
func buildFlowReports(rep *Report, flows []*flowState) {
	rep.Flows = make([]FlowReport, len(flows))
	for i, fl := range flows {
		ir := fl.initiator.Result()
		rr := fl.responder.Result()
		fr := FlowReport{
			ID:        i,
			Src:       fl.spec.Src,
			Dst:       fl.spec.Dst,
			CC:        ccName(fl.spec.CC),
			StartAtUs: fl.spec.StartAt,
			DoneAtUs:  fl.doneAt,
			SentBytes: ir.SentBytes,
			RecvBytes: rr.RecvBytes,
			RecvOK:    rr.RecvOK,
			Retrans:   ir.Stats.PktsRetrans,
			Timeouts:  ir.Stats.Timeouts,
			Broken:    ir.Broken || rr.Broken,
		}
		if fl.doneAt > fl.spec.StartAt && rr.RecvOK {
			fr.GoodputMbps = float64(rr.RecvBytes) * 8 / float64(fl.doneAt-fl.spec.StartAt) // bits/µs ≡ Mb/s
		}
		fr.P99AckUs = p99(fl.initiator.AckLatencies())
		rep.Flows[i] = fr
	}
}

// ccName maps the empty controller name to its effective law.
func ccName(cc string) string {
	if cc == "" {
		return "native"
	}
	return cc
}

// buildLinkReports fills rep.Links from the fabric counters and the
// monitor's queue series, in the monitor's sorted direction order.
func buildLinkReports(rep *Report, m *Monitor, nw *netem.Net) {
	rep.Links = make([]LinkReport, len(m.links))
	for i := range m.links {
		ls := &m.links[i]
		st := nw.PathStats(ls.from, ls.to)
		rep.Links[i] = LinkReport{
			From:             ls.from,
			To:               ls.to,
			Offered:          st.Offered,
			Delivered:        st.Delivered,
			Lost:             st.Lost,
			DroppedQueue:     st.DroppedQueue,
			DroppedInboxFull: st.DroppedInboxFull,
			MaxQueuePkts:     ls.maxQueue,
			Samples:          len(ls.samples),
		}
	}
}

// p99 returns the 99th-percentile of the latency series, µs (0 if empty).
func p99(lat []int64) int64 {
	if len(lat) == 0 {
		return 0
	}
	s := append([]int64(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(99*(len(s)-1))/100]
}
