package campaign

import (
	"udt/internal/netem"
	"udt/internal/trace"
)

// LinkSample is one point of a per-direction link series: the rate-cap
// queue occupancy and the cumulative drop counters at virtual time T.
type LinkSample struct {
	T                int64 `json:"t_us"`
	QueuePkts        int   `json:"queue_pkts"`
	DroppedQueue     int64 `json:"dropped_queue"`
	DroppedInboxFull int64 `json:"dropped_inbox"`
	Delivered        int64 `json:"delivered"`
}

// linkSeries accumulates one direction's samples.
type linkSeries struct {
	from, to string
	samples  []LinkSample
	maxQueue int
}

// Monitor collects a campaign's measurements: per-flow telemetry records
// through the engines' trace sinks (it implements trace.Sink) and per-link
// queue/drop series sampled by the driver at the Spec's cadence. Attaching
// it never perturbs the run — engine sampling adds no events and consumes
// no randomness, and link sampling only reads counters.
type Monitor struct {
	flowRecs [][]trace.PerfRecord // indexed by PerfRecord.Flow
	links    []linkSeries
}

// newMonitor sizes the monitor for nflows flows and one series per link
// direction, in deterministic sorted-link order.
func newMonitor(nflows int, topo *Topology) *Monitor {
	m := &Monitor{flowRecs: make([][]trace.PerfRecord, nflows)}
	for _, dir := range linkDirs(topo) {
		m.links = append(m.links, linkSeries{from: dir[0], to: dir[1]})
	}
	return m
}

// linkDirs enumerates both directions of every topology link, sorted by
// (from, to) so series order — and therefore report bytes — never depends
// on construction order.
func linkDirs(topo *Topology) [][2]string {
	dirs := make([][2]string, 0, 2*len(topo.links))
	for _, l := range topo.links {
		dirs = append(dirs, [2]string{l.a, l.b}, [2]string{l.b, l.a})
	}
	sortDirs(dirs)
	return dirs
}

func sortDirs(dirs [][2]string) {
	for i := 1; i < len(dirs); i++ {
		for j := i; j > 0; j-- {
			a, b := dirs[j-1], dirs[j]
			if a[0] < b[0] || (a[0] == b[0] && a[1] <= b[1]) {
				break
			}
			dirs[j-1], dirs[j] = b, a
		}
	}
}

// Record implements trace.Sink: one engine telemetry sample, copied (the
// emitter reuses the record) into the flow's series.
func (m *Monitor) Record(r *trace.PerfRecord) {
	if int(r.Flow) < 0 || int(r.Flow) >= len(m.flowRecs) {
		return
	}
	m.flowRecs[r.Flow] = append(m.flowRecs[r.Flow], *r)
}

// FlowSeries returns flow i's telemetry records in emission order (sender
// and receiver samples interleaved; filter with trace.SenderSeries or
// trace.GoodputSeries).
func (m *Monitor) FlowSeries(i int) []trace.PerfRecord {
	if i < 0 || i >= len(m.flowRecs) {
		return nil
	}
	return m.flowRecs[i]
}

// LinkSeries returns the sampled series for one link direction (nil if the
// direction is not part of the topology).
func (m *Monitor) LinkSeries(from, to string) []LinkSample {
	for i := range m.links {
		if m.links[i].from == from && m.links[i].to == to {
			return m.links[i].samples
		}
	}
	return nil
}

// sampleLinks appends one sample per link direction at virtual time now.
func (m *Monitor) sampleLinks(now int64, nw *netem.Net) {
	for i := range m.links {
		ls := &m.links[i]
		st := nw.PathStats(ls.from, ls.to)
		q := nw.QueueLen(ls.from, ls.to)
		if q > ls.maxQueue {
			ls.maxQueue = q
		}
		ls.samples = append(ls.samples, LinkSample{
			T:                now,
			QueuePkts:        q,
			DroppedQueue:     st.DroppedQueue,
			DroppedInboxFull: st.DroppedInboxFull,
			Delivered:        st.Delivered,
		})
	}
}
