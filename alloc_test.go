package udt

import (
	"net"
	"sync"
	"testing"

	"udt/internal/core"
	"udt/internal/packet"
	"udt/internal/secure"
	"udt/internal/seqno"
	"udt/internal/timing"
	"udt/internal/trace"
)

// discardSock swallows datagrams; it stands in for the UDP socket so the
// sender path can be driven synchronously, without a peer or a goroutine.
type discardSock struct{ writes int }

func (d *discardSock) writeTo(b []byte, _ net.Addr) (int, error) {
	d.writes++
	return len(b), nil
}

func (d *discardSock) headroom() int { return 0 }

// gsoDiscardSock upgrades discardSock with the batch and segment-train
// interfaces, so the alloc gates cover the GSO pack-and-submit path
// without needing a kernel that offloads.
type gsoDiscardSock struct {
	discardSock
	trains, segs int
}

func (g *gsoDiscardSock) writeBatch(bufs [][]byte, _ net.Addr) error {
	g.writes += len(bufs)
	return nil
}

func (g *gsoDiscardSock) writeSegments(bufs [][]byte, segSize int, _ net.Addr) (bool, error) {
	g.trains++
	g.segs += len(bufs)
	return true, nil
}

func (g *gsoDiscardSock) offloadActive() bool { return true }

// newSendPathConn assembles a Conn exactly as newConn does, minus the
// scheduler shard (c.shard stays nil; kickSender tolerates that), so tests
// can drive claimBurstLocked/drainOutboxLocked deterministically from one
// goroutine. With traced set, a perfmon ring is
// attached just as newConn attaches one, so the alloc gates cover telemetry.
// cc selects the congestion controller (nil = native), so the gates cover
// every registered law's interface dispatch.
func newSendPathConn(sock sockWriter, traced bool, cc CongestionFactory, sec *secure.Session) *Conn {
	cfg := Config{CC: cc}
	cfg.fill()
	c := &Conn{
		cfg:   cfg,
		sock:  sock,
		clock: timing.NewSysClock(),
		sec:   sec,
	}
	c.aead = sec != nil && sec.AEAD()
	c.hr = sock.headroom()
	c.bw, _ = sock.(batchWriter)
	c.sw, _ = sock.(segWriter)
	c.burst = burstSize(cfg.BatchSize, c.hr+cfg.MSS)
	c.core = core.NewConn(cfg.coreConfig(0), 0)
	payload := cfg.MSS - packet.DataHeaderSize
	if c.aead {
		payload -= secure.Overhead
	}
	c.snd = core.NewSndBuffer(cfg.SndBuf, payload, 0)
	c.rcv = core.NewRcvBuffer(cfg.RcvBuf, payload, 0)
	c.core.AvailBuf = c.rcv.Free
	if traced {
		c.perfRing = trace.NewRing(cfg.PerfHistory)
		c.core.SetPerfSink(c.perfRing, cfg.PerfEverySYN, 0, "udt", trace.RoleFlow)
	}
	c.rdReady = sync.NewCond(&c.mu)
	c.wrReady = sync.NewCond(&c.mu)
	c.core.Start(c.clock.Now())
	return c
}

// sendCycle is one synchronous turn of the sender: buffer one packet of
// data, claim and encode a burst, push it through the socket, then feed the
// engine an ACK for everything in flight (the role the peer plays) and
// drain the resulting control traffic. It exercises every per-packet
// operation of the real send path.
func sendCycle(c *Conn, data []byte, batch *sendBatch, scratch []byte, lens []int, burst *[][]byte) {
	c.mu.Lock()
	now := c.clock.Now()
	c.core.Advance(now)
	c.snd.Write(data)
	n, _, _ := c.claimBurstLocked(now, scratch, lens)
	c.mu.Unlock()
	if n > 0 {
		c.sendDataBurst(scratch, lens, n, burst) //nolint:errcheck
	}
	c.mu.Lock()
	ack := packet.ACK{
		Seq:      seqno.Inc(c.core.CurSeq()),
		RTT:      100,
		RTTVar:   10,
		AvailBuf: int32(c.cfg.RcvBuf),
	}
	if newly := c.core.HandleACK(now, ack); newly > 0 {
		c.snd.Release(c.core.SndLastAck())
	}
	batch.reset()
	c.drainOutboxLocked(batch)
	c.mu.Unlock()
	for _, b := range batch.msgs {
		c.sockWrite(b) //nolint:errcheck
	}
}

// TestSenderPathAllocs is the regression gate for the real transport's
// zero-allocation invariant: once warmed up, sending a data packet — encode
// into the reusable scratch burst, socket write, ACK bookkeeping, control
// drain into the reusable batch arena — allocates nothing. The connection
// runs with a perfmon ring attached (the default newConn configuration), so
// the gate also proves telemetry — including the CC name and window fields —
// adds 0 allocs/packet on the hot path. Every registered congestion
// controller is gated, since the engine now reaches its law through the
// congestion.Controller interface on each packet sent and ACK handled.
func TestSenderPathAllocs(t *testing.T) {
	for _, secureOn := range []bool{false, true} {
		for _, name := range CongestionControls() {
			run := name
			if secureOn {
				run = "psk-aead/" + name
			}
			t.Run(run, func(t *testing.T) {
				cc, err := CongestionControl(name)
				if err != nil {
					t.Fatal(err)
				}
				var sess *secure.Session
				if secureOn {
					sess, _ = testSessionPair(true)
				}
				sock := &discardSock{}
				c := newSendPathConn(sock, true, cc, sess)
				var batch sendBatch
				scratch := make([]byte, c.burst*(c.hr+c.cfg.MSS))
				lens := make([]int, c.burst)
				burst := make([][]byte, 0, c.burst)
				payload := c.cfg.MSS - packet.DataHeaderSize
				if secureOn {
					payload -= secure.Overhead
				}
				data := make([]byte, payload)

				// Warm up: grow the batch arena, the engine's outbox and the
				// ACK history window to steady state.
				for i := 0; i < 64; i++ {
					sendCycle(c, data, &batch, scratch, lens, &burst)
				}
				sentBefore := c.core.Stats.PktsSent
				avg := testing.AllocsPerRun(500, func() {
					sendCycle(c, data, &batch, scratch, lens, &burst)
				})
				sent := c.core.Stats.PktsSent - sentBefore
				if sent < 500 {
					t.Fatalf("send path stalled during measurement: only %d packets sent", sent)
				}
				if avg != 0 {
					t.Fatalf("send path allocates %.2f objects per packet, want 0", avg)
				}
				// The measured cycles may all fall inside one SYN interval;
				// cross a SYN boundary explicitly to prove the sampler really
				// was attached and live.
				c.mu.Lock()
				c.core.Advance(c.clock.Now() + 2*c.cfg.SYN.Microseconds())
				c.mu.Unlock()
				if c.perfRing.Total() == 0 {
					t.Fatal("perf ring recorded nothing; the traced gate proved nothing")
				}
				if r, ok := c.perfRing.Last(); !ok || r.CCName != name {
					t.Fatalf("perf record carries cc %q, want %q", r.CCName, name)
				}
			})
		}
	}
}

// testSessionPair builds the two ends of one Secure UDT session over a
// fixed key and nonces: local is the client side, peer the server side.
// Both ends start their epoch trackers at ISN 0, matching the zero ISNs
// newSendPathConn wires.
func testSessionPair(aead bool) (local, peer *secure.Session) {
	k := secure.DeriveKeys([]byte("alloc-test pre-shared key 32by.."))
	cn := []byte("client-nonce-16b")
	sn := []byte("server-nonce-16b")
	local = secure.NewSession(k, cn, sn, true, 0, 0, aead)
	peer = secure.NewSession(k, cn, sn, false, 0, 0, aead)
	return local, peer
}

// TestSecureRecvPathAllocs gates the receive side of the sealed channel:
// opening a sealed data packet and running it through the full
// handleDatagramAt path — AEAD open, engine bookkeeping, control drain —
// must allocate nothing. The packet is a duplicate every iteration, which
// exercises the dup-triggered re-ACK emission too; retransmissions seal
// byte-identically, so one sealed image is recopied per run (opening
// decrypts in place).
func TestSecureRecvPathAllocs(t *testing.T) {
	sess, peer := testSessionPair(true)
	sock := &discardSock{}
	c := newSendPathConn(sock, false, nil, sess)

	payload := make([]byte, c.cfg.MSS-packet.DataHeaderSize-secure.Overhead)
	pkt := make([]byte, c.cfg.MSS)
	n, err := packet.EncodeData(pkt, &packet.Data{Seq: 0, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	sealed := append([]byte(nil), peer.SealData(pkt[:n])...)
	if len(sealed) != c.cfg.MSS {
		t.Fatalf("sealed full packet is %d bytes, want MSS %d", len(sealed), c.cfg.MSS)
	}
	buf := make([]byte, len(sealed))
	deliver := func() {
		copy(buf, sealed)
		c.handleDatagram(buf)
	}
	for i := 0; i < 16; i++ {
		deliver() // warm the receive-side control batch arena
	}
	if avg := testing.AllocsPerRun(500, deliver); avg != 0 {
		t.Fatalf("secure receive path allocates %.2f objects per packet, want 0", avg)
	}
	af, _ := sess.Drops()
	if af != 0 {
		t.Fatalf("authentic packets failed to open %d times", af)
	}
	if got := c.core.Stats.PktsRecv; got < 500 {
		t.Fatalf("engine saw only %d packets; the open path short-circuited", got)
	}
}

// TestGSOPackAllocs gates the GSO pack-and-submit path: assembling a full
// burst of MSS-size packets into a segment train — buffer aliasing, the
// equal-size eligibility scan, writeSegments dispatch and the offload
// counters — must allocate nothing, preserving the sender's
// zero-allocation invariant on the offloaded path too.
func TestGSOPackAllocs(t *testing.T) {
	sock := &gsoDiscardSock{}
	c := newSendPathConn(sock, false, nil, nil)
	stride := c.hr + c.cfg.MSS
	scratch := make([]byte, c.burst*stride)
	lens := make([]int, c.burst)
	burst := make([][]byte, 0, c.burst)
	payload := make([]byte, c.cfg.MSS-packet.DataHeaderSize)
	for i := 0; i < c.burst; i++ {
		m, err := packet.EncodeData(scratch[i*stride+c.hr:(i+1)*stride], &packet.Data{Seq: int32(i), Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		lens[i] = m
	}
	avg := testing.AllocsPerRun(500, func() {
		if _, err := c.sendDataBurst(scratch, lens, c.burst, &burst); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("GSO pack path allocates %.2f objects per burst, want 0", avg)
	}
	if sock.trains == 0 || sock.segs == 0 {
		t.Fatal("segment-train path was never taken; the gate proved nothing")
	}
	if got := c.gsoSends.Load(); got == 0 {
		t.Fatal("GSO send counter did not advance")
	}
}

// BenchmarkSenderPacket measures the real send path end to end — encode
// burst, socket write, ACK bookkeeping, control drain — in ns and allocs
// per data packet (the socket is a stub, so this is pure protocol cost).
func BenchmarkSenderPacket(b *testing.B) {
	benchmarkSenderPacket(b, false)
}

// BenchmarkSenderPacketTraced is BenchmarkSenderPacket with the perfmon
// ring attached — the BENCH entry proving telemetry costs nothing on the
// hot path (0 allocs/packet, ns/packet within noise of the untraced run).
func BenchmarkSenderPacketTraced(b *testing.B) {
	benchmarkSenderPacket(b, true)
}

func benchmarkSenderPacket(b *testing.B, traced bool) {
	sock := &discardSock{}
	c := newSendPathConn(sock, traced, nil, nil)
	var batch sendBatch
	scratch := make([]byte, c.burst*(c.hr+c.cfg.MSS))
	lens := make([]int, c.burst)
	burst := make([][]byte, 0, c.burst)
	data := make([]byte, c.cfg.MSS-packet.DataHeaderSize)
	for i := 0; i < 64; i++ {
		sendCycle(c, data, &batch, scratch, lens, &burst)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sendCycle(c, data, &batch, scratch, lens, &burst)
	}
}

// TestDrainOutboxSizing checks the per-kind arena sizing: every control
// emission must encode successfully into the exact buffer the batch grants
// it, including NAKs with long compressed loss lists.
func TestDrainOutboxSizing(t *testing.T) {
	sock := &discardSock{}
	c := newSendPathConn(sock, false, nil, nil)
	now := c.clock.Now()

	// Provoke one of each control kind. Losses with many disjoint ranges
	// stress the NAK sizing; receiving data provokes ACK generation at the
	// next SYN boundary.
	c.mu.Lock()
	c.core.HandleData(now, 0)
	c.core.HandleData(now, 50) // gap -> NAK with a compressed range
	c.core.Advance(now + 11_000)
	var batch sendBatch
	c.drainOutboxLocked(&batch)
	c.mu.Unlock()
	if len(batch.msgs) == 0 {
		t.Fatal("no control emissions drained")
	}
	for _, m := range batch.msgs {
		if !packet.IsControl(m) {
			t.Fatalf("drained message is not a control packet: % x", m)
		}
		if _, err := packet.DecodeControl(m); err != nil {
			t.Fatalf("drained control packet does not decode: %v", err)
		}
	}
}
