package udt

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"syscall"
	"testing"
	"time"

	"udt/internal/mux"
	"udt/internal/packet"
)

// fakeAddr is a non-UDP net.Addr for addrEqual's string-compare arm.
type fakeAddr struct{ network, str string }

func (a fakeAddr) Network() string { return a.network }
func (a fakeAddr) String() string  { return a.str }

func TestAddrEqual(t *testing.T) {
	udp := func(ip string, port int) *net.UDPAddr {
		return &net.UDPAddr{IP: net.ParseIP(ip), Port: port}
	}
	same := udp("10.0.0.1", 9000)
	cases := []struct {
		name string
		a, b net.Addr
		want bool
	}{
		{"identity", same, same, true},
		{"equal udp", udp("10.0.0.1", 9000), udp("10.0.0.1", 9000), true},
		{"mapped v4-in-v6 left", udp("::ffff:127.0.0.1", 7), udp("127.0.0.1", 7), true},
		{"mapped v4-in-v6 right", udp("127.0.0.1", 7), udp("::ffff:127.0.0.1", 7), true},
		{"port differs", udp("127.0.0.1", 7), udp("127.0.0.1", 8), false},
		{"ip differs", udp("127.0.0.1", 7), udp("127.0.0.2", 7), false},
		{"nil left", nil, udp("127.0.0.1", 7), false},
		{"nil right", udp("127.0.0.1", 7), nil, false},
		{"both nil", nil, nil, true},
		{"udp vs same-string fake", udp("127.0.0.1", 7), fakeAddr{"udp", "127.0.0.1:7"}, true},
		{"udp vs other-network fake", udp("127.0.0.1", 7), fakeAddr{"netem", "127.0.0.1:7"}, false},
		{"fake vs fake equal", fakeAddr{"netem", "a"}, fakeAddr{"netem", "a"}, true},
		{"fake vs fake differ", fakeAddr{"netem", "a"}, fakeAddr{"netem", "b"}, false},
	}
	for _, tc := range cases {
		if got := addrEqual(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: addrEqual = %v, want %v", tc.name, got, tc.want)
		}
		if got := addrEqual(tc.b, tc.a); got != tc.want {
			t.Errorf("%s (swapped): addrEqual = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// newLoopbackMux builds a Mux on a fresh 127.0.0.1 UDP socket.
func newLoopbackMux(t *testing.T, cfg *Config) *Mux {
	t.Helper()
	pc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMux(pc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// TestMuxDialListen runs several multiplexed flows between two Muxes over
// one UDP socket pair and checks bidirectional data integrity.
func TestMuxDialListen(t *testing.T) {
	cfg := &Config{Rand: rand.New(rand.NewSource(42))}
	ma := newLoopbackMux(t, cfg)
	mb := newLoopbackMux(t, &Config{Rand: rand.New(rand.NewSource(43))})
	ln, err := mb.Listen()
	if err != nil {
		t.Fatal(err)
	}

	const flows = 4
	const size = 256 << 10

	// Echo server: read size bytes, write them back.
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c *Conn) {
				buf := make([]byte, size)
				if _, err := io.ReadFull(c, buf); err != nil {
					t.Errorf("server read: %v", err)
					return
				}
				if _, err := c.Write(buf); err != nil {
					t.Errorf("server write: %v", err)
				}
			}(c)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < flows; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := ma.Dial(mb.Addr())
			if err != nil {
				t.Errorf("flow %d: dial: %v", i, err)
				return
			}
			t.Cleanup(func() { c.Close() }) // keep flows resident for the table checks below
			data := make([]byte, size)
			rand.New(rand.NewSource(int64(i))).Read(data)
			go c.Write(data) //nolint:errcheck
			got := make([]byte, size)
			if _, err := io.ReadFull(c, got); err != nil {
				t.Errorf("flow %d: read: %v", i, err)
				return
			}
			if !bytes.Equal(got, data) {
				t.Errorf("flow %d: echo mismatch", i)
			}
		}(i)
	}
	wg.Wait()

	if got := ma.Flows(); got != flows {
		t.Errorf("dial-side Flows() = %d, want %d", got, flows)
	}
	if got := mb.Flows(); got != flows {
		t.Errorf("listen-side Flows() = %d, want %d", got, flows)
	}
	unknown, short := ma.Counters()
	if unknown != 0 || short != 0 {
		t.Errorf("dial-side drop counters = (%d, %d), want (0, 0)", unknown, short)
	}
}

// TestMuxManyFlowsStress drives many concurrent checksummed flows through
// one shared socket pair — the demux, handshake dedup, and per-flow
// delivery all race against each other, which is the point: run it with
// -race. Buffers are sized down so a thousand engines fit in memory.
func TestMuxManyFlowsStress(t *testing.T) {
	flows := 1000
	if testing.Short() {
		flows = 100
	}
	const perFlow = 4 << 10

	// A thousand engines share two read loops, so the per-flow control
	// cadence is relaxed (SYN 100 ms) to keep aggregate control traffic —
	// 2N keep-alive/ACK streams — from drowning the sockets, and the
	// peer-death timeout is generous: under -race the scheduler can starve
	// individual flows for seconds without anything being wrong.
	cfg := &Config{
		MSS:              512,
		SYN:              100 * time.Millisecond,
		SndBuf:           16,
		RcvBuf:           32,
		PerfHistory:      -1,
		PeerDeathTimeout: 60 * time.Second,
		HandshakeTimeout: 60 * time.Second,
	}
	ma := newLoopbackMux(t, cfg)
	mb := newLoopbackMux(t, cfg)
	ln, err := mb.Listen()
	if err != nil {
		t.Fatal(err)
	}

	// Echo servers: drain the backlog as fast as it fills.
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			// No Close here: Close is abrupt (no lingering flush), so the
			// shutdown notice could outrun the queued echo. Mux teardown
			// closes accepted connections at test end.
			go func(c *Conn) {
				buf := make([]byte, perFlow)
				if _, err := io.ReadFull(c, buf); err != nil {
					return // client already failed; it reports the error
				}
				c.Write(buf) //nolint:errcheck
			}(c)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, flows)
	for i := 0; i < flows; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := ma.Dial(mb.Addr())
			if err != nil {
				errs <- fmt.Errorf("flow %d: dial: %w", i, err)
				return
			}
			defer c.Close()
			data := make([]byte, perFlow)
			rand.New(rand.NewSource(int64(i))).Read(data)
			want := sha256.Sum256(data)
			go c.Write(data) //nolint:errcheck
			h := sha256.New()
			if _, err := io.CopyN(h, c, perFlow); err != nil {
				errs <- fmt.Errorf("flow %d: read: %w", i, err)
				return
			}
			var got [32]byte
			copy(got[:], h.Sum(nil))
			if got != want {
				errs <- fmt.Errorf("flow %d: checksum mismatch", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMuxAcceptsOldClient checks the compatibility path for paper-era
// clients: a private-socket DialOn client (no handshake extension) against
// a Mux listener. The flow must run bare, routed by the client's address.
func TestMuxAcceptsOldClient(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	acceptErr := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			acceptErr <- fmt.Errorf("accept: %w", err)
			return
		}
		// No Close here: it would race the queued reply with the shutdown
		// notice; ln.Close tears the connection down at test end.
		buf := make([]byte, 5)
		if _, err := io.ReadFull(c, buf); err != nil {
			acceptErr <- fmt.Errorf("server read: %w", err)
			return
		}
		if string(buf) != "hello" {
			acceptErr <- fmt.Errorf("server got %q", buf)
			return
		}
		if _, err := c.Write([]byte("world")); err != nil {
			acceptErr <- fmt.Errorf("server write: %w", err)
			return
		}
		acceptErr <- nil
	}()

	c, err := Dial(ln.Addr().String(), nil) // private socket, bare wire format
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Fatalf("client got %q", buf)
	}
	if err := <-acceptErr; err != nil {
		t.Fatal(err)
	}
	// The accepted flow is address-routed, not in the socket-ID table.
	if got := ln.m.Flows(); got != 0 {
		t.Errorf("listener mux Flows() = %d, want 0 (bare client is addr-routed)", got)
	}
}

// TestMuxDialsOldServer checks Mux.Dial against a peer that ignores the
// handshake extension and replies with the paper-era 28-byte handshake:
// the dialed flow must negotiate down to bare datagrams.
func TestMuxDialsOldServer(t *testing.T) {
	srv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	type dataResult struct {
		payload []byte
		err     error
	}
	dataCh := make(chan dataResult, 1)
	go func() {
		buf := make([]byte, 65536)
		answered := false
		for {
			n, from, err := srv.ReadFrom(buf)
			if err != nil {
				return
			}
			raw := buf[:n]
			if packet.IsHandshake(raw) {
				ctrl, err := packet.DecodeControl(raw)
				if err != nil {
					dataCh <- dataResult{err: err}
					return
				}
				hs, err := packet.DecodeHandshake(ctrl)
				if err != nil {
					dataCh <- dataResult{err: err}
					return
				}
				if !hs.Ext() {
					dataCh <- dataResult{err: fmt.Errorf("request lacks socket-ID extension")}
					return
				}
				// Answer like an old server: base fields only, SockID zero.
				resp := packet.Handshake{
					Version:    packet.Version,
					InitSeq:    hs.InitSeq,
					MSS:        hs.MSS,
					FlowWindow: hs.FlowWindow,
					ReqType:    -1,
					ConnID:     hs.ConnID,
				}
				out := make([]byte, 64)
				wn, err := packet.EncodeHandshake(out, &resp, 0)
				if err != nil {
					dataCh <- dataResult{err: err}
					return
				}
				if wn != packet.CtrlHeaderSize+packet.HandshakeBody {
					dataCh <- dataResult{err: fmt.Errorf("old-style response is %d bytes", wn)}
					return
				}
				srv.WriteTo(out[:wn], from) //nolint:errcheck
				answered = true
				continue
			}
			if !answered || packet.IsControl(raw) {
				continue // keep-alives etc.; we want the first data packet
			}
			// A bare data packet: the first word must NOT be a socket-ID
			// prefix, and the payload must decode in place.
			if mux.IDValid(int32(uint32(raw[0])<<24 | uint32(raw[1])<<16 | uint32(raw[2])<<8 | uint32(raw[3]))) {
				dataCh <- dataResult{err: fmt.Errorf("data packet arrived socket-ID prefixed")}
				return
			}
			d, err := packet.DecodeData(raw)
			if err != nil {
				dataCh <- dataResult{err: err}
				return
			}
			dataCh <- dataResult{payload: append([]byte(nil), d.Payload...)}
			return
		}
	}()

	m := newLoopbackMux(t, &Config{Rand: rand.New(rand.NewSource(7))})
	c, err := m.Dial(srv.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("bare wire")); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-dataCh:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if string(r.payload) != "bare wire" {
			t.Fatalf("old server received %q", r.payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("old server never received the data packet")
	}
}

// TestMuxDropCounters drives unroutable datagrams at a Mux and checks they
// are counted — never silently dropped — and that the totals surface
// through Conn.Stats.
func TestMuxDropCounters(t *testing.T) {
	ma := newLoopbackMux(t, nil)
	mb := newLoopbackMux(t, nil)
	if _, err := mb.Listen(); err != nil {
		t.Fatal(err)
	}
	// A live flow, to read Stats from.
	c, err := ma.Dial(mb.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	raw, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	target := ma.Addr()

	send := func(b []byte) {
		t.Helper()
		if _, err := raw.WriteTo(b, target); err != nil {
			t.Fatal(err)
		}
	}
	// Too short to classify at all.
	send([]byte{0x01, 0x02})
	// Valid socket-ID prefix but no room for a packet behind it.
	short := make([]byte, mux.DestPrefix+2)
	mux.PutDest(short, mux.MakeID(0x12345678))
	send(short)
	// Valid socket-ID prefix + full data packet, but the ID is resident
	// nowhere.
	ghost := make([]byte, mux.DestPrefix+packet.DataHeaderSize+4)
	mux.PutDest(ghost, mux.MakeID(0x23456789))
	send(ghost)
	// Bare control (keep-alive) from an address with no bare flow.
	ka := make([]byte, 64)
	n, err := packet.EncodeSimple(ka, packet.TypeKeepAlive, 0)
	if err != nil {
		t.Fatal(err)
	}
	send(ka[:n])

	deadline := time.Now().Add(5 * time.Second)
	for {
		unknown, short := ma.Counters()
		if unknown == 2 && short == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drop counters = (%d, %d), want (2, 2)", unknown, short)
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := c.Stats()
	if st.MuxUnknownDest != 2 || st.MuxShortDatagram != 2 {
		t.Errorf("Stats mux counters = (%d, %d), want (2, 2)",
			st.MuxUnknownDest, st.MuxShortDatagram)
	}
}

// TestMuxCloseUnblocks checks that Close unblocks a pending Accept and
// fails later dials.
func TestMuxCloseUnblocks(t *testing.T) {
	m := newLoopbackMux(t, nil)
	ln, err := m.Listen()
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		accepted <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-accepted:
		if err != ErrClosed {
			t.Fatalf("Accept after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Accept still blocked after Close")
	}
	if _, err := m.Dial(&net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}); err != ErrClosed {
		t.Fatalf("Dial after Close = %v, want ErrClosed", err)
	}
}

// TestTransientNetErr pins the classification that keeps a shared socket
// alive: queued ICMP errors (a departed peer's port unreachable) are
// datagram loss, not a dead transport; everything else still tears down.
func TestTransientNetErr(t *testing.T) {
	transient := []error{
		syscall.ECONNREFUSED,
		syscall.EHOSTUNREACH,
		syscall.ENETUNREACH,
		syscall.EINTR,
		syscall.ENOBUFS,
		syscall.EPERM,
		fmt.Errorf("write udp: %w", syscall.ECONNREFUSED), // wrapped, as net returns it
	}
	for _, err := range transient {
		if !transientNetErr(err) {
			t.Errorf("transientNetErr(%v) = false, want true", err)
		}
	}
	fatal := []error{net.ErrClosed, syscall.EBADF, syscall.EINVAL, io.EOF, nil}
	for _, err := range fatal {
		if transientNetErr(err) {
			t.Errorf("transientNetErr(%v) = true, want false", err)
		}
	}
}
