package udt

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"udt/internal/mux"
	"udt/internal/packet"
	"udt/internal/secure"
	"udt/internal/seqno"
)

// Mux multiplexes many concurrent UDT flows — outbound dials, a listener,
// or both — over one shared datagram transport: one socket, one read
// loop, N endpoints. Flows between two Mux-backed endpoints carry a
// 4-byte destination-socket-ID prefix ahead of each (unchanged) UDT
// packet, negotiated through the extended handshake; a peer speaking the
// paper-era wire format is detected during the handshake and served bare
// datagrams demultiplexed by its address instead (see internal/mux for
// the dispatch rules).
//
// On Linux the read and write paths use recvmmsg/sendmmsg to move batches
// of datagrams per syscall; elsewhere a portable single-datagram path is
// used.
type Mux struct {
	cfg  Config // validated and filled; the defaults every flow inherits
	sock PacketConn
	core *mux.Core
	pool *connPool // shared connection scheduler: cfg.PoolShards workers

	udpRcvBuf, udpSndBuf int // achieved kernel buffer sizes (0 off-UDP)

	reader batchReader  // platform read path
	sender batchWriter  // platform batched write path; nil → WriteTo loop
	ostats offloadStats // GRO state + counters for the shared socket

	// Secure UDT state, nil without a PSK. keys is derived once per Mux;
	// cookies is the rotating stateless source-address cookie generator.
	// hsOut is the reusable encode buffer for pre-authentication replies
	// (cookie challenges) — touched only on the readLoop goroutine, so a
	// spoofed-source handshake flood is answered without allocating.
	keys    *secure.Keys
	cookies *secure.CookieSource
	hsOut   [hsBufSize]byte

	// authRejects counts handshakes and flows refused by authentication;
	// cookieSent counts stateless challenges issued. Surfaced in every
	// flow's Stats like the demultiplexer drop counters.
	authRejects atomic.Uint64
	cookieSent  atomic.Uint64

	// batchAt is the arrival stamp of the datagram currently being
	// demultiplexed: the kernel receive timestamp when available, else
	// one read time shared by the whole batch (readStamp). Both fields
	// are written and read only on the readLoop goroutine (delivery is
	// synchronous); they exist so the engine's arrival-speed and
	// packet-pair estimators see socket arrival times, not per-packet
	// processing time.
	batchAt   time.Time
	readStamp time.Time

	randMu sync.Mutex // serializes cfg.randInt31 (cfg.Rand is not goroutine safe)

	mu       sync.Mutex
	pending  map[int32]*pendingDial  // our socket ID → dial awaiting response
	rdv      map[string]*pendingDial // peer address → rendezvous dial awaiting crossing
	accepted map[string]*acceptEntry // addr|connID|sockID → answered request
	conns    map[*Conn]struct{}
	listener *Listener
	closed   bool
	done     chan struct{}
	wg       sync.WaitGroup
}

// hsRetryUS is the handshake retransmission interval in µs (the paper's
// client keeps requesting until answered or timed out).
const hsRetryUS = 250_000

// pendingDial tracks one in-flight Mux.Dial handshake. It is a poolTask:
// instead of a per-dial runtime timer and ticker, the retransmission
// schedule is an intrusive timer on a scheduler shard's wheel, so a churn
// of thousands of concurrent dials costs zero allocations and zero extra
// goroutines in the timer layer.
type pendingDial struct {
	connID int32
	raddr  net.Addr
	resp   chan hsResp // buffered 1; first response wins

	m        *Mux
	shard    *poolShard
	buf      []byte     // encoded handshake request, resent as-is
	deadline int64      // µs on the shard clock; after this the dial dies
	dead     chan error // buffered 1; delivers ErrTimeout or a send error
	schedSt  schedState

	// Rendezvous state, zero for ordinary dials (see Mux.Rendezvous). While
	// the dial is pending it is registered in m.rdv under rdvKey; a crossing
	// request that loses the tie-break against req is answered by building
	// the connection directly on flow and delivering it through estab.
	rdvKey   string
	rdvNonce uint64
	isn      int32
	flow     *muxFlow
	req      packet.Handshake
	estab    chan *Conn // buffered 1; a won crossing delivers the conn here
}

func (pd *pendingDial) sched() *schedState { return &pd.schedSt }

// runTask fires on the shard worker at each retransmission deadline:
// resend the request, or declare the dial dead past its deadline. The
// dialing goroutine is parked on pd.resp/pd.dead the whole time.
func (pd *pendingDial) runTask() (int64, bool) {
	now := pd.shard.clock.Now()
	if now >= pd.deadline {
		select {
		case pd.dead <- ErrTimeout:
		default:
		}
		return taskNever, false
	}
	if _, err := pd.m.sock.WriteTo(pd.buf, pd.raddr); err != nil {
		select {
		case pd.dead <- fmt.Errorf("udt: handshake: %w", err):
		default:
		}
		return taskNever, false
	}
	wake := now + hsRetryUS
	if wake > pd.deadline {
		wake = pd.deadline
	}
	return wake, false
}

// hsResp is a handshake response routed to a pending dial.
type hsResp struct {
	hs      packet.Handshake
	fromKey string // response source address in String() form
}

// acceptEntry pins the exact handshake response for one accepted request,
// so duplicate requests (ours lost on the way back) are re-answered with
// identical parameters instead of ignored.
type acceptEntry struct {
	resp packet.Handshake
	conn *Conn
}

// batchReader is the platform read path: one call reads one or more
// datagrams, invoking deliver for each. Buffers and addresses passed to
// deliver are only valid during that call. at is the datagram's kernel
// receive timestamp when the platform provides one (SO_TIMESTAMPNS), or
// the zero time — the caller then stamps the whole batch with one read
// time, which keeps batched delivery from polluting arrival-interval
// measurements with per-packet processing time.
type batchReader interface {
	readBatch(deliver func(raw []byte, from net.Addr, at time.Time)) error
}

// NewMux wraps pc as a shared multi-flow socket and starts its read loop.
// It takes ownership of pc — the transport is closed by Mux.Close — and
// cfg (nil for defaults) supplies the parameters every flow inherits.
func NewMux(pc PacketConn, cfg *Config) (*Mux, error) {
	rcv, snd := 0, 0
	if u, ok := pc.(*net.UDPConn); ok {
		rcv, snd = tuneUDPBuffers(u)
	}
	return newMux(pc, cfg, rcv, snd)
}

func newMux(pc PacketConn, cfg *Config, rcvBuf, sndBuf int) (*Mux, error) {
	var c Config
	if cfg != nil {
		c = *cfg
	}
	if err := c.Validate(); err != nil {
		pc.Close() //nolint:errcheck
		return nil, err
	}
	c.fill()
	m := &Mux{
		cfg:       c,
		sock:      pc,
		udpRcvBuf: rcvBuf,
		udpSndBuf: sndBuf,
		pending:   make(map[int32]*pendingDial),
		rdv:       make(map[string]*pendingDial),
		accepted:  make(map[string]*acceptEntry),
		conns:     make(map[*Conn]struct{}),
		done:      make(chan struct{}),
	}
	if len(c.PSK) > 0 {
		m.keys = secure.DeriveKeys(c.PSK)
		// Cookie seeds come from the handshake randomness source so tests
		// with a fixed Config.Rand are reproducible end to end.
		seed := func() uint64 {
			return uint64(uint32(c.randInt31()))<<32 | uint64(uint32(c.randInt31()))
		}
		m.cookies = secure.NewCookieSource(seed(), seed(), secure.DefaultCookieInterval)
	}
	m.core = mux.NewCore(m.handleHandshake)
	m.pool = newConnPool(c.PoolShards, c.Ledger)
	m.reader = newBatchReader(pc, c.BatchSize, !c.DisableOffload, &m.ostats)
	if m.reader == nil {
		m.reader = &singleReader{pc: pc, buf: make([]byte, 65536)}
	}
	m.sender = newBatchSender(pc, !c.DisableOffload)
	m.wg.Add(1)
	go m.readLoop()
	return m, nil
}

// Offload reports the shared socket's segmentation-offload verdicts, as
// probed once at socket setup: gso — the send path can submit
// UDP_SEGMENT trains; gro — the read loop receives kernel-coalesced
// trains. Both are false when offload is disabled, unsupported, or the
// transport is not a UDP socket.
func (m *Mux) Offload() (gso, gro bool) {
	if s, ok := m.sender.(segWriter); ok && s != nil {
		gso = s.offloadActive()
	}
	return gso, m.ostats.groOn.Load()
}

// Addr returns the shared transport's local address.
func (m *Mux) Addr() net.Addr { return m.sock.LocalAddr() }

// Counters reports the demultiplexer's drop totals: datagrams whose
// destination socket ID (or, for bare traffic, source address) was
// unknown, and datagrams too short to classify. The same totals surface
// per-connection as Stats.MuxUnknownDest / Stats.MuxShortDatagram.
func (m *Mux) Counters() (unknownDest, shortDatagram uint64) {
	return m.core.Counters()
}

// Flows returns the number of socket-ID-routed flows currently resident.
func (m *Mux) Flows() int { return m.core.Flows() }

// randInt31 draws handshake randomness under the rand lock: dials run
// concurrently and Config.Rand is a bare *rand.Rand.
func (m *Mux) randInt31() int32 {
	m.randMu.Lock()
	defer m.randMu.Unlock()
	return m.cfg.randInt31()
}

// transientNetErr reports whether a socket error is a transient
// datagram-level condition rather than a dead transport. Linux queues ICMP
// errors (port unreachable from a peer whose process exited, a routing
// blip, an iptables drop) on the socket and reports them as errno on the
// *next* syscall; on a shared socket that error belongs to at most one
// flow, so the socket must keep serving the others. The datagram involved
// is simply lost, which the protocol already repairs.
func transientNetErr(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EHOSTUNREACH) ||
		errors.Is(err, syscall.ENETUNREACH) ||
		errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.ENOBUFS) ||
		errors.Is(err, syscall.EPERM)
}

// readLoop pumps the shared socket into the demultiplexer until the
// transport closes. One flow's dead peer must not take the loop down:
// queued ICMP errors are skipped, not treated as a closed transport.
func (m *Mux) readLoop() {
	defer m.wg.Done()
	deliver := func(raw []byte, from net.Addr, at time.Time) {
		if at.IsZero() {
			// No kernel stamp: one read time for the whole batch.
			if m.readStamp.IsZero() {
				m.readStamp = time.Now()
			}
			at = m.readStamp
		}
		m.batchAt = at
		m.core.Dispatch(raw, from)
	}
	for {
		m.readStamp = time.Time{}
		if err := m.reader.readBatch(deliver); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				select {
				case <-m.done:
					return
				default:
					continue
				}
			}
			if transientNetErr(err) {
				continue
			}
			return // transport closed
		}
	}
}

// singleReader is the portable read path: one ReadFrom per call, with a
// periodically refreshed deadline so the loop notices Close.
type singleReader struct {
	pc  PacketConn
	buf []byte
	i   int
}

func (r *singleReader) readBatch(deliver func([]byte, net.Addr, time.Time)) error {
	if r.i%16 == 0 {
		r.pc.SetReadDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
	}
	r.i++
	n, from, err := r.pc.ReadFrom(r.buf)
	if err != nil {
		return err
	}
	deliver(r.buf[:n], from, time.Time{})
	return nil
}

// muxFlow is one endpoint's seat on the shared socket: the sockWriter a
// multiplexed Conn sends through, and the mux.Flow its datagrams are
// delivered to. peerID selects the wire format — nonzero stamps the
// peer's socket ID into the headroom of every outgoing datagram; zero
// (an old peer) sends bare packets and receives by address.
type muxFlow struct {
	m         *Mux
	raddr     net.Addr
	id        int32  // our socket ID (0 only for bare accepted flows)
	peerID    int32  // peer's socket ID; 0 = paper-era bare wire format
	addrKey   string // bare-traffic routing key, when registered
	acceptKey string // accepted-map key, for teardown
	conn      atomic.Pointer[Conn]
}

// HandleDatagram delivers one demultiplexed datagram to the connection.
// Packets racing ahead of connection setup (the peer answers before our
// Conn is wired) are dropped; the protocol's timers repair the loss.
func (f *muxFlow) HandleDatagram(raw []byte) {
	if c := f.conn.Load(); c != nil {
		if at := f.m.batchAt; !at.IsZero() {
			c.handleDatagramAt(raw, c.clock.At(at))
			return
		}
		c.handleDatagram(raw)
	}
}

func (f *muxFlow) headroom() int {
	if f.peerID != 0 {
		return mux.DestPrefix
	}
	return 0
}

func (f *muxFlow) writeTo(b []byte, addr net.Addr) (int, error) {
	if f.peerID != 0 {
		mux.PutDest(b, f.peerID)
	}
	n, err := f.m.sock.WriteTo(b, addr)
	if err != nil && transientNetErr(err) {
		// A queued ICMP error (possibly another flow's) consumed this
		// send; count the datagram as lost, not the connection as dead.
		return len(b), nil
	}
	return n, err
}

func (f *muxFlow) writeBatch(bufs [][]byte, addr net.Addr) error {
	if f.peerID != 0 {
		for _, b := range bufs {
			mux.PutDest(b, f.peerID)
		}
	}
	if s := f.m.sender; s != nil {
		return s.writeBatch(bufs, addr)
	}
	for _, b := range bufs {
		if _, err := f.m.sock.WriteTo(b, addr); err != nil {
			if transientNetErr(err) {
				continue // this datagram is lost; the socket is fine
			}
			return err
		}
	}
	return nil
}

// writeSegments offers the shared socket's GSO path to the flow's Conn.
// Socket-ID stamping happens before the kernel segments the train, so
// every recovered datagram demultiplexes exactly like a bare send. A
// false return leaves the batch unconsumed; PutDest is idempotent, so
// the sendmmsg fallback re-stamping the same headroom is harmless.
func (f *muxFlow) writeSegments(bufs [][]byte, segSize int, addr net.Addr) (bool, error) {
	s, ok := f.m.sender.(segWriter)
	if !ok || s == nil {
		return false, nil
	}
	if f.peerID != 0 {
		for _, b := range bufs {
			mux.PutDest(b, f.peerID)
		}
	}
	return s.writeSegments(bufs, segSize, addr)
}

func (f *muxFlow) offloadActive() bool {
	if s, ok := f.m.sender.(segWriter); ok && s != nil {
		return s.offloadActive()
	}
	return false
}

func (f *muxFlow) groCounters() (uint64, uint64) {
	return f.m.ostats.groReads.Load(), f.m.ostats.groSegments.Load()
}

func (f *muxFlow) muxCounters() (uint64, uint64) { return f.m.core.Counters() }

func (f *muxFlow) secCounters() (uint64, uint64) {
	return f.m.authRejects.Load(), f.m.cookieSent.Load()
}

// release tears one flow out of every table; it is each Conn's closer.
func (m *Mux) release(f *muxFlow) {
	if f.id != 0 {
		m.core.Unregister(f.id)
	}
	if f.addrKey != "" {
		m.core.UnregisterAddr(f.addrKey, f)
	}
	m.mu.Lock()
	if c := f.conn.Load(); c != nil {
		delete(m.conns, c)
	}
	if f.acceptKey != "" {
		delete(m.accepted, f.acceptKey)
	}
	delete(m.pending, f.id)
	m.mu.Unlock()
}

// cloneAddr copies an address that may alias reusable reader state (the
// recvmmsg path reuses its address slots across batches). Non-UDP
// transports (netem) hand out one stable *Addr per peer, safe to retain.
func cloneAddr(a net.Addr) net.Addr {
	if u, ok := a.(*net.UDPAddr); ok {
		c := *u
		c.IP = append(net.IP(nil), u.IP...)
		return &c
	}
	return a
}

// Dial opens a UDT connection to raddr over the shared socket. The
// handshake advertises our socket ID; a Mux-backed peer answers with its
// own and both directions switch to socket-ID-prefixed datagrams, so any
// number of flows can share one address pair. An old peer answers with
// the paper-era handshake and the flow falls back to bare datagrams
// routed by the peer's address — at most one such flow per peer address.
func (m *Mux) Dial(raddr net.Addr) (*Conn, error) {
	if raddr == nil {
		return nil, errors.New("udt: mux dial: nil remote address")
	}
	cfg := m.cfg
	// Leave room in each datagram for the destination prefix; the reduced
	// MSS is advertised so the peer's packets also fit under the path MTU.
	cfg.MSS -= mux.DestPrefix
	if cfg.MSS < 96 {
		cfg.MSS = 96
	}

	flow := &muxFlow{m: m, raddr: cloneAddr(raddr)}
	id := m.core.AllocID(m.randInt31, flow)
	flow.id = id
	isn := m.randInt31() & seqno.Max
	connID := m.randInt31()
	shard := m.pool.shard()
	pd := &pendingDial{
		connID: connID, raddr: flow.raddr, resp: make(chan hsResp, 1),
		m: m, shard: shard,
		deadline: shard.clock.Now() + cfg.HandshakeTimeout.Microseconds(),
		dead:     make(chan error, 1),
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.core.Unregister(id)
		return nil, ErrClosed
	}
	m.pending[id] = pd
	m.mu.Unlock()
	fail := func(err error) (*Conn, error) {
		m.mu.Lock()
		delete(m.pending, id)
		m.mu.Unlock()
		m.core.Unregister(id)
		return nil, err
	}

	req := packet.Handshake{
		Version:    packet.Version,
		InitSeq:    isn,
		MSS:        int32(cfg.MSS),
		FlowWindow: int32(cfg.MaxFlowWindow),
		ReqType:    packet.HSRequest,
		ConnID:     connID,
		SockID:     id,
	}
	if m.keys != nil {
		req.SecFlags = cfg.secFlags()
		fillNonce(&req.Nonce, m.randInt31)
		if err := signHandshakeHS(m.keys, &req, nil); err != nil {
			return fail(err)
		}
	}
	buf := make([]byte, hsBufSize)
	n, err := packet.EncodeHandshake(buf, &req, 0)
	if err != nil {
		return fail(err)
	}

	// Send the request, then park this goroutine: the scheduler shard's
	// timing wheel owns the 250 ms retransmission cadence and the overall
	// deadline (no per-dial runtime timers). The read loop routes the
	// response back to us (responses arrive bare; internal/mux hands them
	// to handleHandshake, which matches them by our socket ID or, for old
	// peers, by connection ID and address).
	if _, err := m.sock.WriteTo(buf[:n], raddr); err != nil {
		return fail(fmt.Errorf("udt: handshake: %w", err))
	}
	pd.buf = buf[:n]
	shard.attach(pd)
	shard.sleep(pd, shard.clock.Now()+hsRetryUS)
	// Wait for an acceptable response. On a secure dial this is a loop: a
	// cookie challenge restarts the request with the cookie echoed, and a
	// response that fails authentication is ignored — an off-path forgery
	// must not be able to kill the dial — while the wheel keeps
	// retransmitting until the real answer or the deadline.
	var r hsResp
	for {
		select {
		case r = <-pd.resp:
		case err := <-pd.dead:
			shard.detach(pd)
			return fail(err)
		case <-m.done:
			shard.detach(pd)
			return fail(ErrClosed)
		}
		if m.keys == nil {
			break
		}
		hs := r.hs
		if hs.ReqType == packet.HSCookie {
			req.Cookie = hs.Cookie
			if err := signHandshakeHS(m.keys, &req, nil); err != nil {
				shard.detach(pd)
				return fail(err)
			}
			n, err := packet.EncodeHandshake(buf, &req, 0)
			if err != nil {
				shard.detach(pd)
				return fail(err)
			}
			// Swap the retransmission buffer out from under the wheel:
			// detach guarantees no resend is in flight, then re-arm.
			shard.detach(pd)
			pd.buf = buf[:n]
			if _, err := m.sock.WriteTo(pd.buf, raddr); err != nil {
				return fail(fmt.Errorf("udt: handshake: %w", err))
			}
			shard.attach(pd)
			shard.sleep(pd, shard.clock.Now()+hsRetryUS)
			continue
		}
		if !hs.Sec() {
			if m.cfg.AllowUnauth {
				break // peer is paper-era; negotiate down to clear
			}
			shard.detach(pd)
			return fail(errAuthRequired)
		}
		if !verifyHandshakeHS(m.keys, &hs, req.Nonce[:]) {
			m.authRejects.Add(1)
			continue // forged or corrupt; keep waiting for the real one
		}
		break
	}
	shard.detach(pd)
	m.mu.Lock()
	delete(m.pending, id)
	m.mu.Unlock()

	hs := r.hs
	// Negotiate downwards.
	if int(hs.MSS) < cfg.MSS && hs.MSS >= 96 {
		cfg.MSS = int(hs.MSS)
	}
	if int(hs.FlowWindow) < cfg.MaxFlowWindow && hs.FlowWindow > 0 {
		cfg.MaxFlowWindow = int(hs.FlowWindow)
	}
	flow.peerID = hs.SockID
	if flow.peerID == 0 {
		// Old peer: its datagrams arrive bare; route them by address.
		flow.addrKey = r.fromKey
		m.core.RegisterAddr(flow.addrKey, flow)
	}
	cfg.sockID = id
	var sec *secure.Session
	if m.keys != nil && hs.Sec() {
		sec = secure.NewSession(m.keys, req.Nonce[:], hs.Nonce[:], true, isn, hs.InitSeq,
			grantAEAD(req.SecFlags, hs.SecFlags))
	}
	conn := newConn(cfg, flow, func() { m.release(flow) }, m.sock.LocalAddr(), flow.raddr, isn, hs.InitSeq, m.pool.shard(), sec)
	conn.mu.Lock()
	conn.udpRcvBuf, conn.udpSndBuf = m.udpRcvBuf, m.udpSndBuf
	conn.mu.Unlock()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		conn.Close() //nolint:errcheck
		return nil, ErrClosed
	}
	m.conns[conn] = struct{}{}
	m.mu.Unlock()
	flow.conn.Store(conn)
	return conn, nil
}

// Listen starts accepting incoming connections on the shared socket. A
// Mux carries at most one listener; dialed flows are unaffected by it.
func (m *Mux) Listen() (*Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if m.listener != nil {
		return nil, errors.New("udt: mux already has a listener")
	}
	l := &Listener{
		m:       m,
		backlog: make(chan *Conn, 256),
		done:    make(chan struct{}),
	}
	m.listener = l
	return l, nil
}

// attachListener points this Mux's accept path at an existing listener:
// handshakes arriving on this socket then feed l's backlog. It is how
// the secondary members of an SO_REUSEPORT group join the one Listener.
func (m *Mux) attachListener(l *Listener) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if m.listener != nil {
		return errors.New("udt: mux already has a listener")
	}
	m.listener = l
	return nil
}

// Close tears the whole shared socket down: every flow, the listener, and
// the transport.
func (m *Mux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	conns := make([]*Conn, 0, len(m.conns))
	for c := range m.conns {
		conns = append(conns, c)
	}
	l := m.listener
	m.mu.Unlock()
	close(m.done)
	if l != nil {
		l.closeAccepting()
	}
	for _, c := range conns {
		c.Close() //nolint:errcheck
	}
	// Every Conn has detached from its shard (Close blocks on that), so the
	// scheduler can stop; dials racing Close detach safely against stopped
	// shards — see poolShard.detach.
	m.pool.close()
	err := m.sock.Close()
	m.wg.Wait()
	return err
}

// handleHandshake receives every bare handshake control packet on the
// shared socket, on the read-loop goroutine.
func (m *Mux) handleHandshake(raw []byte, from net.Addr) {
	ctrl, err := packet.DecodeControl(raw)
	if err != nil {
		return
	}
	hs, err := packet.DecodeHandshake(ctrl)
	if err != nil || hs.Version != packet.Version {
		return
	}
	switch hs.ReqType {
	case packet.HSResponse:
		m.completeDial(hs, from)
	case packet.HSCookie:
		// A listener's stateless challenge to one of our dials; the dialing
		// goroutine echoes the cookie in a fresh request.
		m.completeDial(hs, from)
	case packet.HSRequest:
		if hs.Rdv() {
			m.rendezvousCross(hs, from, raw)
			return
		}
		m.answerRequest(hs, from, raw)
	}
}

// gateRequest runs the pre-connection Secure UDT checks on an incoming
// request, cheapest first, before any state is allocated or even a map key
// formatted: the source-address cookie (one SipHash; missing or stale →
// a stateless challenge), then the handshake authenticator (HMAC verified
// against the raw bytes). It reports whether the request may proceed, and
// whether the sealed data channel was granted. Runs on the readLoop
// goroutine; the reply buffer is reused, so a spoofed-source flood
// allocates nothing here.
func (m *Mux) gateRequest(hs *packet.Handshake, from net.Addr, raw []byte) (ok, aead bool) {
	if m.keys == nil {
		return true, false
	}
	if !hs.Sec() {
		if !m.cfg.AllowUnauth {
			m.authRejects.Add(1)
			return false, false
		}
		return true, false // negotiated down to the clear protocol
	}
	var ab [64]byte
	addr := cookieAddr(ab[:0], from)
	now := time.Now().UnixMicro()
	if !m.cookies.Valid(now, addr, hs.Cookie) {
		m.cookieSent.Add(1)
		ch := packet.Handshake{
			Version:    packet.Version,
			ReqType:    packet.HSCookie,
			ConnID:     hs.ConnID,
			PeerSockID: hs.SockID,
			SecFlags:   secure.FlagAuth,
			Cookie:     m.cookies.Cookie(now, addr),
		}
		if n, err := packet.EncodeHandshake(m.hsOut[:], &ch, 0); err == nil {
			m.sock.WriteTo(m.hsOut[:n], from) //nolint:errcheck // client re-requests on loss
		}
		return false, false
	}
	if !verifyHandshakeRaw(m.keys, raw, nil) {
		m.authRejects.Add(1)
		return false, false
	}
	return true, grantAEAD(m.cfg.secFlags(), hs.SecFlags)
}

// completeDial routes a handshake response to the dial waiting for it. A
// Mux-backed peer echoes our socket ID in PeerSockID — an exact table
// match; an old peer's 28-byte response is matched by connection ID and
// source address.
func (m *Mux) completeDial(hs packet.Handshake, from net.Addr) {
	m.mu.Lock()
	var pd *pendingDial
	if hs.PeerSockID != 0 {
		if p := m.pending[hs.PeerSockID]; p != nil && p.connID == hs.ConnID {
			pd = p
		}
	} else {
		for _, p := range m.pending {
			if p.connID == hs.ConnID && addrEqual(from, p.raddr) {
				pd = p
				break
			}
		}
	}
	m.mu.Unlock()
	if pd == nil {
		return
	}
	select {
	case pd.resp <- hsResp{hs: hs, fromKey: from.String()}:
	default: // duplicate response; the first one won
	}
}

// answerRequest accepts (or re-answers) a connection request. Requests
// are deduplicated by (address, connection ID, peer socket ID), so one
// client address can carry many multiplexed flows, and a request whose
// response was lost is answered again with identical parameters — the
// retry is indistinguishable from the original on the client side.
func (m *Mux) answerRequest(hs packet.Handshake, from net.Addr, raw []byte) {
	ok, aead := m.gateRequest(&hs, from, raw)
	if !ok {
		return
	}
	secPeer := m.keys != nil && hs.Sec()
	key := from.String() + "|" + strconv.FormatInt(int64(hs.ConnID), 10) +
		"|" + strconv.FormatInt(int64(hs.SockID), 10)
	m.mu.Lock()
	if m.closed || m.listener == nil {
		m.mu.Unlock()
		return
	}
	backlog := m.listener.backlog
	var fresh *Conn
	e := m.accepted[key]
	if e == nil && len(backlog) == cap(backlog) {
		// Backlog full: drop the request unanswered, like a full TCP listen
		// queue. Answering first and closing on overflow would tear the
		// flow down microseconds after the client completed its dial — its
		// retry converges, a lost shutdown notice does not.
		m.mu.Unlock()
		return
	}
	if e == nil {
		cfg := m.cfg
		if hs.Ext() {
			// Both sides will prefix; shrink the packet to keep prefix +
			// packet within the same datagram budget.
			cfg.MSS -= mux.DestPrefix
			if cfg.MSS < 96 {
				cfg.MSS = 96
			}
		}
		if int(hs.MSS) < cfg.MSS && hs.MSS >= 96 {
			cfg.MSS = int(hs.MSS)
		}
		if int(hs.FlowWindow) < cfg.MaxFlowWindow && hs.FlowWindow > 0 {
			cfg.MaxFlowWindow = int(hs.FlowWindow)
		}
		isn := m.randInt31() & seqno.Max
		flow := &muxFlow{m: m, raddr: cloneAddr(from), peerID: hs.SockID, acceptKey: key}
		if hs.Ext() {
			flow.id = m.core.AllocID(m.randInt31, flow)
		} else {
			// Old client: everything it sends is bare; route by address.
			flow.addrKey = from.String()
			m.core.RegisterAddr(flow.addrKey, flow)
		}
		cfg.sockID = flow.id
		resp := packet.Handshake{
			Version:    packet.Version,
			InitSeq:    isn,
			MSS:        int32(cfg.MSS),
			FlowWindow: int32(cfg.MaxFlowWindow),
			ReqType:    packet.HSResponse,
			ConnID:     hs.ConnID,
			SockID:     flow.id, // zero for old clients → 28-byte reply
			PeerSockID: hs.SockID,
		}
		var sec *secure.Session
		if secPeer {
			resp.SecFlags = secure.FlagAuth
			if aead {
				resp.SecFlags |= secure.FlagAEAD
			}
			fillNonce(&resp.Nonce, m.randInt31)
			// The response authenticator binds the requester's nonce, so a
			// response captured from another connection fails its check. It
			// is computed once here; re-answers to duplicate requests reuse
			// it, staying bit-identical to the original.
			if err := signHandshakeHS(m.keys, &resp, hs.Nonce[:]); err != nil {
				m.mu.Unlock()
				m.release(flow) // both demux registrations; no conn yet
				return
			}
			sec = secure.NewSession(m.keys, hs.Nonce[:], resp.Nonce[:], false, isn, hs.InitSeq, aead)
		}
		conn := newConn(cfg, flow, func() { m.release(flow) }, m.sock.LocalAddr(), flow.raddr, isn, hs.InitSeq, m.pool.shard(), sec)
		conn.mu.Lock()
		conn.udpRcvBuf, conn.udpSndBuf = m.udpRcvBuf, m.udpSndBuf
		conn.mu.Unlock()
		e = &acceptEntry{resp: resp, conn: conn}
		m.accepted[key] = e
		m.conns[conn] = struct{}{}
		flow.conn.Store(conn)
		fresh = conn
	}
	resp := e.resp
	m.mu.Unlock()

	out := make([]byte, hsBufSize)
	if n, err := packet.EncodeHandshake(out, &resp, 0); err == nil {
		m.sock.WriteTo(out[:n], from) //nolint:errcheck // client retries on loss
	}
	if fresh != nil {
		select {
		case backlog <- fresh:
		default:
			// Backlog overflow: drop the connection; the client's retries
			// will find the slot again after release().
			fresh.Close() //nolint:errcheck
		}
	}
}
