//go:build linux && (amd64 || arm64)

package udt

import (
	"encoding/binary"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// Batched datagram I/O for UDP sockets: recvmmsg moves up to batch
// datagrams from the kernel per syscall on the read path (coalesced into
// 64 KB trains when the kernel supports UDP_GRO), and sendmmsg submits a
// whole control batch or data burst in one call on the write path — or,
// when the socket supports UDP_SEGMENT, one sendmsg submits the entire
// data burst as a single kernel-segmented train. Everything runs
// non-blocking inside the runtime poller (RawConn.Read/Write), so Go
// deadlines and Close still work.

// Linux socket-option numbers for UDP segmentation offload. The frozen
// syscall package predates both (kernels 4.18 / 5.0), so they are spelled
// out here.
const (
	solUDP     = 17
	udpSegment = 103 // setsockopt/cmsg: outgoing segment size (GSO)
	udpGRO     = 104 // setsockopt: deliver coalesced trains (GRO)
)

// cmsgAlign rounds a control-message length up to the kernel's cmsg
// alignment (the platform word size on Linux).
func cmsgAlign(n int) int {
	const a = int(unsafe.Sizeof(uintptr(0)))
	return (n + a - 1) &^ (a - 1)
}

// segCmsgSpace is the control buffer size of one UDP_SEGMENT cmsg
// (header + uint16 segment size, aligned).
var segCmsgSpace = cmsgAlign(syscall.SizeofCmsghdr + 2)

// probeGSO reports whether the socket accepts the UDP_SEGMENT option — a
// side-effect-free getsockopt, so the verdict can be cached without
// changing socket state. Kernels before 4.18 answer ENOPROTOOPT.
func probeGSO(rc syscall.RawConn) bool {
	if forceOffloadOff.Load() {
		return false
	}
	ok := false
	rc.Control(func(fd uintptr) { //nolint:errcheck
		_, err := syscall.GetsockoptInt(int(fd), solUDP, udpSegment)
		ok = err == nil
	})
	return ok
}

// enableGRO turns on receive offload: the kernel then delivers
// back-to-back same-size datagrams from one flow as a single coalesced
// buffer plus a UDP_GRO control message carrying the segment size.
// Kernels before 5.0 answer ENOPROTOOPT and the socket stays in
// one-datagram-per-message mode.
func enableGRO(rc syscall.RawConn) bool {
	if forceOffloadOff.Load() {
		return false
	}
	ok := false
	rc.Control(func(fd uintptr) { //nolint:errcheck
		ok = syscall.SetsockoptInt(int(fd), solUDP, udpGRO, 1) == nil
	})
	return ok
}

// mmsghdr mirrors the kernel's struct mmsghdr. The trailing padding is
// computed from Msghdr's layout so the array stride is correct on every
// linux architecture.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [(msghdrAlign - (unsafe.Sizeof(syscall.Msghdr{})+4)%msghdrAlign) % msghdrAlign]byte
}

const msghdrAlign = unsafe.Alignof(syscall.Msghdr{})

// mmsgReader is the recvmmsg read path. All per-message state — buffers,
// iovecs, raw sockaddrs, control buffers, and the net.UDPAddr values
// handed to deliver — is preallocated and reused across batches, so
// steady-state reads allocate nothing. Consumers that retain an address
// must clone it (cloneAddr); the slot is overwritten by the next batch.
//
// With GRO enabled one slot may hold a kernel-coalesced train of
// same-size datagrams; readBatch splits it back into the original packets
// before delivery, so the demultiplexer and the engine see ordinary
// datagrams, bit-identical to the unoffloaded path.
type mmsgReader struct {
	u   *net.UDPConn
	rc  syscall.RawConn
	i   int
	gro bool

	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrAny
	ctrls [][]byte
	bufs  [][]byte
	addrs []net.UDPAddr

	stats *offloadStats
}

// newBatchReader returns the recvmmsg reader for a real UDP socket, or
// nil (→ portable single-datagram path) for other transports. batch is
// the recvmmsg slot count and offload gates the GRO probe; st (may be
// nil) receives the offload counters.
func newBatchReader(pc PacketConn, batch int, offload bool, st *offloadStats) batchReader {
	u, ok := pc.(*net.UDPConn)
	if !ok {
		return nil
	}
	rc, err := u.SyscallConn()
	if err != nil {
		return nil
	}
	if batch < 1 {
		batch = 1
	}
	r := &mmsgReader{
		u: u, rc: rc,
		hdrs:  make([]mmsghdr, batch),
		iovs:  make([]syscall.Iovec, batch),
		names: make([]syscall.RawSockaddrAny, batch),
		ctrls: make([][]byte, batch),
		bufs:  make([][]byte, batch),
		addrs: make([]net.UDPAddr, batch),
		stats: st,
	}
	if offload {
		r.gro = enableGRO(rc)
	}
	if st != nil && r.gro {
		st.groOn.Store(true)
	}
	for i := range r.bufs {
		r.bufs[i] = make([]byte, 65536)
		r.ctrls[i] = make([]byte, 128)
		r.iovs[i].Base = &r.bufs[i][0]
		r.hdrs[i].hdr.Iov = &r.iovs[i]
		r.hdrs[i].hdr.Iovlen = 1
	}
	return r
}

func (r *mmsgReader) readBatch(deliver func([]byte, net.Addr, time.Time)) error {
	// Refresh the deadline only periodically, keeping the syscall off the
	// per-batch hot path (§4.1) while still letting the loop notice Close.
	if r.i%16 == 0 {
		r.u.SetReadDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
	}
	r.i++
	for i := range r.hdrs {
		r.hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&r.names[i]))
		r.hdrs[i].hdr.Namelen = syscall.SizeofSockaddrAny
		r.iovs[i].SetLen(len(r.bufs[i]))
		if r.gro {
			r.hdrs[i].hdr.Control = &r.ctrls[i][0]
			r.hdrs[i].hdr.SetControllen(len(r.ctrls[i]))
		}
		r.hdrs[i].n = 0
	}
	var got int
	var serr error
	err := r.rc.Read(func(fd uintptr) bool {
		n, _, e := syscall.Syscall6(sysRECVMMSG, fd,
			uintptr(unsafe.Pointer(&r.hdrs[0])), uintptr(len(r.hdrs)),
			syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN {
			return false // wait for readability in the poller
		}
		if e != 0 {
			serr = e
		} else {
			got = int(n)
		}
		return true
	})
	if err != nil {
		return err
	}
	if serr != nil {
		return serr
	}
	for i := 0; i < got; i++ {
		from := r.sockaddr(i)
		if from == nil {
			continue // unknown address family; nothing to route by
		}
		raw := r.bufs[i][:r.hdrs[i].n]
		seg := r.groSegSize(i)
		if seg > 0 && seg < len(raw) {
			if r.stats != nil {
				r.stats.groReads.Add(1)
				r.stats.groSegments.Add(uint64((len(raw) + seg - 1) / seg))
			}
			splitSegments(raw, seg, from, time.Time{}, deliver)
			continue
		}
		deliver(raw, from, time.Time{})
	}
	return nil
}

// groSegSize extracts the UDP_GRO segment size from message i's control
// data, or 0 when the kernel did not coalesce (or GRO is off). Malformed
// control buffers — truncated headers, lengths past the buffer — yield 0,
// so the datagram is delivered whole rather than mis-split.
func (r *mmsgReader) groSegSize(i int) int {
	if !r.gro {
		return 0
	}
	b := r.ctrls[i]
	cl := int(r.hdrs[i].hdr.Controllen)
	if cl > len(b) {
		cl = len(b)
	}
	b = b[:cl]
	for len(b) >= syscall.SizeofCmsghdr {
		h := (*syscall.Cmsghdr)(unsafe.Pointer(&b[0]))
		l := int(h.Len)
		if l < syscall.SizeofCmsghdr || l > len(b) {
			return 0
		}
		if h.Level == solUDP && h.Type == udpGRO && l >= syscall.SizeofCmsghdr+4 {
			// The kernel reports the segment size as a native int.
			return int(*(*int32)(unsafe.Pointer(&b[syscall.SizeofCmsghdr])))
		}
		step := cmsgAlign(l)
		if step <= 0 || step >= len(b) {
			return 0
		}
		b = b[step:]
	}
	return 0
}

// sockaddr decodes message i's source address into its reusable slot.
// Ports are read byte-wise (network order) so the decode is endianness
// independent. IPv6 zone names are not recovered (link-local peers over a
// Mux are out of scope — mapping Scope_id to a name allocates).
func (r *mmsgReader) sockaddr(i int) net.Addr {
	a := &r.addrs[i]
	switch r.names[i].Addr.Family {
	case syscall.AF_INET:
		p := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&r.names[i]))
		a.IP = append(a.IP[:0], p.Addr[:]...)
		a.Port = int(binary.BigEndian.Uint16((*[2]byte)(unsafe.Pointer(&p.Port))[:]))
	case syscall.AF_INET6:
		p := (*syscall.RawSockaddrInet6)(unsafe.Pointer(&r.names[i]))
		a.IP = append(a.IP[:0], p.Addr[:]...)
		a.Port = int(binary.BigEndian.Uint16((*[2]byte)(unsafe.Pointer(&p.Port))[:]))
	default:
		return nil
	}
	a.Zone = ""
	return a
}

// mmsgWriter is the sendmmsg/GSO write path. One writer serves every flow
// on the Mux, so the reusable header state is mutex guarded; headers and
// iovecs grow to the largest batch seen and are then reused.
type mmsgWriter struct {
	u   *net.UDPConn
	rc  syscall.RawConn
	gso atomic.Bool // cached UDP_SEGMENT probe verdict; Stats reads it lock-free

	mu   sync.Mutex
	hdrs []mmsghdr
	iovs []syscall.Iovec
	sa4  syscall.RawSockaddrInet4
	sa6  syscall.RawSockaddrInet6
	cbuf [32]byte // UDP_SEGMENT control message (segCmsgSpace bytes used)
}

// newBatchSender returns the sendmmsg writer for a real UDP socket, or
// nil (→ WriteTo loop) for other transports. offload gates the
// UDP_SEGMENT capability probe; the verdict is cached for the socket's
// lifetime.
func newBatchSender(pc PacketConn, offload bool) batchWriter {
	u, ok := pc.(*net.UDPConn)
	if !ok {
		return nil
	}
	rc, err := u.SyscallConn()
	if err != nil {
		return nil
	}
	w := &mmsgWriter{u: u, rc: rc}
	if offload {
		w.gso.Store(probeGSO(rc))
	}
	return w
}

// sockname encodes addr into the writer's reusable raw sockaddr slot.
// Callers hold w.mu.
func (w *mmsgWriter) sockname(ua *net.UDPAddr) (name *byte, namelen uint32) {
	if ip4 := ua.IP.To4(); ip4 != nil {
		w.sa4.Family = syscall.AF_INET
		copy(w.sa4.Addr[:], ip4)
		binary.BigEndian.PutUint16((*[2]byte)(unsafe.Pointer(&w.sa4.Port))[:], uint16(ua.Port))
		return (*byte)(unsafe.Pointer(&w.sa4)), syscall.SizeofSockaddrInet4
	}
	w.sa6.Family = syscall.AF_INET6
	copy(w.sa6.Addr[:], ua.IP.To16())
	binary.BigEndian.PutUint16((*[2]byte)(unsafe.Pointer(&w.sa6.Port))[:], uint16(ua.Port))
	return (*byte)(unsafe.Pointer(&w.sa6)), syscall.SizeofSockaddrInet6
}

func (w *mmsgWriter) writeBatch(bufs [][]byte, addr net.Addr) error {
	ua, ok := addr.(*net.UDPAddr)
	if !ok {
		for _, b := range bufs {
			if _, err := w.u.WriteTo(b, addr); err != nil {
				return err
			}
		}
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()

	name, namelen := w.sockname(ua)

	if cap(w.hdrs) < len(bufs) {
		w.hdrs = make([]mmsghdr, len(bufs))
		w.iovs = make([]syscall.Iovec, len(bufs))
	}
	hdrs := w.hdrs[:len(bufs)]
	iovs := w.iovs[:len(bufs)]
	for i, b := range bufs {
		iovs[i].Base = &b[0]
		iovs[i].SetLen(len(b))
		hdrs[i].hdr.Name = name
		hdrs[i].hdr.Namelen = namelen
		hdrs[i].hdr.Iov = &iovs[i]
		hdrs[i].hdr.Iovlen = 1
		hdrs[i].hdr.Control = nil
		hdrs[i].hdr.SetControllen(0)
		hdrs[i].n = 0
	}

	// sendmmsg may send a prefix of the batch; resubmit the rest until
	// everything is out or the socket reports a real error.
	transients := 0
	for off := 0; off < len(hdrs); {
		sent := 0
		var serr error
		err := w.rc.Write(func(fd uintptr) bool {
			n, _, e := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&hdrs[off])), uintptr(len(hdrs)-off),
				syscall.MSG_DONTWAIT, 0, 0)
			if e == syscall.EAGAIN {
				return false // wait for writability in the poller
			}
			if e != 0 {
				serr = e
			} else {
				sent = int(n)
			}
			return true
		})
		if err != nil {
			return err
		}
		if serr != nil {
			if transientNetErr(serr) {
				// sendmmsg reported a queued ICMP error (a departed
				// peer's port unreachable — possibly another flow's)
				// instead of sending; the report consumed it. Retry, and
				// if the condition persists treat the rest of the batch
				// as network loss rather than killing the connection.
				if transients++; transients <= 4 {
					continue
				}
				return nil
			}
			return serr
		}
		if sent <= 0 {
			return syscall.EIO
		}
		off += sent
	}
	return nil
}

// offloadActive reports the cached UDP_SEGMENT probe verdict.
func (w *mmsgWriter) offloadActive() bool { return w.gso.Load() }

// writeSegments submits bufs — equal-size datagrams except possibly a
// shorter last — as one sendmsg whose UDP_SEGMENT control message makes
// the kernel segment it at segSize: up to 44 packets for one syscall and
// one traversal of the kernel's output path. The datagrams are gathered
// by iovec, so no packing copy is made. ok=false (batch unconsumed) when
// the socket cannot offload; the caller falls back to writeBatch.
func (w *mmsgWriter) writeSegments(bufs [][]byte, segSize int, addr net.Addr) (bool, error) {
	if !w.gso.Load() || len(bufs) == 0 {
		return false, nil
	}
	ua, ok := addr.(*net.UDPAddr)
	if !ok {
		return false, nil
	}
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	if len(bufs) > maxGSOSegments || total > maxUDPPayload {
		return false, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()

	name, namelen := w.sockname(ua)
	if cap(w.iovs) < len(bufs) {
		w.hdrs = make([]mmsghdr, len(bufs))
		w.iovs = make([]syscall.Iovec, len(bufs))
	}
	iovs := w.iovs[:len(bufs)]
	for i, b := range bufs {
		iovs[i].Base = &b[0]
		iovs[i].SetLen(len(b))
	}
	cm := (*syscall.Cmsghdr)(unsafe.Pointer(&w.cbuf[0]))
	cm.Level = solUDP
	cm.Type = udpSegment
	cm.SetLen(syscall.SizeofCmsghdr + 2)
	*(*uint16)(unsafe.Pointer(&w.cbuf[syscall.SizeofCmsghdr])) = uint16(segSize)

	var msg syscall.Msghdr
	msg.Name = name
	msg.Namelen = namelen
	msg.Iov = &iovs[0]
	msg.Iovlen = uint64(len(iovs))
	msg.Control = &w.cbuf[0]
	msg.SetControllen(segCmsgSpace)

	var serr error
	sent := 0
	err := w.rc.Write(func(fd uintptr) bool {
		n, _, e := syscall.Syscall6(sysSENDMSG, fd,
			uintptr(unsafe.Pointer(&msg)), syscall.MSG_DONTWAIT, 0, 0, 0)
		if e == syscall.EAGAIN {
			return false // wait for writability in the poller
		}
		if e != 0 {
			serr = e
		} else {
			sent = int(n)
		}
		return true
	})
	if err != nil {
		return true, err
	}
	if serr != nil {
		if transientNetErr(serr) {
			// A queued ICMP error consumed the send; the train is lost on
			// the wire, which the protocol repairs. The socket is fine.
			return true, nil
		}
		// EINVAL/EOPNOTSUPP here means the device rejected offload after a
		// successful probe (e.g. an exotic tunnel): disable it for this
		// socket and let the caller resubmit through sendmmsg.
		if serr == syscall.EINVAL || serr == syscall.EOPNOTSUPP || serr == syscall.ENOTSUP {
			w.gso.Store(false)
			return false, nil
		}
		return true, serr
	}
	if sent < total {
		return true, syscall.EIO
	}
	return true, nil
}
