//go:build linux && (amd64 || arm64)

package udt

import (
	"encoding/binary"
	"net"
	"sync"
	"syscall"
	"time"
	"unsafe"
)

// Batched datagram I/O for the shared (Mux) socket: recvmmsg moves up to
// mmsgBatch datagrams from the kernel per syscall on the read path, and
// sendmmsg submits a whole control batch or data burst in one call on the
// write path. Both run non-blocking inside the runtime poller
// (RawConn.Read/Write), so Go deadlines and Close still work.

// mmsgBatch is how many datagrams one recvmmsg/sendmmsg call moves.
const mmsgBatch = 16

// mmsghdr mirrors the kernel's struct mmsghdr. The trailing padding is
// computed from Msghdr's layout so the array stride is correct on every
// linux architecture.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [(msghdrAlign - (unsafe.Sizeof(syscall.Msghdr{})+4)%msghdrAlign) % msghdrAlign]byte
}

const msghdrAlign = unsafe.Alignof(syscall.Msghdr{})

// mmsgReader is the recvmmsg read path. All per-message state — buffers,
// iovecs, raw sockaddrs, and the net.UDPAddr values handed to deliver —
// is preallocated and reused across batches, so steady-state reads
// allocate nothing. Consumers that retain an address must clone it
// (cloneAddr); the slot is overwritten by the next batch.
type mmsgReader struct {
	u  *net.UDPConn
	rc syscall.RawConn
	i  int

	hdrs  [mmsgBatch]mmsghdr
	iovs  [mmsgBatch]syscall.Iovec
	names [mmsgBatch]syscall.RawSockaddrAny
	bufs  [mmsgBatch][]byte
	addrs [mmsgBatch]net.UDPAddr
}

// newBatchReader returns the recvmmsg reader for a real UDP socket, or
// nil (→ portable single-datagram path) for other transports.
func newBatchReader(pc PacketConn) batchReader {
	u, ok := pc.(*net.UDPConn)
	if !ok {
		return nil
	}
	rc, err := u.SyscallConn()
	if err != nil {
		return nil
	}
	r := &mmsgReader{u: u, rc: rc}
	for i := range r.bufs {
		r.bufs[i] = make([]byte, 65536)
		r.iovs[i].Base = &r.bufs[i][0]
		r.hdrs[i].hdr.Iov = &r.iovs[i]
		r.hdrs[i].hdr.Iovlen = 1
	}
	return r
}

func (r *mmsgReader) readBatch(deliver func([]byte, net.Addr)) error {
	// Refresh the deadline only periodically, keeping the syscall off the
	// per-batch hot path (§4.1) while still letting the loop notice Close.
	if r.i%16 == 0 {
		r.u.SetReadDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
	}
	r.i++
	for i := range r.hdrs {
		r.hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&r.names[i]))
		r.hdrs[i].hdr.Namelen = syscall.SizeofSockaddrAny
		r.iovs[i].SetLen(len(r.bufs[i]))
		r.hdrs[i].n = 0
	}
	var got int
	var serr error
	err := r.rc.Read(func(fd uintptr) bool {
		n, _, e := syscall.Syscall6(sysRECVMMSG, fd,
			uintptr(unsafe.Pointer(&r.hdrs[0])), mmsgBatch,
			syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN {
			return false // wait for readability in the poller
		}
		if e != 0 {
			serr = e
		} else {
			got = int(n)
		}
		return true
	})
	if err != nil {
		return err
	}
	if serr != nil {
		return serr
	}
	for i := 0; i < got; i++ {
		from := r.sockaddr(i)
		if from == nil {
			continue // unknown address family; nothing to route by
		}
		deliver(r.bufs[i][:r.hdrs[i].n], from)
	}
	return nil
}

// sockaddr decodes message i's source address into its reusable slot.
// Ports are read byte-wise (network order) so the decode is endianness
// independent. IPv6 zone names are not recovered (link-local peers over a
// Mux are out of scope — mapping Scope_id to a name allocates).
func (r *mmsgReader) sockaddr(i int) net.Addr {
	a := &r.addrs[i]
	switch r.names[i].Addr.Family {
	case syscall.AF_INET:
		p := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&r.names[i]))
		a.IP = append(a.IP[:0], p.Addr[:]...)
		a.Port = int(binary.BigEndian.Uint16((*[2]byte)(unsafe.Pointer(&p.Port))[:]))
	case syscall.AF_INET6:
		p := (*syscall.RawSockaddrInet6)(unsafe.Pointer(&r.names[i]))
		a.IP = append(a.IP[:0], p.Addr[:]...)
		a.Port = int(binary.BigEndian.Uint16((*[2]byte)(unsafe.Pointer(&p.Port))[:]))
	default:
		return nil
	}
	a.Zone = ""
	return a
}

// mmsgWriter is the sendmmsg write path. One writer serves every flow on
// the Mux, so the reusable header state is mutex guarded; headers and
// iovecs grow to the largest batch seen and are then reused.
type mmsgWriter struct {
	u  *net.UDPConn
	rc syscall.RawConn

	mu   sync.Mutex
	hdrs []mmsghdr
	iovs []syscall.Iovec
	sa4  syscall.RawSockaddrInet4
	sa6  syscall.RawSockaddrInet6
}

// newBatchSender returns the sendmmsg writer for a real UDP socket, or
// nil (→ WriteTo loop) for other transports.
func newBatchSender(pc PacketConn) batchWriter {
	u, ok := pc.(*net.UDPConn)
	if !ok {
		return nil
	}
	rc, err := u.SyscallConn()
	if err != nil {
		return nil
	}
	return &mmsgWriter{u: u, rc: rc}
}

func (w *mmsgWriter) writeBatch(bufs [][]byte, addr net.Addr) error {
	ua, ok := addr.(*net.UDPAddr)
	if !ok {
		for _, b := range bufs {
			if _, err := w.u.WriteTo(b, addr); err != nil {
				return err
			}
		}
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()

	var name *byte
	var namelen uint32
	if ip4 := ua.IP.To4(); ip4 != nil {
		w.sa4.Family = syscall.AF_INET
		copy(w.sa4.Addr[:], ip4)
		binary.BigEndian.PutUint16((*[2]byte)(unsafe.Pointer(&w.sa4.Port))[:], uint16(ua.Port))
		name = (*byte)(unsafe.Pointer(&w.sa4))
		namelen = syscall.SizeofSockaddrInet4
	} else {
		w.sa6.Family = syscall.AF_INET6
		copy(w.sa6.Addr[:], ua.IP.To16())
		binary.BigEndian.PutUint16((*[2]byte)(unsafe.Pointer(&w.sa6.Port))[:], uint16(ua.Port))
		name = (*byte)(unsafe.Pointer(&w.sa6))
		namelen = syscall.SizeofSockaddrInet6
	}

	if cap(w.hdrs) < len(bufs) {
		w.hdrs = make([]mmsghdr, len(bufs))
		w.iovs = make([]syscall.Iovec, len(bufs))
	}
	hdrs := w.hdrs[:len(bufs)]
	iovs := w.iovs[:len(bufs)]
	for i, b := range bufs {
		iovs[i].Base = &b[0]
		iovs[i].SetLen(len(b))
		hdrs[i].hdr.Name = name
		hdrs[i].hdr.Namelen = namelen
		hdrs[i].hdr.Iov = &iovs[i]
		hdrs[i].hdr.Iovlen = 1
		hdrs[i].n = 0
	}

	// sendmmsg may send a prefix of the batch; resubmit the rest until
	// everything is out or the socket reports a real error.
	transients := 0
	for off := 0; off < len(hdrs); {
		sent := 0
		var serr error
		err := w.rc.Write(func(fd uintptr) bool {
			n, _, e := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&hdrs[off])), uintptr(len(hdrs)-off),
				syscall.MSG_DONTWAIT, 0, 0)
			if e == syscall.EAGAIN {
				return false // wait for writability in the poller
			}
			if e != 0 {
				serr = e
			} else {
				sent = int(n)
			}
			return true
		})
		if err != nil {
			return err
		}
		if serr != nil {
			if transientNetErr(serr) {
				// sendmmsg reported a queued ICMP error (a departed
				// peer's port unreachable — possibly another flow's)
				// instead of sending; the report consumed it. Retry, and
				// if the condition persists treat the rest of the batch
				// as network loss rather than killing the connection.
				if transients++; transients <= 4 {
					continue
				}
				return nil
			}
			return serr
		}
		if sent <= 0 {
			return syscall.EIO
		}
		off += sent
	}
	return nil
}
