//go:build linux

package udt

import (
	"context"
	"net"
	"syscall"
)

// reusePortSupported gates Config.ReusePortShards: only Linux's
// SO_REUSEPORT load-balances datagrams across the group by flow hash
// (other platforms at best allow the bind), so socket groups are a
// Linux-only upgrade and everything else degrades to one socket.
const reusePortSupported = true

// soReusePort is SO_REUSEPORT; the frozen syscall package does not
// export it on Linux.
const soReusePort = 0xf

// listenUDPReusePort binds one member socket of an SO_REUSEPORT group:
// every socket in the group binds the same address, and the kernel
// spreads incoming flows across them by 4-tuple hash — each peer's
// datagrams consistently reach one member, so per-flow ordering and
// demultiplexing are unaffected.
func listenUDPReusePort(laddr *net.UDPAddr) (*net.UDPConn, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			if err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			}); err != nil {
				return err
			}
			return serr
		},
	}
	addr := ":0"
	if laddr != nil {
		addr = laddr.String()
	}
	pc, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		return nil, err
	}
	return pc.(*net.UDPConn), nil
}

// socketBufferSizes reads SO_RCVBUF/SO_SNDBUF back from the socket,
// reporting the sizes the kernel actually granted (on Linux these include
// the kernel's bookkeeping doubling). Zero on any failure.
func socketBufferSizes(sock *net.UDPConn) (rcv, snd int) {
	raw, err := sock.SyscallConn()
	if err != nil {
		return 0, 0
	}
	raw.Control(func(fd uintptr) { //nolint:errcheck
		rcv, _ = syscall.GetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_RCVBUF)
		snd, _ = syscall.GetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_SNDBUF)
	})
	return rcv, snd
}
