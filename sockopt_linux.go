//go:build linux

package udt

import (
	"net"
	"syscall"
)

// socketBufferSizes reads SO_RCVBUF/SO_SNDBUF back from the socket,
// reporting the sizes the kernel actually granted (on Linux these include
// the kernel's bookkeeping doubling). Zero on any failure.
func socketBufferSizes(sock *net.UDPConn) (rcv, snd int) {
	raw, err := sock.SyscallConn()
	if err != nil {
		return 0, 0
	}
	raw.Control(func(fd uintptr) { //nolint:errcheck
		rcv, _ = syscall.GetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_RCVBUF)
		snd, _ = syscall.GetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_SNDBUF)
	})
	return rcv, snd
}
