package udt

import (
	"bytes"
	"hash/fnv"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"udt/internal/netem"
)

// netemPair dials a UDT connection through a netem fabric with the given
// per-direction impairments, returning the fabric, the client conn and the
// accepted server conn.
func netemPair(t *testing.T, seed int64, link netem.LinkConfig, cfg *Config) (*netem.Net, *Conn, *Conn) {
	t.Helper()
	nw := netem.New(seed, nil)
	epC, err := nw.Endpoint("c")
	if err != nil {
		t.Fatal(err)
	}
	epS, err := nw.Endpoint("s")
	if err != nil {
		t.Fatal(err)
	}
	nw.SetLink("c", "s", link)

	ln, err := ListenOn(epS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })

	accepted := make(chan *Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := DialOn(epC, epS.LocalAddr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	select {
	case server := <-accepted:
		return nw, client, server
	case <-time.After(10 * time.Second):
		t.Fatal("accept timed out")
		return nil, nil, nil
	}
}

func TestDialListenOnNetem(t *testing.T) {
	_, client, server := netemPair(t, 1, netem.LinkConfig{Delay: 1000}, nil)
	msg := []byte("through the emulated fabric")
	if _, err := client.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	if server.RemoteAddr().String() != "c" || client.RemoteAddr().String() != "s" {
		t.Fatalf("addrs: server sees %v, client sees %v", server.RemoteAddr(), client.RemoteAddr())
	}
}

// TestNetemLossyTransferBitExact pushes 4 MB through 1% loss + 0.1%
// duplication + 2 ms jitter and requires the stream to arrive bit-exactly,
// with the loss actually exercised (retransmissions observed).
func TestNetemLossyTransferBitExact(t *testing.T) {
	link := netem.LinkConfig{Delay: 2000, Jitter: 2000, Loss: 0.01, Dup: 0.001}
	nw, client, server := netemPair(t, 7, link, nil)

	payload := make([]byte, 4<<20)
	rand.New(rand.NewSource(7)).Read(payload) //nolint:gosec // test data

	var wg sync.WaitGroup
	wg.Add(1)
	var got []byte
	var rerr error
	go func() {
		defer wg.Done()
		buf := make([]byte, 64<<10)
		for len(got) < len(payload) {
			n, err := server.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				rerr = err
				return
			}
		}
	}()
	if _, err := client.Write(payload); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if rerr != nil {
		t.Fatalf("server read: %v", rerr)
	}
	if !bytes.Equal(got, payload) {
		want, have := fnv.New64a(), fnv.New64a()
		want.Write(payload) //nolint:errcheck
		have.Write(got)     //nolint:errcheck
		t.Fatalf("stream corrupted: %d bytes, hash %x != %x", len(got), have.Sum64(), want.Sum64())
	}
	if st := client.Stats(); st.PktsRetrans == 0 {
		t.Fatal("1%% loss produced no retransmissions — impairment not exercised")
	}
	cs := nw.PathStats("c", "s")
	if cs.Lost == 0 || cs.Duplicated == 0 {
		t.Fatalf("fabric stats show no impairment: %+v", cs)
	}
}

// TestNetemCorruptionRejected runs a transfer over a corrupting path and
// requires (a) the emulated UDP checksum counted and discarded mangled
// datagrams, and (b) none of them reached the stream.
func TestNetemCorruptionRejected(t *testing.T) {
	link := netem.LinkConfig{Delay: 1000, Corrupt: 0.01}
	nw, client, server := netemPair(t, 11, link, nil)

	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(11)).Read(payload) //nolint:gosec

	done := make(chan []byte, 1)
	go func() {
		got := make([]byte, 0, len(payload))
		buf := make([]byte, 64<<10)
		for len(got) < len(payload) {
			n, err := server.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				break
			}
		}
		done <- got
	}()
	if _, err := client.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if !bytes.Equal(got, payload) {
		t.Fatalf("corrupted bytes leaked into the stream (%d bytes received)", len(got))
	}
	if st := nw.PathStats("c", "s"); st.Corrupted == 0 {
		t.Fatalf("no corruption recorded at 1%%: %+v", st)
	}
}

// TestNetemPartitionPeerDeath partitions the fabric mid-transfer and
// requires both real endpoints to report ErrPeerDead within a small
// multiple of the configured PeerDeathTimeout.
func TestNetemPartitionPeerDeath(t *testing.T) {
	cfg := &Config{PeerDeathTimeout: 1 * time.Second, MinEXPInterval: 30 * time.Millisecond}
	nw, client, server := netemPair(t, 3, netem.LinkConfig{Delay: 1000}, cfg)

	// Keep both directions busy so death comes from the EXP path, not EOF.
	payload := make([]byte, 32<<20)
	errs := make(chan error, 2)
	watch := func(c *Conn) {
		go c.Write(payload) //nolint:errcheck // blocks until the partition kills it
		go func() {
			_, err := io.Copy(io.Discard, c)
			errs <- err
		}()
	}
	watch(client)
	watch(server)

	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	nw.Partition("c", "s")

	deadline := time.After(5 * cfg.PeerDeathTimeout)
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != ErrPeerDead {
				t.Fatalf("endpoint died with %v, want ErrPeerDead", err)
			}
		case <-deadline:
			t.Fatalf("peer death not detected within %v (configured %v)",
				time.Since(start), cfg.PeerDeathTimeout)
		}
	}
	if elapsed := time.Since(start); elapsed < cfg.PeerDeathTimeout {
		t.Fatalf("death after %v, before the configured %v silence bound", elapsed, cfg.PeerDeathTimeout)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{MSS: -1},
		{MSS: 50},
		{MSS: 70000},
		{SYN: -time.Second},
		{SYN: time.Microsecond},
		{MaxFlowWindow: -5},
		{SndBuf: -1},
		{RcvBuf: -2},
		{HandshakeTimeout: -time.Second},
		{PeerDeathTimeout: -time.Second},
		{MinEXPInterval: -time.Millisecond},
		{PerfEverySYN: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate accepted a nonsense config", i, cfg)
		}
	}
	good := []Config{
		{},
		{MSS: 96},
		{MSS: 9000, SYN: 10 * time.Millisecond, MaxFlowWindow: 1000},
		{PeerDeathTimeout: 2 * time.Second, MinEXPInterval: 50 * time.Millisecond},
	}
	for i, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("case %d: Validate rejected a sane config: %v", i, err)
		}
	}
	// The checked paths reject before touching the network.
	if _, err := Dial("127.0.0.1:1", &Config{MSS: -1}); err == nil {
		t.Fatal("Dial accepted MSS=-1")
	}
	if _, err := Listen("127.0.0.1:0", &Config{SndBuf: -1}); err == nil {
		t.Fatal("Listen accepted SndBuf=-1")
	}
}

// TestConfigRandReproducible pins the injectable handshake randomness:
// same source, same draw sequence.
func TestConfigRandReproducible(t *testing.T) {
	draw := func(seed int64) [4]int32 {
		cfg := Config{Rand: rand.New(rand.NewSource(seed))} //nolint:gosec
		var out [4]int32
		for i := range out {
			out[i] = cfg.randInt31()
		}
		return out
	}
	if draw(5) != draw(5) {
		t.Fatal("same seed produced different handshake draws")
	}
	if draw(5) == draw(6) {
		t.Fatal("different seeds produced identical draws")
	}
	var defaulted Config
	_ = defaulted.randInt31() // nil Rand falls back to the global source
}
