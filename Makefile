GO ?= go

.PHONY: all build test race muxrace fabric vet ci bench smoke docs chaos ccmatrix campaign

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# muxrace is the quick concurrency gate: the shared-socket demultiplexer and
# the chaos harness under the race detector in short mode (the full 1000-flow
# stress runs in `make race`).
muxrace:
	$(GO) vet ./internal/mux ./internal/netem/chaos
	$(GO) test -race -short ./internal/mux ./internal/netem/chaos

# fabric is the transport-adapter + rendezvous + udtfs race gate: the pipe
# and framed adapters, simultaneous-dial crossings on shared mux sockets
# (TestRendezvousCrossingStress), and the resumable transfer service, all
# under the race detector in short mode.
fabric:
	$(GO) vet ./fabric ./udtfs .
	$(GO) test -race -short ./fabric ./udtfs
	$(GO) test -race -short -run 'TestRendezvous|TestRdvWins' .

vet:
	$(GO) vet ./...

ci:
	sh scripts/ci.sh

# bench regenerates the performance snapshot; diff against BENCH_baseline.json
# to spot regressions (numbers are machine-dependent — compare ratios, and the
# alloc counts, which must be exactly zero).
bench:
	sh scripts/bench.sh BENCH_current.json
	@cat BENCH_current.json

# docs runs the documentation gates: godoc coverage of the audited packages
# (including the root package and the timer wheel) and Markdown link
# integrity.
docs:
	$(GO) run ./scripts/doccheck . fabric udtfs internal/campaign internal/congestion internal/core internal/metrics internal/mux internal/netem internal/netem/chaos internal/timerwheel internal/timing internal/trace
	$(GO) run ./scripts/mdcheck

# chaos runs the fixed-seed fault-injection matrix: full transfers of
# checksummed payloads through impaired netem paths (loss, bursts,
# corruption, reordering, partitions), each cell replayed twice under the
# virtual clock and required to be bit-identical, plus a real-stack smoke
# pass. Seconds of wall time; see EXPERIMENTS.md.
chaos:
	$(GO) run ./cmd/udtchaos -determinism -real

# ccmatrix runs the congestion-control matrix: each pluggable law (native,
# ctcp, scalable, hstcp) carrying transfers through loss, plus fairness cells
# racing two laws over one shared rate-capped link — all replayed twice and
# required to be bit-identical. See DESIGN.md "Configurable congestion
# control".
ccmatrix:
	$(GO) run ./cmd/udtchaos -ccmatrix -determinism

# campaign runs the CI topology campaigns: the 100-flow mixed-law dumbbell
# and the 32-flow flash-crowd star over multi-hop netem fabrics, each
# replayed twice and required to hash identically, then diffed against the
# pinned perf baseline. Seconds of wall time; see DESIGN.md §4.12 and
# EXPERIMENTS.md.
campaign:
	$(GO) run ./cmd/udtchaos -campaign -determinism -metrics BENCH_campaign.json -v
	$(GO) run ./scripts/benchdiff -baseline BENCH_baseline.json -current BENCH_campaign.json

# smoke is the fast correctness pass: the allocation gates plus the simulator
# determinism suite.
smoke:
	$(GO) test ./internal/netsim -run 'ZeroAlloc|Pool|DoubleFree|TotalOrder' -count=1
	$(GO) test . -run 'TestSenderPathAllocs|TestDrainOutboxSizing' -count=1
