package udt

import (
	"fmt"
	"log"
	"net"
	"sync"
)

// ownedSock is a dialed connection's private transport. When that
// transport is a real UDP socket it carries the platform batch and
// segmentation-offload send paths, so dialed connections reach sendmmsg
// and GSO exactly like multiplexed ones; on any other fabric (netem,
// proxies) both upgrades are absent and every send is one writeTo.
type ownedSock struct {
	c  PacketConn
	bw batchWriter // nil off-UDP: writeBatch falls back to writeTo
	sw segWriter   // nil when the platform or probe rules out GSO
}

func newOwnedSock(pc PacketConn, offload bool) *ownedSock {
	s := &ownedSock{c: pc}
	s.bw = newBatchSender(pc, offload)
	s.sw, _ = s.bw.(segWriter)
	return s
}

func (s *ownedSock) writeTo(b []byte, addr net.Addr) (int, error) {
	return s.c.WriteTo(b, addr)
}

func (s *ownedSock) writeBatch(bufs [][]byte, addr net.Addr) error {
	if s.bw != nil {
		return s.bw.writeBatch(bufs, addr)
	}
	for _, b := range bufs {
		if _, err := s.c.WriteTo(b, addr); err != nil {
			return err
		}
	}
	return nil
}

func (s *ownedSock) writeSegments(bufs [][]byte, segSize int, addr net.Addr) (bool, error) {
	if s.sw == nil {
		return false, nil
	}
	return s.sw.writeSegments(bufs, segSize, addr)
}

func (s *ownedSock) offloadActive() bool { return s.sw != nil && s.sw.offloadActive() }

func (s *ownedSock) headroom() int { return 0 }

// Dial connects to a UDT listener at the given UDP address ("host:port").
// cfg may be nil for defaults. To dial over a different transport (a
// pre-tuned socket, or a netem fault-injection fabric), use DialOn.
func Dial(address string, cfg *Config) (*Conn, error) {
	raddr, err := net.ResolveUDPAddr("udp", address)
	if err != nil {
		return nil, fmt.Errorf("udt: dial %s: %w", address, err)
	}
	sock, err := net.ListenUDP("udp", nil)
	if err != nil {
		return nil, fmt.Errorf("udt: dial %s: %w", address, err)
	}
	rcvBuf, sndBuf := tuneUDPBuffers(sock)
	conn, err := DialOn(sock, raddr, cfg)
	if err != nil {
		return nil, err
	}
	conn.mu.Lock()
	conn.udpRcvBuf, conn.udpSndBuf = rcvBuf, sndBuf
	conn.mu.Unlock()
	return conn, nil
}

func udpAddrEqual(a, b *net.UDPAddr) bool {
	return a.Port == b.Port && a.IP.Equal(b.IP)
}

// wantUDPBuf is the kernel socket buffer size tuneUDPBuffers requests.
const wantUDPBuf = 8 << 20

// udpBufWarnOnce rate-limits the buffer-clamp warning to once per process.
var udpBufWarnOnce sync.Once

// tuneUDPBuffers requests large kernel socket buffers and reports the sizes
// the OS actually granted (in bytes, as read back from the socket; zero
// when the platform cannot report them). At gigabit packet rates the
// default (~200 KB ≈ 10 ms of traffic) drops bursts long before the
// protocol can react; UDT deployments tune this (paper §5's testbeds).
// When the OS clamps the request — rmem_max/wmem_max below the target — a
// one-line warning is logged, once per process.
func tuneUDPBuffers(sock *net.UDPConn) (rcvBytes, sndBytes int) {
	rerr := sock.SetReadBuffer(wantUDPBuf)
	werr := sock.SetWriteBuffer(wantUDPBuf)
	rcvBytes, sndBytes = socketBufferSizes(sock)
	clamped := rerr != nil || werr != nil ||
		(rcvBytes > 0 && rcvBytes < wantUDPBuf) || (sndBytes > 0 && sndBytes < wantUDPBuf)
	if clamped {
		udpBufWarnOnce.Do(func() {
			log.Printf("udt: OS clamped UDP socket buffers to rcv=%d snd=%d bytes (wanted %d); raise net.core.rmem_max/wmem_max for high-bandwidth paths",
				rcvBytes, sndBytes, wantUDPBuf)
		})
	}
	return rcvBytes, sndBytes
}

// Listener accepts incoming UDT connections on one datagram transport,
// which all accepted connections share. It sits on a Mux's demultiplexer:
// multiplexing clients are routed by socket ID (many flows per client
// address), paper-era clients by peer address. A Listener made by
// Listen/ListenOn owns its Mux and tears the whole socket down on Close;
// one made by Mux.Listen only stops accepting and closes the accepted
// connections, leaving the Mux's dialed flows running.
type Listener struct {
	m       *Mux
	ownsMux bool
	backlog chan *Conn

	// shards are the extra SO_REUSEPORT group members beyond m
	// (Config.ReusePortShards > 1 on Linux): each is a full Mux — own
	// socket, own read loop, own demux tables — bound to the same
	// address, and the kernel spreads client flows across the group by
	// 4-tuple hash. All shards feed this listener's one backlog, so
	// Accept is oblivious to which socket a connection arrived on.
	// Always owned: only Listen builds groups.
	shards []*Mux

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// Listen starts a UDT listener on the given UDP address. cfg may be nil.
// With Config.ReusePortShards > 1 on Linux the listener binds an
// SO_REUSEPORT socket group instead of one socket: N sockets on the same
// address, each with its own read loop and demultiplexer, with the
// kernel spreading client flows across them by 4-tuple hash — the §4.1
// syscall/interrupt work then scales across cores instead of serializing
// on one socket lock. Elsewhere, or with shards ≤ 1, exactly one socket
// is bound. To listen on a different transport, use ListenOn.
func Listen(address string, cfg *Config) (*Listener, error) {
	laddr, err := net.ResolveUDPAddr("udp", address)
	if err != nil {
		return nil, fmt.Errorf("udt: listen %s: %w", address, err)
	}
	if cfg != nil {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		if cfg.ReusePortShards > 1 && reusePortSupported {
			return listenReusePort(laddr, cfg)
		}
	}
	sock, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("udt: listen %s: %w", address, err)
	}
	rcvBuf, sndBuf := tuneUDPBuffers(sock)
	return listenOn(sock, cfg, rcvBuf, sndBuf)
}

// listenReusePort binds cfg.ReusePortShards sockets to laddr as one
// SO_REUSEPORT group and stacks a Mux on each; the first carries the
// Listener, the rest attach to it as shards.
func listenReusePort(laddr *net.UDPAddr, cfg *Config) (*Listener, error) {
	shards := cfg.ReusePortShards
	if shards > 64 {
		shards = 64
	}
	socks := make([]*net.UDPConn, 0, shards)
	fail := func(err error) (*Listener, error) {
		for _, s := range socks {
			s.Close() //nolint:errcheck
		}
		return nil, fmt.Errorf("udt: listen %s: %w", laddr, err)
	}
	for i := 0; i < shards; i++ {
		s, err := listenUDPReusePort(laddr)
		if err != nil {
			return fail(err)
		}
		socks = append(socks, s)
		if i == 0 {
			// A wildcard port resolves at the first bind; the rest of the
			// group must join that concrete port.
			laddr = s.LocalAddr().(*net.UDPAddr)
		}
	}
	rcvBuf, sndBuf := tuneUDPBuffers(socks[0])
	l, err := listenOn(socks[0], cfg, rcvBuf, sndBuf)
	if err != nil {
		socks = socks[1:] // listenOn closed its socket
		return fail(err)
	}
	for i, s := range socks[1:] {
		rcvBuf, sndBuf := tuneUDPBuffers(s)
		m, merr := newMux(s, cfg, rcvBuf, sndBuf) // closes s on error
		if merr == nil {
			if merr = m.attachListener(l); merr != nil {
				m.Close() //nolint:errcheck
			}
		}
		if merr != nil {
			l.Close()           //nolint:errcheck // tears down every mux built so far
			socks = socks[i+2:] // only sockets no mux ever owned remain open
			return fail(merr)
		}
		l.shards = append(l.shards, m)
	}
	return l, nil
}

// Addr returns the listening transport address.
func (l *Listener) Addr() net.Addr { return l.m.sock.LocalAddr() }

// Accept blocks for the next incoming connection.
func (l *Listener) Accept() (*Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	case <-l.m.done:
		return nil, ErrClosed
	}
}

// Close stops the listener and closes every accepted connection; when the
// listener owns its Mux (Listen/ListenOn), the shared socket and any
// other flows on it are torn down too.
func (l *Listener) Close() error {
	l.mu.Lock()
	alreadyClosed := l.closed
	if !l.closed {
		l.closed = true
		close(l.done)
	}
	l.mu.Unlock()
	if alreadyClosed {
		if l.ownsMux {
			for _, m := range l.shards {
				m.Close() //nolint:errcheck
			}
			return l.m.Close()
		}
		return nil
	}
	for _, m := range append([]*Mux{l.m}, l.shards...) {
		m.mu.Lock()
		if m.listener == l {
			m.listener = nil
		}
		conns := make([]*Conn, 0, len(m.accepted))
		for _, e := range m.accepted {
			conns = append(conns, e.conn)
		}
		m.mu.Unlock()
		for _, c := range conns {
			c.Close() //nolint:errcheck
		}
	}
	// Shards exist only when the listener owns the whole group.
	for _, m := range l.shards {
		m.Close() //nolint:errcheck
	}
	if l.ownsMux {
		return l.m.Close()
	}
	return nil
}

// closeAccepting marks the listener closed without touching connections —
// Mux.Close calls it before closing every flow itself.
func (l *Listener) closeAccepting() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.done)
	}
	l.mu.Unlock()
}
