package udt

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"udt/internal/packet"
	"udt/internal/seqno"
)

// ownedSock is a dialed connection's private UDP socket.
type ownedSock struct {
	c *net.UDPConn
}

func (s *ownedSock) writeTo(b []byte, addr *net.UDPAddr) (int, error) {
	return s.c.WriteToUDP(b, addr)
}

// Dial connects to a UDT listener at the given UDP address ("host:port").
// cfg may be nil for defaults.
func Dial(address string, cfg *Config) (*Conn, error) {
	var c Config
	if cfg != nil {
		c = *cfg
	}
	c.fill()
	raddr, err := net.ResolveUDPAddr("udp", address)
	if err != nil {
		return nil, fmt.Errorf("udt: dial %s: %w", address, err)
	}
	sock, err := net.ListenUDP("udp", nil)
	if err != nil {
		return nil, fmt.Errorf("udt: dial %s: %w", address, err)
	}
	tuneUDPBuffers(sock)

	isn := rand.Int31() & seqno.Max
	connID := rand.Int31()
	req := packet.Handshake{
		Version:    packet.Version,
		SockType:   0,
		InitSeq:    isn,
		MSS:        int32(c.MSS),
		FlowWindow: int32(c.MaxFlowWindow),
		ReqType:    1,
		ConnID:     connID,
	}
	buf := make([]byte, 64)
	n, err := packet.EncodeHandshake(buf, &req, 0)
	if err != nil {
		sock.Close()
		return nil, err
	}

	// Send the request, retrying every 250 ms until the response arrives.
	deadline := time.Now().Add(c.HandshakeTimeout)
	rbuf := make([]byte, 65536)
	var resp packet.Handshake
	for {
		if time.Now().After(deadline) {
			sock.Close()
			return nil, ErrTimeout
		}
		if _, err := sock.WriteToUDP(buf[:n], raddr); err != nil {
			sock.Close()
			return nil, fmt.Errorf("udt: handshake: %w", err)
		}
		sock.SetReadDeadline(time.Now().Add(250 * time.Millisecond)) //nolint:errcheck
		rn, from, err := sock.ReadFromUDP(rbuf)
		if err != nil {
			continue // timeout or transient: retry
		}
		if !udpAddrEqual(from, raddr) || !packet.IsControl(rbuf[:rn]) {
			continue
		}
		ctrl, err := packet.DecodeControl(rbuf[:rn])
		if err != nil || ctrl.Type != packet.TypeHandshake {
			continue
		}
		hs, err := packet.DecodeHandshake(ctrl)
		if err != nil || hs.ReqType != -1 || hs.ConnID != connID {
			continue
		}
		resp = hs
		break
	}
	sock.SetReadDeadline(time.Time{}) //nolint:errcheck

	// Negotiate downwards.
	if int(resp.MSS) < c.MSS && resp.MSS >= 96 {
		c.MSS = int(resp.MSS)
	}
	if int(resp.FlowWindow) < c.MaxFlowWindow && resp.FlowWindow > 0 {
		c.MaxFlowWindow = int(resp.FlowWindow)
	}

	conn := newConn(c, &ownedSock{c: sock}, func() { sock.Close() }, sock.LocalAddr(), raddr, isn, resp.InitSeq)
	go dialedReadLoop(sock, conn)
	return conn, nil
}

// dialedReadLoop feeds a dialed connection from its private socket.
func dialedReadLoop(sock *net.UDPConn, conn *Conn) {
	buf := make([]byte, 65536)
	for i := 0; ; i++ {
		// A bounded read deadline stands in for RCV_TIMEO (§4.8): timers
		// are serviced by the sender loop, so the read may simply retry.
		// Refreshing it only periodically keeps the syscall off the
		// per-packet hot path (§4.1).
		if i%16 == 0 {
			sock.SetReadDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
		}
		n, from, err := sock.ReadFromUDP(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				select {
				case <-conn.closed:
					return
				default:
					continue
				}
			}
			return // socket closed
		}
		if !udpAddrEqual(from, conn.raddr) {
			continue
		}
		conn.handleDatagram(buf[:n])
	}
}

func udpAddrEqual(a, b *net.UDPAddr) bool {
	return a.Port == b.Port && a.IP.Equal(b.IP)
}

// tuneUDPBuffers requests large kernel socket buffers. At gigabit packet
// rates the default (~200 KB ≈ 10 ms of traffic) drops bursts long before
// the protocol can react; UDT deployments tune this (paper §5's testbeds).
// Failures are ignored — the kernel clamps to its configured maximum.
func tuneUDPBuffers(sock *net.UDPConn) {
	const want = 8 << 20
	sock.SetReadBuffer(want)  //nolint:errcheck
	sock.SetWriteBuffer(want) //nolint:errcheck
}

// Listener accepts incoming UDT connections on one UDP socket, which all
// accepted connections share (demultiplexed by peer address).
type Listener struct {
	cfg  Config
	sock *net.UDPConn

	mu      sync.Mutex
	conns   map[string]*Conn
	pending map[string]int32 // peer → our ISN, for duplicate handshakes
	backlog chan *Conn
	closed  bool
	done    chan struct{}
}

// Listen starts a UDT listener on the given UDP address. cfg may be nil.
func Listen(address string, cfg *Config) (*Listener, error) {
	var c Config
	if cfg != nil {
		c = *cfg
	}
	c.fill()
	laddr, err := net.ResolveUDPAddr("udp", address)
	if err != nil {
		return nil, fmt.Errorf("udt: listen %s: %w", address, err)
	}
	sock, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("udt: listen %s: %w", address, err)
	}
	tuneUDPBuffers(sock)
	l := &Listener{
		cfg:     c,
		sock:    sock,
		conns:   make(map[string]*Conn),
		pending: make(map[string]int32),
		backlog: make(chan *Conn, 64),
		done:    make(chan struct{}),
	}
	go l.readLoop()
	return l, nil
}

// Addr returns the listening UDP address.
func (l *Listener) Addr() net.Addr { return l.sock.LocalAddr() }

// Accept blocks for the next incoming connection.
func (l *Listener) Accept() (*Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

// Close stops the listener and closes every accepted connection.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	conns := make([]*Conn, 0, len(l.conns))
	for _, c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	close(l.done)
	for _, c := range conns {
		c.Close() //nolint:errcheck
	}
	return l.sock.Close()
}

func (l *Listener) writeTo(b []byte, addr *net.UDPAddr) (int, error) {
	return l.sock.WriteToUDP(b, addr)
}

// readLoop demultiplexes every datagram on the shared socket.
func (l *Listener) readLoop() {
	buf := make([]byte, 65536)
	for i := 0; ; i++ {
		if i%16 == 0 {
			l.sock.SetReadDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
		}
		n, from, err := l.sock.ReadFromUDP(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				select {
				case <-l.done:
					return
				default:
					continue
				}
			}
			return
		}
		key := from.String()
		l.mu.Lock()
		conn := l.conns[key]
		l.mu.Unlock()
		if conn != nil {
			conn.handleDatagram(buf[:n])
			continue
		}
		l.maybeHandshake(buf[:n], from)
	}
}

// maybeHandshake answers a connection request from an unknown peer.
func (l *Listener) maybeHandshake(raw []byte, from *net.UDPAddr) {
	if !packet.IsControl(raw) {
		return
	}
	ctrl, err := packet.DecodeControl(raw)
	if err != nil || ctrl.Type != packet.TypeHandshake {
		return
	}
	hs, err := packet.DecodeHandshake(ctrl)
	if err != nil || hs.ReqType != 1 || hs.Version != packet.Version {
		return
	}
	key := from.String()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	isn, dup := l.pending[key]
	if !dup {
		isn = rand.Int31() & seqno.Max
		l.pending[key] = isn
	}
	cfg := l.cfg
	if int(hs.MSS) < cfg.MSS && hs.MSS >= 96 {
		cfg.MSS = int(hs.MSS)
	}
	if int(hs.FlowWindow) < cfg.MaxFlowWindow && hs.FlowWindow > 0 {
		cfg.MaxFlowWindow = int(hs.FlowWindow)
	}
	var conn *Conn
	if !dup {
		peer := key
		conn = newConn(cfg, l, func() { l.forget(peer) }, l.sock.LocalAddr(), from, isn, hs.InitSeq)
		l.conns[key] = conn
	}
	l.mu.Unlock()

	resp := packet.Handshake{
		Version:    packet.Version,
		SockType:   0,
		InitSeq:    isn,
		MSS:        int32(cfg.MSS),
		FlowWindow: int32(cfg.MaxFlowWindow),
		ReqType:    -1,
		ConnID:     hs.ConnID,
	}
	out := make([]byte, 64)
	if n, err := packet.EncodeHandshake(out, &resp, 0); err == nil {
		l.sock.WriteToUDP(out[:n], from) //nolint:errcheck // client retries on loss
	}
	if conn != nil {
		select {
		case l.backlog <- conn:
		default:
			// Backlog overflow: drop the connection; the peer's handshake
			// retries will find the slot again after forget().
			conn.Close() //nolint:errcheck
		}
	}
}

// forget removes a torn-down connection from the demultiplexer.
func (l *Listener) forget(key string) {
	l.mu.Lock()
	delete(l.conns, key)
	delete(l.pending, key)
	l.mu.Unlock()
}
