package udt

import (
	"fmt"
	"log"
	"net"
	"sync"
)

// ownedSock is a dialed connection's private transport.
type ownedSock struct {
	c PacketConn
}

func (s *ownedSock) writeTo(b []byte, addr net.Addr) (int, error) {
	return s.c.WriteTo(b, addr)
}

func (s *ownedSock) headroom() int { return 0 }

// Dial connects to a UDT listener at the given UDP address ("host:port").
// cfg may be nil for defaults. To dial over a different transport (a
// pre-tuned socket, or a netem fault-injection fabric), use DialOn.
func Dial(address string, cfg *Config) (*Conn, error) {
	raddr, err := net.ResolveUDPAddr("udp", address)
	if err != nil {
		return nil, fmt.Errorf("udt: dial %s: %w", address, err)
	}
	sock, err := net.ListenUDP("udp", nil)
	if err != nil {
		return nil, fmt.Errorf("udt: dial %s: %w", address, err)
	}
	rcvBuf, sndBuf := tuneUDPBuffers(sock)
	conn, err := DialOn(sock, raddr, cfg)
	if err != nil {
		return nil, err
	}
	conn.mu.Lock()
	conn.udpRcvBuf, conn.udpSndBuf = rcvBuf, sndBuf
	conn.mu.Unlock()
	return conn, nil
}

func udpAddrEqual(a, b *net.UDPAddr) bool {
	return a.Port == b.Port && a.IP.Equal(b.IP)
}

// wantUDPBuf is the kernel socket buffer size tuneUDPBuffers requests.
const wantUDPBuf = 8 << 20

// udpBufWarnOnce rate-limits the buffer-clamp warning to once per process.
var udpBufWarnOnce sync.Once

// tuneUDPBuffers requests large kernel socket buffers and reports the sizes
// the OS actually granted (in bytes, as read back from the socket; zero
// when the platform cannot report them). At gigabit packet rates the
// default (~200 KB ≈ 10 ms of traffic) drops bursts long before the
// protocol can react; UDT deployments tune this (paper §5's testbeds).
// When the OS clamps the request — rmem_max/wmem_max below the target — a
// one-line warning is logged, once per process.
func tuneUDPBuffers(sock *net.UDPConn) (rcvBytes, sndBytes int) {
	rerr := sock.SetReadBuffer(wantUDPBuf)
	werr := sock.SetWriteBuffer(wantUDPBuf)
	rcvBytes, sndBytes = socketBufferSizes(sock)
	clamped := rerr != nil || werr != nil ||
		(rcvBytes > 0 && rcvBytes < wantUDPBuf) || (sndBytes > 0 && sndBytes < wantUDPBuf)
	if clamped {
		udpBufWarnOnce.Do(func() {
			log.Printf("udt: OS clamped UDP socket buffers to rcv=%d snd=%d bytes (wanted %d); raise net.core.rmem_max/wmem_max for high-bandwidth paths",
				rcvBytes, sndBytes, wantUDPBuf)
		})
	}
	return rcvBytes, sndBytes
}

// Listener accepts incoming UDT connections on one datagram transport,
// which all accepted connections share. It sits on a Mux's demultiplexer:
// multiplexing clients are routed by socket ID (many flows per client
// address), paper-era clients by peer address. A Listener made by
// Listen/ListenOn owns its Mux and tears the whole socket down on Close;
// one made by Mux.Listen only stops accepting and closes the accepted
// connections, leaving the Mux's dialed flows running.
type Listener struct {
	m       *Mux
	ownsMux bool
	backlog chan *Conn

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// Listen starts a UDT listener on the given UDP address. cfg may be nil.
// To listen on a different transport, use ListenOn.
func Listen(address string, cfg *Config) (*Listener, error) {
	laddr, err := net.ResolveUDPAddr("udp", address)
	if err != nil {
		return nil, fmt.Errorf("udt: listen %s: %w", address, err)
	}
	sock, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("udt: listen %s: %w", address, err)
	}
	rcvBuf, sndBuf := tuneUDPBuffers(sock)
	return listenOn(sock, cfg, rcvBuf, sndBuf)
}

// Addr returns the listening transport address.
func (l *Listener) Addr() net.Addr { return l.m.sock.LocalAddr() }

// Accept blocks for the next incoming connection.
func (l *Listener) Accept() (*Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	case <-l.m.done:
		return nil, ErrClosed
	}
}

// Close stops the listener and closes every accepted connection; when the
// listener owns its Mux (Listen/ListenOn), the shared socket and any
// other flows on it are torn down too.
func (l *Listener) Close() error {
	l.mu.Lock()
	alreadyClosed := l.closed
	if !l.closed {
		l.closed = true
		close(l.done)
	}
	l.mu.Unlock()
	if alreadyClosed {
		if l.ownsMux {
			return l.m.Close()
		}
		return nil
	}
	m := l.m
	m.mu.Lock()
	if m.listener == l {
		m.listener = nil
	}
	conns := make([]*Conn, 0, len(m.accepted))
	for _, e := range m.accepted {
		conns = append(conns, e.conn)
	}
	m.mu.Unlock()
	for _, c := range conns {
		c.Close() //nolint:errcheck
	}
	if l.ownsMux {
		return m.Close()
	}
	return nil
}

// closeAccepting marks the listener closed without touching connections —
// Mux.Close calls it before closing every flow itself.
func (l *Listener) closeAccepting() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.done)
	}
	l.mu.Unlock()
}
