package udt

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"udt/internal/packet"
	"udt/internal/seqno"
)

// ownedSock is a dialed connection's private transport.
type ownedSock struct {
	c PacketConn
}

func (s *ownedSock) writeTo(b []byte, addr net.Addr) (int, error) {
	return s.c.WriteTo(b, addr)
}

// Dial connects to a UDT listener at the given UDP address ("host:port").
// cfg may be nil for defaults. To dial over a different transport (a
// pre-tuned socket, or a netem fault-injection fabric), use DialOn.
func Dial(address string, cfg *Config) (*Conn, error) {
	raddr, err := net.ResolveUDPAddr("udp", address)
	if err != nil {
		return nil, fmt.Errorf("udt: dial %s: %w", address, err)
	}
	sock, err := net.ListenUDP("udp", nil)
	if err != nil {
		return nil, fmt.Errorf("udt: dial %s: %w", address, err)
	}
	rcvBuf, sndBuf := tuneUDPBuffers(sock)
	conn, err := DialOn(sock, raddr, cfg)
	if err != nil {
		return nil, err
	}
	conn.mu.Lock()
	conn.udpRcvBuf, conn.udpSndBuf = rcvBuf, sndBuf
	conn.mu.Unlock()
	return conn, nil
}

func udpAddrEqual(a, b *net.UDPAddr) bool {
	return a.Port == b.Port && a.IP.Equal(b.IP)
}

// wantUDPBuf is the kernel socket buffer size tuneUDPBuffers requests.
const wantUDPBuf = 8 << 20

// udpBufWarnOnce rate-limits the buffer-clamp warning to once per process.
var udpBufWarnOnce sync.Once

// tuneUDPBuffers requests large kernel socket buffers and reports the sizes
// the OS actually granted (in bytes, as read back from the socket; zero
// when the platform cannot report them). At gigabit packet rates the
// default (~200 KB ≈ 10 ms of traffic) drops bursts long before the
// protocol can react; UDT deployments tune this (paper §5's testbeds).
// When the OS clamps the request — rmem_max/wmem_max below the target — a
// one-line warning is logged, once per process.
func tuneUDPBuffers(sock *net.UDPConn) (rcvBytes, sndBytes int) {
	rerr := sock.SetReadBuffer(wantUDPBuf)
	werr := sock.SetWriteBuffer(wantUDPBuf)
	rcvBytes, sndBytes = socketBufferSizes(sock)
	clamped := rerr != nil || werr != nil ||
		(rcvBytes > 0 && rcvBytes < wantUDPBuf) || (sndBytes > 0 && sndBytes < wantUDPBuf)
	if clamped {
		udpBufWarnOnce.Do(func() {
			log.Printf("udt: OS clamped UDP socket buffers to rcv=%d snd=%d bytes (wanted %d); raise net.core.rmem_max/wmem_max for high-bandwidth paths",
				rcvBytes, sndBytes, wantUDPBuf)
		})
	}
	return rcvBytes, sndBytes
}

// Listener accepts incoming UDT connections on one datagram transport,
// which all accepted connections share (demultiplexed by peer address).
type Listener struct {
	cfg  Config
	sock PacketConn

	udpRcvBuf, udpSndBuf int // achieved socket buffer sizes (0 off-UDP)

	mu      sync.Mutex
	conns   map[string]*Conn
	pending map[string]int32 // peer → our ISN, for duplicate handshakes
	backlog chan *Conn
	closed  bool
	done    chan struct{}
}

// Listen starts a UDT listener on the given UDP address. cfg may be nil.
// To listen on a different transport, use ListenOn.
func Listen(address string, cfg *Config) (*Listener, error) {
	laddr, err := net.ResolveUDPAddr("udp", address)
	if err != nil {
		return nil, fmt.Errorf("udt: listen %s: %w", address, err)
	}
	sock, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("udt: listen %s: %w", address, err)
	}
	rcvBuf, sndBuf := tuneUDPBuffers(sock)
	return listenOn(sock, cfg, rcvBuf, sndBuf)
}

// Addr returns the listening transport address.
func (l *Listener) Addr() net.Addr { return l.sock.LocalAddr() }

// Accept blocks for the next incoming connection.
func (l *Listener) Accept() (*Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

// Close stops the listener and closes every accepted connection.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	conns := make([]*Conn, 0, len(l.conns))
	for _, c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	close(l.done)
	for _, c := range conns {
		c.Close() //nolint:errcheck
	}
	return l.sock.Close()
}

func (l *Listener) writeTo(b []byte, addr net.Addr) (int, error) {
	return l.sock.WriteTo(b, addr)
}

// readLoop demultiplexes every datagram on the shared transport.
func (l *Listener) readLoop() {
	buf := make([]byte, 65536)
	for i := 0; ; i++ {
		if i%16 == 0 {
			l.sock.SetReadDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
		}
		n, from, err := l.sock.ReadFrom(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				select {
				case <-l.done:
					return
				default:
					continue
				}
			}
			return
		}
		key := from.String()
		l.mu.Lock()
		conn := l.conns[key]
		l.mu.Unlock()
		if conn != nil {
			conn.handleDatagram(buf[:n])
			continue
		}
		l.maybeHandshake(buf[:n], from)
	}
}

// maybeHandshake answers a connection request from an unknown peer.
func (l *Listener) maybeHandshake(raw []byte, from net.Addr) {
	if !packet.IsControl(raw) {
		return
	}
	ctrl, err := packet.DecodeControl(raw)
	if err != nil || ctrl.Type != packet.TypeHandshake {
		return
	}
	hs, err := packet.DecodeHandshake(ctrl)
	if err != nil || hs.ReqType != 1 || hs.Version != packet.Version {
		return
	}
	key := from.String()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	isn, dup := l.pending[key]
	if !dup {
		isn = l.cfg.randInt31() & seqno.Max
		l.pending[key] = isn
	}
	cfg := l.cfg
	if int(hs.MSS) < cfg.MSS && hs.MSS >= 96 {
		cfg.MSS = int(hs.MSS)
	}
	if int(hs.FlowWindow) < cfg.MaxFlowWindow && hs.FlowWindow > 0 {
		cfg.MaxFlowWindow = int(hs.FlowWindow)
	}
	var conn *Conn
	if !dup {
		peer := key
		conn = newConn(cfg, l, func() { l.forget(peer) }, l.sock.LocalAddr(), from, isn, hs.InitSeq)
		conn.udpRcvBuf, conn.udpSndBuf = l.udpRcvBuf, l.udpSndBuf
		l.conns[key] = conn
	}
	l.mu.Unlock()

	resp := packet.Handshake{
		Version:    packet.Version,
		SockType:   0,
		InitSeq:    isn,
		MSS:        int32(cfg.MSS),
		FlowWindow: int32(cfg.MaxFlowWindow),
		ReqType:    -1,
		ConnID:     hs.ConnID,
	}
	out := make([]byte, 64)
	if n, err := packet.EncodeHandshake(out, &resp, 0); err == nil {
		l.sock.WriteTo(out[:n], from) //nolint:errcheck // client retries on loss
	}
	if conn != nil {
		select {
		case l.backlog <- conn:
		default:
			// Backlog overflow: drop the connection; the peer's handshake
			// retries will find the slot again after forget().
			conn.Close() //nolint:errcheck
		}
	}
}

// forget removes a torn-down connection from the demultiplexer.
func (l *Listener) forget(key string) {
	l.mu.Lock()
	delete(l.conns, key)
	delete(l.pending, key)
	l.mu.Unlock()
}
