//go:build !linux

package udt

import "net"

// socketBufferSizes reports the kernel socket buffer sizes when the
// platform can read them back; this stub returns zeros elsewhere.
func socketBufferSizes(*net.UDPConn) (rcv, snd int) { return 0, 0 }

// Only Linux's SO_REUSEPORT load-balances datagrams by flow hash, so
// socket groups degrade to a single socket everywhere else;
// listenUDPReusePort is never reached but keeps the call site portable.
const reusePortSupported = false

func listenUDPReusePort(laddr *net.UDPAddr) (*net.UDPConn, error) {
	return net.ListenUDP("udp", laddr)
}
