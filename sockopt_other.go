//go:build !linux

package udt

import "net"

// socketBufferSizes reports the kernel socket buffer sizes when the
// platform can read them back; this stub returns zeros elsewhere.
func socketBufferSizes(*net.UDPConn) (rcv, snd int) { return 0, 0 }
