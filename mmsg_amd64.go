//go:build linux && amd64

package udt

// recvmmsg/sendmmsg syscall numbers for linux/amd64. The frozen syscall
// package predates sendmmsg (kernel 3.0), so both are spelled out here.
// sendmsg is listed too: the GSO path submits its segment trains through a
// raw sendmsg so the UDP_SEGMENT control message rides along.
const (
	sysRECVMMSG = 299
	sysSENDMMSG = 307
	sysSENDMSG  = 46
)
