//go:build linux && amd64

package udt

// recvmmsg/sendmmsg syscall numbers for linux/amd64. The frozen syscall
// package predates sendmmsg (kernel 3.0), so both are spelled out here.
const (
	sysRECVMMSG = 299
	sysSENDMMSG = 307
)
