package udt

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

// pairOver establishes a client/server pair through the given address
// (usually the listener's, or an impairment proxy's).
func pair(t *testing.T, cfg *Config) (client, server *Conn, ln *Listener) {
	t.Helper()
	ln, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var srv *Conn
	var srvErr error
	done := make(chan struct{})
	go func() {
		srv, srvErr = ln.Accept()
		close(done)
	}()
	cli, err := Dial(ln.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("accept timeout")
	}
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	t.Cleanup(func() { srv.Close() })
	return cli, srv, ln
}

func TestLoopbackSmallTransfer(t *testing.T) {
	cli, srv, _ := pair(t, nil)
	msg := []byte("hello, high performance world")
	go func() {
		cli.Write(msg)
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(srv, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

func TestLoopbackBulkTransfer(t *testing.T) {
	cli, srv, _ := pair(t, nil)
	const size = 8 << 20 // 8 MiB
	data := make([]byte, size)
	rand.New(rand.NewSource(1)).Read(data)
	wantSum := sha256.Sum256(data)

	go func() {
		if _, err := cli.Write(data); err != nil {
			t.Error(err)
		}
	}()
	h := sha256.New()
	if _, err := io.CopyN(h, srv, size); err != nil {
		t.Fatal(err)
	}
	var gotSum [32]byte
	copy(gotSum[:], h.Sum(nil))
	if gotSum != wantSum {
		t.Fatal("checksum mismatch")
	}
	st := cli.Stats()
	if st.PktsSent == 0 || st.ACKsRecv == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestBidirectional(t *testing.T) {
	cli, srv, _ := pair(t, nil)
	a := make([]byte, 1<<20)
	b := make([]byte, 1<<20)
	rand.New(rand.NewSource(2)).Read(a)
	rand.New(rand.NewSource(3)).Read(b)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); cli.Write(a) }()
	go func() { defer wg.Done(); srv.Write(b) }()
	gotA := make([]byte, len(a))
	gotB := make([]byte, len(b))
	var rg sync.WaitGroup
	rg.Add(2)
	var errA, errB error
	go func() { defer rg.Done(); _, errA = io.ReadFull(srv, gotA) }()
	go func() { defer rg.Done(); _, errB = io.ReadFull(cli, gotB) }()
	wg.Wait()
	rg.Wait()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if !bytes.Equal(gotA, a) || !bytes.Equal(gotB, b) {
		t.Fatal("bidirectional corruption")
	}
}

func TestCloseGivesEOF(t *testing.T) {
	cli, srv, _ := pair(t, nil)
	go func() {
		cli.Write([]byte("bye"))
		time.Sleep(200 * time.Millisecond) // let it drain
		cli.Close()
	}()
	got, err := io.ReadAll(srv)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(got) != "bye" {
		t.Fatalf("got %q", got)
	}
}

func TestDialNoListener(t *testing.T) {
	cfg := &Config{HandshakeTimeout: 500 * time.Millisecond}
	if _, err := Dial("127.0.0.1:1", cfg); err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestMultipleConnsOneListener(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	const n = 4
	var wg sync.WaitGroup
	wg.Add(n)
	go func() {
		for i := 0; i < n; i++ {
			c, err := ln.Accept()
			if err != nil {
				t.Error(err)
				return
			}
			go func() {
				defer wg.Done()
				defer c.Close()
				buf, err := io.ReadAll(c)
				if err != nil || len(buf) != 1000 {
					t.Errorf("server read: %v %d", err, len(buf))
				}
			}()
		}
	}()
	for i := 0; i < n; i++ {
		c, err := Dial(ln.Addr().String(), nil)
		if err != nil {
			t.Fatal(err)
		}
		c.Write(make([]byte, 1000))
		time.Sleep(100 * time.Millisecond)
		c.Close()
	}
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(10 * time.Second):
		t.Fatal("servers did not finish")
	}
}

func TestMSSNegotiation(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", &Config{MSS: 500})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		io.Copy(io.Discard, c)
	}()
	cli, err := Dial(ln.Addr().String(), &Config{MSS: 1472})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if cli.cfg.MSS != 500 {
		t.Fatalf("negotiated MSS %d, want 500", cli.cfg.MSS)
	}
	if _, err := cli.Write(make([]byte, 10000)); err != nil {
		t.Fatal(err)
	}
}

// lossyProxy forwards UDP datagrams between a client and a server address,
// dropping and duplicating according to the configured rates — the
// impairment shim for failure-injection tests.
type lossyProxy struct {
	t          *testing.T
	sock       *net.UDPConn
	serverAddr *net.UDPAddr
	mu         sync.Mutex
	clientAddr *net.UDPAddr
	rng        *rand.Rand
	dropRate   float64
	dupRate    float64
	dropped    int
	stop       chan struct{}
}

func newLossyProxy(t *testing.T, serverAddr string, dropRate, dupRate float64) *lossyProxy {
	t.Helper()
	saddr, err := net.ResolveUDPAddr("udp", serverAddr)
	if err != nil {
		t.Fatal(err)
	}
	sock, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	p := &lossyProxy{
		t: t, sock: sock, serverAddr: saddr,
		rng: rand.New(rand.NewSource(7)), dropRate: dropRate, dupRate: dupRate,
		stop: make(chan struct{}),
	}
	go p.run()
	t.Cleanup(func() { close(p.stop); sock.Close() })
	return p
}

func (p *lossyProxy) addr() string { return p.sock.LocalAddr().String() }

func (p *lossyProxy) run() {
	buf := make([]byte, 65536)
	for {
		p.sock.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		n, from, err := p.sock.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-p.stop:
				return
			default:
				continue
			}
		}
		p.mu.Lock()
		fromServer := udpAddrEqual(from, p.serverAddr)
		if !fromServer {
			p.clientAddr = from
		}
		dst := p.serverAddr
		if fromServer {
			dst = p.clientAddr
		}
		drop := p.rng.Float64() < p.dropRate
		dup := p.rng.Float64() < p.dupRate
		if drop {
			p.dropped++
		}
		p.mu.Unlock()
		if dst == nil || drop {
			continue
		}
		p.sock.WriteToUDP(buf[:n], dst)
		if dup {
			p.sock.WriteToUDP(buf[:n], dst)
		}
	}
}

func TestTransferThroughLossyPath(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	proxy := newLossyProxy(t, ln.Addr().String(), 0.02, 0.01) // 2% loss, 1% dup
	const size = 2 << 20
	data := make([]byte, size)
	rand.New(rand.NewSource(4)).Read(data)

	srvDone := make(chan error, 1)
	var got []byte
	go func() {
		c, err := ln.Accept()
		if err != nil {
			srvDone <- err
			return
		}
		defer c.Close()
		got, err = io.ReadAll(c)
		srvDone <- err
	}()

	cli, err := Dial(proxy.addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Write(data); err != nil {
		t.Fatal(err)
	}
	// Wait for full delivery before closing (shutdown is abrupt).
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if cli.Stats().PktsSent > 0 && cli.Drained() {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	cli.Close()
	if err := <-srvDone; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("lossy transfer corrupted: got %d bytes, want %d", len(got), len(data))
	}
	st := cli.Stats()
	if st.PktsRetrans == 0 {
		t.Fatal("expected retransmissions through a 2% lossy path")
	}
	proxy.mu.Lock()
	dropped := proxy.dropped
	proxy.mu.Unlock()
	if dropped == 0 {
		t.Fatal("proxy dropped nothing; test is vacuous")
	}
}

func TestPeerDeathDetected(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	proxy := newLossyProxy(t, ln.Addr().String(), 0, 0)
	accepted := make(chan *Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cfg := &Config{}
	cli, err := Dial(proxy.addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv := <-accepted
	defer srv.Close()
	// Sever the path completely: the connection must break via EXP.
	proxy.mu.Lock()
	proxy.dropRate = 1.0
	proxy.mu.Unlock()
	go cli.Write(make([]byte, 100000))

	buf := make([]byte, 4096)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := srv.Read(buf); err != nil {
			break // broken or closed
		}
		if time.Now().After(deadline) {
			t.Fatal("server read never failed after path severed")
		}
	}
}

func TestStatsSnapshot(t *testing.T) {
	cli, srv, _ := pair(t, nil)
	go cli.Write(make([]byte, 100000))
	buf := make([]byte, 100000)
	io.ReadFull(srv, buf)
	st := cli.Stats()
	if st.BytesSent == 0 {
		t.Fatal("BytesSent = 0")
	}
	if st.RTT <= 0 || st.RTT > 5*time.Second {
		t.Fatalf("RTT = %v", st.RTT)
	}
	sst := srv.Stats()
	if sst.BytesRecv == 0 || sst.ACKsSent == 0 {
		t.Fatalf("server stats: %+v", sst)
	}
}

func TestGarbageDatagramsIgnored(t *testing.T) {
	cli, srv, ln := pair(t, nil)
	// Blast garbage at the listener socket from a stranger.
	junk, err := net.Dial("udp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer junk.Close()
	for i := 0; i < 50; i++ {
		junk.Write([]byte{0x80, 0xFF, 0xAA})
		junk.Write(make([]byte, 3))
		junk.Write(make([]byte, 2000))
	}
	msg := []byte("still alive")
	go cli.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(srv, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("transfer corrupted by garbage datagrams")
	}
}

func TestConcurrentWriters(t *testing.T) {
	cli, srv, _ := pair(t, nil)
	// Two goroutines writing disjoint markers: total byte count must match
	// (interleaving granularity is Write-call level, content may interleave).
	const each = 200_000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); cli.Write(bytes.Repeat([]byte{'a'}, each)) }()
	go func() { defer wg.Done(); cli.Write(bytes.Repeat([]byte{'b'}, each)) }()
	got := make([]byte, 2*each)
	if _, err := io.ReadFull(srv, got); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	var na, nb int
	for _, c := range got {
		switch c {
		case 'a':
			na++
		case 'b':
			nb++
		}
	}
	if na != each || nb != each {
		t.Fatalf("byte counts: a=%d b=%d", na, nb)
	}
}

func TestAddrAccessors(t *testing.T) {
	cli, srv, ln := pair(t, nil)
	if cli.RemoteAddr().String() != ln.Addr().String() {
		t.Fatalf("client remote %v, listener %v", cli.RemoteAddr(), ln.Addr())
	}
	if srv.LocalAddr() == nil || cli.LocalAddr() == nil {
		t.Fatal("nil local addrs")
	}
	if fmt.Sprint(srv.RemoteAddr()) == "" {
		t.Fatal("empty server remote addr")
	}
}
