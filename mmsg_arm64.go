//go:build linux && arm64

package udt

// recvmmsg/sendmmsg/sendmsg syscall numbers for linux/arm64 (asm-generic
// table). sendmsg carries the GSO path's UDP_SEGMENT control message.
const (
	sysRECVMMSG = 243
	sysSENDMMSG = 269
	sysSENDMSG  = 211
)
