//go:build linux && arm64

package udt

// recvmmsg/sendmmsg syscall numbers for linux/arm64 (asm-generic table).
const (
	sysRECVMMSG = 243
	sysSENDMMSG = 269
)
