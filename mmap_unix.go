//go:build linux || darwin

package udt

import (
	"fmt"
	"syscall"
)

// mmapFile maps length bytes of the file behind fd read-only. The
// mapping is the zero-copy source for SendFileZC: send-buffer slots
// alias it directly, so file bytes go from page cache to socket without
// ever being copied into protocol buffers (§4.3, applied to the send
// side). MAP_SHARED keeps the mapping backed by the page cache rather
// than forcing private copies on first touch.
func mmapFile(fd uintptr, length int64) ([]byte, error) {
	if length <= 0 {
		return nil, fmt.Errorf("udt: mmap: invalid length %d", length)
	}
	if length != int64(int(length)) {
		return nil, fmt.Errorf("udt: mmap: file too large for address space (%d bytes)", length)
	}
	return syscall.Mmap(int(fd), 0, int(length), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping from mmapFile; nil and already-unmapped
// slices are ignored.
func munmapFile(m []byte) error {
	if m == nil {
		return nil
	}
	return syscall.Munmap(m)
}
