package udt

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"udt/fabric"
)

// This file is the flow-scale stress rig: many concurrent connections
// multiplexed over ONE in-memory socket pair (the fabric package's pipe
// adapter), exercising the shared scheduler (pool.go + internal/
// timerwheel) in the regime it was built for — goroutine count O(shards),
// not O(flows). TestFlowScaleSmall is the
// tier-1 gate (a few thousand flows, asserts the goroutine bound);
// BenchmarkFlowScale100k is the headline 100k-flow run behind scripts/
// bench.sh, reporting goodput, p99 write→acked latency, allocs/packet and
// peak goroutines. EXPERIMENTS.md walks through running and reading it.

// flowScaleConfig is the stress rig's endpoint configuration: small
// packets and buffers so memory stays flat at 100k flows, telemetry off
// (a perfmon ring per flow would dominate the footprint), and a deep EXP
// floor so established-but-idle flows park on the wheel for seconds at a
// time — the regime the shared scheduler exists for.
func flowScaleConfig(minEXP time.Duration) *Config {
	return &Config{
		MSS:              256,
		SndBuf:           16,
		RcvBuf:           16,
		MaxFlowWindow:    16,
		BatchSize:        4,
		PerfHistory:      -1,
		MinEXPInterval:   minEXP,
		PeerDeathTimeout: 10 * minEXP,
	}
}

// flowScaleResult is one stress run's record, mirrored (via scripts/
// bench.sh) into BENCH_baseline.json.
type flowScaleResult struct {
	flows          int
	goodputMbps    float64
	p99AckLatency  time.Duration
	allocsPerPkt   float64
	peakGoroutines int
	drops          int64
}

// runFlowScale dials `flows` connections from one client Mux to one
// listener over a shared in-memory socket pair, with `dialers` worker
// goroutines each owning an equal slice of flows: dial, write one payload,
// wait until every byte is acknowledged, record the write→acked latency,
// then leave the flow open and idle. Established flows accumulate on the
// scheduler, so by the tail of the run the wheels hold (flows) parked
// state machines while new handshakes and transfers still make progress.
func runFlowScale(t testing.TB, flows, dialers int, minEXP time.Duration) flowScaleResult {
	cfg := flowScaleConfig(minEXP)
	cEnd, sEnd := fabric.NewPipe(fabric.PipeConfig{Depth: 1 << 16})
	ln, err := ListenOn(sEnd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMux(cEnd, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var accepted sync.Map // *Conn -> struct{}
	var nAccepted atomic.Int64
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted.Store(c, struct{}{})
			nAccepted.Add(1)
		}
	}()

	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i * 31)
	}

	conns := make([]*Conn, flows)
	lat := make([]time.Duration, flows)
	var setupErr atomic.Value

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()

	var wg sync.WaitGroup
	per := (flows + dialers - 1) / dialers
	for d := 0; d < dialers; d++ {
		lo, hi := d*per, min((d+1)*per, flows)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				c, err := m.Dial(fabric.Addr("pipe-b"))
				if err != nil {
					setupErr.Store(fmt.Errorf("dial %d: %w", i, err))
					return
				}
				conns[i] = c
				t0 := time.Now()
				if _, err := c.Write(payload); err != nil {
					setupErr.Store(fmt.Errorf("write %d: %w", i, err))
					return
				}
				if err := c.waitAcked(); err != nil {
					setupErr.Store(fmt.Errorf("drain %d: %w", i, err))
					return
				}
				lat[i] = time.Since(t0)
			}
		}(lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	if err, _ := setupErr.Load().(error); err != nil {
		t.Fatal(err)
	}

	// Everything is parked now; the live goroutine count is the scheduler's
	// whole footprint: two pool shard sets, two read loops, the accept
	// drainer and the test harness — O(shards + sockets), not O(flows).
	liveGoroutines := runtime.NumGoroutine()
	res := flowScaleResult{flows: flows}
	res.peakGoroutines = int(peakGoroutines.Load())
	res.goodputMbps = float64(flows) * float64(len(payload)) * 8 / elapsed.Seconds() / 1e6
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res.p99AckLatency = lat[flows*99/100]
	var pkts int64
	for _, c := range conns {
		pkts += c.core.Stats.PktsSent + c.core.Stats.PktsRecv
	}
	if pkts > 0 {
		res.allocsPerPkt = float64(ms1.Mallocs-ms0.Mallocs) / float64(pkts)
	}
	res.drops = cEnd.Drops() + sEnd.Drops()

	if liveGoroutines > 64+dialers {
		t.Errorf("flow scale: %d live goroutines with %d flows parked; want O(shards+sockets)",
			liveGoroutines, flows)
	}
	if got := int(nAccepted.Load()); got != flows {
		t.Errorf("accepted %d flows, dialed %d", got, flows)
	}

	// Spot-check integrity: the server side must hold every payload byte,
	// intact, in its receive buffers.
	check := flows / 100
	if check < 8 {
		check = 8
	}
	got := make([]byte, len(payload))
	checked := 0
	accepted.Range(func(k, _ any) bool {
		c := k.(*Conn)
		n, err := readFull(c, got)
		if err != nil || n != len(payload) || !bytes.Equal(got, payload) {
			t.Errorf("server flow payload mismatch: n=%d err=%v", n, err)
		}
		checked++
		return checked < check
	})

	for _, c := range conns {
		if c != nil {
			c.Close() //nolint:errcheck
		}
	}
	m.Close()  //nolint:errcheck
	ln.Close() //nolint:errcheck
	<-acceptDone
	return res
}

// readFull reads exactly len(p) bytes (the data is already buffered, so
// this does not block in practice).
func readFull(c *Conn, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := c.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// TestMuxDialTimeoutOnWheel pins the pendingDial rework: handshake
// retransmission and expiry now ride the scheduler shard's timing wheel
// (no per-dial runtime timer or ticker), and a burst of dials to a silent
// peer must all die with ErrTimeout at the configured deadline.
func TestMuxDialTimeoutOnWheel(t *testing.T) {
	cEnd, _ := fabric.NewPipe(fabric.PipeConfig{Depth: 8}) // server end never read: requests vanish
	cfg := &Config{HandshakeTimeout: 400 * time.Millisecond}
	m, err := NewMux(cEnd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close() //nolint:errcheck

	const dials = 16
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, dials)
	for i := 0; i < dials; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = m.Dial(fabric.Addr("pipe-b"))
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != ErrTimeout {
			t.Fatalf("dial %d: err = %v, want ErrTimeout", i, err)
		}
	}
	if elapsed < 350*time.Millisecond || elapsed > 3*time.Second {
		t.Fatalf("dial burst timed out after %v, configured 400ms", elapsed)
	}
}

// TestMuxCloseAbortsPendingDial covers the detach-versus-pool-close race:
// a dial parked on the wheel must return ErrClosed promptly when its Mux
// closes underneath it, even though Close stops the shard workers the
// pending handshake is scheduled on.
func TestMuxCloseAbortsPendingDial(t *testing.T) {
	cEnd, _ := fabric.NewPipe(fabric.PipeConfig{Depth: 8})
	cfg := &Config{HandshakeTimeout: 30 * time.Second}
	m, err := NewMux(cEnd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := m.Dial(fabric.Addr("pipe-b"))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	m.Close() //nolint:errcheck
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending dial not aborted by Mux.Close")
	}
}

// TestFlowScaleSmall is the tier-1 slice of the stress rig: a few thousand
// flows over one socket pair, asserting the scheduler's goroutine bound
// and end-to-end integrity. The full 100k run lives in
// BenchmarkFlowScale100k.
func TestFlowScaleSmall(t *testing.T) {
	flows := 2000
	if testing.Short() {
		flows = 300
	}
	res := runFlowScale(t, flows, 32, time.Second)
	t.Logf("flows=%d goodput=%.1f Mbps p99(write→acked)=%v allocs/pkt=%.2f peak goroutines=%d drops=%d",
		res.flows, res.goodputMbps, res.p99AckLatency, res.allocsPerPkt, res.peakGoroutines, res.drops)
	if res.p99AckLatency <= 0 {
		t.Fatal("no latency samples recorded")
	}
}

// BenchmarkFlowScale100k is the headline 100k-concurrent-flow stress run.
// One iteration dials 100 000 flows over a single in-memory socket pair,
// pushes 1 KB through each, and reports the four scale metrics; see
// EXPERIMENTS.md ("The 100k-flow stress bench") for how to run and read
// it. It is deliberately heavyweight (tens of seconds on one CPU) — run
// it via scripts/bench.sh or with -bench=FlowScale100k -benchtime=1x.
func BenchmarkFlowScale100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runFlowScale(b, 100_000, 64, 2*time.Second)
		b.ReportMetric(res.goodputMbps, "goodput-Mbps")
		b.ReportMetric(float64(res.p99AckLatency.Microseconds()), "p99-ack-µs")
		b.ReportMetric(res.allocsPerPkt, "allocs/pkt")
		b.ReportMetric(float64(res.peakGoroutines), "peak-goroutines")
	}
}
