package udt

import (
	"encoding/binary"
	"net"

	"udt/internal/packet"
	"udt/internal/secure"
)

// hsBufSize is the encode buffer size for handshake packets: the control
// header plus the largest (secure) body, rounded up.
const hsBufSize = 128

// secFlags derives the handshake SecFlags a Config advertises: the
// authentication option whenever a PSK is set, plus the AEAD request when
// the sealed data channel is wanted.
func (c *Config) secFlags() uint32 {
	if len(c.PSK) == 0 {
		return 0
	}
	f := secure.FlagAuth
	if c.AEAD {
		f |= secure.FlagAEAD
	}
	return f
}

// fillNonce draws a 16-byte key-derivation nonce from the endpoint's
// handshake randomness source. The nonce travels in the clear — it is a
// key-separation salt, not a secret — but it must be unique per
// connection under one PSK, or two sessions would derive identical keys
// and reuse the ChaCha20 keystream.
func fillNonce(n *[16]byte, randInt31 func() int32) {
	for i := 0; i < 16; i += 4 {
		binary.LittleEndian.PutUint32(n[i:], uint32(randInt31()))
	}
}

// signHandshake computes the authenticator over an encoded handshake
// packet in place: HMAC over the body prefix (header timestamp excluded)
// bound to the peer's nonce, written into the packet's MAC field.
func signHandshake(k *secure.Keys, pkt []byte, peerNonce []byte) error {
	input, mac, err := packet.HandshakeMACInput(pkt)
	if err != nil {
		return err
	}
	sum := k.HandshakeMAC(input, peerNonce)
	copy(mac, sum[:])
	return nil
}

// signHandshakeHS computes the authenticator for a handshake that will be
// (re-)encoded later — e.g. the pinned response a listener replays to
// duplicate requests — and stores it in hs.MAC. The codec is canonical and
// the control-header timestamp is outside MAC coverage, so any later
// encoding of hs carries a valid authenticator.
func signHandshakeHS(k *secure.Keys, hs *packet.Handshake, peerNonce []byte) error {
	hs.MAC = [32]byte{}
	var buf [hsBufSize]byte
	n, err := packet.EncodeHandshake(buf[:], hs, 0)
	if err != nil {
		return err
	}
	input, _, err := packet.HandshakeMACInput(buf[:n])
	if err != nil {
		return err
	}
	hs.MAC = k.HandshakeMAC(input, peerNonce)
	return nil
}

// verifyHandshakeRaw checks the authenticator of a received handshake
// packet against its own bytes — the zero-copy server-side check, run
// before any connection state exists. Allocation-free.
func verifyHandshakeRaw(k *secure.Keys, raw []byte, peerNonce []byte) bool {
	input, mac, err := packet.HandshakeMACInput(raw)
	if err != nil {
		return false
	}
	return k.VerifyHandshakeMAC(input, peerNonce, mac)
}

// verifyHandshakeHS checks the authenticator of a decoded handshake by
// re-encoding it canonically (the codec is canonical: decode∘encode is the
// identity on valid packets, which the packet fuzz target pins). It serves
// the client side, where the response reaches the dialing goroutine
// already decoded.
func verifyHandshakeHS(k *secure.Keys, hs *packet.Handshake, peerNonce []byte) bool {
	cp := *hs
	mac := cp.MAC
	cp.MAC = [32]byte{}
	var buf [hsBufSize]byte
	n, err := packet.EncodeHandshake(buf[:], &cp, 0)
	if err != nil {
		return false
	}
	input, _, err := packet.HandshakeMACInput(buf[:n])
	if err != nil {
		return false
	}
	return k.VerifyHandshakeMAC(input, peerNonce, mac[:])
}

// cookieAddr renders a transport address into dst for cookie keying: IP
// bytes plus port for UDP (the overwhelmingly common case, alloc-free
// when dst is a stack buffer), the String() form for other fabrics. Only
// the source address is bound — the cookie proves reachability, nothing
// more.
func cookieAddr(dst []byte, a net.Addr) []byte {
	if u, ok := a.(*net.UDPAddr); ok {
		dst = append(dst, u.IP...)
		return append(dst, byte(u.Port), byte(u.Port>>8))
	}
	return append(dst, a.String()...)
}

// grantAEAD resolves the sealed-data-channel negotiation: on iff both
// sides asked for it.
func grantAEAD(local, remote uint32) bool {
	return local&secure.FlagAEAD != 0 && remote&secure.FlagAEAD != 0
}
