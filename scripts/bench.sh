#!/bin/sh
# bench.sh — run the performance-regression benchmark suite and emit a JSON
# snapshot comparable against BENCH_baseline.json (via scripts/benchdiff).
# Every run is also appended as a {"ts": ..., "metrics": {...}} row to
# BENCH_history.jsonl, so regressions can be bisected against the timeline,
# not just the pinned baseline.
#
# Tracked numbers:
#   sim_ns_per_event / sim_allocs_per_event   concrete-heap simulator, full
#                                             link hot path (BenchmarkSimEvents)
#   sim_heap_baseline_ns_per_event            container/heap + closure replica
#                                             (BenchmarkSimEventsContainerHeap);
#                                             the ratio to sim_ns_per_event is
#                                             the representation speedup and
#                                             must stay >= 1.5
#   send_ns_per_packet / send_allocs_per_packet  real transport send path with
#                                             a stub socket (BenchmarkSenderPacket)
#   send_traced_ns_per_packet / send_traced_allocs_per_packet  same path with
#                                             a telemetry ring attached
#                                             (BenchmarkSenderPacketTraced);
#                                             allocs must stay exactly zero
#   loopback_mbps                             memory-to-memory UDP loopback
#                                             transfer over the bare
#                                             sendmmsg path (BenchmarkFig14CPU,
#                                             offload disabled)
#   loopback_gso_mbps / syscalls_per_packet   same transfer with UDP_SEGMENT/
#                                             UDP_GRO offload live
#                                             (BenchmarkLoopbackGSO); on kernels
#                                             without offload this converges to
#                                             loopback_mbps with ~1/batch
#                                             syscalls per packet
#   aead_mbps                                 the offloaded transfer again with
#                                             Secure UDT fully on — PSK
#                                             handshake + sealed
#                                             ChaCha20-Poly1305 data channel
#                                             (BenchmarkLoopbackAEAD); the gap
#                                             to loopback_gso_mbps is the
#                                             crypto tax
#   handshake_auth_us                         listener-side authenticated
#                                             handshake compute: cookie check,
#                                             MAC verify + sign, session-key
#                                             derivation (BenchmarkHandshakeAuth,
#                                             reported in µs)
#   reuseport_4shard_mbps                     aggregate goodput of 4 flows into
#                                             a 4-socket SO_REUSEPORT listener
#                                             group (BenchmarkLoopbackReusePort4);
#                                             scales with cores, not on 1-CPU
#                                             machines
#   sendfile_zc_mbps                          mmap-backed zero-copy file send
#                                             (BenchmarkSendFileZC)
#   mux_demux_ns_per_packet / mux_demux_allocs_per_packet  shared-socket
#                                             socket-ID dispatch, one flow
#                                             (BenchmarkMuxDemux); allocs must
#                                             stay exactly zero
#   mux_demux_4096flows_ns_per_packet         same dispatch with 4096 flows
#                                             resident on the socket
#                                             (BenchmarkMuxDemuxFlows)
#   flowscale_100k_goodput_mbps               aggregate goodput of 100 000
#   flowscale_100k_p99_ack_us                 flows dialed over ONE in-memory
#   flowscale_100k_allocs_per_packet          socket pair, 1 KB pushed through
#   flowscale_100k_peak_goroutines            each (BenchmarkFlowScale100k):
#                                             goodput, p99 write→acked latency,
#                                             allocs per packet, and the peak
#                                             process goroutine count — which
#                                             must stay O(shards + sockets),
#                                             not O(flows); see EXPERIMENTS.md
#   framed_mbps                               full transfers through the
#                                             fabric.Framed stream adapter over
#                                             a TCP loopback connection
#                                             (BenchmarkFramedThroughput)
#   rdv_handshake_p50_us                      median rendezvous crossing
#                                             latency — both sides dialing to
#                                             established connection over an
#                                             in-process pipe
#                                             (BenchmarkRendezvousHandshake;
#                                             median so a rare lost-crossing
#                                             250 ms retransmit outlier does
#                                             not swamp the figure)
#   campaign_<name>_*                         the CI topology campaigns
#                                             (udtchaos -campaign -kv): per-
#                                             campaign aggregate/min goodput,
#                                             Jain fairness index, pooled p99
#                                             write→acked latency and completed
#                                             flow count. Virtual-clock
#                                             deterministic — identical on
#                                             every machine for a given seed,
#                                             so benchdiff holds them to 0.1%.
set -eu
cd "$(dirname "$0")/.."
out="${1:-/dev/stdout}"

sim=$(go test ./internal/netsim -run XXX -bench 'SimEvents$' -benchtime 2s 2>/dev/null | awk '/^BenchmarkSimEvents/ {print $3, $7}')
old=$(go test ./internal/netsim -run XXX -bench 'SimEventsContainerHeap$' -benchtime 2s 2>/dev/null | awk '/^BenchmarkSimEventsContainerHeap/ {print $3}')
snd=$(go test . -run XXX -bench 'SenderPacket$' -benchtime 2s 2>/dev/null | awk '/^BenchmarkSenderPacket/ {print $3, $7}')
sndtr=$(go test . -run XXX -bench 'SenderPacketTraced$' -benchtime 2s 2>/dev/null | awk '/^BenchmarkSenderPacketTraced/ {print $3, $7}')
mbps=$(go test . -run XXX -bench 'Fig14CPU$' -benchtime 1x 2>/dev/null | awk '/^BenchmarkFig14CPU/ {for (i = 1; i < NF; i++) if ($(i+1) == "Mbps") print $i}')
gso=$(go test . -run XXX -bench 'LoopbackGSO$' -benchtime 1x 2>/dev/null | awk '/^BenchmarkLoopbackGSO/ {m = s = "null"; for (i = 1; i < NF; i++) { if ($(i+1) == "Mbps") m = $i; if ($(i+1) == "syscalls/pkt") s = $i } print m, s}')
aead=$(go test . -run XXX -bench 'LoopbackAEAD$' -benchtime 1x 2>/dev/null | awk '/^BenchmarkLoopbackAEAD/ {for (i = 1; i < NF; i++) if ($(i+1) == "Mbps") print $i}')
hsauth=$(go test ./internal/secure -run XXX -bench 'HandshakeAuth$' -benchtime 2s 2>/dev/null | awk '/^BenchmarkHandshakeAuth/ {printf "%.3f\n", $3 / 1000}')
rp=$(go test . -run XXX -bench 'LoopbackReusePort4$' -benchtime 1x 2>/dev/null | awk '/^BenchmarkLoopbackReusePort4/ {for (i = 1; i < NF; i++) if ($(i+1) == "Mbps") print $i}')
zc=$(go test . -run XXX -bench 'SendFileZC$' -benchtime 1x 2>/dev/null | awk '/^BenchmarkSendFileZC/ {for (i = 1; i < NF; i++) if ($(i+1) == "Mbps") print $i}')
mux=$(go test ./internal/mux -run XXX -bench 'MuxDemux$' -benchtime 2s 2>/dev/null | awk '/^BenchmarkMuxDemux/ {print $3, $7}')
muxwide=$(go test ./internal/mux -run XXX -bench 'MuxDemuxFlows/flows=4096$' -benchtime 2s 2>/dev/null | awk '/^BenchmarkMuxDemuxFlows/ {print $3}')
scale=$(go test . -run XXX -bench 'FlowScale100k$' -benchtime 1x -timeout 30m 2>/dev/null | awk '/^BenchmarkFlowScale100k/ {g = p = a = k = "null"; for (i = 1; i < NF; i++) { if ($(i+1) == "goodput-Mbps") g = $i; if ($(i+1) == "p99-ack-µs") p = $i; if ($(i+1) == "allocs/pkt") a = $i; if ($(i+1) == "peak-goroutines") k = $i } print g, p, a, k}')
framed=$(go test ./fabric -run XXX -bench 'FramedThroughput$' -benchtime 2s 2>/dev/null | awk '/^BenchmarkFramedThroughput/ {for (i = 1; i < NF; i++) if ($(i+1) == "Mbps") print $i}')
rdv=$(go test . -run XXX -bench 'RendezvousHandshake$' -benchtime 50x 2>/dev/null | awk '/^BenchmarkRendezvousHandshake/ {for (i = 1; i < NF; i++) if ($(i+1) == "p50_us") print $i}')
# The topology campaigns: key/value lines, rendered straight into the JSON
# object below (deterministic under the virtual clock, so fast and exact).
camp=$(go run ./cmd/udtchaos -campaign -kv | awk '/^campaign_/ {printf "  \"%s\": %s,\n", $1, $2}')

set -- $sim; sim_ns=$1; sim_allocs=$2
set -- $snd; snd_ns=$1; snd_allocs=$2
set -- $sndtr; sndtr_ns=$1; sndtr_allocs=$2
set -- $mux; mux_ns=$1; mux_allocs=$2
set -- $gso; gso_mbps=$1; gso_syscalls=$2
set -- $scale; scale_mbps=$1; scale_p99=$2; scale_allocs=$3; scale_peak=$4

snap=$(mktemp)
trap 'rm -f "$snap"' EXIT

cat > "$snap" <<EOF
{
$camp
  "sim_ns_per_event": $sim_ns,
  "sim_allocs_per_event": $sim_allocs,
  "sim_heap_baseline_ns_per_event": $old,
  "send_ns_per_packet": $snd_ns,
  "send_allocs_per_packet": $snd_allocs,
  "send_traced_ns_per_packet": $sndtr_ns,
  "send_traced_allocs_per_packet": $sndtr_allocs,
  "loopback_mbps": $mbps,
  "loopback_gso_mbps": $gso_mbps,
  "syscalls_per_packet": $gso_syscalls,
  "aead_mbps": $aead,
  "handshake_auth_us": $hsauth,
  "reuseport_4shard_mbps": $rp,
  "sendfile_zc_mbps": $zc,
  "mux_demux_ns_per_packet": $mux_ns,
  "mux_demux_allocs_per_packet": $mux_allocs,
  "mux_demux_4096flows_ns_per_packet": $muxwide,
  "flowscale_100k_goodput_mbps": $scale_mbps,
  "flowscale_100k_p99_ack_us": $scale_p99,
  "flowscale_100k_allocs_per_packet": $scale_allocs,
  "flowscale_100k_peak_goroutines": $scale_peak,
  "framed_mbps": $framed,
  "rdv_handshake_p50_us": $rdv
}
EOF

# Emit the snapshot, then append it (one line, timestamped) to the history.
cat "$snap" > "$out"
ts=$(date -u +%Y-%m-%dT%H:%M:%SZ)
printf '{"ts":"%s","metrics":%s}\n' "$ts" "$(tr -d ' \n' < "$snap")" >> BENCH_history.jsonl
