#!/bin/sh
# ci.sh — the repository's gate: vet, build, documentation checks, and every
# test under the race detector. Run it before sending a change.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
# Cross-compile gates: the Linux offload fast path (GSO/GRO, SO_REUSEPORT
# groups, mmap sendfile) must keep the portable stubs compiling on
# platforms that lack it.
GOOS=darwin go build ./...
GOOS=windows go build ./...
# Documentation gates: every exported identifier in the audited packages —
# including the root package (Conn/Mux/pool scheduler APIs) and the shared
# timer wheel — must carry a doc comment, and every relative Markdown link
# must resolve (mdcheck covers DESIGN.md, EXPERIMENTS.md and README.md).
go run ./scripts/doccheck . fabric udtfs internal/campaign internal/congestion internal/core internal/metrics internal/mux internal/netem internal/netem/chaos internal/secure internal/timerwheel internal/timing internal/trace
go run ./scripts/mdcheck
# Fast fail on the concurrency-heavy packages first: the demultiplexer and
# the chaos harness in short mode, before the full (slower) race run.
go test -race -short ./internal/mux ./internal/netem/chaos
go test -race ./...
# Fuzz smoke: the handshake codec — including the security option fields
# an attacker controls pre-authentication — must never panic or over-read,
# and must stay canonical (decode∘encode identity). A short run per pass;
# longer campaigns reuse the accumulated corpus.
go test ./internal/packet -run XXX -fuzz 'FuzzDecodeHandshake' -fuzztime 10s
# The rendezvous trailer rides the same attacker-controlled handshake
# bytes; its codec gets its own smoke run.
go test ./internal/packet -run XXX -fuzz 'FuzzRendezvousTrailer' -fuzztime 10s
# Offload smoke: proves UDP_SEGMENT trains actually flow on capable
# kernels and prints the train/syscall verdict; the test skips itself
# (never fails) where the kernel or container runtime withholds
# segmentation offload.
go test -run 'TestGSOSmoke' -count=1 -v .
# Fault-injection gate: the fixed-seed chaos matrix with determinism replay
# and a real-stack smoke pass (a few seconds under the virtual clock).
go run ./cmd/udtchaos -determinism -real
# Congestion-control gate: every pluggable law through loss plus the
# two-law fairness cells, bit-identical on replay.
go run ./cmd/udtchaos -ccmatrix -determinism
# Campaign gate: the CI topology campaigns — the 100-flow mixed-law dumbbell
# and the 32-flow flash-crowd star — run twice each and must replay
# bit-identically; their headline metrics land in a snapshot for the
# regression gate below.
campmetrics=$(mktemp)
trap 'rm -f "$campmetrics" "$campmetrics.bad"' EXIT
go run ./cmd/udtchaos -campaign -determinism -metrics "$campmetrics"
# Perf-regression gate: benchdiff must pass the fresh campaign metrics
# against the pinned baseline (campaign numbers are virtual-clock
# deterministic, held to 0.1%) ...
go run ./scripts/benchdiff -baseline BENCH_baseline.json -current "$campmetrics"
# ... and must demonstrably FAIL when a goodput regression is injected —
# the gate itself is under test, a benchdiff that passes everything is a
# silent hole in CI.
sed 's/"campaign_dumbbell100_agg_goodput_mbps": [0-9eE.+-]*/"campaign_dumbbell100_agg_goodput_mbps": 1/' "$campmetrics" > "$campmetrics.bad"
if go run ./scripts/benchdiff -baseline BENCH_baseline.json -current "$campmetrics.bad"; then
	echo "ci.sh: benchdiff accepted an injected goodput regression" >&2
	exit 1
fi
