#!/bin/sh
# ci.sh — the repository's gate: vet, build, documentation checks, and every
# test under the race detector. Run it before sending a change.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
# Documentation gates: every exported identifier in the audited packages must
# carry a doc comment, and every relative Markdown link must resolve.
go run ./scripts/doccheck internal/core internal/metrics internal/netem internal/netem/chaos internal/trace
go run ./scripts/mdcheck
go test -race ./...
# Fault-injection gate: the fixed-seed chaos matrix with determinism replay
# and a real-stack smoke pass (a few seconds under the virtual clock).
go run ./cmd/udtchaos -determinism -real
