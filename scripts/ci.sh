#!/bin/sh
# ci.sh — the repository's gate: vet, build, documentation checks, and every
# test under the race detector. Run it before sending a change.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
# Documentation gates: every exported identifier in the audited packages must
# carry a doc comment, and every relative Markdown link must resolve.
go run ./scripts/doccheck internal/core internal/metrics internal/trace
go run ./scripts/mdcheck
go test -race ./...
