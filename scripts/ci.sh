#!/bin/sh
# ci.sh — the repository's gate: vet, build, documentation checks, and every
# test under the race detector. Run it before sending a change.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
# Cross-compile gates: the Linux offload fast path (GSO/GRO, SO_REUSEPORT
# groups, mmap sendfile) must keep the portable stubs compiling on
# platforms that lack it.
GOOS=darwin go build ./...
GOOS=windows go build ./...
# Documentation gates: every exported identifier in the audited packages —
# including the root package (Conn/Mux/pool scheduler APIs) and the shared
# timer wheel — must carry a doc comment, and every relative Markdown link
# must resolve (mdcheck covers DESIGN.md, EXPERIMENTS.md and README.md).
go run ./scripts/doccheck . fabric udtfs internal/congestion internal/core internal/metrics internal/mux internal/netem internal/netem/chaos internal/secure internal/timerwheel internal/timing internal/trace
go run ./scripts/mdcheck
# Fast fail on the concurrency-heavy packages first: the demultiplexer and
# the chaos harness in short mode, before the full (slower) race run.
go test -race -short ./internal/mux ./internal/netem/chaos
go test -race ./...
# Fuzz smoke: the handshake codec — including the security option fields
# an attacker controls pre-authentication — must never panic or over-read,
# and must stay canonical (decode∘encode identity). A short run per pass;
# longer campaigns reuse the accumulated corpus.
go test ./internal/packet -run XXX -fuzz 'FuzzDecodeHandshake' -fuzztime 10s
# The rendezvous trailer rides the same attacker-controlled handshake
# bytes; its codec gets its own smoke run.
go test ./internal/packet -run XXX -fuzz 'FuzzRendezvousTrailer' -fuzztime 10s
# Offload smoke: proves UDP_SEGMENT trains actually flow on capable
# kernels and prints the train/syscall verdict; the test skips itself
# (never fails) where the kernel or container runtime withholds
# segmentation offload.
go test -run 'TestGSOSmoke' -count=1 -v .
# Fault-injection gate: the fixed-seed chaos matrix with determinism replay
# and a real-stack smoke pass (a few seconds under the virtual clock).
go run ./cmd/udtchaos -determinism -real
# Congestion-control gate: every pluggable law through loss plus the
# two-law fairness cells, bit-identical on replay.
go run ./cmd/udtchaos -ccmatrix -determinism
